// Seed provisioning: using the stability theory as a capacity planner.
//
// Given a forecast arrival rate, how much fixed-seed upload capacity do
// you need — and how much of it can you trade away by asking completed
// peers to linger? The paper's answer: dwelling long enough to upload a
// single extra piece (mean dwell 1/mu) removes the requirement entirely.
//
// The closed forms live in analysis/provisioning.hpp (the same API the
// live monitor's advisories call); this example just prints the tables.
//
//   $ ./seed_provisioning
#include <cstdio>

#include "analysis/provisioning.hpp"
#include "analysis/stability_probe.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"

int main() {
  using namespace p2p;
  const int k = 8;
  const double mu = 1.0;

  std::printf("capacity plan for a K = %d piece swarm, mu = %.1f\n\n", k, mu);

  // 1. Seed capacity needed vs load, for a few dwell policies.
  const analysis::CapacityPlan plan_table = analysis::seed_capacity_plan(
      k, mu, {0.5, 1.0, 2.0, 5.0, 10.0, 50.0}, {0.0, 0.25, 0.5, 1.0});
  std::printf("minimum fixed-seed rate Us* by arrival rate and dwell "
              "policy:\n");
  std::printf("%10s | %12s %12s %12s %12s\n", "lambda", "no dwell",
              "dwell 0.25", "dwell 0.5", "dwell 1.0");
  for (std::size_t i = 0; i < plan_table.loads.size(); ++i) {
    std::printf("%10.1f |", plan_table.loads[i]);
    for (std::size_t j = 0; j < plan_table.dwells.size(); ++j) {
      std::printf(" %12.3f", plan_table.at(i, j));
    }
    std::printf("\n");
  }
  std::printf("(dwell 1.0 = one mean piece-upload time: requirement is 0 "
              "at any load — the corollary)\n\n");

  // 2. The dual question: given a seed, what dwell must we ask for?
  const std::vector<double> loads = {0.4, 1.0, 2.0, 5.0, 20.0};
  const std::vector<double> dwells =
      analysis::min_dwell_by_load(k, 0.5, mu, loads);
  std::printf("minimum mean dwell 1/gamma* by load, with Us = 0.5:\n");
  std::printf("%10s %14s\n", "lambda", "min dwell");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (dwells[i] == 0.0) {
      std::printf("%10.1f %14s\n", loads[i], "none needed");
    } else {
      std::printf("%10.1f %14.3f\n", loads[i], dwells[i]);
    }
  }

  // 3. Verify one row of the plan by simulation.
  std::printf("\nspot check (lambda = 5, dwell 0.5, Us = Us* * 1.3 vs "
              "* 0.7):\n");
  const SwarmParams plan(k, 0.0, mu, 2.0, {{PieceSet{}, 5.0}});
  const double us_star = analysis::seed_advice(plan).us_required;
  ProbeOptions options;
  options.horizon = 2000;
  options.replicas = 3;
  options.initial_one_club = 200;
  for (const double factor : {1.3, 0.7}) {
    const auto probe =
        probe_swarm(plan.with_seed_rate(us_star * factor), options);
    std::printf("  Us = %.3f: %s\n", us_star * factor,
                probe.to_string().c_str());
  }
  return 0;
}
