// Network coding demo: rescuing a seedless swarm with coded gifts.
//
// A content provider cannot run a seed (Us = 0) but can hand each joining
// peer, with probability f, one random linear combination of the K pieces
// (e.g. stamped by the tracker). Theorem 15: with coding this stabilizes
// the swarm once f clears ~q^2/((q-1)^2 K); without coding no f < 1
// suffices (Theorem 1).
//
//   $ ./coded_swarm_demo
#include <cstdio>

#include "coding/coded_swarm.hpp"
#include "core/coding_stability.hpp"

int main() {
  using namespace p2p;
  const int k = 8, q = 16;
  const double lambda_total = 2.0;

  const auto thresholds = coded_gift_thresholds(q, k);
  std::printf("K = %d pieces over GF(%d), lambda = %.1f, no fixed seed\n",
              k, q, lambda_total);
  std::printf("Theorem 15 gift thresholds: transient below f = %.4f, "
              "stable above f = %.4f\n\n",
              thresholds.transient_below, thresholds.recurrent_above);

  for (const double f : {0.04, 0.30}) {
    CodedSwarmParams params;
    params.num_pieces = k;
    params.field_size = q;
    params.seed_rate = 0.0;
    params.contact_rate = 1.0;
    params.arrivals = {{(1.0 - f) * lambda_total, 0},
                       {f * lambda_total, 1}};
    CodedSwarmSim sim(params, 11);
    // Start from a coded one-club: everyone already spans the hyperplane
    // orthogonal to e1.
    std::vector<GfVector> basis;
    for (int i = 1; i < k; ++i) {
      GfVector v(static_cast<std::size_t>(k), 0);
      v[static_cast<std::size_t>(i)] = 1;
      basis.push_back(v);
    }
    sim.inject_peers(basis, 200);

    std::printf("gift fraction f = %.2f (%s by Theorem 15):\n", f,
                f < thresholds.transient_below   ? "transient"
                : f > thresholds.recurrent_above ? "stable"
                                                 : "in the open gap");
    std::printf("  %8s %8s %14s %14s\n", "time", "N", "enlightened",
                "departures");
    sim.run_sampled(1200.0, 200.0, [&](double t) {
      std::printf("  %8.0f %8lld %14lld %14lld\n", t,
                  static_cast<long long>(sim.total_peers()),
                  static_cast<long long>(sim.enlightened_peers()),
                  static_cast<long long>(sim.total_departures()));
    });
    std::printf("  useful/useless transfers: %lld / %lld\n\n",
                static_cast<long long>(sim.useful_transfers()),
                static_cast<long long>(sim.useless_transfers()));
  }

  std::printf(
      "reading: at f = 0.04 the coded club still starves (too few gifted "
      "directions); at f = 0.30 gifted vectors escape the club's hyperplane "
      "often enough that everyone decodes and departs.\n");
  return 0;
}
