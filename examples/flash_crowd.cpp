// Flash crowd: what the missing piece syndrome looks like from inside.
//
// A torrent launches with a burst of 500 peers that all already hold
// every piece except piece 1 (a "one club", e.g. after the initial seeder
// throttles). Two operators run the same swarm:
//   * operator A provisions the fixed seed below Theorem 1's requirement;
//   * operator B provisions it just above.
// We watch the Fig. 2 peer groups and the rarest-piece availability.
//
//   $ ./flash_crowd
#include <cstdio>

#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

void run(const char* name, const SwarmParams& params) {
  const auto theory = classify(params);
  std::printf("\n%s: %s\n  theory: %s, critical piece %d, margin %.3f\n",
              name, params.to_string().c_str(),
              to_string(theory.verdict).c_str(), theory.critical_piece + 1,
              theory.margin);

  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 7});
  sim.inject_peers(PieceSet::full(params.num_pieces()).without(0), 500);

  std::printf("  %8s %8s %10s %10s %12s %14s\n", "time", "N", "one-club",
              "seeds", "piece1 avail", "mean sojourn");
  sim.run_sampled(1500.0, 150.0, [&](double t) {
    std::printf("  %8.0f %8lld %10lld %10lld %11.1f%% %14.1f\n", t,
                static_cast<long long>(sim.total_peers()),
                static_cast<long long>(sim.groups().one_club),
                static_cast<long long>(sim.peer_seeds()),
                100.0 * static_cast<double>(sim.holders_of(0)) /
                    static_cast<double>(std::max<std::int64_t>(
                        1, sim.total_peers())),
                sim.sojourn_stats().mean());
  });
}

}  // namespace

int main() {
  using namespace p2p;
  const int k = 4;
  const double mu = 1.0, gamma = 2.5, lambda = 2.0;
  // Theorem 1: need Us > lambda (1 - mu/gamma) = 1.2.
  const SwarmParams base(k, 0.0, mu, gamma, {{PieceSet{}, lambda}});
  std::printf("flash crowd of 500 one-club peers; lambda = %.1f, mu = %.1f, "
              "gamma = %.1f\n",
              lambda, mu, gamma);
  std::printf("Theorem 1 seed requirement: Us > %.3f\n",
              min_stabilizing_seed_rate(base));

  run("operator A (Us = 0.6, under-provisioned)", base.with_seed_rate(0.6));
  run("operator B (Us = 1.8, provisioned)", base.with_seed_rate(1.8));

  std::printf(
      "\nreading: under A the one club swallows every newcomer — piece 1 "
      "availability stays pinned near zero and sojourn times blow up; "
      "under B the same crowd drains and the swarm settles.\n");
  return 0;
}
