// swarm_lab: a configurable driver over the whole library — point it at a
// parameter set and it reports the Theorem 1 verdict, provisioning
// numbers, a simulated trajectory with Fig. 2 groups, and a replicated
// stability probe. Supports the VIII-C retry boost, heterogeneous rate
// classes and every piece-selection policy.
//
//   $ ./swarm_lab --help
//   $ ./swarm_lab --k=5 --lambda=3 --us=0.5 --dwell=0.8 --policy=rarest-first
//   $ ./swarm_lab --k=4 --lambda=2 --us=0.3 --dwell=0 --retry-boost=5
#include <cstdio>
#include <memory>

#include "analysis/stability_probe.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/swarm.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace p2p;
  Flags flags(argc, argv);
  const int k = flags.get_int("k", 4, "number of pieces K");
  const double lambda =
      flags.get_double("lambda", 2.0, "arrival rate of empty peers");
  const double gifted = flags.get_double(
      "gifted", 0.0, "arrival rate of peers holding piece 1");
  const double us = flags.get_double("us", 0.5, "fixed seed rate Us");
  const double mu = flags.get_double("mu", 1.0, "peer contact rate mu");
  const double dwell = flags.get_double(
      "dwell", 0.5, "mean peer-seed dwell 1/gamma (0 = leave instantly)");
  const std::string policy = flags.get_string(
      "policy", "random-useful",
      "random-useful | rarest-first | most-common-first | sequential");
  const double retry_boost = flags.get_double(
      "retry-boost", 1.0, "Section VIII-C retry factor eta >= 1");
  const double slow_fraction = flags.get_double(
      "slow-fraction", 0.0,
      "fraction of peers uploading at 0.25x (heterogeneous extension)");
  const double horizon = flags.get_double("horizon", 1000.0,
                                          "simulated time");
  const std::int64_t flash = static_cast<std::int64_t>(flags.get_double(
      "flash-crowd", 0.0, "initial one-club population"));
  const int seed = flags.get_int("seed", 1, "RNG seed");
  flags.finish();

  const double gamma = dwell <= 0 ? kInfiniteRate : 1.0 / dwell;
  std::vector<ArrivalSpec> arrivals = {{PieceSet{}, lambda}};
  if (gifted > 0) arrivals.push_back({PieceSet::single(0), gifted});
  const SwarmParams params(k, us, mu, gamma, std::move(arrivals));

  std::printf("model:  %s\n", params.to_string().c_str());
  std::printf("policy: %s, retry boost %.1f, slow fraction %.2f\n\n",
              policy.c_str(), retry_boost, slow_fraction);

  const StabilityReport report = classify(params);
  std::printf("Theorem 1: %s\n", report.to_string().c_str());
  std::printf("  min stabilizing Us:     %.4f\n",
              min_stabilizing_seed_rate(params));
  const double gamma_star = max_stabilizing_seed_depart_rate(params);
  if (gamma_star == kInfiniteRate) {
    std::printf("  required dwell:         none (stable without peer "
                "seeds)\n");
  } else {
    std::printf("  required dwell 1/gamma: %.4f\n", 1.0 / gamma_star);
  }
  const double load_scale = critical_load_scale(params);
  std::printf("  critical load scale:    %s\n\n",
              load_scale == kInfiniteRate
                  ? "infinite (altruistic regime)"
                  : std::to_string(load_scale).c_str());

  SwarmSimOptions options;
  options.rng_seed = static_cast<std::uint64_t>(seed);
  options.retry_boost = retry_boost;
  if (slow_fraction > 0) {
    options.rate_classes = {{slow_fraction, 0.25},
                            {1.0 - slow_fraction, 1.0}};
  }
  SwarmSim sim(params, make_policy(policy), options);
  if (flash > 0) sim.inject_peers(PieceSet::full(k).without(0), flash);

  std::printf("%8s %8s %8s %9s %9s %9s %9s %9s\n", "time", "N", "seeds",
              "young", "infected", "one-club", "former", "gifted");
  sim.run_sampled(horizon, horizon / 10, [&](double t) {
    const GroupCounts& g = sim.groups();
    std::printf("%8.0f %8lld %8lld %9lld %9lld %9lld %9lld %9lld\n", t,
                static_cast<long long>(sim.total_peers()),
                static_cast<long long>(sim.peer_seeds()),
                static_cast<long long>(g.normal_young),
                static_cast<long long>(g.infected),
                static_cast<long long>(g.one_club),
                static_cast<long long>(g.former_one_club),
                static_cast<long long>(g.gifted));
  });
  std::printf("\ndownloads %lld (silent contacts %lld), departures %lld, "
              "mean sojourn %.2f\n",
              static_cast<long long>(sim.total_downloads()),
              static_cast<long long>(sim.silent_contacts()),
              static_cast<long long>(sim.total_departures()),
              sim.sojourn_stats().mean());

  ProbeOptions probe_options;
  probe_options.horizon = horizon;
  probe_options.replicas = 4;
  probe_options.initial_one_club = flash;
  const ProbeResult probe = probe_swarm(params, probe_options, policy);
  std::printf("probe: %s\n", probe.to_string().c_str());
  return 0;
}
