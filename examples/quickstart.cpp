// Quickstart: define a swarm, ask the theory whether it is stable, and
// confirm by simulation.
//
//   $ ./quickstart
//
// Models a 4-piece file, a fixed seed uploading at Us = 0.8 pieces per
// unit time, fresh peers arriving empty at rate 2, peer contact rate
// mu = 1, and peer seeds dwelling for 1/gamma = 0.8 time units on average.
// Theorem 1: the critical arrival rate is Us / (1 - mu/gamma) = 4, so
// lambda = 2 is comfortably inside the stable region.
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/swarm.hpp"

int main() {
  using namespace p2p;

  const SwarmParams params(
      /*num_pieces=*/4, /*seed_rate=*/0.8, /*contact_rate=*/1.0,
      /*seed_depart_rate=*/1.25,
      /*arrivals=*/{{PieceSet{}, 2.0}});

  std::printf("model: %s\n\n", params.to_string().c_str());

  // 1. Closed-form verdict (Theorem 1).
  const StabilityReport report = classify(params);
  std::printf("theory:   %s\n", report.to_string().c_str());
  std::printf("          min stabilizing Us        = %.4f\n",
              min_stabilizing_seed_rate(params));
  std::printf("          max stabilizing gamma     = %.4f\n",
              max_stabilizing_seed_depart_rate(params));
  std::printf("          critical load multiplier  = %.4f\n\n",
              critical_load_scale(params));

  // 2. Simulate and watch the swarm.
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 42});
  std::printf("%10s %10s %10s %10s %12s\n", "time", "peers", "seeds",
              "one-club", "downloads");
  sim.run_sampled(/*t_end=*/500.0, /*dt=*/50.0, [&](double t) {
    std::printf("%10.1f %10lld %10lld %10lld %12lld\n", t,
                static_cast<long long>(sim.total_peers()),
                static_cast<long long>(sim.peer_seeds()),
                static_cast<long long>(sim.groups().one_club),
                static_cast<long long>(sim.total_downloads()));
  });
  std::printf("\nmean sojourn time of departed peers: %.3f\n",
              sim.sojourn_stats().mean());

  // 3. Replicated probe with a flash-crowd start.
  ProbeOptions options;
  options.horizon = 1500;
  options.initial_one_club = 200;
  const ProbeResult probe = probe_swarm(params, options);
  std::printf("probe:    %s\n", probe.to_string().c_str());
  return 0;
}
