// bench_sweep_engine: throughput of the chunked sweep pipeline.
//
// Drives a closed-form-only (theory_only — no simulation) Theorem-1 grid
// at 1e5+ cells through the real streaming path (grid expansion ->
// chunked thread pool -> classify -> streaming ReportWriter) and records
// cells/sec. Two curves:
//
//   * threads curve  — auto chunk, threads 1..8: parallel speedup of the
//                      pipeline end to end;
//   * chunk curve    — fixed 8 threads, chunk 1 vs. powers of 4 vs.
//                      auto: what per-item claiming costs when cells are
//                      closed-form cheap. chunk = 1 takes the claim
//                      mutex once per cell; at a million cells that is a
//                      million lock round-trips the chunked path avoids.
//
// Emits BENCH_sweep.json (one measurement per row plus the headline
// chunk-1 vs. auto ratio) so the perf trajectory has machine-readable
// data; EXPERIMENTS.md archives one run.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"

namespace {

using namespace p2p;
using namespace p2p::engine;

struct Measurement {
  int threads = 0;
  std::size_t chunk = 0;  // 0 = auto
  std::size_t cells = 0;
  double seconds = 0;
  double cells_per_sec = 0;
};

/// One timed theory-only streaming sweep of `grid`, rows discarded into
/// /dev/null so the measurement covers the full pipeline (claiming,
/// classify, formatting, emission) without filesystem noise. Best of
/// `repeats` runs: the minimum is the least-perturbed sample.
Measurement measure(const SweepGrid& grid, int threads, std::size_t chunk,
                    int repeats) {
  SweepOptions options;
  options.theory_only = true;
  options.threads = threads;
  options.chunk = chunk;
  Measurement m;
  m.threads = threads;
  m.chunk = chunk;
  m.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    ReportWriter writer("/dev/null", ReportFormat::kCsv,
                        sweep_columns(options));
    const auto t0 = std::chrono::steady_clock::now();
    const SweepSummary summary = run_sweep_stream(grid, options, writer);
    writer.finish();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    m.cells = summary.cells;
    m.seconds = std::min(m.seconds, elapsed);
  }
  m.cells_per_sec = static_cast<double>(m.cells) / m.seconds;
  return m;
}

void append_measurement(std::string& json, const Measurement& m,
                        bool last) {
  json += "    {\"threads\": " + std::to_string(m.threads) +
          ", \"chunk\": " + std::to_string(m.chunk) +
          ", \"cells\": " + std::to_string(m.cells) +
          ", \"seconds\": " + format_number(m.seconds) +
          ", \"cells_per_sec\": " + format_number(m.cells_per_sec) + "}" +
          (last ? "\n" : ",\n");
}

/// Peak resident set of this process in kB (ru_maxrss is kB on Linux).
/// A streaming pipeline's footprint must stay O(ring), not O(grid);
/// the JSON records it so a regression to row buffering is visible.
long peak_rss_kb() {
  rusage usage{};
  P2P_ASSERT(getrusage(RUSAGE_SELF, &usage) == 0);
  return usage.ru_maxrss;
}

void print_measurement(const Measurement& m) {
  const std::string chunk_label =
      m.chunk == 0 ? "auto" : std::to_string(m.chunk);
  std::printf("  threads %d  chunk %8s  %9zu cells  %8.3fs  %12.0f cells/s\n",
              m.threads, chunk_label.c_str(), m.cells, m.seconds,
              m.cells_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // 500 x 200 = 1e5 cells by default; P2P_SMOKE shrinks to 2e3 so the
  // CTest smoke entry still exercises every code path in milliseconds.
  const int cells_flag = flags.get_int(
      "cells", bench::scaled(100000, 2000),
      "approximate grid size (rows of 200 lambda points)");
  const int repeats =
      flags.get_int("repeats", bench::scaled(3, 1), "timing repeats (best-of)");
  const std::string out = flags.get_string(
      "out", "BENCH_sweep.json", "machine-readable results path");
  flags.finish();

  const int us_points = 200;
  const int lambda_points = std::max(1, cells_flag / us_points);
  const SweepGrid grid = parse_grid(
      "lambda=0.5:3.0:" + std::to_string(lambda_points) +
      ";us=0.2:1.7:" + std::to_string(us_points) +
      ";k=3;mu=1;gamma=1.25");

  bench::title("E13", "sweep-engine throughput (chunked scheduling + "
               "streaming reports)",
               "Theorem 1 phase diagram at scale; engine/thread_pool.hpp");
  std::printf("grid: %d x %d = %zu closed-form cells, best of %d\n",
              lambda_points, us_points, grid.num_cells(), repeats);

  bench::section("threads curve (auto chunk)");
  std::vector<Measurement> threads_curve;
  for (const int t : {1, 2, 4, 8}) {
    threads_curve.push_back(measure(grid, t, 0, repeats));
    print_measurement(threads_curve.back());
  }

  bench::section("chunk curve (8 threads)");
  std::vector<Measurement> chunk_curve;
  for (const std::size_t c : {std::size_t{1}, std::size_t{16},
                              std::size_t{256}, std::size_t{0}}) {
    chunk_curve.push_back(measure(grid, 8, c, repeats));
    print_measurement(chunk_curve.back());
  }

  // Headline: what chunked claiming buys over per-item claiming on 8
  // threads (the satellite acceptance figure).
  const double chunk1 = chunk_curve.front().cells_per_sec;
  const double chunk_auto = chunk_curve.back().cells_per_sec;
  const double auto_over_chunk1 = chunk_auto / chunk1;
  std::printf("\nauto-chunk vs chunk=1 on 8 threads: %.2fx\n",
              auto_over_chunk1);

  // The speedup headline is only meaningful relative to the cores the
  // box actually has: on a 1-core host the 8-thread run measures
  // oversubscription, not scaling, so consumers (the CI gate) must
  // read hardware_concurrency before judging speedup_8_over_1. The
  // JSON carries the verdict explicitly (gate_skipped_reason, empty
  // when the gate is armed) so a skipped gate is recorded, not silent.
  const unsigned hw = std::thread::hardware_concurrency();
  const double speedup_8_over_1 = threads_curve.back().cells_per_sec /
                                  threads_curve.front().cells_per_sec;
  std::printf("8-thread over 1-thread speedup: %.2fx (on %u hardware "
              "threads)\n",
              speedup_8_over_1, hw);
  const std::string gate_skipped_reason =
      hw >= 8 ? ""
              : "only " + std::to_string(hw) +
                    " hardware threads (< 8): speedup_8_over_1 measures "
                    "oversubscription, not scaling";
  if (!gate_skipped_reason.empty()) {
    std::printf("speedup gate UNARMED: %s\n", gate_skipped_reason.c_str());
  }

  std::string json = "{\n";
  json += "  \"cells\": " + std::to_string(grid.num_cells()) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"peak_rss_kb\": " + std::to_string(peak_rss_kb()) + ",\n";
  json += "  \"single_thread_cells_per_sec\": " +
          format_number(threads_curve.front().cells_per_sec) + ",\n";
  json += "  \"speedup_8_over_1\": " + format_number(speedup_8_over_1) +
          ",\n";
  json += "  \"gate_skipped_reason\": ";
  append_json_string(json, gate_skipped_reason);
  json += ",\n";
  json += "  \"auto_chunk_over_chunk1_8threads\": " +
          format_number(auto_over_chunk1) + ",\n";
  json += "  \"threads_curve\": [\n";
  for (std::size_t i = 0; i < threads_curve.size(); ++i) {
    append_measurement(json, threads_curve[i],
                       i + 1 == threads_curve.size());
  }
  json += "  ],\n  \"chunk_curve\": [\n";
  for (std::size_t i = 0; i < chunk_curve.size(); ++i) {
    append_measurement(json, chunk_curve[i], i + 1 == chunk_curve.size());
  }
  json += "  ]\n}\n";
  write_text(out, json);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
