// E10 — ablation of the Lyapunov function design (Section VII, Remark 11).
//
// The paper's W adds alpha E_C phi(H_C) to the quadratic E_C^2/2 exactly
// because the quadratic alone has UPWARD drift on one-club states whose
// helping potential H_S is still small (arrivals outrun direct seed
// uploads; the branching boost of dwelling seeds is not yet banked).
// We evaluate the exact drift QW on adversarial heavy-load states, with
// and without the phi term, and check QW <= -xi*n scaling.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/lyapunov.hpp"
#include "core/stability.hpp"
#include "rand/rng.hpp"

namespace {

using namespace p2p;

TypeCountState one_club_state(int k, std::int64_t n) {
  TypeCountState state(k);
  state.add(PieceSet::full(k).without(0), n);
  return state;
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E10", "Lyapunov drift ablation",
               "Section VII Eq. (11), Remark 11; Foster-Lyapunov criterion "
               "QW <= -xi n");

  // Marginal stable point: Us < lambda < Us/(1-mu/gamma), the regime where
  // only the dwelling-seed branching closes the gap.
  const SwarmParams params(2, 0.8, 1.0, 4.0, {{PieceSet{}, 1.0}});
  const auto report = classify(params);
  std::printf("model: %s\n", params.to_string().c_str());
  std::printf("theory: %s (margin %.3f)\n", bench::short_verdict(report.verdict),
              report.margin);

  auto lp = LyapunovFunction::suggest(params);
  lp.r = 0.01;
  const LyapunovFunction full(params, lp);
  auto lp_ablate = lp;
  lp_ablate.alpha = 1e-9;
  const LyapunovFunction quadratic_only(params, lp_ablate);

  bench::section("one-club states (H_S = 0): the phi term is decisive");
  std::printf("%10s %16s %16s\n", "n", "QW (full)", "QW (no phi)");
  for (const std::int64_t n : {1000LL, 4000LL, 16000LL, 64000LL}) {
    const auto state = one_club_state(2, n);
    std::printf("%10lld %16.1f %16.1f\n", static_cast<long long>(n),
                full.drift(state), quadratic_only.drift(state));
  }

  bench::section("linear scaling: QW / n on diverse heavy states");
  std::printf("%26s %12s %12s %12s\n", "state", "n=2000", "n=8000",
              "n=32000");
  struct Shape {
    const char* name;
    // Fractions of n in types {}, {1}, {2}, F for K = 2.
    double frac[4];
  };
  const Shape shapes[] = {
      {"pure one-club {2}", {0.0, 0.0, 1.0, 0.0}},
      {"pure empty", {1.0, 0.0, 0.0, 0.0}},
      {"pure seeds F", {0.0, 0.0, 0.0, 1.0}},
      {"half empty/half club", {0.5, 0.0, 0.5, 0.0}},
      {"mixed all types", {0.4, 0.2, 0.3, 0.1}},
  };
  for (const auto& shape : shapes) {
    std::printf("%26s", shape.name);
    for (const std::int64_t n : {2000LL, 8000LL, 32000LL}) {
      TypeCountState state(2);
      state.add(PieceSet{0b00}, static_cast<std::int64_t>(shape.frac[0] * n));
      state.add(PieceSet{0b01}, static_cast<std::int64_t>(shape.frac[1] * n));
      state.add(PieceSet{0b10}, static_cast<std::int64_t>(shape.frac[2] * n));
      state.add(PieceSet{0b11}, static_cast<std::int64_t>(shape.frac[3] * n));
      std::printf(" %12.4f",
                  full.drift(state) /
                      static_cast<double>(state.total_peers()));
    }
    std::printf("\n");
  }

  bench::section("random heavy states: worst drift per n");
  {
    Rng rng(5);
    double worst = -1e300;
    const int trials = bench::scaled(300, 30);
    for (int trial = 0; trial < trials; ++trial) {
      TypeCountState state(2);
      const std::int64_t n = 5000 + static_cast<std::int64_t>(
                                        rng.uniform_int(50000ULL));
      // Random composition over the 4 types.
      double weights[4];
      double total = 0;
      for (double& w : weights) {
        w = rng.uniform();
        total += w;
      }
      for (int type = 0; type < 4; ++type) {
        state.add(PieceSet{static_cast<std::uint64_t>(type)},
                  static_cast<std::int64_t>(weights[type] / total *
                                            static_cast<double>(n)));
      }
      if (state.total_peers() < 100) continue;
      const double per_n =
          full.drift(state) / static_cast<double>(state.total_peers());
      worst = std::max(worst, per_n);
    }
    std::printf("max QW/n over 300 random states (n in [5000, 55000]): "
                "%.6f (must be < 0)\n",
                worst);
  }

  bench::section("altruistic variant W' (gamma <= mu)");
  {
    const SwarmParams alt(2, 0.5, 1.0, 0.8, {{PieceSet{}, 5.0}});
    const LyapunovFunction w_alt(alt, LyapunovFunction::suggest(alt));
    std::printf("model: %s\n", alt.to_string().c_str());
    std::printf("%10s %16s\n", "n", "QW' (one-club)");
    for (const std::int64_t n : {1000LL, 8000LL, 64000LL}) {
      std::printf("%10lld %16.1f\n", static_cast<long long>(n),
                  w_alt.drift(one_club_state(2, n)));
    }
  }

  std::printf(
      "\nshape check: full W has negative drift everywhere heavy and scales "
      "linearly in n; dropping the phi term flips the sign exactly on "
      "low-potential one-club states (Remark 11's scenario). Lemma 7 only "
      "requires QW <= -xi n beyond a finite n0 — the small-n rows that are "
      "positive (n <~ 2000 here) are inside n0 and harmless.\n");
  return 0;
}
