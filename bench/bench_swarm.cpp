// bench_swarm: events/sec of the two simulation backends vs swarm size.
//
// The tentpole claim of the type-count refactor is that collapsing
// exchangeable peers into counts per PieceSet type — with silent
// contacts integrated out analytically — turns per-event cost from
// O(1)-per-*nominal*-event into O(1)-per-*state-change*, which near the
// one-club regime is a factor of order n. This harness measures it: a
// one-club swarm pinned at size n (club-typed arrivals at rate Us with
// gamma = inf, so seed-driven completions balance arrivals and the club
// size random-walks around n), simulated by both backends at
// n = 1e3..1e6.
//
// The throughput numerator is the *nominal* event count, so the two
// columns are the same unit: for SwarmSim every step() is one nominal
// event; for TypeCountSim nominal_events() is the unbiased
// Poisson-thinning estimate of the events a per-contact sampler would
// have drawn over the same simulated span. Emits BENCH_swarm.json
// (one row per size plus the headline largest-size speedup);
// experiments/bench_swarm.json archives one run and the CI gate fails a
// PR whose type-count throughput regresses >20% from it.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "engine/report.hpp"
#include "sim/swarm.hpp"
#include "sim/typecount_sim.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"

namespace {

using namespace p2p;

constexpr int kPieces = 4;

struct Measurement {
  std::int64_t swarm_size = 0;
  double per_peer_events_per_sec = 0;
  double typecount_events_per_sec = 0;
  /// Materialized (state-changing) type-count steps per second — the
  /// cost side of the aggregation, next to the nominal-event benefit.
  double typecount_effective_steps_per_sec = 0;
  double speedup = 0;
};

/// The measured model: K = 4, Us = mu = 1, gamma = inf, and the entire
/// arrival stream typed as the one-club set {2, 3, 4} (everything but
/// the tracked piece 1). Injected club members complete only through
/// the fixed seed (rate Us = 1), matching the club arrival rate, so the
/// swarm holds its size for the whole measured window instead of
/// draining — each size's row measures that size.
SwarmParams one_club_params() {
  return SwarmParams(kPieces, 1.0, 1.0, kInfiniteRate,
                     {{PieceSet::full(kPieces).without(0), 1.0}});
}

PieceSet club_type() { return PieceSet::full(kPieces).without(0); }

double time_run(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Per-peer throughput: `events` step() calls, each one nominal event.
/// Best of `repeats` fresh swarms (the minimum elapsed is the
/// least-perturbed sample).
double measure_per_peer(std::int64_t swarm_size, std::int64_t events,
                        int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    SwarmSimOptions options;
    options.rng_seed = 1 + static_cast<std::uint64_t>(r);
    SwarmSim sim(one_club_params(), options);
    sim.inject_peers(club_type(), swarm_size);
    best = std::min(best, time_run([&] {
      for (std::int64_t i = 0; i < events; ++i) P2P_ASSERT(sim.step());
    }));
  }
  return static_cast<double>(events) / best;
}

/// Type-count throughput over `effective_steps` state changes; the
/// numerator is the nominal-event estimate accumulated across them.
Measurement measure_typecount(std::int64_t swarm_size,
                              std::int64_t effective_steps, int repeats) {
  Measurement m;
  m.swarm_size = swarm_size;
  double best = 1e300;
  double nominal = 0;
  for (int r = 0; r < repeats; ++r) {
    TypeCountSimOptions options;
    options.rng_seed = 1 + static_cast<std::uint64_t>(r);
    TypeCountSim sim(one_club_params(), options);
    sim.inject_peers(club_type(), swarm_size);
    const double elapsed = time_run([&] {
      for (std::int64_t i = 0; i < effective_steps; ++i)
        P2P_ASSERT(sim.step());
    });
    if (elapsed < best) {
      best = elapsed;
      nominal = sim.nominal_events();
    }
  }
  m.typecount_events_per_sec = nominal / best;
  m.typecount_effective_steps_per_sec =
      static_cast<double>(effective_steps) / best;
  return m;
}

long peak_rss_kb() {
  rusage usage{};
  P2P_ASSERT(getrusage(RUSAGE_SELF, &usage) == 0);
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  using engine::format_number;
  using engine::write_text;

  Flags flags(argc, argv);
  // Per-peer pays O(1) per nominal event, so its budget is an event
  // count; type-count pays per state change, so its budget is an
  // effective-step count. P2P_SMOKE shrinks both so the CTest smoke
  // entry exercises every path in milliseconds.
  const int per_peer_events = flags.get_int(
      "per-peer-events", bench::scaled(4000000, 20000),
      "per-peer step() calls per measurement");
  const int effective_steps = flags.get_int(
      "effective-steps", bench::scaled(200000, 2000),
      "type-count state changes per measurement");
  const int repeats =
      flags.get_int("repeats", bench::scaled(2, 1), "timing repeats (best-of)");
  const std::string out = flags.get_string(
      "out", "BENCH_swarm.json", "machine-readable results path");
  flags.finish();

  std::vector<std::int64_t> sizes = {1000, 10000, 100000, 1000000};
  if (bench::smoke_mode()) sizes = {100, 1000};

  bench::title("E14", "swarm-backend throughput (per-peer vs type-count)",
               "exchangeable-state collapse; sim/typecount_sim.hpp");
  std::printf("one-club swarm, K = %d, Us = mu = 1, gamma = inf; "
              "per-peer best of %d x %d events, type-count best of %d x %d "
              "effective steps\n",
              kPieces, repeats, per_peer_events, repeats, effective_steps);

  bench::section("events/sec vs swarm size");
  std::vector<Measurement> rows;
  for (const std::int64_t n : sizes) {
    Measurement m = measure_typecount(n, effective_steps, repeats);
    m.per_peer_events_per_sec = measure_per_peer(n, per_peer_events, repeats);
    m.speedup = m.typecount_events_per_sec / m.per_peer_events_per_sec;
    rows.push_back(m);
    std::printf("  n %8lld  per-peer %12.0f ev/s  type-count %14.0f ev/s  "
                "(%9.0f eff steps/s)  speedup %8.1fx\n",
                static_cast<long long>(m.swarm_size),
                m.per_peer_events_per_sec, m.typecount_events_per_sec,
                m.typecount_effective_steps_per_sec, m.speedup);
  }

  // Headline: the acceptance figure — the largest swarm's nominal-event
  // throughput ratio. Near the one-club regime the ratio is order n, so
  // this is where the collapse pays or does not.
  const Measurement& top = rows.back();
  std::printf("\nat n = %lld: type-count %.3g ev/s over per-peer %.3g ev/s "
              "= %.0fx\n",
              static_cast<long long>(top.swarm_size),
              top.typecount_events_per_sec, top.per_peer_events_per_sec,
              top.speedup);

  std::string json = "{\n";
  json += "  \"pieces\": " + std::to_string(kPieces) + ",\n";
  json += "  \"per_peer_events\": " + std::to_string(per_peer_events) + ",\n";
  json += "  \"effective_steps\": " + std::to_string(effective_steps) + ",\n";
  json += "  \"repeats\": " + std::to_string(repeats) + ",\n";
  json += "  \"peak_rss_kb\": " + std::to_string(peak_rss_kb()) + ",\n";
  json += "  \"top_swarm_size\": " + std::to_string(top.swarm_size) + ",\n";
  json += "  \"top_typecount_events_per_sec\": " +
          format_number(top.typecount_events_per_sec) + ",\n";
  json += "  \"top_speedup\": " + format_number(top.speedup) + ",\n";
  json += "  \"sizes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    json += "    {\"swarm_size\": " + std::to_string(m.swarm_size) +
            ", \"per_peer_events_per_sec\": " +
            format_number(m.per_peer_events_per_sec) +
            ", \"typecount_events_per_sec\": " +
            format_number(m.typecount_events_per_sec) +
            ", \"typecount_effective_steps_per_sec\": " +
            format_number(m.typecount_effective_steps_per_sec) +
            ", \"speedup\": " + format_number(m.speedup) + "}" +
            (i + 1 == rows.size() ? "\n" : ",\n");
  }
  json += "  ]\n}\n";
  write_text(out, json);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
