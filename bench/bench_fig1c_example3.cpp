// E3 — Fig. 1(c) / Example 3: K = 3, every peer arrives with one piece,
// no fixed seed, peer seeds dwell Exp(gamma).
//
// Paper: stable iff lambda_i + lambda_j < lambda_k (2 + mu/gamma) /
// (1 - mu/gamma) for all three pieces k. With gamma = infinity the
// condition degenerates to lambda_i + lambda_j < 2 lambda_k, impossible
// unless all rates are equal — dwelling peer seeds are what buys slack.
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"

int main() {
  using namespace p2p;
  bench::title("E3", "Example 3 (K = 3, one-piece arrivals): dwell slack",
               "Fig. 1(c), Section IV Example 3; boundary lambda1+lambda2 = "
               "lambda3 (2+mu/gamma)/(1-mu/gamma)");

  const double mu = 1.0, gamma = 3.0, lambda3 = 1.0;
  const double g = mu / gamma;
  const double boundary = lambda3 * (2.0 + g) / (1.0 - g);  // 3.5
  std::printf("mu = %.1f, gamma = %.1f, lambda3 = %.1f  =>  "
              "(lambda1+lambda2)* = %.3f\n",
              mu, gamma, lambda3, boundary);

  ProbeOptions options;
  options.horizon = bench::scaled(1500.0, 60.0);
  options.sample_dt = bench::scaled(5.0, 2.0);
  options.replicas = bench::scaled(3, 1);
  options.initial_one_club = bench::scaled(150, 10);
  options.tracked_piece = 2;  // piece 3 is the scarce one in this sweep

  std::printf("\n%14s %9s %11s %11s %9s %6s\n", "lambda1+lambda2", "ratio",
              "theory", "slope(sim)", "tail N", "agree");
  for (const double ratio : {0.40, 0.70, 0.90, 1.10, 1.40, 2.00}) {
    const double half = ratio * boundary / 2.0;
    const auto params = SwarmParams::example3(half, half, lambda3, mu, gamma);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    std::printf("%14.3f %9.2f %11s %11.3f %9.1f %6s\n", 2 * half, ratio,
                bench::short_verdict(theory.verdict), probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }

  bench::section("gamma = infinity: any asymmetry is unstable");
  std::printf("%9s %9s %9s %11s %11s %9s %6s\n", "lambda1", "lambda2",
              "lambda3", "theory", "slope(sim)", "tail N", "agree");
  for (const double l3 : {1.0, 1.3, 2.0}) {
    const auto params =
        SwarmParams::example3(1.0, 1.0, l3, mu, kInfiniteRate);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    std::printf("%9.2f %9.2f %9.2f %11s %11.3f %9.1f %6s\n", 1.0, 1.0, l3,
                bench::short_verdict(theory.verdict), probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }

  bench::section("dwell slack: same load, sweep gamma");
  const double half = 1.4 * boundary / 2.0;  // transient at gamma = 3
  std::printf("load lambda1 = lambda2 = %.3f, lambda3 = %.1f\n", half,
              lambda3);
  std::printf("%9s %11s %11s %9s %6s\n", "gamma", "theory", "slope(sim)",
              "tail N", "agree");
  for (const double gam : {6.0, 3.0, 2.0, 1.5, 0.9}) {
    const auto params = SwarmParams::example3(half, half, lambda3, mu, gam);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    std::printf("%9.2f %11s %11.3f %9.1f %6s\n", gam,
                bench::short_verdict(theory.verdict), probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }
  std::printf(
      "\nshape check: longer dwell (smaller gamma) rescues the same load; "
      "gamma = inf tolerates only the symmetric point.\n");
  return 0;
}
