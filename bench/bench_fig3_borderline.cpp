// E5 — Fig. 3 / Section VIII-D: the mu = infinity watched chain on the
// stability borderline.
//
// Paper: with symmetric one-piece arrivals, no seed and gamma = infinity,
// the watched chain's top layer is a zero-drift random walk (E[Z] = K-1),
// so the chain is null recurrent: E[N_t] grows like sqrt(t), not t, and
// the chain keeps returning to small states. Conjecture 17 concerns the
// finite-mu version; we probe it empirically as an outlook.
#include <cmath>
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "ctmc/muinf_chain.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace p2p;
  bench::title("E5", "borderline null recurrence of the mu=inf chain",
               "Fig. 3, Section VIII-D; zero drift on the top layer, "
               "diffusive sqrt(t) growth");

  bench::section("zero drift: E[Z] vs K-1");
  std::printf("%4s %10s %10s\n", "K", "E[Z] meas", "K-1");
  for (const int k : {2, 3, 5, 8}) {
    Rng rng(static_cast<std::uint64_t>(k));
    OnlineStats z;
    const int draws = bench::scaled(200000, 5000);
    for (int i = 0; i < draws; ++i) {
      z.add(static_cast<double>(
          MuInfChain::sample_heads_before_tails(rng, k - 1)));
    }
    std::printf("%4d %10.3f %10d\n", k, z.mean(), k - 1);
  }

  bench::section("growth exponent: E[N_t] ~ t^a with a ~ 0.5");
  std::printf("%4s %12s %12s %12s %10s\n", "K", "E[N] t=1e3", "E[N] t=4e3",
              "E[N] t=16e3", "exponent");
  for (const int k : {2, 3, 5}) {
    OnlineStats n1, n2, n3;
    const std::uint64_t reps =
        static_cast<std::uint64_t>(bench::scaled(60, 4));
    const double h = bench::scaled(1000.0, 50.0);
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      MuInfChain chain(k, 1.0, 1000 * static_cast<std::uint64_t>(k) + rep);
      chain.run_until(h);
      n1.add(static_cast<double>(chain.state().peers));
      chain.run_until(4 * h);
      n2.add(static_cast<double>(chain.state().peers));
      chain.run_until(16 * h);
      n3.add(static_cast<double>(chain.state().peers));
    }
    // Log-log slope across the three horizons (factor 4 spacing).
    const double a1 = std::log(n2.mean() / n1.mean()) / std::log(4.0);
    const double a2 = std::log(n3.mean() / n2.mean()) / std::log(4.0);
    std::printf("%4d %12.1f %12.1f %12.1f %10.2f\n", k, n1.mean(), n2.mean(),
                n3.mean(), 0.5 * (a1 + a2));
  }
  std::printf("(a transient chain would show exponent ~1, a positive "
              "recurrent one ~0)\n");

  bench::section("recurrence: fraction of sampled times with N <= 10");
  std::printf("%4s %12s\n", "K", "frac(N<=10)");
  for (const int k : {2, 3, 5}) {
    MuInfChain chain(k, 1.0, 7 + static_cast<std::uint64_t>(k));
    std::int64_t small = 0, total = 0;
    chain.run_sampled(bench::scaled(200000.0, 2000.0), 10.0,
                      [&](double, const MuInfState& s) {
      ++total;
      small += s.peers <= 10;
    });
    std::printf("%4d %12.3f\n", k,
                static_cast<double>(small) / static_cast<double>(total));
  }

  bench::section("outlook (Conjecture 17): finite mu, symmetric K = 2");
  std::printf(
      "symmetric single-piece arrivals, lambda = 1 per piece, gamma = inf; "
      "tail-average N over horizon 20000:\n");
  std::printf("%8s %12s %12s\n", "mu", "tail N", "final N");
  for (const double mu : {0.5, 2.0, 8.0}) {
    const auto params = SwarmParams::example3(1.0, 1.0, 1.0, mu,
                                              kInfiniteRate);
    ProbeOptions options;
    options.horizon = bench::scaled(20000.0, 200.0);
    options.sample_dt = 20;
    options.replicas = bench::scaled(2, 1);
    const auto probe = probe_swarm(params, options);
    std::printf("%8.1f %12.1f %12.1f\n", mu, probe.mean_tail_peers,
                probe.mean_final_peers);
  }
  std::printf(
      "(the conjecture predicts positive recurrence for mu/lambda below "
      "some a_K and null recurrence above; at reachable horizons both "
      "regimes hover at similar scales, so — as in the paper — this stays "
      "a conjecture, not a measurement)\n");
  return 0;
}
