// E9 — global cross-validation of the Theorem 1 stability region:
// random parameter points (K, Us, mu, gamma, typed arrival mix), verdict
// from the closed form vs verdict from simulation.
//
// Points landing too close to the boundary (|margin| < 15% of
// lambda_total) are resampled: a finite-horizon probe cannot classify the
// borderline, which Theorem 1 itself leaves open (Section VIII-D).
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "rand/rng.hpp"

namespace {

using namespace p2p;

SwarmParams random_params(Rng& rng) {
  const int k = static_cast<int>(rng.uniform_int(2, 4));
  const double us = rng.uniform() * 2.0;
  const double mu = 1.0;
  const double gammas[] = {0.7, 1.5, 3.0, kInfiniteRate};
  const double gamma = gammas[rng.uniform_int(4ULL)];
  std::vector<ArrivalSpec> arrivals;
  // Empty arrivals always present; with probability 1/2 add a one-piece
  // gifted stream, with probability 1/4 a two-piece stream.
  arrivals.push_back({PieceSet{}, 0.3 + rng.uniform() * 3.0});
  if (rng.bernoulli(0.5)) {
    arrivals.push_back(
        {PieceSet::single(static_cast<int>(
             rng.uniform_int(static_cast<std::uint64_t>(k)))),
         rng.uniform() * 1.5});
  }
  if (rng.bernoulli(0.25) && k >= 3) {
    // Two-piece gifted stream (k >= 3 keeps it a proper subset, so it is
    // legal under immediate departure too).
    arrivals.push_back({PieceSet::single(0).with(1), rng.uniform() * 1.0});
  }
  return SwarmParams(k, us, mu, gamma, std::move(arrivals));
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E9", "Theorem 1 region: random-grid agreement matrix",
               "Theorem 1 (both branches); near-boundary points excluded "
               "per Section VIII-D");

  Rng rng(20240612);
  ProbeOptions options;
  options.horizon = bench::scaled(1200.0, 60.0);
  options.sample_dt = bench::scaled(5.0, 2.0);
  options.replicas = bench::scaled(2, 1);
  options.initial_one_club = bench::scaled(120, 10);

  int agree = 0, disagree = 0, inconclusive = 0;
  int row = 0;
  std::printf("%4s %2s %6s %6s %7s %8s %11s %11s %6s\n", "#", "K", "Us",
              "gamma", "lambda", "margin", "theory", "probe", "agree");
  const int rows = bench::scaled(24, 4);
  while (row < rows) {
    const SwarmParams params = random_params(rng);
    const auto theory = classify(params);
    if (theory.verdict == Stability::kBorderline) continue;
    // Margin filter: keep clearly-classified points only.
    if (!theory.altruistic_branch &&
        std::abs(theory.margin) < 0.15 * params.total_arrival_rate()) {
      continue;
    }
    ++row;
    const auto probe = probe_swarm(params, options);
    const char* verdict = bench::agreement(theory.verdict, probe.verdict);
    if (verdict[0] == 'y') {
      ++agree;
    } else if (verdict[0] == '~') {
      ++inconclusive;
    } else {
      ++disagree;
    }
    std::printf("%4d %2d %6.2f %6.2f %7.2f %8.2f %11s %11s %6s\n", row,
                params.num_pieces(), params.seed_rate(),
                params.immediate_departure() ? -1.0
                                             : params.seed_depart_rate(),
                params.total_arrival_rate(),
                theory.altruistic_branch ? 0.0 : theory.margin,
                bench::short_verdict(theory.verdict),
                bench::short_verdict(probe.verdict), verdict);
  }
  std::printf("\nagreement: %d/%d agree, %d inconclusive, %d disagree\n",
              agree, row, inconclusive, disagree);
  std::printf("(gamma = -1 denotes immediate departure)\n");
  return 0;
}
