// M0: microbenchmarks for the hot paths of the library (google-benchmark).
#include <benchmark/benchmark.h>

#include "coding/coded_swarm.hpp"
#include "coding/gf.hpp"
#include "coding/subspace.hpp"
#include "core/fluid.hpp"
#include "core/lyapunov.hpp"
#include "core/model.hpp"
#include "ctmc/muinf_chain.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/typecount_chain.hpp"
#include "rand/rng.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(2.0));
}
BENCHMARK(BM_RngExponential);

void BM_SwarmStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  SwarmParams params(k, 1.0, 1.0, 2.0, {{PieceSet{}, 3.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 1});
  sim.run_until(200.0);  // warm to steady state
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwarmStep)->Arg(4)->Arg(16)->Arg(64);

void BM_TypeCountChainStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  SwarmParams params(k, 1.0, 1.0, 2.0, {{PieceSet{}, 3.0}});
  TypeCountChain chain(params, 1);
  chain.run_until(200.0);
  for (auto _ : state) benchmark::DoNotOptimize(chain.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TypeCountChainStep)->Arg(4)->Arg(8);

void BM_GfMul(benchmark::State& state) {
  const GaloisField gf(static_cast<int>(state.range(0)));
  Rng rng(1);
  const auto a = static_cast<GaloisField::Elem>(
      1 + rng.uniform_int(static_cast<std::uint64_t>(gf.size() - 1)));
  auto b = static_cast<GaloisField::Elem>(
      1 + rng.uniform_int(static_cast<std::uint64_t>(gf.size() - 1)));
  // b carries a loop dependency, so the mul chain cannot be elided; the
  // sink stays outside the loop because GCC 12 miscompiles benchmark's
  // "+m,r" DoNotOptimize asm here at -O3 (clobbers `a` mid-loop; see
  // gcc.gnu.org/PR105519 for the constraint workaround's history).
  for (auto _ : state) {
    b = gf.mul(a, b == 0 ? 1 : b);
  }
  benchmark::DoNotOptimize(b);
}
BENCHMARK(BM_GfMul)->Arg(2)->Arg(16)->Arg(64)->Arg(251);

void BM_LyapunovDrift(benchmark::State& state) {
  const SwarmParams params(static_cast<int>(state.range(0)), 2.0, 1.0, 4.0,
                           {{PieceSet{}, 1.0}});
  const LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState heavy(params.num_pieces());
  heavy.add(PieceSet::full(params.num_pieces()).without(0), 10000);
  heavy.add(PieceSet{}, 500);
  for (auto _ : state) benchmark::DoNotOptimize(w.drift(heavy));
}
BENCHMARK(BM_LyapunovDrift)->Arg(2)->Arg(4)->Arg(6);

void BM_FluidDerivative(benchmark::State& state) {
  const SwarmParams params(static_cast<int>(state.range(0)), 2.0, 1.0, 4.0,
                           {{PieceSet{}, 1.0}});
  const FluidModel model(params);
  FluidState y(std::size_t{1} << params.num_pieces(), 3.0);
  for (auto _ : state) benchmark::DoNotOptimize(model.derivative(y));
}
BENCHMARK(BM_FluidDerivative)->Arg(4)->Arg(8)->Arg(12);

void BM_MuInfStep(benchmark::State& state) {
  MuInfChain chain(5, 1.0, 3);
  chain.set_state({100000, 4});
  for (auto _ : state) {
    chain.step();
    benchmark::DoNotOptimize(chain.state().peers);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MuInfStep);

void BM_StationarySolveK1(benchmark::State& state) {
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_truncated_swarm(params, state.range(0)).mean_peers());
  }
}
BENCHMARK(BM_StationarySolveK1)->Arg(20)->Arg(40)->Unit(
    benchmark::kMillisecond);

void BM_CodedSwarmStep(benchmark::State& state) {
  CodedSwarmParams params;
  params.num_pieces = static_cast<int>(state.range(0));
  params.field_size = 8;
  params.seed_rate = 2.0;
  params.contact_rate = 1.0;
  params.arrivals = {{1.0, 0}};
  CodedSwarmSim sim(params, 5);
  sim.run_until(200.0);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodedSwarmStep)->Arg(4)->Arg(16);

void BM_SubspaceInsert(benchmark::State& state) {
  const GaloisField gf(16);
  const int k = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Subspace space(gf, k);
    while (!space.complete()) {
      space.insert(random_vector(gf, k, rng));
    }
    benchmark::DoNotOptimize(space.dim());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(
                                                   state.range(0)));
}
BENCHMARK(BM_SubspaceInsert)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
