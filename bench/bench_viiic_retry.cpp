// E12 — Section VIII-C: faster recovery after unsuccessful contacts.
//
// The paper discusses (without a theorem) what happens if a peer whose
// contact found nothing useful retries a factor eta sooner: in the push
// model this effectively raises the upload capacity of exactly the peers
// holding rare pieces (their contacts fail only by hitting each other),
// violating the implicit symmetric-rate constraint — so it can *change*
// the stability region. We measure that: an eta sweep over a nominally
// transient system, plus the sanity check that eta leaves a clearly
// stable system stable and a clearly transient gifted-free system's
// boundary intact... precisely the caveat the paper raises.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

double tail_slope(const SwarmParams& params, double eta, std::uint64_t seed,
                  double horizon) {
  SwarmSimOptions options;
  options.rng_seed = seed;
  options.retry_boost = eta;
  SwarmSim sim(params, make_policy("random-useful"), options);
  TimeSeries series;
  series.push(0.0, 0.0);
  sim.run_sampled(horizon, horizon / 200, [&](double t) {
    series.push(t, static_cast<double>(sim.total_peers()));
  });
  return tail_fit(series, 0.5).slope / params.total_arrival_rate();
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E12", "faster retry after useless contacts (eta sweep)",
               "Section VIII-C: the speedup is a capacity violation that "
               "can enlarge the push-model stability region");

  const double horizon = bench::scaled(2000.0, 60.0);

  bench::section("K = 1, transient by Theorem 1 (lambda/lambda* = 2.5)");
  {
    const auto params = SwarmParams::example1(0.67, 0.2, 1.0, 4.0);
    std::printf("base verdict: %s\n",
                bench::short_verdict(classify(params).verdict));
    std::printf("%8s %14s %12s\n", "eta", "slope(sim)", "behaves");
    for (const double eta : {1.0, 2.0, 4.0, 10.0}) {
      const double slope = 0.5 * (tail_slope(params, eta, 1, horizon) +
                                  tail_slope(params, eta, 2, horizon));
      std::printf("%8.1f %14.3f %12s\n", eta, slope,
                  slope > 0.05 ? "unstable" : "stable");
    }
    std::printf("(retry boost multiplies the effective upload rate of "
                "dwelling peer seeds whose contacts collide, so large eta "
                "rescues this nominally transient system)\n");
  }

  bench::section("K = 3 one-club regime, no gifted peers");
  {
    // All peers missing the same piece can only receive it from the
    // seed; their own failed contacts are not what limits the club, so
    // the boost barely moves the growth rate (the paper's remark that
    // with no gifted peers the condition wouldn't change).
    const SwarmParams params(3, 0.2, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
    std::printf("base verdict: %s\n",
                bench::short_verdict(classify(params).verdict));
    std::printf("%8s %14s\n", "eta", "slope(sim)");
    for (const double eta : {1.0, 4.0, 10.0}) {
      SwarmSimOptions options;
      options.rng_seed = 3;
      options.retry_boost = eta;
      SwarmSim sim(params, make_policy("random-useful"), options);
      sim.inject_peers(PieceSet::full(3).without(0), 300);
      TimeSeries series;
      series.push(0.0, 300.0);
      sim.run_sampled(horizon, horizon / 200, [&](double t) {
        series.push(t, static_cast<double>(sim.total_peers()));
      });
      std::printf("%8.1f %14.3f\n", eta,
                  tail_fit(series, 0.5).slope /
                      params.total_arrival_rate());
    }
    std::printf("(with gamma = inf there are no dwelling seeds to boost; "
                "the missing piece still only enters via the fixed seed, "
                "so the one-club grows at ~the same rate for any eta)\n");
  }

  bench::section("stable system stays stable under boost");
  {
    const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 4.0);
    std::printf("%8s %14s\n", "eta", "slope(sim)");
    for (const double eta : {1.0, 10.0}) {
      std::printf("%8.1f %14.3f\n", eta,
                  tail_slope(params, eta, 4, horizon));
    }
  }
  return 0;
}
