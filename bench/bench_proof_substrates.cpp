// E11 — the proof substrates of Section VI and the appendix, replayed
// empirically: ABS branching means, the dominating compound Poisson
// process of Corollary 3 (whose rate converges to the Theorem 1 threshold
// as xi -> 0), Kingman's moment bound (Prop. 20) and the M/GI/infinity
// maximal bound (Lemma 21) used in Lemma 5 / Corollary 6.
#include <cstdio>

#include "bench_util.hpp"
#include "core/branching.hpp"
#include "core/stability.hpp"
#include "queueing/branching_sim.hpp"
#include "queueing/compound_poisson.hpp"
#include "queueing/mg_inf.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace p2p;
  bench::title("E11", "proof substrates: branching, Kingman, M/GI/inf",
               "Section VI (ABS, Lemma 2, Corollary 3), Prop. 20, Lemma 21");

  bench::section("ABS family means: closed form vs Monte Carlo (40k fams)");
  std::printf("%3s %6s %6s | %9s %9s | %9s %9s\n", "K", "gamma", "xi",
              "m_b", "m_b sim", "m_f", "m_f sim");
  for (const auto& [k, gamma, xi] :
       {std::tuple{3, 4.0, 0.0}, {3, 4.0, 0.05}, {5, 2.5, 0.02},
        {2, 10.0, 0.10}}) {
    const AbsParams params{k, 1.0, gamma, xi};
    const AbsMeans means = abs_means(params);
    AbsBranchingSim sim(params);
    Rng rng(7);
    OnlineStats mb, mf;
    const int draws = bench::scaled(40000, 2000);
    for (int i = 0; i < draws; ++i) {
      mb.add(static_cast<double>(sim.family_of_b(rng).total()));
      mf.add(static_cast<double>(sim.family_of_f(rng).total()));
    }
    std::printf("%3d %6.1f %6.2f | %9.3f %9.3f | %9.3f %9.3f\n", k, gamma,
                xi, means.m_b, mb.mean(), means.m_f, mf.mean());
  }

  bench::section(
      "Corollary 3: dominating rate -> Theorem 1 threshold as xi -> 0");
  {
    const SwarmParams params(3, 0.7, 1.0, 4.0,
                             {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.5}});
    const double threshold = piece_threshold(params, 0);
    const double lambda_with = params.arrival_rate(PieceSet::single(0));
    std::printf("per-piece threshold (Eq. 3 form): %.4f\n",
                threshold - lambda_with);
    std::printf("%8s %18s\n", "xi", "dominating rate");
    for (const double xi : {0.2, 0.1, 0.05, 0.01, 0.001, 0.0}) {
      const auto rate = dominating_upload_rate(params, 0, xi);
      std::printf("%8.3f %18.4f\n", xi,
                  rate.has_value() ? *rate : -1.0);
    }
    std::printf("(the xi = 0 rate equals the threshold minus the gifted "
                "lambda mass — the coupling is tight)\n");
  }

  bench::section("Kingman bound (Prop. 20) on compound Poisson paths");
  {
    const double alpha = 1.0, m1 = 1.0, m2 = 2.0, eps = 2.0;
    std::printf("%8s %14s %14s\n", "B", "bound", "empirical");
    for (const double budget : {2.0, 5.0, 10.0, 25.0}) {
      const double bound =
          kingman_lower_bound(alpha, m1, m2, budget, eps);
      int stayed = 0;
      const int reps = bench::scaled(600, 40);
      for (int r = 0; r < reps; ++r) {
        CompoundPoissonProcess proc(
            alpha, [](Rng& rng) { return rng.exponential(1.0); },
            500 + static_cast<std::uint64_t>(r));
        bool ok = true;
        while (proc.now() < 400.0 && ok) {
          proc.step();
          ok = proc.value() < budget + eps * proc.now();
        }
        stayed += ok;
      }
      std::printf("%8.1f %14.3f %14.3f\n", budget, bound,
                  stayed / static_cast<double>(reps));
    }
  }

  bench::section("Lemma 21 maximal bound for M/GI/infinity (Lemma 5 coupling)");
  {
    // The Lemma 5 dominating system: K Exp(mu(1-xi)) stages + Exp(gamma).
    const int k = 3;
    const double mu = 1.0, xi = 0.05, gamma = 2.0, lambda = 1.0;
    const double mean_service = k / (mu * (1 - xi)) + 1 / gamma;
    std::printf("service mean = %.3f (K/(mu(1-xi)) + 1/gamma)\n",
                mean_service);
    std::printf("%8s %8s %14s %14s\n", "B", "eps", "bound", "empirical");
    for (const auto& [budget, eps] :
         {std::pair{15.0, 1.0}, {20.0, 0.5}, {30.0, 0.25}}) {
      const double bound =
          mginf_excursion_upper_bound(lambda, mean_service, budget, eps);
      int exceeded = 0;
      const int reps = bench::scaled(300, 20);
      for (int r = 0; r < reps; ++r) {
        MgInfQueue queue(lambda,
                         MgInfQueue::erlang_plus_exp(k, mu * (1 - xi), gamma),
                         900 + static_cast<std::uint64_t>(r));
        bool hit = false;
        for (double t = 1.0; t <= 300.0 && !hit; t += 1.0) {
          queue.run_until(t);
          hit = static_cast<double>(queue.in_system()) >= budget + eps * t;
        }
        exceeded += hit;
      }
      std::printf("%8.1f %8.2f %14.4f %14.4f\n", budget, eps,
                  std::min(1.0, bound),
                  exceeded / static_cast<double>(reps));
    }
  }
  std::printf("\nshape check: Monte Carlo means match the branching closed "
              "forms; both concentration bounds hold with slack.\n");
  return 0;
}
