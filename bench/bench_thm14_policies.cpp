// E7 — Theorem 14: the stability region does not depend on the piece
// selection policy (any useful-piece rule), but the *quasi-stable
// lifetime* before the one-club forms can.
//
// Paper: Section VIII-A proves region insensitivity; Section IX notes
// that policies may still differ in how long a nominally-unstable system
// behaves well ("longevity of a quasi-equilibrium"). We verify the first
// claim on both sides of the boundary and quantify the second.
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

const char* kPolicies[] = {"random-useful", "rarest-first",
                           "most-common-first", "sequential"};

/// Time until the one-club (relative to the currently rarest piece at
/// onset-check time) dominates: N > threshold_n and some piece held by
/// < 10% of peers. Returns horizon if never.
double onset_time(const SwarmParams& params, const std::string& policy,
                  std::uint64_t seed, double horizon) {
  SwarmSimOptions options;
  options.rng_seed = seed;
  SwarmSim sim(params, make_policy(policy), options);
  double onset = horizon;
  sim.run_sampled(horizon, 5.0, [&](double t) {
    if (onset < horizon) return;
    const std::int64_t n = sim.total_peers();
    if (n < 200) return;
    for (int piece = 0; piece < params.num_pieces(); ++piece) {
      if (static_cast<double>(sim.holders_of(piece)) <
          0.1 * static_cast<double>(n)) {
        onset = t;
        return;
      }
    }
  });
  return onset;
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E7", "piece-selection policy insensitivity",
               "Theorem 14 (Section VIII-A); quasi-stability outlook of "
               "Section IX");

  // Both sides of the boundary for K = 4, empty arrivals.
  const SwarmParams stable(4, 2.0, 1.0, 4.0, {{PieceSet{}, 1.5}});
  const SwarmParams transient(4, 0.5, 1.0, 4.0, {{PieceSet{}, 1.5}});
  std::printf("stable:    %s (threshold %.3f)\n", stable.to_string().c_str(),
              piece_threshold(stable, 0));
  std::printf("transient: %s (threshold %.3f)\n\n",
              transient.to_string().c_str(), piece_threshold(transient, 0));

  ProbeOptions options;
  options.horizon = bench::scaled(1500.0, 60.0);
  options.sample_dt = bench::scaled(5.0, 2.0);
  options.replicas = bench::scaled(3, 1);
  options.initial_one_club = bench::scaled(150, 10);

  bench::section("verdicts per policy (Theorem 14: all rows identical)");
  std::printf("%20s %12s %12s %12s %12s\n", "policy", "stable:slope",
              "verdict", "trans:slope", "verdict");
  for (const char* policy : kPolicies) {
    const auto s = probe_swarm(stable, options, policy);
    const auto u = probe_swarm(transient, options, policy);
    std::printf("%20s %12.3f %12s %12.3f %12s\n", policy, s.normalized_slope,
                bench::short_verdict(s.verdict), u.normalized_slope,
                bench::short_verdict(u.verdict));
  }

  bench::section("quasi-stable lifetime in the transient regime");
  std::printf(
      "time (mean over 5 runs, horizon 4000) until a piece is held by <10%% "
      "of a >200-peer swarm, started empty:\n");
  std::printf("%20s %14s\n", "policy", "onset time");
  for (const char* policy : kPolicies) {
    double total = 0;
    const int reps = bench::scaled(5, 1);
    for (int r = 0; r < reps; ++r) {
      total += onset_time(transient, policy,
                          1000 + static_cast<std::uint64_t>(r),
                          bench::scaled(4000.0, 100.0));
    }
    std::printf("%20s %14.0f\n", policy, total / reps);
  }
  std::printf(
      "\nshape check: all four policies agree with Theorem 1 on both sides "
      "of the boundary; rarest-first postpones the one-club onset longest, "
      "most-common-first shortest — the region is insensitive, the "
      "quasi-stable lifetime is not.\n");
  return 0;
}
