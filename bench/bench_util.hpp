// Shared output helpers for the experiment harnesses (E1..E11).
//
// Each bench binary reproduces one artifact of the paper (a figure, a
// worked example, or a headline claim) and prints a self-contained table:
// the paper's prediction next to the measured quantity. EXPERIMENTS.md
// archives one run of each.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/stability_probe.hpp"
#include "core/stability.hpp"

namespace p2p::bench {

/// True when the P2P_SMOKE environment variable is set and nonzero. The
/// smoke_examples CTest label runs every harness this way: tiny replica
/// counts and horizons, so all drivers are built AND executed on every
/// verify without turning the test suite into a benchmark run.
inline bool smoke_mode() {
  const char* env = std::getenv("P2P_SMOKE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// `full` in a normal run, `tiny` under P2P_SMOKE=1.
inline int scaled(int full, int tiny) { return smoke_mode() ? tiny : full; }
inline double scaled(double full, double tiny) {
  return smoke_mode() ? tiny : full;
}

inline void title(const std::string& id, const std::string& what,
                  const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", id.c_str(), what.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline const char* short_verdict(Stability s) {
  switch (s) {
    case Stability::kPositiveRecurrent:
      return "stable";
    case Stability::kTransient:
      return "transient";
    case Stability::kBorderline:
      return "borderline";
  }
  return "?";
}

inline const char* short_verdict(ProbeVerdict v) {
  switch (v) {
    case ProbeVerdict::kStable:
      return "stable";
    case ProbeVerdict::kUnstable:
      return "unstable";
    case ProbeVerdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

/// "yes" iff theory and measurement agree (borderline counts as agreeing
/// with anything, inconclusive with nothing but is flagged).
inline const char* agreement(Stability theory, ProbeVerdict measured) {
  if (theory == Stability::kBorderline) return "n/a";
  if (measured == ProbeVerdict::kInconclusive) return "~";
  const bool match =
      (theory == Stability::kPositiveRecurrent &&
       measured == ProbeVerdict::kStable) ||
      (theory == Stability::kTransient && measured == ProbeVerdict::kUnstable);
  return match ? "yes" : "NO";
}

}  // namespace p2p::bench
