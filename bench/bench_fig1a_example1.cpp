// E1 — Fig. 1(a) / Example 1: single-piece file (K = 1).
//
// Paper: the system is stable iff lambda0 < Us / (1 - mu/gamma) (for
// mu < gamma), and stable at any load when gamma <= mu. Sweeping lambda0
// across the critical rate must flip the simulated behaviour exactly
// where Theorem 1 says, and in the transient region the population grows
// at rate ~ (lambda0 - lambda0*).
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"

int main() {
  using namespace p2p;
  bench::title("E1", "Example 1 (K = 1): critical arrival rate sweep",
               "Fig. 1(a), Section IV Example 1; boundary lambda0* = "
               "Us/(1 - mu/gamma)");

  const double us = 1.0, mu = 1.0, gamma = 2.0;
  const double critical = us / (1.0 - mu / gamma);  // = 2
  std::printf("Us = %.2f, mu = %.2f, gamma = %.2f  =>  lambda0* = %.3f\n",
              us, mu, gamma, critical);

  ProbeOptions options;
  options.horizon = bench::scaled(1500.0, 60.0);
  options.sample_dt = bench::scaled(5.0, 2.0);
  options.replicas = bench::scaled(6, 1);
  options.initial_one_club = bench::scaled(100, 10);

  std::printf("\n%9s %9s %11s %15s %11s %9s %6s\n", "lambda0", "ratio",
              "theory", "slope (pred)", "slope (sim)", "tail N", "agree");
  for (const double ratio :
       {0.25, 0.50, 0.75, 0.95, 1.10, 1.25, 1.50, 2.00}) {
    const double lambda0 = ratio * critical;
    const auto params = SwarmParams::example1(lambda0, us, mu, gamma);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    const double predicted_slope =
        theory.verdict == Stability::kTransient
            ? (lambda0 - critical) / lambda0  // normalized by lambda_total
            : 0.0;
    std::printf("%9.3f %9.2f %11s %15.3f %11.3f %9.1f %6s\n", lambda0, ratio,
                bench::short_verdict(theory.verdict), predicted_slope,
                probe.normalized_slope, probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }

  bench::section("altruistic regime (gamma <= mu): stable at any load");
  ProbeOptions alt_options = options;
  alt_options.horizon = bench::scaled(3000.0, 80.0);
  std::printf("%9s %9s %11s %11s %9s %6s\n", "lambda0", "gamma", "theory",
              "slope(sim)", "tail N", "agree");
  for (const double lambda0 : {2.0, 8.0, 20.0}) {
    const auto params = SwarmParams::example1(lambda0, 0.1, mu, 0.8 * mu);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, alt_options);
    std::printf("%9.1f %9.2f %11s %11.3f %9.1f %6s\n", lambda0, 0.8 * mu,
                bench::short_verdict(theory.verdict), probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }
  std::printf(
      "\nshape check: verdict flips at ratio 1; transient slopes track "
      "(lambda0 - lambda0*)/lambda0.\n");
  return 0;
}
