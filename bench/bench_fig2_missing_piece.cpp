// E4 — Fig. 2: flow of peers through the five groups of the transience
// proof (normal young / infected / one-club / former one-club / gifted).
//
// Paper: in the transient regime, starting from a large one-club, the
// one-club grows linearly at rate ~ Delta_{F-{1}} while infected and
// gifted peers stay a vanishing fraction; in the stable regime the same
// initial one-club drains. We print both trajectories, group by group,
// and compare the measured one-club growth rate against Delta.
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

void run_panel(const SwarmParams& params, double horizon) {
  const auto theory = classify(params);
  const double delta = delta_S(
      params, PieceSet::full(params.num_pieces()).without(0));
  std::printf("model: %s\n", params.to_string().c_str());
  std::printf("theory: %s, Delta_{F-{1}} = %+.3f (one-club growth rate)\n\n",
              bench::short_verdict(theory.verdict), delta);

  const PieceSet one_club = PieceSet::full(params.num_pieces()).without(0);
  OnlineStats early_slopes, late_slopes;
  for (std::uint64_t seed = 2024; seed < 2027; ++seed) {
    SwarmSimOptions options;
    options.rng_seed = seed;
    SwarmSim sim(params, options);
    sim.inject_peers(one_club, bench::scaled(300, 30));
    const bool print_table = seed == 2024;
    if (print_table) {
      std::printf("%8s %8s | %9s %9s %9s %9s %9s\n", "time", "N", "young(a)",
                  "infect(b)", "club(e)", "former(f)", "gifted(g)");
    }
    TimeSeries club_series;
    club_series.push(0.0, static_cast<double>(sim.groups().one_club));
    const double dt = horizon / 12;
    sim.run_sampled(horizon, dt, [&](double t) {
      const GroupCounts& groups = sim.groups();
      if (print_table) {
        std::printf("%8.0f %8lld | %9lld %9lld %9lld %9lld %9lld\n", t,
                    static_cast<long long>(sim.total_peers()),
                    static_cast<long long>(groups.normal_young),
                    static_cast<long long>(groups.infected),
                    static_cast<long long>(groups.one_club),
                    static_cast<long long>(groups.former_one_club),
                    static_cast<long long>(groups.gifted));
      }
      club_series.push(t, static_cast<double>(groups.one_club));
    });
    // Early window captures the drain of a stable flash crowd (which hits
    // zero and then flattens); the tail the sustained transient growth.
    early_slopes.add(
        linear_fit(club_series, 0, club_series.size() / 2).slope);
    late_slopes.add(tail_fit(club_series, 0.5).slope);
  }
  std::printf(
      "\none-club rate (3 replicas): predicted %+.3f | measured early "
      "%+.3f, late %+.3f\n"
      "(stable runs drain to ~0 and flatten, so |early| is the drain rate "
      "and is capped by emptying; transient runs sustain the late rate)\n",
      delta, early_slopes.mean(), late_slopes.mean());
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E4", "missing piece syndrome: Fig. 2 group populations",
               "Fig. 2 and Section V/VI; one-club grows at rate "
               "Delta_{F-{1}} when positive, drains when negative");

  // K = 3; arrivals: empty peers plus some gifted peers carrying piece 1
  // (so all five groups are populated). Seed small => transient.
  bench::section("transient regime (small seed)");
  const SwarmParams transient(
      3, 0.2, 1.0, 2.0,
      {{PieceSet{}, 2.0}, {PieceSet::single(0), 0.15}});
  run_panel(transient, bench::scaled(3000.0, 100.0));

  // Same arrivals, strong seed => stable: the same 300-peer one-club
  // drains.
  bench::section("stable regime (strong seed), same flash crowd");
  const SwarmParams stable(
      3, 2.5, 1.0, 2.0,
      {{PieceSet{}, 2.0}, {PieceSet::single(0), 0.15}});
  run_panel(stable, bench::scaled(1200.0, 100.0));

  std::printf(
      "\nshape check: (e) grows ~linearly at Delta in the transient panel "
      "and collapses in the stable panel; (b)+(g) remain a small fraction "
      "of N throughout (the branching argument of Section VI).\n");
  return 0;
}
