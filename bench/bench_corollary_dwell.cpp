// E8 — the paper's headline corollary: if every peer dwells just long
// enough to upload ONE extra piece after completing (1/gamma >= 1/mu),
// the swarm is stable at ANY arrival rate, with any positive seed.
//
// We sweep gamma/mu across 1 at a high load and a tiny seed: Theorem 1
// flips from "stable regardless of load" (gamma <= mu) to "transient"
// (gamma > mu, since Us is far below lambda (1 - mu/gamma)), and the
// simulation follows. We also print the minimal dwell time the theory
// demands for each load (max_stabilizing_seed_depart_rate).
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"

int main() {
  using namespace p2p;
  bench::title("E8", "one extra uploaded piece stabilizes any load",
               "Theorem 1(b) second bullet + Section I corollary");

  const int k = 3;
  const double us = 0.1, mu = 1.0, lambda = 6.0;
  std::printf("K = %d, Us = %.2f, mu = %.1f, lambda(empty) = %.1f\n", k, us,
              mu, lambda);
  std::printf(
      "(the gamma = mu row sits exactly on the branch boundary: stable by "
      "Theorem 1(b), but the seed branching is critical, so finite-horizon "
      "slopes converge very slowly there)\n");

  ProbeOptions options;
  options.horizon = bench::scaled(4000.0, 80.0);
  options.sample_dt = bench::scaled(10.0, 2.0);
  options.replicas = bench::scaled(5, 1);
  options.initial_one_club = bench::scaled(100, 10);

  bench::section("sweep gamma across mu");
  std::printf("%9s %9s %11s %11s %9s %6s\n", "gamma", "dwell", "theory",
              "slope(sim)", "tail N", "agree");
  for (const double gamma : {0.5, 0.8, 1.0, 1.25, 2.0, 4.0}) {
    const SwarmParams params(k, us, mu, gamma, {{PieceSet{}, lambda}});
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    std::printf("%9.2f %9.2f %11s %11.3f %9.1f %6s\n", gamma, 1.0 / gamma,
                bench::short_verdict(theory.verdict), probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }

  bench::section("minimal dwell demanded by the theory, per load");
  std::printf("%9s %16s %16s\n", "lambda", "max gamma", "min dwell 1/gamma");
  for (const double l : {0.5, 2.0, 6.0, 20.0, 100.0}) {
    const SwarmParams params(k, us, mu, 4.0, {{PieceSet{}, l}});
    const double gamma_star = max_stabilizing_seed_depart_rate(params);
    std::printf("%9.1f %16.4f %16.4f\n", l, gamma_star, 1.0 / gamma_star);
  }
  std::printf(
      "\nshape check: stability flips exactly at gamma = mu; as the load "
      "grows, the demanded dwell converges to 1/mu — one piece upload time "
      "— and never exceeds it.\n");
  return 0;
}
