// E13 — fluid (mean-field) limit vs stochastic simulation.
//
// The worked examples of Section IV argue through deterministic drift
// heuristics; the related model of Massoulie & Vojnovic [11] makes that a
// fluid ODE. This bench quantifies how well the fluid path of our Eq.-(1)
// drift tracks the simulated mean as the load scales up (fluid limits are
// exact in the scaling limit; at small populations stochasticity shows).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/fluid.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace {

using namespace p2p;

/// Mean simulated N_t at the given times, over replicas.
std::vector<double> simulated_means(const SwarmParams& params,
                                    const std::vector<double>& times,
                                    int replicas) {
  std::vector<OnlineStats> stats(times.size());
  for (int r = 0; r < replicas; ++r) {
    SwarmSimOptions options;
    options.rng_seed = 40 + static_cast<std::uint64_t>(r);
    SwarmSim sim(params, options);
    std::size_t next = 0;
    // run_sampled with the finest grid, record at requested times.
    sim.run_sampled(times.back(), times.front(), [&](double t) {
      if (next < times.size() && t + 1e-9 >= times[next]) {
        stats[next].add(static_cast<double>(sim.total_peers()));
        ++next;
      }
    });
  }
  std::vector<double> means;
  means.reserve(stats.size());
  for (const auto& s : stats) means.push_back(s.mean());
  return means;
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E13", "fluid limit vs simulated mean trajectory",
               "Section IV drift heuristics; fluid limit in the style of "
               "[11] (Massoulie-Vojnovic)");

  // Stable K = 2 system, scaled load: lambda and Us both multiplied by s.
  const std::vector<double> times = {10, 20, 40, 80, 160, 320};
  std::printf("K = 2, mu = 1, gamma = 3, base lambda = 1, base Us = 2; "
              "load and seed scaled together by s\n\n");
  for (const double scale : {1.0, 10.0, 100.0}) {
    const SwarmParams params(2, 2.0 * scale, 1.0, 3.0,
                             {{PieceSet{}, 1.0 * scale}});
    const FluidModel model(params);
    std::vector<double> fluid_n;
    {
      FluidState y(4, 0.0);
      double t = 0;
      for (double target : times) {
        y = model.integrate(y, target - t, 0.02);
        t = target;
        fluid_n.push_back(FluidModel::total(y));
      }
    }
    // More replicas at small scale, where single-path noise dominates.
    const int replicas = scale <= 1.0 ? 60 : scale <= 10.0 ? 25 : 8;
    const auto sim_n = simulated_means(params, times, replicas);
    std::printf("scale s = %.0f\n%8s %12s %12s %10s\n", scale, "t",
                "fluid N", "sim mean N", "rel err");
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::printf("%8.0f %12.2f %12.2f %9.1f%%\n", times[i], fluid_n[i],
                  sim_n[i],
                  100.0 * (fluid_n[i] - sim_n[i]) /
                      std::max(1.0, sim_n[i]));
    }
    std::printf("\n");
  }

  bench::section("transient one-club growth: fluid vs Delta_S");
  {
    const SwarmParams params(3, 0.2, 1.0, 2.0,
                             {{PieceSet{}, 2.0}, {PieceSet::single(0), 0.15}});
    const PieceSet club = PieceSet::full(3).without(0);
    const double delta = delta_S(params, club);
    const FluidModel model(params);
    FluidState y = model.point_mass(club, 5000.0);
    const FluidState mid = model.integrate(y, 300.0, 0.05);
    const FluidState late = model.integrate(mid, 300.0, 0.05);
    std::printf("Delta_S = %.3f, fluid one-club growth = %.3f\n", delta,
                (late[club.mask()] - mid[club.mask()]) / 300.0);
  }

  std::printf(
      "\nshape check: the relative error of the fluid path shrinks as the "
      "scale grows (mean-field exactness in the limit), and the fluid "
      "one-club rate reproduces Delta_S — the quantity Theorem 1 signs.\n");
  return 0;
}
