// E2 — Fig. 1(b) / Example 2: K = 4, two complementary arrival types
// {1,2} and {3,4}, no seed, immediate departure.
//
// Paper: stable iff lambda12 < 2 lambda34 AND lambda34 < 2 lambda12 — a
// cone in the (lambda12, lambda34) plane. Sweeping the ratio across
// [0.3, 3] must show instability outside (1/2, 2) and stability inside.
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"

int main() {
  using namespace p2p;
  bench::title("E2",
               "Example 2 (K = 4, complementary halves): stability cone",
               "Fig. 1(b), Section IV Example 2; stable iff 1/2 < "
               "lambda12/lambda34 < 2");

  const double lambda34 = 1.0, mu = 1.0;
  ProbeOptions options;
  options.horizon = bench::scaled(1500.0, 60.0);
  options.sample_dt = bench::scaled(5.0, 2.0);
  options.replicas = bench::scaled(3, 1);
  options.initial_one_club = bench::scaled(150, 10);

  std::printf("\nlambda34 = %.2f, mu = %.2f\n", lambda34, mu);
  std::printf("%9s %9s %11s %13s %11s %9s %6s\n", "lambda12", "ratio",
              "theory", "crit piece", "slope(sim)", "tail N", "agree");
  for (const double ratio : {0.30, 0.45, 0.60, 1.00, 1.60, 1.90, 2.20, 3.00}) {
    const double lambda12 = ratio * lambda34;
    const auto params = SwarmParams::example2(lambda12, lambda34, mu);
    const auto theory = classify(params);
    const auto probe = probe_swarm(params, options);
    std::printf("%9.3f %9.2f %11s %13d %11.3f %9.1f %6s\n", lambda12, ratio,
                bench::short_verdict(theory.verdict),
                theory.critical_piece + 1, probe.normalized_slope,
                probe.mean_tail_peers,
                bench::agreement(theory.verdict, probe.verdict));
  }

  bench::section("which one-club wins outside the cone");
  std::printf(
      "ratio > 2: type {1,2} floods; scarce pieces are 3,4 (critical piece "
      "3).\nratio < 1/2: type {3,4} floods; scarce pieces are 1,2.\n");
  std::printf(
      "\nshape check: verdicts flip at ratios 1/2 and 2; the critical piece "
      "switches sides.\n");
  return 0;
}
