// E6 — Theorem 15 / Section VIII-B: network coding vs the missing piece
// syndrome when peers arrive with random coded pieces.
//
// Paper headline: with gifted fraction f = lambda1/lambda_total of peers
// arriving with one uniformly random coded piece (Us = 0, gamma = inf),
// the coded system is transient for f < q/((q-1)K) and positive recurrent
// for f > q^2/((q-1)^2 K). For q = 64, K = 200 that bracket is
// [0.00507, 0.00516]. WITHOUT coding the same system is transient for
// every f < 1 (Theorem 1) — coding turns a vanishing gift rate into
// stability.
#include <cstdio>

#include "analysis/stability_probe.hpp"
#include "bench_util.hpp"
#include "coding/coded_swarm.hpp"
#include "core/coding_stability.hpp"
#include "core/model.hpp"
#include "core/stability.hpp"
#include "sim/stats.hpp"

namespace {

using namespace p2p;

/// Coded swarm: slope of N_t from a coded one-club start.
double coded_slope(int k, int q, double lambda_total, double f,
                   std::uint64_t seed, double horizon) {
  CodedSwarmParams params;
  params.num_pieces = k;
  params.field_size = q;
  params.seed_rate = 0.0;
  params.contact_rate = 1.0;
  params.arrivals = {{(1.0 - f) * lambda_total, 0}, {f * lambda_total, 1}};
  CodedSwarmSim sim(params, seed);
  // Coded one-club: span{e2..eK} (inside the hyperplane x1 = 0).
  std::vector<GfVector> basis;
  for (int i = 1; i < k; ++i) {
    GfVector v(static_cast<std::size_t>(k), 0);
    v[static_cast<std::size_t>(i)] = 1;
    basis.push_back(v);
  }
  sim.inject_peers(basis, 200);
  TimeSeries series;
  series.push(0.0, static_cast<double>(sim.total_peers()));
  sim.run_sampled(horizon, horizon / 200, [&](double t) {
    series.push(t, static_cast<double>(sim.total_peers()));
  });
  return tail_fit(series, 0.5).slope / lambda_total;
}

/// Uncoded counterpart: gifted peers carry one uniformly random *data*
/// piece. Theorem 1 makes this transient for every f < 1.
double uncoded_slope(int k, double lambda_total, double f,
                     std::uint64_t seed, double horizon) {
  std::vector<ArrivalSpec> arrivals = {{PieceSet{}, (1.0 - f) * lambda_total}};
  for (int piece = 0; piece < k; ++piece) {
    arrivals.push_back(
        {PieceSet::single(piece), f * lambda_total / k});
  }
  const SwarmParams params(k, 0.0, 1.0, kInfiniteRate, std::move(arrivals));
  ProbeOptions options;
  options.horizon = horizon;
  options.sample_dt = horizon / 200;
  options.replicas = 1;
  options.initial_one_club = 200;
  options.base_seed = seed;
  const TimeSeries series = swarm_peer_series(params, options, seed);
  return tail_fit(series, 0.5).slope / lambda_total;
}

}  // namespace

int main() {
  using namespace p2p;
  bench::title("E6", "network coding vs gifted arrivals",
               "Theorem 15, Section VIII-B; thresholds q/((q-1)K) and "
               "q^2/((q-1)^2 K)");

  bench::section("paper-scale thresholds (analytic)");
  {
    const auto t = coded_gift_thresholds(64, 200);
    std::printf("q = 64, K = 200: transient below f = %.5f, recurrent above "
                "f = %.5f (paper: 0.00507 / 0.00516)\n",
                t.transient_below, t.recurrent_above);
    std::printf("exact Eq. (55) recurrence threshold: f = %.5f\n",
                t.recurrent_above_exact);
  }

  const int k = 6, q = 8;
  const double lambda_total = 2.0;
  const double horizon = bench::scaled(1500.0, 60.0);
  const auto t = coded_gift_thresholds(q, k);
  bench::section("simulable scale: q = 8, K = 6");
  std::printf("thresholds: transient below %.4f, recurrent above %.4f\n\n",
              t.transient_below, t.recurrent_above);
  std::printf("%8s %14s %14s %16s\n", "f", "coded slope", "coded verdict",
              "theory (coded)");
  for (const double f : {0.02, 0.08, 0.14, 0.20, 0.25, 0.40, 0.70}) {
    const double slope =
        0.5 * (coded_slope(k, q, lambda_total, f, 91, horizon) +
               coded_slope(k, q, lambda_total, f, 92, horizon));
    const char* theory = f < t.transient_below ? "transient"
                         : f > t.recurrent_above ? "stable"
                                                 : "(gap)";
    std::printf("%8.3f %14.3f %14s %16s\n", f, slope,
                slope > 0.02 ? "unstable" : "stable", theory);
  }

  bench::section("uncoded counterpart (one random data piece, Theorem 1)");
  std::printf("%8s %14s %16s\n", "f", "uncoded slope", "theory (uncoded)");
  for (const double f : {0.25, 0.70, 0.95}) {
    const double slope =
        0.5 * (uncoded_slope(k, lambda_total, f, 93, horizon) +
               uncoded_slope(k, lambda_total, f, 94, horizon));
    std::printf("%8.3f %14.3f %16s\n", f, slope, "transient");
  }

  std::printf(
      "\nshape check: coded slopes drop to ~0 once f clears the coded "
      "threshold (~%.2f here); uncoded slopes stay positive even at "
      "f = 0.95, matching 'transient for any f < 1'.\n",
      t.recurrent_above);
  return 0;
}
