// GF(q) arithmetic: field axioms as parameterized property tests across
// prime and power-of-two sizes, plus exhaustive inverse checks.
#include "coding/gf.hpp"

#include <gtest/gtest.h>

#include "rand/rng.hpp"

namespace p2p {
namespace {

TEST(GfHelpers, IsPrime) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_TRUE(is_prime(251));
  EXPECT_TRUE(is_prime(32749));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(4));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(GfHelpers, SupportedPowersOfTwo) {
  for (int q : {2, 4, 8, 16, 32, 64, 128, 256}) {
    EXPECT_TRUE(is_supported_power_of_two(q)) << q;
  }
  EXPECT_FALSE(is_supported_power_of_two(512));
  EXPECT_FALSE(is_supported_power_of_two(6));
  EXPECT_FALSE(is_supported_power_of_two(1));
}

class GfAxiomsTest : public ::testing::TestWithParam<int> {
 protected:
  GaloisField gf_{GetParam()};
  Rng rng_{static_cast<std::uint64_t>(GetParam())};

  GaloisField::Elem random_elem() {
    return static_cast<GaloisField::Elem>(
        rng_.uniform_int(static_cast<std::uint64_t>(gf_.size())));
  }
  GaloisField::Elem random_nonzero() {
    return static_cast<GaloisField::Elem>(
        1 + rng_.uniform_int(static_cast<std::uint64_t>(gf_.size() - 1)));
  }
};

TEST_P(GfAxiomsTest, AdditiveGroup) {
  for (int i = 0; i < 500; ++i) {
    const auto a = random_elem(), b = random_elem(), c = random_elem();
    EXPECT_EQ(gf_.add(a, b), gf_.add(b, a));
    EXPECT_EQ(gf_.add(gf_.add(a, b), c), gf_.add(a, gf_.add(b, c)));
    EXPECT_EQ(gf_.add(a, 0), a);
    EXPECT_EQ(gf_.add(a, gf_.neg(a)), 0);
    EXPECT_EQ(gf_.sub(gf_.add(a, b), b), a);
  }
}

TEST_P(GfAxiomsTest, MultiplicativeGroup) {
  for (int i = 0; i < 500; ++i) {
    const auto a = random_nonzero(), b = random_nonzero(),
               c = random_nonzero();
    EXPECT_EQ(gf_.mul(a, b), gf_.mul(b, a));
    EXPECT_EQ(gf_.mul(gf_.mul(a, b), c), gf_.mul(a, gf_.mul(b, c)));
    EXPECT_EQ(gf_.mul(a, 1), a);
    EXPECT_EQ(gf_.mul(a, gf_.inv(a)), 1);
    EXPECT_EQ(gf_.div(gf_.mul(a, b), b), a);
  }
}

TEST_P(GfAxiomsTest, Distributivity) {
  for (int i = 0; i < 500; ++i) {
    const auto a = random_elem(), b = random_elem(), c = random_elem();
    EXPECT_EQ(gf_.mul(a, gf_.add(b, c)),
              gf_.add(gf_.mul(a, b), gf_.mul(a, c)));
  }
}

TEST_P(GfAxiomsTest, ZeroAnnihilates) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gf_.mul(random_elem(), 0), 0);
  }
}

TEST_P(GfAxiomsTest, InverseExhaustive) {
  // Every nonzero element has a unique two-sided inverse.
  if (gf_.size() > 512) GTEST_SKIP() << "exhaustive check for small q only";
  for (int a = 1; a < gf_.size(); ++a) {
    const auto e = static_cast<GaloisField::Elem>(a);
    const auto inv = gf_.inv(e);
    EXPECT_NE(inv, 0);
    EXPECT_EQ(gf_.mul(e, inv), 1);
    EXPECT_EQ(gf_.mul(inv, e), 1);
  }
}

TEST_P(GfAxiomsTest, PowMatchesRepeatedMul) {
  const auto a = random_nonzero();
  GaloisField::Elem acc = 1;
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(gf_.pow(a, e), acc);
    acc = gf_.mul(acc, a);
  }
}

TEST_P(GfAxiomsTest, MultiplicativeOrderDividesQMinus1) {
  // Fermat: a^(q-1) = 1 for all nonzero a.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gf_.pow(random_nonzero(),
                      static_cast<std::uint64_t>(gf_.size() - 1)),
              1);
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, GfAxiomsTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16, 32, 64, 101,
                                           128, 251, 256, 32749));

TEST(GfDeath, RejectsUnsupportedSizes) {
  EXPECT_DEATH(GaloisField(6), "");
  EXPECT_DEATH(GaloisField(512), "");
  EXPECT_DEATH(GaloisField(1), "");
}

TEST(GfDeath, ZeroHasNoInverse) {
  const GaloisField gf(7);
  EXPECT_DEATH(gf.inv(0), "zero");
}

TEST(Gf256, MatchesKnownReedSolomonValues) {
  // Spot-check GF(256) with poly 0x11D: 2 * 2 = 4, 0x80 * 2 = 0x1D ^ 0 =
  // 0x1D... (0x80 << 1 = 0x100 -> xor 0x11D = 0x1D).
  const GaloisField gf(256);
  EXPECT_EQ(gf.mul(2, 2), 4);
  EXPECT_EQ(gf.mul(0x80, 2), 0x1D);
  EXPECT_EQ(gf.add(0x53, 0xCA), 0x53 ^ 0xCA);
}

}  // namespace
}  // namespace p2p
