// Subspace algebra over F_q^K: dimension growth, membership, random
// elements, and the usefulness probability formula of Section VIII-B.
#include "coding/subspace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hpp"

namespace p2p {
namespace {

GfVector unit(int k, int coord) {
  GfVector v(static_cast<std::size_t>(k), 0);
  v[static_cast<std::size_t>(coord)] = 1;
  return v;
}

TEST(Subspace, StartsAtDimZero) {
  const GaloisField gf(4);
  const Subspace s(gf, 5);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_FALSE(s.complete());
  EXPECT_TRUE(s.contains(GfVector(5, 0)));
}

TEST(Subspace, InsertIndependentVectorsGrowsDim) {
  const GaloisField gf(5);
  Subspace s(gf, 3);
  EXPECT_TRUE(s.insert(unit(3, 0)));
  EXPECT_TRUE(s.insert(unit(3, 2)));
  EXPECT_EQ(s.dim(), 2);
  EXPECT_FALSE(s.insert(unit(3, 0)));  // dependent
  EXPECT_EQ(s.dim(), 2);
  EXPECT_TRUE(s.insert(unit(3, 1)));
  EXPECT_TRUE(s.complete());
}

TEST(Subspace, ZeroVectorNeverUseful) {
  const GaloisField gf(2);
  Subspace s(gf, 4);
  EXPECT_FALSE(s.insert(GfVector(4, 0)));
  EXPECT_EQ(s.dim(), 0);
}

TEST(Subspace, ContainsLinearCombinations) {
  const GaloisField gf(7);
  Subspace s(gf, 4);
  GfVector a = unit(4, 0);
  a[1] = 3;
  GfVector b = unit(4, 2);
  b[3] = 5;
  s.insert(a);
  s.insert(b);
  // 2a + 4b
  GfVector combo(4, 0);
  for (int c = 0; c < 4; ++c) {
    combo[static_cast<std::size_t>(c)] =
        gf.add(gf.mul(2, a[static_cast<std::size_t>(c)]),
               gf.mul(4, b[static_cast<std::size_t>(c)]));
  }
  EXPECT_TRUE(s.contains(combo));
  EXPECT_FALSE(s.contains(unit(4, 1)));
}

TEST(Subspace, RandomElementAlwaysInside) {
  const GaloisField gf(8);
  Subspace s(gf, 6);
  Rng rng(3);
  s.insert(random_vector(gf, 6, rng));
  s.insert(random_vector(gf, 6, rng));
  s.insert(random_vector(gf, 6, rng));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.contains(s.random_element(rng)));
  }
}

TEST(Subspace, RandomElementIsUniform) {
  // In a dim-2 subspace over GF(2) there are 4 elements; each should
  // appear with frequency ~1/4.
  const GaloisField gf(2);
  Subspace s(gf, 3);
  s.insert(unit(3, 0));
  s.insert(unit(3, 1));
  Rng rng(5);
  int zeros = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const GfVector v = s.random_element(rng);
    bool all_zero = true;
    for (auto e : v) all_zero &= e == 0;
    zeros += all_zero;
  }
  EXPECT_NEAR(zeros / static_cast<double>(trials), 0.25, 0.02);
}

TEST(Subspace, InsideHyperplane) {
  const GaloisField gf(3);
  Subspace s(gf, 3);
  s.insert(unit(3, 1));
  s.insert(unit(3, 2));
  EXPECT_TRUE(s.inside_hyperplane(0));
  EXPECT_FALSE(s.inside_hyperplane(1));
  GfVector v = unit(3, 0);
  v[1] = 2;
  s.insert(v);
  EXPECT_FALSE(s.inside_hyperplane(0));
}

TEST(Subspace, IntersectionDim) {
  const GaloisField gf(5);
  Subspace a(gf, 4), b(gf, 4);
  a.insert(unit(4, 0));
  a.insert(unit(4, 1));
  b.insert(unit(4, 1));
  b.insert(unit(4, 2));
  EXPECT_EQ(a.intersection_dim(b), 1);  // span{e1}
  EXPECT_EQ(a.intersection_dim(a), 2);
  const Subspace empty(gf, 4);
  EXPECT_EQ(a.intersection_dim(empty), 0);
}

TEST(Subspace, RandomFillReachesFullDim) {
  // K independent uniform vectors are full rank with high probability;
  // keep inserting until complete and count attempts (should be ~K + q
  // slack).
  const GaloisField gf(16);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Subspace s(gf, 8);
    int attempts = 0;
    while (!s.complete()) {
      s.insert(random_vector(gf, 8, rng));
      ++attempts;
      ASSERT_LT(attempts, 100);
    }
    EXPECT_GE(attempts, 8);
  }
}

class UsefulProbabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(UsefulProbabilityTest, FormulaMatchesEmpiricalFrequency) {
  // P{random element of B useful to A} = 1 - q^{dim(A ∩ B) - dim(B)}.
  const GaloisField gf(GetParam());
  const int k = 5;
  Rng rng(11);
  Subspace a(gf, k), b(gf, k);
  // A = span{e0, e1}; B = span{e1, e2, e3} => A∩B = span{e1}, dim 1.
  a.insert(unit(k, 0));
  a.insert(unit(k, 1));
  b.insert(unit(k, 1));
  b.insert(unit(k, 2));
  b.insert(unit(k, 3));
  const double p = useful_probability(a, b);
  EXPECT_NEAR(p, 1.0 - std::pow(GetParam(), 1.0 - 3.0), 1e-12);

  int useful = 0;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    Subspace copy = a;
    useful += copy.insert(b.random_element(rng));
  }
  EXPECT_NEAR(useful / static_cast<double>(trials), p,
              5.0 * std::sqrt(p * (1 - p) / trials) + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Fields, UsefulProbabilityTest,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(UsefulProbability, AtLeastOneMinusOneOverQWhenHelpful) {
  // If V_B !⊂ V_A the probability is >= 1 - 1/q (Section VIII-B).
  const GaloisField gf(4);
  const int k = 6;
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Subspace a(gf, k), b(gf, k);
    for (int i = 0; i < 2; ++i) a.insert(random_vector(gf, k, rng));
    for (int i = 0; i < 3; ++i) b.insert(random_vector(gf, k, rng));
    // Check premise: B not inside A.
    bool b_inside_a = true;
    for (const auto& row : b.basis()) b_inside_a &= a.contains(row);
    if (b_inside_a) continue;
    EXPECT_GE(useful_probability(a, b), 1.0 - 1.0 / 4 - 1e-12);
  }
}

}  // namespace
}  // namespace p2p
