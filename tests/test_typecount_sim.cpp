// Backend-equivalence suite for TypeCountSim (sim/typecount_sim.hpp).
//
// The type-count backend claims the *same law* as the per-peer SwarmSim
// and ctmc's samplers on its domain (RandomUseful, eta = 1, homogeneous
// rates) while integrating silent events out analytically. These tests
// pin that claim for K <= 3:
//   * occupancy pmf and per-type means against the exact truncated
//     stationary solver (the strongest anchor: no sampler on either side);
//   * occupancy pmf against SwarmSim and ExactGeneratorSampler under
//     matched horizons (three-way statistical agreement);
//   * conservation identities, flash injection, sojourn/Little's law,
//     A_t / D_t parity with SwarmSim in expectation;
//   * the silent-event aggregation itself: nominal_events() agrees with
//     the nominal event count TypeCountChain materializes.
#include "sim/typecount_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ctmc/stationary.hpp"
#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

std::vector<double> occupancy_pmf(SwarmBackend& sim, double warmup,
                                  double horizon, double dt,
                                  std::int64_t cap) {
  sim.run_until(warmup);
  std::vector<double> pmf(static_cast<std::size_t>(cap + 1), 0.0);
  std::int64_t samples = 0;
  // Both concrete backends expose run_sampled with identical pre-event
  // semantics; dispatch by hand since the interface keeps it concrete.
  const auto sample = [&](double) {
    ++samples;
    pmf[static_cast<std::size_t>(std::min(cap, sim.total_peers()))] += 1.0;
  };
  if (auto* tc = dynamic_cast<TypeCountSim*>(&sim)) {
    tc->run_sampled(horizon, dt, sample);
  } else {
    dynamic_cast<SwarmSim&>(sim).run_sampled(horizon, dt, sample);
  }
  for (auto& p : pmf) p /= static_cast<double>(samples);
  return pmf;
}

class TypeCountSimOccupancyTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
};

// Anchor: the exact truncated stationary solver (same tolerances as
// test_typecount_distribution.cpp uses for TypeCountChain).
TEST_P(TypeCountSimOccupancyTest, PmfAndTypeMeansMatchExactSolver) {
  const auto [k, lambda, us, gamma] = GetParam();
  const SwarmParams params(k, us, 1.0, gamma, {{PieceSet{}, lambda}});
  // The truncated solver's state count grows like C(cap + 2^K, 2^K);
  // tighten the cap as K grows, staying far above the occupied range.
  const std::int64_t cap = k == 1 ? 50 : (k == 2 ? 25 : 12);
  const auto solved = solve_truncated_swarm(params, cap);

  TypeCountSim sim(params, TypeCountSimOptions{.rng_seed = 77});
  sim.run_until(500.0);
  std::vector<double> pmf(static_cast<std::size_t>(cap + 1), 0.0);
  std::vector<double> type_means(std::size_t{1} << k, 0.0);
  std::int64_t samples = 0;
  sim.run_sampled(30000.0, 1.5, [&](double) {
    ++samples;
    const TypeCountState& s = sim.state();
    pmf[static_cast<std::size_t>(std::min(cap, s.total_peers()))] += 1.0;
    for (std::size_t m = 0; m < s.num_types(); ++m) {
      type_means[m] += static_cast<double>(s.count(m));
    }
  });
  for (auto& p : pmf) p /= static_cast<double>(samples);
  for (auto& m : type_means) m /= static_cast<double>(samples);

  for (std::int64_t n = 0; n <= 12; ++n) {
    const double exact = solved.peer_count_pmf(n);
    if (exact < 0.01) continue;
    EXPECT_NEAR(pmf[static_cast<std::size_t>(n)], exact, 0.15 * exact + 0.01)
        << "P{N = " << n << "}";
  }
  for_each_subset(PieceSet::full(k), [&](PieceSet c) {
    const double exact = solved.mean_count(c);
    if (exact < 0.05) return;
    EXPECT_NEAR(type_means[c.mask()], exact, 0.2 * exact + 0.03)
        << "E[x_" << c.to_string() << "]";
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TypeCountSimOccupancyTest,
    ::testing::Values(
        std::make_tuple(1, 1.0, 2.0, 3.0),
        std::make_tuple(1, 0.5, 1.0, kInfiniteRate),
        std::make_tuple(2, 0.7, 2.0, 3.0),
        std::make_tuple(2, 0.5, 1.5, kInfiniteRate),
        std::make_tuple(3, 0.5, 2.0, kInfiniteRate),
        std::make_tuple(2, 1.0, 2.0, 0.8)));  // altruistic branch

// Three-way agreement: TypeCountSim vs SwarmSim vs ExactGeneratorSampler
// on one K = 3 configuration with typed arrivals (example 3's mix), all
// run to the same horizon. Per-cell tolerance: each estimate is a time
// average over ~2e4 samples; 0.02 absolute covers 5+ sigma for every
// pmf cell compared.
TEST(TypeCountSim, ThreeSamplersAgreeOnOccupancy) {
  const SwarmParams params(3, 1.0, 1.0, kInfiniteRate,
                           {{PieceSet::single(0), 0.4},
                            {PieceSet::single(1).with(2), 0.5}});
  const std::int64_t cap = 30;
  const double warmup = 300.0;
  const double horizon = 20000.0;
  const double dt = 1.0;

  TypeCountSim typecount(params, TypeCountSimOptions{.rng_seed = 41});
  SwarmSim per_peer(params, SwarmSimOptions{.rng_seed = 42});
  const std::vector<double> pmf_typecount =
      occupancy_pmf(typecount, warmup, horizon, dt, cap);
  const std::vector<double> pmf_per_peer =
      occupancy_pmf(per_peer, warmup, horizon, dt, cap);

  ExactGeneratorSampler exact(params, 43);
  exact.run_until(warmup);
  std::vector<double> pmf_exact(static_cast<std::size_t>(cap + 1), 0.0);
  std::int64_t samples = 0;
  exact.run_sampled(horizon, dt, [&](double, const TypeCountState& s) {
    ++samples;
    pmf_exact[static_cast<std::size_t>(
        std::min(cap, s.total_peers()))] += 1.0;
  });
  for (auto& p : pmf_exact) p /= static_cast<double>(samples);

  for (std::int64_t n = 0; n <= cap; ++n) {
    const auto i = static_cast<std::size_t>(n);
    if (pmf_exact[i] < 0.01 && pmf_typecount[i] < 0.01 &&
        pmf_per_peer[i] < 0.01) {
      continue;
    }
    EXPECT_NEAR(pmf_typecount[i], pmf_exact[i], 0.02) << "P{N=" << n << "}";
    EXPECT_NEAR(pmf_typecount[i], pmf_per_peer[i], 0.02)
        << "P{N=" << n << "}";
  }
}

// Counting-process parity: every download moves a peer one piece closer,
// so over a run from empty, arrivals - departures = population and
// downloads account exactly for the pieces held (immediate departure:
// departed peers held K each).
TEST(TypeCountSim, ConservationIdentitiesHold) {
  const int k = 3;
  const SwarmParams params(k, 1.0, 1.0, kInfiniteRate,
                           {{PieceSet{}, 1.0}});
  TypeCountSim sim(params, TypeCountSimOptions{.rng_seed = 7});
  sim.run_until(2000.0);
  const SwarmCounters& c = sim.counters();
  EXPECT_EQ(c.arrivals - c.departures, sim.total_peers());
  // Empty-type arrivals: every piece in the system was downloaded.
  std::int64_t held = 0;
  const TypeCountState& s = sim.state();
  for (std::size_t m = 0; m < s.num_types(); ++m) {
    held += s.count(m) *
            static_cast<std::int64_t>(PieceSet(std::uint64_t{m}).size());
  }
  EXPECT_EQ(c.downloads, held + c.departures * k);
  // A_t counts every empty-type arrival; D_t every tracked download.
  EXPECT_EQ(c.arrivals_without_tracked, c.arrivals);
  EXPECT_LE(c.downloads_of_tracked, c.downloads);
  // Silent contacts are aggregated away, never materialized.
  EXPECT_EQ(c.silent_contacts, 0);
  EXPECT_GT(sim.nominal_events(), static_cast<double>(sim.effective_steps()));
}

TEST(TypeCountSim, FlashInjectionAndOneClubDynamics) {
  // One-club flash crowd under immediate departure: the missing piece
  // only enters through the fixed seed, so departures <= seed downloads
  // and every departure's sojourn is recorded.
  const int k = 3;
  SwarmParams params(k, 0.5, 1.0, kInfiniteRate,
                     SwarmParams::one_club_mix(k));
  params = params.with_arrivals_scaled(0.2);
  TypeCountSim sim(params, TypeCountSimOptions{.rng_seed = 9});
  sim.inject_peers(PieceSet::full(k).without(0), 500);
  EXPECT_EQ(sim.total_peers(), 500);
  EXPECT_EQ(sim.peer_seeds(), 0);
  sim.run_until(50.0);
  const SwarmCounters& c = sim.counters();
  // Every departure was a one-club peer completing via the tracked piece.
  EXPECT_EQ(c.departures, c.downloads_of_tracked);
  EXPECT_EQ(sim.sojourn_stats().count(), c.departures);
  EXPECT_EQ(sim.total_peers(), 500 + c.arrivals - c.departures);
  // No arrival carries piece 0.
  EXPECT_EQ(c.arrivals_without_tracked, c.arrivals);
}

TEST(TypeCountSim, SojournTimeMatchesLittlesLaw) {
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  TypeCountSim sim(params, TypeCountSimOptions{.rng_seed = 99});
  sim.run_until(500.0);
  OnlineStats n_stats;
  sim.run_sampled(30000.0, 2.0, [&](double) {
    n_stats.add(static_cast<double>(sim.total_peers()));
  });
  const double mean_n = n_stats.mean();
  const double mean_sojourn = sim.sojourn_stats().mean();
  EXPECT_NEAR(mean_n, params.total_arrival_rate() * mean_sojourn,
              0.1 * mean_n);
}

// A_t / D_t in expectation: both backends see the same arrival process
// and (in steady state) the same download flux of the tracked piece, so
// the counting rates must agree between backends.
TEST(TypeCountSim, CountingProcessesMatchPerPeerInExpectation) {
  const SwarmParams params(2, 1.5, 1.0, kInfiniteRate,
                           {{PieceSet{}, 0.8}});
  const double horizon = 20000.0;
  TypeCountSim typecount(params, TypeCountSimOptions{.rng_seed = 5});
  SwarmSim per_peer(params, SwarmSimOptions{.rng_seed = 6});
  typecount.run_until(horizon);
  per_peer.run_until(horizon);
  const double a_rate_tc =
      static_cast<double>(typecount.counters().arrivals_without_tracked) /
      horizon;
  const double a_rate_pp =
      static_cast<double>(per_peer.arrivals_without_tracked()) / horizon;
  // Both are Poisson(lambda * t) / t at lambda = 0.8: sd ~ 0.0063.
  EXPECT_NEAR(a_rate_tc, 0.8, 0.05);
  EXPECT_NEAR(a_rate_pp, a_rate_tc, 0.05);
  const double d_rate_tc =
      static_cast<double>(typecount.counters().downloads_of_tracked) /
      horizon;
  const double d_rate_pp =
      static_cast<double>(per_peer.downloads_of_tracked()) / horizon;
  // In steady state the tracked-piece download rate equals the departure
  // flux = arrival rate (every departed peer downloaded it exactly once).
  EXPECT_NEAR(d_rate_tc, d_rate_pp, 0.08);
}

// The silent-aggregation estimator: nominal_events() must agree with the
// event count an event-per-contact sampler draws over the same horizon.
// TypeCountChain's steps ARE nominal events, so compare rates.
TEST(TypeCountSim, NominalEventEstimateMatchesEventLevelChain) {
  // Deep in the stable region (lambda well under Us) so the occupancy
  // integral — and with it the nominal event count — concentrates; near
  // criticality its run-to-run variance would swamp the comparison.
  const SwarmParams params(2, 2.0, 1.0, kInfiniteRate,
                           {{PieceSet{}, 0.5}});
  const double horizon = 20000.0;
  TypeCountSim aggregated(params, TypeCountSimOptions{.rng_seed = 11});
  TypeCountChain event_level(params, 12);
  aggregated.run_until(horizon);
  event_level.run_until(horizon);
  // gamma = inf: every departure rides on a completing download (there
  // are no standalone seed-departure events), so the chain's event count
  // is arrivals + downloads + silent ticks.
  const double nominal_chain = static_cast<double>(
      event_level.arrivals_seen() + event_level.downloads_seen() +
      event_level.silent_ticks_seen());
  const double nominal_sim = aggregated.nominal_events();
  // Two independent runs: the occupancy integral's autocorrelated noise
  // leaves a few percent of run-to-run spread even this deep in the
  // stable region.
  EXPECT_NEAR(nominal_sim / nominal_chain, 1.0, 0.08);
  // And the aggregation is real: fewer materialized steps than events.
  EXPECT_LT(static_cast<double>(aggregated.effective_steps()),
            0.9 * nominal_sim);
}

// Immediate-departure complete injections never join the population
// (parity with SwarmSim::add_peer).
TEST(TypeCountSim, CompleteInjectionUnderImmediateDepartureDeparts) {
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 1.0}});
  TypeCountSim sim(params, TypeCountSimOptions{.rng_seed = 3});
  sim.inject_peers(PieceSet::full(2), 10);
  EXPECT_EQ(sim.total_peers(), 0);
  EXPECT_EQ(sim.counters().departures, 10);
}

}  // namespace
}  // namespace p2p
