// TypeCountChain (event-level sampler) vs the enumerated generator: both
// must realize the same CTMC. We check event accounting, invariants, and
// distributional agreement between the fast and the reference sampler.
#include "ctmc/typecount_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/stability.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

TEST(TypeCountChain, ArrivalsFollowPoissonRate) {
  const SwarmParams params(2, 0.0, 1.0, 2.0, {{PieceSet{}, 3.0}});
  TypeCountChain chain(params, 1);
  chain.run_until(2000.0);
  // N(0, 2000] ~ Poisson(6000); 5 sigma window.
  EXPECT_NEAR(static_cast<double>(chain.arrivals_seen()), 6000.0,
              5.0 * std::sqrt(6000.0));
}

TEST(TypeCountChain, ConservationOfPeers) {
  const SwarmParams params(3, 0.5, 1.0, 2.0, {{PieceSet{}, 2.0}});
  TypeCountChain chain(params, 2);
  chain.run_until(500.0);
  EXPECT_EQ(chain.total_peers(),
            chain.arrivals_seen() - chain.departures_seen());
  EXPECT_GE(chain.total_peers(), 0);
}

TEST(TypeCountChain, NoSeedsEverWithImmediateDeparture) {
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  TypeCountChain chain(params, 3);
  for (int i = 0; i < 20000; ++i) {
    chain.step();
    ASSERT_EQ(chain.state().seeds(), 0);
  }
}

TEST(TypeCountChain, DownloadsNeverExceedContactOpportunities) {
  const SwarmParams params(4, 1.0, 1.0, 2.0, {{PieceSet{}, 2.0}});
  TypeCountChain chain(params, 4);
  chain.run_until(300.0);
  // Every download uses a seed tick or a peer tick; silent ticks are the
  // rest. Downloads + silent = total ticks.
  EXPECT_GT(chain.silent_ticks_seen(), 0);
  EXPECT_GT(chain.downloads_seen(), 0);
}

TEST(TypeCountChain, SetStateRejectsSeedsWhenImmediate) {
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  TypeCountChain chain(params, 5);
  TypeCountState bad(2);
  bad.add(PieceSet::full(2), 1);
  EXPECT_DEATH(chain.set_state(bad), "gamma");
}

TEST(TypeCountChain, RunSampledEmitsRegularGrid) {
  const SwarmParams params(1, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  TypeCountChain chain(params, 6);
  std::vector<double> times;
  chain.run_sampled(100.0, 10.0, [&](double t, const TypeCountState&) {
    times.push_back(t);
  });
  ASSERT_EQ(times.size(), 10u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], 10.0 * static_cast<double>(i + 1), 1e-9);
  }
}

// Distributional cross-validation: the fast event-level sampler and the
// enumerated-generator sampler must agree on E[N] and E[x_F] in a stable
// system (same CTMC, independent randomness).
class SamplerAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SamplerAgreementTest, MeanPopulationsAgree) {
  const auto [k, gamma] = GetParam();
  // Comfortably stable: lambda well below Us/(1 - mu/gamma).
  const SwarmParams params(k, 2.0, 1.0, gamma, {{PieceSet{}, 1.0}});

  const double warmup = 300.0, horizon = 4000.0, dt = 2.0;
  OnlineStats fast_n, fast_seeds;
  TypeCountChain fast(params, 11);
  fast.run_until(warmup);
  fast.run_sampled(horizon, dt, [&](double, const TypeCountState& s) {
    fast_n.add(static_cast<double>(s.total_peers()));
    fast_seeds.add(static_cast<double>(s.seeds()));
  });

  OnlineStats slow_n, slow_seeds;
  ExactGeneratorSampler slow(params, 12);
  slow.run_until(warmup);
  slow.run_sampled(horizon, dt, [&](double, const TypeCountState& s) {
    slow_n.add(static_cast<double>(s.total_peers()));
    slow_seeds.add(static_cast<double>(s.seeds()));
  });

  // Autocorrelated samples: use a generous tolerance (absolute + relative).
  const double tol_n = 0.15 * std::max(1.0, fast_n.mean());
  EXPECT_NEAR(fast_n.mean(), slow_n.mean(), tol_n);
  const double tol_s = 0.2 * std::max(0.5, fast_seeds.mean());
  EXPECT_NEAR(fast_seeds.mean(), slow_seeds.mean(), tol_s);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplerAgreementTest,
    ::testing::Values(std::make_tuple(1, 2.0), std::make_tuple(2, 2.0),
                      std::make_tuple(3, 4.0),
                      std::make_tuple(2, kInfiniteRate)));

TEST(TypeCountChain, StableSystemStaysBounded) {
  const auto params = SwarmParams::example1(1.0, 1.0, 1.0, 4.0);
  // critical lambda = 1/(1-0.25) = 1.333 > 1: stable.
  TypeCountChain chain(params, 21);
  chain.run_until(5000.0);
  EXPECT_LT(chain.total_peers(), 200);
}

TEST(TypeCountChain, TransientSystemGrowsLinearly) {
  const auto params = SwarmParams::example1(3.0, 1.0, 1.0, 4.0);
  // critical lambda = 1.333 < 3: transient; excess rate ~ 1.67/unit time.
  TypeCountChain chain(params, 22);
  TypeCountState flash(1);
  flash.add(PieceSet{}, 500);  // one-club start (K=1: empty peers)
  chain.set_state(flash);
  chain.run_until(1000.0);
  EXPECT_GT(chain.total_peers(), 1000);
}

TEST(TypeCountChain, MissingPieceSyndromeOneClubGrows) {
  // K = 2, transient via missing piece 0. Start with a big one-club
  // (type {1}); the one-club keeps growing.
  const SwarmParams params(2, 0.2, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kTransient);
  TypeCountChain chain(params, 23);
  TypeCountState start(2);
  start.add(PieceSet::single(1), 400);
  chain.set_state(start);
  chain.run_until(500.0);
  EXPECT_GT(chain.state().count(PieceSet::single(1)), 800);
}

}  // namespace
}  // namespace p2p
