// Uniformization transient solver: closed-form two-state relaxation,
// M/M/1 transient mean against simulation, convergence to the stationary
// solver, and exact E[N_t] for the truncated swarm chain vs the
// simulators.
#include "ctmc/transient_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

TEST(Transient, TwoStateClosedForm) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: P{X_t = 1 | X_0 = 0} =
  // a/(a+b) (1 - e^{-(a+b)t}).
  const double a = 2.0, b = 3.0;
  FiniteCtmc chain;
  chain.num_states = 2;
  chain.edges = {{0, 1, a}, {1, 0, b}};
  const TransientSolver solver(chain);
  for (const double t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    const auto dist = solver.distribution_at({1.0, 0.0}, t);
    const double expected = a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(dist[1], expected, 1e-9) << "t = " << t;
    EXPECT_NEAR(dist[0] + dist[1], 1.0, 1e-12);
  }
}

TEST(Transient, ConvergesToStationary) {
  FiniteCtmc chain;
  chain.num_states = 3;
  chain.edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 0.5}, {1, 0, 0.3}};
  const TransientSolver solver(chain);
  const auto pi = stationary_distribution(chain);
  const auto late = solver.distribution_at({1.0, 0.0, 0.0}, 200.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(late[static_cast<std::size_t>(i)],
                pi[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Transient, MMInfTransientMeanIsLambdaOverMuTimesRelaxation) {
  // M/M/inf from empty: E[N_t] = (lambda/mu)(1 - e^{-mu t}).
  const double lambda = 2.0, mu = 0.5;
  const int cap = 40;
  FiniteCtmc chain;
  chain.num_states = cap + 1;
  for (int i = 0; i < cap; ++i) chain.edges.push_back({i, i + 1, lambda});
  for (int i = 1; i <= cap; ++i) {
    chain.edges.push_back({i, i - 1, mu * i});
  }
  const TransientSolver solver(chain);
  std::vector<double> initial(static_cast<std::size_t>(cap + 1), 0.0);
  initial[0] = 1.0;
  std::vector<double> values(static_cast<std::size_t>(cap + 1));
  for (int i = 0; i <= cap; ++i) {
    values[static_cast<std::size_t>(i)] = i;
  }
  for (const double t : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double expected = lambda / mu * (1.0 - std::exp(-mu * t));
    EXPECT_NEAR(solver.expectation_at(initial, values, t), expected, 1e-6)
        << "t = " << t;
  }
}

TEST(Transient, SwarmK1MeanTrajectoryMatchesSimulation) {
  // Exact E[N_t] for the truncated K = 1 chain vs replica means of the
  // event-level sampler started empty.
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  const auto truncated = solve_truncated_swarm(params, 60);
  const TransientSolver solver(truncated.ctmc);

  std::vector<double> initial(truncated.states.size(), 0.0);
  // State 0 is the empty state (BFS root).
  ASSERT_EQ(truncated.states[0].total_peers(), 0);
  initial[0] = 1.0;
  std::vector<double> values(truncated.states.size());
  for (std::size_t i = 0; i < truncated.states.size(); ++i) {
    values[i] = static_cast<double>(truncated.states[i].total_peers());
  }

  for (const double t : {2.0, 5.0, 15.0, 40.0}) {
    const double exact = solver.expectation_at(initial, values, t);
    OnlineStats sim_mean;
    for (std::uint64_t rep = 0; rep < 400; ++rep) {
      TypeCountChain chain(params, 100 + rep);
      chain.run_sampled(t, t, [&](double, const TypeCountState& s) {
        sim_mean.add(static_cast<double>(s.total_peers()));
      });
    }
    EXPECT_NEAR(sim_mean.mean(), exact, 6.0 * sim_mean.sem() + 0.05)
        << "t = " << t;
  }
}

TEST(Transient, ZeroTimeReturnsInitial) {
  FiniteCtmc chain;
  chain.num_states = 2;
  chain.edges = {{0, 1, 1.0}, {1, 0, 1.0}};
  const TransientSolver solver(chain);
  const auto dist = solver.distribution_at({0.25, 0.75}, 0.0);
  EXPECT_NEAR(dist[0], 0.25, 1e-12);
  EXPECT_NEAR(dist[1], 0.75, 1e-12);
}

TEST(Transient, LargeTimeUsesLogWeights) {
  // a = Lambda t > 700 exercises the log-space Poisson weights.
  FiniteCtmc chain;
  chain.num_states = 2;
  chain.edges = {{0, 1, 2.0}, {1, 0, 3.0}};
  const TransientSolver solver(chain);
  const auto dist = solver.distribution_at({1.0, 0.0}, 500.0);
  EXPECT_NEAR(dist[1], 2.0 / 5.0, 1e-6);
}

}  // namespace
}  // namespace p2p
