#include "engine/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "rand/rng.hpp"

namespace p2p::engine {
namespace {

TEST(ParseAxis, Linspace) {
  const Axis axis = parse_axis("lambda=0.5:3.0:16");
  EXPECT_EQ(axis.name, "lambda");
  ASSERT_EQ(axis.values.size(), 16u);
  EXPECT_NEAR(axis.values.front(), 0.5, 1e-12);
  EXPECT_NEAR(axis.values.back(), 3.0, 1e-12);
  EXPECT_NEAR(axis.values[1] - axis.values[0], 2.5 / 15.0, 1e-12);
}

TEST(ParseAxis, SinglePointLinspaceUsesLowerEndpoint) {
  const Axis axis = parse_axis("mu=2.0:9.0:1");
  ASSERT_EQ(axis.values.size(), 1u);
  EXPECT_NEAR(axis.values[0], 2.0, 1e-12);
}

TEST(ParseAxis, SingleValueAndList) {
  EXPECT_EQ(parse_axis("k=3").values, std::vector<double>({3.0}));
  EXPECT_EQ(parse_axis("gamma=0.7,1.5,3").values,
            std::vector<double>({0.7, 1.5, 3.0}));
}

TEST(ParseAxis, InfIsAccepted) {
  const Axis axis = parse_axis("gamma=1.25,inf");
  ASSERT_EQ(axis.values.size(), 2u);
  EXPECT_EQ(axis.values[1], kInfiniteRate);
}

TEST(ParseAxisDeath, MalformedSpecsAbort) {
  EXPECT_DEATH(parse_axis("lambda"), "axis spec");
  EXPECT_DEATH(parse_axis("=1"), "axis spec");
  EXPECT_DEATH(parse_axis("lambda="), "axis spec");
  EXPECT_DEATH(parse_axis("lambda=a,b"), "numbers");
  EXPECT_DEATH(parse_axis("lambda=1:2:0"), "positive integer");
  EXPECT_DEATH(parse_axis("lambda=1:2:3:4"), "lo:hi:count");
}

TEST(ParseAxisDeath, MessagesEchoTheOffendingSpecVerbatim) {
  // A sweep command often carries half a dozen ';'-separated axes; the
  // abort must name the one that is malformed, not make the user diff
  // specs by hand.
  EXPECT_DEATH(parse_axis("lambda"), "got \"lambda\"");
  EXPECT_DEATH(parse_axis("lambda=a,b"), "got \"lambda=a,b\"");
  EXPECT_DEATH(parse_axis("lambda=1:2:0"), "got \"lambda=1:2:0\"");
  EXPECT_DEATH(parse_axis("us=1:2:3:4"), "got \"us=1:2:3:4\"");
  EXPECT_DEATH(parse_axis("gamma=inf:2:3"), "got \"gamma=inf:2:3\"");
  EXPECT_DEATH(parse_refine("lambda:zero"), "got \"lambda:zero\"");
  EXPECT_DEATH(parse_refine("lambda:-1"), "got \"lambda:-1\"");
}

TEST(ParseAxisDeath, StrtodLeniencyHolesStayClosed) {
  // strtod's grammar is looser than the spec grammar: it accepts "nan",
  // any-case "inf"/"infinity", hex floats, and leading whitespace. Only
  // the literal "inf" spelling is a valid axis value (and only on gamma,
  // checked downstream); every other strtod-ism must abort echoing the
  // offending spec — even on the axis where infinity is legal.
  EXPECT_DEATH(parse_axis("gamma=nan"), "got \"gamma=nan\"");
  EXPECT_DEATH(parse_axis("gamma=NaN"), "got \"gamma=NaN\"");
  EXPECT_DEATH(parse_axis("gamma=infinity"), "got \"gamma=infinity\"");
  EXPECT_DEATH(parse_axis("gamma=INF"), "got \"gamma=INF\"");
  EXPECT_DEATH(parse_axis("gamma=Inf"), "got \"gamma=Inf\"");
  EXPECT_DEATH(parse_axis("gamma=-inf"), "got \"gamma=-inf\"");
  EXPECT_DEATH(parse_axis("gamma=0x1p3"), "got \"gamma=0x1p3\"");
  EXPECT_DEATH(parse_axis("gamma=0X2"), "got \"gamma=0X2\"");
  EXPECT_DEATH(parse_axis("gamma= 2"), "got \"gamma= 2\"");
  // A decimal overflowing to infinity is an infinity the user did not
  // spell; it must not sneak past the finite check either.
  EXPECT_DEATH(parse_axis("gamma=1e999"), "got \"gamma=1e999\"");
  // Plain decimals (including exponents) still parse.
  EXPECT_EQ(parse_axis("gamma=1e-3").values, std::vector<double>({1e-3}));
  EXPECT_EQ(parse_axis("lambda=-2.5").values, std::vector<double>({-2.5}));
}

TEST(SweepGrid, CartesianExpansionLastAxisFastest) {
  SweepGrid grid = parse_grid("us=1,2;lambda=10,20,30");
  ASSERT_EQ(grid.num_cells(), 6u);
  EXPECT_EQ(grid.cell_values(0), std::vector<double>({1, 10}));
  EXPECT_EQ(grid.cell_values(1), std::vector<double>({1, 20}));
  EXPECT_EQ(grid.cell_values(2), std::vector<double>({1, 30}));
  EXPECT_EQ(grid.cell_values(3), std::vector<double>({2, 10}));
  EXPECT_EQ(grid.cell_values(5), std::vector<double>({2, 30}));
}

TEST(SweepGrid, SetAxisReplacesByName) {
  SweepGrid grid = default_region_grid();
  EXPECT_EQ(grid.num_cells(), 256u);  // the Theorem-1 region sweep
  grid.set_axis(parse_axis("lambda=1"));
  EXPECT_EQ(grid.num_cells(), 16u);
  ASSERT_NE(grid.find_axis("lambda"), nullptr);
  EXPECT_EQ(grid.find_axis("lambda")->values.size(), 1u);
  EXPECT_EQ(grid.find_axis("nope"), nullptr);
}

TEST(SweepGrid, SetAxisReplaceKeepsPositionAppendGoesLast) {
  // Replace-vs-append semantics: replacing an axis must keep its slot
  // (cell enumeration order depends on axis order), appending must grow
  // the axis list at the end.
  SweepGrid grid = parse_grid("us=1,2;lambda=10,20");
  ASSERT_EQ(grid.axes.size(), 2u);
  grid.set_axis(parse_axis("us=7,8,9"));
  ASSERT_EQ(grid.axes.size(), 2u);
  EXPECT_EQ(grid.axes[0].name, "us");  // still first
  EXPECT_EQ(grid.axes[0].values, std::vector<double>({7, 8, 9}));
  EXPECT_EQ(grid.axes[1].name, "lambda");
  grid.set_axis(parse_axis("mu=3"));
  ASSERT_EQ(grid.axes.size(), 3u);
  EXPECT_EQ(grid.axes[2].name, "mu");  // appended last
  EXPECT_EQ(grid.num_cells(), 6u);
  // After a replace, cell enumeration still runs the last axis fastest.
  EXPECT_EQ(grid.cell_values(1), std::vector<double>({7, 20, 3}));
  EXPECT_EQ(grid.cell_values(2), std::vector<double>({8, 10, 3}));
}

TEST(SweepGrid, CellValuesRoundTripOverRandomAxisSets) {
  // Property: cell_values is the row-major (last axis fastest) digit
  // expansion of the index — re-encoding the returned values must give
  // back the index, for every cell of randomized grids.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    SweepGrid grid;
    const int num_axes = 1 + static_cast<int>(rng.uniform_int(4ULL));
    for (int a = 0; a < num_axes; ++a) {
      Axis axis;
      axis.name = "axis" + std::to_string(a);
      const int size = 1 + static_cast<int>(rng.uniform_int(4ULL));
      for (int v = 0; v < size; ++v) {
        axis.values.push_back(static_cast<double>(a * 100 + v));
      }
      grid.axes.push_back(std::move(axis));
    }
    std::size_t expected_cells = 1;
    for (const auto& axis : grid.axes) expected_cells *= axis.values.size();
    ASSERT_EQ(grid.num_cells(), expected_cells);
    for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
      const std::vector<double> values = grid.cell_values(cell);
      ASSERT_EQ(values.size(), grid.axes.size());
      std::size_t reencoded = 0;
      for (std::size_t a = 0; a < grid.axes.size(); ++a) {
        const auto& axis_values = grid.axes[a].values;
        std::size_t digit = axis_values.size();
        for (std::size_t i = 0; i < axis_values.size(); ++i) {
          if (axis_values[i] == values[a]) {
            digit = i;
            break;
          }
        }
        ASSERT_LT(digit, axis_values.size()) << "value not on its axis";
        reencoded = reencoded * axis_values.size() + digit;
      }
      ASSERT_EQ(reencoded, cell);
    }
  }
}

TEST(SweepGrid, EmptyGridHasNoCells) {
  const SweepGrid grid;
  EXPECT_EQ(grid.num_cells(), 0u);
}

TEST(RunSweep, TheoremOneVerdictsOnKnownCells) {
  // K = 1, Us = 1, mu = 1, gamma = 1.25: critical lambda is
  // Us / (1 - mu/gamma) = 5. lambda = 1 is stable, lambda = 9 transient.
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 60;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].theory.verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(result.cells[1].theory.verdict, Stability::kTransient);
  // The transient cell piles up peers; the stable one stays modest.
  EXPECT_GT(result.cells[1].sim.final_peers_mean,
            4 * result.cells[0].sim.final_peers_mean);
}

TEST(RunSweep, ByteIdenticalAcrossThreadCounts) {
  SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.5,1.5;k=2");
  SweepOptions one;
  one.horizon = 40;
  one.threads = 1;
  SweepOptions four = one;
  four.threads = 4;
  const std::string csv1 = run_sweep(grid, one).to_table().to_csv();
  const std::string csv4 = run_sweep(grid, four).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RunSweep, SeedChangesSimButNotTheory) {
  SweepGrid grid = parse_grid("lambda=2;us=0.5;k=2");
  SweepOptions a;
  a.horizon = 80;
  a.base_seed = 1;
  SweepOptions b = a;
  b.base_seed = 2;
  const CellResult ca = run_sweep(grid, a).cells[0];
  const CellResult cb = run_sweep(grid, b).cells[0];
  EXPECT_EQ(ca.theory.verdict, cb.theory.verdict);
  EXPECT_NE(ca.sim.mean_peers_mean, cb.sim.mean_peers_mean);
}

TEST(RunSweep, CtmcColumnGatedByPieceCount) {
  // The gate now admits K = 3 (the typed-mix examples live there); K = 4
  // would need ~C(cap + 16, 16) states and stays out.
  SweepGrid grid = parse_grid("lambda=1;us=1;k=3,4;gamma=1.25");
  SweepOptions options;
  options.horizon = 20;
  options.ctmc_max_peers = 6;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.cells[0].ctmc_mean_peers));  // K = 3
  EXPECT_GT(result.cells[0].ctmc_mean_peers, 0.0);
  EXPECT_TRUE(std::isnan(result.cells[1].ctmc_mean_peers));  // K = 4
  // A skipped solve must read as "nan" in the table, never as 0 — the
  // column is documented "NaN unless the CTMC solve ran". It sits just
  // before the trailing sim_backend column.
  const Table table = result.to_table();
  EXPECT_EQ(table.row(1)[table.num_columns() - 2], "nan");
}

TEST(RunSweep, CtmcColumnGatedByStateBudget) {
  // A cap that is cheap at K = 1 (~2e3 states) is ~7e9 states at K = 3;
  // the budget guard must skip the intractable solve (NaN, like the K
  // gate) instead of hanging the sweep. This test completing at all is
  // the point — an unguarded K = 3 / cap = 60 solve would OOM.
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1,3;gamma=1.25");
  SweepOptions options;
  options.horizon = 5;
  options.ctmc_max_peers = 60;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.cells[0].ctmc_mean_peers));  // K = 1
  EXPECT_TRUE(std::isnan(result.cells[1].ctmc_mean_peers));     // K = 3
}

TEST(CellResult, CtmcDefaultsToNaNNotZero) {
  // A default-constructed cell must not claim "exact E[N] = 0": the field
  // previously default-initialized to 0, which is a valid-looking answer.
  const CellResult cell;
  EXPECT_TRUE(std::isnan(cell.ctmc_mean_peers));
  EXPECT_TRUE(std::isnan(cell.sim.mean_peers_sem));
}

TEST(RunSweep, TableSchemaIsStable) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 10;
  const Table table = run_sweep(grid, options).to_table();
  ASSERT_EQ(table.num_columns(), 22u);
  EXPECT_EQ(table.columns().front(), "cell");
  EXPECT_EQ(table.columns()[8], "mix");
  EXPECT_EQ(table.columns()[9], "hetero");
  EXPECT_EQ(table.columns()[20], "ctmc_mean_peers");
  EXPECT_EQ(table.columns().back(), "sim_backend");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(RunSweep, SingleReplicaEmitsNaNUncertainty) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 20;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 1u);
  const SimAggregate& sim = result.cells[0].sim;
  EXPECT_EQ(sim.replicas, 1);
  EXPECT_TRUE(std::isfinite(sim.mean_peers_mean));
  EXPECT_TRUE(std::isnan(sim.mean_peers_sem));
  EXPECT_TRUE(std::isnan(sim.mean_peers_lo));
  EXPECT_TRUE(std::isnan(sim.mean_peers_hi));
}

TEST(RunSweep, ReplicaAggregatesAreOrderedAndFinite) {
  SweepGrid grid = parse_grid("lambda=2;us=1;k=1");
  SweepOptions options;
  options.horizon = 60;
  options.replicas = 6;
  const SweepResult result = run_sweep(grid, options);
  const SimAggregate& sim = result.cells[0].sim;
  EXPECT_EQ(sim.replicas, 6);
  EXPECT_GT(sim.mean_peers_sem, 0.0);
  EXPECT_LE(sim.mean_peers_lo, sim.mean_peers_mean);
  EXPECT_LE(sim.mean_peers_mean, sim.mean_peers_hi);
  EXPECT_LT(sim.mean_peers_lo, sim.mean_peers_hi);
}

TEST(RunSweep, ReplicaModeByteIdenticalAcrossThreadCounts) {
  SweepGrid grid = parse_grid("lambda=1,2;us=0.5,1.5;k=2");
  SweepOptions one;
  one.horizon = 30;
  one.replicas = 5;
  one.threads = 1;
  SweepOptions four = one;
  four.threads = 4;
  const std::string csv1 = run_sweep(grid, one).to_table().to_csv();
  const std::string csv4 = run_sweep(grid, four).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RunSweep, ReplicaCiCoversExactStationaryMean) {
  // Acceptance check: a stable K = 1 cell where the truncated chain is
  // effectively exact (cap far above the typical population). The
  // replica-mean CI over warmed-up time averages must cover E[N].
  SweepGrid grid = parse_grid("lambda=1;us=1;mu=1;gamma=1.25;k=1");
  SweepOptions options;
  options.horizon = 400;
  options.warmup = 80;
  options.replicas = 16;
  options.ctmc_max_peers = 60;
  const SweepResult result = run_sweep(grid, options);
  const CellResult& cell = result.cells[0];
  ASSERT_TRUE(std::isfinite(cell.ctmc_mean_peers));
  EXPECT_LE(cell.sim.mean_peers_lo, cell.ctmc_mean_peers);
  EXPECT_GE(cell.sim.mean_peers_hi, cell.ctmc_mean_peers);
  // The CI should also be meaningfully tight, not a vacuous cover.
  EXPECT_LT(cell.sim.mean_peers_hi - cell.sim.mean_peers_lo,
            cell.ctmc_mean_peers);
}

TEST(RunSweep, WarmupRemovesEmptyStartBias) {
  // For a stable system started empty, the raw [0, T] time average sits
  // below the warmed [warmup, T] one (the transient drags it down).
  SweepGrid grid = parse_grid("lambda=2;us=1;mu=1;gamma=1.25;k=1");
  SweepOptions cold;
  cold.horizon = 200;
  cold.replicas = 8;
  SweepOptions warm = cold;
  warm.warmup = 50;
  const double cold_mean =
      run_sweep(grid, cold).cells[0].sim.mean_peers_mean;
  const double warm_mean =
      run_sweep(grid, warm).cells[0].sim.mean_peers_mean;
  EXPECT_GT(warm_mean, cold_mean);
}

TEST(RunSweep, CollapsedMeasurementWindowYieldsNaNNotZero) {
  // run_until steps whole events, so with a near-zero event rate the
  // warmup run overshoots past the horizon and the measurement window
  // collapses. The replica must report NaN (no information), never a
  // fabricated population of 0.
  SweepGrid grid = parse_grid("lambda=1e-9;us=0;mu=1;gamma=1.25;k=1");
  SweepOptions options;
  options.horizon = 1;
  options.warmup = 0.5;
  options.replicas = 3;
  const SweepResult result = run_sweep(grid, options);
  const SimAggregate& sim = result.cells[0].sim;
  EXPECT_EQ(sim.replicas, 3);
  EXPECT_TRUE(std::isnan(sim.mean_peers_mean));
  EXPECT_TRUE(std::isnan(sim.mean_peers_sem));
}

TEST(RunSweep, FlashAxisInjectsOneClubCrowd) {
  // A one-club flash crowd in a transient cell persists; final population
  // must dominate the flashless run. The theory verdict ignores flash.
  SweepGrid grid = parse_grid("lambda=2;us=0.2;mu=1;gamma=1.25;k=2;"
                              "flash=0,200");
  SweepOptions options;
  options.horizon = 30;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].flash, 0);
  EXPECT_EQ(result.cells[1].flash, 200);
  EXPECT_EQ(result.cells[0].theory.verdict, result.cells[1].theory.verdict);
  EXPECT_GT(result.cells[1].sim.final_peers_mean,
            result.cells[0].sim.final_peers_mean + 100);
}

TEST(RunSweep, EtaAxisLeavesTheoryFixedButChangesSim) {
  // Section VIII-C: faster retry does not move the stability region, so
  // the Theorem-1 columns must be identical along the eta axis while the
  // simulated trajectories differ.
  SweepGrid grid = parse_grid("lambda=2;us=0.5;mu=1;gamma=1.25;k=2;"
                              "eta=1,8");
  SweepOptions options;
  options.horizon = 60;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].theory.verdict, result.cells[1].theory.verdict);
  EXPECT_EQ(result.cells[0].theory.margin, result.cells[1].theory.margin);
  EXPECT_NE(result.cells[0].sim.mean_peers_mean,
            result.cells[1].sim.mean_peers_mean);
}

TEST(RunSweep, MissingAxesFallBackToDefaultRegionGrid) {
  // Only k given: the other four axes come from default_region_grid,
  // so the effective grid is the 256-cell region sweep at K = 1.
  SweepGrid grid = parse_grid("k=1");
  SweepOptions options;
  options.horizon = 5;
  const SweepResult result = run_sweep(grid, options);
  EXPECT_EQ(result.cells.size(), 256u);
  ASSERT_NE(result.grid.find_axis("lambda"), nullptr);
  EXPECT_EQ(result.grid.find_axis("lambda")->values.size(), 16u);
  EXPECT_EQ(result.cells[0].k, 1);
}

TEST(RunSweepDeath, UnknownAxisAborts) {
  SweepGrid grid = parse_grid("bogus=1;lambda=1");
  EXPECT_DEATH(run_sweep(grid, SweepOptions{}), "unknown sweep axis");
}

TEST(RunSweepDeath, InfOnNonGammaAxisAborts) {
  // An infinite lambda/us/mu makes the total event rate infinite and
  // the simulation would spin forever; only gamma may be inf.
  SweepGrid grid = parse_grid("lambda=inf;us=1;k=1");
  EXPECT_DEATH(run_sweep(grid, SweepOptions{}), "only the gamma axis");
}

TEST(RunSweepDeath, EtaBelowOneAborts) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1;eta=0.5");
  EXPECT_DEATH(run_sweep(grid, SweepOptions{}), "eta must be >= 1");
}

TEST(RunSweepDeath, FractionalOrNegativeFlashAborts) {
  SweepOptions options;
  options.horizon = 5;
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=1;flash=0.5"), options),
               "nonnegative integer");
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=1;flash=-2"), options),
               "nonnegative integer");
}

TEST(RunSweepDeath, InvalidReplicaOptionsAbort) {
  const SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.replicas = 0;
  EXPECT_DEATH(run_sweep(grid, options), "replicas");
  options.replicas = 1;
  options.warmup = options.horizon;
  EXPECT_DEATH(run_sweep(grid, options), "warmup");
  options.warmup = 0;
  options.confidence = 1.0;
  EXPECT_DEATH(run_sweep(grid, options), "confidence");
  options.confidence = 0.95;
  options.threads = 0;
  EXPECT_DEATH(run_sweep(grid, options), "threads");
}

}  // namespace
}  // namespace p2p::engine
