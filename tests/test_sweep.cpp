#include "engine/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"

namespace p2p::engine {
namespace {

TEST(ParseAxis, Linspace) {
  const Axis axis = parse_axis("lambda=0.5:3.0:16");
  EXPECT_EQ(axis.name, "lambda");
  ASSERT_EQ(axis.values.size(), 16u);
  EXPECT_NEAR(axis.values.front(), 0.5, 1e-12);
  EXPECT_NEAR(axis.values.back(), 3.0, 1e-12);
  EXPECT_NEAR(axis.values[1] - axis.values[0], 2.5 / 15.0, 1e-12);
}

TEST(ParseAxis, SinglePointLinspaceUsesLowerEndpoint) {
  const Axis axis = parse_axis("mu=2.0:9.0:1");
  ASSERT_EQ(axis.values.size(), 1u);
  EXPECT_NEAR(axis.values[0], 2.0, 1e-12);
}

TEST(ParseAxis, SingleValueAndList) {
  EXPECT_EQ(parse_axis("k=3").values, std::vector<double>({3.0}));
  EXPECT_EQ(parse_axis("gamma=0.7,1.5,3").values,
            std::vector<double>({0.7, 1.5, 3.0}));
}

TEST(ParseAxis, InfIsAccepted) {
  const Axis axis = parse_axis("gamma=1.25,inf");
  ASSERT_EQ(axis.values.size(), 2u);
  EXPECT_EQ(axis.values[1], kInfiniteRate);
}

TEST(ParseAxisDeath, MalformedSpecsAbort) {
  EXPECT_DEATH(parse_axis("lambda"), "axis spec");
  EXPECT_DEATH(parse_axis("=1"), "axis spec");
  EXPECT_DEATH(parse_axis("lambda="), "axis spec");
  EXPECT_DEATH(parse_axis("lambda=a,b"), "numbers");
  EXPECT_DEATH(parse_axis("lambda=1:2:0"), "positive integer");
  EXPECT_DEATH(parse_axis("lambda=1:2:3:4"), "lo:hi:count");
}

TEST(SweepGrid, CartesianExpansionLastAxisFastest) {
  SweepGrid grid = parse_grid("us=1,2;lambda=10,20,30");
  ASSERT_EQ(grid.num_cells(), 6u);
  EXPECT_EQ(grid.cell_values(0), std::vector<double>({1, 10}));
  EXPECT_EQ(grid.cell_values(1), std::vector<double>({1, 20}));
  EXPECT_EQ(grid.cell_values(2), std::vector<double>({1, 30}));
  EXPECT_EQ(grid.cell_values(3), std::vector<double>({2, 10}));
  EXPECT_EQ(grid.cell_values(5), std::vector<double>({2, 30}));
}

TEST(SweepGrid, SetAxisReplacesByName) {
  SweepGrid grid = default_region_grid();
  EXPECT_EQ(grid.num_cells(), 256u);  // the Theorem-1 region sweep
  grid.set_axis(parse_axis("lambda=1"));
  EXPECT_EQ(grid.num_cells(), 16u);
  ASSERT_NE(grid.find_axis("lambda"), nullptr);
  EXPECT_EQ(grid.find_axis("lambda")->values.size(), 1u);
  EXPECT_EQ(grid.find_axis("nope"), nullptr);
}

TEST(RunSweep, TheoremOneVerdictsOnKnownCells) {
  // K = 1, Us = 1, mu = 1, gamma = 1.25: critical lambda is
  // Us / (1 - mu/gamma) = 5. lambda = 1 is stable, lambda = 9 transient.
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 60;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].theory.verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(result.cells[1].theory.verdict, Stability::kTransient);
  // The transient cell piles up peers; the stable one stays modest.
  EXPECT_GT(result.cells[1].sim_final_peers,
            4 * result.cells[0].sim_final_peers);
}

TEST(RunSweep, ByteIdenticalAcrossThreadCounts) {
  SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.5,1.5;k=2");
  SweepOptions one;
  one.horizon = 40;
  one.threads = 1;
  SweepOptions four = one;
  four.threads = 4;
  const std::string csv1 = run_sweep(grid, one).to_table().to_csv();
  const std::string csv4 = run_sweep(grid, four).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RunSweep, SeedChangesSimButNotTheory) {
  SweepGrid grid = parse_grid("lambda=2;us=0.5;k=2");
  SweepOptions a;
  a.horizon = 80;
  a.base_seed = 1;
  SweepOptions b = a;
  b.base_seed = 2;
  const CellResult ca = run_sweep(grid, a).cells[0];
  const CellResult cb = run_sweep(grid, b).cells[0];
  EXPECT_EQ(ca.theory.verdict, cb.theory.verdict);
  EXPECT_NE(ca.sim_mean_peers, cb.sim_mean_peers);
}

TEST(RunSweep, CtmcColumnGatedByPieceCount) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=2,3;gamma=1.25");
  SweepOptions options;
  options.horizon = 20;
  options.ctmc_max_peers = 12;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(std::isfinite(result.cells[0].ctmc_mean_peers));  // K = 2
  EXPECT_GT(result.cells[0].ctmc_mean_peers, 0.0);
  EXPECT_TRUE(std::isnan(result.cells[1].ctmc_mean_peers));  // K = 3
}

TEST(RunSweep, TableSchemaIsStable) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 10;
  const Table table = run_sweep(grid, options).to_table();
  ASSERT_EQ(table.num_columns(), 13u);
  EXPECT_EQ(table.columns().front(), "cell");
  EXPECT_EQ(table.columns().back(), "ctmc_mean_peers");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(RunSweep, MissingAxesFallBackToDefaultRegionGrid) {
  // Only k given: the other four axes come from default_region_grid,
  // so the effective grid is the 256-cell region sweep at K = 1.
  SweepGrid grid = parse_grid("k=1");
  SweepOptions options;
  options.horizon = 5;
  const SweepResult result = run_sweep(grid, options);
  EXPECT_EQ(result.cells.size(), 256u);
  ASSERT_NE(result.grid.find_axis("lambda"), nullptr);
  EXPECT_EQ(result.grid.find_axis("lambda")->values.size(), 16u);
  EXPECT_EQ(result.cells[0].k, 1);
}

TEST(RunSweepDeath, UnknownAxisAborts) {
  SweepGrid grid = parse_grid("bogus=1;lambda=1");
  EXPECT_DEATH(run_sweep(grid, SweepOptions{}), "unknown sweep axis");
}

TEST(RunSweepDeath, InfOnNonGammaAxisAborts) {
  // An infinite lambda/us/mu makes the total event rate infinite and
  // the simulation would spin forever; only gamma may be inf.
  SweepGrid grid = parse_grid("lambda=inf;us=1;k=1");
  EXPECT_DEATH(run_sweep(grid, SweepOptions{}), "only the gamma axis");
}

}  // namespace
}  // namespace p2p::engine
