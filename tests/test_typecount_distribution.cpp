// Distribution-level cross-validation: the event-level sampler's
// occupancy measure against the exact truncated stationary solver, over a
// parameter grid (TEST_P). This is the strongest simulator correctness
// check in the suite: it compares the full peer-count pmf and per-type
// means, not just E[N].
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ctmc/stationary.hpp"
#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

struct Occupancy {
  std::vector<double> pmf;           // P{N = n}, n = 0..cap
  std::vector<double> type_means;    // E[x_C]
};

Occupancy simulate_occupancy(const SwarmParams& params, std::uint64_t seed,
                             double warmup, double horizon, double dt,
                             std::int64_t cap) {
  Occupancy occ;
  occ.pmf.assign(static_cast<std::size_t>(cap + 1), 0.0);
  occ.type_means.assign(std::size_t{1} << params.num_pieces(), 0.0);
  TypeCountChain chain(params, seed);
  chain.run_until(warmup);
  std::int64_t samples = 0;
  chain.run_sampled(horizon, dt, [&](double, const TypeCountState& s) {
    ++samples;
    const std::int64_t n = std::min(cap, s.total_peers());
    occ.pmf[static_cast<std::size_t>(n)] += 1.0;
    for (std::size_t m = 0; m < s.num_types(); ++m) {
      occ.type_means[m] += static_cast<double>(s.count(m));
    }
  });
  for (auto& p : occ.pmf) p /= static_cast<double>(samples);
  for (auto& m : occ.type_means) m /= static_cast<double>(samples);
  return occ;
}

class OccupancyTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
};

TEST_P(OccupancyTest, PmfAndTypeMeansMatchExactSolver) {
  const auto [k, lambda, us, gamma] = GetParam();
  const SwarmParams params(k, us, 1.0, gamma, {{PieceSet{}, lambda}});
  // The truncated state space grows like C(cap + 2^K, 2^K); keep the cap
  // tight enough for the solver while far above the occupied range.
  const std::int64_t cap = k == 1 ? 50 : 25;
  const auto solved = solve_truncated_swarm(params, cap);
  const auto occ =
      simulate_occupancy(params, 77, 500.0, 30000.0, 1.5, cap);

  // Peer-count pmf: compare the head of the distribution (mass > 1%).
  for (std::int64_t n = 0; n <= 12; ++n) {
    const double exact = solved.peer_count_pmf(n);
    if (exact < 0.01) continue;
    EXPECT_NEAR(occ.pmf[static_cast<std::size_t>(n)], exact,
                0.15 * exact + 0.01)
        << "P{N = " << n << "}";
  }
  // Per-type stationary means.
  for_each_subset(PieceSet::full(k), [&](PieceSet c) {
    const double exact = solved.mean_count(c);
    if (exact < 0.05) return;
    EXPECT_NEAR(occ.type_means[c.mask()], exact, 0.2 * exact + 0.03)
        << "E[x_" << c.to_string() << "]";
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OccupancyTest,
    ::testing::Values(
        std::make_tuple(1, 1.0, 2.0, 3.0),
        std::make_tuple(1, 0.5, 1.0, kInfiniteRate),
        std::make_tuple(2, 0.7, 2.0, 3.0),
        std::make_tuple(2, 0.5, 1.5, kInfiniteRate),
        std::make_tuple(2, 1.0, 2.0, 0.8)));  // altruistic branch

TEST(Occupancy, PeerSimMatchesExactSolverToo) {
  // Same check for the per-peer simulator on one configuration.
  const SwarmParams params(2, 2.0, 1.0, 3.0, {{PieceSet{}, 0.7}});
  const std::int64_t cap = 25;
  const auto solved = solve_truncated_swarm(params, cap);

  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 88});
  sim.run_until(500.0);
  std::vector<double> pmf(static_cast<std::size_t>(cap + 1), 0.0);
  std::int64_t samples = 0;
  sim.run_sampled(30000.0, 1.5, [&](double) {
    ++samples;
    pmf[static_cast<std::size_t>(std::min(cap, sim.total_peers()))] += 1.0;
  });
  for (auto& p : pmf) p /= static_cast<double>(samples);
  for (std::int64_t n = 0; n <= 10; ++n) {
    const double exact = solved.peer_count_pmf(n);
    if (exact < 0.01) continue;
    EXPECT_NEAR(pmf[static_cast<std::size_t>(n)], exact, 0.15 * exact + 0.01)
        << "P{N = " << n << "}";
  }
}

TEST(Occupancy, SojournTimeMatchesLittlesLaw) {
  // L = lambda_effective * W: in a stable swarm with gamma < inf every
  // arrival eventually departs, so the effective throughput equals
  // lambda_total and Little's law ties mean population to mean sojourn.
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 99});
  sim.run_until(500.0);
  OnlineStats n_stats;
  const double horizon = 30000.0;
  sim.run_sampled(horizon, 2.0, [&](double) {
    n_stats.add(static_cast<double>(sim.total_peers()));
  });
  const double mean_n = n_stats.mean();
  const double mean_sojourn = sim.sojourn_stats().mean();
  EXPECT_NEAR(mean_n, params.total_arrival_rate() * mean_sojourn,
              0.1 * mean_n);
}

}  // namespace
}  // namespace p2p
