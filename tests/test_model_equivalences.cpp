// Law-level equivalences between independent components of the library.
// These are the sharpest correctness checks we have: two systems built
// from different code paths that must realize the *same* stochastic law,
// compared against each other or against a queueing closed form.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/coded_swarm.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

// --- K = 1, gamma = infinity is exactly M/M/1 -------------------------
//
// Empty peers cannot help each other; the fixed seed completes one peer
// at a time at rate Us (it always finds a peer needing the piece). So N
// is an M/M/1 queue with arrival lambda and service Us: pi(n) =
// (1-rho) rho^n.

TEST(Equivalence, K1ImmediateDepartureIsMM1Geometric) {
  const double lambda = 0.6, us = 1.0;
  const auto params = SwarmParams::example1(lambda, us, 1.0, kInfiniteRate);
  const auto solved = solve_truncated_swarm(params, 80);
  const double rho = lambda / us;
  for (int n = 0; n < 20; ++n) {
    EXPECT_NEAR(solved.peer_count_pmf(n), (1 - rho) * std::pow(rho, n),
                1e-6)
        << "P{N = " << n << "}";
  }
  EXPECT_NEAR(solved.mean_peers(), rho / (1 - rho), 1e-4);
}

TEST(Equivalence, K1ImmediateDepartureSimulatorMatchesMM1Mean) {
  const double lambda = 0.5, us = 1.0;
  const auto params = SwarmParams::example1(lambda, us, 1.0, kInfiniteRate);
  TypeCountChain chain(params, 7);
  chain.run_until(500.0);
  OnlineStats n_stats;
  chain.run_sampled(40000.0, 2.0, [&](double, const TypeCountState& s) {
    n_stats.add(static_cast<double>(s.total_peers()));
  });
  EXPECT_NEAR(n_stats.mean(), 0.5 / 0.5, 0.1);  // rho/(1-rho) = 1
}

// --- K = 1 with dwell is M/M/1 + M/M/inf tandem-like closed balance ---
//
// Not a textbook form, but the truncated solver gives the exact answer;
// the downloaders' completion rate seen from the solver must equal
// lambda in steady state (flow balance), and seeds must satisfy
// gamma E[x_F] = lambda (every peer passes through seedhood once).

TEST(Equivalence, K1DwellFlowBalance) {
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  const auto solved = solve_truncated_swarm(params, 80);
  // gamma E[x_F] = throughput = lambda.
  EXPECT_NEAR(3.0 * solved.mean_count(PieceSet::full(1)), 1.0, 5e-3);
}

TEST(Equivalence, ThroughputEqualsArrivalRateAcrossK) {
  // Flow balance generalizes: in any stable configuration with finite
  // gamma, gamma E[x_F] = lambda_total. (Truncation caps chosen so the
  // state space stays solvable: C(cap + 2^K, 2^K) states.)
  for (const int k : {1, 2, 3}) {
    const SwarmParams params(k, 2.5, 1.0, 2.0, {{PieceSet{}, 0.5}});
    const std::int64_t cap = k == 1 ? 60 : k == 2 ? 22 : 10;
    const auto solved = solve_truncated_swarm(params, cap);
    EXPECT_NEAR(2.0 * solved.mean_count(PieceSet::full(k)), 0.5, 0.03)
        << "K = " << k;
  }
}

// --- Coded K = 1 over GF(2) is the uncoded chain with thinned rates ---
//
// A coded "piece" for K = 1 is a scalar in F_2: an upload is useful iff
// the scalar is 1 (probability 1/2). So the coded system with (Us, mu)
// has exactly the law of the uncoded K = 1 system with (Us/2, mu/2) —
// same arrivals, same gamma.

TEST(Equivalence, CodedK1Gf2IsThinnedUncodedK1) {
  const double lambda = 0.7, us = 2.0, mu = 1.0, gamma = 2.0;

  CodedSwarmParams coded;
  coded.num_pieces = 1;
  coded.field_size = 2;
  coded.seed_rate = us;
  coded.contact_rate = mu;
  coded.seed_depart_rate = gamma;
  coded.arrivals = {{lambda, 0}};
  CodedSwarmSim coded_sim(coded, 21);
  coded_sim.run_until(500.0);
  OnlineStats coded_n, coded_seeds;
  coded_sim.run_sampled(30000.0, 2.0, [&](double) {
    coded_n.add(static_cast<double>(coded_sim.total_peers()));
    coded_seeds.add(static_cast<double>(coded_sim.peer_seeds()));
  });

  const auto thinned =
      SwarmParams::example1(lambda, us / 2, mu / 2, gamma);
  const auto solved = solve_truncated_swarm(thinned, 60);

  EXPECT_NEAR(coded_n.mean(), solved.mean_peers(),
              0.1 * solved.mean_peers());
  EXPECT_NEAR(coded_seeds.mean(), solved.mean_count(PieceSet::full(1)),
              0.15 * solved.mean_count(PieceSet::full(1)) + 0.02);
}

// --- Retry boost eta on an all-silent system is a pure time rescale ---

TEST(Equivalence, BoostOnAlwaysUsefulSystemChangesNothing) {
  // K = 1 again: contacts by *incomplete* peers are always silent, and
  // those peers' boost does not affect anyone else; contacts by seeds in
  // a crowd of empty peers are almost always useful, so eta barely moves
  // a stable operating point that has few seed-to-seed collisions.
  const auto params = SwarmParams::example1(0.5, 2.0, 1.0, kInfiniteRate);
  // gamma = inf: completed peers leave instantly; there are NO peer
  // seeds, so peer ticks are all silent and eta is provably irrelevant
  // to the dynamics (only the fixed seed moves pieces).
  OnlineStats plain_n, boosted_n;
  {
    SwarmSimOptions options;
    options.rng_seed = 31;
    SwarmSim sim(params, std::make_unique<RandomUsefulPolicy>(), options);
    sim.run_until(300.0);
    sim.run_sampled(20000.0, 2.0, [&](double) {
      plain_n.add(static_cast<double>(sim.total_peers()));
    });
  }
  {
    SwarmSimOptions options;
    options.rng_seed = 32;
    options.retry_boost = 8.0;
    SwarmSim sim(params, std::make_unique<RandomUsefulPolicy>(), options);
    sim.run_until(300.0);
    sim.run_sampled(20000.0, 2.0, [&](double) {
      boosted_n.add(static_cast<double>(sim.total_peers()));
    });
  }
  EXPECT_NEAR(plain_n.mean(), boosted_n.mean(),
              0.12 * std::max(1.0, plain_n.mean()));
}

}  // namespace
}  // namespace p2p
