// SwarmSim invariants, Fig. 2 group bookkeeping, and distributional
// agreement with the aggregate TypeCountChain (same CTMC law).
#include "sim/swarm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stability.hpp"
#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

TEST(SwarmSim, StartsEmpty) {
  const SwarmParams params(3, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  SwarmSim sim(params);
  EXPECT_EQ(sim.total_peers(), 0);
  EXPECT_EQ(sim.peer_seeds(), 0);
  EXPECT_EQ(sim.groups().total(), 0);
}

TEST(SwarmSim, GroupsPartitionThePopulation) {
  const SwarmParams params(3, 1.0, 1.0, 2.0,
                           {{PieceSet{}, 1.0},
                            {PieceSet::single(0), 0.5},
                            {PieceSet::single(2), 0.5}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 7});
  for (int i = 0; i < 50000; ++i) {
    sim.step();
    ASSERT_EQ(sim.groups().total(), sim.total_peers());
    ASSERT_GE(sim.groups().normal_young, 0);
    ASSERT_GE(sim.groups().infected, 0);
    ASSERT_GE(sim.groups().one_club, 0);
    ASSERT_GE(sim.groups().former_one_club, 0);
    ASSERT_GE(sim.groups().gifted, 0);
  }
}

TEST(SwarmSim, HolderCountsMatchTypeCounts) {
  const SwarmParams params(4, 1.0, 1.0, 2.0, {{PieceSet{}, 2.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 8});
  sim.run_until(300.0);
  const TypeCountState counts = sim.type_counts();
  for (int piece = 0; piece < 4; ++piece) {
    EXPECT_EQ(sim.holders_of(piece), counts.holders_of(piece));
  }
  EXPECT_EQ(sim.total_peers(), counts.total_peers());
  EXPECT_EQ(sim.peer_seeds(), counts.seeds());
}

TEST(SwarmSim, ConservationArrivalsDepartures) {
  const SwarmParams params(2, 1.0, 1.0, 3.0, {{PieceSet{}, 2.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 9});
  sim.run_until(500.0);
  EXPECT_EQ(sim.total_peers(),
            sim.total_arrivals() - sim.total_departures());
}

TEST(SwarmSim, InjectedPeersAreNotArrivals) {
  const SwarmParams params(2, 1.0, 1.0, 3.0, {{PieceSet{}, 2.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 10});
  sim.inject_peers(PieceSet::single(1), 100);
  EXPECT_EQ(sim.total_peers(), 100);
  EXPECT_EQ(sim.total_arrivals(), 0);
  EXPECT_EQ(sim.groups().one_club, 100);  // type {1} = missing piece 0
}

TEST(SwarmSim, GiftedClassification) {
  const SwarmParams params(3, 0.0, 1.0, 2.0, {{PieceSet::single(0), 1.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 11});
  sim.run_until(50.0);
  // Every arrival carries piece 0 (the tracked piece) => all gifted.
  EXPECT_EQ(sim.groups().gifted, sim.total_peers());
}

TEST(SwarmSim, ImmediateDepartureNeverHoldsSeeds) {
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 12});
  for (int i = 0; i < 30000; ++i) {
    sim.step();
    ASSERT_EQ(sim.peer_seeds(), 0);
  }
  EXPECT_GT(sim.total_departures(), 0);
}

TEST(SwarmSim, SojournTimesRecorded) {
  const SwarmParams params(1, 2.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 13});
  sim.run_until(1000.0);
  ASSERT_GT(sim.sojourn_stats().count(), 100);
  EXPECT_GT(sim.sojourn_stats().mean(), 0.0);
}

TEST(SwarmSim, SeedSilentWhenContactingSeeds) {
  // Only peer seeds in the system (gamma finite, no downloads possible):
  // all fixed-seed ticks are silent.
  const SwarmParams params(2, 5.0, 1.0, 1e-6, {{PieceSet{}, 1e-9}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 14});
  sim.inject_peers(PieceSet::full(2), 10);
  for (int i = 0; i < 2000; ++i) sim.step();
  EXPECT_EQ(sim.total_downloads(), 0);
  EXPECT_GT(sim.silent_contacts(), 0);
}

TEST(SwarmSim, TrackedPieceCountersMatchDefinition) {
  const SwarmParams params(2, 1.0, 1.0, 2.0,
                           {{PieceSet{}, 1.0}, {PieceSet::single(0), 1.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 15});
  sim.run_until(500.0);
  // A_t counts arrivals without piece 0: about half of all arrivals.
  const double frac = static_cast<double>(sim.arrivals_without_tracked()) /
                      static_cast<double>(sim.total_arrivals());
  EXPECT_NEAR(frac, 0.5, 0.05);
  EXPECT_GT(sim.downloads_of_tracked(), 0);
  EXPECT_LE(sim.downloads_of_tracked(), sim.total_downloads());
}

TEST(SwarmSim, PieceCountMonotonePerPeerViaSojourn) {
  // Peers depart only with the full collection when gamma < infinity
  // (departure = seed departure). Verify via sojourn accounting: every
  // departure must have been a seed or completed (no partial departures).
  const SwarmParams params(3, 1.0, 1.0, 2.0, {{PieceSet{}, 1.5}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 16});
  sim.run_until(800.0);
  EXPECT_EQ(sim.sojourn_stats().count(), sim.total_departures());
}

// --- Cross-validation against the aggregate chain ---

class SimVsChainTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(SimVsChainTest, StationaryMeansAgree) {
  const auto [k, us, gamma] = GetParam();
  const SwarmParams params(k, us, 1.0, gamma, {{PieceSet{}, 1.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);

  const double warmup = 500.0, horizon = 6000.0, dt = 2.0;

  OnlineStats sim_n;
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 31});
  sim.run_until(warmup);
  sim.run_sampled(horizon, dt, [&](double) {
    sim_n.add(static_cast<double>(sim.total_peers()));
  });

  OnlineStats chain_n;
  TypeCountChain chain(params, 32);
  chain.run_until(warmup);
  chain.run_sampled(horizon, dt, [&](double, const TypeCountState& s) {
    chain_n.add(static_cast<double>(s.total_peers()));
  });

  EXPECT_NEAR(sim_n.mean(), chain_n.mean(),
              0.15 * std::max(1.0, chain_n.mean()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsChainTest,
    ::testing::Values(std::make_tuple(1, 2.0, 3.0),
                      std::make_tuple(2, 2.0, 3.0),
                      std::make_tuple(3, 2.0, kInfiniteRate),
                      std::make_tuple(2, 3.0, 1.5)));

// --- Retry boost (Section VIII-C) ---

TEST(SwarmSimRetry, BoostLeavesStableSystemStable) {
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 4.0);
  SwarmSimOptions options;
  options.retry_boost = 10.0;
  options.rng_seed = 33;
  SwarmSim sim(params, make_policy("random-useful"), options);
  sim.run_until(2000.0);
  EXPECT_LT(sim.total_peers(), 200);
}

TEST(SwarmSim, PeerSeedsUploadWithoutFixedSeed) {
  // Us = 0: the only source of pieces is an injected peer seed; with a
  // tiny gamma it dwells and must spread the file to the arriving peers.
  const SwarmParams params(2, 0.0, 1.0, 1e-6, {{PieceSet{}, 0.5}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 40});
  sim.inject_peers(PieceSet::full(2), 1);
  sim.run_until(400.0);
  EXPECT_GT(sim.total_downloads(), 50);
  EXPECT_GT(sim.peer_seeds(), 1);  // newcomers completed and dwell too
}

TEST(SwarmSim, NoUploadsEverWithoutAnySource) {
  // No seed, no pieces anywhere: downloads are impossible; peers pile up.
  const SwarmParams params(2, 0.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 41});
  sim.run_until(300.0);
  EXPECT_EQ(sim.total_downloads(), 0);
  EXPECT_EQ(sim.total_departures(), 0);
  EXPECT_EQ(sim.total_peers(), sim.total_arrivals());
}

TEST(SwarmSimRetry, UnsuccessfulContactsRetryFaster) {
  // Freeze the population as all-peer-seeds: every tick is silent, so all
  // clocks run at eta x and the tick count over a fixed horizon scales by
  // ~eta.
  const SwarmParams params(2, 0.0, 1.0, 1e-9, {{PieceSet{}, 1e-9}});
  auto run_ticks = [&](double eta) {
    SwarmSimOptions options;
    options.rng_seed = 35;
    options.retry_boost = eta;
    SwarmSim sim(params, make_policy("random-useful"), options);
    sim.inject_peers(PieceSet::full(2), 20);
    sim.run_until(200.0);
    return sim.silent_contacts();
  };
  const std::int64_t plain = run_ticks(1.0);
  const std::int64_t boosted = run_ticks(10.0);
  // Expected ~4000 vs ~40000 (first tick per peer at rate mu, then 10x).
  EXPECT_NEAR(static_cast<double>(boosted) / static_cast<double>(plain),
              10.0, 1.5);
}

TEST(SwarmSimRetry, FastRetryCanStabilizeAPushSystem) {
  // Section VIII-C's caveat, observed: boosting failed contacts raises the
  // *effective* upload capacity of dwelling peer seeds (failures are
  // retried almost immediately), which violates the model's implicit
  // symmetric-rate constraint and can stabilize a nominally transient
  // system. K = 1, lambda above the Theorem 1 threshold:
  const auto params = SwarmParams::example1(0.5, 0.2, 1.0, 4.0);
  ASSERT_EQ(classify(params).verdict, Stability::kTransient);

  SwarmSimOptions plain_options;
  plain_options.rng_seed = 34;
  SwarmSim plain(params, make_policy("random-useful"), plain_options);
  plain.run_until(1500.0);

  SwarmSimOptions boosted_options;
  boosted_options.rng_seed = 34;
  boosted_options.retry_boost = 10.0;
  SwarmSim boosted(params, make_policy("random-useful"), boosted_options);
  boosted.run_until(1500.0);

  EXPECT_GT(plain.total_peers(), 150);  // transient growth ~0.23/unit
  EXPECT_LT(boosted.total_peers(), 60);
}

TEST(SwarmSim, TimeAveragedPeersMatchesEventByEventIntegral) {
  // The population is constant between events, so the exact occupancy
  // integral can be replicated externally around step().
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 2.0}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 11});
  EXPECT_EQ(sim.time_averaged_peers(), 0.0);
  double integral = 0;
  while (sim.now() < 200.0) {
    const double t0 = sim.now();
    const double n0 = static_cast<double>(sim.total_peers());
    if (!sim.step()) break;
    integral += n0 * (sim.now() - t0);
  }
  ASSERT_GT(sim.now(), 0.0);
  EXPECT_NEAR(sim.time_averaged_peers(), integral / sim.now(),
              1e-9 * (1.0 + integral));
}

}  // namespace
}  // namespace p2p
