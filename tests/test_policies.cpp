// Piece selection policies: the usefulness contract (family H of Section
// VIII-A) as a property test across random states, plus each policy's
// specific selection rule.
#include "sim/policy.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rand/rng.hpp"

namespace p2p {
namespace {

class PolicyUsefulnessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyUsefulnessTest, AlwaysSelectsUsefulPiece) {
  auto policy = make_policy(GetParam());
  Rng rng(17);
  const int k = 12;
  std::vector<std::int64_t> holders(k);
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& h : holders) {
      h = static_cast<std::int64_t>(rng.uniform_int(100ULL));
    }
    const PieceSet target{rng.uniform_int(std::uint64_t{1} << k)};
    PieceSet useful{rng.uniform_int(std::uint64_t{1} << k)};
    useful = useful.minus(target);
    if (useful.empty()) continue;
    const SwarmView view{k, holders, 100};
    const int piece = policy->select(useful, target, view, rng);
    ASSERT_TRUE(useful.contains(piece))
        << GetParam() << " selected " << piece << " outside "
        << useful.to_string();
    ASSERT_FALSE(target.contains(piece));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyUsefulnessTest,
                         ::testing::Values("random-useful", "rarest-first",
                                           "most-common-first",
                                           "sequential"));

TEST(RandomUseful, UniformOverUsefulPieces) {
  RandomUsefulPolicy policy;
  Rng rng(19);
  const PieceSet useful = PieceSet::single(1).with(4).with(9);
  std::vector<std::int64_t> holders(10, 0);
  const SwarmView view{10, holders, 0};
  std::array<int, 10> counts{};
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(
        policy.select(useful, PieceSet{}, view, rng))];
  }
  for (int p : useful) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(p)] /
                    static_cast<double>(trials),
                1.0 / 3, 0.02);
  }
}

TEST(RarestFirst, PicksGloballyRarest) {
  RarestFirstPolicy policy;
  Rng rng(23);
  std::vector<std::int64_t> holders = {50, 3, 40, 8};
  const SwarmView view{4, holders, 60};
  const PieceSet useful = PieceSet::single(0).with(1).with(2).with(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(useful, PieceSet{}, view, rng), 1);
  }
  // Restrict usefulness: rarest among {0, 2} is 2.
  const PieceSet limited = PieceSet::single(0).with(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.select(limited, PieceSet{}, view, rng), 2);
  }
}

TEST(RarestFirst, BreaksTiesUniformly) {
  RarestFirstPolicy policy;
  Rng rng(29);
  std::vector<std::int64_t> holders = {5, 5, 9};
  const SwarmView view{3, holders, 10};
  const PieceSet useful = PieceSet::full(3);
  int zero = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const int p = policy.select(useful, PieceSet{}, view, rng);
    ASSERT_NE(p, 2);
    zero += p == 0;
  }
  EXPECT_NEAR(zero / static_cast<double>(trials), 0.5, 0.02);
}

TEST(MostCommonFirst, PicksMostReplicated) {
  MostCommonFirstPolicy policy;
  Rng rng(31);
  std::vector<std::int64_t> holders = {50, 3, 40, 8};
  const SwarmView view{4, holders, 60};
  EXPECT_EQ(policy.select(PieceSet::full(4), PieceSet{}, view, rng), 0);
  EXPECT_EQ(policy.select(PieceSet::single(1).with(3), PieceSet{}, view, rng),
            3);
}

TEST(Sequential, PicksLowestIndex) {
  SequentialPolicy policy;
  Rng rng(37);
  std::vector<std::int64_t> holders(8, 0);
  const SwarmView view{8, holders, 0};
  EXPECT_EQ(policy.select(PieceSet::single(3).with(6), PieceSet{}, view, rng),
            3);
  EXPECT_EQ(policy.select(PieceSet::single(7), PieceSet{}, view, rng), 7);
}

TEST(PolicyFactory, NamesRoundTrip) {
  for (const char* name : {"random-useful", "rarest-first",
                           "most-common-first", "sequential"}) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
}

TEST(PolicyFactoryDeath, UnknownNameAborts) {
  EXPECT_DEATH(make_policy("bittorrent"), "unknown");
}

}  // namespace
}  // namespace p2p
