// Typed-arrival-mix scenario layer: named mixes, the mix/hetero sweep
// axes, and the closed-form anchors. Every new sweep mode is checked
// against an *independently implemented* closed form (the Example 2/3
// conditions of Section IV, re-derived here like in
// test_examples_closed_form.cpp) or against the truncated-CTMC
// stationary mean — never against the library's own classifier alone.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/model.hpp"
#include "core/stability.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Independent re-derivations of the Section IV example conditions (same
// hand formulas as test_examples_closed_form.cpp).
Stability example2_closed_form(double l12, double l34) {
  if (l12 < 2 * l34 && l34 < 2 * l12) return Stability::kPositiveRecurrent;
  if (l12 > 2 * l34 || l34 > 2 * l12) return Stability::kTransient;
  return Stability::kBorderline;
}

Stability example3_closed_form(double l1, double l2, double l3, double mu,
                               double gamma) {
  if (gamma <= mu) return Stability::kPositiveRecurrent;
  const double g = gamma == kInf ? 0.0 : mu / gamma;
  const double factor = (2.0 + g) / (1.0 - g);
  const double lhs[3] = {l2 + l3, l1 + l3, l1 + l2};
  const double rhs[3] = {l1 * factor, l2 * factor, l3 * factor};
  bool all_strict = true, any_reversed = false;
  for (int i = 0; i < 3; ++i) {
    all_strict &= lhs[i] < rhs[i];
    any_reversed |= lhs[i] > rhs[i];
  }
  if (all_strict) return Stability::kPositiveRecurrent;
  if (any_reversed) return Stability::kTransient;
  return Stability::kBorderline;
}

TEST(ParseScenario, Example2DefaultsAndWeights) {
  const ScenarioSpec even = parse_scenario("example2");
  EXPECT_EQ(even.name, "example2");
  EXPECT_EQ(even.num_pieces, 4);
  ASSERT_EQ(even.mix.size(), 2u);
  EXPECT_EQ(even.mix[0].type, PieceSet::single(0).with(1));
  EXPECT_EQ(even.mix[1].type, PieceSet::single(2).with(3));
  EXPECT_NEAR(even.mix[0].rate, 0.5, 1e-12);
  EXPECT_NEAR(even.mix[1].rate, 0.5, 1e-12);

  const ScenarioSpec skewed = parse_scenario("example2:3,1");
  EXPECT_NEAR(skewed.mix[0].rate, 0.75, 1e-12);
  EXPECT_NEAR(skewed.mix[1].rate, 0.25, 1e-12);
}

TEST(ParseScenario, Example3AndOneClub) {
  const ScenarioSpec ex3 = parse_scenario("example3:1,2,3");
  EXPECT_EQ(ex3.num_pieces, 3);
  ASSERT_EQ(ex3.mix.size(), 3u);
  EXPECT_EQ(ex3.mix[2].type, PieceSet::single(2));
  EXPECT_NEAR(ex3.mix[0].rate + ex3.mix[1].rate + ex3.mix[2].rate, 1.0,
              1e-12);
  EXPECT_NEAR(ex3.mix[1].rate, 2.0 / 6.0, 1e-12);

  const ScenarioSpec club = parse_scenario("oneclub:4");
  EXPECT_EQ(club.num_pieces, 4);
  ASSERT_EQ(club.mix.size(), 1u);
  EXPECT_EQ(club.mix[0].type, PieceSet::full(4).without(0));
  EXPECT_EQ(club.mix[0].rate, 1.0);
}

TEST(ParseScenarioDeath, MalformedSpecsAbortEchoingTheSpec) {
  EXPECT_DEATH(parse_scenario("bogus"), "got \"bogus\"");
  EXPECT_DEATH(parse_scenario("example2:1"), "exactly two weights");
  EXPECT_DEATH(parse_scenario("example2:1,2,3"),
               "got \"example2:1,2,3\"");
  EXPECT_DEATH(parse_scenario("example3:1,2"), "exactly three weights");
  EXPECT_DEATH(parse_scenario("example2:"), "trailing ':'");
  EXPECT_DEATH(parse_scenario("example2:-1,2"), "nonnegative");
  EXPECT_DEATH(parse_scenario("example2:0,0"),
               "positive sum \\(got \"example2:0,0\"\\)");
  EXPECT_DEATH(parse_scenario("oneclub"), "piece count");
  EXPECT_DEATH(parse_scenario("oneclub:1"), "got \"oneclub:1\"");
  EXPECT_DEATH(parse_scenario("oneclub:2.5"), "got \"oneclub:2.5\"");
}

TEST(Expand, MixZeroReproducesTheHomogeneousCell) {
  // The m = 0 slice must be *the same model object* as the legacy
  // empty-arrival cell: one empty-type stream, no rate classes, so the
  // scenario layer cannot perturb existing sweeps.
  CellParams p;
  p.lambda = 1.5;
  p.us = 1;
  p.mu = 1;
  p.gamma = 1.25;
  p.k = 4;
  const ExpandedCell cell = expand(parse_scenario("example2"), p);
  ASSERT_EQ(cell.params.arrivals().size(), 1u);
  EXPECT_EQ(cell.params.arrivals()[0].type, PieceSet{});
  EXPECT_EQ(cell.params.arrivals()[0].rate, 1.5);
  EXPECT_TRUE(cell.sim.rate_classes.empty());
}

TEST(Expand, InterpolatesCompositionNotVolume) {
  CellParams p;
  p.lambda = 2.0;
  p.us = 0.5;
  p.mu = 1;
  p.gamma = kInf;
  p.k = 4;
  p.mix = 0.25;
  const ExpandedCell cell = expand(parse_scenario("example2:3,1"), p);
  ASSERT_EQ(cell.params.arrivals().size(), 3u);
  EXPECT_NEAR(cell.params.arrival_rate(PieceSet{}), 1.5, 1e-12);
  EXPECT_NEAR(cell.params.arrival_rate(PieceSet::single(0).with(1)),
              2.0 * 0.25 * 0.75, 1e-12);
  EXPECT_NEAR(cell.params.arrival_rate(PieceSet::single(2).with(3)),
              2.0 * 0.25 * 0.25, 1e-12);
  // The mix axis moves the composition of the load, never its volume.
  EXPECT_NEAR(cell.params.total_arrival_rate(), 2.0, 1e-12);
}

TEST(Expand, HeteroSpreadIsMeanPreserving) {
  CellParams p;
  p.lambda = 1;
  p.us = 1;
  p.mu = 1;
  p.gamma = 1.25;
  p.k = 3;
  p.hetero = 0.6;
  ScenarioSpec scenario = parse_scenario("example3");
  scenario.slow_weight = 2;
  scenario.fast_weight = 1;
  const ExpandedCell cell = expand(scenario, p);
  ASSERT_EQ(cell.sim.rate_classes.size(), 2u);
  const auto& slow = cell.sim.rate_classes[0];
  const auto& fast = cell.sim.rate_classes[1];
  EXPECT_NEAR(slow.multiplier, 0.4, 1e-12);
  EXPECT_NEAR(fast.multiplier, 1.0 + 0.6 * 2.0, 1e-12);
  EXPECT_NEAR((slow.weight * slow.multiplier + fast.weight * fast.multiplier) /
                  (slow.weight + fast.weight),
              1.0, 1e-12);
}

TEST(ExpandDeath, InvalidCellsAbort) {
  CellParams p;
  p.lambda = 1;
  p.us = 1;
  p.mu = 1;
  p.gamma = 1.25;
  p.k = 3;
  p.mix = 0.5;
  EXPECT_DEATH(expand(ScenarioSpec{}, p), "named scenario");
  EXPECT_DEATH(expand(parse_scenario("example2"), p),
               "scenario's piece count");
  p.k = 4;
  p.mix = 1.5;
  EXPECT_DEATH(expand(parse_scenario("example2"), p), "mix must lie");
}

TEST(RunSweepMix, Example2CellsMatchTheIndependentClosedForm) {
  // Full-mix Example 2 cells (us = 0, gamma = inf, K = 4): each cell's
  // Theorem-1 verdict must equal the hand-derived paired-halves
  // condition at the per-type rates the mix produces.
  SweepGrid grid = parse_grid(
      "k=4;us=0;gamma=inf;mix=1;flash=0;eta=1;hetero=0;"
      "lambda=0.4,1,2.5;mu=0.5,1,2");
  SweepOptions options;
  options.horizon = 10;
  options.scenario = parse_scenario("example2:3,1");
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 9u);
  for (const auto& cell : result.cells) {
    const double l12 = cell.lambda * 0.75;
    const double l34 = cell.lambda * 0.25;
    EXPECT_EQ(cell.theory.verdict, example2_closed_form(l12, l34))
        << "lambda=" << cell.lambda << " mu=" << cell.mu;
    // 3:1 skew means l12 > 2*l34 at every lambda: Example 2's signature
    // transience despite every arrival donating half the file.
    EXPECT_EQ(cell.theory.verdict, Stability::kTransient);
  }
  // The even mix at the same cells is strictly inside the cone: stable.
  SweepOptions even = options;
  even.scenario = parse_scenario("example2:1,1");
  for (const auto& cell : run_sweep(grid, even).cells) {
    EXPECT_EQ(cell.theory.verdict, Stability::kPositiveRecurrent);
  }
}

TEST(RunSweepMix, Example3CellsMatchTheIndependentClosedForm) {
  SweepGrid grid = parse_grid(
      "k=3;us=0;mix=1;flash=0;eta=1;hetero=0;"
      "lambda=0.6,1.5,3;mu=1;gamma=1.5,4,inf");
  SweepOptions options;
  options.horizon = 10;
  options.scenario = parse_scenario("example3:1,2,3");
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 9u);
  int transient_seen = 0;
  for (const auto& cell : result.cells) {
    const double l1 = cell.lambda * 1.0 / 6.0;
    const double l2 = cell.lambda * 2.0 / 6.0;
    const double l3 = cell.lambda * 3.0 / 6.0;
    EXPECT_EQ(cell.theory.verdict,
              example3_closed_form(l1, l2, l3, cell.mu, cell.gamma))
        << "lambda=" << cell.lambda << " gamma=" << cell.gamma;
    transient_seen += cell.theory.verdict == Stability::kTransient;
  }
  // The 1:2:3 skew crosses the Example-3 boundary somewhere in this
  // grid; a vacuously all-stable anchor would prove nothing.
  EXPECT_GT(transient_seen, 0);
}

TEST(RunSweepMix, PartialMixMatchesManuallyBuiltModel) {
  // Intermediate mix values: the cell's verdict and margin must equal
  // classify() on a SwarmParams assembled by hand from the interpolation
  // formula — anchoring expand() itself, not just its endpoints.
  SweepGrid grid = parse_grid(
      "k=4;us=1;mu=1;gamma=1.25;mix=0.3;flash=0;eta=1;hetero=0;lambda=3");
  SweepOptions options;
  options.horizon = 10;
  options.scenario = parse_scenario("example2:1,3");
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 1u);
  // Same interpolation expressions as the engine ((1 - m) * lambda is
  // not the double 0.7 * lambda), so the margins compare bit-exact.
  const SwarmParams manual(
      4, 1.0, 1.0, 1.25,
      {{PieceSet{}, (1.0 - 0.3) * 3.0},
       {PieceSet::single(0).with(1), 0.3 * 3.0 * 0.25},
       {PieceSet::single(2).with(3), 0.3 * 3.0 * 0.75}});
  const StabilityReport expected = classify(manual);
  EXPECT_EQ(result.cells[0].theory.verdict, expected.verdict);
  EXPECT_EQ(result.cells[0].theory.margin, expected.margin);
  EXPECT_EQ(result.cells[0].theory.critical_piece, expected.critical_piece);
}

TEST(RunSweepMix, ReplicaCiCoversCtmcStationaryMeanForK3Mix) {
  // A lightly loaded stable Example-3 mixed cell where the truncated
  // K = 3 chain is effectively exact: the replica-mean CI over warmed-up
  // time averages must cover the typed chain's stationary E[N].
  SweepGrid grid = parse_grid(
      "k=3;us=0.8;mu=1;gamma=2;mix=0.5;flash=0;eta=1;hetero=0;lambda=0.4");
  SweepOptions options;
  options.horizon = 400;
  options.warmup = 80;
  options.replicas = 16;
  options.ctmc_max_peers = 8;
  options.scenario = parse_scenario("example3");
  const SweepResult result = run_sweep(grid, options);
  const CellResult& cell = result.cells[0];
  ASSERT_TRUE(std::isfinite(cell.ctmc_mean_peers));
  EXPECT_GT(cell.ctmc_mean_peers, 0.0);
  EXPECT_LE(cell.sim.mean_peers_lo, cell.ctmc_mean_peers);
  EXPECT_GE(cell.sim.mean_peers_hi, cell.ctmc_mean_peers);
  EXPECT_LT(cell.sim.mean_peers_hi - cell.sim.mean_peers_lo,
            std::max(1.0, cell.ctmc_mean_peers));
}

TEST(RunSweepMix, CtmcSkipsCellsWhoseLawTheChainDoesNotModel) {
  // The truncated chain is the homogeneous-law answer: a retry boost or
  // a rate spread changes the simulator's law, so those cells must stay
  // NaN instead of posing as exact cross-checks. (K = 3 itself is now
  // within the ctmc gate.)
  SweepGrid grid = parse_grid(
      "k=3;us=1;mu=1;gamma=1.25;lambda=0.5;flash=0;mix=0;"
      "eta=1,4;hetero=0,0.5");
  SweepOptions options;
  options.horizon = 20;
  options.ctmc_max_peers = 6;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells) {
    const bool homogeneous = cell.eta == 1 && cell.hetero == 0;
    EXPECT_EQ(std::isfinite(cell.ctmc_mean_peers), homogeneous)
        << "eta=" << cell.eta << " hetero=" << cell.hetero;
  }
}

TEST(RunSweepMix, HeteroLeavesTheoryFixedButChangesSim) {
  // Theorem 1 is homogeneous in the upload rate; the mean-preserving
  // spread must leave every theory column untouched while the simulated
  // trajectories differ.
  SweepGrid grid = parse_grid("lambda=2;us=1;k=3;hetero=0,0.8");
  SweepOptions options;
  options.horizon = 60;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].theory.verdict, result.cells[1].theory.verdict);
  EXPECT_EQ(result.cells[0].theory.margin, result.cells[1].theory.margin);
  EXPECT_NE(result.cells[0].sim.mean_peers_mean,
            result.cells[1].sim.mean_peers_mean);
}

TEST(RefineMix, LocalizesTheExample2VerdictFlipClosedForm) {
  // K = 4, Us = 1, mu = 1, gamma = inf, lambda = 2, example2:3,1
  // (f34 = 1/4): transient iff lambda > Us / (1 - 3 m f34), so the flip
  // sits at m* = (1 - Us/lambda) / (3 f34) = 2/3 exactly.
  SweepGrid grid =
      parse_grid("k=4;us=1;mu=1;gamma=inf;lambda=2;mix=0:1:5");
  SweepOptions options;
  options.horizon = 30;
  options.scenario = parse_scenario("example2:3,1");
  RefineOptions refine;
  refine.axis = "mix";
  refine.tol = 1e-4;
  const FrontierResult result = refine_frontier(grid, options, refine);
  ASSERT_EQ(result.points.size(), 1u);
  const FrontierPoint& pt = result.points[0];
  ASSERT_TRUE(pt.bracketed);
  EXPECT_NEAR(pt.value, 2.0 / 3.0, refine.tol);
  EXPECT_EQ(pt.params.mix, pt.value);  // refined slot holds the estimate
  EXPECT_NEAR(pt.margin, 0.0, 0.01);
  EXPECT_TRUE(std::isfinite(pt.sim.mean_peers_mean));
}

TEST(RefineMix, OneClubMixFrontierStaysAtTheEmptyArrivalBoundary) {
  // The one-club stream contains no copy of piece 0, so piece 0's
  // threshold — and with it the critical lambda — is *identical* to the
  // empty-arrival slice no matter how large m gets: arrivals donating
  // K - 1 of K pieces buy nothing. Refining along lambda at m = 0 and
  // m = 1 must localize the same frontier, lambda* = Us/(1 - mu/gamma).
  SweepOptions options;
  options.horizon = 20;
  options.scenario = parse_scenario("oneclub:3");
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-4;
  const SweepGrid at0 =
      parse_grid("k=3;us=1;mu=1;gamma=1.25;mix=0;lambda=1:9:5");
  const SweepGrid at1 =
      parse_grid("k=3;us=1;mu=1;gamma=1.25;mix=1;lambda=1:9:5");
  const FrontierResult r0 = refine_frontier(at0, options, refine);
  const FrontierResult r1 = refine_frontier(at1, options, refine);
  ASSERT_TRUE(r0.points[0].bracketed);
  ASSERT_TRUE(r1.points[0].bracketed);
  EXPECT_NEAR(r0.points[0].value, 5.0, refine.tol);  // Us/(1-mu/gamma)
  EXPECT_NEAR(r1.points[0].value, 5.0, refine.tol);
}

TEST(RunSweepMix, ByteIdenticalAcrossThreadCounts) {
  SweepGrid grid = parse_grid(
      "k=4;us=1;gamma=inf;mix=0:1:3;hetero=0,0.5;lambda=1,2");
  SweepOptions one;
  one.horizon = 30;
  one.replicas = 4;
  one.threads = 1;
  one.scenario = parse_scenario("example2:3,1");
  SweepOptions four = one;
  four.threads = 4;
  const std::string csv1 = run_sweep(grid, one).to_table().to_csv();
  const std::string csv4 = run_sweep(grid, four).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RefineMix, ByteIdenticalAcrossThreadCounts) {
  SweepGrid grid = parse_grid(
      "k=4;us=0.5,1,1.5;mu=1;gamma=inf;lambda=2;mix=0:1:5");
  SweepOptions one;
  one.horizon = 25;
  one.replicas = 3;
  one.threads = 1;
  one.scenario = parse_scenario("example2:3,1");
  SweepOptions four = one;
  four.threads = 4;
  RefineOptions refine;
  refine.axis = "mix";
  refine.tol = 1e-3;
  const std::string csv1 =
      refine_frontier(grid, one, refine).to_table().to_csv();
  const std::string csv4 =
      refine_frontier(grid, four, refine).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RunSweepMixDeath, InvalidAxesAbort) {
  SweepOptions options;
  options.horizon = 5;
  // Nonzero mix without a scenario.
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=3;mix=0.5"), options),
               "named scenario");
  // Mix outside [0, 1].
  options.scenario = parse_scenario("oneclub:3");
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=3;mix=1.5"), options),
               "mix must lie");
  // Hetero outside [0, 1).
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=3;hetero=1"), options),
               "hetero must lie");
  // k axis disagreeing with the scenario's piece count.
  EXPECT_DEATH(run_sweep(parse_grid("lambda=1;us=1;k=4;mix=1"), options),
               "scenario's piece count");
}

}  // namespace
}  // namespace p2p::engine
