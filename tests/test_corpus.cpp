// Golden-corpus regression suite: every archive under experiments/ is
// an executable test. Each CSV must parse under the streaming reader,
// validate against the writer's schema constants, and — because the
// corpus is a lossless record — have its physics re-derivable from the
// bytes alone: grid verdicts re-classify identically, and every
// archived frontier point re-bisects out of its own row's parameters.
// A sweep change that would quietly invalidate the archives fails
// here, not in somebody's notebook months later.
//
// The directory is enumerated, not hard-coded: archiving a new corpus
// file makes it a test automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/phase_diagram.hpp"
#include "core/stability.hpp"
#include "engine/csv_reader.hpp"
#include "engine/refine.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "service/monitor.hpp"
#include "sim/event_log.hpp"

#ifndef P2P_EXPERIMENTS_DIR
#error "test_corpus needs -DP2P_EXPERIMENTS_DIR=\"...\" (see CMakeLists)"
#endif

namespace p2p::engine {
namespace {

std::vector<std::filesystem::path> corpus_files(const std::string& ext) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(P2P_EXPERIMENTS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ext) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Event logs (sim/event_log.hpp) share the .csv extension with sweep
/// reports but carry their own schema; the sweep-schema loops skip them
/// by their header signature.
bool is_event_log(const std::vector<std::string>& columns) {
  return columns == event_log_columns();
}

double cell_number(const Table& table, std::size_t row,
                   const std::string& column) {
  for (std::size_t c = 0; c < table.columns().size(); ++c) {
    if (table.columns()[c] == column) {
      return parse_report_number(table.row(row)[c], column);
    }
  }
  ADD_FAILURE() << "missing column " << column;
  return std::nan("");
}

/// Rebuilds the model of one frontier row at refined-axis value `v`,
/// from nothing but the row's own cells: the generic axis columns plus
/// the per-type composition block. This is the archive's whole promise
/// — the physics is in the bytes.
SwarmParams frontier_model_at(const Table& table, const ReportSchema& schema,
                              std::size_t row, const std::string& axis,
                              double v) {
  CellParams p;
  p.lambda = cell_number(table, row, "lambda");
  p.us = cell_number(table, row, "us");
  p.mu = cell_number(table, row, "mu");
  p.gamma = cell_number(table, row, "gamma");
  p.k = static_cast<int>(std::lround(cell_number(table, row, "k")));
  p.eta = cell_number(table, row, "eta");
  p.flash = std::llround(cell_number(table, row, "flash"));
  p.mix = cell_number(table, row, "mix");
  p.hetero = cell_number(table, row, "hetero");

  ScenarioSpec scenario;
  if (schema.has_scenario && p.mix > 0 && p.lambda > 0) {
    scenario.name = "archived";
    scenario.num_pieces = p.k;
    for (const PieceSet type : schema.mix_types) {
      const double rate =
          cell_number(table, row, mix_column_name(type)) / (p.mix * p.lambda);
      scenario.mix.push_back({type, rate});
    }
  }

  if (axis == "lambda") {
    p.lambda = v;
  } else if (axis == "us") {
    p.us = v;
  } else if (axis == "mu") {
    p.mu = v;
  } else if (axis == "gamma") {
    p.gamma = v;
  } else if (axis == "mix") {
    p.mix = v;
  } else {
    ADD_FAILURE() << "unexpected refined axis " << axis;
  }
  return expand(scenario, p).params;
}

TEST(Corpus, EveryCsvParsesAndMatchesTheWriterSchema) {
  std::size_t grids = 0, frontiers = 0;
  for (const auto& path : corpus_files(".csv")) {
    SCOPED_TRACE(path.filename().string());
    // The streaming reader path, like a corpus bigger than memory
    // would use.
    CsvReader reader(path.string());
    if (is_event_log(reader.columns())) continue;  // own suite below
    const ReportSchema schema = validate_report_schema(reader.columns());
    std::vector<std::string> cells;
    std::size_t rows = 0;
    while (reader.next_row(&cells)) {
      ASSERT_EQ(cells.size(), schema.num_columns);
      ++rows;
    }
    EXPECT_GE(rows, 1u);
    (schema.kind == ReportKind::kGrid ? grids : frontiers) += 1;
  }
  // The corpus must actually contain both kinds — an empty experiments/
  // directory passing silently would defeat the suite.
  EXPECT_GE(grids, 1u);
  EXPECT_GE(frontiers, 2u);
}

TEST(Corpus, EveryJsonArchiveIsWellFormed) {
  std::size_t found = 0;
  for (const auto& path : corpus_files(".json")) {
    SCOPED_TRACE(path.filename().string());
    std::string text;
    {
      std::FILE* f = std::fopen(path.string().c_str(), "rb");
      ASSERT_NE(f, nullptr);
      char buf[4096];
      std::size_t got = 0;
      while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, got);
      }
      std::fclose(f);
    }
    validate_json(text, path.filename().string());
    ++found;
  }
  EXPECT_GE(found, 1u);  // bench_sweep.json at minimum
}

TEST(Corpus, ArchivedGridsReclassifyFromTheirOwnBytes) {
  for (const auto& path : corpus_files(".csv")) {
    const Table table = read_csv_file(path.string());
    if (is_event_log(table.columns())) continue;
    const ReportSchema schema = validate_report_schema(table.columns());
    // Adaptive archives are not cartesian tilings; they reclassify in
    // ArchivedBoxReportsReclassifyFromTheirOwnBytes instead.
    if (schema.kind != ReportKind::kGrid || schema.has_boxes) {
      continue;
    }
    SCOPED_TRACE(path.filename().string());
    // Full structural validation (axes, tiling, per-type consistency).
    const analysis::PhaseGrid grid = analysis::build_phase_grid(table);
    EXPECT_EQ(grid.cells.size(), table.num_rows());
    // Re-derive every cell's classification from the reconstructed
    // model; margins agree to reconstruction noise, verdicts exactly
    // (no archived cell sits within noise of the boundary).
    for (const analysis::PhaseCell& cell : grid.cells) {
      const StabilityReport report =
          classify(expand(grid.scenario, cell.params).params);
      EXPECT_NEAR(report.margin, cell.margin, 1e-9);
      EXPECT_EQ(report.verdict, cell.verdict);
    }
  }
}

std::string file_bytes(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  return text;
}

TEST(Corpus, ArchivedBoxReportsReclassifyFromTheirOwnBytes) {
  // The adaptive counterpart of the grid reclassify test: every leaf
  // row's origin vertex re-derives its Theorem-1 verdict and margin from
  // the row's own parameter columns (per-type composition included, so
  // the 4-D mix volume reconstructs its scenario too). 2-D archives
  // additionally pass the full BoxGrid structural validation — the
  // leaves tile their window.
  std::size_t reports = 0, two_axis = 0;
  for (const auto& path : corpus_files(".csv")) {
    const Table table = read_csv_file(path.string());
    if (is_event_log(table.columns())) continue;
    const ReportSchema schema = validate_report_schema(table.columns());
    if (!schema.has_boxes) continue;
    SCOPED_TRACE(path.filename().string());
    ++reports;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      // frontier_model_at with the row's own lambda reconstructs the
      // row's model unchanged.
      const StabilityReport report = classify(frontier_model_at(
          table, schema, r, "lambda", cell_number(table, r, "lambda")));
      EXPECT_EQ(to_string(report.verdict), table.row(r)[schema.tail_start])
          << "row " << r;
      EXPECT_NEAR(report.margin, cell_number(table, r, "margin"), 1e-9)
          << "row " << r;
    }
    if (schema.box_axes.size() == 2) {
      const analysis::BoxGrid grid = analysis::build_box_grid(table);
      EXPECT_EQ(grid.boxes.size(), table.num_rows());
      ++two_axis;
    }
  }
  // The corpus archives both an adaptive diagram and a >2-D volume.
  EXPECT_GE(reports, 2u);
  EXPECT_GE(two_axis, 1u);
}

TEST(Corpus, AdaptiveRegionReproducesTheDenseRegionVerdicts) {
  // The acceptance anchor: on the committed 48 x 48 region_theory
  // window, the adaptive archive must agree with every dense cell it
  // claims uniformity over, cover every dense verdict flip with its
  // frontier boxes at dense-refine tolerance, and have cost under a
  // quarter of the dense sweep's 2304 cells.
  const std::string dir = P2P_EXPERIMENTS_DIR;
  const analysis::PhaseGrid dense =
      analysis::build_phase_grid(read_csv_file(dir + "/region_theory.csv"));
  const analysis::BoxGrid boxes =
      analysis::build_box_grid(read_csv_file(dir + "/region_adaptive.csv"));
  ASSERT_EQ(dense.x_axis, boxes.x_axis);
  ASSERT_EQ(dense.y_axis, boxes.y_axis);

  std::size_t frontier_cells = 0;
  for (std::size_t yi = 0; yi < dense.num_y(); ++yi) {
    const double y = dense.y_values[yi];
    for (std::size_t xi = 0; xi < dense.num_x(); ++xi) {
      const double x = dense.x_values[xi];
      const analysis::PhaseBox& box = boxes.box_at(x, y);
      if (box.uniform) {
        EXPECT_EQ(box.verdict, dense.at(yi, xi).verdict)
            << boxes.y_axis << " " << y << " " << boxes.x_axis << " " << x;
      } else {
        ++frontier_cells;
      }
    }
    // Localization: every dense verdict flip along the row lies inside
    // (or touching) some non-uniform leaf, and the frontier cover is at
    // the refine tolerance the dense pipeline would use (0.05).
    for (std::size_t xi = 0; xi + 1 < dense.num_x(); ++xi) {
      if (dense.at(yi, xi).verdict == dense.at(yi, xi + 1).verdict) continue;
      const double x_lo = dense.x_values[xi], x_hi = dense.x_values[xi + 1];
      bool covered = false;
      for (const analysis::PhaseBox& b : boxes.boxes) {
        if (!b.uniform && y >= b.y0 && y <= b.y0 + b.ext_y &&
            b.x0 <= x_hi && b.x0 + b.ext_x >= x_lo) {
          covered = true;
        }
      }
      EXPECT_TRUE(covered) << "flip at " << boxes.y_axis << " " << y
                           << " between " << x_lo << " and " << x_hi;
    }
  }
  EXPECT_GE(frontier_cells, 1u);
  EXPECT_LE(boxes.min_ext_x, 0.05);
  EXPECT_LE(boxes.min_ext_y, 0.05);

  // Budget: regenerate the archive (byte-identically, across the
  // scheduling matrix) and hold its vertex count under 25% of the dense
  // region sweep's 48 * 48 = 2304 cells.
  const SweepGrid coarse = parse_grid("lambda=0.5:3.0:5;us=0.2:1.7:5");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  adaptive.max_depth = 4;
  const std::string archived = file_bytes(dir + "/region_adaptive.csv");
  for (const int threads : {1, 8}) {
    for (const std::size_t chunk : {std::size_t{5}, std::size_t{0}}) {
      options.threads = threads;
      options.chunk = chunk;
      std::string out;
      ReportWriter writer(&out, ReportFormat::kCsv,
                          adaptive_columns(coarse, options));
      const AdaptiveSummary summary =
          run_adaptive_stream(coarse, options, adaptive, writer);
      writer.finish();
      EXPECT_EQ(out, archived) << "threads " << threads << " chunk " << chunk;
      EXPECT_LT(summary.evaluated, 2304u / 4);
      EXPECT_EQ(summary.boxes, boxes.boxes.size());
    }
  }
}

TEST(Corpus, ArchivedFrontierPointsRederiveFromTheirRows) {
  std::size_t checked = 0;
  for (const auto& path : corpus_files(".csv")) {
    const Table table = read_csv_file(path.string());
    if (is_event_log(table.columns())) continue;
    const ReportSchema schema = validate_report_schema(table.columns());
    if (schema.kind != ReportKind::kFrontier) continue;
    SCOPED_TRACE(path.filename().string());

    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      SCOPED_TRACE("row " + std::to_string(r));
      const std::string axis = table.row(r)[1];
      const bool bracketed = cell_number(table, r, "bracketed") != 0;
      if (!bracketed) continue;
      const double value = cell_number(table, r, "value");
      const double lo = cell_number(table, r, "value_lo");
      const double hi = cell_number(table, r, "value_hi");
      const double margin = cell_number(table, r, "margin");

      // The midpoint identity is exact: value was computed as
      // 0.5 * (lo + hi) from these very doubles.
      EXPECT_EQ(value, 0.5 * (lo + hi));
      EXPECT_LT(lo, hi);
      EXPECT_LE(hi - lo, 0.01);  // archived tolerances are ~1e-3

      // The bracket still brackets: the Theorem-1 verdict flips across
      // [lo, hi] for the row's reconstructed model.
      const Stability at_lo =
          classify(frontier_model_at(table, schema, r, axis, lo)).verdict;
      const Stability at_hi =
          classify(frontier_model_at(table, schema, r, axis, hi)).verdict;
      EXPECT_NE(at_lo, at_hi);

      // And the archived margin is the closed form at the midpoint.
      const StabilityReport at_value =
          classify(frontier_model_at(table, schema, r, axis, value));
      EXPECT_NEAR(at_value.margin, margin, 1e-9);
      ++checked;
    }
  }
  EXPECT_GE(checked, 10u);  // the two archived frontiers alone carry 10
}

TEST(Corpus, ArchivedReportsRegenerateByteIdentically) {
  // The archives are not merely re-derivable — the engine must still
  // EMIT them, byte for byte, at any thread count and chunk size. This
  // is the whole-pipeline determinism contract (worker-side rendering
  // included) run against the two cheapest archives; EXPERIMENTS.md
  // records the generating commands these options mirror.
  const std::string dir = P2P_EXPERIMENTS_DIR;
  {
    // p2p_sweep --grid "lambda=0.5:3.0:48;us=0.2:1.7:48" --theory-only
    const SweepGrid grid =
        parse_grid("lambda=0.5:3.0:48;us=0.2:1.7:48");
    SweepOptions options;
    options.theory_only = true;
    const std::string archived = file_bytes(dir + "/region_theory.csv");
    for (const int threads : {1, 2, 8}) {
      for (const std::size_t chunk : {std::size_t{7}, std::size_t{0}}) {
        options.threads = threads;
        options.chunk = chunk;
        std::string out;
        ReportWriter writer(&out, ReportFormat::kCsv,
                            sweep_columns(options));
        run_sweep_stream(grid, options, writer);
        writer.finish();
        EXPECT_EQ(out, archived)
            << "threads " << threads << " chunk " << chunk;
      }
    }
  }
  {
    // p2p_sweep --grid "k=2;gamma=1.25;lambda=0.75:4.75:9;us=0.2:1.0:5"
    //   --replicas 4 --warmup 100 --horizon 400 --fluid [--policy rarest]
    const SweepGrid grid =
        parse_grid("k=2;gamma=1.25;lambda=0.75:4.75:9;us=0.2:1.0:5");
    SweepOptions options;
    options.replicas = 4;
    options.warmup = 100;
    options.horizon = 400;
    options.fluid = true;
    for (const bool rarest : {false, true}) {
      options.scenario.policy =
          rarest ? PolicyKind::kRarestFirst : PolicyKind::kRandomUseful;
      const std::string archived = file_bytes(
          dir + (rarest ? "/policy_rarest_region.csv"
                        : "/policy_baseline_region.csv"));
      for (const int threads : {1, 4}) {
        options.threads = threads;
        std::string out;
        ReportWriter writer(&out, ReportFormat::kCsv,
                            sweep_columns(options));
        run_sweep_stream(grid, options, writer);
        writer.finish();
        EXPECT_EQ(out, archived)
            << (rarest ? "rarest" : "baseline") << " threads " << threads;
      }
    }
  }
  {
    // p2p_sweep --mix example2:3,1
    //   --grid "us=1;mu=1;gamma=inf;mix=0:1:5;lambda=0.6:3.0:9"
    //   --replicas 4 --warmup 100 --horizon 400
    SweepGrid grid =
        parse_grid("us=1;mu=1;gamma=inf;mix=0:1:5;lambda=0.6:3.0:9");
    SweepOptions options;
    options.scenario = parse_scenario("example2:3,1");
    // The CLI pins the k axis to the scenario's piece count when the
    // grid does not name one.
    grid.set_axis(
        Axis{"k", {static_cast<double>(options.scenario.num_pieces)}});
    options.replicas = 4;
    options.warmup = 100;
    options.horizon = 400;
    const std::string archived =
        file_bytes(dir + "/mix_example2_region.csv");
    for (const int threads : {1, 8}) {
      options.threads = threads;
      std::string out;
      ReportWriter writer(&out, ReportFormat::kCsv, sweep_columns(options));
      run_sweep_stream(grid, options, writer);
      writer.finish();
      EXPECT_EQ(out, archived) << "threads " << threads;
    }
  }
  {
    // p2p_sweep --mix example2:3,1
    //   --grid "us=0.5:1.5:3;gamma=inf;lambda=0.6:3.0:4;mu=0.8:1.2:3;mix=0:1:3"
    //   --adaptive 2 --theory-only
    SweepGrid grid = parse_grid(
        "us=0.5:1.5:3;gamma=inf;lambda=0.6:3.0:4;mu=0.8:1.2:3;mix=0:1:3");
    SweepOptions options;
    options.theory_only = true;
    options.scenario = parse_scenario("example2:3,1");
    grid.set_axis(
        Axis{"k", {static_cast<double>(options.scenario.num_pieces)}});
    AdaptiveOptions adaptive;
    adaptive.max_depth = 2;
    const std::string archived =
        file_bytes(dir + "/mix_adaptive_volume.csv");
    for (const int threads : {1, 4}) {
      options.threads = threads;
      std::string out;
      ReportWriter writer(&out, ReportFormat::kCsv,
                          adaptive_columns(grid, options));
      run_adaptive_stream(grid, options, adaptive, writer);
      writer.finish();
      EXPECT_EQ(out, archived) << "threads " << threads;
    }
  }
}

TEST(Corpus, RegionGridReproducesItsArchivedFrontier) {
  // The acceptance pairing: extract_frontier over the archived
  // mix_example2 region reproduces the separately archived frontier
  // run, row for row, to the refine tolerance (the brackets coincide,
  // so in practice bit-exactly; the tolerance guards future corpora).
  const std::string dir = P2P_EXPERIMENTS_DIR;
  const Table region = read_csv_file(dir + "/mix_example2_region.csv");
  const Table archived = read_csv_file(dir + "/mix_example2_frontier.csv");

  const analysis::PhaseGrid grid = analysis::build_phase_grid(region);
  ASSERT_EQ(grid.x_axis, "mix");
  ASSERT_EQ(grid.y_axis, "lambda");
  const auto extracted = analysis::extract_frontier(grid, 1e-3);

  std::size_t matched = 0;
  for (std::size_t r = 0; r < archived.num_rows(); ++r) {
    ASSERT_EQ(archived.row(r)[1], "mix");
    const double lambda = cell_number(archived, r, "lambda");
    const double value = cell_number(archived, r, "value");
    for (std::size_t yi = 0; yi < grid.num_y(); ++yi) {
      if (grid.y_values[yi] != lambda) continue;
      ASSERT_TRUE(extracted[yi].bracketed) << "lambda " << lambda;
      EXPECT_NEAR(extracted[yi].value, value, 2e-3) << "lambda " << lambda;
      ++matched;
    }
  }
  // Every archived frontier row's lambda appears in the region grid.
  EXPECT_EQ(matched, archived.num_rows());
}

std::vector<std::string> split_lines(const std::string& bytes) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const auto pos = bytes.find('\n', start);
    EXPECT_NE(pos, std::string::npos) << "unterminated final line";
    if (pos == std::string::npos) break;
    lines.push_back(bytes.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

TEST(Corpus, MonitorEventLogParsesWholeWithMonotoneTimestamps) {
  // The committed frontier-crossing trace: every line parses under the
  // strict event grammar, timestamps never go backwards, and all four
  // event kinds actually occur (a trace without departures or seed
  // uploads could not exercise the gamma / Us estimators it exists to
  // feed).
  const std::string bytes =
      file_bytes(std::string(P2P_EXPERIMENTS_DIR) + "/monitor_events.csv");
  ASSERT_FALSE(bytes.empty()) << "experiments/monitor_events.csv missing";
  const std::vector<std::string> lines = split_lines(bytes);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0] + "\n", event_log_csv_header());

  double prev_t = 0;
  std::size_t arrive = 0, depart = 0, piece = 0, seed = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const SwarmEvent event = parse_event_line(lines[i], i + 1, 3);
    EXPECT_GE(event.t, prev_t) << "line " << i + 1;
    prev_t = event.t;
    switch (event.kind) {
      case SwarmEventKind::kArrive: ++arrive; break;
      case SwarmEventKind::kDepart: ++depart; break;
      case SwarmEventKind::kPiece: ++piece; break;
      case SwarmEventKind::kSeed: ++seed; break;
    }
  }
  EXPECT_GE(arrive, 1u);
  EXPECT_GE(depart, 1u);
  EXPECT_GE(piece, 1u);
  EXPECT_GE(seed, 1u);
}

TEST(Corpus, MonitorAdvisoryStreamReplaysByteIdentically) {
  // The monitor determinism contract, pinned end to end: replaying the
  // committed event log through StabilityMonitor with the EXPERIMENTS.md
  // configuration reproduces the committed advisory stream byte for
  // byte — and the trace's two frontier crossings produce exactly two
  // verdict flips under the default hysteresis.
  const std::string dir = P2P_EXPERIMENTS_DIR;
  const std::string events_bytes = file_bytes(dir + "/monitor_events.csv");
  const std::string advice_bytes = file_bytes(dir + "/monitor_advice.jsonl");
  ASSERT_FALSE(events_bytes.empty());
  ASSERT_FALSE(advice_bytes.empty()) << "experiments/monitor_advice.jsonl";

  // p2p_monitor --k 3 --in monitor_events.csv --window 40 --every 5
  service::MonitorConfig config;
  config.num_pieces = 3;
  config.window = 40;
  config.buckets = 64;
  config.advice_every = 5;
  service::StabilityMonitor monitor(config);

  std::string out;
  const service::AdvisorySink sink = [&](const service::Advisory& advisory) {
    out += service::advisory_json_line(advisory);
  };
  const std::vector<std::string> lines = split_lines(events_bytes);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    monitor.feed(parse_event_line(lines[i], i + 1, 3), lines[i], i + 1,
                 sink);
  }
  monitor.finish(sink);

  EXPECT_EQ(out, advice_bytes);
  EXPECT_EQ(monitor.flips(), 2u);  // stable -> unstable -> stable
  EXPECT_EQ(monitor.verdict(), service::MonitorVerdict::kStable);
}

}  // namespace
}  // namespace p2p::engine
