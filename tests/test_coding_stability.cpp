// Theorem 15 closed forms: thresholds for the gifted-arrival family,
// consistency between the exact and relaxed recurrence bounds, the paper's
// q = 64, K = 200 headline numbers, and the q -> infinity gap collapse.
#include "core/coding_stability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace p2p {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CodedStability, MuTilde) {
  EXPECT_NEAR(coded_contact_rate(2, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(coded_contact_rate(64, 2.0), 2.0 * 63 / 64, 1e-12);
}

TEST(CodedStability, PaperHeadlineNumbers) {
  // Section VIII-B: q = 64, K = 200 => transient if f <= 0.00507,
  // positive recurrent if f >= 0.00516.
  const auto t = coded_gift_thresholds(64, 200);
  EXPECT_NEAR(t.transient_below, 0.00507, 5e-5);
  EXPECT_NEAR(t.recurrent_above, 0.00516, 5e-5);
  // The paper quotes 1.016/K and 1.032/K.
  EXPECT_NEAR(t.transient_below * 200, 64.0 / 63.0, 1e-9);
  EXPECT_NEAR(t.recurrent_above * 200, (64.0 / 63.0) * (64.0 / 63.0), 1e-9);
}

TEST(CodedStability, ExactRecurrentBoundIsTighter) {
  for (int q : {2, 4, 8, 64}) {
    for (int k : {2, 10, 100}) {
      const auto t = coded_gift_thresholds(q, k);
      EXPECT_LE(t.recurrent_above_exact, t.recurrent_above + 1e-12)
          << "q=" << q << " k=" << k;
      EXPECT_GE(t.recurrent_above_exact, t.transient_below - 1e-12);
    }
  }
}

TEST(CodedStability, GapShrinksAsQGrows) {
  const int k = 50;
  double prev_gap = kInf;
  for (int q : {2, 4, 8, 16, 64, 256}) {
    const auto t = coded_gift_thresholds(q, k);
    const double gap = t.recurrent_above - t.transient_below;
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  // At q = 256 the bracket is within ~1% of 1/K.
  const auto t = coded_gift_thresholds(256, k);
  EXPECT_NEAR(t.transient_below * k, 1.0, 0.01);
  EXPECT_NEAR(t.recurrent_above * k, 1.0, 0.01);
}

TEST(CodedStability, TransienceThresholdReducesToTheorem1Form) {
  // With gamma = infinity (g = 0) and Us: threshold =
  // Us + lambda1 (1 - 1/q) K.
  const double th = coded_transience_threshold(4, 10, 0.5, 2.0, 0.0);
  EXPECT_NEAR(th, 0.5 + 2.0 * 0.75 * 10, 1e-12);
  // Dwell scaling: dividing by (1 - mu/gamma).
  const double th_dwell = coded_transience_threshold(4, 10, 0.5, 2.0, 0.5);
  EXPECT_NEAR(th_dwell, th / 0.5, 1e-12);
}

TEST(CodedStability, RecurrenceThresholdMatchesEq55) {
  const int q = 8, k = 12;
  const double us = 0.3, lambda1 = 1.5, mu = 2.0, gamma = 10.0;
  const double frac = 1.0 - 1.0 / q;
  const double mu_tilde = frac * mu;
  const double expected =
      (us + lambda1 * frac * (k - 1 + static_cast<double>(q) / (q - 1))) *
      frac / (1.0 - mu_tilde / gamma);
  EXPECT_NEAR(coded_recurrence_threshold(q, k, us, lambda1, mu, gamma),
              expected, 1e-12);
}

TEST(CodedStability, RecurrenceThresholdInfiniteGamma) {
  const double th = coded_recurrence_threshold(4, 6, 0.0, 1.0, 1.0, kInf);
  const double frac = 0.75;
  EXPECT_NEAR(th, frac * (6 - 1 + 4.0 / 3.0) * frac, 1e-12);
}

TEST(CodedStability, ConsistencyWithGiftThresholds) {
  // For Us = 0, gamma = inf, lambda_total = 1: the exact recurrence bound
  // on f solves lambda_total = coded_recurrence_threshold(lambda1 = f).
  const int q = 8, k = 20;
  const auto t = coded_gift_thresholds(q, k);
  const double f = t.recurrent_above_exact;
  EXPECT_NEAR(coded_recurrence_threshold(q, k, 0.0, f, 1.0, kInf), 1.0,
              1e-9);
}

TEST(CodedStabilityDeath, RejectsBadFieldSize) {
  EXPECT_DEATH(coded_gift_thresholds(1, 10), "");
  EXPECT_DEATH(coded_contact_rate(0, 1.0), "");
}

}  // namespace
}  // namespace p2p
