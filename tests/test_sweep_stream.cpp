// The streaming sweep pipeline's contract: run_sweep_stream emits, byte
// for byte, what run_sweep + Table would have — for any thread count and
// any chunk size — while holding only a bounded ring of cells. The
// archived corpora and CI determinism diffs ride on these bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

std::string stream_csv(const SweepGrid& grid, const SweepOptions& options) {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, sweep_columns(options));
  run_sweep_stream(grid, options, writer);
  writer.finish();
  return out;
}

std::string stream_json(const SweepGrid& grid, const SweepOptions& options) {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kJson, sweep_columns(options));
  run_sweep_stream(grid, options, writer);
  writer.finish();
  return out;
}

TEST(RunSweepStream, MatchesInMemoryTableOnTheGoldenGrid) {
  // The golden-schema grid from test_sweep_golden: replicas, CTMC
  // column, NaN uncertainty cells — everything the row formatter can
  // emit on the homogeneous slice.
  const SweepGrid grid =
      parse_grid("lambda=0.5:3.0:3;us=0.7,1.3;k=2;gamma=1.25");
  SweepOptions options;
  options.horizon = 40;
  options.replicas = 3;
  options.ctmc_max_peers = 10;
  const Table table = run_sweep(grid, options).to_table();
  EXPECT_EQ(stream_csv(grid, options), table.to_csv());
  EXPECT_EQ(stream_json(grid, options), table.to_json());
}

TEST(RunSweepStream, MatchesInMemoryTableWithAScenario) {
  // Per-type arrival-rate columns exercise the scenario-dependent part
  // of the schema.
  SweepGrid grid = parse_grid("lambda=1,2;us=1;gamma=inf;k=4;mix=0,0.5,1");
  SweepOptions options;
  options.horizon = 20;
  options.replicas = 2;
  options.scenario = parse_scenario("example2:3,1");
  const Table table = run_sweep(grid, options).to_table();
  EXPECT_EQ(stream_csv(grid, options), table.to_csv());
  EXPECT_EQ(stream_json(grid, options), table.to_json());
}

TEST(RunSweepStream, DeterminismMatrixOverThreadsAndChunks) {
  // The satellite acceptance matrix: same grid swept at threads
  // {1, 2, 4, 8} x chunk {1, 7, auto} must produce byte-identical CSV
  // and JSON. Chunking and scheduling may only change who computes a
  // cell, never the cell. threads = 4 with chunk = 7 and replicas = 3 is
  // the ring-sizing regression corner: there the claim window (126
  // items) is an exact multiple of replicas, so a ring sized to the bare
  // window would let a tail item overwrite the samples of the cell a
  // mid-cell prefix stopped inside.
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:16;us=0.5,1.5;k=2");
  SweepOptions base;
  base.horizon = 20;
  base.replicas = 3;
  base.threads = 1;
  base.chunk = 1;
  const std::string csv_ref = stream_csv(grid, base);
  const std::string json_ref = stream_json(grid, base);
  EXPECT_FALSE(csv_ref.empty());
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{0}}) {
      SweepOptions options = base;
      options.threads = threads;
      options.chunk = chunk;
      EXPECT_EQ(stream_csv(grid, options), csv_ref)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(stream_json(grid, options), json_ref)
          << "threads " << threads << " chunk " << chunk;
    }
  }
}

TEST(RunSweepStream, TheoryOnlyDeterminismMatrixMatchesTheTable) {
  // The theory-only + replicas=1 streaming path takes the chunk-batched
  // route: a worker completes a whole claimed block into one arena and
  // the consumer emits it with a single write_rendered. The matrix pins
  // that route to the in-memory Table bytes for both formats — along
  // with the cached-token fast paths (constant-axis runs, verdict /
  // critical-piece cells, the constant sim tail) that only exist on it.
  const SweepGrid grid =
      parse_grid("lambda=0.5:3.0:16;us=0.5,1.5;k=2;gamma=1.25");
  SweepOptions base;
  base.theory_only = true;
  const Table table = run_sweep(grid, base).to_table();
  for (const int threads : {1, 2, 8}) {
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{0}}) {
      SweepOptions options = base;
      options.threads = threads;
      options.chunk = chunk;
      EXPECT_EQ(stream_csv(grid, options), table.to_csv())
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(stream_json(grid, options), table.to_json())
          << "threads " << threads << " chunk " << chunk;
    }
  }
}

TEST(RunSweepStream, ReusedArenasCarryNoStaleBytesAcrossRuns) {
  // A grid far larger than the chunk ring recycles every arena many
  // times; a missing clear() would leave a prior cell's bytes in front
  // of a later cell's. Two back-to-back runs over the same engine state
  // must produce identical bytes — and the varying-width index column
  // (1 digit through 4 digits) makes any stale prefix shift the row.
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:64;us=0.2:1.7:32;k=1");
  SweepOptions options;
  options.theory_only = true;
  options.threads = 4;
  options.chunk = 3;
  const std::string first = stream_csv(grid, options);
  const std::string second = stream_csv(grid, options);
  EXPECT_EQ(first, second);
  std::size_t lines = 0;
  for (const char c : first) lines += c == '\n';
  EXPECT_EQ(lines, 64u * 32u + 1);
}

TEST(RunSweepStream, SummaryTalliesMatchTheTable) {
  const SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 10;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, sweep_columns(options));
  const SweepSummary summary = run_sweep_stream(grid, options, writer);
  writer.finish();
  EXPECT_EQ(summary.cells, 2u);
  EXPECT_EQ(summary.stable, 1u);
  EXPECT_EQ(summary.transient, 1u);
  EXPECT_EQ(summary.borderline, 0u);
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(RunSweepStream, LargeTheoryOnlyGridStreamsThroughABoundedRing) {
  // 4096 cells with a tiny chunk: the cell ring is far smaller than the
  // grid, so every slot is recycled many times. Verdicts must still land
  // on the right rows — this is the ring-reuse regression test.
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:64;us=0.2:1.7:64;k=1");
  SweepOptions options;
  options.theory_only = true;
  options.threads = 4;
  options.chunk = 8;
  const std::string csv = stream_csv(grid, options);
  SweepOptions serial = options;
  serial.threads = 1;
  serial.chunk = 0;
  EXPECT_EQ(csv, stream_csv(grid, serial));
  // 64 * 64 rows + header + trailing newline.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 4096u + 1);
}

TEST(RunSweepStream, TheoryOnlySkipsSimulationButKeepsTheVerdicts) {
  const SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.theory_only = true;
  // replicas is ignored in theory-only mode: one closed-form item per
  // cell, sim columns NaN with replicas = 0.
  options.replicas = 8;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].theory.verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(result.cells[1].theory.verdict, Stability::kTransient);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.sim.replicas, 0);
    EXPECT_TRUE(std::isnan(cell.sim.final_peers_mean));
    EXPECT_TRUE(std::isnan(cell.sim.mean_peers_mean));
  }
  EXPECT_EQ(stream_csv(grid, options),
            run_sweep(grid, options).to_table().to_csv());
}

TEST(RunSweepStream, TheoryOnlyStillRunsTheCtmcCrossCheck) {
  // theory_only skips the *simulator*; the CTMC solve is closed-form
  // linear algebra and stays available as the exact column.
  const SweepGrid grid = parse_grid("lambda=1;us=1;k=1;gamma=1.25");
  SweepOptions options;
  options.theory_only = true;
  options.ctmc_max_peers = 30;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(std::isfinite(result.cells[0].ctmc_mean_peers));
  EXPECT_GT(result.cells[0].ctmc_mean_peers, 0.0);
}

TEST(RunSweepStreamDeath, WriterWithForeignColumnsAborts) {
  const SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, {"wrong", "columns"});
  EXPECT_DEATH(run_sweep_stream(grid, options, writer), "sweep_columns");
  writer.finish();
}

TEST(SweepGridDeath, CellCountOverflowAbortsWithTheGridShape) {
  // Four 65536-point axes multiply to exactly 2^64: a hostile spec that
  // previously wrapped the size_t product to 0 and under-allocated the
  // sweep. The abort must name the axis sizes so the user sees which
  // spec did it.
  SweepGrid grid;
  for (const char* name : {"lambda", "us", "mu", "gamma"}) {
    Axis axis;
    axis.name = name;
    axis.values.assign(1u << 16, 1.0);
    grid.axes.push_back(std::move(axis));
  }
  EXPECT_DEATH(grid.num_cells(), "overflows size_t.*gamma\\[65536\\]");
}

TEST(RunSweepDeath, TheoryOnlyRefineAborts) {
  const SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.theory_only = true;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  EXPECT_DEATH(refine_frontier(grid, options, refine), "theory_only");
}

}  // namespace
}  // namespace p2p::engine
