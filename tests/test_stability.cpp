// Closed-form stability theory (Theorem 1): Delta_S, per-piece thresholds,
// the classifier, and the provisioning solvers, validated against the
// paper's three worked examples.
#include "core/stability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/model.hpp"

namespace p2p {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Example 1 (K = 1): stable iff lambda0 < Us / (1 - mu/gamma). ---

TEST(Example1, StableBelowCriticalRate) {
  // mu/gamma = 0.5 => critical lambda0 = Us / 0.5 = 2 Us.
  const auto params = SwarmParams::example1(/*lambda0=*/1.9, /*us=*/1.0,
                                            /*mu=*/1.0, /*gamma=*/2.0);
  EXPECT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
}

TEST(Example1, TransientAboveCriticalRate) {
  const auto params = SwarmParams::example1(2.1, 1.0, 1.0, 2.0);
  EXPECT_EQ(classify(params).verdict, Stability::kTransient);
}

TEST(Example1, BorderlineAtCriticalRate) {
  const auto params = SwarmParams::example1(2.0, 1.0, 1.0, 2.0);
  EXPECT_EQ(classify(params).verdict, Stability::kBorderline);
}

TEST(Example1, ImmediateDepartureCriticalEqualsSeedRate) {
  // gamma = infinity: critical lambda0 = Us.
  const auto stable = SwarmParams::example1(0.9, 1.0, 1.0, kInfiniteRate);
  const auto unstable = SwarmParams::example1(1.1, 1.0, 1.0, kInfiniteRate);
  EXPECT_EQ(classify(stable).verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(classify(unstable).verdict, Stability::kTransient);
}

TEST(Example1, AltruisticBranchStableAtAnyLoad) {
  // gamma <= mu: peer seeds upload >= one extra piece on average; any
  // arrival rate is stable as long as the piece can enter (Us > 0).
  const auto params = SwarmParams::example1(/*lambda0=*/1e6, /*us=*/0.01,
                                            /*mu=*/1.0, /*gamma=*/1.0);
  const auto report = classify(params);
  EXPECT_TRUE(report.altruistic_branch);
  EXPECT_EQ(report.verdict, Stability::kPositiveRecurrent);
}

TEST(Example1, AltruisticBranchTransientWhenPieceCannotEnter) {
  const auto params = SwarmParams::example1(/*lambda0=*/1.0, /*us=*/0.0,
                                            /*mu=*/1.0, /*gamma=*/0.5);
  EXPECT_EQ(classify(params).verdict, Stability::kTransient);
}

// --- Example 2 (K = 4): stable iff lambda12 < 2 lambda34 and
//     lambda34 < 2 lambda12. ---

TEST(Example2, StableInsideCone) {
  const auto params = SwarmParams::example2(/*lambda12=*/1.0,
                                            /*lambda34=*/0.9, /*mu=*/1.0);
  EXPECT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
}

TEST(Example2, TransientWhenOneSideDominates) {
  EXPECT_EQ(classify(SwarmParams::example2(2.5, 1.0, 1.0)).verdict,
            Stability::kTransient);
  EXPECT_EQ(classify(SwarmParams::example2(1.0, 2.5, 1.0)).verdict,
            Stability::kTransient);
}

TEST(Example2, BorderlineOnConeBoundary) {
  EXPECT_EQ(classify(SwarmParams::example2(2.0, 1.0, 1.0)).verdict,
            Stability::kBorderline);
}

TEST(Example2, ThresholdMatchesHandDerivation) {
  // For piece 0 (in type {1,2} 1-based = pieces {0,1}): threshold =
  // lambda12 (K+1-2) = 3 lambda12... stability needs
  // lambda12 + lambda34 < 3 lambda12 i.e. lambda34 < 2 lambda12.
  const auto params = SwarmParams::example2(1.0, 1.5, 2.0);
  EXPECT_NEAR(piece_threshold(params, 0), 3.0 * 1.0, 1e-12);
  EXPECT_NEAR(piece_threshold(params, 2), 3.0 * 1.5, 1e-12);
}

// --- Example 3 (K = 3): stable iff lambda_i + lambda_j <
//     lambda_k (2 + mu/gamma) / (1 - mu/gamma) for all permutations. ---

double example3_rhs(double lambda_k, double mu, double gamma) {
  const double g = mu / gamma;
  return lambda_k * (2.0 + g) / (1.0 - g);
}

TEST(Example3, SymmetricArrivalsStable) {
  // Symmetric: lambda_i + lambda_j = 2 lambda < lambda (2+g)/(1-g) holds
  // for any g in (0,1).
  const auto params = SwarmParams::example3(1.0, 1.0, 1.0, 1.0, 3.0);
  EXPECT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
}

TEST(Example3, AsymmetricTransientMatchesFormula) {
  const double mu = 1.0, gamma = 3.0;
  // Choose lambda3 small so lambda1 + lambda2 > rhs(lambda3).
  const double lambda3 = 0.1;
  const double rhs = example3_rhs(lambda3, mu, gamma);
  const auto transient =
      SwarmParams::example3(rhs * 0.6, rhs * 0.6, lambda3, mu, gamma);
  EXPECT_EQ(classify(transient).verdict, Stability::kTransient);
  const auto report = classify(transient);
  EXPECT_EQ(report.critical_piece, 2);  // piece 3 is the scarce one
}

TEST(Example3, JustInsideBoundaryIsStable) {
  const double mu = 1.0, gamma = 3.0;
  const double lambda3 = 1.0;
  const double rhs = example3_rhs(lambda3, mu, gamma);
  // lambda1 = lambda2 = rhs/2 * 0.99: sum just below the piece-3 bound;
  // other permutations are slack because lambda3 < lambda1 + lambda2.
  const auto params =
      SwarmParams::example3(rhs * 0.495, rhs * 0.495, lambda3, mu, gamma);
  EXPECT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
}

TEST(Example3, ImmediateDepartureUnequalRatesTransient) {
  // gamma = infinity: condition degenerates to lambda_i + lambda_j <
  // 2 lambda_k, impossible unless all equal (Section IV / [11]).
  const auto params =
      SwarmParams::example3(1.0, 1.0, 1.2, 1.0, kInfiniteRate);
  EXPECT_EQ(classify(params).verdict, Stability::kTransient);
  const auto equal = SwarmParams::example3(1.0, 1.0, 1.0, 1.0, kInfiniteRate);
  EXPECT_EQ(classify(equal).verdict, Stability::kBorderline);
}

// --- Delta_S consistency with the per-piece thresholds ---

class DeltaConsistencyTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DeltaConsistencyTest, DeltaSignMatchesThresholdSign) {
  const auto [lambda12, lambda34, gamma] = GetParam();
  const SwarmParams params(
      4, /*us=*/0.3, /*mu=*/1.0, gamma,
      {{PieceSet::single(0).with(1), lambda12},
       {PieceSet::single(2).with(3), lambda34}});
  const double lambda_total = params.total_arrival_rate();
  for (int piece = 0; piece < 4; ++piece) {
    const double margin = piece_threshold(params, piece) - lambda_total;
    const double delta =
        delta_S(params, PieceSet::full(4).without(piece));
    // Delta_{F-{k}} < 0 iff lambda_total < threshold_k; moreover
    // delta = (lambda_total - threshold) when written out; check signs and
    // proportionality.
    EXPECT_GT(margin * -delta, -1e-12)
        << "sign mismatch at piece " << piece;
    EXPECT_NEAR(delta, -margin, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeltaConsistencyTest,
    ::testing::Values(std::make_tuple(1.0, 1.0, 4.0),
                      std::make_tuple(2.0, 0.5, 4.0),
                      std::make_tuple(0.2, 3.0, 2.0),
                      std::make_tuple(5.0, 5.0, 1.5),
                      std::make_tuple(1.0, 1.0, kInf)));

TEST(DeltaS, WorstCaseIsOneClubSet) {
  // Among all S, the binding constraint is attained at some F - {k}
  // (the remark after Theorem 1). Verify Delta_S <= max_k Delta_{F-{k}}.
  const SwarmParams params(
      3, 0.5, 1.0, 5.0,
      {{PieceSet{}, 1.0},
       {PieceSet::single(0), 0.7},
       {PieceSet::single(1).with(2), 0.4}});
  double worst_one_club = -kInf;
  for (int k = 0; k < 3; ++k) {
    worst_one_club = std::max(
        worst_one_club, delta_S(params, PieceSet::full(3).without(k)));
  }
  for_each_subset(PieceSet::full(3), [&](PieceSet s) {
    if (s == PieceSet::full(3)) return;
    EXPECT_LE(delta_S(params, s), worst_one_club + 1e-12)
        << "S = " << s.to_string();
  });
}

// --- Provisioning solvers ---

TEST(Solvers, MinSeedRateSitsOnBoundary) {
  const auto params = SwarmParams::example1(3.0, 0.1, 1.0, 2.0);
  const double us = min_stabilizing_seed_rate(params);
  // Just above: stable; just below: not stable.
  EXPECT_EQ(classify(params.with_seed_rate(us * 1.001 + 1e-9)).verdict,
            Stability::kPositiveRecurrent);
  EXPECT_NE(classify(params.with_seed_rate(us * 0.999)).verdict,
            Stability::kPositiveRecurrent);
}

TEST(Solvers, MinSeedRateZeroWhenAlreadyStable) {
  const auto params = SwarmParams::example3(1.0, 1.0, 1.0, 1.0, 3.0);
  EXPECT_EQ(min_stabilizing_seed_rate(params), 0.0);
}

TEST(Solvers, MaxGammaBracketsStability) {
  const auto params = SwarmParams::example1(3.0, 1.0, 1.0, 2.0);
  const double gamma_star = max_stabilizing_seed_depart_rate(params);
  ASSERT_TRUE(std::isfinite(gamma_star));
  EXPECT_EQ(
      classify(params.with_seed_depart_rate(gamma_star * 0.99)).verdict,
      Stability::kPositiveRecurrent);
  EXPECT_EQ(
      classify(params.with_seed_depart_rate(gamma_star * 1.01)).verdict,
      Stability::kTransient);
}

TEST(Solvers, MaxGammaInfiniteWhenSeedCarriesTheLoad) {
  const auto params = SwarmParams::example1(0.5, 1.0, 1.0, 2.0);
  EXPECT_EQ(max_stabilizing_seed_depart_rate(params), kInf);
}

TEST(Solvers, MaxGammaAtLeastMuAlways) {
  // The paper's corollary: dwelling long enough to upload one piece
  // (1/gamma >= 1/mu) always stabilizes. So gamma* >= mu.
  const auto params = SwarmParams::example1(1e4, 0.01, 1.0, 2.0);
  EXPECT_GE(max_stabilizing_seed_depart_rate(params), 1.0);
}

TEST(Solvers, CriticalLoadScaleBracketsStability) {
  const auto params = SwarmParams::example1(1.0, 1.0, 1.0, 4.0);
  const double s = critical_load_scale(params);
  ASSERT_TRUE(std::isfinite(s));
  EXPECT_EQ(classify(params.with_arrivals_scaled(s * 0.99)).verdict,
            Stability::kPositiveRecurrent);
  EXPECT_EQ(classify(params.with_arrivals_scaled(s * 1.01)).verdict,
            Stability::kTransient);
}

TEST(Solvers, CriticalLoadScaleInfiniteInAltruisticRegime) {
  const auto params = SwarmParams::example1(1.0, 0.5, 1.0, 0.5);
  EXPECT_EQ(critical_load_scale(params), kInf);
}

TEST(Solvers, CriticalLoadScaleZeroWithoutSeedWhenGifted) {
  // Example 3 asymmetric with gamma = infinity: transient at every scale.
  const auto params = SwarmParams::example3(1.0, 1.0, 1.2, 1.0, kInfiniteRate);
  EXPECT_EQ(critical_load_scale(params), 0.0);
}

// --- Model basics ---

TEST(Model, PieceCanEnter) {
  const SwarmParams params(2, 0.0, 1.0, kInfiniteRate,
                           {{PieceSet::single(0), 1.0}});
  EXPECT_TRUE(params.piece_can_enter(0));
  EXPECT_FALSE(params.piece_can_enter(1));
  EXPECT_FALSE(params.all_pieces_can_enter());
  EXPECT_TRUE(params.with_seed_rate(0.1).all_pieces_can_enter());
}

TEST(Model, TotalAndPerTypeRates) {
  const SwarmParams params(3, 0.0, 1.0, 2.0,
                           {{PieceSet::single(0), 1.5},
                            {PieceSet::single(0), 0.5},
                            {PieceSet{}, 2.0}});
  EXPECT_NEAR(params.total_arrival_rate(), 4.0, 1e-12);
  EXPECT_NEAR(params.arrival_rate(PieceSet::single(0)), 2.0, 1e-12);
  EXPECT_NEAR(params.arrival_rate(PieceSet::single(1)), 0.0, 1e-12);
}

TEST(Model, ScaledCopyKeepsStructure) {
  const auto params = SwarmParams::example2(1.0, 2.0, 1.0);
  const auto scaled = params.with_arrivals_scaled(3.0);
  EXPECT_NEAR(scaled.total_arrival_rate(), 9.0, 1e-12);
  EXPECT_EQ(scaled.num_pieces(), 4);
}

TEST(ModelDeath, RejectsNonpositiveContactRate) {
  EXPECT_DEATH(SwarmParams(1, 0.0, 0.0, 1.0, {{PieceSet{}, 1.0}}),
               "mu must be positive");
}

TEST(ModelDeath, RejectsCompleteArrivalsWithImmediateDeparture) {
  EXPECT_DEATH(SwarmParams(2, 0.0, 1.0, kInfiniteRate,
                           {{PieceSet::full(2), 1.0}}),
               "lambda_F");
}

TEST(ModelDeath, RejectsZeroTotalArrivalRate) {
  EXPECT_DEATH(SwarmParams(1, 1.0, 1.0, 1.0, {{PieceSet{}, 0.0}}),
               "total arrival rate");
}

}  // namespace
}  // namespace p2p
