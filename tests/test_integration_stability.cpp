// Integration: Theorem 1's closed-form verdict vs simulated behaviour
// across a parameter grid, exercising classifier + simulator + probe
// together. Parameters are kept well away from the boundary so finite
// horizons classify reliably.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/stability_probe.hpp"
#include "core/stability.hpp"

namespace p2p {
namespace {

struct GridCase {
  std::string name;
  SwarmParams params;
  Stability expected;
};

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  // Example 1 family.
  cases.push_back({"ex1-stable",
                   SwarmParams::example1(0.5, 1.0, 1.0, 4.0),
                   Stability::kPositiveRecurrent});
  cases.push_back({"ex1-transient",
                   SwarmParams::example1(4.0, 1.0, 1.0, 4.0),
                   Stability::kTransient});
  cases.push_back({"ex1-altruistic",
                   SwarmParams::example1(6.0, 0.2, 1.0, 0.5),
                   Stability::kPositiveRecurrent});
  // Example 2 family (K = 4, gamma = infinity).
  cases.push_back({"ex2-stable", SwarmParams::example2(1.0, 1.0, 1.0),
                   Stability::kPositiveRecurrent});
  cases.push_back({"ex2-transient", SwarmParams::example2(3.0, 1.0, 1.0),
                   Stability::kTransient});
  // Example 3 family (K = 3).
  cases.push_back({"ex3-stable",
                   SwarmParams::example3(1.0, 1.0, 1.0, 1.0, 3.0),
                   Stability::kPositiveRecurrent});
  cases.push_back({"ex3-transient",
                   SwarmParams::example3(2.0, 2.0, 0.2, 1.0, 3.0),
                   Stability::kTransient});
  // Mixed arrivals with seed help (K = 2).
  cases.push_back({"mixed-stable",
                   SwarmParams(2, 2.5, 1.0, 5.0,
                               {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.5}}),
                   Stability::kPositiveRecurrent});
  cases.push_back({"mixed-transient",
                   SwarmParams(2, 0.1, 1.0, kInfiniteRate,
                               {{PieceSet{}, 2.0}, {PieceSet::single(0), 0.2}}),
                   Stability::kTransient});
  return cases;
}

class TheoremVsSimulationTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(TheoremVsSimulationTest, VerdictsAgree) {
  const GridCase c = grid_cases()[GetParam()];
  ASSERT_EQ(classify(c.params).verdict, c.expected) << c.name;

  ProbeOptions options;
  options.horizon = 2000;
  options.replicas = 3;
  options.initial_one_club = 150;  // adversarial start
  const ProbeResult probe = probe_swarm(c.params, options);
  const ProbeVerdict expected_probe =
      c.expected == Stability::kPositiveRecurrent ? ProbeVerdict::kStable
                                                  : ProbeVerdict::kUnstable;
  EXPECT_EQ(probe.verdict, expected_probe)
      << c.name << ": " << probe.to_string();
}

INSTANTIATE_TEST_SUITE_P(Grid, TheoremVsSimulationTest,
                         ::testing::Range(std::size_t{0}, std::size_t{9}),
                         [](const auto& info) {
                           return grid_cases()[info.param].name.substr(0, 3) +
                                  std::to_string(info.param);
                         });

TEST(Integration, CriticalSeedRateBracketsSimulatedBehaviour) {
  // Compute Us* from the theory; simulate at 0.5x and 2x.
  const auto base = SwarmParams::example1(2.0, 0.5, 1.0, 4.0);
  const double us_star = min_stabilizing_seed_rate(base);
  ASSERT_GT(us_star, 0.0);
  ProbeOptions options;
  options.horizon = 2000;
  options.replicas = 3;
  options.initial_one_club = 100;
  const auto below = probe_swarm(base.with_seed_rate(us_star * 0.5), options);
  const auto above = probe_swarm(base.with_seed_rate(us_star * 2.0), options);
  EXPECT_EQ(below.verdict, ProbeVerdict::kUnstable) << below.to_string();
  EXPECT_EQ(above.verdict, ProbeVerdict::kStable) << above.to_string();
}

TEST(Integration, OneExtraPieceCorollaryHolds) {
  // gamma <= mu (mean dwell >= one upload time): stable even at high load
  // with a tiny seed — the paper's headline corollary. (gamma = 0.8 mu
  // keeps the seed branching comfortably supercritical for a finite-
  // horizon check; the exact boundary gamma = mu is probed in E8.)
  const SwarmParams params(3, 0.3, 1.0, 0.8, {{PieceSet{}, 8.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  // Without the altruistic branch this load would need
  // Us >= lambda (1 - mu/gamma); with gamma <= mu a tiny seed suffices.
  ProbeOptions options;
  options.horizon = 3000;
  options.replicas = 4;
  const ProbeResult probe = probe_swarm(params, options);
  EXPECT_EQ(probe.verdict, ProbeVerdict::kStable) << probe.to_string();
}

TEST(Integration, PolicyInsensitivityOfVerdicts) {
  // Theorem 14: same verdict for every useful-piece policy.
  const SwarmParams stable(3, 2.5, 1.0, 4.0, {{PieceSet{}, 1.0}});
  const SwarmParams transient(3, 0.2, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  ProbeOptions options;
  options.horizon = 1500;
  options.replicas = 3;
  options.initial_one_club = 100;
  for (const char* policy : {"random-useful", "rarest-first",
                             "most-common-first", "sequential"}) {
    EXPECT_EQ(probe_swarm(stable, options, policy).verdict,
              ProbeVerdict::kStable)
        << policy;
    EXPECT_EQ(probe_swarm(transient, options, policy).verdict,
              ProbeVerdict::kUnstable)
        << policy;
  }
}

}  // namespace
}  // namespace p2p
