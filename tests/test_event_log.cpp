// sim/event_log.hpp: the swarm event grammar (CSV + JSON lines), the
// strict fail-fast parser, and the SwarmBackend-driven emitter.
//
// The emitter's contract is that the log is a lossless record of the
// state trajectory: replaying the events alone reconstructs the exact
// type-count state the simulator ended with, on either backend. The
// parser's contract is the csv_reader convention — malformed input
// aborts echoing the offending line verbatim, never repairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/state.hpp"
#include "sim/event_log.hpp"
#include "sim/swarm.hpp"
#include "sim/typecount_sim.hpp"

namespace p2p {
namespace {

TEST(EventLog, CsvRoundTripsThroughTheParser) {
  const std::vector<SwarmEvent> events = {
      {0.125, SwarmEventKind::kArrive, 0, -1},
      {0.75, SwarmEventKind::kPiece, 1, 1},
      {0.75, SwarmEventKind::kSeed, 3, 2},
      {2.5, SwarmEventKind::kDepart, 7, -1},
  };
  std::size_t line_number = 0;
  for (const SwarmEvent& event : events) {
    std::string line;
    append_event_csv(line, event);
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();
    EXPECT_EQ(parse_event_line(line, ++line_number, 3), event) << line;
  }
}

TEST(EventLog, JsonRoundTripsThroughTheParser) {
  const std::vector<SwarmEvent> events = {
      {0.0, SwarmEventKind::kArrive, 5, -1},
      {1e-9, SwarmEventKind::kPiece, 5, 1},
      {3.25, SwarmEventKind::kDepart, 7, -1},
  };
  for (const SwarmEvent& event : events) {
    std::string line;
    append_event_json(line, event);
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(parse_event_line(line, 1, 3), event) << line;
  }
}

TEST(EventLog, HeaderMatchesTheColumnSchema) {
  EXPECT_EQ(event_log_csv_header(), "t,event,type,piece\n");
  EXPECT_EQ(event_log_columns(),
            (std::vector<std::string>{"t", "event", "type", "piece"}));
}

TEST(EventLogDeathTest, MalformedLinesAbortEchoingTheLine) {
  // Malformed timestamp (strtod would accept "nan"/"inf"; the shape
  // gate must not).
  EXPECT_DEATH(parse_event_line("abc,arrive,0,", 7, 3), "line 7");
  EXPECT_DEATH(parse_event_line("nan,arrive,0,", 1, 3), "timestamp");
  EXPECT_DEATH(parse_event_line("inf,arrive,0,", 1, 3), "timestamp");
  EXPECT_DEATH(parse_event_line("-1,arrive,0,", 1, 3), "nonnegative");
  // Unknown kind, echoed verbatim.
  EXPECT_DEATH(parse_event_line("1.5,vanish,0,", 2, 3),
               "unknown event kind");
  EXPECT_DEATH(parse_event_line("1.5,vanish,0,", 2, 3),
               "got \"1.5,vanish,0,\"");
  // Truncated / wrong arity.
  EXPECT_DEATH(parse_event_line("1.5,arrive,0", 1, 3), "4 cells");
  EXPECT_DEATH(parse_event_line("1.5,arr", 1, 3), "4 cells");
  EXPECT_DEATH(parse_event_line("1.5,arrive,0,,", 1, 3), "4 cells");
  EXPECT_DEATH(parse_event_line("", 1, 3), "4 cells");
  // Type mask out of the K = 3 collection; non-numeric masks.
  EXPECT_DEATH(parse_event_line("1.5,arrive,8,", 1, 3), "type mask");
  EXPECT_DEATH(parse_event_line("1.5,arrive,-1,", 1, 3), "type mask");
  EXPECT_DEATH(parse_event_line("1.5,arrive,2x,", 1, 3), "type mask");
  // Piece-field presence must match the kind.
  EXPECT_DEATH(parse_event_line("1.5,piece,1,", 1, 3), "need a piece");
  EXPECT_DEATH(parse_event_line("1.5,arrive,0,2", 1, 3), "no piece");
  EXPECT_DEATH(parse_event_line("1.5,piece,1,3", 1, 3), "outside");
  // A transfer delivering a piece the target already holds.
  EXPECT_DEATH(parse_event_line("1.5,piece,1,0", 1, 3), "already holds");
  EXPECT_DEATH(parse_event_line("1.5,seed,7,1", 1, 3), "already holds");
}

TEST(EventLogDeathTest, MalformedJsonLinesAbort) {
  // Key order is part of the protocol.
  EXPECT_DEATH(
      parse_event_line("{\"event\": \"arrive\", \"t\": 1, \"type\": 0}", 1, 3),
      "expected key");
  EXPECT_DEATH(parse_event_line("{\"t\": 1, \"event\": \"arrive\"}", 1, 3),
               "expected");
  EXPECT_DEATH(
      parse_event_line("{\"t\": 1, \"event\": \"arrive\", \"type\": 0} x", 1,
                       3),
      "trailing bytes");
  EXPECT_DEATH(
      parse_event_line("{\"t\": 1, \"event\": \"arrive, \"type\": 0}", 1, 3),
      "");
  // Transfer kinds still need the piece field in JSON.
  EXPECT_DEATH(
      parse_event_line("{\"t\": 1, \"event\": \"piece\", \"type\": 1}", 1, 3),
      "need a piece");
}

TEST(EventLogDeathTest, ParserRejectsUnsupportedPieceCounts) {
  EXPECT_DEATH(parse_event_line("1,arrive,0,", 1, 0), "K in \\[1, 16\\]");
  EXPECT_DEATH(parse_event_line("1,arrive,0,", 1, 17), "K in \\[1, 16\\]");
}

/// Replays a recorded event stream into a bare TypeCountState — the
/// reconstruction a monitor (or any consumer) performs. Aborts via the
/// TypeCountState invariants if the log ever goes inconsistent.
TypeCountState replay(const std::vector<SwarmEvent>& events, int k) {
  TypeCountState state(k);
  for (const SwarmEvent& event : events) {
    switch (event.kind) {
      case SwarmEventKind::kArrive:
        state.add(PieceSet(event.type), 1);
        break;
      case SwarmEventKind::kDepart:
        state.add(PieceSet(event.type), -1);
        break;
      case SwarmEventKind::kPiece:
      case SwarmEventKind::kSeed:
        state.transfer(PieceSet(event.type),
                       PieceSet(event.type |
                                (std::uint64_t{1} << event.piece)));
        break;
    }
  }
  return state;
}

TEST(EventLog, RecordedEventsReconstructTheFinalStateOnBothBackends) {
  const SwarmParams params(3, 1.0, 1.0, 2.0, {{PieceSet{}, 2.0}});
  for (const bool typecount : {true, false}) {
    SCOPED_TRACE(typecount ? "typecount" : "perpeer");
    std::unique_ptr<SwarmBackend> backend;
    if (typecount) {
      TypeCountSimOptions options;
      options.rng_seed = 11;
      backend = std::make_unique<TypeCountSim>(params, options);
    } else {
      SwarmSimOptions options;
      options.rng_seed = 11;
      backend = std::make_unique<SwarmSim>(params, options);
    }
    std::vector<SwarmEvent> events;
    const TypeCountState final_state = record_events(
        *backend, 80.0, 0.0, [&](const SwarmEvent& e) { events.push_back(e); });
    ASSERT_GE(events.size(), 50u);

    // Timestamps are within the horizon and never go backwards.
    double prev = 0;
    for (const SwarmEvent& event : events) {
      EXPECT_GE(event.t, prev);
      EXPECT_LE(event.t, 80.0);
      prev = event.t;
    }
    // The events alone rebuild the simulator's exact t_end state.
    EXPECT_EQ(replay(events, 3), final_state);
    // And every emitted event is grammatical: it survives a CSV
    // round-trip through the strict parser.
    std::size_t line_number = 0;
    for (const SwarmEvent& event : events) {
      std::string line;
      append_event_csv(line, event);
      line.pop_back();
      EXPECT_EQ(parse_event_line(line, ++line_number, 3), event);
    }
  }
}

TEST(EventLog, ImmediateDepartureEmitsTransferThenDepartAtOneTimestamp) {
  // gamma = infinity: a completing download must log both the transfer
  // and the departure, at the same timestamp, in that order.
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 1.5}});
  TypeCountSimOptions options;
  options.rng_seed = 5;
  TypeCountSim sim(params, options);
  std::vector<SwarmEvent> events;
  const TypeCountState final_state = record_events(
      sim, 60.0, 0.0, [&](const SwarmEvent& e) { events.push_back(e); });

  std::size_t departures = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != SwarmEventKind::kDepart) continue;
    ++departures;
    EXPECT_EQ(events[i].type, 3u);  // only full peers depart
    ASSERT_GT(i, 0u);
    const SwarmEvent& prev = events[i - 1];
    EXPECT_TRUE(prev.kind == SwarmEventKind::kPiece ||
                prev.kind == SwarmEventKind::kSeed);
    EXPECT_EQ(prev.t, events[i].t);
    EXPECT_EQ(prev.type | (std::uint64_t{1} << prev.piece), 3u);
  }
  EXPECT_GE(departures, 5u);
  EXPECT_EQ(final_state.seeds(), 0);  // nobody lingers at gamma = inf
  EXPECT_EQ(replay(events, 2), final_state);
}

TEST(EventLog, SegmentScheduleCarriesThePopulationAcrossBoundaries) {
  // Two segments with different loads: the trace stays consistent (the
  // replayed state never goes negative) and event times are strictly
  // increasing across the boundary offset.
  const auto mk = [](double lambda) {
    return SwarmParams(2, 1.0, 1.0, 2.0, {{PieceSet{}, lambda}});
  };
  EventLogOptions options;
  options.seed = 9;
  std::vector<SwarmEvent> events;
  generate_event_log({{mk(1.0), 40.0}, {mk(3.0), 40.0}}, options,
                     [&](const SwarmEvent& e) { events.push_back(e); });
  ASSERT_GE(events.size(), 50u);
  double prev = 0;
  bool saw_second_segment = false;
  for (const SwarmEvent& event : events) {
    EXPECT_GE(event.t, prev);
    prev = event.t;
    saw_second_segment |= event.t > 40.0;
  }
  EXPECT_TRUE(saw_second_segment);
  EXPECT_LE(prev, 80.0);
  // Replay succeeds end to end: injected carried peers were never
  // logged as arrivals, so the stream is self-consistent... but then
  // the replayed state must differ from an empty swarm only by the
  // events themselves (TypeCountState::add aborts on any negative).
  const TypeCountState replayed = replay(events, 2);
  EXPECT_GE(replayed.total_peers(), 0);

  // Determinism: the same seed yields the identical event sequence.
  std::vector<SwarmEvent> again;
  generate_event_log({{mk(1.0), 40.0}, {mk(3.0), 40.0}}, options,
                     [&](const SwarmEvent& e) { again.push_back(e); });
  EXPECT_EQ(events, again);
}

TEST(EventLogDeathTest, GeneratorRejectsBadSchedules) {
  const SwarmParams ok(2, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  EXPECT_DEATH(generate_event_log({}, {}, [](const SwarmEvent&) {}),
               "at least one segment");
  EXPECT_DEATH(
      generate_event_log({{ok, 0.0}}, {}, [](const SwarmEvent&) {}),
      "positive and finite");
  const SwarmParams other_k(3, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  EXPECT_DEATH(generate_event_log({{ok, 10.0}, {other_k, 10.0}}, {},
                                  [](const SwarmEvent&) {}),
               "share the piece count");
  // Carrying peer seeds into an immediate-departure segment would leave
  // peers the log can never retire: hard error. (Slow departures and a
  // long first segment make leftover seeds a near-certainty; the fixed
  // seed makes the death deterministic.)
  const SwarmParams slow(2, 1.0, 1.0, 0.001, {{PieceSet{}, 3.0}});
  const SwarmParams imm(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 1.0}});
  EventLogOptions options;
  options.seed = 3;
  EXPECT_DEATH(generate_event_log({{slow, 30.0}, {imm, 10.0}}, options,
                                  [](const SwarmEvent&) {}),
               "immediate-departure");
}

}  // namespace
}  // namespace p2p
