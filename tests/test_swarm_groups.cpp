// Fig. 2 group bookkeeping under controlled scenarios: the classification
// rules of Section V, exercised transition by transition.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

// Helper: a swarm where only injected peers exist and only the fixed seed
// can upload (arrival rate negligible), so we can drive transitions
// deterministically by stepping.
SwarmParams frozen_params(int k, double us, double gamma) {
  return SwarmParams(k, us, 1.0, gamma, {{PieceSet{}, 1e-12}});
}

TEST(Groups, InjectedEmptyPeersAreNormalYoung) {
  SwarmSim sim(frozen_params(3, 0.0, 2.0), SwarmSimOptions{.rng_seed = 1});
  sim.inject_peers(PieceSet{}, 10);
  EXPECT_EQ(sim.groups().normal_young, 10);
  EXPECT_EQ(sim.groups().total(), 10);
}

TEST(Groups, InjectedOneClubClassified) {
  // Tracked piece defaults to 0; type {1,2} is the one-club for K = 3.
  SwarmSim sim(frozen_params(3, 0.0, 2.0), SwarmSimOptions{.rng_seed = 2});
  sim.inject_peers(PieceSet::single(1).with(2), 5);
  EXPECT_EQ(sim.groups().one_club, 5);
}

TEST(Groups, TrackedPieceChangesClassification) {
  SwarmSimOptions options;
  options.rng_seed = 3;
  options.tracked_piece = 2;
  SwarmSim sim(frozen_params(3, 0.0, 2.0), options);
  // Type {0,1}: missing exactly piece 2 => one-club w.r.t. piece 2.
  sim.inject_peers(PieceSet::single(0).with(1), 4);
  // Type {2}: holds the tracked piece on injection => gifted.
  sim.inject_peers(PieceSet::single(2), 3);
  EXPECT_EQ(sim.groups().one_club, 4);
  EXPECT_EQ(sim.groups().gifted, 3);
}

TEST(Groups, OneClubBecomesFormerOnCompletion) {
  // Seed-only uploads; K = 2; one-club = {1}. gamma small so the seed
  // stays around after completion.
  SwarmSim sim(frozen_params(2, 5.0, 1e-6), SwarmSimOptions{.rng_seed = 4});
  sim.inject_peers(PieceSet::single(1), 1);
  // Step until the peer completes (gets piece 0 from the fixed seed).
  for (int i = 0; i < 10000 && sim.groups().former_one_club == 0; ++i) {
    sim.step();
  }
  EXPECT_EQ(sim.groups().former_one_club, 1);
  EXPECT_EQ(sim.groups().one_club, 0);
  EXPECT_EQ(sim.peer_seeds(), 1);
}

TEST(Groups, NormalYoungBecomesInfectedOnTrackedDownload) {
  // K = 3, an empty peer that receives the tracked piece 0 while still
  // missing two others is infected, and stays infected through
  // completion. The sequential policy makes the seed deliver piece 0
  // first, so the infection (rather than one-club membership) is certain.
  SwarmSim sim(frozen_params(3, 5.0, 1e-6), make_policy("sequential"),
               SwarmSimOptions{.rng_seed = 5});
  sim.inject_peers(PieceSet{}, 1);
  for (int i = 0; i < 20000 && sim.holders_of(0) == 0; ++i) sim.step();
  ASSERT_EQ(sim.holders_of(0), 1);
  EXPECT_EQ(sim.groups().infected, 1);
  // Continue to completion: still infected (infected peers keep the label
  // as peer seeds).
  for (int i = 0; i < 20000 && sim.peer_seeds() == 0; ++i) sim.step();
  ASSERT_EQ(sim.peer_seeds(), 1);
  EXPECT_EQ(sim.groups().infected, 1);
}

TEST(Groups, GiftedStaysGiftedThroughCompletion) {
  SwarmSim sim(frozen_params(3, 5.0, 1e-6), SwarmSimOptions{.rng_seed = 6});
  sim.inject_peers(PieceSet{}, 1);
  // Arrivals with the tracked piece are gifted; emulate via arrival spec
  // instead: use params with gifted arrivals.
  const SwarmParams params(3, 5.0, 1.0, 1e-6,
                           {{PieceSet::single(0), 1.0}});
  SwarmSim gifted_sim(params, SwarmSimOptions{.rng_seed = 7});
  gifted_sim.run_until(3.0);  // a few arrivals
  ASSERT_GT(gifted_sim.total_peers(), 0);
  EXPECT_EQ(gifted_sim.groups().gifted, gifted_sim.total_peers());
  gifted_sim.run_until(40.0);
  // Some have completed by now; all are still classified gifted.
  EXPECT_EQ(gifted_sim.groups().gifted, gifted_sim.total_peers());
  EXPECT_GT(gifted_sim.peer_seeds(), 0);
}

TEST(Groups, YoungThatJoinsClubIsOneClubNotInfected) {
  // K = 2: an empty peer receiving the NON-tracked piece becomes
  // one-club.
  const SwarmParams params(2, 0.0, 1.0, 2.0, {{PieceSet{}, 1e-12}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 8});
  sim.inject_peers(PieceSet{}, 1);
  sim.inject_peers(PieceSet::single(1), 3);  // club members upload piece 1
  for (int i = 0; i < 50000 && sim.groups().one_club == 3; ++i) sim.step();
  EXPECT_EQ(sim.groups().one_club, 4);
  EXPECT_EQ(sim.groups().infected, 0);
  EXPECT_EQ(sim.groups().normal_young, 0);
}

TEST(Groups, DepartureRemovesFromGroup) {
  // gamma large: completed peers leave almost immediately.
  SwarmSim sim(frozen_params(2, 10.0, 1000.0), SwarmSimOptions{.rng_seed = 9});
  sim.inject_peers(PieceSet::single(1), 6);
  sim.run_until(50.0);
  EXPECT_EQ(sim.groups().total(), sim.total_peers());
  EXPECT_GT(sim.total_departures(), 0);
}

TEST(Groups, K1OneClubIsEmptyType) {
  // For K = 1 the one-club (missing exactly the tracked piece) is the
  // empty type.
  SwarmSim sim(frozen_params(1, 0.0, 2.0), SwarmSimOptions{.rng_seed = 10});
  sim.inject_peers(PieceSet{}, 5);
  EXPECT_EQ(sim.groups().one_club, 5);
  EXPECT_EQ(sim.groups().normal_young, 0);
}

TEST(Groups, CountsSurviveHeavyChurn) {
  const SwarmParams params(
      3, 1.0, 1.0, 1.5,
      {{PieceSet{}, 2.0},
       {PieceSet::single(0), 0.5},
       {PieceSet::single(1).with(2), 0.5}});
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 11});
  for (int i = 0; i < 300000; ++i) {
    sim.step();
    const GroupCounts& g = sim.groups();
    ASSERT_EQ(g.total(), sim.total_peers());
    // Everyone holding the tracked piece is (b), (f) or (g).
    ASSERT_EQ(g.infected + g.former_one_club + g.gifted, sim.holders_of(0));
  }
}

}  // namespace
}  // namespace p2p
