// The three worked examples of Section IV, as closed forms implemented
// independently of the library, swept against the Theorem 1 classifier on
// randomized grids. Any divergence between the hand-derived example
// condition and the general classifier fails here.
#include <gtest/gtest.h>

#include <limits>

#include "core/stability.hpp"
#include "rand/rng.hpp"

namespace p2p {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Stability example1_closed_form(double lambda0, double us, double mu,
                               double gamma) {
  if (gamma <= mu) {
    return us > 0 ? Stability::kPositiveRecurrent : Stability::kTransient;
  }
  const double g = gamma == kInf ? 0.0 : mu / gamma;
  const double critical = us / (1.0 - g);
  if (lambda0 < critical) return Stability::kPositiveRecurrent;
  if (lambda0 > critical) return Stability::kTransient;
  return Stability::kBorderline;
}

Stability example2_closed_form(double l12, double l34) {
  if (l12 < 2 * l34 && l34 < 2 * l12) return Stability::kPositiveRecurrent;
  if (l12 > 2 * l34 || l34 > 2 * l12) return Stability::kTransient;
  return Stability::kBorderline;
}

Stability example3_closed_form(double l1, double l2, double l3, double mu,
                               double gamma) {
  if (gamma <= mu) return Stability::kPositiveRecurrent;  // pieces enter
  const double g = gamma == kInf ? 0.0 : mu / gamma;
  const double factor = (2.0 + g) / (1.0 - g);
  const double lhs[3] = {l2 + l3, l1 + l3, l1 + l2};
  const double rhs[3] = {l1 * factor, l2 * factor, l3 * factor};
  bool all_strict = true, any_reversed = false;
  for (int i = 0; i < 3; ++i) {
    all_strict &= lhs[i] < rhs[i];
    any_reversed |= lhs[i] > rhs[i];
  }
  if (all_strict) return Stability::kPositiveRecurrent;
  if (any_reversed) return Stability::kTransient;
  return Stability::kBorderline;
}

TEST(ClosedFormGrid, Example1RandomSweep) {
  Rng rng(101);
  for (int trial = 0; trial < 400; ++trial) {
    const double lambda0 = 0.05 + rng.uniform() * 5.0;
    const double us = rng.uniform() * 3.0;
    const double mu = 0.2 + rng.uniform() * 2.0;
    const double gammas[] = {mu * 0.5, mu * 0.99, mu * 1.5, mu * 4.0, kInf};
    const double gamma = gammas[rng.uniform_int(5ULL)];
    if (us == 0.0 && gamma > mu) continue;  // degenerate: nothing enters
    const auto params = SwarmParams::example1(lambda0, us, mu, gamma);
    EXPECT_EQ(classify(params).verdict,
              example1_closed_form(lambda0, us, mu, gamma))
        << params.to_string();
  }
}

TEST(ClosedFormGrid, Example2RandomSweep) {
  Rng rng(102);
  for (int trial = 0; trial < 400; ++trial) {
    const double l12 = 0.05 + rng.uniform() * 4.0;
    const double l34 = 0.05 + rng.uniform() * 4.0;
    const double mu = 0.2 + rng.uniform() * 2.0;
    const auto params = SwarmParams::example2(l12, l34, mu);
    EXPECT_EQ(classify(params).verdict, example2_closed_form(l12, l34))
        << params.to_string();
  }
}

TEST(ClosedFormGrid, Example2ExactBoundaryIsBorderline) {
  EXPECT_EQ(classify(SwarmParams::example2(2.0, 1.0, 0.7)).verdict,
            Stability::kBorderline);
  EXPECT_EQ(classify(SwarmParams::example2(0.5, 1.0, 0.7)).verdict,
            Stability::kBorderline);
}

TEST(ClosedFormGrid, Example3RandomSweep) {
  Rng rng(103);
  for (int trial = 0; trial < 400; ++trial) {
    const double l1 = 0.05 + rng.uniform() * 3.0;
    const double l2 = 0.05 + rng.uniform() * 3.0;
    const double l3 = 0.05 + rng.uniform() * 3.0;
    const double mu = 0.2 + rng.uniform() * 2.0;
    const double gammas[] = {mu * 0.7, mu * 1.3, mu * 3.0, kInf};
    const double gamma = gammas[rng.uniform_int(4ULL)];
    const auto params = SwarmParams::example3(l1, l2, l3, mu, gamma);
    EXPECT_EQ(classify(params).verdict,
              example3_closed_form(l1, l2, l3, mu, gamma))
        << params.to_string();
  }
}

TEST(ClosedFormGrid, Example3SymmetricImmediateDepartureIsBorderline) {
  // The [11] special case (Section VIII-D): symmetric rates sit exactly
  // on the boundary.
  const auto params = SwarmParams::example3(1.3, 1.3, 1.3, 1.0, kInf);
  EXPECT_EQ(classify(params).verdict, Stability::kBorderline);
}

TEST(ClosedFormGrid, MarginIsContinuousAcrossGamma) {
  // The per-piece margin should vary continuously in gamma down to the
  // branch switch at gamma = mu (where the altruistic branch takes over).
  const double mu = 1.0;
  double previous = -kInf;
  for (double gamma = 4.0; gamma > mu + 0.05; gamma -= 0.05) {
    const auto params = SwarmParams::example1(2.0, 1.0, mu, gamma);
    const auto report = classify(params);
    EXPECT_GT(report.margin, previous - 1e-9);  // monotone in dwell time
    previous = report.margin;
  }
}

TEST(ClosedFormGrid, ScalingInvariance) {
  // Scaling all rates (lambda, Us, mu, gamma) by the same factor rescales
  // time only: the verdict must be invariant.
  Rng rng(104);
  for (int trial = 0; trial < 100; ++trial) {
    const double l12 = 0.1 + rng.uniform() * 3.0;
    const double l34 = 0.1 + rng.uniform() * 3.0;
    const double scale = 0.1 + rng.uniform() * 10.0;
    const SwarmParams a(4, 0.3, 1.0, 2.0,
                        {{PieceSet::single(0).with(1), l12},
                         {PieceSet::single(2).with(3), l34}});
    const SwarmParams b(4, 0.3 * scale, 1.0 * scale, 2.0 * scale,
                        {{PieceSet::single(0).with(1), l12 * scale},
                         {PieceSet::single(2).with(3), l34 * scale}});
    EXPECT_EQ(classify(a).verdict, classify(b).verdict);
  }
}

}  // namespace
}  // namespace p2p
