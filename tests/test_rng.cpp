#include "rand/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace p2p {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(7);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformIntIsUnbiased) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int trials = 140000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(7ULL)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, 5.0 * std::sqrt(trials / 7.0));
  }
}

TEST(Rng, UniformIntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanAndVariance) {
  Rng rng(13);
  const double rate = 2.5;
  double sum = 0, sum_sq = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  EXPECT_NEAR(mean, 1.0 / rate, 0.005);
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto x = static_cast<double>(rng.poisson(mean));
    ASSERT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / trials;
  const double v = sum_sq / trials - m * m;
  const double tol = 6.0 * std::sqrt(mean / trials) + 0.02;
  EXPECT_NEAR(m, mean, tol);
  EXPECT_NEAR(v, mean, 20.0 * tol);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.0, 0.3, 1.0, 4.0, 12.0, 45.0,
                                           80.0));

TEST(Rng, PoissonChunkedPathMatchesExactMoments) {
  // mean > 30 takes the chunked path (summed Poisson(15) chunks plus an
  // inversion remainder); Poisson additivity makes that exact in law, so
  // mean and variance must both match `mean` within Monte-Carlo noise.
  Rng rng(101);
  const double mean = 61.7;  // 4 chunks + fractional remainder
  const int trials = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < trials; ++i) {
    const auto x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / trials;
  const double v = sum_sq / trials - m * m;
  // SE(mean) = sqrt(mean/trials) ~ 0.018; SE(var) ~ sqrt(2/trials)*mean.
  EXPECT_NEAR(m, mean, 5.0 * std::sqrt(mean / trials));
  EXPECT_NEAR(v, mean, 5.0 * mean * std::sqrt(2.0 / trials) + 0.5);
}

TEST(Rng, PoissonChunkedGoldenStream) {
  // Fixed-seed golden values pin the exact output stream of the chunked
  // path, so a refactor of the chunk split (e.g. chunk size or order)
  // cannot silently change every downstream simulation.
  Rng rng(424242);
  const std::int64_t golden[] = {rng.poisson(31.0), rng.poisson(61.7),
                                 rng.poisson(100.0), rng.poisson(1000.0),
                                 rng.poisson(30.0)};  // last: inversion path
  EXPECT_EQ(golden[0], 37);
  EXPECT_EQ(golden[1], 51);
  EXPECT_EQ(golden[2], 107);
  EXPECT_EQ(golden[3], 967);
  EXPECT_EQ(golden[4], 37);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0, 6.0};
  std::array<int, 4> counts{};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);  // zero-weight entry never chosen
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(Rng, GeometricFailuresMean) {
  Rng rng(29);
  const double p = 0.25;
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto x = static_cast<double>(rng.geometric_failures(p));
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / trials, (1 - p) / p, 0.05);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_failures(1.0), 0);
}

TEST(RngDeath, DiscreteEmptySpanFailsFast) {
  Rng rng(5);
  const std::vector<double> empty;
  EXPECT_DEATH(rng.discrete(empty), "nonempty weight span");
}

TEST(RngDeath, DiscreteAllZeroWeightsFailsFast) {
  Rng rng(5);
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_DEATH(rng.discrete(zeros), "positive total weight");
}

}  // namespace
}  // namespace p2p
