// The policy scenario dimension end to end: a --policy=random sweep is
// bit-identical to the baseline (no policy column, same bytes), the
// non-baseline policies add the trailing policy column (and --fluid the
// fluid_verdict column) in a shape validate_report_schema and the phase
// ingester both accept, every work-conserving policy reproduces the
// exact truncated-CTMC occupancy on a small stable cell (Theorem 14's
// insensitivity, checked within the replica CI), the type-count backend
// refuses non-RandomUseful policies up front naming the axis, and
// policy sweeps keep the byte-determinism contract across thread
// counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/phase_diagram.hpp"
#include "ctmc/stationary.hpp"
#include "engine/csv_reader.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "sim/policy.hpp"

namespace p2p::engine {
namespace {

SweepOptions sim_options() {
  SweepOptions options;
  options.horizon = 60;
  options.replicas = 2;
  options.threads = 2;
  return options;
}

TEST(PolicySweep, ExplicitRandomUsefulIsByteIdenticalToBaseline) {
  const SweepGrid grid = parse_grid("k=2;lambda=0.8:2:4;us=1");
  const SweepOptions baseline = sim_options();
  SweepOptions explicit_random = sim_options();
  explicit_random.scenario.policy = PolicyKind::kRandomUseful;

  const Table a = run_sweep(grid, baseline).to_table();
  const Table b = run_sweep(grid, explicit_random).to_table();
  EXPECT_EQ(a.to_csv(), b.to_csv());
  // The baseline never grows a policy column: archived corpora keep
  // their bytes.
  for (const std::string& column : a.columns()) {
    EXPECT_NE(column, std::string(kPolicyColumn));
  }
  EXPECT_EQ(a.columns().back(), std::string(kSimBackendColumn));
}

TEST(PolicySweep, PolicyAndFluidColumnsValidateAndIngest) {
  const SweepGrid grid = parse_grid("k=2;lambda=0.8:2:4;us=0.6,1.2");
  SweepOptions options = sim_options();
  options.scenario.policy = PolicyKind::kRarestFirst;
  options.fluid = true;

  const Table table = run_sweep(grid, options).to_table();
  const std::vector<std::string>& columns = table.columns();
  ASSERT_GE(columns.size(), 3u);
  EXPECT_EQ(columns[columns.size() - 3], std::string(kSimBackendColumn));
  EXPECT_EQ(columns[columns.size() - 2], std::string(kPolicyColumn));
  EXPECT_EQ(columns.back(), std::string(kFluidVerdictColumn));

  const ReportSchema schema = validate_report_schema(columns);
  EXPECT_TRUE(schema.has_backend);
  EXPECT_TRUE(schema.has_policy);
  EXPECT_TRUE(schema.has_fluid);

  // Round trip through the analysis ingester: the policy token and the
  // per-cell fluid verdicts survive the archive.
  const analysis::PhaseGrid phase = analysis::build_phase_grid(table);
  EXPECT_EQ(phase.policy, "rarest-first");
  EXPECT_TRUE(phase.has_fluid);
  ASSERT_EQ(phase.cells.size(), table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r).back(), to_string(phase.cells[r].fluid))
        << "row " << r;
  }
  const analysis::VerdictAgreement agreement =
      analysis::verdict_agreement(phase);
  EXPECT_TRUE(agreement.has_fluid);
  std::size_t fluid_total = 0;
  for (int t = 0; t < 3; ++t) {
    for (int f = 0; f < 3; ++f) fluid_total += agreement.fluid_counts[t][f];
  }
  EXPECT_EQ(fluid_total, phase.cells.size());
}

TEST(PolicySweep, TheoryOnlyFluidGridHasNoBackendOrPolicyColumn) {
  const SweepGrid grid = parse_grid("k=2;lambda=0.8:2:4;us=1");
  SweepOptions options;
  options.theory_only = true;
  options.fluid = true;
  // A non-baseline policy is meaningless without a simulator; the
  // column stays suppressed so the header never claims a policy ran.
  options.scenario.policy = PolicyKind::kSequential;

  const Table table = run_sweep(grid, options).to_table();
  EXPECT_EQ(table.columns().back(), std::string(kFluidVerdictColumn));
  for (const std::string& column : table.columns()) {
    EXPECT_NE(column, std::string(kPolicyColumn));
    EXPECT_NE(column, std::string(kSimBackendColumn));
  }
  const ReportSchema schema = validate_report_schema(table.columns());
  EXPECT_FALSE(schema.has_backend);
  EXPECT_FALSE(schema.has_policy);
  EXPECT_TRUE(schema.has_fluid);
}

TEST(PolicySweep, EveryPolicyReproducesTheCtmcOccupancy) {
  // Theorem 14: on a stable homogeneous cell every work-conserving
  // policy has the same stationary law, so each policy's replica-mean
  // occupancy must bracket the exact truncated-chain E[N]. K = 2 keeps
  // the chain tiny; the cell sits well inside the stability region so
  // the truncation cap loses negligible mass.
  const SweepGrid grid = parse_grid("k=2;lambda=1;us=1;mu=1;gamma=1.25");
  const CellParams cell = [&] {
    SweepOptions theory;
    theory.theory_only = true;
    const SweepResult r = run_sweep(grid, theory);
    CellParams p;
    p.lambda = r.cells[0].lambda;
    p.us = r.cells[0].us;
    p.mu = r.cells[0].mu;
    p.gamma = r.cells[0].gamma;
    p.k = r.cells[0].k;
    return p;
  }();
  const double exact =
      solve_truncated_swarm(expand(ScenarioSpec{}, cell).params,
                            /*max_peers=*/40)
          .mean_peers();
  ASSERT_TRUE(std::isfinite(exact));

  for (const PolicyKind policy :
       {PolicyKind::kRandomUseful, PolicyKind::kRarestFirst,
        PolicyKind::kMostCommonFirst, PolicyKind::kSequential}) {
    SweepOptions options;
    options.horizon = 2000;
    options.warmup = 200;
    options.replicas = 8;
    options.threads = 4;
    options.scenario.policy = policy;
    const SweepResult result = run_sweep(grid, options);
    ASSERT_EQ(result.cells.size(), 1u);
    const SimAggregate& sim = result.cells[0].sim;
    ASSERT_TRUE(std::isfinite(sim.mean_peers_mean)) << to_string(policy);
    // The bootstrap CI over 8 replicas is a rough instrument; widen it
    // by half the exact mean so the test pins the law, not the noise.
    const double slack = 0.5 * exact;
    EXPECT_GT(sim.mean_peers_hi + slack, exact) << to_string(policy);
    EXPECT_LT(sim.mean_peers_lo - slack, exact) << to_string(policy);
    EXPECT_NEAR(sim.mean_peers_mean, exact, slack) << to_string(policy);
  }
}

TEST(PolicySweep, StreamBytesAreThreadCountInvariant) {
  const SweepGrid grid = parse_grid("k=2;lambda=0.8:2:6;us=0.6,1.2");
  const auto render = [&](int threads) {
    SweepOptions options = sim_options();
    options.scenario.policy = PolicyKind::kMostCommonFirst;
    options.fluid = true;
    options.threads = threads;
    std::string out;
    ReportWriter writer(&out, ReportFormat::kCsv, sweep_columns(options));
    run_sweep_stream(grid, options, writer);
    writer.finish();
    return out;
  };
  EXPECT_EQ(render(1), render(4));
}

TEST(PolicySweepDeath, ForcedTypecountRejectsNonBaselinePolicyByName) {
  const SweepGrid grid = parse_grid("k=2;lambda=1;us=1");
  SweepOptions options = sim_options();
  options.scenario.policy = PolicyKind::kRarestFirst;
  options.sim_backend = SimBackend::kTypeCount;
  EXPECT_DEATH(run_sweep(grid, options),
               "axis policy takes the value rarest-first");
  // The friendly-message helper names the same violation for the CLI.
  EXPECT_NE(typecount_domain_violation(SweepGrid{}, options.scenario).find(
                "rarest-first"),
            std::string::npos);
}

}  // namespace
}  // namespace p2p::engine
