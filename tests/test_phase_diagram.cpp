// Phase-diagram analysis: grid ingestion, scenario reconstruction,
// frontier re-derivation (cross-checked against refine_frontier and the
// paper's closed forms), and the theory-vs-sim agreement statistics.
#include "analysis/phase_diagram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/csv_reader.hpp"
#include "engine/sweep.hpp"

namespace p2p::analysis {
namespace {

using engine::parse_grid;
using engine::parse_scenario;
using engine::RefineOptions;
using engine::run_sweep;
using engine::SweepGrid;
using engine::SweepOptions;
using engine::Table;

Table small_region_table(int replicas = 1) {
  SweepGrid grid = parse_grid("k=1;mu=1;gamma=1.25;lambda=2,4,6;us=0.6,1.0");
  SweepOptions options;
  options.horizon = 30;
  options.replicas = replicas;
  return run_sweep(grid, options).to_table();
}

TEST(BuildPhaseGrid, DetectsAxesAndIngestsCells) {
  const Table table = small_region_table();
  const PhaseGrid grid = build_phase_grid(table);
  // us is the later axis in emission order, so it is the fast (x) one.
  EXPECT_EQ(grid.x_axis, "us");
  EXPECT_EQ(grid.y_axis, "lambda");
  ASSERT_EQ(grid.x_values, (std::vector<double>{0.6, 1.0}));
  ASSERT_EQ(grid.y_values, (std::vector<double>{2, 4, 6}));
  ASSERT_EQ(grid.cells.size(), 6u);
  EXPECT_TRUE(grid.scenario.empty());

  // lambda* = 5 Us: (lambda=2, us=0.6) has threshold 3 > 2 -> stable;
  // (lambda=6, us=1.0) has threshold 5 < 6 -> transient.
  EXPECT_EQ(grid.at(0, 0).verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(grid.at(2, 1).verdict, Stability::kTransient);
  EXPECT_EQ(grid.at(1, 1).params.lambda, 4.0);
  EXPECT_EQ(grid.at(1, 1).params.us, 1.0);
  EXPECT_EQ(grid.at(1, 1).params.k, 1);
  EXPECT_NEAR(grid.at(0, 0).margin, 1.0, 1e-12);  // 5*0.6 - 2
  EXPECT_EQ(grid.at(0, 0).replicas, 1);
  EXPECT_TRUE(std::isfinite(grid.at(0, 0).sim_mean_peers));
}

TEST(BuildPhaseGrid, ExplicitAxesTranspose) {
  const Table table = small_region_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "us");
  EXPECT_EQ(grid.x_axis, "lambda");
  EXPECT_EQ(grid.y_axis, "us");
  ASSERT_EQ(grid.x_values.size(), 3u);
  ASSERT_EQ(grid.y_values.size(), 2u);
  EXPECT_EQ(grid.at(1, 2).params.lambda, 6.0);
  EXPECT_EQ(grid.at(1, 2).params.us, 1.0);
}

TEST(BuildPhaseGrid, EitherAxisRequestAloneIsHonored) {
  const Table table = small_region_table();
  // --x alone: y defaults to the other varying axis.
  const PhaseGrid by_x = build_phase_grid(table, "lambda", "");
  EXPECT_EQ(by_x.x_axis, "lambda");
  EXPECT_EQ(by_x.y_axis, "us");
  // --y alone must be honored too, not silently ignored.
  const PhaseGrid by_y = build_phase_grid(table, "", "us");
  EXPECT_EQ(by_y.x_axis, "lambda");
  EXPECT_EQ(by_y.y_axis, "us");
  const PhaseGrid by_y2 = build_phase_grid(table, "", "lambda");
  EXPECT_EQ(by_y2.x_axis, "us");
  EXPECT_EQ(by_y2.y_axis, "lambda");
}

TEST(BuildPhaseGrid, ReconstructsScenarioFromPerTypeColumns) {
  SweepGrid sweep = parse_grid("k=4;us=1;gamma=inf;lambda=1.2,3;mix=0:1:3");
  SweepOptions options;
  options.horizon = 15;
  options.scenario = parse_scenario("example2:3,1");
  const Table table = run_sweep(sweep, options).to_table();

  const PhaseGrid grid = build_phase_grid(table);
  ASSERT_EQ(grid.scenario.mix.size(), 2u);
  EXPECT_EQ(grid.scenario.num_pieces, 4);
  EXPECT_NEAR(grid.scenario.mix[0].rate, 0.75, 1e-12);
  EXPECT_NEAR(grid.scenario.mix[1].rate, 0.25, 1e-12);
  EXPECT_EQ(grid.scenario.mix[0].type, PieceSet::single(0).with(1));
  EXPECT_EQ(grid.scenario.mix[1].type, PieceSet::single(2).with(3));

  // The reconstruction must reproduce the archived physics: classify()
  // on every rebuilt cell agrees with the recorded verdict and margin.
  for (const PhaseCell& cell : grid.cells) {
    const StabilityReport report =
        classify(engine::expand(grid.scenario, cell.params).params);
    EXPECT_EQ(report.verdict, cell.verdict);
    EXPECT_NEAR(report.margin, cell.margin, 1e-9);
  }
}

TEST(ExtractFrontier, MatchesRefineFrontierBitForBit) {
  // The same coarse grid through both localizers: refine_frontier at
  // sweep time vs extract_frontier on the ingested table. Identical
  // brackets and bisection arithmetic => identical doubles.
  const std::string spec = "k=1;mu=1;gamma=1.25;us=0.4,0.8,1.2;lambda=1:9:5";
  SweepOptions options;
  options.horizon = 10;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-3;
  const auto points =
      engine::refine_frontier(parse_grid(spec), options, refine).points;

  const Table table = run_sweep(parse_grid(spec), options).to_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "us");
  const auto extracted = extract_frontier(grid, refine.tol);

  ASSERT_EQ(extracted.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(extracted[i].bracketed, points[i].bracketed) << "row " << i;
    if (!points[i].bracketed) continue;
    EXPECT_EQ(extracted[i].value, points[i].value) << "row " << i;
    EXPECT_EQ(extracted[i].value_lo, points[i].value_lo) << "row " << i;
    EXPECT_EQ(extracted[i].value_hi, points[i].value_hi) << "row " << i;
    EXPECT_EQ(extracted[i].margin, points[i].margin) << "row " << i;
  }
}

TEST(ExtractFrontier, LandsOnTheClosedForms) {
  // lambda* = 5 Us for K = 1, mu = 1, gamma = 1.25 (Example 1 slice).
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  const Table table = run_sweep(
      parse_grid("k=1;mu=1;gamma=1.25;us=0.4,0.8,1.2;lambda=0.5:9.5:10"),
      options).to_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "us");
  const auto frontier = extract_frontier(grid, 1e-4);
  ASSERT_EQ(frontier.size(), 3u);
  const double expected[] = {2.0, 4.0, 6.0};
  for (int row = 0; row < 3; ++row) {
    ASSERT_TRUE(frontier[row].bracketed) << "row " << row;
    EXPECT_NEAR(frontier[row].value, expected[row], 1e-4) << "row " << row;
    EXPECT_NEAR(frontier[row].margin, 0.0, 1e-3) << "row " << row;
  }
}

TEST(ExtractFrontier, OneClubFrontierAtSeedProvisioningBound) {
  // One-club arrivals (Section V): the flip along lambda sits at
  // Us / (1 - mu/gamma) regardless of the mix level — here 1 / 0.2 = 5.
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  options.scenario = parse_scenario("oneclub:4");
  const Table table = run_sweep(
      parse_grid("k=4;us=1;mu=1;gamma=1.25;mix=0,0.5,1;lambda=1:9:5"),
      options).to_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "mix");
  const auto frontier = extract_frontier(grid, 1e-4);
  ASSERT_EQ(frontier.size(), 3u);
  for (int row = 0; row < 3; ++row) {
    ASSERT_TRUE(frontier[row].bracketed) << "row " << row;
    EXPECT_NEAR(frontier[row].value, 5.0, 1e-4) << "row " << row;
  }
}

TEST(ExtractFrontier, MarginInterpolationIsExactWhenMarginIsLinear) {
  // K = 1: margin = 5 Us - lambda, exactly linear in lambda — the
  // interpolated estimate IS the frontier, to fp precision, and the
  // bisected value agrees to its tolerance.
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  const Table table = run_sweep(
      parse_grid("k=1;mu=1;gamma=1.25;us=1;lambda=4,6"), options).to_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "us");
  const auto frontier = extract_frontier(grid, 1e-6);
  ASSERT_EQ(frontier.size(), 1u);
  ASSERT_TRUE(frontier[0].bracketed);
  EXPECT_NEAR(frontier[0].interpolated, 5.0, 1e-12);
  EXPECT_NEAR(frontier[0].value, 5.0, 1e-6);
}

TEST(ExtractFrontier, ThreadCountCannotChangeTheResult) {
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  const Table table = run_sweep(
      parse_grid("k=1;mu=1;gamma=1.25;us=0.2:1.7:8;lambda=0.5:9.5:12"),
      options).to_table();
  const PhaseGrid grid = build_phase_grid(table, "lambda", "us");
  const auto one = extract_frontier(grid, 1e-3, 1);
  const auto four = extract_frontier(grid, 1e-3, 4);
  ASSERT_EQ(one.size(), four.size());
  const auto same = [](double a, double b) {
    return (std::isnan(a) && std::isnan(b)) || a == b;
  };
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].bracketed, four[i].bracketed) << "row " << i;
    EXPECT_TRUE(same(one[i].value, four[i].value)) << "row " << i;
    EXPECT_TRUE(same(one[i].value_lo, four[i].value_lo)) << "row " << i;
    EXPECT_TRUE(same(one[i].value_hi, four[i].value_hi)) << "row " << i;
    EXPECT_TRUE(same(one[i].interpolated, four[i].interpolated))
        << "row " << i;
    EXPECT_TRUE(same(one[i].margin, four[i].margin)) << "row " << i;
  }
}

TEST(VerdictAgreement, CountsAndBootstrapCi) {
  const Table table = small_region_table(/*replicas=*/3);
  const PhaseGrid grid = build_phase_grid(table);
  const VerdictAgreement agreement = verdict_agreement(grid);
  EXPECT_EQ(agreement.cells_with_sim, 6u);
  EXPECT_EQ(agreement.compared, 6u);
  EXPECT_TRUE(std::isfinite(agreement.threshold));
  EXPECT_GE(agreement.agreement, 0.0);
  EXPECT_LE(agreement.agreement, 1.0);
  EXPECT_LE(agreement.agreement_lo, agreement.agreement);
  EXPECT_GE(agreement.agreement_hi, agreement.agreement);
  std::size_t total = 0;
  for (int v = 0; v < 3; ++v) {
    total += agreement.counts[v][0] + agreement.counts[v][1];
  }
  EXPECT_EQ(total, 6u);
  // Deterministic: same seed, same result.
  const VerdictAgreement again = verdict_agreement(grid);
  EXPECT_EQ(again.agreement_lo, agreement.agreement_lo);
  EXPECT_EQ(again.agreement_hi, agreement.agreement_hi);
}

TEST(VerdictAgreement, TheoryOnlyGridHasNoSimCells) {
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  const Table table = run_sweep(
      parse_grid("k=1;mu=1;gamma=1.25;us=0.6,1.0;lambda=2,6"),
      options).to_table();
  const VerdictAgreement agreement =
      verdict_agreement(build_phase_grid(table));
  EXPECT_EQ(agreement.cells_with_sim, 0u);
  EXPECT_TRUE(std::isnan(agreement.agreement));
  EXPECT_TRUE(std::isnan(agreement.threshold));
}

TEST(BuildPhaseGridDeath, FrontierTableAborts) {
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  const Table table =
      engine::refine_frontier(parse_grid("k=1;us=1;lambda=1,9"), options,
                              refine)
          .to_table();
  EXPECT_DEATH(build_phase_grid(table), "not frontier");
}

TEST(BuildPhaseGridDeath, ThirdVaryingAxisAborts) {
  SweepOptions options;
  options.horizon = 5;
  options.theory_only = true;
  const Table table = run_sweep(
      parse_grid("k=1;mu=1,2;us=0.6,1.0;lambda=2,6"), options).to_table();
  EXPECT_DEATH(build_phase_grid(table, "lambda", "us"),
               "\"mu\" varies");
  EXPECT_DEATH(build_phase_grid(table), "varies but is neither");
}

TEST(BuildPhaseGridDeath, NonFiniteCoordinateAborts) {
  // A NaN lambda is a corrupt coordinate, not a renderable cell.
  Table table = engine::read_csv(small_region_table().to_csv());
  Table corrupt(table.columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row = table.row(r);
    if (r == 2) row[1] = "nan";
    corrupt.add_row(std::move(row));
  }
  EXPECT_DEATH(build_phase_grid(corrupt), "lambda must be a positive");
}

TEST(BuildPhaseGridDeath, MissingCellAborts) {
  const Table table = small_region_table();
  Table partial(table.columns());
  for (std::size_t r = 0; r + 1 < table.num_rows(); ++r) {
    partial.add_row(table.row(r));
  }
  EXPECT_DEATH(build_phase_grid(partial), "do not tile");
}

TEST(BuildPhaseGridDeath, OutOfOrderCellIndexAborts) {
  const Table table = small_region_table();
  Table shuffled(table.columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    shuffled.add_row(table.row(table.num_rows() - 1 - r));
  }
  EXPECT_DEATH(build_phase_grid(shuffled), "0..n-1 in row order");
}

TEST(BuildPhaseGridDeath, DuplicateCoordinateAborts) {
  Table table({"cell", "lambda", "us", "mu", "gamma", "k", "eta", "flash",
               "mix", "hetero", "verdict", "margin", "critical_piece",
               "replicas", "sim_final_peers", "sim_mean_peers",
               "sim_mean_sojourn", "sim_mean_peers_sem",
               "sim_mean_peers_lo", "sim_mean_peers_hi",
               "ctmc_mean_peers"});
  const auto row = [&](int cell, const char* lambda, const char* us) {
    table.add_row({std::to_string(cell), lambda, us, "1", "1.25", "1", "1",
                   "0", "0", "0", "transient", "-1", "0", "0", "nan", "nan",
                   "nan", "nan", "nan", "nan", "nan"});
  };
  row(0, "1", "0.5");
  row(1, "2", "0.5");
  row(2, "1", "0.7");
  row(3, "1", "0.7");  // repeats (lambda=1, us=0.7)
  EXPECT_DEATH(build_phase_grid(table, "lambda", "us"), "repeats the cell");
}

TEST(BuildPhaseGridDeath, ContradictoryPerTypeColumnAborts) {
  SweepGrid sweep = parse_grid("k=4;us=1;gamma=inf;lambda=1.2,3;mix=0:1:3");
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  options.scenario = parse_scenario("example2:3,1");
  const Table table = run_sweep(sweep, options).to_table();
  Table corrupt(table.columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row = table.row(r);
    if (r == 1) row[11] = "0.42";  // lambda_t1.2 off its mix * lambda share
    corrupt.add_row(std::move(row));
  }
  EXPECT_DEATH(build_phase_grid(corrupt), "contradicts");
}

TEST(BuildPhaseGridDeath, UnknownVerdictAborts) {
  Table table = engine::read_csv(small_region_table().to_csv());
  Table corrupt(table.columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row = table.row(r);
    if (r == 0) row[10] = "wobbly";
    corrupt.add_row(std::move(row));
  }
  EXPECT_DEATH(build_phase_grid(corrupt), "unknown verdict");
}

}  // namespace
}  // namespace p2p::analysis
