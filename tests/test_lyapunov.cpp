// The Foster–Lyapunov function of Section VII: phi's shape, E/H terms,
// value consistency, and — the heart of the stability proof — negative
// drift on heavy-load states when condition (4) holds, with the phi term
// rescuing exactly the low-potential states described in Remark 11.
#include "core/lyapunov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stability.hpp"
#include "rand/rng.hpp"

namespace p2p {
namespace {

TEST(Phi, PiecewiseShapeAndSmoothJoin) {
  const double d = 5.0, beta = 0.05;
  // Linear part.
  EXPECT_NEAR(lyapunov_phi(0, d, beta), 2 * d + 1 / (2 * beta), 1e-12);
  EXPECT_NEAR(lyapunov_phi_prime(3.0, d, beta), -1.0, 1e-12);
  // Continuity and C^1 join at 2d.
  EXPECT_NEAR(lyapunov_phi(2 * d - 1e-9, d, beta),
              lyapunov_phi(2 * d + 1e-9, d, beta), 1e-6);
  EXPECT_NEAR(lyapunov_phi_prime(2 * d + 1e-9, d, beta), -1.0, 1e-6);
  // Vanishes beyond 2d + 1/beta.
  EXPECT_EQ(lyapunov_phi(2 * d + 1 / beta + 1.0, d, beta), 0.0);
  EXPECT_EQ(lyapunov_phi_prime(2 * d + 1 / beta + 1.0, d, beta), 0.0);
}

TEST(Phi, DerivativeBetweenMinusOneAndZero) {
  const double d = 3.0, beta = 0.1;
  for (double h = 0; h < 20; h += 0.1) {
    const double p = lyapunov_phi_prime(h, d, beta);
    EXPECT_GE(p, -1.0);
    EXPECT_LE(p, 0.0);
  }
  // phi is nonincreasing.
  for (double h = 0; h < 20; h += 0.1) {
    EXPECT_GE(lyapunov_phi(h, d, beta), lyapunov_phi(h + 0.1, d, beta));
  }
}

SwarmParams stable_k2() {
  // K = 2, Us = 2, lambda_empty = 1, gamma = 4: threshold = 2/(1-0.25) =
  // 2.67 > 1, so (4) holds for every S.
  return SwarmParams(2, 2.0, 1.0, 4.0, {{PieceSet{}, 1.0}});
}

TEST(Lyapunov, ETermCountsSubsets) {
  const auto params = stable_k2();
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet{}, 3);
  state.add(PieceSet::single(0), 2);
  state.add(PieceSet::full(2), 5);
  EXPECT_EQ(w.e_term(state, PieceSet{}), 3);
  EXPECT_EQ(w.e_term(state, PieceSet::single(0)), 5);
  EXPECT_EQ(w.e_term(state, PieceSet::single(1)), 3);
  EXPECT_EQ(w.e_term(state, PieceSet::full(2)), 10);
}

TEST(Lyapunov, HTermWeightsHelpers) {
  const auto params = stable_k2();  // g = 0.25
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet::single(0), 2);  // K - |C| + g = 1.25 each
  state.add(PieceSet::full(2), 1);    // K - |C| + g = 0.25
  // H for C = {1} (mask 0b10): helpers are {0} and F.
  const double expected = (2 * 1.25 + 1 * 0.25) / (1 - 0.25);
  EXPECT_NEAR(w.h_term(state, PieceSet::single(1)), expected, 1e-12);
  // H_F = 0 by definition (no helpers for F).
  EXPECT_NEAR(w.h_term(state, PieceSet::full(2)), 0.0, 1e-12);
}

TEST(Lyapunov, ValueMatchesDirectEvaluation) {
  // Cross-check the zeta-transform fast path against a direct O(4^K)
  // evaluation on random states.
  const SwarmParams params(3, 1.0, 1.0, 4.0, {{PieceSet{}, 0.5}});
  const auto lp = LyapunovFunction::suggest(params);
  LyapunovFunction w(params, lp);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    TypeCountState state(3);
    for (int i = 0; i < 30; ++i) {
      state.add(PieceSet{rng.uniform_int(8ULL)}, 1);
    }
    double direct = 0;
    for_each_subset(PieceSet::full(3), [&](PieceSet c) {
      const double rpow = std::pow(lp.r, c.size());
      if (c == PieceSet::full(3)) {
        const double n = static_cast<double>(state.total_peers());
        direct += rpow * n * n / 2;
        return;
      }
      const double e = w.e_term(state, c);
      const double h = w.h_term(state, c);
      direct +=
          rpow * (e * e / 2 + lp.alpha * e * lyapunov_phi(h, lp.d, lp.beta));
    });
    EXPECT_NEAR(w.value(state), direct,
                1e-9 * std::max(1.0, std::abs(direct)));
  }
}

TEST(Lyapunov, DriftNegativeOnLargeOneClub) {
  // Heavy one-club load, stable parameters: drift must be negative and
  // roughly proportional to -n.
  const auto params = stable_k2();
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  for (const std::int64_t n : {2000LL, 8000LL, 32000LL}) {
    TypeCountState state(2);
    state.add(PieceSet::single(1), n);  // one-club missing piece 0
    EXPECT_LT(w.drift(state), 0.0) << "n = " << n;
  }
}

TEST(Lyapunov, DriftPositiveOnOneClubWhenTransient) {
  // Transient parameters: the chain escapes to infinity; W grows.
  const SwarmParams params(2, 0.1, 1.0, kInfiniteRate, {{PieceSet{}, 2.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kTransient);
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet::single(1), 5000);
  EXPECT_GT(w.drift(state), 0.0);
}

TEST(Lyapunov, DriftNegativeOnSeedHeavyState) {
  // Many peer seeds: departures at rate gamma x_F dominate; W must fall.
  const auto params = stable_k2();
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet::full(2), 5000);
  EXPECT_LT(w.drift(state), 0.0);
}

TEST(Lyapunov, DriftNegativeOnMixedHeavyStates) {
  // Class II states (two big groups): uploads between them drain W.
  const auto params = stable_k2();
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet{}, 3000);
  state.add(PieceSet::single(0), 3000);
  EXPECT_LT(w.drift(state), 0.0);
}

TEST(Lyapunov, PhiTermRescuesLowPotentialStates) {
  // Remark 11: the phi term is needed precisely when the one-club drains
  // only through the *branching boost* of dwelling seeds, i.e. when
  // Us < lambda_total < Us / (1 - mu/gamma). Pick such parameters: the
  // quadratic term alone sees arrivals (rate 1) beat direct seed uploads
  // (rate 0.8) and has upward drift on a fresh one-club (H_S = 0), while
  // the full W already accounts for the stored helping potential.
  const SwarmParams params(2, 0.8, 1.0, 4.0, {{PieceSet{}, 1.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  auto lp = LyapunovFunction::suggest(params);
  lp.r = 0.01;  // suppress the r^2 n^2/2 seed term at this tight margin
  LyapunovFunction with_phi(params, lp);
  auto lp_no_phi = lp;
  lp_no_phi.alpha = 1e-9;
  LyapunovFunction without_phi(params, lp_no_phi);

  TypeCountState one_club(2);
  one_club.add(PieceSet::single(1), 20000);  // H_S = 0 here
  EXPECT_LT(with_phi.drift(one_club), 0.0);
  EXPECT_GT(without_phi.drift(one_club), 0.0)
      << "without the phi term the one-club state should look like it "
         "has upward drift (Remark 11)";
}

TEST(Lyapunov, AltruisticVariantNegativeDriftOnHeavyStates) {
  // gamma <= mu: the W' variant with auto-derived p. Heavy one-club load.
  const SwarmParams params(2, 0.5, 1.0, 0.8, {{PieceSet{}, 5.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState state(2);
  state.add(PieceSet::single(1), 20000);
  EXPECT_LT(w.drift(state), 0.0);
}

TEST(Lyapunov, DriftScalesAtLeastLinearly) {
  // Q W <= -xi n for n large: check drift/n is bounded away from zero
  // and does not vanish as n grows.
  const auto params = stable_k2();
  LyapunovFunction w(params, LyapunovFunction::suggest(params));
  TypeCountState small(2), big(2);
  small.add(PieceSet::single(1), 4000);
  big.add(PieceSet::single(1), 16000);
  const double per_n_small =
      w.drift(small) / static_cast<double>(small.total_peers());
  const double per_n_big =
      w.drift(big) / static_cast<double>(big.total_peers());
  EXPECT_LT(per_n_small, 0.0);
  EXPECT_LT(per_n_big, 0.0);
}

}  // namespace
}  // namespace p2p
