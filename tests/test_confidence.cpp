// Batch means, block bootstrap and integrated autocorrelation time.
#include "analysis/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rand/rng.hpp"

namespace p2p {
namespace {

std::vector<double> iid_normal_like(std::size_t n, Rng& rng) {
  // Sum of 12 uniforms - 6: mean 0, variance 1.
  std::vector<double> xs(n);
  for (auto& x : xs) {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += rng.uniform();
    x = s - 6.0;
  }
  return xs;
}

std::vector<double> ar1(std::size_t n, double rho, Rng& rng) {
  std::vector<double> xs(n);
  double x = 0;
  for (auto& out : xs) {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += rng.uniform();
    x = rho * x + (s - 6.0);
    out = x;
  }
  return xs;
}

TEST(BatchMeans, IidMatchesNaiveSem) {
  Rng rng(1);
  const auto xs = iid_normal_like(20000, rng);
  const auto result = batch_means(xs, 20);
  // Naive SEM for iid: sigma/sqrt(n) = 1/sqrt(20000) ~ 0.00707.
  EXPECT_NEAR(result.mean, 0.0, 0.03);
  EXPECT_NEAR(result.sem, 1.0 / std::sqrt(20000.0), 0.004);
}

TEST(BatchMeans, CorrelatedDataInflatesSem) {
  Rng rng(2);
  const double rho = 0.95;
  const auto xs = ar1(50000, rho, rng);
  const auto result = batch_means(xs, 25);
  // AR(1): tau = (1+rho)/(1-rho) = 39; SEM ~ sqrt(tau * var / n), var =
  // 1/(1-rho^2). Just check it is far above the naive iid SEM of the
  // series' marginal variance.
  const double naive =
      std::sqrt(1.0 / (1 - rho * rho) / 50000.0);
  EXPECT_GT(result.sem, 3.0 * naive);
}

TEST(BatchMeansDeath, RequiresEnoughSamples) {
  std::vector<double> xs(10, 1.0);
  EXPECT_DEATH(batch_means(xs, 20), "");
}

TEST(Autocorrelation, IidIsAboutOne) {
  Rng rng(3);
  const auto xs = iid_normal_like(20000, rng);
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 1.0, 0.25);
}

TEST(Autocorrelation, Ar1MatchesTheory) {
  Rng rng(4);
  const double rho = 0.8;
  const auto xs = ar1(100000, rho, rng);
  // tau = (1+rho)/(1-rho) = 9.
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 9.0, 2.0);
}

TEST(Bootstrap, MeanCiCoversTruthOnIid) {
  Rng rng(5);
  int covered = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const auto xs = iid_normal_like(2000, rng);
    const auto result = block_bootstrap(
        xs,
        [](std::span<const double> s) {
          double m = 0;
          for (double x : s) m += x;
          return m / static_cast<double>(s.size());
        },
        /*block_length=*/10, /*resamples=*/200, /*confidence=*/0.9, rng);
    covered += result.lower <= 0.0 && 0.0 <= result.upper;
    EXPECT_LT(result.lower, result.upper);
  }
  // 90% nominal coverage; allow wide slack for 50 trials.
  EXPECT_GE(covered, 38);
}

TEST(Bootstrap, PercentileIndicesAreSymmetricNearestRank) {
  // Regression: both percentile indices used to be computed with
  // truncating casts, which floor-biased the UPPER bound inward whenever
  // (1-alpha)*(resamples-1) was fractional. With resamples = 20 and
  // confidence 0.9: lower index floor(0.05 * 19) = 0, upper index must be
  // ceil(0.95 * 19) = ceil(18.05) = 19 — the old code picked 18.
  //
  // A counting statistic makes the resample order observable: call 0 is
  // the plug-in estimate on the original sample, calls 1..20 are the
  // resamples, so the sorted resample statistics are exactly 1..20.
  Rng rng(7);
  const std::vector<double> xs(25, 0.0);
  int calls = 0;
  const auto result = block_bootstrap(
      xs,
      [&calls](std::span<const double>) {
        return static_cast<double>(calls++);
      },
      /*block_length=*/5, /*resamples=*/20, /*confidence=*/0.9, rng);
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.lower, 1.0);   // stats[floor(0.95)] = stats[0]
  EXPECT_EQ(result.upper, 20.0);  // stats[ceil(18.05)] = stats[19]
}

TEST(BatchMeans, BatchSizeOneIsNaiveIidSem) {
  // num_batches == n: each replica is its own batch, so mean/SEM are the
  // plain sample mean and s / sqrt(n) — the right estimator for
  // independent replicas.
  const std::vector<double> xs = {1, 2, 3, 4};
  const auto result = batch_means(xs, 4);
  EXPECT_EQ(result.batches, 4);
  EXPECT_NEAR(result.mean, 2.5, 1e-12);
  // Sample variance 5/3; SEM = sqrt(5/3 / 4).
  EXPECT_NEAR(result.sem, std::sqrt(5.0 / 12.0), 1e-12);
}

TEST(Bootstrap, EstimateIsPlugIn) {
  Rng rng(6);
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto result = block_bootstrap(
      xs,
      [](std::span<const double> s) {
        double m = 0;
        for (double x : s) m += x;
        return m / static_cast<double>(s.size());
      },
      2, 50, 0.9, rng);
  EXPECT_NEAR(result.estimate, 3.0, 1e-12);
}

}  // namespace
}  // namespace p2p
