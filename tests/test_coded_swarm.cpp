// CodedSwarmSim (Theorem 15 system): invariants, decode/departure logic,
// and the headline behaviour — gifted arrivals + coding stabilize a swarm
// that is transient without coding.
#include "coding/coded_swarm.hpp"

#include <gtest/gtest.h>

#include "core/coding_stability.hpp"

namespace p2p {
namespace {

CodedSwarmParams basic(int k, int q) {
  CodedSwarmParams params;
  params.num_pieces = k;
  params.field_size = q;
  params.seed_rate = 1.0;
  params.contact_rate = 1.0;
  params.arrivals = {{1.0, 0}};
  return params;
}

TEST(CodedSwarm, ConservationOfPeers) {
  CodedSwarmSim sim(basic(4, 4), 1);
  sim.run_until(300.0);
  EXPECT_EQ(sim.total_peers(), sim.total_arrivals() - sim.total_departures());
}

TEST(CodedSwarm, NoSeedsWithImmediateDeparture) {
  CodedSwarmSim sim(basic(3, 2), 2);
  for (int i = 0; i < 30000; ++i) {
    sim.step();
    ASSERT_EQ(sim.peer_seeds(), 0);
  }
  EXPECT_GT(sim.total_departures(), 0);
}

TEST(CodedSwarm, SeedsDwellWithFiniteGamma) {
  auto params = basic(3, 4);
  params.seed_depart_rate = 0.5;
  CodedSwarmSim sim(params, 3);
  sim.run_until(300.0);
  EXPECT_GT(sim.peer_seeds(), 0);
}

TEST(CodedSwarm, EnlightenedNeverExceedsPopulation) {
  auto params = basic(4, 8);
  params.arrivals = {{1.0, 0}, {0.3, 1}};
  CodedSwarmSim sim(params, 4);
  for (int i = 0; i < 20000; ++i) {
    sim.step();
    ASSERT_GE(sim.enlightened_peers(), 0);
    ASSERT_LE(sim.enlightened_peers(), sim.total_peers());
  }
}

TEST(CodedSwarm, GiftedArrivalsSometimesUseless) {
  // Over GF(2) with K = 1, a "gifted" arrival's random vector is zero with
  // probability 1/2; those peers cannot decode on arrival.
  auto params = basic(1, 2);
  params.seed_rate = 0.0;
  params.arrivals = {{1.0, 1}};
  params.seed_depart_rate = 0.5;  // keep decoded peers around as seeds
  CodedSwarmSim sim(params, 5);
  sim.run_until(200.0);
  // Some arrivals decoded instantly (vector = 1), some not (vector = 0).
  EXPECT_GT(sim.total_peers(), 0);
  EXPECT_GT(sim.peer_seeds(), 0);
  EXPECT_LT(sim.peer_seeds(), sim.total_peers());
}

TEST(CodedSwarm, InjectedOneClubIsNotEnlightened) {
  const GaloisField gf(4);
  auto params = basic(4, 4);
  CodedSwarmSim sim(params, 6);
  // Basis e1, e2, e3 (all inside the hyperplane x0 = 0).
  std::vector<GfVector> basis;
  for (int i = 1; i < 4; ++i) {
    GfVector v(4, 0);
    v[static_cast<std::size_t>(i)] = 1;
    basis.push_back(v);
  }
  sim.inject_peers(basis, 50);
  EXPECT_EQ(sim.total_peers(), 50);
  EXPECT_EQ(sim.enlightened_peers(), 0);
}

TEST(CodedSwarm, SeedUploadsEnlighten) {
  // Only the fixed seed can supply vectors outside the hyperplane; with
  // Us > 0 the injected one-club gets enlightened over time.
  auto params = basic(3, 4);
  params.seed_rate = 5.0;
  params.arrivals = {{0.01, 0}};
  CodedSwarmSim sim(params, 7);
  std::vector<GfVector> basis;
  for (int i = 1; i < 3; ++i) {
    GfVector v(3, 0);
    v[static_cast<std::size_t>(i)] = 1;
    basis.push_back(v);
  }
  sim.inject_peers(basis, 30);
  sim.run_until(50.0);
  EXPECT_GT(sim.useful_transfers(), 0);
  EXPECT_GT(sim.total_departures(), 0);
}

TEST(CodedSwarm, StableWithStrongSeed) {
  auto params = basic(3, 4);
  params.seed_rate = 3.0;  // >> lambda = 1
  CodedSwarmSim sim(params, 8);
  sim.run_until(2000.0);
  EXPECT_LT(sim.total_peers(), 300);
}

// The paper's headline (Section VIII-B): with gifted fraction f above the
// coded threshold, the coded system is stable *without any seed*, while
// the uncoded system would be transient for every f < 1.
TEST(CodedSwarm, GiftedFractionAboveThresholdStabilizes) {
  const int k = 6, q = 8;
  const auto thresholds = coded_gift_thresholds(q, k);
  // f well above the recurrence threshold.
  const double f = std::min(0.9, 3.0 * thresholds.recurrent_above);
  CodedSwarmParams params;
  params.num_pieces = k;
  params.field_size = q;
  params.seed_rate = 0.0;
  params.contact_rate = 1.0;
  params.arrivals = {{(1.0 - f) * 2.0, 0}, {f * 2.0, 1}};
  CodedSwarmSim sim(params, 9);
  sim.run_until(3000.0);
  EXPECT_LT(sim.total_peers(), 500)
      << "coded system with f = " << f << " should be stable";
}

TEST(CodedSwarm, GiftedFractionFarBelowThresholdGrows) {
  const int k = 12, q = 2;
  const auto thresholds = coded_gift_thresholds(q, k);
  const double f = thresholds.transient_below * 0.1;
  CodedSwarmParams params;
  params.num_pieces = k;
  params.field_size = q;
  params.seed_rate = 0.0;
  params.contact_rate = 1.0;
  params.arrivals = {{(1.0 - f) * 4.0, 0}, {f * 4.0, 1}};
  CodedSwarmSim sim(params, 10);
  // Start from a coded one-club to expose the missing "direction".
  std::vector<GfVector> basis;
  for (int i = 1; i < k; ++i) {
    GfVector v(static_cast<std::size_t>(k), 0);
    v[static_cast<std::size_t>(i)] = 1;
    basis.push_back(v);
  }
  sim.inject_peers(basis, 300);
  sim.run_until(600.0);
  EXPECT_GT(sim.total_peers(), 900);
}

TEST(CodedSwarmDeath, RejectsZeroArrivalRate) {
  CodedSwarmParams params;
  params.num_pieces = 2;
  params.field_size = 2;
  params.arrivals = {{0.0, 0}};
  EXPECT_DEATH(CodedSwarmSim(params, 1), "arrival");
}

}  // namespace
}  // namespace p2p
