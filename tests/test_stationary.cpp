// Truncated stationary solver: validated on birth–death chains with known
// closed forms (M/M/1, M/M/infinity) and cross-validated against long
// simulations of the swarm chain for K = 1 and K = 2.
#include "ctmc/stationary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ctmc/typecount_chain.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

FiniteCtmc birth_death(int cap, const std::function<double(int)>& birth,
                       const std::function<double(int)>& death) {
  FiniteCtmc chain;
  chain.num_states = cap + 1;
  for (int i = 0; i < cap; ++i) {
    if (birth(i) > 0) chain.edges.push_back({i, i + 1, birth(i)});
  }
  for (int i = 1; i <= cap; ++i) {
    if (death(i) > 0) chain.edges.push_back({i, i - 1, death(i)});
  }
  return chain;
}

TEST(Stationary, MM1IsGeometric) {
  const double lambda = 0.6, mu = 1.0;
  const auto chain = birth_death(
      60, [&](int) { return lambda; }, [&](int) { return mu; });
  const auto pi = stationary_distribution(chain);
  const double rho = lambda / mu;
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(i)],
                (1 - rho) * std::pow(rho, i), 1e-6)
        << "state " << i;
  }
}

TEST(Stationary, MMInfIsPoisson) {
  const double lambda = 3.0, mu = 1.0;
  const auto chain = birth_death(
      40, [&](int) { return lambda; },
      [&](int i) { return mu * static_cast<double>(i); });
  const auto pi = stationary_distribution(chain);
  double expected = std::exp(-lambda);
  for (int i = 0; i < 15; ++i) {
    EXPECT_NEAR(pi[static_cast<std::size_t>(i)], expected, 1e-6)
        << "state " << i;
    expected *= lambda / static_cast<double>(i + 1);
  }
}

TEST(Stationary, TwoStateChainExact) {
  FiniteCtmc chain;
  chain.num_states = 2;
  chain.edges = {{0, 1, 2.0}, {1, 0, 3.0}};
  const auto pi = stationary_distribution(chain);
  EXPECT_NEAR(pi[0], 0.6, 1e-10);
  EXPECT_NEAR(pi[1], 0.4, 1e-10);
}

TEST(Stationary, DistributionSumsToOneAndNonnegative) {
  const auto chain = birth_death(
      30, [&](int i) { return 1.0 + 0.1 * i; },
      [&](int i) { return 0.5 * i * i; });
  const auto pi = stationary_distribution(chain);
  double total = 0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TruncatedSwarm, K1MatchesSimulatedMean) {
  // K = 1, stable: lambda = 1 < Us/(1-mu/gamma) = 2/(1-1/3) = 3.
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  const auto solved = solve_truncated_swarm(params, /*max_peers=*/80);
  ASSERT_GT(solved.states.size(), 100u);

  OnlineStats sim_n;
  TypeCountChain chain(params, 41);
  chain.run_until(500.0);
  chain.run_sampled(20000.0, 2.0, [&](double, const TypeCountState& s) {
    sim_n.add(static_cast<double>(s.total_peers()));
  });
  EXPECT_NEAR(solved.mean_peers(), sim_n.mean(),
              0.1 * std::max(1.0, solved.mean_peers()));
}

TEST(TruncatedSwarm, K1PmfMatchesSimulatedOccupancy) {
  const auto params = SwarmParams::example1(0.8, 2.0, 1.0, 3.0);
  const auto solved = solve_truncated_swarm(params, 60);
  // Simulated fraction of time with zero peers.
  TypeCountChain chain(params, 42);
  chain.run_until(500.0);
  std::int64_t zero = 0, total = 0;
  chain.run_sampled(20000.0, 1.0, [&](double, const TypeCountState& s) {
    ++total;
    zero += s.total_peers() == 0;
  });
  EXPECT_NEAR(solved.peer_count_pmf(0),
              static_cast<double>(zero) / static_cast<double>(total), 0.03);
}

TEST(TruncatedSwarm, K2MatchesSimulatedMean) {
  const SwarmParams params(2, 2.0, 1.0, 3.0, {{PieceSet{}, 0.7}});
  const auto solved = solve_truncated_swarm(params, /*max_peers=*/24);

  OnlineStats sim_n;
  TypeCountChain chain(params, 43);
  chain.run_until(500.0);
  chain.run_sampled(20000.0, 2.0, [&](double, const TypeCountState& s) {
    sim_n.add(static_cast<double>(s.total_peers()));
  });
  EXPECT_NEAR(solved.mean_peers(), sim_n.mean(),
              0.12 * std::max(1.0, solved.mean_peers()));
}

TEST(TruncatedSwarm, MeanCountsSumToMeanPeers) {
  const SwarmParams params(2, 2.0, 1.0, 3.0, {{PieceSet{}, 0.7}});
  const auto solved = solve_truncated_swarm(params, 20);
  double sum = 0;
  for_each_subset(PieceSet::full(2),
                  [&](PieceSet c) { sum += solved.mean_count(c); });
  EXPECT_NEAR(sum, solved.mean_peers(), 1e-9);
}

TEST(TruncatedSwarm, TighterTruncationUnderestimatesOnlySlightly) {
  // For a stable chain the truncated mean converges as the cap grows.
  const auto params = SwarmParams::example1(1.0, 2.0, 1.0, 3.0);
  const double loose = solve_truncated_swarm(params, 80).mean_peers();
  const double tight = solve_truncated_swarm(params, 40).mean_peers();
  EXPECT_NEAR(loose, tight, 0.05 * std::max(1.0, loose));
}

}  // namespace
}  // namespace p2p
