#include "util/piece_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace p2p {
namespace {

TEST(PieceSet, DefaultIsEmpty) {
  PieceSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.mask(), 0u);
}

TEST(PieceSet, FullHasAllPieces) {
  for (int k = 1; k <= 10; ++k) {
    const PieceSet full = PieceSet::full(k);
    EXPECT_EQ(full.size(), k);
    for (int p = 0; p < k; ++p) EXPECT_TRUE(full.contains(p));
    EXPECT_FALSE(full.contains(k));
  }
}

TEST(PieceSet, Full64DoesNotOverflow) {
  const PieceSet full = PieceSet::full(64);
  EXPECT_EQ(full.size(), 64);
  EXPECT_TRUE(full.contains(63));
}

TEST(PieceSet, SingleAndWithWithout) {
  PieceSet s = PieceSet::single(3);
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.contains(3));
  s = s.with(5).with(0);
  EXPECT_EQ(s.size(), 3);
  s = s.without(3);
  EXPECT_EQ(s.size(), 2);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(5));
}

TEST(PieceSet, SubsetRelations) {
  const PieceSet a = PieceSet::single(1).with(2);
  const PieceSet b = a.with(4);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_TRUE(a.is_proper_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_FALSE(a.is_proper_subset_of(a));
  EXPECT_TRUE(PieceSet{}.is_subset_of(a));
}

TEST(PieceSet, MinusIntersectUnite) {
  const PieceSet a = PieceSet::single(0).with(1).with(2);
  const PieceSet b = PieceSet::single(2).with(3);
  EXPECT_EQ(a.minus(b), PieceSet::single(0).with(1));
  EXPECT_EQ(a.intersect(b), PieceSet::single(2));
  EXPECT_EQ(a.unite(b), PieceSet::single(0).with(1).with(2).with(3));
}

TEST(PieceSet, Complement) {
  const PieceSet a = PieceSet::single(0).with(2);
  const PieceSet comp = a.complement(4);
  EXPECT_EQ(comp, PieceSet::single(1).with(3));
  EXPECT_EQ(a.unite(comp), PieceSet::full(4));
  EXPECT_TRUE(a.intersect(comp).empty());
}

TEST(PieceSet, NthSelectsInOrder) {
  const PieceSet s = PieceSet::single(1).with(4).with(9);
  EXPECT_EQ(s.nth(0), 1);
  EXPECT_EQ(s.nth(1), 4);
  EXPECT_EQ(s.nth(2), 9);
  EXPECT_EQ(s.lowest(), 1);
}

TEST(PieceSet, IterationVisitsAllInIncreasingOrder) {
  const PieceSet s = PieceSet::single(0).with(3).with(7).with(63);
  std::vector<int> seen;
  for (int p : s) seen.push_back(p);
  EXPECT_EQ(seen, (std::vector<int>{0, 3, 7, 63}));
}

TEST(PieceSet, ToString) {
  const PieceSet s = PieceSet::single(0).with(2);
  EXPECT_EQ(s.to_string(), "{0,2}");
  EXPECT_EQ(s.to_string(/*one_based=*/true), "{1,3}");
  EXPECT_EQ(PieceSet{}.to_string(), "{}");
}

TEST(PieceSet, ForEachSubsetEnumeratesPowerSet) {
  const PieceSet sup = PieceSet::single(1).with(3).with(4);
  std::set<std::uint64_t> seen;
  for_each_subset(sup, [&](PieceSet sub) {
    EXPECT_TRUE(sub.is_subset_of(sup));
    seen.insert(sub.mask());
  });
  EXPECT_EQ(seen.size(), 8u);  // 2^3 subsets
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(sup.mask()));
}

TEST(PieceSet, ForEachSubsetOfEmptySet) {
  int count = 0;
  for_each_subset(PieceSet{}, [&](PieceSet sub) {
    EXPECT_TRUE(sub.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, PowerSetSizeIsTwoToTheK) {
  const int k = GetParam();
  int count = 0;
  for_each_subset(PieceSet::full(k), [&](PieceSet) { ++count; });
  EXPECT_EQ(count, 1 << k);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetCountTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

// single(64) used to be an undefined-behaviour shift and full(65) silently
// saturated to the 64-piece collection; both must abort instead.
TEST(PieceSetDeathTest, SingleRejectsOutOfRangePiece) {
  EXPECT_DEATH(PieceSet::single(64), "0 <= piece < 64");
  EXPECT_DEATH(PieceSet::single(-1), "0 <= piece < 64");
}

TEST(PieceSetDeathTest, FullRejectsOutOfRangeCount) {
  EXPECT_DEATH(PieceSet::full(65), "0 <= k <= 64");
  EXPECT_DEATH(PieceSet::full(-1), "0 <= k <= 64");
}

TEST(PieceSet, FullAndSingleAcceptBoundaryArguments) {
  EXPECT_EQ(PieceSet::full(0).size(), 0);
  EXPECT_EQ(PieceSet::full(64).size(), 64);
  EXPECT_EQ(PieceSet::single(0).lowest(), 0);
  EXPECT_EQ(PieceSet::single(63).lowest(), 63);
}

}  // namespace
}  // namespace p2p
