// Renderer goldens: the PPM bytes and SVG structure are pinned for a
// hand-built grid (the rendering is pure arithmetic, so the bytes are
// part of the corpus contract), and the frontier overlay must land on
// the closed-form boundary lambda* = 5 Us of the Example-1 slice.
#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/phase_diagram.hpp"
#include "engine/sweep.hpp"

namespace p2p::analysis {
namespace {

using engine::parse_grid;
using engine::run_sweep;
using engine::SweepOptions;

/// A hand-built 2 x 2 grid: bottom row stable (margins 1 and 0.25),
/// top row transient (margin -1) and borderline (margin 0).
PhaseGrid tiny_grid() {
  PhaseGrid grid;
  grid.x_axis = "us";
  grid.y_axis = "lambda";
  grid.x_values = {0.5, 1.0};
  grid.y_values = {1.0, 2.0};
  grid.cells.resize(4);
  const auto cell = [](Stability verdict, double margin) {
    PhaseCell c;
    c.verdict = verdict;
    c.margin = margin;
    return c;
  };
  grid.cells[0] = cell(Stability::kPositiveRecurrent, 1.0);   // (y0, x0)
  grid.cells[1] = cell(Stability::kPositiveRecurrent, 0.25);  // (y0, x1)
  grid.cells[2] = cell(Stability::kTransient, -1.0);          // (y1, x0)
  grid.cells[3] = cell(Stability::kBorderline, 0.0);          // (y1, x1)
  return grid;
}

TEST(RenderPpm, GoldenBytesForTinyGrid) {
  RenderOptions options;
  options.cell_px = 1;
  options.margin_scale = 1.0;
  options.overlay_frontier = false;
  const std::string ppm = render_ppm(tiny_grid(), {}, options);

  // margin_scale 1 and the sqrt ramp pin every pixel exactly:
  //   |m| = 1    -> t = 1   -> the pole color itself
  //   |m| = 0.25 -> t = 0.5 -> midpoint halfway to the pole
  //   borderline -> neutral midpoint
  // Image row 0 is the TOP = last y value (transient row).
  const auto px = [](int r, int g, int b) {
    std::string s;
    s += static_cast<char>(r);
    s += static_cast<char>(g);
    s += static_cast<char>(b);
    return s;
  };
  std::string want = "P6\n2 2\n255\n";
  want += px(0x7f, 0x1f, 0x1e);  // transient pole (t = 1)
  want += px(0xf0, 0xef, 0xec);  // borderline -> neutral midpoint
  want += px(0x0d, 0x36, 0x6b);  // stable pole (t = 1)
  // t = 0.5 between midpoint 0xf0,0xef,0xec and pole 0x0d,0x36,0x6b:
  // lround(0xf0 + (0x0d - 0xf0) * 0.5) = 127 (ties away from zero),
  // 147, 172.
  want += px(127, 147, 172);
  EXPECT_EQ(ppm, want);
}

TEST(RenderPpm, FrontierMarkerPaintsInkAtTheEstimate) {
  PhaseGrid grid = tiny_grid();
  PhaseFrontierPoint pt;
  pt.row = 1;  // the transient/borderline row
  pt.y = 2.0;
  pt.bracketed = true;
  pt.x_lo = 0.5;
  pt.x_hi = 1.0;
  pt.value = 0.75;  // halfway: cell-center coordinate 1.0 of [0, 2)

  RenderOptions options;
  options.cell_px = 8;
  options.margin_scale = 1.0;
  const std::string ppm = render_ppm(grid, {pt}, options);
  const std::string header = "P6\n16 16\n255\n";
  ASSERT_EQ(ppm.substr(0, header.size()), header);

  // Row 1 of the grid is the TOP half of the image. The marker spans
  // pixel columns 7..8 (center 8 at coordinate 1.0 * cell_px).
  const auto pixel = [&](int row, int col) {
    const std::size_t off = header.size() + 3 * (row * 16 + col);
    return std::string(ppm, off, 3);
  };
  const std::string ink = {0x0b, 0x0b, 0x0b};
  EXPECT_EQ(pixel(0, 7), ink);
  EXPECT_EQ(pixel(0, 8), ink);
  EXPECT_NE(pixel(0, 5), ink);
  EXPECT_NE(pixel(0, 10), ink);
  // The stable (bottom) rows carry no marker.
  EXPECT_NE(pixel(12, 7), ink);
  EXPECT_NE(pixel(12, 8), ink);
}

TEST(RenderSvg, StructureAndLabels) {
  PhaseGrid grid = tiny_grid();
  PhaseFrontierPoint pt;
  pt.row = 1;
  pt.y = 2.0;
  pt.bracketed = true;
  pt.x_lo = 0.5;
  pt.x_hi = 1.0;
  pt.value = 0.75;

  RenderOptions options;
  options.cell_px = 10;
  options.margin_scale = 1.0;
  const std::string svg = render_svg(grid, {pt}, options);

  EXPECT_EQ(svg.rfind("<svg xmlns=\"http://www.w3.org/2000/svg\"", 0), 0u);
  // Background + 2 legend swatches + 4 cells.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 7u);
  // Frontier: surface halo + ink line.
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("stroke-width=\"4\""), std::string::npos);
  EXPECT_NE(svg.find("stroke-width=\"2\""), std::string::npos);
  // Axis names and legend labels (identity never by color alone).
  EXPECT_NE(svg.find(">us</text>"), std::string::npos);
  EXPECT_NE(svg.find(">lambda</text>"), std::string::npos);
  EXPECT_NE(svg.find(">stable</text>"), std::string::npos);
  EXPECT_NE(svg.find(">transient</text>"), std::string::npos);
  EXPECT_NE(svg.find(">frontier</text>"), std::string::npos);
  // Selective tick labels: first/last of each axis.
  EXPECT_NE(svg.find(">0.5</text>"), std::string::npos);
  EXPECT_NE(svg.find(">1</text>"), std::string::npos);
  EXPECT_NE(svg.find(">2</text>"), std::string::npos);
  EXPECT_EQ(svg.substr(svg.size() - 7), "</svg>\n");
}

TEST(RenderSvg, DeterministicBytes) {
  const PhaseGrid grid = tiny_grid();
  EXPECT_EQ(render_svg(grid, {}, {}), render_svg(grid, {}, {}));
  EXPECT_EQ(render_ppm(grid, {}, {}), render_ppm(grid, {}, {}));
}

TEST(RenderOverlay, LandsOnTheExampleOneClosedForm) {
  // Theory-only Example-1 slice: the overlay marker in each lambda row
  // must sit at the pixel of us* = lambda / 5 (lambda* = 5 Us
  // inverted), to within the marker's own width.
  SweepOptions options;
  options.horizon = 10;
  options.theory_only = true;
  const engine::Table table = run_sweep(
      parse_grid("k=1;mu=1;gamma=1.25;lambda=2,4,6;us=0.2:1.7:16"),
      options).to_table();
  const PhaseGrid grid = build_phase_grid(table);  // x=us, y=lambda
  ASSERT_EQ(grid.x_axis, "us");
  const auto frontier = extract_frontier(grid, 1e-6);

  const int px = 10;
  RenderOptions render;
  render.cell_px = px;
  const std::string ppm = render_ppm(grid, frontier, render);
  const std::string header = "P6\n160 30\n255\n";
  ASSERT_EQ(ppm.substr(0, header.size()), header);
  const std::string ink = {0x0b, 0x0b, 0x0b};

  const double x0 = grid.x_values.front();
  const double dx = grid.x_values[1] - grid.x_values[0];
  for (std::size_t yi = 0; yi < 3; ++yi) {
    const double lambda = grid.y_values[yi];
    const double us_star = lambda / 5.0;
    // Cell-center pixel of us* under uniform spacing.
    const double coord = (us_star - x0) / dx + 0.5;
    const long expect_col = std::lround(coord * px);
    // Any pixel row of this cell row works; take its middle line.
    const std::size_t img_row = (3 - 1 - yi) * px + px / 2;
    long found = -1;
    for (long col = 0; col < 160; ++col) {
      const std::size_t off = header.size() + 3 * (img_row * 160 + col);
      if (ppm.compare(off, 3, ink) == 0) {
        found = col;
        break;
      }
    }
    ASSERT_GE(found, 0) << "no marker in lambda row " << lambda;
    EXPECT_LE(std::abs(found - (expect_col - 1)), 2)
        << "lambda " << lambda << ": marker at " << found << ", expected ~"
        << expect_col - 1;
  }
}

TEST(RenderDeath, EmptyGridAborts) {
  PhaseGrid grid;
  grid.x_axis = "us";
  grid.y_axis = "lambda";
  EXPECT_DEATH(render_ppm(grid, {}, {}), "empty");
  EXPECT_DEATH(render_svg(grid, {}, {}), "empty");
}

TEST(RenderDeath, AbsurdCellSizeAborts) {
  RenderOptions options;
  options.cell_px = 0;
  EXPECT_DEATH(render_ppm(tiny_grid(), {}, options), "cell_px");
  options.cell_px = 100000;
  EXPECT_DEATH(render_svg(tiny_grid(), {}, options), "cell_px");
}

}  // namespace
}  // namespace p2p::analysis
