// analysis/provisioning.hpp: the closed-form seed-capacity planner the
// seed_provisioning example prints and the live monitor's advisories
// call. The formulas here have hand-derivable special cases (empty
// arrivals), so the tests pin exact algebra, not just plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/provisioning.hpp"
#include "core/stability.hpp"

namespace p2p::analysis {
namespace {

TEST(Provisioning, DwellRateConversionRoundTrips) {
  EXPECT_EQ(dwell_to_depart_rate(0.0), kInfiniteRate);
  EXPECT_EQ(depart_rate_to_dwell(kInfiniteRate), 0.0);
  EXPECT_DOUBLE_EQ(dwell_to_depart_rate(0.5), 2.0);
  EXPECT_DOUBLE_EQ(depart_rate_to_dwell(2.0), 0.5);
  for (const double dwell : {0.0, 0.25, 1.0, 8.0}) {
    EXPECT_DOUBLE_EQ(depart_rate_to_dwell(dwell_to_depart_rate(dwell)),
                     dwell);
  }
}

TEST(ProvisioningDeathTest, ConversionDomainsAreEnforced) {
  EXPECT_DEATH(dwell_to_depart_rate(-0.1), "finite and nonnegative");
  EXPECT_DEATH(dwell_to_depart_rate(kInfiniteRate), "finite and nonnegative");
  EXPECT_DEATH(depart_rate_to_dwell(0.0), "positive");
  EXPECT_DEATH(depart_rate_to_dwell(-2.0), "positive");
}

TEST(Provisioning, EmptyArrivalRequirementIsTheClosedForm) {
  // For the empty-arrival stream the per-piece threshold collapses to
  // lambda < Us / (1 - mu/gamma), so Us* = lambda * (1 - mu/gamma).
  for (const double lambda : {0.5, 2.0, 10.0}) {
    for (const double mu_over_gamma : {0.0, 0.25, 0.5, 0.8}) {
      const double mu = 1.0;
      const double gamma =
          mu_over_gamma == 0.0 ? kInfiniteRate : mu / mu_over_gamma;
      const SwarmParams params(4, 0.0, mu, gamma, {{PieceSet{}, lambda}});
      const SeedAdvice advice = seed_advice(params);
      EXPECT_NEAR(advice.us_required, lambda * (1.0 - mu_over_gamma), 1e-12);
      EXPECT_NEAR(advice.us_margin, -advice.us_required, 1e-12);
      EXPECT_EQ(advice.us_gap, -advice.us_margin);
    }
  }
}

TEST(Provisioning, AdviceViewAndOwningOverloadsAgree) {
  const SwarmParams params(3, 0.7, 1.0, 2.5,
                           {{PieceSet{}, 1.2}, {PieceSet::single(1), 0.4}});
  const SeedAdvice owning = seed_advice(params);
  const SeedAdvice view = seed_advice(params.view());
  EXPECT_EQ(owning.us_required, view.us_required);
  EXPECT_EQ(owning.us_margin, view.us_margin);
  EXPECT_EQ(owning.us_gap, view.us_gap);
  // And the margin decomposition holds: margin = Us - required.
  EXPECT_DOUBLE_EQ(owning.us_margin, 0.7 - owning.us_required);
}

TEST(Provisioning, GapIsZeroInsideTheRegionAndPositiveOutside) {
  // lambda = 1, mu/gamma = 0.5 => Us* = 0.5.
  const SwarmParams base(2, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  const SeedAdvice inside = seed_advice(base);
  EXPECT_GT(inside.us_margin, 0);
  EXPECT_EQ(inside.us_gap, 0);
  const SeedAdvice outside = seed_advice(base.with_seed_rate(0.2));
  EXPECT_LT(outside.us_margin, 0);
  EXPECT_NEAR(outside.us_gap, 0.3, 1e-12);
}

TEST(Provisioning, CapacityPlanMatchesTheSolverElementwise) {
  const int k = 8;
  const double mu = 1.0;
  const std::vector<double> loads = {0.5, 1.0, 2.0, 5.0};
  const std::vector<double> dwells = {0.0, 0.25, 0.5, 1.0};
  const CapacityPlan plan = seed_capacity_plan(k, mu, loads, dwells);
  ASSERT_EQ(plan.loads, loads);
  ASSERT_EQ(plan.dwells, dwells);
  ASSERT_EQ(plan.us_required.size(), loads.size() * dwells.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (std::size_t j = 0; j < dwells.size(); ++j) {
      const SwarmParams params(k, 0.0, mu, dwell_to_depart_rate(dwells[j]),
                               {{PieceSet{}, loads[i]}});
      EXPECT_EQ(plan.at(i, j), min_stabilizing_seed_rate(params))
          << "load " << loads[i] << " dwell " << dwells[j];
    }
  }
  // The corollary column: dwell 1/mu reaches the altruistic branch, so
  // the requirement vanishes (up to the strictness nudge) at any load.
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_LE(plan.at(i, dwells.size() - 1), 1e-300);
  }
  // And requirements tighten monotonically with load and loosen with
  // dwell — the table's whole operational point.
  for (std::size_t i = 0; i + 1 < loads.size(); ++i) {
    EXPECT_LE(plan.at(i, 0), plan.at(i + 1, 0));
  }
  for (std::size_t j = 0; j + 1 < dwells.size(); ++j) {
    EXPECT_GE(plan.at(0, j), plan.at(0, j + 1));
  }
}

TEST(Provisioning, MinDwellByLoadInvertsTheEmptyArrivalThreshold) {
  // Empty arrivals, fixed Us: stable iff lambda < Us / (1 - mu/gamma),
  // so gamma* = mu / (1 - Us/lambda) and the minimum dwell is
  // (1 - Us/lambda) / mu — 0 (no dwell needed) once Us >= lambda.
  const int k = 8;
  const double us = 0.5, mu = 1.0;
  const std::vector<double> loads = {0.4, 1.0, 2.0, 5.0, 20.0};
  const std::vector<double> dwells = min_dwell_by_load(k, us, mu, loads);
  ASSERT_EQ(dwells.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] <= us) {
      EXPECT_EQ(dwells[i], 0.0) << "load " << loads[i];
    } else {
      EXPECT_NEAR(dwells[i], (1.0 - us / loads[i]) / mu, 1e-9)
          << "load " << loads[i];
    }
  }
  // min_stabilizing_dwell agrees with the per-load table.
  const SwarmParams params(k, us, mu, 2.0, {{PieceSet{}, 2.0}});
  EXPECT_NEAR(min_stabilizing_dwell(params), (1.0 - us / 2.0) / mu, 1e-9);
}

}  // namespace
}  // namespace p2p::analysis
