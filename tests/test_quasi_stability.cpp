// Quasi-stability analytics: excursion bookkeeping on synthetic series
// and one-club onset detection on simulated swarms.
#include "analysis/quasi_stability.hpp"

#include <gtest/gtest.h>

#include "core/stability.hpp"

namespace p2p {
namespace {

TEST(Excursions, CountsAndDurations) {
  TimeSeries ts;
  //       t: 0  1  2  3  4  5  6  7  8  9
  //       v: 0  5  5  0  0  7  0  5  5  5   (threshold 2)
  const double vs[] = {0, 5, 5, 0, 0, 7, 0, 5, 5, 5};
  for (int i = 0; i < 10; ++i) ts.push(i, vs[i]);
  const ExcursionStats stats = excursions_above(ts, 2.0);
  EXPECT_EQ(stats.count, 3);
  // Durations: [1,3) = 2, [5,6) = 1, [7,9] = 2 (open at end).
  EXPECT_NEAR(stats.mean_duration, (2.0 + 1.0 + 2.0) / 3.0, 1e-12);
  EXPECT_NEAR(stats.max_duration, 2.0, 1e-12);
  EXPECT_NEAR(stats.max_value, 7.0, 1e-12);
  // Time above: samples 1,2 (2 units), 5 (1 unit), 7,8,9 (2 units counted
  // up to the last timestamp).
  EXPECT_NEAR(stats.fraction_above, 5.0 / 9.0, 1e-12);
}

TEST(Excursions, NoneAboveThreshold) {
  TimeSeries ts;
  for (int i = 0; i < 5; ++i) ts.push(i, 1.0);
  const ExcursionStats stats = excursions_above(ts, 2.0);
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.fraction_above, 0.0);
  EXPECT_EQ(stats.mean_duration, 0.0);
}

TEST(Excursions, AllAboveThreshold) {
  TimeSeries ts;
  for (int i = 0; i < 5; ++i) ts.push(i, 9.0);
  const ExcursionStats stats = excursions_above(ts, 2.0);
  EXPECT_EQ(stats.count, 1);
  EXPECT_NEAR(stats.max_duration, 4.0, 1e-12);
  EXPECT_NEAR(stats.fraction_above, 1.0, 1e-12);
}

TEST(Excursions, EmptySeries) {
  const ExcursionStats stats = excursions_above(TimeSeries{}, 1.0);
  EXPECT_EQ(stats.count, 0);
}

TEST(Onset, TransientSystemShowsOnset) {
  // Strongly transient K = 3 system: the one-club must form well before
  // the horizon.
  const SwarmParams params(3, 0.2, 1.0, 4.0, {{PieceSet{}, 2.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kTransient);
  OnsetOptions options;
  options.horizon = 3000;
  options.rng_seed = 3;
  const OnsetResult result = detect_onset(params, "random-useful", options);
  EXPECT_TRUE(result.onset);
  EXPECT_LT(result.onset_time, options.horizon);
  EXPECT_GE(result.rare_piece, 0);
  EXPECT_GE(result.peers_at_onset, options.min_peers);
}

TEST(Onset, StableSystemShowsNoOnset) {
  const SwarmParams params(3, 3.0, 1.0, 4.0, {{PieceSet{}, 1.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  OnsetOptions options;
  options.horizon = 1500;
  options.rng_seed = 4;
  const OnsetResult result = detect_onset(params, "random-useful", options);
  EXPECT_FALSE(result.onset);
  EXPECT_EQ(result.onset_time, options.horizon);
  EXPECT_EQ(result.rare_piece, -1);
}

TEST(Onset, RarestFirstDelaysOnset) {
  // The quasi-stability claim of Section IX: policy changes the onset
  // time even though it cannot change the region. Averaged over seeds,
  // rarest-first should outlast most-common-first.
  const SwarmParams params(4, 0.5, 1.0, 4.0, {{PieceSet{}, 1.5}});
  OnsetOptions options;
  options.horizon = 3000;
  double rarest = 0, common = 0;
  const int reps = 4;
  for (std::uint64_t seed = 0; seed < reps; ++seed) {
    options.rng_seed = 10 + seed;
    rarest += detect_onset(params, "rarest-first", options).onset_time;
    common +=
        detect_onset(params, "most-common-first", options).onset_time;
  }
  EXPECT_GT(rarest / reps, common / reps);
}

}  // namespace
}  // namespace p2p
