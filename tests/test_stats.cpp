// Statistics helpers: Welford accumulator, time series, OLS fits.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rand/rng.hpp"

namespace p2p {
namespace {

TEST(OnlineStats, MatchesBatchComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1.0, 2.5, -0.5, 4.0, 2.0};
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_EQ(s.count(), 5);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(var / 5), 1e-12);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(TimeSeries, TimeAverageTrapezoid) {
  TimeSeries ts;
  ts.push(0.0, 0.0);
  ts.push(1.0, 2.0);
  ts.push(3.0, 2.0);
  // Area = 1 + 4 = 5 over span 3.
  EXPECT_NEAR(ts.time_average(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(ts.max_value(), 2.0);
}

TEST(TimeSeries, RejectsNonincreasingTimes) {
  TimeSeries ts;
  ts.push(1.0, 0.0);
  EXPECT_DEATH(ts.push(1.0, 1.0), "");
}

TEST(LinearFitTest, ExactLine) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.push(static_cast<double>(i), 3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(ts, 0, ts.size());
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineRecoversSlope) {
  Rng rng(3);
  TimeSeries ts;
  for (int i = 0; i < 500; ++i) {
    ts.push(static_cast<double>(i),
            1.0 + 0.5 * i + (rng.uniform() - 0.5) * 4.0);
  }
  const LinearFit fit = linear_fit(ts, 0, ts.size());
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.slope_stderr, 0.0);
  EXPECT_NEAR(fit.slope, 0.5, 5.0 * fit.slope_stderr);
}

TEST(LinearFitTest, TailFitUsesOnlyTail) {
  // Series flat then rising: tail fit sees the rise.
  TimeSeries ts;
  for (int i = 0; i < 50; ++i) ts.push(static_cast<double>(i), 1.0);
  for (int i = 50; i < 100; ++i) {
    ts.push(static_cast<double>(i), 1.0 + (i - 50) * 2.0);
  }
  const LinearFit tail = tail_fit(ts, 0.4);
  EXPECT_NEAR(tail.slope, 2.0, 0.2);
}

TEST(LinearFitTest, FlatSeriesZeroSlope) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.push(static_cast<double>(i), 7.0);
  const LinearFit fit = linear_fit(ts, 0, ts.size());
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
}

}  // namespace
}  // namespace p2p
