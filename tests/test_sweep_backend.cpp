// Backend selection at the sweep layer: kAuto resolves to the
// type-count simulator on exactly the cells where its exchangeable
// state is the same law as per-peer (RandomUseful, eta = 1, hetero = 0,
// K <= 16), the report records the per-cell resolution in the trailing
// sim_backend column, and a forced out-of-domain request dies naming
// the offending axis — the same message p2p_sweep prints as a friendly
// error before the engine ever spins up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

TEST(SimBackendResolution, AutoMatchesTheDomainRule) {
  // 2 x 2 grid crossing the two domain axes: only the (eta = 1,
  // hetero = 0) corner may run type-count.
  SweepGrid grid = parse_grid("lambda=1;us=1;k=2;eta=1,1.5;hetero=0,0.4");
  SweepOptions options;
  options.horizon = 10;
  const SweepResult result = run_sweep(grid, options);
  ASSERT_EQ(result.cells.size(), 4u);
  const Table table = result.to_table();
  ASSERT_EQ(table.columns().back(), std::string(kSimBackendColumn));
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    const bool fast = c.eta == 1.0 && c.hetero == 0.0;
    CellParams p;
    p.lambda = c.lambda;
    p.us = c.us;
    p.eta = c.eta;
    p.hetero = c.hetero;
    p.k = c.k;
    EXPECT_EQ(typecount_in_domain(p), fast);
    EXPECT_EQ(result.cells[i].backend,
              fast ? SimBackend::kTypeCount : SimBackend::kPerPeer)
        << "cell " << i;
    EXPECT_EQ(table.row(i).back(), fast ? "typecount" : "perpeer")
        << "cell " << i;
  }
}

TEST(SimBackendResolution, ForcedBackendsOverrideAuto) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 10;

  options.sim_backend = SimBackend::kPerPeer;
  Table table = run_sweep(grid, options).to_table();
  EXPECT_EQ(table.row(0).back(), "perpeer");

  // Forcing type-count on an in-domain grid is legal and recorded.
  options.sim_backend = SimBackend::kTypeCount;
  table = run_sweep(grid, options).to_table();
  EXPECT_EQ(table.row(0).back(), "typecount");
}

TEST(SimBackendResolution, TheoryOnlyOmitsTheColumn) {
  // No simulator ran, so there is no resolution to record — and the
  // archived theory-only corpora keep their pre-backend byte layout.
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.theory_only = true;
  const Table table = run_sweep(grid, options).to_table();
  EXPECT_EQ(table.columns().back(), "ctmc_mean_peers");
  EXPECT_EQ(std::find(table.columns().begin(), table.columns().end(),
                      std::string(kSimBackendColumn)),
            table.columns().end());
}

TEST(SimBackendResolution, FrontierRecordsTheResolution) {
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 10;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  const Table table = refine_frontier(grid, options, refine).to_table();
  ASSERT_EQ(table.columns().back(), std::string(kSimBackendColumn));
  ASSERT_EQ(table.num_rows(), 1u);
  // Homogeneous K = 1 cell: in domain, so kAuto localized the frontier
  // on the type-count backend.
  EXPECT_EQ(table.row(0).back(), "typecount");
}

TEST(TypecountDomainViolation, NamesTheOffendingAxisAndValue) {
  EXPECT_EQ(typecount_domain_violation(parse_grid("lambda=1;us=1;k=2")), "");
  const std::string eta = typecount_domain_violation(
      parse_grid("lambda=1;us=1;k=2;eta=1,1.5"));
  EXPECT_NE(eta.find("eta = 1"), std::string::npos) << eta;
  EXPECT_NE(eta.find("axis eta takes the value 1.5"), std::string::npos)
      << eta;
  const std::string hetero = typecount_domain_violation(
      parse_grid("lambda=1;us=1;k=2;hetero=0.4"));
  EXPECT_NE(hetero.find("hetero = 0"), std::string::npos) << hetero;
  const std::string wide =
      typecount_domain_violation(parse_grid("lambda=1;us=1;k=18"));
  EXPECT_NE(wide.find("k <= 16"), std::string::npos) << wide;
}

TEST(SimBackendDeath, ForcedTypeCountOutOfDomainAborts) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=2;eta=1,1.5");
  SweepOptions options;
  options.horizon = 10;
  options.sim_backend = SimBackend::kTypeCount;
  EXPECT_DEATH(run_sweep(grid, options), "axis eta takes the value 1.5");
}

TEST(SimBackendResolution, BackendsAgreeOnSweepOccupancy) {
  // End-to-end cross-check through the sweep pipeline: the same stable
  // cell simulated under both backends (different RNG laws, so the
  // agreement is statistical, not bitwise) lands on the same occupancy.
  // The sharp distribution-level equivalence lives in
  // test_typecount_sim.cpp; this pins the sweep wiring — seeds are
  // fixed, so the comparison is deterministic.
  SweepGrid grid = parse_grid("lambda=2;us=1;mu=1;gamma=inf;k=1");
  SweepOptions options;
  options.replicas = 8;
  options.warmup = 200;
  options.horizon = 1000;

  options.sim_backend = SimBackend::kPerPeer;
  const double per_peer =
      run_sweep(grid, options).cells[0].sim.mean_peers_mean;
  options.sim_backend = SimBackend::kTypeCount;
  const double type_count =
      run_sweep(grid, options).cells[0].sim.mean_peers_mean;
  ASSERT_TRUE(std::isfinite(per_peer));
  ASSERT_TRUE(std::isfinite(type_count));
  EXPECT_NEAR(type_count / per_peer, 1.0, 0.15)
      << "perpeer " << per_peer << " vs typecount " << type_count;
}

}  // namespace
}  // namespace p2p::engine
