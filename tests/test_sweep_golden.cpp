// Golden-file guard for the sweep report schema. Archived sweep CSVs are
// a corpus: downstream plotting and diffing rely on the exact header
// order and on format_number's shortest-round-trip rendering. A report
// refactor that silently reorders, renames or reformats columns must
// fail here, not in somebody's notebook months later.
//
// Numeric *values* are deliberately not goldened — they go through libm
// (log in the exponential sampler), whose last-ulp rounding may differ
// across platforms. The schema and the format round-trip are the
// portable contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "engine/parse_util.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

constexpr const char* kGridHeader =
    "cell,lambda,us,mu,gamma,k,eta,flash,mix,hetero,verdict,margin,"
    "critical_piece,replicas,sim_final_peers,sim_mean_peers,"
    "sim_mean_sojourn,sim_mean_peers_sem,sim_mean_peers_lo,"
    "sim_mean_peers_hi,ctmc_mean_peers,sim_backend";

constexpr const char* kFrontierHeader =
    "row,axis,bracketed,value,value_lo,value_hi,margin,lambda,us,mu,gamma,"
    "k,eta,flash,mix,hetero,replicas,sim_mean_peers,sim_mean_peers_sem,"
    "sim_mean_peers_lo,sim_mean_peers_hi,sim_backend";

TEST(SweepGolden, GridCsvHeaderIsTheArchivedSchema) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 10;
  const std::string csv = run_sweep(grid, options).to_table().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), kGridHeader);
}

TEST(SweepGolden, ScenarioCsvHeaderInsertsPerTypeRateColumns) {
  // With a named mix, the per-type arrival-rate columns sit between the
  // axis block and the verdict block — '.'-joined one-based piece
  // indices, so the header needs no CSV quoting and stays naively
  // splittable.
  SweepGrid grid = parse_grid("lambda=2;us=1;gamma=inf;k=4;mix=1");
  SweepOptions options;
  options.horizon = 10;
  options.scenario = parse_scenario("example2:3,1");
  const Table table = run_sweep(grid, options).to_table();
  const std::string csv = table.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header,
            "cell,lambda,us,mu,gamma,k,eta,flash,mix,hetero,"
            "lambda_empty,lambda_t1.2,lambda_t3.4,verdict,margin,"
            "critical_piece,replicas,sim_final_peers,sim_mean_peers,"
            "sim_mean_sojourn,sim_mean_peers_sem,sim_mean_peers_lo,"
            "sim_mean_peers_hi,ctmc_mean_peers,sim_backend");
  // The rate columns carry the interpolated composition.
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.row(0)[10], "0");    // lambda_empty at mix=1
  EXPECT_EQ(table.row(0)[11], "1.5");  // 2 * 0.75
  EXPECT_EQ(table.row(0)[12], "0.5");  // 2 * 0.25
}

TEST(SweepGolden, FrontierCsvHeaderIsTheArchivedSchema) {
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 10;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  const std::string csv =
      refine_frontier(grid, options, refine).to_table().to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), kFrontierHeader);
}

TEST(SweepGolden, ScenarioFrontierCsvRecordsTheComposition) {
  // An archived frontier CSV must also record the per-type arrival
  // rates at the localized point — the weights are not recoverable from
  // the generic axis columns alone.
  SweepGrid grid = parse_grid("k=4;us=1;mu=1;gamma=inf;lambda=2;mix=0:1:5");
  SweepOptions options;
  options.horizon = 10;
  options.scenario = parse_scenario("example2:3,1");
  RefineOptions refine;
  refine.axis = "mix";
  refine.tol = 1e-3;
  const Table table =
      refine_frontier(grid, options, refine).to_table();
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "row,axis,bracketed,value,value_lo,value_hi,margin,lambda,us,"
            "mu,gamma,k,eta,flash,mix,hetero,lambda_empty,lambda_t1.2,"
            "lambda_t3.4,replicas,sim_mean_peers,sim_mean_peers_sem,"
            "sim_mean_peers_lo,sim_mean_peers_hi,sim_backend");
  ASSERT_EQ(table.num_rows(), 1u);
  // lambda_t1.2 + lambda_t3.4 + lambda_empty = lambda at the frontier.
  const double empty = std::strtod(table.row(0)[16].c_str(), nullptr);
  const double t12 = std::strtod(table.row(0)[17].c_str(), nullptr);
  const double t34 = std::strtod(table.row(0)[18].c_str(), nullptr);
  EXPECT_NEAR(empty + t12 + t34, 2.0, 1e-12);
  EXPECT_NEAR(t12, 3 * t34, 1e-12);
}

TEST(SweepGolden, EveryNumericCellRoundTripsThroughFormatNumber) {
  // The archival contract of format_number: any numeric cell, parsed
  // back with strtod, re-formats to the identical string — so a CSV is
  // a lossless record of the doubles that produced it.
  SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.7,1.3;k=2;gamma=1.25");
  SweepOptions options;
  options.horizon = 40;
  options.replicas = 3;
  options.ctmc_max_peers = 10;
  const std::string csv = run_sweep(grid, options).to_table().to_csv();
  const std::vector<std::string> lines = split_list(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  int numeric_cells = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    for (const std::string& cell : split_list(lines[i], ',')) {
      if (cell == "nan" || cell == "inf" || cell == "-inf") continue;
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (cell.empty() || end != cell.c_str() + cell.size()) {
        continue;  // verdict strings etc.
      }
      EXPECT_EQ(format_number(v), cell);
      ++numeric_cells;
    }
  }
  // 6 cells x 18 numeric columns: the loop must actually have checked a
  // table's worth of numbers, not skipped everything.
  EXPECT_GE(numeric_cells, 100);
}

TEST(SweepGolden, JsonKeysFollowTheCsvHeaderOrder) {
  SweepGrid grid = parse_grid("lambda=1;us=1;k=1");
  SweepOptions options;
  options.horizon = 10;
  const std::string json = run_sweep(grid, options).to_table().to_json();
  // Key order inside a row object mirrors the CSV column order, and NaN
  // uncertainty columns become JSON null, not the string "nan".
  const auto cell_pos = json.find("\"cell\": 0");
  const auto lambda_pos = json.find("\"lambda\": 1");
  const auto verdict_pos = json.find("\"verdict\": ");
  const auto ctmc_pos = json.find("\"ctmc_mean_peers\": null");
  ASSERT_NE(cell_pos, std::string::npos);
  ASSERT_NE(lambda_pos, std::string::npos);
  ASSERT_NE(verdict_pos, std::string::npos);
  ASSERT_NE(ctmc_pos, std::string::npos);
  EXPECT_LT(cell_pos, lambda_pos);
  EXPECT_LT(lambda_pos, verdict_pos);
  EXPECT_LT(verdict_pos, ctmc_pos);
}

}  // namespace
}  // namespace p2p::engine
