// The mu = infinity watched chain (Section VIII-D, Fig. 3): structural
// transitions, the coin-flip Z distribution, zero drift of the top layer,
// and the diffusive (null-recurrent) growth signature.
#include "ctmc/muinf_chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/stats.hpp"

namespace p2p {
namespace {

TEST(MuInfChain, EmptyStateJumpsToOneOne) {
  MuInfChain chain(3, 1.0, 1);
  chain.step();
  EXPECT_EQ(chain.state().peers, 1);
  EXPECT_EQ(chain.state().pieces, 1);
}

TEST(MuInfChain, LowerLayersOnlyGrow) {
  // From (n, k) with k < K-1 every transition increases n by one and
  // keeps or increments k.
  MuInfChain chain(4, 1.0, 2);
  chain.set_state({5, 1});
  for (int i = 0; i < 200; ++i) {
    const MuInfState before = chain.state();
    chain.step();
    const MuInfState after = chain.state();
    if (before.pieces < 3) {
      ASSERT_EQ(after.peers, before.peers + 1);
      ASSERT_GE(after.pieces, before.pieces);
      ASSERT_LE(after.pieces, before.pieces + 1);
    }
    ASSERT_GE(after.peers, 1);
    ASSERT_GE(after.pieces, 1);
    ASSERT_LE(after.pieces, 3);
  }
}

TEST(MuInfChain, HeadsBeforeTailsIsNegativeBinomial) {
  // Z ~ NB(r = K-1, p = 1/2) on heads: E[Z] = K-1, Var[Z] = 2(K-1).
  Rng rng(5);
  const int r = 4;
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(static_cast<double>(
        MuInfChain::sample_heads_before_tails(rng, r)));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.05);
  EXPECT_NEAR(stats.variance(), 8.0, 0.15);
}

TEST(MuInfChain, TopLayerHasZeroDrift) {
  // Conditioned on staying in the top layer, E[delta n per arrival] = 0:
  // rate (K-1)lambda of +1 vs rate lambda with E[Z] = K-1 downward.
  const int k = 3;
  MuInfChain chain(k, 1.0, 6);
  const std::int64_t n0 = 100000;
  chain.set_state({n0, k - 1});
  double drift_sum = 0;
  std::int64_t events = 0;
  for (int i = 0; i < 200000; ++i) {
    const MuInfState before = chain.state();
    chain.step();
    drift_sum += static_cast<double>(chain.state().peers - before.peers);
    ++events;
  }
  // Mean per-event drift should be ~0 (population stays huge, so the
  // boundary is never hit). Std of one event's jump is O(1).
  EXPECT_NEAR(drift_sum / static_cast<double>(events), 0.0, 0.02);
}

TEST(MuInfChain, DiffusiveGrowthFromEmpty) {
  // Null recurrence: started empty, E[N_t] grows like sqrt(t), far slower
  // than the linear growth a transient chain would show. Compare N at two
  // horizons: ratio should look like sqrt(4) = 2, not 4.
  const int k = 3;
  OnlineStats n_short, n_long;
  for (std::uint64_t rep = 0; rep < 40; ++rep) {
    MuInfChain chain(k, 1.0, 100 + rep);
    chain.run_until(2500.0);
    n_short.add(static_cast<double>(chain.state().peers));
    chain.run_until(10000.0);
    n_long.add(static_cast<double>(chain.state().peers));
  }
  const double ratio = n_long.mean() / n_short.mean();
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 3.2);
}

TEST(MuInfChain, ReturnsToSmallStates) {
  // Recurrence: the chain keeps revisiting small populations.
  MuInfChain chain(3, 1.0, 7);
  chain.set_state({50, 2});
  int visits_small = 0;
  for (int i = 0; i < 500000; ++i) {
    chain.step();
    visits_small += chain.state().peers <= 5;
  }
  EXPECT_GT(visits_small, 0);
}

TEST(MuInfChain, SampledSeriesHasGrid) {
  MuInfChain chain(4, 2.0, 8);
  std::vector<double> times;
  chain.run_sampled(50.0, 5.0, [&](double t, const MuInfState&) {
    times.push_back(t);
  });
  ASSERT_EQ(times.size(), 10u);
  EXPECT_NEAR(times.front(), 5.0, 1e-9);
  EXPECT_NEAR(times.back(), 50.0, 1e-9);
}

TEST(MuInfChainDeath, RejectsBadStates) {
  MuInfChain chain(3, 1.0, 9);
  EXPECT_DEATH(chain.set_state({1, 0}), "");
  EXPECT_DEATH(chain.set_state({1, 3}), "");  // k must be <= K-1
  EXPECT_DEATH(chain.set_state({-1, 1}), "");
}

}  // namespace
}  // namespace p2p
