// Streaming frontier emission: run_frontier_stream must emit the exact
// bytes of refine_frontier(...).to_table() for any (threads, chunk)
// combination, in both formats — the archived frontier corpora and the
// CI determinism diffs depend on the bytes, not the parsed content.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

std::string stream_frontier(const SweepGrid& grid, const SweepOptions& options,
                            const RefineOptions& refine,
                            ReportFormat format) {
  std::string out;
  ReportWriter writer(&out, format, frontier_columns(options));
  run_frontier_stream(grid, options, refine, writer);
  writer.finish();
  return out;
}

TEST(FrontierStream, BytesEqualInMemoryEmitterAcrossThreadsAndChunks) {
  // The satellite determinism matrix: threads {1, 2, 8} x chunk
  // {1, auto}, streamed bytes vs the retained-points emitter, both
  // formats.
  SweepGrid grid =
      parse_grid("k=1;us=0.4,0.8,1.2;mu=1;gamma=1.25;lambda=0.5:9.5:4");
  SweepOptions base;
  base.horizon = 25;
  base.replicas = 3;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-2;

  const Table table = refine_frontier(grid, base, refine).to_table();
  const std::string want_csv = table.to_csv();
  const std::string want_json = table.to_json();
  ASSERT_GT(table.num_rows(), 0u);

  for (const int threads : {1, 2, 8}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {
      SweepOptions options = base;
      options.threads = threads;
      options.chunk = chunk;
      EXPECT_EQ(stream_frontier(grid, options, refine, ReportFormat::kCsv),
                want_csv)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(stream_frontier(grid, options, refine, ReportFormat::kJson),
                want_json)
          << "threads " << threads << " chunk " << chunk;
    }
  }
}

TEST(FrontierStream, ScenarioColumnsStreamIdentically) {
  // Mixed-arrival frontier (per-type rate columns, refinement along
  // mix): the wider schema must stream byte-identically too.
  SweepGrid grid = parse_grid("k=4;us=1;mu=1;gamma=inf;lambda=1.2,3;mix=0:1:5");
  SweepOptions base;
  base.horizon = 20;
  base.replicas = 2;
  base.scenario = parse_scenario("example2:3,1");
  RefineOptions refine;
  refine.axis = "mix";
  refine.tol = 1e-3;

  const std::string want =
      refine_frontier(grid, base, refine).to_table().to_csv();
  for (const int threads : {1, 8}) {
    SweepOptions options = base;
    options.threads = threads;
    EXPECT_EQ(stream_frontier(grid, options, refine, ReportFormat::kCsv),
              want)
        << "threads " << threads;
  }
}

TEST(FrontierStream, UnbracketedRowsStreamAndCount) {
  // lambda* = 5 Us: with coarse lambda {1, 4}, the us = 0.4 row
  // brackets (2 in (1, 4)) and the us = 1.2 row does not (6 outside).
  SweepGrid grid = parse_grid("k=1;us=0.4,1.2;mu=1;gamma=1.25;lambda=1,4");
  SweepOptions options;
  options.horizon = 15;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-2;

  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, frontier_columns(options));
  const FrontierSummary summary =
      run_frontier_stream(grid, options, refine, writer);
  writer.finish();
  EXPECT_EQ(summary.rows, 2u);
  EXPECT_EQ(summary.bracketed, 1u);
  EXPECT_EQ(out, refine_frontier(grid, options, refine).to_table().to_csv());
}

TEST(FrontierStreamDeath, WrongWriterColumnsAbort) {
  SweepGrid grid = parse_grid("k=1;us=1;lambda=1,9");
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, {"wrong"});
  EXPECT_DEATH(run_frontier_stream(grid, options, refine, writer),
               "frontier_columns");
  writer.finish();
}

TEST(FrontierStreamDeath, TheoryOnlyAborts) {
  SweepGrid grid = parse_grid("k=1;us=1;lambda=1,9");
  SweepOptions options;
  options.horizon = 5;
  options.theory_only = true;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, frontier_columns(options));
  EXPECT_DEATH(run_frontier_stream(grid, options, refine, writer),
               "theory_only");
  writer.finish();
}

TEST(FrontierStream, AbortingRunLeavesExistingFileUntouched) {
  // The abort-preserves-file corner from test_report.cpp, on the
  // frontier path: the tool constructs the file-backed writer before
  // validation runs, so a bad refine spec must abort before the lazy
  // open ever truncates a previously archived frontier.
  const std::string path =
      ::testing::TempDir() + "frontier_preserved.csv";
  write_text(path, "precious archived frontier\n");

  SweepGrid grid = parse_grid("k=1;us=1;lambda=5");  // 1 coarse value: aborts
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  EXPECT_DEATH(
      {
        ReportWriter writer(path, ReportFormat::kCsv,
                            frontier_columns(options));
        run_frontier_stream(grid, options, refine, writer);
        writer.finish();
      },
      ">= 2 coarse values");

  // The child aborted mid-validation; the parent's file is intact.
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, got), "precious archived frontier\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace p2p::engine
