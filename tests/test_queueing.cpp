// Queueing substrates: M/GI/infinity stationary behaviour, the Lemma 21
// maximal bound, compound Poisson sample paths and Kingman's bound
// (Proposition 20).
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/compound_poisson.hpp"
#include "queueing/mg_inf.hpp"

namespace p2p {
namespace {

TEST(MgInf, MMInfStationaryMeanIsLambdaOverMu) {
  // Exp(mu) service: E[N] = lambda / mu.
  const double lambda = 4.0, mu = 0.5;
  MgInfQueue queue(
      lambda, [mu](Rng& rng) { return rng.exponential(mu); }, 3);
  queue.run_until(200.0);  // warmup
  const TimeSeries series = queue.sample_until(5000.0, 1.0);
  EXPECT_NEAR(series.time_average(), lambda / mu,
              0.05 * (lambda / mu) + 0.5);
}

TEST(MgInf, DeterministicServiceSameMean) {
  // Insensitivity: E[N] depends on the service law only through its mean.
  const double lambda = 3.0, mean_service = 2.0;
  MgInfQueue queue(
      lambda, [mean_service](Rng&) { return mean_service; }, 5);
  queue.run_until(100.0);
  const TimeSeries series = queue.sample_until(4000.0, 1.0);
  EXPECT_NEAR(series.time_average(), lambda * mean_service, 0.4);
}

TEST(MgInf, ErlangPlusExpHasExpectedMean) {
  // K stages at rate r plus Exp(gamma): mean = K/r + 1/gamma.
  Rng rng(7);
  const auto sampler = MgInfQueue::erlang_plus_exp(4, 2.0, 0.5);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sampler(rng));
  EXPECT_NEAR(stats.mean(), 4.0 / 2.0 + 1.0 / 0.5, 0.05);
}

TEST(MgInf, ErlangPlusExpInfiniteGammaDropsDwell) {
  Rng rng(9);
  const auto sampler = MgInfQueue::erlang_plus_exp(
      3, 1.0, std::numeric_limits<double>::infinity());
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sampler(rng));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
}

TEST(MgInf, Lemma21BoundHoldsEmpirically) {
  // P{ M_t >= B + eps t for some t } <= e^{lambda(m+1)} 2^-B / (1-2^-eps).
  const double lambda = 1.0, mean_service = 1.0;
  const double budget = 30.0, eps = 1.0;
  const double bound =
      mginf_excursion_upper_bound(lambda, mean_service, budget, eps);
  ASSERT_LT(bound, 0.05);  // the test is only informative if small
  int violations = 0;
  const int replicas = 200;
  for (int r = 0; r < replicas; ++r) {
    MgInfQueue queue(
        lambda, [](Rng& rng) { return rng.exponential(1.0); },
        1000 + static_cast<std::uint64_t>(r));
    bool violated = false;
    for (double t = 1.0; t <= 200.0 && !violated; t += 1.0) {
      queue.run_until(t);
      violated = static_cast<double>(queue.in_system()) >= budget + eps * t;
    }
    violations += violated;
  }
  EXPECT_LE(violations / static_cast<double>(replicas), bound + 0.01);
}

TEST(CompoundPoisson, MeanGrowsAtRateAlphaM1) {
  // Jumps at rate 2 with mean batch 3 => E[C_t] = 6 t.
  CompoundPoissonProcess proc(
      2.0, [](Rng& rng) { return 3.0 * rng.uniform_pos() * 2.0; }, 11);
  proc.run_until(5000.0);
  EXPECT_NEAR(proc.value() / proc.now(), 6.0, 0.3);
}

TEST(CompoundPoisson, EventCountIsPoisson) {
  CompoundPoissonProcess proc(5.0, [](Rng&) { return 1.0; }, 13);
  proc.run_until(1000.0);
  EXPECT_NEAR(static_cast<double>(proc.events()), 5000.0,
              5.0 * std::sqrt(5000.0));
}

TEST(CompoundPoisson, KingmanBoundHoldsEmpirically) {
  // Unit batches at rate 1, eps = 2 (> alpha m1 = 1), B = 10:
  // bound = 1 - 1*1/(2*10*(2-1)) = 0.95.
  const double alpha = 1.0, budget = 10.0, eps = 2.0;
  const double bound = kingman_lower_bound(alpha, 1.0, 1.0, budget, eps);
  EXPECT_NEAR(bound, 0.95, 1e-12);
  int stayed_below = 0;
  const int replicas = 400;
  for (int r = 0; r < replicas; ++r) {
    CompoundPoissonProcess proc(alpha, [](Rng&) { return 1.0; },
                                2000 + static_cast<std::uint64_t>(r));
    bool ok = true;
    while (proc.now() < 500.0 && ok) {
      proc.step();
      ok = proc.value() < budget + eps * proc.now();
    }
    stayed_below += ok;
  }
  EXPECT_GE(stayed_below / static_cast<double>(replicas), bound - 0.03);
}

TEST(KingmanBound, TightensWithBudget) {
  const double b1 = kingman_lower_bound(1.0, 1.0, 2.0, 5.0, 2.0);
  const double b2 = kingman_lower_bound(1.0, 1.0, 2.0, 50.0, 2.0);
  EXPECT_GT(b2, b1);
  EXPECT_LE(b2, 1.0);
}

TEST(KingmanBoundDeath, RequiresEpsAboveDrift) {
  EXPECT_DEATH(kingman_lower_bound(2.0, 1.0, 1.0, 5.0, 1.5), "eps");
}

}  // namespace
}  // namespace p2p
