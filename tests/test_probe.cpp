// Stability probe: classification of synthetic trajectories and of
// simulated swarms with known Theorem 1 verdicts.
#include "analysis/stability_probe.hpp"

#include <gtest/gtest.h>

#include "core/stability.hpp"

namespace p2p {
namespace {

TimeSeries synthetic_line(double slope, double noise, std::uint64_t seed,
                          double horizon = 1000, double dt = 10) {
  Rng rng(seed);
  TimeSeries ts;
  for (double t = 0; t <= horizon; t += dt) {
    ts.push(t, 100.0 + slope * t + noise * (rng.uniform() - 0.5));
  }
  return ts;
}

TEST(Probe, ClassifiesGrowingSeriesUnstable) {
  ProbeOptions options;
  const ProbeResult result = probe_stability(
      [](std::uint64_t seed) { return synthetic_line(0.5, 5.0, seed); },
      /*lambda_total=*/1.0, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kUnstable);
  EXPECT_NEAR(result.normalized_slope, 0.5, 0.05);
}

TEST(Probe, ClassifiesFlatSeriesStable) {
  ProbeOptions options;
  const ProbeResult result = probe_stability(
      [](std::uint64_t seed) { return synthetic_line(0.0, 5.0, seed); },
      1.0, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kStable);
  EXPECT_NEAR(result.normalized_slope, 0.0, 0.05);
  EXPECT_NEAR(result.mean_tail_peers, 100.0, 5.0);
}

TEST(Probe, NormalizesByArrivalRate) {
  ProbeOptions options;
  const ProbeResult result = probe_stability(
      [](std::uint64_t seed) { return synthetic_line(2.0, 1.0, seed); },
      /*lambda_total=*/4.0, options);
  EXPECT_NEAR(result.normalized_slope, 0.5, 0.05);
}

TEST(Probe, StableSwarmClassifiedStable) {
  const auto params = SwarmParams::example1(1.0, 1.0, 1.0, 4.0);
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  ProbeOptions options;
  options.horizon = 1500;
  options.replicas = 3;
  const ProbeResult result = probe_swarm(params, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kStable) << result.to_string();
}

TEST(Probe, TransientSwarmClassifiedUnstable) {
  const auto params = SwarmParams::example1(4.0, 1.0, 1.0, 4.0);
  ASSERT_EQ(classify(params).verdict, Stability::kTransient);
  ProbeOptions options;
  options.horizon = 1500;
  options.replicas = 3;
  options.initial_one_club = 100;
  const ProbeResult result = probe_swarm(params, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kUnstable) << result.to_string();
}

TEST(Probe, FlashCrowdRecoveryForStableSystem) {
  // Stable system started with a large one-club drains it.
  const SwarmParams params(2, 3.0, 1.0, 4.0, {{PieceSet{}, 1.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  ProbeOptions options;
  options.horizon = 2500;
  options.replicas = 3;
  options.initial_one_club = 300;
  const ProbeResult result = probe_swarm(params, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kStable) << result.to_string();
  EXPECT_LT(result.mean_final_peers, 300.0);
}

TEST(Probe, SeriesStartsAtInjectedPopulation) {
  const SwarmParams params(2, 3.0, 1.0, 4.0, {{PieceSet{}, 1.0}});
  ProbeOptions options;
  options.initial_one_club = 250;
  const TimeSeries ts = swarm_peer_series(params, options, 1);
  ASSERT_GE(ts.size(), 2u);
  EXPECT_EQ(ts.v.front(), 250.0);
}

TEST(Probe, ConflictingReplicasAreInconclusive) {
  // Replicas that disagree wildly (slope +1 or -1 by seed parity) give a
  // mean near the threshold with a huge SEM: the probe must refuse to
  // classify rather than guess.
  ProbeOptions options;
  options.replicas = 6;
  const ProbeResult result = probe_stability(
      [](std::uint64_t seed) {
        const double slope = (seed % 2 == 0) ? 1.0 : -1.0;
        return synthetic_line(slope, 1.0, seed);
      },
      1.0, options);
  EXPECT_EQ(result.verdict, ProbeVerdict::kInconclusive);
}

TEST(Probe, TrackedPieceSelectsInjectedClub) {
  // With tracked_piece = 2, the injected one-club is F - {2}; every
  // injected peer then holds pieces 0 and 1.
  const SwarmParams params(3, 3.0, 1.0, 4.0, {{PieceSet{}, 1.0}});
  ProbeOptions options;
  options.initial_one_club = 50;
  options.tracked_piece = 2;
  const TimeSeries ts = swarm_peer_series(params, options, 1);
  EXPECT_EQ(ts.v.front(), 50.0);
}

TEST(Probe, ToStringMentionsVerdict) {
  ProbeResult result;
  result.verdict = ProbeVerdict::kUnstable;
  EXPECT_NE(result.to_string().find("unstable"), std::string::npos);
}

}  // namespace
}  // namespace p2p
