#include "engine/report.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace p2p::engine {
namespace {

TEST(FormatNumber, FiniteValues) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-1.5), "-1.5");
  EXPECT_EQ(format_number(0.1), "0.1");
}

TEST(FormatNumber, RoundTripsExactBitPatterns) {
  // Regression: "%.10g" truncated doubles to 10 significant digits, so
  // corpus CSVs silently lost precision (pi came back 4 ulps off). The
  // shortest-round-trip form must parse back to the identical bits.
  const double values[] = {
      0.1,
      1.0 / 3.0,
      3.141592653589793,        // needs all 16 digits
      2.718281828459045,
      1e-300,                   // subnormal-adjacent magnitudes
      6.02214076e23,
      std::nextafter(1.0, 2.0),  // 1 + 1 ulp
      std::nextafter(0.0, 1.0),  // smallest subnormal
      -0.0,
      123456789.123456789,
  };
  for (const double v : values) {
    const std::string s = format_number(v);
    char* end = nullptr;
    const double parsed = std::strtod(s.c_str(), &end);
    ASSERT_EQ(end, s.c_str() + s.size()) << s;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(v))
        << "'" << s << "' does not round-trip";
  }
}

TEST(FormatNumber, NonFiniteValues) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::nan("")), "nan");
}

TEST(Table, CsvRoundTrip) {
  Table table({"a", "b", "verdict"});
  table.add_row({"1", "2.5", "stable"});
  table.add_row({"2", "inf", "transient"});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.to_csv(),
            "a,b,verdict\n"
            "1,2.5,stable\n"
            "2,inf,transient\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table table({"name"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  EXPECT_EQ(table.to_csv(),
            "name\n"
            "\"a,b\"\n"
            "\"say \"\"hi\"\"\"\n");
}

TEST(Table, JsonNumbersUnquotedTextQuotedNonFiniteNull) {
  Table table({"x", "verdict", "extra"});
  table.add_row({"1.5", "stable", "nan"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"x\": 1.5, \"verdict\": \"stable\", \"extra\": null}\n"
            "]\n");
}

TEST(Table, JsonSeparatesRowsWithCommas) {
  Table table({"i"});
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"i\": 1},\n"
            "  {\"i\": 2}\n"
            "]\n");
}

TEST(Table, JsonQuotesNonJsonNumberSpellings) {
  // strtod would accept all of these, but JSON parsers reject them
  // unquoted; the emitter must quote anything off the JSON grammar.
  Table table({"a", "b", "c", "d"});
  table.add_row({"+5", "0x1F", " 12", "01"});
  table.add_row({"-0.5", "1e-3", "2E+4", "0"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"a\": \"+5\", \"b\": \"0x1F\", \"c\": \" 12\", "
            "\"d\": \"01\"},\n"
            "  {\"a\": -0.5, \"b\": 1e-3, \"c\": 2E+4, \"d\": 0}\n"
            "]\n");
}

TEST(TableDeath, RowArityMismatchAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "arity");
}

TEST(TableDeath, EmptyColumnListAborts) {
  EXPECT_DEATH(Table({}), "at least one column");
}

}  // namespace
}  // namespace p2p::engine
