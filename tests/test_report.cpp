#include "engine/report.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace p2p::engine {
namespace {

TEST(FormatNumber, FiniteValues) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-1.5), "-1.5");
  EXPECT_EQ(format_number(0.1), "0.1");
}

TEST(FormatNumber, RoundTripsExactBitPatterns) {
  // Regression: "%.10g" truncated doubles to 10 significant digits, so
  // corpus CSVs silently lost precision (pi came back 4 ulps off). The
  // shortest-round-trip form must parse back to the identical bits.
  const double values[] = {
      0.1,
      1.0 / 3.0,
      3.141592653589793,        // needs all 16 digits
      2.718281828459045,
      1e-300,                   // subnormal-adjacent magnitudes
      6.02214076e23,
      std::nextafter(1.0, 2.0),  // 1 + 1 ulp
      std::nextafter(0.0, 1.0),  // smallest subnormal
      -0.0,
      123456789.123456789,
  };
  for (const double v : values) {
    const std::string s = format_number(v);
    char* end = nullptr;
    const double parsed = std::strtod(s.c_str(), &end);
    ASSERT_EQ(end, s.c_str() + s.size()) << s;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(v))
        << "'" << s << "' does not round-trip";
  }
}

TEST(FormatNumber, NonFiniteValues) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::nan("")), "nan");
}

TEST(Table, CsvRoundTrip) {
  Table table({"a", "b", "verdict"});
  table.add_row({"1", "2.5", "stable"});
  table.add_row({"2", "inf", "transient"});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.to_csv(),
            "a,b,verdict\n"
            "1,2.5,stable\n"
            "2,inf,transient\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table table({"name"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  EXPECT_EQ(table.to_csv(),
            "name\n"
            "\"a,b\"\n"
            "\"say \"\"hi\"\"\"\n");
}

TEST(Table, JsonNumbersUnquotedTextQuotedNonFiniteNull) {
  Table table({"x", "verdict", "extra"});
  table.add_row({"1.5", "stable", "nan"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"x\": 1.5, \"verdict\": \"stable\", \"extra\": null}\n"
            "]\n");
}

TEST(Table, JsonSeparatesRowsWithCommas) {
  Table table({"i"});
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"i\": 1},\n"
            "  {\"i\": 2}\n"
            "]\n");
}

TEST(Table, JsonQuotesNonJsonNumberSpellings) {
  // strtod would accept all of these, but JSON parsers reject them
  // unquoted; the emitter must quote anything off the JSON grammar.
  Table table({"a", "b", "c", "d"});
  table.add_row({"+5", "0x1F", " 12", "01"});
  table.add_row({"-0.5", "1e-3", "2E+4", "0"});
  EXPECT_EQ(table.to_json(),
            "[\n"
            "  {\"a\": \"+5\", \"b\": \"0x1F\", \"c\": \" 12\", "
            "\"d\": \"01\"},\n"
            "  {\"a\": -0.5, \"b\": 1e-3, \"c\": 2E+4, \"d\": 0}\n"
            "]\n");
}

TEST(TableDeath, RowArityMismatchAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "arity");
}

TEST(TableDeath, EmptyColumnListAborts) {
  EXPECT_DEATH(Table({}), "at least one column");
}

// --- ReportWriter: the streaming emitter must be byte-for-byte the old
// in-memory one. Archived corpora and the CI determinism diffs depend on
// the bytes, not just the parsed content.

/// Streams `rows` through a string-backed writer and also renders them
/// through Table, asserting the bytes agree; returns the bytes.
std::string stream_and_check(const std::vector<std::string>& columns,
                             const std::vector<std::vector<std::string>>& rows,
                             ReportFormat format) {
  std::string streamed;
  ReportWriter writer(&streamed, format, columns);
  Table table(columns);
  for (const auto& row : rows) {
    writer.write_row(row);
    table.add_row(row);
  }
  writer.finish();
  EXPECT_EQ(streamed,
            format == ReportFormat::kCsv ? table.to_csv() : table.to_json());
  return streamed;
}

TEST(ReportWriter, CsvBytesEqualTable) {
  const std::string csv = stream_and_check(
      {"a", "b", "verdict"},
      {{"1", "2.5", "stable"}, {"2", "inf", "transient"}},
      ReportFormat::kCsv);
  EXPECT_EQ(csv,
            "a,b,verdict\n"
            "1,2.5,stable\n"
            "2,inf,transient\n");
}

TEST(ReportWriter, CsvQuotingMatchesTable) {
  stream_and_check({"name"}, {{"a,b"}, {"say \"hi\""}, {"line\nbreak"}},
                   ReportFormat::kCsv);
}

TEST(ReportWriter, JsonBytesEqualTable) {
  // The row terminator depends on whether a successor exists — the
  // streaming writer cannot know until finish(), so this pins the
  // hold-back logic against Table's renderer.
  const std::string json = stream_and_check(
      {"i", "x"}, {{"1", "nan"}, {"2", "0.5"}, {"3", "text"}},
      ReportFormat::kJson);
  EXPECT_EQ(json,
            "[\n"
            "  {\"i\": 1, \"x\": null},\n"
            "  {\"i\": 2, \"x\": 0.5},\n"
            "  {\"i\": 3, \"x\": \"text\"}\n"
            "]\n");
}

TEST(ReportWriter, EmptyTableMatchesInBothFormats) {
  EXPECT_EQ(stream_and_check({"a"}, {}, ReportFormat::kCsv), "a\n");
  EXPECT_EQ(stream_and_check({"a"}, {}, ReportFormat::kJson), "[\n]\n");
}

TEST(ReportWriter, SingleRowJsonHasNoTrailingComma) {
  EXPECT_EQ(stream_and_check({"i"}, {{"7"}}, ReportFormat::kJson),
            "[\n"
            "  {\"i\": 7}\n"
            "]\n");
}

TEST(ReportWriter, ManyRowsCrossTheFlushBoundaryToAFile) {
  // Push well past the 64 KiB stdio flush threshold so the buffered file
  // path (partial flushes + final fclose) is exercised, then compare the
  // on-disk bytes against the in-memory render.
  const std::string path = ::testing::TempDir() + "report_writer_flush.csv";
  const std::vector<std::string> columns = {"i", "payload"};
  Table table(columns);
  {
    ReportWriter writer(path, ReportFormat::kCsv, columns);
    for (int i = 0; i < 4000; ++i) {
      const std::vector<std::string> row = {std::to_string(i),
                                            std::string(40, 'x')};
      writer.write_row(row);
      table.add_row(row);
    }
    writer.finish();
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string bytes;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, got);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_GT(bytes.size(), std::size_t{1} << 16);
  EXPECT_EQ(bytes, table.to_csv());
}

TEST(ReportWriter, RowsWrittenCountsRows) {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, {"a"});
  EXPECT_EQ(writer.rows_written(), 0u);
  writer.write_row({"1"});
  writer.write_row({"2"});
  EXPECT_EQ(writer.rows_written(), 2u);
  writer.finish();
}

TEST(ReportWriterDeath, ArityMismatchAborts) {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, {"a", "b"});
  EXPECT_DEATH(writer.write_row({"only-one"}), "arity");
  writer.finish();
}

TEST(ReportWriterDeath, WriteAfterFinishAborts) {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, {"a"});
  writer.finish();
  EXPECT_DEATH(writer.write_row({"1"}), "finish");
}

TEST(ReportWriterDeath, UnopenablePathAbortsAtFirstFlush) {
  // The file opens lazily (so validation aborts upstream never truncate
  // a good file); a bad path therefore surfaces at the first flush —
  // here, finish() — not at construction.
  EXPECT_DEATH(
      {
        ReportWriter writer("/nonexistent-dir/report.csv",
                            ReportFormat::kCsv, {"a"});
        writer.finish();
      },
      "cannot open");
}

TEST(ReportWriter, AbortingProducerLeavesExistingFileUntouched) {
  // Regression: grid mode constructs the writer before the sweep runs;
  // if the sweep aborts in validation, a previously archived file named
  // by --out must survive. The old write-after-success path guaranteed
  // this; lazy opening preserves it.
  const std::string path = ::testing::TempDir() + "report_preserved.csv";
  write_text(path, "precious archived bytes\n");
  {
    ReportWriter writer(path, ReportFormat::kCsv, {"a"});
    // Writer destroyed without rows mid-"abort"… except a destructor
    // auto-finish would still flush the header. Simulate the abort path
    // precisely: P2P_ASSERT calls std::abort, which runs no destructors,
    // so the writer is simply never finished in-process. Here we can
    // only approximate by checking the file before finish().
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char buffer[64] = {};
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    std::fclose(file);
    EXPECT_EQ(std::string(buffer, got), "precious archived bytes\n");
    writer.finish();
  }
  std::remove(path.c_str());
}

// --- RowRenderer: the worker-side serializer behind the streaming
// pipeline. Arenas it fills are handed to write_rendered verbatim, so
// its bytes must equal what write_row would have produced cell for
// cell — in both formats, for every cell kind.

/// Renders `rows` into one arena (numbers through number(), everything
/// else through text()), hands the arena to write_rendered, and asserts
/// the writer output equals the same rows pushed through write_row.
void render_and_check(const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows,
                      ReportFormat format) {
  std::string via_rows;
  ReportWriter row_writer(&via_rows, format, columns);
  for (const auto& cells : rows) row_writer.write_row(cells);
  row_writer.finish();

  RowRenderer renderer(format, columns);
  std::string arena;
  for (const auto& cells : rows) {
    RowRenderer::Row row(renderer, arena);
    for (const std::string& cell : cells) row.text(cell);
    row.end();
  }
  std::string via_arena;
  ReportWriter arena_writer(&via_arena, format, columns);
  arena_writer.write_rendered(arena, rows.size());
  arena_writer.finish();
  EXPECT_EQ(via_arena, via_rows);
}

TEST(RowRenderer, BytesEqualWriteRowInBothFormats) {
  const std::vector<std::string> columns = {"i", "x", "note"};
  const std::vector<std::vector<std::string>> rows = {
      {"1", "2.5", "stable"},
      {"2", "inf", "has,comma"},
      {"3", "nan", "say \"hi\""},
      {"4", "-inf", ""},
      {"5", "0.1", "line\nbreak"},
  };
  render_and_check(columns, rows, ReportFormat::kCsv);
  render_and_check(columns, rows, ReportFormat::kJson);
}

TEST(RowRenderer, NumberPathsAgreeWithText) {
  // number(v), preformatted_number(format_number(v)) and
  // text(format_number(v)) must be three spellings of the same bytes —
  // including the JSON null mapping for non-finite values.
  const double values[] = {0.0, -1.5, 1.0 / 3.0, 1e-300,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::nan("")};
  for (const ReportFormat format :
       {ReportFormat::kCsv, ReportFormat::kJson}) {
    RowRenderer renderer(format, {"v"});
    for (const double v : values) {
      std::string a, b, c;
      RowRenderer::Row ra(renderer, a);
      ra.number(v);
      ra.end();
      RowRenderer::Row rb(renderer, b);
      rb.preformatted_number(format_number(v));
      rb.end();
      RowRenderer::Row rc(renderer, c);
      rc.text(format_number(v));
      rc.end();
      EXPECT_EQ(a, b) << format_number(v);
      EXPECT_EQ(a, c) << format_number(v);
    }
  }
}

TEST(RowRenderer, CellsVerbatimSplicesCachedSpans) {
  // Cache the byte span of columns [1, 3) once, then build a row from
  // index + cached middle + tail; the row must equal one rendered cell
  // by cell. This is the constant-axis-run fast path in miniature.
  for (const ReportFormat format :
       {ReportFormat::kCsv, ReportFormat::kJson}) {
    RowRenderer renderer(format, {"i", "a", "b", "t"});
    std::string whole;
    RowRenderer::Row all(renderer, whole);
    all.number(7);
    all.number(1.5);
    all.number(2.5);
    all.number(9);
    all.end();

    std::string scratch;
    RowRenderer::Row probe(renderer, scratch);
    probe.number(7);
    const std::size_t mark = scratch.size();
    probe.number(1.5);
    probe.number(2.5);
    const std::string cached = scratch.substr(mark);
    probe.number(9);
    probe.end();

    std::string spliced;
    RowRenderer::Row row(renderer, spliced);
    row.number(7);
    row.cells_verbatim(cached, 2);
    row.number(9);
    row.end();
    EXPECT_EQ(spliced, whole);
  }
}

TEST(RowRendererDeath, WrongArityAborts) {
  RowRenderer renderer(ReportFormat::kCsv, {"a", "b"});
  EXPECT_DEATH(
      {
        std::string arena;
        RowRenderer::Row row(renderer, arena);
        row.number(1);
        row.end();  // one cell short
      },
      "arity");
  EXPECT_DEATH(
      {
        std::string arena;
        RowRenderer::Row row(renderer, arena);
        row.number(1);
        row.number(2);
        row.number(3);  // one cell over
      },
      "arity");
  EXPECT_DEATH(
      {
        std::string arena;
        RowRenderer::Row row(renderer, arena);
        row.cells_verbatim("x,y,z", 3);  // 3 cells into a 2-column row
      },
      "arity");
}

}  // namespace
}  // namespace p2p::engine
