// Generator Q (Eq. (1) and Section III): rates, conservation and edge
// cases, checked against hand computations on small states.
#include "core/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/model.hpp"
#include "rand/rng.hpp"

namespace p2p {
namespace {

TypeCountState make_state(int k,
                          std::map<std::uint64_t, std::int64_t> counts) {
  TypeCountState state(k);
  for (const auto& [mask, count] : counts) {
    state.add(PieceSet{mask}, count);
  }
  return state;
}

TEST(Generator, EmptyStateOnlyArrivals) {
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 3.0}});
  const TypeCountState state(2);
  int arrivals = 0, others = 0;
  for_each_transition(params, state, [&](const Transition& t) {
    if (t.kind == TransitionKind::kArrival) {
      ++arrivals;
      EXPECT_NEAR(t.rate, 3.0, 1e-12);
    } else {
      ++others;
    }
  });
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(others, 0);
}

TEST(Generator, SeedUploadRateSplitsAcrossNeededPieces) {
  // One empty peer, K = 2, Us = 1, no other peers: each piece is uploaded
  // at rate Us / 2 (Eq. (1): Us / (K - |C|)).
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 0.5}});
  const auto state = make_state(2, {{0b00, 1}});
  std::map<std::uint64_t, double> rates;
  for_each_transition(params, state, [&](const Transition& t) {
    if (t.kind == TransitionKind::kDownload) rates[t.to.mask()] = t.rate;
  });
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0b01], 0.5, 1e-12);
  EXPECT_NEAR(rates[0b10], 0.5, 1e-12);
}

TEST(Generator, PeerUploadRateMatchesEquationOne) {
  // State: x_{1} = 2, x_{} = 3, K = 2, mu = 1, Us = 0. n = 5.
  // Gamma_{{}, {1}} = (3/5) * mu * x_{1} / |{1} - {}| = (3/5) * 2 = 1.2.
  const SwarmParams params(2, 0.0, 1.0, 2.0, {{PieceSet{}, 0.5}});
  const auto state = make_state(2, {{0b00, 3}, {0b01, 2}});
  EXPECT_NEAR(download_rate(params, state, PieceSet{}, 0), 1.2, 1e-12);
  // No holder of piece 1 => rate 0.
  EXPECT_NEAR(download_rate(params, state, PieceSet{}, 1), 0.0, 1e-12);
  // Type {1} peers can get piece 1 from nobody.
  EXPECT_NEAR(download_rate(params, state, PieceSet{0b01}, 1), 0.0, 1e-12);
}

TEST(Generator, SetDifferenceSizeDilutesUploads) {
  // Uploader type {0,1}, target type {}: each of the 2 useful pieces at
  // half the contact rate.
  const SwarmParams params(2, 0.0, 1.0, 2.0, {{PieceSet{}, 0.5}});
  const auto state = make_state(2, {{0b00, 1}, {0b11, 1}});
  // n = 2; Gamma_{{},{0}} = (1/2) * mu * x_{01}/|{0,1}| = 0.5 * 1/2 = 0.25.
  EXPECT_NEAR(download_rate(params, state, PieceSet{}, 0), 0.25, 1e-12);
  EXPECT_NEAR(download_rate(params, state, PieceSet{}, 1), 0.25, 1e-12);
}

TEST(Generator, SeedDepartureRateIsGammaTimesSeeds) {
  const SwarmParams params(2, 0.0, 1.0, 3.0, {{PieceSet{}, 0.5}});
  const auto state = make_state(2, {{0b11, 4}});
  double depart_rate = -1;
  for_each_transition(params, state, [&](const Transition& t) {
    if (t.kind == TransitionKind::kDeparture) depart_rate = t.rate;
  });
  EXPECT_NEAR(depart_rate, 12.0, 1e-12);
}

TEST(Generator, ImmediateDepartureTurnsCompletionIntoDeparture) {
  const SwarmParams params(2, 1.0, 1.0, kInfiniteRate, {{PieceSet{}, 0.5}});
  const auto state = make_state(2, {{0b01, 2}});
  bool saw_departure = false;
  for_each_transition(params, state, [&](const Transition& t) {
    EXPECT_NE(t.to.mask(), 0b11u) << "no transition may create a seed";
    if (t.kind == TransitionKind::kDeparture) {
      saw_departure = true;
      EXPECT_EQ(t.from.mask(), 0b01u);
      // Gamma_{{0}, F} = (2/2)(Us/1 + 0) = 1.
      EXPECT_NEAR(t.rate, 1.0, 1e-12);
    }
  });
  EXPECT_TRUE(saw_departure);
}

TEST(Generator, RatesAreNonnegativeAndFinite) {
  const SwarmParams params(3, 0.7, 1.3, 2.5,
                           {{PieceSet{}, 1.0}, {PieceSet::single(1), 0.4}});
  const auto state =
      make_state(3, {{0b000, 5}, {0b011, 2}, {0b101, 1}, {0b111, 3}});
  for_each_transition(params, state, [&](const Transition& t) {
    EXPECT_GT(t.rate, 0.0);
    EXPECT_TRUE(std::isfinite(t.rate));
  });
}

TEST(Generator, TotalDownloadRateBoundedByContactCapacity) {
  // Aggregate download rate can never exceed Us + n mu (each clock tick
  // moves at most one piece).
  const SwarmParams params(3, 0.7, 1.3, 2.5, {{PieceSet{}, 1.0}});
  const auto state =
      make_state(3, {{0b000, 5}, {0b011, 2}, {0b101, 1}, {0b111, 3}});
  double download_total = 0;
  for_each_transition(params, state, [&](const Transition& t) {
    if (t.kind == TransitionKind::kDownload) download_total += t.rate;
  });
  const double capacity =
      params.seed_rate() +
      static_cast<double>(state.total_peers()) * params.contact_rate();
  EXPECT_LE(download_total, capacity + 1e-9);
}

TEST(Generator, ApplyTransitionRoundTrips) {
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 0.5}});
  auto state = make_state(2, {{0b00, 2}, {0b01, 1}});
  const auto original = state;
  apply_transition(
      {TransitionKind::kDownload, PieceSet{0b00}, PieceSet{0b01}, 1.0},
      state);
  EXPECT_EQ(state.count(PieceSet{0b00}), 1);
  EXPECT_EQ(state.count(PieceSet{0b01}), 2);
  EXPECT_EQ(state.total_peers(), original.total_peers());
  apply_transition(
      {TransitionKind::kDownload, PieceSet{0b01}, PieceSet{0b00}, 1.0},
      state);
  EXPECT_EQ(state, original);
}

TEST(TypeCountStateTest, HoldersCountsAcrossTypes) {
  const auto state = make_state(3, {{0b001, 2}, {0b011, 1}, {0b111, 4}});
  EXPECT_EQ(state.holders_of(0), 7);
  EXPECT_EQ(state.holders_of(1), 5);
  EXPECT_EQ(state.holders_of(2), 4);
  EXPECT_EQ(state.total_peers(), 7);
  EXPECT_EQ(state.seeds(), 4);
}

class GeneratorRateSumTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorRateSumTest, TotalRateMatchesManualSum) {
  const int k = GetParam();
  const SwarmParams params(k, 0.5, 1.0, 2.0, {{PieceSet{}, 1.0}});
  Rng rng(static_cast<std::uint64_t>(k) * 101);
  TypeCountState state(k);
  for (int i = 0; i < 20; ++i) {
    state.add(PieceSet{rng.uniform_int(std::uint64_t{1} << k)}, 1);
  }
  double sum = 0;
  for_each_transition(params, state,
                      [&](const Transition& t) { sum += t.rate; });
  EXPECT_NEAR(sum, total_transition_rate(params, state), 1e-12);
  EXPECT_GT(sum, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, GeneratorRateSumTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace p2p
