// WeightedIndex (rand/weighted_index.hpp): the O(log n) Fenwick sampler
// behind the type-count simulator. Pins
//   * exactness of find() against brute-force prefix sums,
//   * distributional agreement with Rng::discrete on fixed weight vectors
//     (chi-square and first-moment checks),
//   * consistency after incremental updates (the simulator's +-1 pattern),
//   * a golden sample stream so the draw sequence itself is frozen.
#include "rand/weighted_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "rand/rng.hpp"

namespace p2p {
namespace {

TEST(WeightedIndex, FindMatchesBruteForcePrefixSums) {
  const std::vector<std::int64_t> weights = {3, 0, 5, 1, 0, 7};
  WeightedIndex<std::int64_t> tree{
      std::span<const std::int64_t>(weights)};
  ASSERT_EQ(tree.total(), 16);
  for (std::int64_t r = 0; r < tree.total(); ++r) {
    // Brute force: first index whose cumulative weight exceeds r.
    std::int64_t cum = 0;
    std::size_t expect = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      cum += weights[i];
      if (r < cum) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(tree.find(r), expect) << "r=" << r;
  }
}

TEST(WeightedIndex, UpdateAndSetKeepQueriesConsistent) {
  WeightedIndex<std::int64_t> tree(8);
  EXPECT_EQ(tree.total(), 0);
  tree.update(2, 4);
  tree.update(7, 1);
  tree.set(2, 2);
  tree.update(0, 3);
  tree.update(7, -1);
  EXPECT_EQ(tree.weight(0), 3);
  EXPECT_EQ(tree.weight(2), 2);
  EXPECT_EQ(tree.weight(7), 0);
  EXPECT_EQ(tree.total(), 5);
  EXPECT_EQ(tree.find(0), 0u);
  EXPECT_EQ(tree.find(2), 0u);
  EXPECT_EQ(tree.find(3), 2u);
  EXPECT_EQ(tree.find(4), 2u);
}

TEST(WeightedIndexDeathTest, RejectsNegativeWeightAndEmptySample) {
  WeightedIndex<std::int64_t> tree(4);
  EXPECT_DEATH(tree.update(0, -1), "nonnegative");
  EXPECT_DEATH(
      {
        Rng rng(1);
        tree.sample(rng);
      },
      "positive total");
}

// Chi-square goodness of fit of sample() against the exact cell
// probabilities. 5 cells with 4 free parameters: the 99.9% chi-square
// quantile at 4 dof is 18.47; a correct sampler fails with p < 0.001.
TEST(WeightedIndex, SampleMatchesWeightsChiSquare) {
  const std::vector<std::int64_t> weights = {1, 10, 3, 0, 6};
  WeightedIndex<std::int64_t> tree{
      std::span<const std::int64_t>(weights)};
  Rng rng(20260808);
  const int draws = 200000;
  std::vector<int> count(weights.size(), 0);
  for (int i = 0; i < draws; ++i) ++count[tree.sample(rng)];
  EXPECT_EQ(count[3], 0) << "zero-weight slot was sampled";
  double chi2 = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0) continue;
    const double expect = static_cast<double>(draws) *
                          static_cast<double>(weights[i]) /
                          static_cast<double>(tree.total());
    const double diff = static_cast<double>(count[i]) - expect;
    chi2 += diff * diff / expect;
  }
  EXPECT_LT(chi2, 18.47);
}

// The double instantiation must agree in distribution with Rng::discrete
// (the linear-walk reference sampler) on the same weight vector: compare
// per-cell frequencies between the two samplers.
TEST(WeightedIndex, DoubleSamplerAgreesWithRngDiscrete) {
  const std::vector<double> weights = {0.25, 2.5, 0.0, 1.0, 0.125, 4.0};
  WeightedIndex<double> tree{std::span<const double>(weights)};
  Rng tree_rng(7);
  Rng discrete_rng(1234);
  const int draws = 200000;
  std::vector<int> tree_count(weights.size(), 0);
  std::vector<int> discrete_count(weights.size(), 0);
  for (int i = 0; i < draws; ++i) {
    ++tree_count[tree.sample(tree_rng)];
    ++discrete_count[discrete_rng.discrete(weights)];
  }
  EXPECT_EQ(tree_count[2], 0);
  EXPECT_EQ(discrete_count[2], 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p_tree =
        static_cast<double>(tree_count[i]) / static_cast<double>(draws);
    const double p_discrete =
        static_cast<double>(discrete_count[i]) / static_cast<double>(draws);
    // Two independent binomial proportions at n = 2e5: 5 sigma is under
    // 0.006 for every cell here.
    EXPECT_NEAR(p_tree, p_discrete, 0.006) << "slot " << i;
  }
  // First moment: mean sampled index matches the exact expectation.
  double mean = 0;
  double exact = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    mean += static_cast<double>(i) * tree_count[i] / draws;
    exact += static_cast<double>(i) * weights[i] / tree.total();
  }
  EXPECT_NEAR(mean, exact, 0.02);
}

// Incremental-update consistency: after a burst of +-delta updates the
// tree must sample exactly like a fresh tree built from the final weights.
// Exercised with integral weights, where equality is exact (both trees see
// the same uniform_int draws).
TEST(WeightedIndex, IncrementalUpdatesMatchRebuiltTree) {
  WeightedIndex<std::int64_t> incremental(16);
  std::vector<std::int64_t> reference(16, 0);
  Rng update_rng(99);
  for (int round = 0; round < 500; ++round) {
    const auto slot = static_cast<std::size_t>(update_rng.uniform_int(16));
    const std::int64_t delta =
        update_rng.uniform_int(-reference[slot], 5);
    incremental.update(slot, delta);
    reference[slot] += delta;
  }
  WeightedIndex<std::int64_t> rebuilt{
      std::span<const std::int64_t>(reference)};
  ASSERT_EQ(incremental.total(), rebuilt.total());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(incremental.weight(i), reference[i]);
  }
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(incremental.sample(a), rebuilt.sample(b));
  }
}

// The O(n) bulk build (span constructor) must produce exactly the tree
// the incremental path builds: same totals, same weights, and — the part
// that sees the internal Fenwick nodes — identical find() over every
// cumulative position, across sizes on both sides of the power-of-two
// rounding (round_ = bit_ceil(size)).
TEST(WeightedIndex, BulkBuildEqualsIncrementalBuild) {
  Rng weight_rng(0xB01DFACE);
  for (const std::size_t size : {1u, 2u, 3u, 5u, 7u, 8u, 9u, 13u, 16u, 33u,
                                 100u}) {
    std::vector<std::int64_t> weights(size);
    for (auto& w : weights) w = static_cast<std::int64_t>(
        weight_rng.uniform_int(6));  // zeros included
    if (weights[0] == 0) weights[0] = 2;  // keep total positive
    const WeightedIndex<std::int64_t> bulk{
        std::span<const std::int64_t>(weights)};
    WeightedIndex<std::int64_t> incremental(size);
    for (std::size_t i = 0; i < size; ++i) {
      incremental.update(i, weights[i]);
    }
    ASSERT_EQ(bulk.total(), incremental.total()) << "size " << size;
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_EQ(bulk.weight(i), incremental.weight(i))
          << "size " << size << " slot " << i;
    }
    for (std::int64_t r = 0; r < bulk.total(); ++r) {
      ASSERT_EQ(bulk.find(r), incremental.find(r))
          << "size " << size << " r=" << r;
    }
  }
}

TEST(WeightedIndexDeathTest, BulkBuildRejectsNegativeWeights) {
  const std::vector<std::int64_t> weights = {1, -2, 3};
  EXPECT_DEATH(WeightedIndex<std::int64_t>{
                   std::span<const std::int64_t>(weights)},
               "nonnegative");
}

// Golden stream: the integral sampler's draw sequence is part of the
// simulator's determinism contract (report bytes depend on it), so freeze
// the first draws for a fixed seed and weight vector.
TEST(WeightedIndex, GoldenSampleStream) {
  const std::vector<std::int64_t> weights = {2, 1, 0, 4, 3};
  WeightedIndex<std::int64_t> tree{
      std::span<const std::int64_t>(weights)};
  Rng rng(0xDECAFBAD);
  std::vector<std::size_t> stream;
  for (int i = 0; i < 16; ++i) stream.push_back(tree.sample(rng));
  // Independently derived: uniform_int(10) over the prefix table
  // [0,2)->0 [2,3)->1 [3,7)->3 [7,10)->4 for xoshiro256** seeded via
  // splitmix64(0xDECAFBAD).
  std::vector<std::size_t> expect;
  Rng check(0xDECAFBAD);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t r = check.uniform_int(10);
    std::size_t idx = 0;
    std::uint64_t cum = 0;
    for (std::size_t j = 0; j < weights.size(); ++j) {
      cum += static_cast<std::uint64_t>(weights[j]);
      if (r < cum) {
        idx = j;
        break;
      }
    }
    expect.push_back(idx);
  }
  EXPECT_EQ(stream, expect);
}

}  // namespace
}  // namespace p2p
