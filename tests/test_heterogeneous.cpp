// Heterogeneous upload rates (Section IX future work): rate-class
// bookkeeping, distributional equivalence of the degenerate case, and the
// intuitive capacity effects.
#include <gtest/gtest.h>

#include <cmath>

#include "core/stability.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

TEST(Heterogeneous, DegenerateClassEqualsHomogeneousLaw) {
  // One class with multiplier 1 must reproduce the homogeneous model
  // (same distribution; compare stationary means across independent
  // seeds).
  const SwarmParams params(2, 2.0, 1.0, 3.0, {{PieceSet{}, 1.0}});
  OnlineStats homo, hetero;

  SwarmSimOptions homo_options;
  homo_options.rng_seed = 1;
  SwarmSim a(params, homo_options);
  a.run_until(300.0);
  a.run_sampled(5000.0, 2.0,
                [&](double) { homo.add(static_cast<double>(a.total_peers())); });

  SwarmSimOptions hetero_options;
  hetero_options.rng_seed = 2;
  hetero_options.rate_classes = {{5.0, 1.0}};
  SwarmSim b(params, std::make_unique<RandomUsefulPolicy>(), hetero_options);
  b.run_until(300.0);
  b.run_sampled(5000.0, 2.0, [&](double) {
    hetero.add(static_cast<double>(b.total_peers()));
  });

  EXPECT_NEAR(homo.mean(), hetero.mean(), 0.15 * std::max(1.0, homo.mean()));
}

TEST(Heterogeneous, UniformSpeedupScalesLikeHigherMu) {
  // All peers at multiplier 2 with contact rate mu behaves like contact
  // rate 2 mu (same chain up to relabeling). Compare against the
  // homogeneous simulator run at 2 mu.
  const SwarmParams base(2, 2.0, 1.0, 3.0, {{PieceSet{}, 1.0}});
  const SwarmParams doubled(2, 2.0, 2.0, 3.0, {{PieceSet{}, 1.0}});

  SwarmSimOptions options;
  options.rng_seed = 3;
  options.rate_classes = {{1.0, 2.0}};
  SwarmSim fast_classes(base, std::make_unique<RandomUsefulPolicy>(),
                        options);
  fast_classes.run_until(300.0);
  OnlineStats a;
  fast_classes.run_sampled(5000.0, 2.0, [&](double) {
    a.add(static_cast<double>(fast_classes.total_peers()));
  });

  SwarmSim fast_mu(doubled, SwarmSimOptions{.rng_seed = 4});
  fast_mu.run_until(300.0);
  OnlineStats b;
  fast_mu.run_sampled(5000.0, 2.0, [&](double) {
    b.add(static_cast<double>(fast_mu.total_peers()));
  });

  EXPECT_NEAR(a.mean(), b.mean(), 0.15 * std::max(1.0, b.mean()));
}

TEST(Heterogeneous, FasterClassTicksProportionallyMore) {
  // Single 4x class in a seeds-only frozen population: total tick volume
  // over a fixed horizon must be ~4x the multiplier-1 baseline.
  const SwarmParams params(2, 0.0, 1.0, 1e-9, {{PieceSet{}, 1e-9}});
  auto run_ticks = [&](double multiplier) {
    SwarmSimOptions options;
    options.rng_seed = 5;
    options.rate_classes = {{1.0, multiplier}};
    SwarmSim sim(params, std::make_unique<RandomUsefulPolicy>(), options);
    sim.inject_peers(PieceSet::full(2), 40);
    sim.run_until(100.0);
    return static_cast<double>(sim.silent_contacts());
  };
  const double base = run_ticks(1.0);
  const double fast = run_ticks(4.0);
  // Expected 4000 vs 16000 ticks; Poisson noise ~ 1-2%.
  EXPECT_NEAR(base, 4000.0, 300.0);
  EXPECT_NEAR(fast / base, 4.0, 0.3);
}

TEST(Heterogeneous, MixPreservesTheoremOneAtAverageRate) {
  // A 50/50 mix of 0.5x and 1.5x uploaders has mean upload capacity mu;
  // in a stable regime well inside the boundary the swarm stays tight.
  // (Theorem 1 itself assumes homogeneity; this probes the natural
  // conjecture at a comfortably stable point.)
  const SwarmParams params(2, 2.5, 1.0, 3.0, {{PieceSet{}, 1.0}});
  SwarmSimOptions options;
  options.rng_seed = 6;
  options.rate_classes = {{1.0, 0.5}, {1.0, 1.5}};
  SwarmSim sim(params, std::make_unique<RandomUsefulPolicy>(), options);
  sim.run_until(4000.0);
  EXPECT_LT(sim.total_peers(), 200);
}

TEST(Heterogeneous, TotalsStayConsistentUnderChurn) {
  // Long churny run with mixed classes and retry boost: the cached clock
  // weight must track the population (no drift in the invariant that
  // peer-tick rate >= mu * n_min_multiplier... we check via run not
  // crashing and populations staying sane).
  const SwarmParams params(3, 1.5, 1.0, 2.0,
                           {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.3}});
  SwarmSimOptions options;
  options.rng_seed = 7;
  options.rate_classes = {{2.0, 0.25}, {1.0, 1.0}, {0.5, 3.0}};
  options.retry_boost = 4.0;
  SwarmSim sim(params, std::make_unique<RandomUsefulPolicy>(), options);
  for (int i = 0; i < 200000; ++i) {
    sim.step();
    ASSERT_GE(sim.total_peers(), 0);
    ASSERT_EQ(sim.groups().total(), sim.total_peers());
  }
  EXPECT_GT(sim.total_departures(), 0);
}

TEST(HeterogeneousDeath, RejectsNonpositiveMultiplier) {
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  SwarmSimOptions options;
  options.rate_classes = {{1.0, 0.0}};
  EXPECT_DEATH(SwarmSim(params, std::make_unique<RandomUsefulPolicy>(),
                        options),
               "rate classes");
}

}  // namespace
}  // namespace p2p
