// Fluid model vs the paper's worked examples: the deterministic drift
// reproduces each example's boundary behaviour.
#include <gtest/gtest.h>

#include "core/fluid.hpp"
#include "core/stability.hpp"

namespace p2p {
namespace {

double fluid_growth_rate(const SwarmParams& params, PieceSet heavy_type,
                         double mass, double window) {
  const FluidModel model(params);
  FluidState y = model.point_mass(heavy_type, mass);
  const FluidState mid = model.integrate(y, window, 0.05);
  const FluidState late = model.integrate(mid, window, 0.05);
  return (FluidModel::total(late) - FluidModel::total(mid)) / window;
}

TEST(FluidExamples, Example1BothSidesOfBoundary) {
  // K = 1, critical lambda = Us/(1 - mu/gamma) = 2.
  const auto stable = SwarmParams::example1(1.5, 1.0, 1.0, 2.0);
  const auto transient = SwarmParams::example1(2.5, 1.0, 1.0, 2.0);
  EXPECT_NEAR(fluid_growth_rate(stable, PieceSet{}, 2000.0, 300.0),
              1.5 - 2.0, 0.1);
  EXPECT_NEAR(fluid_growth_rate(transient, PieceSet{}, 2000.0, 300.0),
              2.5 - 2.0, 0.1);
}

TEST(FluidExamples, Example2GrowthMatchesImbalance) {
  // lambda12 > 2 lambda34: type {1,2,4}-style heavy loads grow at
  // lambda12 - 2 lambda34 (Section IV's argument). Heavy load on
  // {1,2,4} = pieces {0,1,3}.
  const auto params = SwarmParams::example2(3.0, 1.0, 1.0);
  const PieceSet club = PieceSet::single(0).with(1).with(3);
  const double growth = fluid_growth_rate(params, club, 4000.0, 300.0);
  EXPECT_NEAR(growth, 3.0 - 2.0 * 1.0, 0.15);
}

TEST(FluidExamples, Example2StableConeDrains) {
  const auto params = SwarmParams::example2(1.0, 1.0, 1.0);
  const PieceSet club = PieceSet::single(0).with(1).with(3);
  // Δ for the club set: arrivals into it (lambda12 = 1) vs drain
  // (2 lambda34 = 2): net -1 while the load lasts.
  const double growth = fluid_growth_rate(params, club, 3000.0, 100.0);
  EXPECT_LT(growth, -0.5);
}

TEST(FluidExamples, Example3DwellBuysSlack) {
  // Fixed asymmetric load; the fluid drains it for small gamma and grows
  // for large gamma, flipping at the Theorem 1 boundary.
  const double lambda3 = 1.0, mu = 1.0;
  const double half = 2.45;  // lambda1 = lambda2; sum = 4.9
  // Boundary: 4.9 = lambda3 (2+g)/(1-g)  =>  g = 2.9/5.9 ~ 0.4915, i.e.
  // gamma* ~ 2.0345.
  const PieceSet club = PieceSet::single(0).with(1);  // missing piece 3
  const auto stable =
      SwarmParams::example3(half, half, lambda3, mu, 1.7);
  const auto transient =
      SwarmParams::example3(half, half, lambda3, mu, 2.5);
  EXPECT_EQ(classify(stable).verdict, Stability::kPositiveRecurrent);
  EXPECT_EQ(classify(transient).verdict, Stability::kTransient);
  EXPECT_LT(fluid_growth_rate(stable, club, 4000.0, 400.0), -0.05);
  EXPECT_GT(fluid_growth_rate(transient, club, 4000.0, 400.0), 0.05);
}

TEST(FluidExamples, FluidGrowthEqualsDeltaAcrossConfigurations) {
  // Property sweep: for heavy one-club mass, the fluid growth of the
  // total population equals Delta_{F-{k}} whenever that is positive.
  struct Case {
    SwarmParams params;
    int piece;
  };
  const Case cases[] = {
      {SwarmParams(2, 0.3, 1.0, 3.0, {{PieceSet{}, 2.0}}), 0},
      {SwarmParams(3, 0.1, 1.0, 2.0,
                   {{PieceSet{}, 1.5}, {PieceSet::single(0), 0.2}}),
       0},
      {SwarmParams(4, 0.5, 1.0, kInfiniteRate, {{PieceSet{}, 3.0}}), 0},
  };
  for (const auto& c : cases) {
    const PieceSet club =
        PieceSet::full(c.params.num_pieces()).without(c.piece);
    const double delta = delta_S(c.params, club);
    ASSERT_GT(delta, 0.0);
    const double growth = fluid_growth_rate(c.params, club, 6000.0, 400.0);
    EXPECT_NEAR(growth, delta, 0.1 * delta + 0.02)
        << c.params.to_string();
  }
}

}  // namespace
}  // namespace p2p
