// Fluid (mean-field) model: conservation, fixed points, agreement with
// large-population simulation, and the one-club growth rate Delta_S.
#include "core/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/generator.hpp"
#include "core/stability.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {
namespace {

TEST(Fluid, DerivativeAtEmptyIsArrivalsOnly) {
  const SwarmParams params(2, 1.0, 1.0, 2.0,
                           {{PieceSet{}, 3.0}, {PieceSet::single(1), 0.5}});
  const FluidModel model(params);
  const FluidState dy = model.derivative(FluidState(4, 0.0));
  EXPECT_NEAR(dy[0b00], 3.0, 1e-12);
  EXPECT_NEAR(dy[0b10], 0.5, 1e-12);
  EXPECT_NEAR(dy[0b01], 0.0, 1e-12);
  EXPECT_NEAR(dy[0b11], 0.0, 1e-12);
}

TEST(Fluid, MassBalanceMatchesArrivalMinusDepartures) {
  // d(total)/dt = lambda_total - gamma y_F (transfers conserve mass).
  const SwarmParams params(3, 1.0, 1.0, 2.0, {{PieceSet{}, 2.0}});
  const FluidModel model(params);
  FluidState y(8, 1.5);
  y[7] = 4.0;  // seeds
  const FluidState dy = model.derivative(y);
  double total = 0;
  for (double v : dy) total += v;
  EXPECT_NEAR(total, 2.0 - 2.0 * 4.0, 1e-9);
}

TEST(Fluid, ImmediateDepartureDrainsAtCompletions) {
  const SwarmParams params(2, 2.0, 1.0, kInfiniteRate, {{PieceSet{}, 1.0}});
  const FluidModel model(params);
  // All mass at type {0}: completions (piece 1 downloads) leave the
  // system. Only the seed holds piece 1: rate = y/n * Us/(K-|C|) = 2/1...
  FluidState y = model.point_mass(PieceSet::single(0), 10.0);
  const FluidState dy = model.derivative(y);
  EXPECT_NEAR(dy[0b01], -2.0 + 0.0, 1e-9);  // -Us (seed uploads piece 1)
  EXPECT_NEAR(dy[0b11], 0.0, 1e-12);        // completions vanish
  EXPECT_NEAR(dy[0b00], 1.0, 1e-12);        // arrivals
}

TEST(Fluid, DerivativeMatchesGeneratorDriftOnIntegerStates) {
  // On integer states the fluid RHS is exactly the generator's expected
  // drift of x (transitions weighted by rate).
  const SwarmParams params(3, 0.8, 1.0, 2.5,
                           {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.4}});
  const FluidModel model(params);
  TypeCountState state(3);
  state.add(PieceSet{}, 7);
  state.add(PieceSet::single(0), 3);
  state.add(PieceSet::single(0).with(2), 2);
  state.add(PieceSet::full(3), 4);

  FluidState y(8, 0.0);
  for (std::size_t m = 0; m < 8; ++m) {
    y[m] = static_cast<double>(state.count(m));
  }
  const FluidState dy = model.derivative(y);

  FluidState expected(8, 0.0);
  for_each_transition(params, state, [&](const Transition& t) {
    switch (t.kind) {
      case TransitionKind::kArrival:
        expected[t.to.mask()] += t.rate;
        break;
      case TransitionKind::kDownload:
        expected[t.from.mask()] -= t.rate;
        expected[t.to.mask()] += t.rate;
        break;
      case TransitionKind::kDeparture:
        expected[t.from.mask()] -= t.rate;
        break;
    }
  });
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_NEAR(dy[m], expected[m], 1e-9) << "type mask " << m;
  }
}

TEST(Fluid, StableSystemConvergesToFixedPoint) {
  const SwarmParams params(2, 2.0, 1.0, 3.0, {{PieceSet{}, 1.0}});
  ASSERT_EQ(classify(params).verdict, Stability::kPositiveRecurrent);
  const FluidModel model(params);
  const FluidState end =
      model.integrate(FluidState(4, 0.0), 400.0, 0.05);
  // Near-zero derivative at the end point.
  const FluidState dy = model.derivative(end);
  for (double v : dy) EXPECT_NEAR(v, 0.0, 1e-3);
  EXPECT_GT(FluidModel::total(end), 0.5);
  EXPECT_LT(FluidModel::total(end), 50.0);
}

TEST(Fluid, TransientOneClubGrowsAtDelta) {
  // Large one-club initial mass: d(one-club)/dt approaches Delta_S.
  const SwarmParams params(3, 0.2, 1.0, 2.0,
                           {{PieceSet{}, 2.0}, {PieceSet::single(0), 0.15}});
  const double delta = delta_S(params, PieceSet::full(3).without(0));
  ASSERT_GT(delta, 0.0);
  const FluidModel model(params);
  const PieceSet club = PieceSet::full(3).without(0);
  FluidState y = model.point_mass(club, 5000.0);
  const FluidState mid = model.integrate(y, 200.0, 0.05);
  const FluidState late = model.integrate(mid, 200.0, 0.05);
  const double growth =
      (late[club.mask()] - mid[club.mask()]) / 200.0;
  EXPECT_NEAR(growth, delta, 0.08 * delta + 0.02);
}

TEST(Fluid, TracksSimulatedMeanInModerateLoad) {
  // Mean-field approximation: for a well-populated stable system the
  // fluid trajectory should sit near the simulated mean of N_t.
  const SwarmParams params(2, 4.0, 1.0, 3.0, {{PieceSet{}, 3.0}});
  const FluidModel model(params);
  const FluidState fixed_point =
      model.integrate(FluidState(4, 0.0), 300.0, 0.05);
  const double fluid_n = FluidModel::total(fixed_point);

  OnlineStats sim_n;
  SwarmSim sim(params, SwarmSimOptions{.rng_seed = 5});
  sim.run_until(300.0);
  sim.run_sampled(4000.0, 2.0, [&](double) {
    sim_n.add(static_cast<double>(sim.total_peers()));
  });
  EXPECT_NEAR(fluid_n, sim_n.mean(), 0.3 * sim_n.mean());
}

TEST(Fluid, IntegrateObserverSeesMonotoneTime) {
  const SwarmParams params(2, 1.0, 1.0, 2.0, {{PieceSet{}, 1.0}});
  const FluidModel model(params);
  double last = -1;
  int calls = 0;
  model.integrate(FluidState(4, 0.0), 10.0, 0.5,
                  [&](double t, const FluidState&) {
                    EXPECT_GT(t, last - 1e-12);
                    last = t;
                    ++calls;
                  });
  EXPECT_EQ(calls, 21);  // t = 0 plus 20 steps
  EXPECT_NEAR(last, 10.0, 1e-9);
}

TEST(Fluid, PopulationsNeverGoNegative) {
  const SwarmParams params(2, 5.0, 1.0, kInfiniteRate, {{PieceSet{}, 0.1}});
  const FluidModel model(params);
  FluidState y = model.point_mass(PieceSet::single(1), 10.0);
  model.integrate(y, 50.0, 0.1, [&](double, const FluidState& state) {
    for (double v : state) ASSERT_GE(v, 0.0);
  });
}

}  // namespace
}  // namespace p2p
