// Second-order properties of the ABS (Section VI): the paper uses that
// family-size second moments are finite for small xi and increasing in
// xi, and that the dominating process \hat{\hat D} is compound Poisson
// with the branching family as batch law (Corollary 3 feeds Kingman's
// bound with exactly these moments).
#include <gtest/gtest.h>

#include <cmath>

#include "core/branching.hpp"
#include "queueing/branching_sim.hpp"
#include "queueing/compound_poisson.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

OnlineStats family_sizes(const AbsParams& params, int trials,
                         std::uint64_t seed) {
  AbsBranchingSim sim(params);
  Rng rng(seed);
  OnlineStats stats;
  for (int i = 0; i < trials; ++i) {
    const auto fam = sim.family_of_b(rng);
    EXPECT_FALSE(fam.saturated);
    stats.add(static_cast<double>(fam.total()));
  }
  return stats;
}

TEST(AbsMoments, SecondMomentFiniteAndIncreasingInXi) {
  const int trials = 30000;
  double prev_second_moment = 0;
  for (const double xi : {0.0, 0.05, 0.1}) {
    const AbsParams params{3, 1.0, 4.0, xi};
    const auto stats = family_sizes(params, trials, 7);
    const double second = stats.variance() + stats.mean() * stats.mean();
    EXPECT_TRUE(std::isfinite(second));
    EXPECT_GT(second, prev_second_moment);
    prev_second_moment = second;
  }
}

TEST(AbsMoments, VarianceShrinksWithShorterDwell) {
  // Larger gamma (shorter dwell) => fewer offspring => smaller family
  // variance.
  const auto long_dwell = family_sizes({3, 1.0, 2.0, 0.0}, 30000, 9);
  const auto short_dwell = family_sizes({3, 1.0, 10.0, 0.0}, 30000, 9);
  EXPECT_GT(long_dwell.variance(), short_dwell.variance());
}

TEST(AbsMoments, DominatingProcessIsCompoundPoissonWithFamilyBatches) {
  // Build \hat{\hat D} for a seed-only system (no gifted arrivals): roots
  // appear at rate Us (group f) and xi Us (group b); each root
  // contributes its whole family at once. The long-run rate must equal
  // Us (xi m_b + m_f).
  const double us = 0.7, xi = 0.05;
  const AbsParams abs{3, 1.0, 4.0, xi};
  const AbsMeans means = abs_means(abs);
  ASSERT_TRUE(means.finite);

  AbsBranchingSim family_sim(abs);
  Rng family_rng(11);
  CompoundPoissonProcess proc(
      us * (1.0 + xi),
      [&](Rng& rng) {
        // With probability xi/(1+xi) the root is group (b), else (f).
        const bool is_b = rng.bernoulli(xi / (1.0 + xi));
        const auto fam = is_b ? family_sim.family_of_b(family_rng)
                              : family_sim.family_of_f(family_rng);
        return static_cast<double>(fam.total());
      },
      13);
  proc.run_until(20000.0);
  const double expected_rate = us * (xi * means.m_b + means.m_f);
  EXPECT_NEAR(proc.value() / proc.now(), expected_rate,
              0.05 * expected_rate);
}

TEST(AbsMoments, KingmanAppliesToTheDominatingProcess) {
  // Corollary 3's actual use: with eps above the mean rate, the
  // probability of ever exceeding B + eps t is small; check empirically
  // with the real family batch law.
  const AbsParams abs{2, 1.0, 5.0, 0.02};
  const AbsMeans means = abs_means(abs);
  ASSERT_TRUE(means.finite);
  const double us = 1.0;
  const double rate = us * (1.0 + abs.xi);
  AbsBranchingSim family_sim(abs);

  int exceeded = 0;
  const int reps = 200;
  const double budget = 40.0;
  for (int r = 0; r < reps; ++r) {
    Rng family_rng(100 + static_cast<std::uint64_t>(r));
    CompoundPoissonProcess proc(
        rate,
        [&](Rng& rng) {
          const bool is_b = rng.bernoulli(abs.xi / (1.0 + abs.xi));
          const auto fam = is_b ? family_sim.family_of_b(family_rng)
                                : family_sim.family_of_f(family_rng);
          return static_cast<double>(fam.total());
        },
        300 + static_cast<std::uint64_t>(r));
    // eps = 2x the mean growth rate.
    const double eps = 2.0 * us * (abs.xi * means.m_b + means.m_f);
    bool hit = false;
    while (proc.now() < 300.0 && !hit) {
      proc.step();
      hit = proc.value() >= budget + eps * proc.now();
    }
    exceeded += hit;
  }
  EXPECT_LT(exceeded, reps / 10);
}

TEST(AbsMoments, FamilySizeDistributionHasGeometricTail) {
  // Subcritical branching: P{family > n} decays ~ exponentially; check
  // the empirical ccdf halves within a bounded span (a loose tail test
  // that would fail for a heavy-tailed law).
  const AbsParams abs{2, 1.0, 3.0, 0.0};
  AbsBranchingSim sim(abs);
  Rng rng(17);
  std::vector<int> counts(200, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto total = sim.family_of_b(rng).total();
    if (total < 200) ++counts[static_cast<std::size_t>(total)];
  }
  auto ccdf = [&](int n) {
    int c = 0;
    for (int i = n; i < 200; ++i) c += counts[static_cast<std::size_t>(i)];
    return static_cast<double>(c) / trials;
  };
  ASSERT_GT(ccdf(10), 0.0);
  EXPECT_LT(ccdf(30), 0.5 * ccdf(10));
  EXPECT_LT(ccdf(60), 0.5 * ccdf(30));
}

}  // namespace
}  // namespace p2p
