// ABS branching process (Section VI): closed-form means vs the equations,
// limits as xi -> 0, the link to Theorem 1's thresholds, and Monte-Carlo
// agreement with the stochastic family simulator.
#include "core/branching.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/branching_sim.hpp"
#include "sim/stats.hpp"

namespace p2p {
namespace {

TEST(AbsMeans, SolvesTheTwoByTwoSystem) {
  const AbsParams params{4, 1.0, 3.0, 0.05};
  const AbsMeans m = abs_means(params);
  ASSERT_TRUE(m.finite);
  const double xi = params.xi;
  const double u = (params.num_pieces - 1) / (1 - xi) +
                   params.contact_rate / params.seed_depart_rate;
  const double v = params.contact_rate / params.seed_depart_rate;
  // Fixed-point equations: m_b = 1 + xi*u*m_b + u*m_f and
  // m_f = 1 + xi*v*m_b + v*m_f.
  EXPECT_NEAR(m.m_b, 1 + xi * u * m.m_b + u * m.m_f, 1e-9);
  EXPECT_NEAR(m.m_f, 1 + xi * v * m.m_b + v * m.m_f, 1e-9);
}

TEST(AbsMeans, XiZeroLimitsMatchPaper) {
  // m_b -> K/(1 - mu/gamma), m_f -> 1/(1 - mu/gamma).
  const AbsParams params{5, 1.0, 4.0, 0.0};
  const AbsMeans m = abs_means(params);
  ASSERT_TRUE(m.finite);
  EXPECT_NEAR(m.m_b, 5.0 / (1 - 0.25), 1e-9);
  EXPECT_NEAR(m.m_f, 1.0 / (1 - 0.25), 1e-9);
}

TEST(AbsMeans, InfiniteGammaMeansNoDwell) {
  const AbsParams params{3, 1.0, kInfiniteRate, 0.0};
  const AbsMeans m = abs_means(params);
  ASSERT_TRUE(m.finite);
  EXPECT_NEAR(m.m_b, 3.0, 1e-9);  // K one-club uploads while downloading
  EXPECT_NEAR(m.m_f, 1.0, 1e-9);  // departs immediately, no offspring
}

TEST(AbsMeans, SupercriticalDetected) {
  // Eq. (6) fails when mu/gamma >= 1 - eps for xi moderate.
  const AbsParams params{4, 1.0, 1.05, 0.3};
  EXPECT_FALSE(abs_means(params).finite);
}

TEST(AbsMeans, MonotoneInXi) {
  const AbsParams base{4, 1.0, 3.0, 0.0};
  double prev_b = abs_means(base).m_b;
  for (double xi : {0.01, 0.05, 0.1, 0.15}) {
    AbsParams p = base;
    p.xi = xi;
    const AbsMeans m = abs_means(p);
    ASSERT_TRUE(m.finite);
    EXPECT_GT(m.m_b, prev_b);
    prev_b = m.m_b;
  }
}

TEST(GiftedMeans, XiZeroMatchesClosedForm) {
  // m_g(C) -> (K - |C| + mu/gamma) / (1 - mu/gamma).
  const AbsParams params{6, 1.0, 5.0, 0.0};
  for (int c = 0; c <= 6; ++c) {
    const auto mg = gifted_mean_descendants(params, c);
    ASSERT_TRUE(mg.has_value());
    EXPECT_NEAR(*mg, (6.0 - c + 0.2) / (1 - 0.2), 1e-9) << "|C| = " << c;
  }
}

TEST(DominatingRate, XiZeroEqualsTheoremOneThreshold) {
  // E[\hat{\hat D}_t]/t at xi = 0 equals
  // [Us + sum_{C: k in C} lambda_C (K - |C| + mu/gamma)] / (1 - mu/gamma),
  // which is piece_threshold minus the lambda mass with the piece
  // (Theorem 1's equivalent form).
  const SwarmParams params(
      3, 0.7, 1.0, 4.0,
      {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.5},
       {PieceSet::single(0).with(2), 0.25}});
  const auto rate = dominating_upload_rate(params, 0, 0.0);
  ASSERT_TRUE(rate.has_value());
  const double g = 0.25;
  const double expected =
      (0.7 + 0.5 * (3 - 1 + g) + 0.25 * (3 - 2 + g)) / (1 - g);
  EXPECT_NEAR(*rate, expected, 1e-9);
}

TEST(DominatingRate, ContinuousInXiNearZero) {
  const SwarmParams params(3, 0.7, 1.0, 4.0,
                           {{PieceSet{}, 1.0}, {PieceSet::single(0), 0.5}});
  const auto at_zero = dominating_upload_rate(params, 0, 0.0);
  const auto near_zero = dominating_upload_rate(params, 0, 1e-4);
  ASSERT_TRUE(at_zero && near_zero);
  EXPECT_NEAR(*at_zero, *near_zero, 0.01 * *at_zero);
}

// --- Monte-Carlo cross-validation of the family simulator ---

class BranchingSimTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(BranchingSimTest, EmpiricalFamilySizesMatchMeans) {
  const auto [k, gamma, xi] = GetParam();
  const AbsParams params{k, 1.0, gamma, xi};
  const AbsMeans means = abs_means(params);
  ASSERT_TRUE(means.finite);
  AbsBranchingSim sim(params);
  Rng rng(99);
  OnlineStats fam_b, fam_f;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto fb = sim.family_of_b(rng);
    ASSERT_FALSE(fb.saturated);
    fam_b.add(static_cast<double>(fb.total()));
    const auto ff = sim.family_of_f(rng);
    ASSERT_FALSE(ff.saturated);
    fam_f.add(static_cast<double>(ff.total()));
  }
  EXPECT_NEAR(fam_b.mean(), means.m_b, 5.0 * fam_b.sem() + 0.02);
  EXPECT_NEAR(fam_f.mean(), means.m_f, 5.0 * fam_f.sem() + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BranchingSimTest,
    ::testing::Values(std::make_tuple(1, 4.0, 0.0),
                      std::make_tuple(3, 4.0, 0.0),
                      std::make_tuple(3, 4.0, 0.05),
                      std::make_tuple(2, kInfiniteRate, 0.1)));

TEST(BranchingSim, GiftedFamilyMatchesMean) {
  const AbsParams params{4, 1.0, 5.0, 0.02};
  const auto expected = gifted_mean_descendants(params, 2);
  ASSERT_TRUE(expected.has_value());
  AbsBranchingSim sim(params);
  Rng rng(101);
  OnlineStats fam;
  for (int i = 0; i < 40000; ++i) {
    const auto f = sim.family_of_gifted(2, rng);
    ASSERT_FALSE(f.saturated);
    fam.add(static_cast<double>(f.total()));
  }
  EXPECT_NEAR(fam.mean(), *expected, 5.0 * fam.sem() + 0.02);
}

TEST(BranchingSim, SupercriticalSaturates) {
  // mu close to gamma: mean offspring ~ 1 per (f) peer; with xi > 0 the
  // process is supercritical and some family must hit the cap.
  const AbsParams params{3, 1.0, 1.01, 0.2};
  ASSERT_FALSE(abs_means(params).finite);
  AbsBranchingSim sim(params);
  Rng rng(103);
  bool saturated = false;
  for (int i = 0; i < 200 && !saturated; ++i) {
    saturated = sim.family_of_b(rng, /*cap=*/20000).saturated;
  }
  EXPECT_TRUE(saturated);
}

TEST(BranchingSim, RootsAreCounted) {
  const AbsParams params{2, 1.0, 10.0, 0.0};
  AbsBranchingSim sim(params);
  Rng rng(105);
  const auto fb = sim.family_of_b(rng);
  EXPECT_GE(fb.total_b, 1);  // at least the root
  const auto ff = sim.family_of_f(rng);
  EXPECT_GE(ff.total_f, 1);
}

}  // namespace
}  // namespace p2p
