// Corpus reader robustness: the Table -> bytes -> Table round trip must
// be exact (archived corpora are lossless records), and malformed input
// must abort echoing the offending line — never misassign columns or
// invent cells.
#include "engine/csv_reader.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "rand/rng.hpp"

namespace p2p::engine {
namespace {

void expect_tables_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.columns(), b.columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row(r), b.row(r)) << "row " << r;
  }
}

TEST(ParseReportNumber, InvertsFormatNumber) {
  const double values[] = {0.0,
                           -0.0,
                           3.0,
                           -1.5,
                           0.1,
                           1.0 / 3.0,
                           3.141592653589793,
                           1e-300,
                           6.02214076e23,
                           std::nextafter(1.0, 2.0)};
  for (const double v : values) {
    // Round-trip through the appending formatter the worker-side row
    // renderer uses (format_number is a thin wrapper over it), with a
    // nonempty prefix so an accidental clear() would be caught.
    std::string token = "x";
    format_number_into(token, v);
    ASSERT_EQ(token.substr(0, 1), "x");
    token.erase(0, 1);
    EXPECT_EQ(token, format_number(v));
    const double parsed = parse_report_number(token, "test");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
              std::bit_cast<std::uint64_t>(v))
        << token;
  }
  EXPECT_TRUE(std::isnan(parse_report_number("nan", "test")));
  EXPECT_EQ(parse_report_number("inf", "test"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(parse_report_number("-inf", "test"),
            -std::numeric_limits<double>::infinity());
}

TEST(ParseReportNumberDeath, RejectsNonNumbers) {
  EXPECT_DEATH(parse_report_number("", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("abc", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("1x", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("nan(2)", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("infinity", "ctx"), "report number");
}

TEST(ParseReportNumberDeath, RejectsOffDialectSpellingsStrtodWouldTake) {
  // strtod alone accepts all of these; format_number emits none of
  // them, and a corpus carrying them is corrupt, not convenient.
  EXPECT_DEATH(parse_report_number(" 2", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("+2", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("0x10", "ctx"), "report number");
  EXPECT_DEATH(parse_report_number("2 ", "ctx"), "report number");
}

TEST(ReadCsv, RoundTripsPlainTable) {
  Table table({"a", "b", "verdict"});
  table.add_row({"1", "2.5", "stable"});
  table.add_row({"2", "inf", "transient"});
  const Table back = read_csv(table.to_csv());
  expect_tables_equal(table, back);
  EXPECT_EQ(back.to_csv(), table.to_csv());
}

TEST(ReadCsv, RoundTripsQuotedCells) {
  Table table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  table.add_row({"line\nbreak", ""});
  table.add_row({"", "trailing,comma,"});
  table.add_row({"\"", "\n"});
  const Table back = read_csv(table.to_csv());
  expect_tables_equal(table, back);
  EXPECT_EQ(back.to_csv(), table.to_csv());
}

TEST(ReadCsv, RandomizedTablesRoundTripExactly) {
  // Property test: any table the emitter can produce must survive the
  // bytes round trip cell for cell, whatever mixture of quoting,
  // newlines, numbers and empties the cells carry.
  Rng rng(20260729);
  const std::string alphabet[] = {
      "x", "", ",", "\"", "\n", "a,b", "say \"hi\"", "1.5", "-inf",
      "nan", "0", "line\nbreak", "trailing ", " leading", "\"\"", "e,\"x\""};
  for (int iter = 0; iter < 25; ++iter) {
    const int cols = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{5}));
    std::vector<std::string> columns;
    for (int c = 0; c < cols; ++c) {
      columns.push_back("col" + std::to_string(c));
    }
    Table table(columns);
    const int rows = static_cast<int>(rng.uniform_int(std::uint64_t{8}));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (int c = 0; c < cols; ++c) {
        cells.push_back(alphabet[rng.uniform_int(std::size(alphabet))]);
      }
      table.add_row(std::move(cells));
    }
    const Table back = read_csv(table.to_csv());
    expect_tables_equal(table, back);
    EXPECT_EQ(back.to_csv(), table.to_csv());
  }
}

TEST(ReadCsv, SweepTableWithScenarioColumnsRoundTrips) {
  // The real thing: a mixed-arrival sweep table (per-type columns, NaN
  // uncertainty cells, verdict strings) through bytes and back.
  SweepGrid grid = parse_grid("lambda=1,2;us=1;gamma=inf;k=4;mix=0:1:3");
  SweepOptions options;
  options.horizon = 20;
  options.replicas = 2;
  options.scenario = parse_scenario("example2:3,1");
  const Table table = run_sweep(grid, options).to_table();
  const Table back = read_csv(table.to_csv());
  expect_tables_equal(table, back);
  // And the schema survives recognizably.
  const ReportSchema schema = validate_report_schema(back.columns());
  EXPECT_EQ(schema.kind, ReportKind::kGrid);
  EXPECT_TRUE(schema.has_scenario);
  ASSERT_EQ(schema.mix_types.size(), 2u);
  EXPECT_EQ(schema.mix_types[0], PieceSet::single(0).with(1));
  EXPECT_EQ(schema.mix_types[1], PieceSet::single(2).with(3));
}

TEST(CsvReader, StreamsAFileAcrossTheFlushBoundary) {
  const std::string path = ::testing::TempDir() + "csv_reader_stream.csv";
  const std::vector<std::string> columns = {"i", "payload"};
  Table table(columns);
  {
    ReportWriter writer(path, ReportFormat::kCsv, columns);
    for (int i = 0; i < 4000; ++i) {
      const std::vector<std::string> row = {std::to_string(i),
                                            std::string(40, 'x')};
      writer.write_row(row);
      table.add_row(row);
    }
    writer.finish();
  }
  CsvReader reader(path);
  EXPECT_EQ(reader.columns(), columns);
  std::vector<std::string> cells;
  std::size_t rows = 0;
  while (reader.next_row(&cells)) {
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0], std::to_string(rows));
    ++rows;
  }
  EXPECT_EQ(rows, 4000u);
  EXPECT_EQ(reader.rows_read(), 4000u);
  std::remove(path.c_str());
}

TEST(CsvReaderDeath, TruncatedFinalRecordAborts) {
  // The writer '\n'-terminates every row; a file cut mid-record must
  // not silently drop (or half-parse) the final row.
  EXPECT_DEATH(read_csv("a,b\n1,2\n3,4"), "truncated");
}

TEST(CsvReaderDeath, WrongArityEchoesTheOffendingLine) {
  EXPECT_DEATH(read_csv("a,b\n1,2\nonly-one\n"), "only-one");
  EXPECT_DEATH(read_csv("a,b\n1,2\nonly-one\n"), "line 3");
  EXPECT_DEATH(read_csv("a,b\n1,2,3\n"), "3 cells, expected 2");
}

TEST(CsvReaderDeath, MalformedQuotingAborts) {
  EXPECT_DEATH(read_csv("a\n\"x\"y\n"), "quoted cell must be followed");
  EXPECT_DEATH(read_csv("a\nx\"y\n"), "bare");
  EXPECT_DEATH(read_csv("a\n\"unclosed\n"), "truncated");
}

TEST(CsvReaderDeath, EmptyDocumentAborts) {
  EXPECT_DEATH(read_csv(""), "empty");
}

TEST(CsvReaderDeath, MissingFileAborts) {
  EXPECT_DEATH(CsvReader("/nonexistent-dir/corpus.csv"), "cannot open");
}

TEST(ReadJson, RoundTripsReportJson) {
  Table table({"i", "x", "verdict"});
  table.add_row({"1", "nan", "stable"});
  table.add_row({"2", "0.5", "transient"});
  table.add_row({"3", "1e-3", "say \"hi\""});
  const Table back = read_json(table.to_json());
  expect_tables_equal(table, back);
  // Numbers keep their literal spelling, so re-emission is identical.
  EXPECT_EQ(back.to_json(), table.to_json());
}

TEST(ReadJson, NullReadsBackAsNan) {
  // inf/-inf/nan all emit as null; nan is the one spelling that maps
  // back without inventing a sign.
  Table table({"x"});
  table.add_row({"inf"});
  const Table back = read_json(table.to_json());
  EXPECT_EQ(back.row(0)[0], "nan");
}

TEST(ReadJsonDeath, MalformedDocumentsAbort) {
  EXPECT_DEATH(read_json("{}"), "expected '\\['");
  EXPECT_DEATH(read_json("[\n]\n"), "empty report JSON");
  EXPECT_DEATH(read_json("[{\"a\": 1}, {\"b\": 1}]"), "do not match");
  EXPECT_DEATH(read_json("[{\"a\": 1}, {\"a\": 1, \"b\": 2}]"),
               "do not match");
  EXPECT_DEATH(read_json("[{\"a\": true}]"), "numbers, strings or null");
  EXPECT_DEATH(read_json("[{\"a\": 1}] trailing"), "trailing");
  EXPECT_DEATH(read_json("[{\"a\": 1}"), "end of JSON");
  EXPECT_DEATH(read_json("[{\"a\": 01}]"), "expected"); // not a JSON number
}

TEST(ValidateJson, AcceptsArbitraryWellFormedDocuments) {
  validate_json("{\"cells\": 100000, \"curve\": [{\"t\": 1, "
                "\"ok\": true}, {\"t\": null}], \"s\": \"x\\u00e9\"}",
                "test");
  validate_json("  [1, -2.5e10, []]  ", "test");
  validate_json("\"just a string\"", "test");
}

TEST(ValidateJsonDeath, RejectsMalformedDocuments) {
  EXPECT_DEATH(validate_json("{", "ctx"), "ctx");
  EXPECT_DEATH(validate_json("[1,]", "ctx"), "malformed");
  EXPECT_DEATH(validate_json("{\"a\" 1}", "ctx"), "expected ':'");
  EXPECT_DEATH(validate_json("01", "ctx"), "trailing");
  EXPECT_DEATH(validate_json("[1] [2]", "ctx"), "trailing");
  EXPECT_DEATH(validate_json("\"\\x\"", "ctx"), "escape");
  EXPECT_DEATH(validate_json(std::string(300, '['), "ctx"), "depth");
}

TEST(ParseMixColumnType, InvertsMixColumnName) {
  EXPECT_EQ(parse_mix_column_type("lambda_t1.2"),
            PieceSet::single(0).with(1));
  EXPECT_EQ(parse_mix_column_type("lambda_t2.3.4"),
            PieceSet::single(1).with(2).with(3));
  EXPECT_EQ(parse_mix_column_type("lambda_t64"), PieceSet::single(63));
  // Round trip through the writer's namer.
  const PieceSet type = PieceSet::single(4).with(9).with(30);
  EXPECT_EQ(parse_mix_column_type(mix_column_name(type)), type);
}

TEST(ParseMixColumnTypeDeath, MalformedNamesAbort) {
  EXPECT_DEATH(parse_mix_column_type("lambda_t"), "per-type");
  EXPECT_DEATH(parse_mix_column_type("lambda_t0"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("lambda_t2.1"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("lambda_t1.1"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("lambda_t65"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("lambda_tx"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("lambda_t+1"), "strictly increasing");
  EXPECT_DEATH(parse_mix_column_type("verdict"), "per-type");
}

TEST(ValidateReportSchema, AcceptsBothWriterHeaders) {
  SweepOptions plain;
  const ReportSchema grid = validate_report_schema(sweep_columns(plain));
  EXPECT_EQ(grid.kind, ReportKind::kGrid);
  EXPECT_FALSE(grid.has_scenario);
  EXPECT_EQ(grid.num_columns, sweep_columns(plain).size());
  EXPECT_EQ(grid.tail_start, sweep_schema_head().size());

  SweepOptions mixed;
  mixed.scenario = parse_scenario("example3");
  const ReportSchema scen = validate_report_schema(sweep_columns(mixed));
  EXPECT_TRUE(scen.has_scenario);
  ASSERT_EQ(scen.mix_types.size(), 3u);

  const ReportSchema frontier =
      validate_report_schema(frontier_columns(mixed));
  EXPECT_EQ(frontier.kind, ReportKind::kFrontier);
  EXPECT_TRUE(frontier.has_scenario);
}

TEST(ValidateReportSchema, BackendColumnIsOptionalAndTrailing) {
  // Simulating writers append sim_backend after the fixed tail; the
  // reader flags it. Grid and frontier both carry it.
  SweepOptions simulating;
  const ReportSchema grid = validate_report_schema(sweep_columns(simulating));
  EXPECT_TRUE(grid.has_backend);
  const ReportSchema frontier =
      validate_report_schema(frontier_columns(simulating));
  EXPECT_TRUE(frontier.has_backend);

  // Theory-only grids never ran a simulator, so the column is absent —
  // which also keeps every pre-backend archive (the same header shape)
  // validating.
  SweepOptions theory;
  theory.theory_only = true;
  const std::vector<std::string> cols = sweep_columns(theory);
  const ReportSchema bare = validate_report_schema(cols);
  EXPECT_FALSE(bare.has_backend);
  EXPECT_EQ(std::count(cols.begin(), cols.end(),
                       std::string(kSimBackendColumn)),
            0);
}

TEST(ValidateReportSchemaDeath, MisplacedBackendColumnAborts) {
  // sim_backend is only legal as the final column, after the full tail.
  SweepOptions options;
  std::vector<std::string> cols = sweep_columns(options);
  cols.pop_back();
  cols.insert(cols.begin() + 1, kSimBackendColumn);
  EXPECT_DEATH(validate_report_schema(cols), "mismatch at column 1");
}

TEST(ValidateReportSchemaDeath, ReorderedHeaderAborts) {
  SweepOptions options;
  std::vector<std::string> cols = sweep_columns(options);
  std::swap(cols[1], cols[2]);  // lambda <-> us
  EXPECT_DEATH(validate_report_schema(cols), "mismatch at column 1");
}

TEST(ValidateReportSchemaDeath, TruncatedHeaderAborts) {
  SweepOptions options;
  std::vector<std::string> cols = sweep_columns(options);
  cols.pop_back();  // sim_backend is optional — dropping it alone is legal
  cols.pop_back();  // ...but losing ctmc_mean_peers truncates the tail
  EXPECT_DEATH(validate_report_schema(cols), "end of the header");
}

TEST(ValidateReportSchemaDeath, TrailingColumnsAbort) {
  SweepOptions options;
  std::vector<std::string> cols = sweep_columns(options);
  cols.push_back("extra");
  EXPECT_DEATH(validate_report_schema(cols), "trailing columns");
}

TEST(ValidateReportSchemaDeath, UnknownFirstColumnAborts) {
  EXPECT_DEATH(validate_report_schema({"time", "value"}),
               "not a sweep report header");
}

TEST(ValidateReportSchemaDeath, LambdaEmptyWithoutTypesAborts) {
  SweepOptions options;
  std::vector<std::string> cols = sweep_columns(options);
  cols.insert(cols.begin() + sweep_schema_head().size(), "lambda_empty");
  EXPECT_DEATH(validate_report_schema(cols), "no \"lambda_t\" columns");
}

TEST(ValidateReportSchemaDeath, RepeatedTypeColumnAborts) {
  SweepOptions options;
  options.scenario = parse_scenario("example2");
  std::vector<std::string> cols = sweep_columns(options);
  cols[sweep_schema_head().size() + 2] = cols[sweep_schema_head().size() + 1];
  EXPECT_DEATH(validate_report_schema(cols), "repeats an arrival type");
}

}  // namespace
}  // namespace p2p::engine
