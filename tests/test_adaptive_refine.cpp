// The adaptive refinement loop's contract (engine/refine.hpp): leaf
// verdicts agree with a dense sweep at matched resolution wherever a
// leaf claims uniformity, the emitted bytes are invariant across the
// threads x chunk matrix, depth 0 degenerates to the dense pipeline row
// for row, and the multi-resolution schema round-trips through the
// ingestion side (engine/csv_reader.hpp -> analysis::build_box_grid)
// with corrupt archives dying loudly, naming the offending row.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "analysis/phase_diagram.hpp"
#include "engine/csv_reader.hpp"
#include "engine/refine.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

struct AdaptiveRun {
  std::string out;
  AdaptiveSummary summary;
};

AdaptiveRun adaptive_report(const SweepGrid& grid, const SweepOptions& options,
                            const AdaptiveOptions& adaptive,
                            ReportFormat format = ReportFormat::kCsv) {
  AdaptiveRun run;
  ReportWriter writer(&run.out, format, adaptive_columns(grid, options));
  run.summary = run_adaptive_stream(grid, options, adaptive, writer);
  writer.finish();
  return run;
}

/// The fine vertex lattice run_adaptive_stream subdivides `coarse` into
/// at max_depth (scale = 2^max_depth), computed with the engine's exact
/// interpolation expression so a dense sweep over these values evaluates
/// bit-identical parameter points.
std::vector<double> fine_lattice(const std::vector<double>& coarse,
                                 int max_depth) {
  const std::uint64_t scale = std::uint64_t{1} << max_depth;
  std::vector<double> fine;
  for (std::size_t ci = 0; ci + 1 < coarse.size(); ++ci) {
    for (std::uint64_t f = 0; f < scale; ++f) {
      fine.push_back(f == 0 ? coarse[ci]
                            : coarse[ci] + (coarse[ci + 1] - coarse[ci]) *
                                               (static_cast<double>(f) /
                                                static_cast<double>(scale)));
    }
  }
  fine.push_back(coarse.back());
  return fine;
}

std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(lo + (hi - lo) * i / (n - 1));
  }
  return values;
}

TEST(ParseAdaptive, DepthAloneAndDepthColonTol) {
  const AdaptiveOptions plain = parse_adaptive("4");
  EXPECT_EQ(plain.max_depth, 4);
  EXPECT_EQ(plain.tol, 0.0);
  const AdaptiveOptions with_tol = parse_adaptive("3:0.05");
  EXPECT_EQ(with_tol.max_depth, 3);
  EXPECT_EQ(with_tol.tol, 0.05);
  EXPECT_EQ(parse_adaptive("0").max_depth, 0);
}

TEST(ParseAdaptiveDeath, MalformedSpecsDieEchoingTheSpec) {
  EXPECT_DEATH(parse_adaptive("banana"), "banana");
  EXPECT_DEATH(parse_adaptive("-1"), "-1");
  EXPECT_DEATH(parse_adaptive("21"), "21");      // > kMaxAdaptiveDepth
  EXPECT_DEATH(parse_adaptive("2.5"), "2\\.5");  // fractional depth
  EXPECT_DEATH(parse_adaptive("4:-0.1"), "-0\\.1");
  EXPECT_DEATH(parse_adaptive("4:inf"), "inf");
}

TEST(AdaptiveColumns, GridSchemaPlusTheBoxBlock) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  const std::vector<std::string> dense = sweep_columns(options);
  const std::vector<std::string> cols = adaptive_columns(grid, options);
  ASSERT_EQ(cols.size(), dense.size() + 4);
  for (std::size_t i = 0; i < dense.size(); ++i) EXPECT_EQ(cols[i], dense[i]);
  EXPECT_EQ(cols[dense.size()], kBoxDepthColumn);
  EXPECT_EQ(cols[dense.size() + 1], kBoxUniformColumn);
  EXPECT_EQ(cols[dense.size() + 2], std::string(kBoxExtPrefix) + "lambda");
  EXPECT_EQ(cols[dense.size() + 3], std::string(kBoxExtPrefix) + "us");
}

TEST(RunAdaptiveStream, UniformLeavesAgreeWithTheDenseSweepAtMatchedResolution) {
  // Random stable/unstable windows (seeded, so the test is one fixed
  // set): for every vertex of the matched-resolution dense lattice, the
  // adaptive leaf containing it either claims uniformity — then its
  // verdict must equal the dense verdict at that vertex — or sits on the
  // frontier cover at the finest width. Together: the adaptive report
  // loses no verdict information at its claimed resolution.
  // The window distributions keep the Theorem-1 flip inside every draw
  // (for k = 2 the frontier sits near lambda ~ 5 us on this range, so a
  // window reaching lambda >= 2.5 from <= 0.8 straddles it).
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> lambda_lo(0.3, 0.8);
  std::uniform_real_distribution<double> lambda_span(2.2, 3.0);
  std::uniform_real_distribution<double> us_lo(0.2, 0.35);
  std::uniform_real_distribution<double> us_span(0.5, 0.8);
  const int max_depth = 2;
  for (int window = 0; window < 3; ++window) {
    SCOPED_TRACE("window " + std::to_string(window));
    const double l0 = lambda_lo(rng), l1 = l0 + lambda_span(rng);
    const double u0 = us_lo(rng), u1 = u0 + us_span(rng);

    SweepGrid coarse;
    coarse.set_axis(Axis{"lambda", linspace(l0, l1, 4)});
    coarse.set_axis(Axis{"us", linspace(u0, u1, 4)});
    coarse.set_axis(Axis{"k", {2}});
    SweepOptions options;
    options.theory_only = true;
    AdaptiveOptions adaptive;
    adaptive.max_depth = max_depth;
    const AdaptiveRun run = adaptive_report(coarse, options, adaptive);
    const analysis::BoxGrid boxes =
        analysis::build_box_grid(read_csv(run.out));

    SweepGrid dense;
    dense.set_axis(Axis{
        "lambda",
        fine_lattice(coarse.find_axis("lambda")->values, max_depth)});
    dense.set_axis(
        Axis{"us", fine_lattice(coarse.find_axis("us")->values, max_depth)});
    dense.set_axis(Axis{"k", {2}});
    std::string dense_csv;
    ReportWriter writer(&dense_csv, ReportFormat::kCsv,
                        sweep_columns(options));
    run_sweep_stream(dense, options, writer);
    writer.finish();
    const analysis::PhaseGrid grid =
        analysis::build_phase_grid(read_csv(dense_csv));
    ASSERT_EQ(grid.x_axis, "us");
    ASSERT_EQ(grid.y_axis, "lambda");

    std::size_t covered = 0;
    for (std::size_t yi = 0; yi < grid.num_y(); ++yi) {
      for (std::size_t xi = 0; xi < grid.num_x(); ++xi) {
        const analysis::PhaseBox& box =
            boxes.box_at(grid.x_values[xi], grid.y_values[yi]);
        if (box.uniform) {
          EXPECT_EQ(box.verdict, grid.at(yi, xi).verdict)
              << "lambda " << grid.y_values[yi] << " us " << grid.x_values[xi];
        } else {
          // Frontier cover: the cap stopped a disagreeing box only at
          // the finest width.
          EXPECT_LE(box.ext_x, boxes.min_ext_x * 1.0000001);
          EXPECT_LE(box.ext_y, boxes.min_ext_y * 1.0000001);
          ++covered;
        }
      }
    }
    // A window whose frontier misses the box entirely would pass the
    // loop vacuously — require the interesting case (the windows above
    // all straddle the lambda* = 5 Us / E[piece need] frontier).
    EXPECT_GE(covered, 1u);
    EXPECT_LT(run.summary.evaluated, run.summary.dense_equivalent);
  }
}

TEST(RunAdaptiveStream, ByteDeterminismAcrossTheThreadsChunkMatrix) {
  // The whole adaptive loop — vertex claiming, generation barriers,
  // escalation rounds, leaf emission — may not let scheduling touch the
  // bytes: threads {1, 2, 4, 8} x chunk {1, 7, auto} must emit
  // identical CSV and JSON, with simulation and CI escalation live.
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.5,1.5;k=2");
  SweepOptions base;
  base.horizon = 20;
  base.replicas = 2;
  base.threads = 1;
  base.chunk = 1;
  AdaptiveOptions adaptive;
  adaptive.max_depth = 2;
  adaptive.sim_threshold = 8;
  adaptive.max_sim_rounds = 2;
  const AdaptiveRun csv_ref = adaptive_report(grid, base, adaptive);
  const AdaptiveRun json_ref =
      adaptive_report(grid, base, adaptive, ReportFormat::kJson);
  EXPECT_FALSE(csv_ref.out.empty());
  for (const int threads : {1, 2, 4, 8}) {
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{0}}) {
      SweepOptions options = base;
      options.threads = threads;
      options.chunk = chunk;
      EXPECT_EQ(adaptive_report(grid, options, adaptive).out, csv_ref.out)
          << "threads " << threads << " chunk " << chunk;
      EXPECT_EQ(
          adaptive_report(grid, options, adaptive, ReportFormat::kJson).out,
          json_ref.out)
          << "threads " << threads << " chunk " << chunk;
    }
  }
}

TEST(RunAdaptiveStream, DepthZeroDegeneratesToTheDensePipelineRowForRow) {
  // At depth 0 the leaves are exactly the coarse boxes, each emitted as
  // its origin (lower-corner) vertex — the dense sweep over the origin
  // sub-lattice (all values but the last per adaptive axis). Every
  // adaptive row must be the dense row's bytes plus the trailing box
  // cells; nothing about the shared row rendering may drift.
  SweepGrid coarse;
  coarse.set_axis(Axis{"lambda", {0.5, 1.125, 1.75, 2.375, 3.0}});
  coarse.set_axis(Axis{"us", {0.2, 0.575, 0.95, 1.325, 1.7}});
  coarse.set_axis(Axis{"k", {3}});
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions depth0;
  depth0.max_depth = 0;
  const AdaptiveRun run = adaptive_report(coarse, options, depth0);
  EXPECT_EQ(run.summary.boxes, 16u);
  EXPECT_EQ(run.summary.evaluated, 25u);
  EXPECT_EQ(run.summary.dense_equivalent, 25u);
  EXPECT_EQ(run.summary.max_depth_reached, 0);

  SweepGrid origins;
  origins.set_axis(Axis{"lambda", {0.5, 1.125, 1.75, 2.375}});
  origins.set_axis(Axis{"us", {0.2, 0.575, 0.95, 1.325}});
  origins.set_axis(Axis{"k", {3}});
  std::string dense_csv;
  ReportWriter writer(&dense_csv, ReportFormat::kCsv, sweep_columns(options));
  run_sweep_stream(origins, options, writer);
  writer.finish();

  const auto lines = [](const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') {
        out.push_back(text.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  };
  const std::vector<std::string> adaptive_lines = lines(run.out);
  const std::vector<std::string> dense_lines = lines(dense_csv);
  ASSERT_EQ(adaptive_lines.size(), dense_lines.size());
  ASSERT_EQ(adaptive_lines.size(), 17u);
  for (std::size_t i = 0; i < dense_lines.size(); ++i) {
    SCOPED_TRACE("line " + std::to_string(i));
    ASSERT_GT(adaptive_lines[i].size(), dense_lines[i].size());
    EXPECT_EQ(adaptive_lines[i].substr(0, dense_lines[i].size()),
              dense_lines[i]);
    EXPECT_EQ(adaptive_lines[i][dense_lines[i].size()], ',');
  }
  // Depth-0 leaves are never subdivided, but their uniformity is still
  // honest: rows straddling the frontier carry box_uniform = 0.
  const Table table = read_csv(run.out);
  const ReportSchema schema = validate_report_schema(table.columns());
  ASSERT_TRUE(schema.has_boxes);
  std::size_t nonuniform = 0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r)[schema.box_start], "0");  // depth
    nonuniform += table.row(r)[schema.box_start + 1] == "0";
  }
  EXPECT_GE(nonuniform, 1u);
}

TEST(RunAdaptiveStream, MultiResSchemaRoundTripsThroughIngestion) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  adaptive.max_depth = 3;
  const AdaptiveRun run = adaptive_report(grid, options, adaptive);

  const Table table = read_csv(run.out);
  const ReportSchema schema = validate_report_schema(table.columns());
  EXPECT_TRUE(schema.has_boxes);
  ASSERT_EQ(schema.box_axes.size(), 2u);
  EXPECT_EQ(schema.box_axes[0], "lambda");
  EXPECT_EQ(schema.box_axes[1], "us");
  EXPECT_EQ(table.num_rows(), run.summary.boxes);

  const analysis::BoxGrid boxes = analysis::build_box_grid(table);
  EXPECT_EQ(boxes.boxes.size(), run.summary.boxes);
  EXPECT_EQ(boxes.max_depth, run.summary.max_depth_reached);
  EXPECT_EQ(boxes.x_axis, "us");
  EXPECT_EQ(boxes.y_axis, "lambda");
  EXPECT_DOUBLE_EQ(boxes.x_min, 0.2);
  EXPECT_DOUBLE_EQ(boxes.x_max, 1.7);
  EXPECT_DOUBLE_EQ(boxes.y_min, 0.5);
  EXPECT_DOUBLE_EQ(boxes.y_max, 3.0);
  std::size_t stable = 0, transient = 0, borderline = 0;
  for (const analysis::PhaseBox& b : boxes.boxes) {
    (b.verdict == Stability::kPositiveRecurrent
         ? stable
         : b.verdict == Stability::kTransient ? transient : borderline) += 1;
  }
  EXPECT_EQ(stable, run.summary.stable);
  EXPECT_EQ(transient, run.summary.transient);
  EXPECT_EQ(borderline, run.summary.borderline);
  // The streaming reader sees the same grid as the in-memory table.
  const std::string path = testing::TempDir() + "adaptive_roundtrip.csv";
  write_text(path, run.out);
  CsvReader reader(path);
  const analysis::BoxGrid streamed = analysis::build_box_grid(reader);
  EXPECT_EQ(streamed.boxes.size(), boxes.boxes.size());
  EXPECT_EQ(streamed.max_depth, boxes.max_depth);
  std::remove(path.c_str());
}

TEST(RunAdaptiveStream, TolStopsSubdivisionAtThePhysicalWidth) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions capped;
  capped.max_depth = 6;
  capped.tol = 0.4;  // coarse boxes are 1.25 x 0.75 wide
  const AdaptiveRun run = adaptive_report(grid, options, capped);
  AdaptiveOptions uncapped = capped;
  uncapped.tol = 0;
  const AdaptiveRun full = adaptive_report(grid, options, uncapped);
  // The tolerance must stop refinement early...
  EXPECT_LT(run.summary.max_depth_reached, full.summary.max_depth_reached);
  EXPECT_LT(run.summary.evaluated, full.summary.evaluated);
  // ...exactly when every axis width is <= tol: widths halve from
  // 1.25 / 0.75, so depth 2 (0.3125 x 0.1875) is the first within 0.4.
  EXPECT_EQ(run.summary.max_depth_reached, 2);
  const analysis::BoxGrid boxes = analysis::build_box_grid(read_csv(run.out));
  for (const analysis::PhaseBox& b : boxes.boxes) {
    if (b.uniform) continue;
    EXPECT_LE(b.ext_x, capped.tol);
    EXPECT_LE(b.ext_y, capped.tol);
  }
}

TEST(RunAdaptiveStreamDeath, WriterWithDenseColumnsAborts) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, sweep_columns(options));
  EXPECT_DEATH(run_adaptive_stream(grid, options, adaptive, writer),
               "adaptive_columns");
  writer.finish();
}

TEST(RunAdaptiveStreamDeath, FewerThanTwoVaryingAxesAborts) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:5;us=1;k=2");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv,
                      adaptive_columns(grid, options));
  EXPECT_DEATH(run_adaptive_stream(grid, options, adaptive, writer),
               "at least two");
  writer.finish();
}

TEST(RunAdaptiveStreamDeath, NonRefinableVaryingAxisAborts) {
  // k varies but is not refinable: midpoints of an integer axis are not
  // model points, so the adaptive lattice refuses the grid up front.
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;k=1,3;us=1");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv,
                      adaptive_columns(grid, options));
  EXPECT_DEATH(run_adaptive_stream(grid, options, adaptive, writer), "k");
  writer.finish();
}

// Corrupt-archive deaths: every abort names the offending row, so a
// truncated or hand-edited archive is debuggable from the message.

std::string adaptive_csv_3x3() {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  AdaptiveOptions adaptive;
  adaptive.max_depth = 1;
  return adaptive_report(grid, options, adaptive).out;
}

/// Replaces data-row `row`'s cell in column `col` with `value`.
std::string tamper(const std::string& csv, std::size_t row, std::size_t col,
                   const std::string& value) {
  Table table = read_csv(csv);
  std::vector<std::string> cells = table.row(row);
  cells[col] = value;
  Table out(table.columns());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    out.add_row(r == row ? cells : table.row(r));
  }
  return out.to_csv();
}

TEST(BuildBoxGridDeath, DenseReportsAreNotBoxGrids) {
  const SweepGrid grid = parse_grid("lambda=0.5:3.0:3;us=0.2:1.7:3;k=2");
  SweepOptions options;
  options.theory_only = true;
  std::string csv;
  ReportWriter writer(&csv, ReportFormat::kCsv, sweep_columns(options));
  run_sweep_stream(grid, options, writer);
  writer.finish();
  const Table table = read_csv(csv);
  EXPECT_DEATH(analysis::build_box_grid(table), "adaptive grid reports");
}

TEST(BuildBoxGridDeath, CorruptGeometryCellsDieNamingTheRow) {
  const std::string csv = adaptive_csv_3x3();
  const Table table = read_csv(csv);
  const ReportSchema schema = validate_report_schema(table.columns());
  ASSERT_TRUE(schema.has_boxes);
  const std::size_t depth_col = schema.box_start;
  EXPECT_DEATH(
      analysis::build_box_grid(read_csv(tamper(csv, 2, depth_col, "-1"))),
      "box_depth.*row 2");
  EXPECT_DEATH(
      analysis::build_box_grid(read_csv(tamper(csv, 3, depth_col + 1, "2"))),
      "box_uniform.*row 3");
  EXPECT_DEATH(
      analysis::build_box_grid(read_csv(tamper(csv, 1, depth_col + 2, "0"))),
      "extents.*row 1");
  // A wrong (but positive) extent breaks the measure tiling instead.
  EXPECT_DEATH(
      analysis::build_box_grid(read_csv(tamper(csv, 0, depth_col + 3, "9"))),
      "tile");
}

TEST(ValidateReportSchemaDeath, BoxBlockHeadersAreChecked) {
  SweepOptions options;
  options.theory_only = true;
  std::vector<std::string> cols = sweep_columns(options);
  cols.push_back(kBoxDepthColumn);
  cols.push_back(kBoxUniformColumn);
  cols.push_back(std::string(kBoxExtPrefix) + "lambda");
  {
    std::vector<std::string> bogus = cols;
    bogus.push_back(std::string(kBoxExtPrefix) + "banana");
    EXPECT_DEATH(validate_report_schema(bogus), "banana");
  }
  {
    std::vector<std::string> repeated = cols;
    repeated.push_back(std::string(kBoxExtPrefix) + "lambda");
    EXPECT_DEATH(validate_report_schema(repeated), "repeats");
  }
  // One extent column alone: adaptive refinement is >= 2-D.
  EXPECT_DEATH(validate_report_schema(cols), "at least two");
}

}  // namespace
}  // namespace p2p::engine
