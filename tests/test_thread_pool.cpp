#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace p2p::engine {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20 * 50);
}

TEST(ThreadPoolDeath, RejectsZeroThreads) {
  EXPECT_DEATH(ThreadPool(0), ">= 1 thread");
}

}  // namespace
}  // namespace p2p::engine
