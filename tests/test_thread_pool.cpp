#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace p2p::engine {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20 * 50);
}

TEST(ThreadPool, ChunkedRunsEveryIndexExactlyOnce) {
  // The chunk size changes how indices are claimed, never which indices
  // run: every chunk value (including auto = 0 and oversized) must cover
  // [0, n) exactly once.
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{7},
                                  std::size_t{64}, std::size_t{5000}}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, chunk);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST(ThreadPool, AutoChunkHeuristic) {
  // ~64 chunks per thread, floored at 1 so tiny jobs still parallelize,
  // capped at 4096 so streaming rings sized from the chunk stay bounded
  // no matter how large the job grows.
  EXPECT_EQ(ThreadPool::auto_chunk(1000000, 8), 1000000u / (64 * 8));
  EXPECT_EQ(ThreadPool::auto_chunk(100, 8), 1u);
  EXPECT_EQ(ThreadPool::auto_chunk(0, 1), 1u);
  EXPECT_EQ(ThreadPool::auto_chunk(1000000000, 1), 4096u);
}

TEST(ThreadPool, StreamingReportsMonotonicPrefixesOnTheCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::size_t> prefixes;
  pool.parallel_for_streaming(
      hits.size(), /*chunk=*/7, /*window=*/64,
      [&](std::size_t i) { hits[i].fetch_add(1); },
      [&](std::size_t prefix) {
        // The consumer callback always runs on the calling thread, so a
        // sink needs no locking of its own.
        ASSERT_EQ(std::this_thread::get_id(), caller);
        // Every item inside the reported prefix must already have run.
        for (std::size_t i = 0; i < prefix; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "prefix " << prefix;
        }
        prefixes.push_back(prefix);
      });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  ASSERT_FALSE(prefixes.empty());
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    ASSERT_LT(prefixes[i - 1], prefixes[i]);
  }
  EXPECT_EQ(prefixes.back(), hits.size());
}

TEST(ThreadPool, StreamingWindowBoundsInFlightItems) {
  // With window W, no item may start more than W past the last consumed
  // prefix — that bound is what lets a consumer ring-buffer results.
  ThreadPool pool(4);
  constexpr std::size_t kWindow = 32;
  std::atomic<std::size_t> consumed{0};
  std::atomic<bool> violated{false};
  pool.parallel_for_streaming(
      2000, /*chunk=*/4, kWindow,
      [&](std::size_t i) {
        if (i >= consumed.load() + kWindow) violated.store(true);
      },
      [&](std::size_t prefix) { consumed.store(prefix); });
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPool, StreamingSingleThreadAndSingleChunk) {
  // Degenerate corners: inline execution, and a chunk swallowing the
  // whole job (one claim, one prefix report).
  ThreadPool pool(1);
  std::size_t total = 0;
  std::vector<std::size_t> prefixes;
  pool.parallel_for_streaming(
      100, /*chunk=*/1000, /*window=*/8,
      [&](std::size_t i) { total += i; },
      [&](std::size_t prefix) { prefixes.push_back(prefix); });
  EXPECT_EQ(total, 99u * 100u / 2);
  EXPECT_EQ(prefixes, std::vector<std::size_t>({100}));
}

TEST(ThreadPool, StreamingZeroItemsReportsNothing) {
  ThreadPool pool(2);
  pool.parallel_for_streaming(
      0, 1, 8, [](std::size_t) { FAIL() << "no items to run"; },
      [](std::size_t) { FAIL() << "no prefix to report"; });
}

TEST(ThreadPool, StreamingReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> runs{0};
    std::size_t last_prefix = 0;
    pool.parallel_for_streaming(
        200, /*chunk=*/3, /*window=*/30,
        [&](std::size_t) { runs.fetch_add(1); },
        [&](std::size_t prefix) { last_prefix = prefix; });
    ASSERT_EQ(runs.load(), 200);
    ASSERT_EQ(last_prefix, 200u);
  }
}

TEST(ThreadPool, StreamingBlocksCoverChunkAlignedRangesExactlyOnce) {
  // The block-range entry point hands workers whole claimed chunks:
  // every block must be [k*chunk, min((k+1)*chunk, n)) for some k, the
  // blocks must tile [0, n) exactly once, and prefixes still only cover
  // finished blocks. This is the contract the sweep engine's
  // chunk-batched arenas (one arena per claimed block) are built on.
  ThreadPool pool(4);
  constexpr std::size_t kN = 503;  // deliberately not a chunk multiple
  constexpr std::size_t kChunk = 7;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> misaligned{false};
  std::size_t last_prefix = 0;
  pool.parallel_for_streaming_blocks(
      kN, kChunk, /*window=*/56,
      [&](std::size_t begin, std::size_t end) {
        if (begin % kChunk != 0 ||
            (end != kN && end - begin != kChunk) || end <= begin) {
          misaligned.store(true);
        }
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      [&](std::size_t prefix) {
        ASSERT_GT(prefix, last_prefix);
        for (std::size_t i = 0; i < prefix; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "prefix " << prefix;
        }
        last_prefix = prefix;
      });
  EXPECT_FALSE(misaligned.load());
  EXPECT_EQ(last_prefix, kN);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolDeath, RejectsZeroThreads) {
  EXPECT_DEATH(ThreadPool(0), ">= 1 thread");
  // auto_chunk shares the contract: 64 * 0 threads in the divisor would
  // be a SIGFPE, not a readable message.
  EXPECT_DEATH(ThreadPool::auto_chunk(100, 0), ">= 1 thread");
}

TEST(ThreadPoolDeath, ThrowingFnAbortsWithTheItemIndex) {
  // The documented contract is "fn must not throw": an exception cannot
  // be rejoined with its item, and unwinding through the pool would
  // std::terminate inside libstdc++. The pool must turn it into an
  // assert that names the index instead.
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.parallel_for(10, [](std::size_t i) {
          if (i == 7) throw std::runtime_error("boom");
        });
      },
      "threw at index 7.*boom");
}

TEST(ThreadPoolDeath, ThrowingBlockFnAbortsWithTheRange) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.parallel_for_streaming_blocks(
            10, /*chunk=*/4, /*window=*/8,
            [](std::size_t begin, std::size_t) {
              if (begin == 4) throw std::runtime_error("boom");
            },
            [](std::size_t) {});
      },
      "block fn threw in range \\[4, 8\\).*boom");
}

}  // namespace
}  // namespace p2p::engine
