// Theorem-1 boundary refinement: bisection toward the verdict flip.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/sweep.hpp"

namespace p2p::engine {
namespace {

TEST(ParseRefine, AxisAndTolerance) {
  const RefineOptions refine = parse_refine("lambda:0.01");
  EXPECT_EQ(refine.axis, "lambda");
  EXPECT_NEAR(refine.tol, 0.01, 1e-15);
}

TEST(ParseRefineDeath, MalformedSpecsAbort) {
  EXPECT_DEATH(parse_refine("lambda"), "axis:tol");
  EXPECT_DEATH(parse_refine(":0.1"), "axis:tol");
  EXPECT_DEATH(parse_refine("lambda:"), "axis:tol");
  EXPECT_DEATH(parse_refine("lambda:0"), "positive");
  EXPECT_DEATH(parse_refine("lambda:-1"), "positive");
  EXPECT_DEATH(parse_refine("lambda:inf"), "positive and finite");
}

TEST(RefineFrontier, LocalizesKnownCriticalLambda) {
  // K = 1, Us = 1, mu = 1, gamma = 1.25: the Theorem-1 boundary is
  // lambda* = Us / (1 - mu/gamma) = 5 exactly. The coarse grid brackets
  // it in (4, 6); bisection must localize it to within tol.
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,4,6,9");
  SweepOptions options;
  options.horizon = 40;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-3;
  const FrontierResult result = refine_frontier(grid, options, refine);
  ASSERT_EQ(result.points.size(), 1u);
  const FrontierPoint& pt = result.points[0];
  ASSERT_TRUE(pt.bracketed);
  EXPECT_LE(pt.value_hi - pt.value_lo, refine.tol * (1 + 1e-12));
  EXPECT_NEAR(pt.value, 5.0, refine.tol);
  EXPECT_EQ(pt.params.lambda, pt.value);  // refined slot holds the estimate
  EXPECT_NEAR(pt.margin, 0.0, 0.01);  // on the boundary the margin ~ 0
  EXPECT_EQ(pt.sim.replicas, 1);
  EXPECT_TRUE(std::isfinite(pt.sim.mean_peers_mean));
}

TEST(RefineFrontier, PerRowFrontierTracksSeedRate) {
  // Same slice, three Us rows: lambda* = 5 Us. Each row must localize
  // its own flip.
  SweepGrid grid =
      parse_grid("k=1;us=0.4,0.8,1.2;mu=1;gamma=1.25;lambda=0.5:9.5:4");
  SweepOptions options;
  options.horizon = 20;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-3;
  const FrontierResult result = refine_frontier(grid, options, refine);
  ASSERT_EQ(result.points.size(), 3u);
  const double expected[] = {2.0, 4.0, 6.0};
  for (int row = 0; row < 3; ++row) {
    ASSERT_TRUE(result.points[row].bracketed) << "row " << row;
    EXPECT_NEAR(result.points[row].value, expected[row], refine.tol)
        << "row " << row;
  }
}

TEST(RefineFrontier, RefinesAlongUsToo) {
  // Fix lambda = 5; the boundary in Us is Us* = lambda (1 - mu/gamma)
  // = 1.
  SweepGrid grid = parse_grid("k=1;lambda=5;mu=1;gamma=1.25;us=0.2:1.7:4");
  SweepOptions options;
  options.horizon = 20;
  RefineOptions refine;
  refine.axis = "us";
  refine.tol = 5e-4;
  const FrontierResult result = refine_frontier(grid, options, refine);
  ASSERT_EQ(result.points.size(), 1u);
  ASSERT_TRUE(result.points[0].bracketed);
  EXPECT_NEAR(result.points[0].value, 1.0, refine.tol);
}

TEST(RefineFrontier, UnbracketedRowEmitsNaNAndSkipsSim) {
  // All-stable coarse values: no verdict flip to localize.
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,2,3");
  SweepOptions options;
  options.horizon = 20;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-2;
  const FrontierResult result = refine_frontier(grid, options, refine);
  ASSERT_EQ(result.points.size(), 1u);
  const FrontierPoint& pt = result.points[0];
  EXPECT_FALSE(pt.bracketed);
  EXPECT_TRUE(std::isnan(pt.value));
  EXPECT_TRUE(std::isnan(pt.margin));
  EXPECT_EQ(pt.sim.replicas, 0);
  EXPECT_TRUE(std::isnan(pt.sim.mean_peers_mean));
  // Row parameters are still reported for the non-refined axes.
  EXPECT_EQ(pt.params.us, 1.0);
  EXPECT_EQ(pt.params.k, 1);
  EXPECT_TRUE(std::isnan(pt.params.lambda));  // refined slot
}

TEST(RefineFrontier, ByteIdenticalAcrossThreadCounts) {
  SweepGrid grid =
      parse_grid("k=1;us=0.4,0.8,1.2;mu=1;gamma=1.25;lambda=0.5:9.5:4");
  SweepOptions one;
  one.horizon = 25;
  one.replicas = 3;
  one.threads = 1;
  SweepOptions four = one;
  four.threads = 4;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-2;
  const std::string csv1 =
      refine_frontier(grid, one, refine).to_table().to_csv();
  const std::string csv4 =
      refine_frontier(grid, four, refine).to_table().to_csv();
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
}

TEST(RefineFrontier, FrontierSimGetsReplicaCi) {
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,4,6,9");
  SweepOptions options;
  options.horizon = 60;
  options.replicas = 5;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 1e-2;
  const FrontierResult result = refine_frontier(grid, options, refine);
  const FrontierPoint& pt = result.points[0];
  ASSERT_TRUE(pt.bracketed);
  EXPECT_EQ(pt.sim.replicas, 5);
  EXPECT_GT(pt.sim.mean_peers_sem, 0.0);
  EXPECT_LE(pt.sim.mean_peers_lo, pt.sim.mean_peers_mean);
  EXPECT_LE(pt.sim.mean_peers_mean, pt.sim.mean_peers_hi);
}

TEST(RefineFrontier, TableSchemaIsStable) {
  SweepGrid grid = parse_grid("k=1;us=1;mu=1;gamma=1.25;lambda=1,9");
  SweepOptions options;
  options.horizon = 10;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  const Table table =
      refine_frontier(grid, options, refine).to_table();
  ASSERT_EQ(table.num_columns(), 22u);
  EXPECT_EQ(table.columns().front(), "row");
  EXPECT_EQ(table.columns()[14], "mix");
  EXPECT_EQ(table.columns()[15], "hetero");
  EXPECT_EQ(table.columns()[20], "sim_mean_peers_hi");
  EXPECT_EQ(table.columns().back(), "sim_backend");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.row(0)[1], "lambda");
}

TEST(RefineFrontierDeath, NonRefinableAxesAbort) {
  const SweepGrid grid = parse_grid("k=1;us=1;lambda=1,9");
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.tol = 0.1;
  refine.axis = "k";
  EXPECT_DEATH(refine_frontier(grid, options, refine), "refine axis");
  refine.axis = "eta";
  EXPECT_DEATH(refine_frontier(grid, options, refine), "refine axis");
  refine.axis = "hetero";  // theory is homogeneous: nothing to bisect
  EXPECT_DEATH(refine_frontier(grid, options, refine), "refine axis");
  refine.axis = "bogus";
  EXPECT_DEATH(refine_frontier(grid, options, refine), "refine axis");
}

TEST(RefineFrontierDeath, SingleCoarseValueAborts) {
  const SweepGrid grid = parse_grid("k=1;us=1;lambda=5");
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.axis = "lambda";
  refine.tol = 0.1;
  EXPECT_DEATH(refine_frontier(grid, options, refine),
               ">= 2 coarse values");
}

TEST(RefineFrontierDeath, InfOnRefinedAxisAborts) {
  const SweepGrid grid = parse_grid("k=1;us=1;gamma=1.25,inf;lambda=2");
  SweepOptions options;
  options.horizon = 5;
  RefineOptions refine;
  refine.axis = "gamma";
  refine.tol = 0.1;
  EXPECT_DEATH(refine_frontier(grid, options, refine), "must be finite");
}

}  // namespace
}  // namespace p2p::engine
