// Command-line flag parser used by the example drivers.
#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2p {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--k=5", "--rate=2.5", "--name=abc"});
  EXPECT_EQ(f.get_int("k", 1, ""), 5);
  EXPECT_NEAR(f.get_double("rate", 0.0, ""), 2.5, 1e-12);
  EXPECT_EQ(f.get_string("name", "", ""), "abc");
  f.finish();
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--k", "7", "--rate", "0.25"});
  EXPECT_EQ(f.get_int("k", 1, ""), 7);
  EXPECT_NEAR(f.get_double("rate", 0.0, ""), 0.25, 1e-12);
  f.finish();
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = make({});
  EXPECT_EQ(f.get_int("k", 42, ""), 42);
  EXPECT_EQ(f.get_string("policy", "random-useful", ""), "random-useful");
  EXPECT_FALSE(f.get_bool("verbose", false, ""));
  f.finish();
}

TEST(Flags, BareBooleanIsTrue) {
  Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false, ""));
  f.finish();
}

TEST(Flags, BooleanFalseSpellings) {
  Flags f = make({"--a=false", "--b=0", "--c=yes"});
  EXPECT_FALSE(f.get_bool("a", true, ""));
  EXPECT_FALSE(f.get_bool("b", true, ""));
  EXPECT_TRUE(f.get_bool("c", false, ""));
  f.finish();
}

TEST(Flags, NegativeValueSpaceSyntax) {
  // Regression: "-1.5" must parse as the value of --name, not as a flag.
  Flags f = make({"--name", "-1.5"});
  EXPECT_NEAR(f.get_double("name", 0.0, ""), -1.5, 1e-12);
  f.finish();
}

TEST(Flags, NegativeValueEqualsSyntax) {
  Flags f = make({"--name=-1.5", "--n=-3"});
  EXPECT_NEAR(f.get_double("name", 0.0, ""), -1.5, 1e-12);
  EXPECT_EQ(f.get_int("n", 0, ""), -3);
  f.finish();
}

TEST(FlagsDeath, FractionalIntegerFlagAborts) {
  EXPECT_DEATH(
      {
        Flags f = make({"--k=2.5"});
        f.get_int("k", 1, "");
      },
      "expects an integer");
}

TEST(FlagsDeath, OutOfIntRangeFlagAborts) {
  // Would be UB if cast before range-checking.
  EXPECT_DEATH(
      {
        Flags f = make({"--seed=5000000000"});
        f.get_int("seed", 1, "");
      },
      "expects an integer");
}

TEST(FlagsDeath, DuplicateFlagAborts) {
  EXPECT_DEATH(make({"--k=1", "--k=2"}), "more than once");
}

TEST(FlagsDeath, DuplicateFlagMixedSyntaxAborts) {
  EXPECT_DEATH(make({"--k", "1", "--k=1"}), "more than once");
}

TEST(FlagsDeath, DuplicateBareBooleanAborts) {
  EXPECT_DEATH(make({"--verbose", "--verbose"}), "more than once");
}

TEST(FlagsDeath, UnknownFlagAborts) {
  EXPECT_DEATH(
      {
        Flags f = make({"--oops=1"});
        f.get_int("k", 1, "");
        f.finish();
      },
      "unknown flag");
}

TEST(FlagsDeath, NonNumericValueAborts) {
  EXPECT_DEATH(
      {
        Flags f = make({"--k=abc"});
        f.get_int("k", 1, "");
      },
      "expects a number");
}

TEST(FlagsDeath, StrtodLeniencyHolesStayClosed) {
  // Same hole as the engine spec grammar: strtod also accepts "nan",
  // any-case "inf"/"infinity", hex floats and leading whitespace. A
  // numeric flag takes finite plain decimals only; each rejected
  // spelling is echoed back so the user sees what was actually parsed.
  for (const char* bad : {"--rate=nan", "--rate=inf", "--rate=INFINITY",
                          "--rate=-inf", "--rate=0x1p3", "--rate= 2",
                          "--rate=1e999"}) {
    EXPECT_DEATH(
        {
          Flags f = make({bad});
          f.get_double("rate", 0.0, "");
        },
        "expects a number")
        << bad;
  }
  // The echoed value names the offending spelling verbatim.
  EXPECT_DEATH(
      {
        Flags f = make({"--rate=nan"});
        f.get_double("rate", 0.0, "");
      },
      "got 'nan'");
}

TEST(FlagsDeath, PositionalArgumentAborts) {
  EXPECT_DEATH(make({"positional"}), "positional");
}

}  // namespace
}  // namespace p2p
