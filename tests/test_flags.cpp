// Command-line flag parser used by the example drivers.
#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2p {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--k=5", "--rate=2.5", "--name=abc"});
  EXPECT_EQ(f.get_int("k", 1, ""), 5);
  EXPECT_NEAR(f.get_double("rate", 0.0, ""), 2.5, 1e-12);
  EXPECT_EQ(f.get_string("name", "", ""), "abc");
  f.finish();
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--k", "7", "--rate", "0.25"});
  EXPECT_EQ(f.get_int("k", 1, ""), 7);
  EXPECT_NEAR(f.get_double("rate", 0.0, ""), 0.25, 1e-12);
  f.finish();
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = make({});
  EXPECT_EQ(f.get_int("k", 42, ""), 42);
  EXPECT_EQ(f.get_string("policy", "random-useful", ""), "random-useful");
  EXPECT_FALSE(f.get_bool("verbose", false, ""));
  f.finish();
}

TEST(Flags, BareBooleanIsTrue) {
  Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false, ""));
  f.finish();
}

TEST(Flags, BooleanFalseSpellings) {
  Flags f = make({"--a=false", "--b=0", "--c=yes"});
  EXPECT_FALSE(f.get_bool("a", true, ""));
  EXPECT_FALSE(f.get_bool("b", true, ""));
  EXPECT_TRUE(f.get_bool("c", false, ""));
  f.finish();
}

TEST(FlagsDeath, UnknownFlagAborts) {
  EXPECT_DEATH(
      {
        Flags f = make({"--oops=1"});
        f.get_int("k", 1, "");
        f.finish();
      },
      "unknown flag");
}

TEST(FlagsDeath, NonNumericValueAborts) {
  EXPECT_DEATH(
      {
        Flags f = make({"--k=abc"});
        f.get_int("k", 1, "");
      },
      "expects a number");
}

TEST(FlagsDeath, PositionalArgumentAborts) {
  EXPECT_DEATH(make({"positional"}), "positional");
}

}  // namespace
}  // namespace p2p
