// p2p_monitor: live stability monitoring over a swarm event stream.
//
// Two modes share one event grammar (sim/event_log.hpp):
//
//   * monitor (default): read event lines — CSV with the
//     t,event,type,piece header, or JSON lines — from --in (default
//     stdin), maintain sliding-window estimates of (lambda, mix, Us, mu,
//     gamma), classify each advisory tick against the Theorem-1 region
//     with hysteresis, and stream JSON-lines advisories to --out. No
//     wall clock anywhere: timestamps come from the events, so a
//     recorded log replays byte-identically — run it twice and diff.
//
//   * --emit "lambda:dur;lambda:dur;...": generate a synthetic event log
//     from a piecewise-stationary schedule instead (SwarmBackend ground
//     truth; the population carries across segment boundaries). This is
//     how the committed frontier-crossing trace under experiments/ was
//     made.
//
//   # Record a trace that crosses the stability frontier and back:
//   $ ./p2p_monitor --k 3 --emit "1:150;4:150;1:150" --us 1 --mu 1 \
//       --gamma 2 --seed 7 --out events.csv
//
//   # Replay it through the monitor (file in, stdout out):
//   $ ./p2p_monitor --k 3 --in events.csv --window 40 --every 5
//
//   # Same bytes, fed as a live stream:
//   $ cat events.csv | ./p2p_monitor --k 3 --window 40 --every 5
//
// Advisory schema (one JSON object per line, keys always in this order):
//   t        advisory timestamp (log time)
//   status   hysteresis-filtered verdict: estimating | stable | unstable
//   raw      instantaneous Theorem-1 verdict (null while estimating)
//   margin   min_k(threshold_k - lambda_total) at the estimated point
//            (null while estimating or on the altruistic branch)
//   flips    cumulative stable <-> unstable transitions
//   events   events processed before this tick
//   n, seeds instantaneous population / peer-seed count
//   coverage window time observed; mean_n windowed average population
//   lambda   arrival-rate estimate; mix: per-type-mask share of arrivals
//   us, mu   fixed-seed / per-peer contact-rate estimates
//   gamma    peer-seed departure-rate estimate (null = unknown or
//            infinite; dwell = 1/gamma spells immediate departure as 0)
//   us_required  smallest stabilizing Us at the estimated point
//   us_gap       capacity to add to re-enter the stable region
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/parse_util.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"
#include "service/monitor.hpp"
#include "sim/event_log.hpp"
#include "util/assert.hpp"
#include "util/flags.hpp"

namespace {

using namespace p2p;

/// "" = estimate (monitor mode only); "inf" = immediate departure;
/// otherwise a positive plain decimal.
double parse_gamma(const std::string& token, bool allow_empty) {
  if (token.empty()) {
    P2P_ASSERT_MSG(allow_empty, "--gamma is required in --emit mode");
    return 0;
  }
  const double gamma = engine::parse_number(
      token, token, /*allow_inf=*/true, "--gamma expects a rate or inf");
  P2P_ASSERT_MSG(gamma > 0, "--gamma must be positive (got \"" + token +
                                "\")");
  return gamma;
}

/// Opens --out for streaming ('-' or "" = stdout). Aborts on failure.
std::FILE* open_out(const std::string& path) {
  if (path.empty() || path == "-") return stdout;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  P2P_ASSERT_MSG(f != nullptr, "cannot open --out file " + path);
  return f;
}

void write_all(std::FILE* f, const std::string& bytes,
               const std::string& path) {
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  P2P_ASSERT_MSG(written == bytes.size(), "short write to " + path);
}

int run_emit(const std::string& emit_spec, int k, double us, double mu,
             const std::string& gamma_spec, const std::string& mix_spec,
             const std::string& backend_spec, int seed,
             const std::string& format, const std::string& out_path) {
  P2P_ASSERT_MSG(format == "csv" || format == "jsonl",
                 "--format must be csv or jsonl (got \"" + format + "\")");
  const double gamma = parse_gamma(gamma_spec, /*allow_empty=*/false);

  engine::ScenarioSpec scenario;
  if (!mix_spec.empty()) scenario = engine::parse_scenario(mix_spec);
  engine::CellParams cell;
  cell.k = k;
  cell.mix = scenario.empty() ? 0.0 : 1.0;

  // Schedule grammar: ';'-separated lambda:duration segments.
  std::vector<LogSegment> segments;
  for (const std::string& seg : engine::split_list(emit_spec, ';')) {
    const auto parts = engine::split_list(seg, ':');
    P2P_ASSERT_MSG(parts.size() == 2,
                   "--emit segments are lambda:duration (got \"" + seg +
                       "\")");
    cell.lambda = engine::parse_number(parts[0], emit_spec, false,
                                       "--emit lambda must be a number");
    const double duration = engine::parse_number(
        parts[1], emit_spec, false, "--emit duration must be a number");
    std::vector<ArrivalSpec> arrivals;
    engine::expand_arrivals(scenario, cell, arrivals);
    segments.push_back(
        {SwarmParams(k, us, mu, gamma, std::move(arrivals)), duration});
  }

  EventLogOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  if (backend_spec == "typecount") {
    options.backend = EventLogBackend::kTypeCount;
  } else if (backend_spec == "perpeer") {
    options.backend = EventLogBackend::kPerPeer;
  } else {
    P2P_ASSERT_MSG(false, "--backend must be typecount or perpeer (got \"" +
                              backend_spec + "\")");
  }

  std::FILE* out = open_out(out_path);
  std::string buffer;
  if (format == "csv") buffer = event_log_csv_header();
  std::size_t events = 0;
  generate_event_log(segments, options, [&](const SwarmEvent& event) {
    if (format == "csv") {
      append_event_csv(buffer, event);
    } else {
      append_event_json(buffer, event);
    }
    ++events;
    if (buffer.size() >= 1 << 16) {
      write_all(out, buffer, out_path);
      buffer.clear();
    }
  });
  write_all(out, buffer, out_path);
  if (out != stdout) {
    P2P_ASSERT_MSG(std::fclose(out) == 0, "short write to " + out_path);
  } else {
    std::fflush(out);
  }
  std::fprintf(stderr, "p2p_monitor: emitted %zu events (%zu segments)\n",
               events, segments.size());
  return 0;
}

int run_monitor(const std::string& in_path, const std::string& out_path,
                service::MonitorConfig config) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!in_path.empty() && in_path != "-") {
    file.open(in_path);
    P2P_ASSERT_MSG(file.is_open(), "cannot open --in file " + in_path);
    in = &file;
  }

  std::FILE* out = open_out(out_path);
  service::StabilityMonitor monitor(config);
  const service::AdvisorySink sink = [&](const service::Advisory& advisory) {
    const std::string line = service::advisory_json_line(advisory);
    write_all(out, line, out_path);
  };

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_number == 1 && line + "\n" == event_log_csv_header()) {
      continue;  // CSV header; JSON-lines input has none
    }
    const SwarmEvent event =
        parse_event_line(line, line_number, config.num_pieces);
    monitor.feed(event, line, line_number, sink);
  }
  monitor.finish(sink);

  if (out != stdout) {
    P2P_ASSERT_MSG(std::fclose(out) == 0, "short write to " + out_path);
  } else {
    std::fflush(out);
  }
  std::fprintf(stderr,
               "p2p_monitor: %zu events, final status %s, %zu verdict "
               "flip(s)\n",
               monitor.events_processed(), to_string(monitor.verdict()),
               monitor.flips());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int k = flags.get_int("k", 0, "piece count K of the swarm (required)");
  const std::string in_path = flags.get_string(
      "in", "-", "event log to replay ('-' = stdin); CSV or JSON lines");
  const std::string out_path = flags.get_string(
      "out", "-", "advisory (or emitted log) destination ('-' = stdout)");
  const double window = flags.get_double(
      "window", 60.0, "sliding estimation window, log-time units");
  const int buckets = flags.get_int(
      "buckets", 64, "window ring resolution (buckets per window)");
  const double every = flags.get_double(
      "every", 1.0, "advisory cadence: one line per this much log time");
  const double hyst_enter = flags.get_double(
      "hyst-enter", 0.05,
      "margin at or above which the filtered verdict becomes stable");
  const double hyst_exit = flags.get_double(
      "hyst-exit", -0.05,
      "margin at or below which the filtered verdict becomes unstable");
  const std::string gamma_spec = flags.get_string(
      "gamma", "",
      "peer-seed departure rate: monitor mode pins the estimator ('' = "
      "estimate from the log; 'inf' allowed); required in --emit mode");
  const std::string emit_spec = flags.get_string(
      "emit", "",
      "emit mode: ';'-separated lambda:duration schedule of a synthetic "
      "trace (population carries across segments)");
  const double us =
      flags.get_double("us", 1.0, "emit mode: fixed-seed rate Us");
  const double mu =
      flags.get_double("mu", 1.0, "emit mode: per-peer contact rate mu");
  const std::string mix_spec = flags.get_string(
      "mix", "",
      "emit mode: typed-arrival scenario (example2[:w12,w34] | "
      "example3[:w1,w2,w3] | oneclub:K; '' = empty-arrival stream)");
  const std::string backend_spec = flags.get_string(
      "backend", "typecount", "emit mode: typecount | perpeer");
  const int seed = flags.get_int("seed", 1, "emit mode: root RNG seed");
  const std::string format = flags.get_string(
      "format", "csv", "emit mode: event log format, csv | jsonl");
  flags.finish();

  P2P_ASSERT_MSG(k >= 1 && k <= 16, "--k is required and must be in [1, 16]");

  if (!emit_spec.empty()) {
    return run_emit(emit_spec, k, us, mu, gamma_spec, mix_spec, backend_spec,
                    seed, format, out_path);
  }

  service::MonitorConfig config;
  config.num_pieces = k;
  config.window = window;
  config.buckets = buckets;
  config.advice_every = every;
  config.hyst_enter = hyst_enter;
  config.hyst_exit = hyst_exit;
  config.pinned_gamma = parse_gamma(gamma_spec, /*allow_empty=*/true);
  return run_monitor(in_path, out_path, config);
}
