// p2p_sweep: parallel scenario sweeps over the Zhu–Hajek parameter space.
//
// Fans independent grid cells (one SwarmSim run + Theorem-1 closed form,
// optionally a truncated-CTMC stationary solve) across a fixed thread
// pool and emits one CSV/JSON row per cell. Per-cell RNG streams are
// derived from (seed, cell index), so the report is byte-identical for
// any --threads value.
//
//   # 256-cell Theorem-1 stability region (lambda x Us phase diagram):
//   $ ./p2p_sweep --grid lambda=0.5:3.0:16 --threads 8 --out region.csv
//
//   # Custom slice: dwell-rate axis with an immediate-departure endpoint,
//   # exact E[N] cross-check for K = 2:
//   $ ./p2p_sweep --grid "k=2;gamma=0.5,1.25,5,inf;lambda=0.5:2.5:9" \
//       --ctmc-cap 30 --format json
//
// Unspecified axes keep the default region grid's values (lambda and Us
// 16-point linspaces, mu = 1, gamma = 1.25, K = 3); naming an axis in
// --grid replaces just that axis.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/stability.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace p2p;
  using namespace p2p::engine;

  Flags flags(argc, argv);
  const std::string grid_spec = flags.get_string(
      "grid", "",
      "';'-separated axes (name=lo:hi:count | name=v1,v2 | name=v) "
      "overriding the default region grid");
  const int threads_flag =
      flags.get_int("threads", 0, "worker threads (0 = all hardware cores)");
  const double horizon =
      flags.get_double("horizon", 400.0, "simulated time per cell");
  const int seed = flags.get_int("seed", 1, "root RNG seed");
  const int flash = flags.get_int(
      "flash", 0, "one-club peers injected into every cell at t=0");
  const int ctmc_cap = flags.get_int(
      "ctmc-cap", 0,
      "truncated-CTMC peer cap for exact E[N] on K<=2 cells (0 = off)");
  const std::string format =
      flags.get_string("format", "csv", "output format: csv | json");
  const std::string out =
      flags.get_string("out", "-", "output path ('-' = stdout)");
  flags.finish();

  if (format != "csv" && format != "json") {
    std::fprintf(stderr, "error: --format must be csv or json\n");
    return 2;
  }

  // run_sweep fills axes missing from the spec from the default region
  // grid, so an empty --grid runs the full 256-cell sweep.
  const SweepGrid grid = parse_grid(grid_spec);

  SweepOptions options;
  options.horizon = horizon;
  options.base_seed = static_cast<std::uint64_t>(seed);
  options.flash_crowd = static_cast<std::int64_t>(flash);
  options.ctmc_max_peers = static_cast<std::int64_t>(ctmc_cap);
  options.threads = threads_flag > 0
                        ? threads_flag
                        : static_cast<int>(std::max(
                              1u, std::thread::hardware_concurrency()));

  const auto t0 = std::chrono::steady_clock::now();
  const SweepResult result = run_sweep(grid, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const Table table = result.to_table();
  write_text(out, format == "json" ? table.to_json() : table.to_csv());

  std::size_t stable = 0, transient = 0, borderline = 0;
  for (const auto& cell : result.cells) {
    switch (cell.theory.verdict) {
      case Stability::kPositiveRecurrent:
        ++stable;
        break;
      case Stability::kTransient:
        ++transient;
        break;
      case Stability::kBorderline:
        ++borderline;
        break;
    }
  }
  std::fprintf(stderr,
               "p2p_sweep: %zu cells (%zu stable / %zu transient / %zu "
               "borderline) in %.2fs on %d threads (%.1f cells/s)\n",
               result.cells.size(), stable, transient, borderline, elapsed,
               options.threads,
               static_cast<double>(result.cells.size()) / elapsed);
  return 0;
}
