// p2p_sweep: parallel scenario sweeps over the Zhu–Hajek parameter space.
//
// Fans independent (cell, replica) work items — each one SwarmSim run,
// plus the Theorem-1 closed form and optionally a truncated-CTMC
// stationary solve per cell — across a fixed thread pool and emits one
// CSV/JSON row per cell with replica-mean / SEM / bootstrap-CI columns.
// Per-replica RNG streams are derived from (seed, cell, replica), so the
// report is byte-identical for any --threads value.
//
//   # 256-cell Theorem-1 stability region (lambda x Us phase diagram),
//   # 8 replicas per cell with 95% CIs:
//   $ ./p2p_sweep --grid lambda=0.5:3.0:16 --replicas 8 --threads 8 \
//       --out region.csv
//
//   # Custom slice: dwell-rate axis with an immediate-departure endpoint,
//   # exact E[N] cross-check for K = 2:
//   $ ./p2p_sweep --grid "k=2;gamma=0.5,1.25,5,inf;lambda=0.5:2.5:9" \
//       --ctmc-cap 30 --format json
//
//   # Boundary refinement: bisect the Theorem-1 verdict flip along
//   # lambda (to +-0.01) for each Us in the coarse grid, then simulate
//   # 8 replicas at each localized frontier point:
//   $ ./p2p_sweep --grid "k=1;us=0.4:1.6:7;lambda=1:9:5" \
//       --refine lambda:0.01 --replicas 8 --warmup 100 --out frontier.csv
//
//   # Typed-arrival mix: interpolate the arrival composition from the
//   # empty-arrival stream (mix=0) to Example 2's paired-halves mix at
//   # weights 3:1 (mix=1), and localize the verdict flip along mix:
//   $ ./p2p_sweep --mix example2:3,1 \
//       --grid "us=1;gamma=inf;lambda=2;mix=0:1:5" \
//       --refine mix:0.001 --replicas 8 --out mix_frontier.csv
//
//   # Million-cell Theorem-1 phase diagram, closed form only (no sim):
//   # the grid streams to disk as it completes, memory stays bounded.
//   $ ./p2p_sweep --grid "lambda=0.5:3.0:1000;us=0.2:1.7:1000" \
//       --theory-only --threads 8 --out region_1e6.csv
//
//   # Adaptive multi-resolution refinement: start from a coarse vertex
//   # lattice, subdivide only boxes whose corner verdicts disagree, down
//   # to 2^4 times the coarse resolution — frontier-area cost instead of
//   # volume cost, with a savings digest in the summary JSON:
//   $ ./p2p_sweep --grid "lambda=0.5:3.0:5;us=0.2:1.7:5" --adaptive 4 \
//       --theory-only --out region_adaptive.csv --summary adaptive.json
//
//   # Theorem-14 policy check: sweep the same grid under rarest-first
//   # selection with the fluid-limit verdict column alongside:
//   $ ./p2p_sweep --grid "k=2;lambda=0.5:2.5:9" --policy rarest --fluid \
//       --replicas 4 --out rarest.csv
//
// Unspecified axes keep the default region grid's values (lambda and Us
// 16-point linspaces, mu = 1, gamma = 1.25, K = 3, eta = 1, flash = 0,
// mix = 0, hetero = 0); naming an axis in --grid replaces just that
// axis. --mix names the scenario the mix/hetero axes act on (example2,
// example3, oneclub:K) and, unless the grid says otherwise, pins the k
// axis to the scenario's piece count and the mix axis to 1. Workers
// claim --chunk items per lock acquisition (0 = auto); output is
// byte-identical for any --threads/--chunk combination.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "core/stability.hpp"
#include "engine/refine.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "util/flags.hpp"

namespace {

/// The adaptive run's machine-readable digest: the savings accounting
/// (vertices evaluated vs the dense-equivalent fine lattice) CI diffs
/// against a committed golden. Key order and number spellings are
/// deterministic; json_num maps non-finite values to null like the
/// report emitter does.
std::string adaptive_summary_json(
    const p2p::engine::AdaptiveSummary& summary,
    const p2p::engine::AdaptiveOptions& adaptive, int replicas) {
  using p2p::engine::format_number;
  const auto json_num = [](double v) {
    const std::string s = format_number(v);
    return (s == "nan" || s == "inf" || s == "-inf") ? std::string("null")
                                                     : s;
  };
  std::string out = "{\n";
  out += "  \"mode\": \"adaptive\",\n";
  out += "  \"max_depth\": " + std::to_string(adaptive.max_depth) + ",\n";
  out += "  \"tol\": " + json_num(adaptive.tol) + ",\n";
  out += "  \"sim_threshold\": " + json_num(adaptive.sim_threshold) + ",\n";
  out += "  \"max_sim_rounds\": " + std::to_string(adaptive.max_sim_rounds) +
         ",\n";
  out += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  out += "  \"boxes\": " + std::to_string(summary.boxes) + ",\n";
  out += "  \"evaluated\": " + std::to_string(summary.evaluated) + ",\n";
  out += "  \"simulated\": " + std::to_string(summary.simulated) + ",\n";
  out += "  \"escalated\": " + std::to_string(summary.escalated) + ",\n";
  out += "  \"max_depth_reached\": " +
         std::to_string(summary.max_depth_reached) + ",\n";
  out += "  \"dense_equivalent\": " +
         std::to_string(summary.dense_equivalent) + ",\n";
  out += "  \"evaluated_fraction\": " +
         json_num(static_cast<double>(summary.evaluated) /
                  static_cast<double>(summary.dense_equivalent)) +
         ",\n";
  out += "  \"verdicts\": {\"positive-recurrent\": " +
         std::to_string(summary.stable) +
         ", \"transient\": " + std::to_string(summary.transient) +
         ", \"borderline\": " + std::to_string(summary.borderline) + "}\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  using namespace p2p::engine;

  Flags flags(argc, argv);
  const std::string grid_spec = flags.get_string(
      "grid", "",
      "';'-separated axes (name=lo:hi:count | name=v1,v2 | name=v) "
      "overriding the default region grid");
  const int threads_flag =
      flags.get_int("threads", 0, "worker threads (0 = all hardware cores)");
  const int chunk_flag = flags.get_int(
      "chunk", 0,
      "work items claimed per pool lock (0 = auto ~ items/(64*threads)); "
      "any value gives byte-identical output");
  const bool theory_only = flags.get_bool(
      "theory-only", false,
      "skip all simulation: Theorem-1 columns only (sim columns NaN, "
      "replicas 0) — million-cell phase diagrams in seconds");
  const double horizon =
      flags.get_double("horizon", 400.0, "simulated time per replica");
  const double warmup = flags.get_double(
      "warmup", 0.0, "simulated time discarded from time averages");
  const int seed = flags.get_int("seed", 1, "root RNG seed");
  const int replicas = flags.get_int(
      "replicas", 1, "independent SwarmSim replicas per cell");
  const double confidence = flags.get_double(
      "confidence", 0.95, "confidence level of the replica-mean CI");
  const int flash = flags.get_int(
      "flash", 0,
      "one-club peers injected into every cell at t=0 (shorthand for a "
      "single-value flash axis)");
  const std::string mix_spec = flags.get_string(
      "mix", "",
      "typed-arrival scenario for the mix/hetero axes: example2[:w12,w34] "
      "| example3[:w1,w2,w3] | oneclub:K");
  const double hetero = flags.get_double(
      "hetero", 0.0,
      "mean-preserving two-class upload-rate spread in [0,1) (shorthand "
      "for a single-value hetero axis)");
  const int ctmc_cap = flags.get_int(
      "ctmc-cap", 0,
      "truncated-CTMC peer cap for exact E[N] on K<=3 homogeneous cells "
      "(0 = off)");
  const std::string refine_spec = flags.get_string(
      "refine", "",
      "axis:tol — per row, bisect the Theorem-1 verdict flip along axis "
      "to within tol and emit a frontier table instead of the grid");
  const std::string adaptive_spec = flags.get_string(
      "adaptive", "",
      "depth[:tol] — adaptive multi-resolution mode: treat the grid as a "
      "coarse vertex lattice and subdivide only boxes whose corner "
      "verdicts disagree, down to 2^depth times the coarse resolution "
      "(or until every axis width <= tol); emits one row per leaf box "
      "with trailing box_depth/box_uniform/box_ext_* columns");
  const double sim_threshold = flags.get_double(
      "sim-threshold", std::nan(""),
      "adaptive mode: occupancy threshold of the theory/sim decision; "
      "vertices whose bootstrap CI straddles it escalate their replica "
      "budget round by round until the CI clears");
  const int sim_rounds = flags.get_int(
      "sim-rounds", 4,
      "adaptive mode: max replica rounds a CI-straddling vertex may "
      "consume (each round adds --replicas runs)");
  const std::string summary_out = flags.get_string(
      "summary", "",
      "adaptive mode: write the savings digest JSON here ('-' = stdout)");
  const std::string policy_spec = flags.get_string(
      "policy", "random",
      "piece-selection policy the simulator runs: random | rarest | "
      "mostcommon | sequential; non-random policies add a policy column");
  const bool fluid = flags.get_bool(
      "fluid", false,
      "integrate the fluid-limit ODE per cell and emit a fluid_verdict "
      "column next to the Theorem-1 verdict (k <= 8)");
  const std::string backend_spec = flags.get_string(
      "sim-backend", "auto",
      "simulation backend: auto (type-count where its law applies — "
      "eta=1, hetero=0, k<=16 — per-peer otherwise) | perpeer | "
      "typecount; recorded per cell in the sim_backend column");
  const std::string format =
      flags.get_string("format", "csv", "output format: csv | json");
  const std::string out =
      flags.get_string("out", "-", "output path ('-' = stdout)");
  flags.finish();

  if (format != "csv" && format != "json") {
    std::fprintf(stderr, "error: --format must be csv or json\n");
    return 2;
  }

  // run_sweep fills axes missing from the spec from the default region
  // grid, so an empty --grid runs the full 256-cell sweep.
  SweepGrid grid = parse_grid(grid_spec);
  if (flash < 0) {
    // The axis path rejects negatives; the shorthand must not silently
    // run flashless instead.
    std::fprintf(stderr, "error: --flash must be nonnegative\n");
    return 2;
  }
  if (flash > 0) {
    if (grid.find_axis("flash") != nullptr) {
      std::fprintf(stderr,
                   "error: give either --flash or a flash axis, not both\n");
      return 2;
    }
    grid.set_axis(Axis{"flash", {static_cast<double>(flash)}});
  }
  if (hetero < 0 || hetero >= 1) {
    // The axis path rejects out-of-range values; the shorthand must not
    // silently run homogeneous (or die deep in the engine) instead.
    std::fprintf(stderr, "error: --hetero must lie in [0, 1)\n");
    return 2;
  }
  if (hetero > 0) {
    if (grid.find_axis("hetero") != nullptr) {
      std::fprintf(stderr,
                   "error: give either --hetero or a hetero axis, not both\n");
      return 2;
    }
    grid.set_axis(Axis{"hetero", {hetero}});
  }

  if (policy_spec != "random" && policy_spec != "rarest" &&
      policy_spec != "mostcommon" && policy_spec != "sequential") {
    std::fprintf(stderr,
                 "error: --policy must be random, rarest, mostcommon or "
                 "sequential (got \"%s\")\n",
                 policy_spec.c_str());
    return 2;
  }
  const PolicyKind policy = parse_policy(policy_spec);
  if (policy != PolicyKind::kRandomUseful && theory_only) {
    // No simulator runs under --theory-only, so the policy could not
    // take effect; accepting it would look like it did.
    std::fprintf(stderr,
                 "error: --policy applies to simulating sweeps, not "
                 "--theory-only\n");
    return 2;
  }

  SweepOptions options;
  options.fluid = fluid;
  if (!mix_spec.empty()) {
    options.scenario = parse_scenario(mix_spec);
    // Asking for a named mix means running it: pin the k axis to the
    // scenario's piece count and default the mix axis to the full mix —
    // or, when refining along mix, to the whole [0, 1] bracket so the
    // bisection has a coarse pair to scan — unless the grid explicitly
    // says otherwise (a mismatched explicit k axis still aborts in the
    // engine with a message naming the mix).
    const bool refining_mix =
        !refine_spec.empty() && parse_refine(refine_spec).axis == "mix";
    if (grid.find_axis("k") == nullptr) {
      grid.set_axis(
          Axis{"k", {static_cast<double>(options.scenario.num_pieces)}});
    }
    if (grid.find_axis("mix") == nullptr) {
      grid.set_axis(refining_mix ? Axis{"mix", {0.0, 1.0}}
                                 : Axis{"mix", {1.0}});
    }
  } else if (const Axis* mix_axis = grid.find_axis("mix")) {
    for (const double v : mix_axis->values) {
      if (v != 0) {
        std::fprintf(stderr,
                     "error: a nonzero mix axis needs --mix to name the "
                     "scenario it interpolates toward\n");
        return 2;
      }
    }
  }
  options.scenario.policy = policy;
  if (chunk_flag < 0) {
    std::fprintf(stderr, "error: --chunk must be nonnegative (0 = auto)\n");
    return 2;
  }
  SimBackend sim_backend = SimBackend::kAuto;
  if (backend_spec == "perpeer") {
    sim_backend = SimBackend::kPerPeer;
  } else if (backend_spec == "typecount") {
    sim_backend = SimBackend::kTypeCount;
  } else if (backend_spec != "auto") {
    std::fprintf(stderr,
                 "error: --sim-backend must be auto, perpeer or typecount "
                 "(got \"%s\")\n",
                 backend_spec.c_str());
    return 2;
  }
  if (sim_backend != SimBackend::kAuto && theory_only) {
    // No simulator runs under --theory-only; accepting a forced backend
    // would look like the choice took effect.
    std::fprintf(stderr,
                 "error: --sim-backend applies to simulating sweeps, not "
                 "--theory-only\n");
    return 2;
  }
  if (sim_backend == SimBackend::kTypeCount) {
    // Same domain rule the engine enforces, surfaced as a flag error
    // naming the offending axis instead of an abort mid-run. A forced
    // backend never silently changes the law; --sim-backend=auto falls
    // back to the per-peer simulator on such cells instead.
    const std::string violation =
        typecount_domain_violation(grid, options.scenario);
    if (!violation.empty()) {
      std::fprintf(stderr, "error: %s\n", violation.c_str());
      return 2;
    }
  }
  options.horizon = horizon;
  options.warmup = warmup;
  options.base_seed = static_cast<std::uint64_t>(seed);
  options.replicas = replicas;
  options.confidence = confidence;
  options.chunk = static_cast<std::size_t>(chunk_flag);
  options.theory_only = theory_only;
  options.sim_backend = sim_backend;
  options.ctmc_max_peers = static_cast<std::int64_t>(ctmc_cap);
  options.threads = threads_flag > 0
                        ? threads_flag
                        : static_cast<int>(std::max(
                              1u, std::thread::hardware_concurrency()));

  if (adaptive_spec.empty()) {
    // The escalation/summary knobs only act in adaptive mode; silently
    // accepting them would look like they took effect.
    if (std::isfinite(sim_threshold)) {
      std::fprintf(stderr,
                   "error: --sim-threshold applies to --adaptive runs "
                   "only\n");
      return 2;
    }
    if (sim_rounds != 4) {
      std::fprintf(stderr,
                   "error: --sim-rounds applies to --adaptive runs only\n");
      return 2;
    }
    if (!summary_out.empty()) {
      std::fprintf(stderr,
                   "error: --summary applies to --adaptive runs only\n");
      return 2;
    }
  }

  const std::string scenario_note =
      options.scenario.empty()
          ? std::string()
          : " [mix " + options.scenario.name + "]";
  const auto t0 = std::chrono::steady_clock::now();

  if (!adaptive_spec.empty()) {
    if (!refine_spec.empty()) {
      // Two different frontier localizers cannot drive one run.
      std::fprintf(stderr,
                   "error: give either --adaptive or --refine, not both\n");
      return 2;
    }
    if (sim_rounds < 1) {
      std::fprintf(stderr, "error: --sim-rounds must be >= 1\n");
      return 2;
    }
    if (std::isfinite(sim_threshold) && theory_only) {
      // No simulator runs under --theory-only, so no CI exists to
      // straddle the threshold.
      std::fprintf(stderr,
                   "error: --sim-threshold applies to simulating runs, "
                   "not --theory-only\n");
      return 2;
    }
    if (std::isfinite(sim_threshold) && replicas < 2) {
      // A single replica has no bootstrap CI; escalation could never
      // trigger, which would look like the boundary was certain.
      std::fprintf(stderr,
                   "error: --sim-threshold needs --replicas >= 2 for a "
                   "bootstrap CI\n");
      return 2;
    }
    AdaptiveOptions adaptive = parse_adaptive(adaptive_spec);
    adaptive.sim_threshold = sim_threshold;
    adaptive.max_sim_rounds = sim_rounds;
    ReportWriter writer(
        out, format == "json" ? ReportFormat::kJson : ReportFormat::kCsv,
        adaptive_columns(grid, options));
    const AdaptiveSummary summary =
        run_adaptive_stream(grid, options, adaptive, writer);
    writer.finish();
    if (!summary_out.empty()) {
      write_text(summary_out,
                 adaptive_summary_json(summary, adaptive, options.replicas));
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // The savings line: what the run cost against what a dense sweep of
    // the same fine lattice would have.
    std::fprintf(stderr,
                 "p2p_sweep: adaptive depth<=%d (tol %g)%s: %zu leaf boxes "
                 "(%zu stable / %zu transient / %zu borderline), %zu of %zu "
                 "dense-equivalent vertices evaluated (%.1f%%), %zu "
                 "escalated, in %.2fs on %d threads\n",
                 adaptive.max_depth, adaptive.tol, scenario_note.c_str(),
                 summary.boxes, summary.stable, summary.transient,
                 summary.borderline, summary.evaluated,
                 summary.dense_equivalent,
                 100.0 * static_cast<double>(summary.evaluated) /
                     static_cast<double>(summary.dense_equivalent),
                 summary.escalated, elapsed, options.threads);
    return 0;
  }

  if (!refine_spec.empty()) {
    if (ctmc_cap > 0) {
      // The frontier table has no ctmc column; silently accepting the
      // flag would look like the cross-check ran.
      std::fprintf(stderr,
                   "error: --ctmc-cap applies to grid mode only, not "
                   "--refine\n");
      return 2;
    }
    if (theory_only) {
      // The frontier's point is simulating at the localized flip;
      // accepting the flag would emit replica columns that never ran.
      std::fprintf(stderr,
                   "error: --theory-only applies to grid mode only, not "
                   "--refine\n");
      return 2;
    }
    if (fluid) {
      // The frontier table carries no fluid_verdict column; accepting
      // the flag would look like the classifier ran.
      std::fprintf(stderr,
                   "error: --fluid applies to grid mode only, not "
                   "--refine\n");
      return 2;
    }
    // Frontier mode streams like the grid: points go to the writer as
    // their row prefix completes, so a very tall coarse grid never
    // holds more than the pool's claim window in memory. The bytes are
    // identical to the retained-points emitter for any
    // --threads/--chunk combination.
    const RefineOptions refine = parse_refine(refine_spec);
    ReportWriter writer(
        out, format == "json" ? ReportFormat::kJson : ReportFormat::kCsv,
        frontier_columns(options));
    const FrontierSummary summary =
        run_frontier_stream(grid, options, refine, writer);
    writer.finish();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::fprintf(stderr,
                 "p2p_sweep: frontier along %s (tol %g)%s: %zu rows, %zu "
                 "bracketed, %d replicas/point in %.2fs on %d threads\n",
                 refine.axis.c_str(), refine.tol, scenario_note.c_str(),
                 summary.rows, summary.bracketed, options.replicas, elapsed,
                 options.threads);
    return 0;
  }

  // Grid mode streams: rows go to the writer as their prefix completes,
  // so a million-cell sweep never holds more than the pool's claim
  // window in memory. The bytes are identical to the old in-memory
  // emitters for any --threads/--chunk combination.
  ReportWriter writer(
      out, format == "json" ? ReportFormat::kJson : ReportFormat::kCsv,
      sweep_columns(options));
  const SweepSummary summary = run_sweep_stream(grid, options, writer);
  writer.finish();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::string replica_note =
      theory_only ? "theory only"
                  : std::to_string(options.replicas) + " replicas";
  std::fprintf(stderr,
               "p2p_sweep: %zu cells%s (%zu stable / %zu transient / %zu "
               "borderline) x %s in %.2fs on %d threads "
               "(%.1f cells/s)\n",
               summary.cells, scenario_note.c_str(), summary.stable,
               summary.transient, summary.borderline, replica_note.c_str(),
               elapsed, options.threads,
               static_cast<double>(summary.cells) / elapsed);
  return 0;
}
