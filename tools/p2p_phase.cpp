// p2p_phase: phase diagrams from archived sweep corpora.
//
// Ingests a grid report (CSV or JSON, file or stdin), validates it
// against the schema the sweep engine emits, and derives the Theorem-1
// phase diagram from the bytes alone: per-row frontier localization
// (closed-form re-bisection of the verdict flip, cross-checkable
// against refine_frontier), a theory-vs-simulation verdict confusion
// matrix with a bootstrap CI, and dependency-free PPM/SVG renderings
// with the frontier overlaid.
//
//   # Render an archived mixed-arrival region and re-derive its
//   # frontier:
//   $ ./p2p_phase --in experiments/mix_example2_region.csv \
//       --ppm phase.ppm --svg phase.svg --summary summary.json \
//       --frontier frontier.csv
//
//   # Pipe a fresh sweep straight in:
//   $ ./p2p_sweep --grid "lambda=0.5:3.0:64;us=0.2:1.7:64" \
//       --theory-only | ./p2p_phase --in - --ppm region.ppm
//
//   # Theorem-14 policy comparison: render where a rarest-first sweep
//   # holds more (red) or fewer (blue) peers than its baseline:
//   $ ./p2p_phase --in experiments/policy_rarest_region.csv \
//       --diff experiments/policy_baseline_region.csv \
//       --diff-ppm diff.ppm --diff-svg diff.svg
//
// Everything derived here is a pure function of the input bytes and
// the flags: no wall clock, caller-seeded bootstrap, per-row
// parallelism that cannot reorder results — so diagrams and summary
// JSON are byte-identical for any --threads, and CI diffs them against
// committed goldens.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/heatmap.hpp"
#include "analysis/phase_diagram.hpp"
#include "engine/csv_reader.hpp"
#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "util/flags.hpp"

namespace {

using p2p::Stability;
using p2p::analysis::PhaseFrontierPoint;
using p2p::analysis::PhaseGrid;
using p2p::analysis::VerdictAgreement;
using p2p::engine::format_number;

/// JSON rendering of one double: format_number's spelling, with the
/// non-finite values mapped to null like the report emitter does.
std::string json_num(double v) {
  const std::string s = format_number(v);
  return (s == "nan" || s == "inf" || s == "-inf") ? "null" : s;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

/// Quoted JSON string — the source path is user input, and a '"' in a
/// filename must not corrupt the summary. One encoder for the whole
/// tree: the report emitter's.
std::string json_str(const std::string& s) {
  std::string out;
  p2p::engine::append_json_string(out, s);
  return out;
}

std::string basename_of(const std::string& path) {
  if (path.empty() || path == "-") return "<stdin>";
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}


/// The summary JSON: the machine-readable digest CI diffs against a
/// committed golden. Key order and number spellings are deterministic.
std::string summary_json(const std::string& source, const PhaseGrid& grid,
                         const std::vector<PhaseFrontierPoint>& frontier,
                         const VerdictAgreement& agreement, double tol) {
  std::size_t verdict_counts[3] = {};
  for (const auto& cell : grid.cells) {
    verdict_counts[static_cast<int>(cell.verdict)] += 1;
  }
  std::size_t bracketed = 0;
  for (const auto& pt : frontier) bracketed += pt.bracketed;

  std::string out = "{\n";
  out += "  \"source\": " + json_str(source) + ",\n";
  out += "  \"x_axis\": " + json_str(grid.x_axis) + ",\n";
  out += "  \"y_axis\": " + json_str(grid.y_axis) + ",\n";
  out += "  \"num_x\": " + std::to_string(grid.num_x()) + ",\n";
  out += "  \"num_y\": " + std::to_string(grid.num_y()) + ",\n";
  out += "  \"cells\": " + std::to_string(grid.cells.size()) + ",\n";
  out += "  \"scenario_types\": [";
  for (std::size_t i = 0; i < grid.scenario.mix.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + p2p::engine::mix_column_name(grid.scenario.mix[i].type) +
           "\"";
  }
  out += "],\n";
  if (!grid.policy.empty()) {
    // Only non-baseline corpora carry the column, so baseline summary
    // bytes are untouched.
    out += "  \"policy\": " + json_str(grid.policy) + ",\n";
  }
  out += "  \"verdicts\": {\"positive-recurrent\": " +
         std::to_string(verdict_counts[0]) +
         ", \"transient\": " + std::to_string(verdict_counts[1]) +
         ", \"borderline\": " + std::to_string(verdict_counts[2]) + "},\n";

  out += "  \"frontier\": {\"tol\": " + json_num(tol) +
         ", \"bracketed_rows\": " + std::to_string(bracketed) +
         ", \"points\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const PhaseFrontierPoint& pt = frontier[i];
    out += "    {\"row\": " + std::to_string(pt.row) +
           ", \"y\": " + json_num(pt.y) +
           ", \"bracketed\": " + json_bool(pt.bracketed) +
           ", \"x_lo\": " + json_num(pt.x_lo) +
           ", \"x_hi\": " + json_num(pt.x_hi) +
           ", \"interpolated\": " + json_num(pt.interpolated) +
           ", \"value\": " + json_num(pt.value) +
           ", \"value_lo\": " + json_num(pt.value_lo) +
           ", \"value_hi\": " + json_num(pt.value_hi) +
           ", \"margin\": " + json_num(pt.margin) + "}";
    out += i + 1 < frontier.size() ? ",\n" : "\n";
  }
  out += "  ]},\n";

  out += "  \"agreement\": {\"cells_with_sim\": " +
         std::to_string(agreement.cells_with_sim) +
         ", \"threshold\": " + json_num(agreement.threshold) +
         ", \"compared\": " + std::to_string(agreement.compared) +
         ", \"agreeing\": " + std::to_string(agreement.agreeing) +
         ", \"agreement\": " + json_num(agreement.agreement) +
         ", \"agreement_lo\": " + json_num(agreement.agreement_lo) +
         ", \"agreement_hi\": " + json_num(agreement.agreement_hi) +
         ", \"confusion\": {";
  const char* verdict_names[3] = {"positive-recurrent", "transient",
                                  "borderline"};
  for (int v = 0; v < 3; ++v) {
    if (v > 0) out += ", ";
    out += std::string("\"") + verdict_names[v] + "\": [" +
           std::to_string(agreement.counts[v][0]) + ", " +
           std::to_string(agreement.counts[v][1]) + "]";
  }
  out += "}}";
  if (agreement.has_fluid) {
    // The three-way digest only exists for corpora with a fluid_verdict
    // column, so pre-fluid summaries keep their bytes.
    out += ",\n  \"fluid\": {\"compared\": " +
           std::to_string(agreement.fluid_compared) +
           ", \"agreeing\": " + std::to_string(agreement.fluid_agreeing) +
           ", \"theory_vs_fluid\": {";
    for (int t = 0; t < 3; ++t) {
      if (t > 0) out += ", ";
      out += std::string("\"") + verdict_names[t] + "\": [" +
             std::to_string(agreement.fluid_counts[t][0]) + ", " +
             std::to_string(agreement.fluid_counts[t][1]) + ", " +
             std::to_string(agreement.fluid_counts[t][2]) + "]";
    }
    out += "}, \"three_way\": {";
    for (int t = 0; t < 3; ++t) {
      if (t > 0) out += ", ";
      out += std::string("\"") + verdict_names[t] + "\": [";
      for (int f = 0; f < 3; ++f) {
        if (f > 0) out += ", ";
        out += "[" + std::to_string(agreement.counts3[t][f][0]) + ", " +
               std::to_string(agreement.counts3[t][f][1]) + "]";
      }
      out += "]";
    }
    out += "}}";
  }
  out += "\n}\n";
  return out;
}

/// The multi-resolution summary JSON: the adaptive archive's digest —
/// leaf counts, depths, finest resolution and the frontier-cover
/// accounting. Key order and number spellings are deterministic.
std::string box_summary_json(const std::string& source,
                             const p2p::analysis::BoxGrid& grid) {
  std::size_t verdict_counts[3] = {};
  std::size_t cover = 0;
  double cover_measure = 0;
  for (const auto& b : grid.boxes) {
    verdict_counts[static_cast<int>(b.verdict)] += 1;
    if (!b.uniform) {
      ++cover;
      cover_measure += b.ext_x * b.ext_y;
    }
  }
  const double window =
      (grid.x_max - grid.x_min) * (grid.y_max - grid.y_min);
  std::string out = "{\n";
  out += "  \"source\": " + json_str(source) + ",\n";
  out += "  \"mode\": \"adaptive\",\n";
  out += "  \"x_axis\": " + json_str(grid.x_axis) + ",\n";
  out += "  \"y_axis\": " + json_str(grid.y_axis) + ",\n";
  out += "  \"boxes\": " + std::to_string(grid.boxes.size()) + ",\n";
  out += "  \"max_depth\": " + std::to_string(grid.max_depth) + ",\n";
  out += "  \"x_min\": " + json_num(grid.x_min) + ",\n";
  out += "  \"x_max\": " + json_num(grid.x_max) + ",\n";
  out += "  \"y_min\": " + json_num(grid.y_min) + ",\n";
  out += "  \"y_max\": " + json_num(grid.y_max) + ",\n";
  out += "  \"min_ext_x\": " + json_num(grid.min_ext_x) + ",\n";
  out += "  \"min_ext_y\": " + json_num(grid.min_ext_y) + ",\n";
  out += "  \"verdicts\": {\"positive-recurrent\": " +
         std::to_string(verdict_counts[0]) +
         ", \"transient\": " + std::to_string(verdict_counts[1]) +
         ", \"borderline\": " + std::to_string(verdict_counts[2]) + "},\n";
  out += "  \"frontier_cover\": {\"boxes\": " + std::to_string(cover) +
         ", \"measure\": " + json_num(cover_measure) +
         ", \"window_fraction\": " + json_num(cover_measure / window) +
         "}\n";
  out += "}\n";
  return out;
}

/// The extracted-frontier table (CSV/JSON via the shared report
/// emitter): one row per grid row, both localizations side by side.
p2p::engine::Table frontier_table(
    const PhaseGrid& grid, const std::vector<PhaseFrontierPoint>& frontier) {
  p2p::engine::Table table({"row", grid.y_axis, "bracketed", "x_lo", "x_hi",
                            "interpolated", "value", "value_lo", "value_hi",
                            "margin"});
  for (const PhaseFrontierPoint& pt : frontier) {
    table.add_row({format_number(static_cast<double>(pt.row)),
                   format_number(pt.y),
                   format_number(pt.bracketed ? 1 : 0),
                   format_number(pt.x_lo), format_number(pt.x_hi),
                   format_number(pt.interpolated), format_number(pt.value),
                   format_number(pt.value_lo), format_number(pt.value_hi),
                   format_number(pt.margin)});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;
  using namespace p2p::engine;
  using namespace p2p::analysis;

  Flags flags(argc, argv);
  const std::string in = flags.get_string(
      "in", "-", "grid report to ingest: CSV or JSON, '-' = stdin");
  const std::string x_axis = flags.get_string(
      "x", "", "x (column) axis name; default: the faster varying axis");
  const std::string y_axis = flags.get_string(
      "y", "", "y (row) axis name; default: the slower varying axis");
  const double tol = flags.get_double(
      "tol", 1e-3, "frontier re-bisection stopping width");
  const int threads_flag = flags.get_int(
      "threads", 0,
      "worker threads for the per-row re-bisection (0 = all hardware "
      "cores); output is byte-identical for any value");
  const int cell_px =
      flags.get_int("cell-px", 12, "square pixels per grid cell");
  const bool no_overlay = flags.get_bool(
      "no-overlay", false, "skip the frontier overlay in renderings");
  const double sim_threshold = flags.get_double(
      "sim-threshold", std::nan(""),
      "occupancy splitting sim cells into transient-looking vs "
      "stable-looking (default: median simulated occupancy)");
  const double confidence = flags.get_double(
      "confidence", 0.95, "confidence level of the agreement bootstrap CI");
  const int resamples =
      flags.get_int("resamples", 256, "agreement bootstrap resamples");
  const int seed = flags.get_int("seed", 1, "agreement bootstrap seed");
  const std::string ppm_out = flags.get_string(
      "ppm", "", "write the phase diagram as binary PPM (P6) here");
  const std::string svg_out =
      flags.get_string("svg", "", "write the phase diagram as SVG here");
  const std::string frontier_out = flags.get_string(
      "frontier", "", "write the extracted frontier as CSV here");
  const std::string summary_out = flags.get_string(
      "summary", "",
      "write the summary JSON here ('-' = stdout; default stdout when no "
      "other output is requested)");
  const std::string diff_in = flags.get_string(
      "diff", "",
      "baseline grid report to diff --in against (same axes and values); "
      "renders the per-cell occupancy difference");
  const std::string diff_ppm_out = flags.get_string(
      "diff-ppm", "", "write the occupancy-difference diagram as PPM here");
  const std::string diff_svg_out = flags.get_string(
      "diff-svg", "", "write the occupancy-difference diagram as SVG here");
  flags.finish();

  if (!diff_in.empty() && diff_ppm_out.empty() && diff_svg_out.empty()) {
    std::fprintf(stderr,
                 "error: --diff needs --diff-ppm and/or --diff-svg to "
                 "render into\n");
    return 2;
  }
  if (diff_in.empty() && (!diff_ppm_out.empty() || !diff_svg_out.empty())) {
    std::fprintf(stderr,
                 "error: --diff-ppm/--diff-svg need --diff to name the "
                 "baseline report\n");
    return 2;
  }

  const int threads =
      threads_flag > 0
          ? threads_flag
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  if (threads_flag < 0) {
    std::fprintf(stderr, "error: --threads must be nonnegative\n");
    return 2;
  }

  // Adaptive (multi-resolution) reports route to the native box
  // renderers; the header's box block is the dispatch. Everything a
  // cartesian grid offers that a box archive cannot answers with a flag
  // error, not silence.
  const auto run_box_mode = [&](const BoxGrid& boxes) -> int {
    if (!frontier_out.empty() || !diff_in.empty()) {
      std::fprintf(stderr,
                   "error: --frontier/--diff apply to cartesian grid "
                   "reports; an adaptive report's frontier is its "
                   "non-uniform leaves\n");
      return 2;
    }
    if (!x_axis.empty() || !y_axis.empty()) {
      std::fprintf(stderr,
                   "error: --x/--y apply to cartesian grid reports; box "
                   "axes come from the box_ext_* columns\n");
      return 2;
    }
    RenderOptions render;
    render.cell_px = cell_px;
    render.overlay_frontier = !no_overlay;
    if (!ppm_out.empty()) {
      write_text(ppm_out, render_boxes_ppm(boxes, render));
    }
    if (!svg_out.empty()) {
      write_text(svg_out, render_boxes_svg(boxes, render));
    }
    const std::string summary = box_summary_json(basename_of(in), boxes);
    if (!summary_out.empty()) {
      write_text(summary_out, summary);
    } else if (ppm_out.empty() && svg_out.empty()) {
      write_text("-", summary);
    }
    std::size_t cover = 0;
    for (const auto& b : boxes.boxes) cover += b.uniform ? 0 : 1;
    std::fprintf(stderr,
                 "p2p_phase: %zu leaf boxes (%s vs %s), depth <= %d, %zu "
                 "frontier-cover, finest %s x %s\n",
                 boxes.boxes.size(), boxes.x_axis.c_str(),
                 boxes.y_axis.c_str(), boxes.max_depth, cover,
                 format_number(boxes.min_ext_x).c_str(),
                 format_number(boxes.min_ext_y).c_str());
    return 0;
  };

  // CSV corpora — named files and piped sweeps alike — stream through
  // CsvReader in O(cells) typed state, never holding the document;
  // only JSON (which the parser needs whole) slurps. report_is_json is
  // the tree's one format sniff, and on stdin it leaves the document
  // readable from its first non-whitespace byte.
  const PhaseGrid grid = [&]() -> PhaseGrid {
    if (report_is_json(in)) {
      const Table table = read_json_file(in);
      if (validate_report_schema(table.columns()).has_boxes) {
        std::exit(run_box_mode(build_box_grid(table)));
      }
      return build_phase_grid(table, x_axis, y_axis);
    }
    CsvReader reader(in);
    if (validate_report_schema(reader.columns()).has_boxes) {
      std::exit(run_box_mode(build_box_grid(reader)));
    }
    return build_phase_grid(reader, x_axis, y_axis);
  }();
  const std::vector<PhaseFrontierPoint> frontier =
      extract_frontier(grid, tol, threads);
  const VerdictAgreement agreement = verdict_agreement(
      grid, sim_threshold, confidence, resamples,
      static_cast<std::uint64_t>(seed));

  RenderOptions render;
  render.cell_px = cell_px;
  render.overlay_frontier = !no_overlay;
  if (!ppm_out.empty()) {
    write_ppm(grid, frontier, render, ppm_out);  // streams scanlines
  }
  if (!svg_out.empty()) {
    write_text(svg_out, render_svg(grid, frontier, render));
  }
  if (!frontier_out.empty()) {
    write_text(frontier_out, frontier_table(grid, frontier).to_csv());
  }
  if (!diff_in.empty()) {
    // The diff reads --in as the variant and --diff as the baseline:
    // red cells mean the variant holds MORE peers than the baseline.
    const PhaseGrid baseline = [&] {
      if (report_is_json(diff_in)) {
        return build_phase_grid(read_json_file(diff_in), x_axis, y_axis);
      }
      CsvReader reader(diff_in);
      return build_phase_grid(reader, x_axis, y_axis);
    }();
    if (!diff_ppm_out.empty()) {
      write_text(diff_ppm_out, render_diff_ppm(baseline, grid, render));
    }
    if (!diff_svg_out.empty()) {
      write_text(diff_svg_out, render_diff_svg(baseline, grid, render));
    }
  }
  const std::string summary = summary_json(basename_of(in), grid, frontier,
                                           agreement, tol);
  if (!summary_out.empty()) {
    write_text(summary_out, summary);
  } else if (ppm_out.empty() && svg_out.empty() && frontier_out.empty()) {
    write_text("-", summary);
  }

  std::size_t bracketed = 0;
  for (const auto& pt : frontier) bracketed += pt.bracketed;
  std::fprintf(stderr,
               "p2p_phase: %zu x %zu grid (%s vs %s), %zu/%zu rows "
               "bracketed, %zu sim cells, agreement %s\n",
               grid.num_x(), grid.num_y(), grid.x_axis.c_str(),
               grid.y_axis.c_str(), bracketed, grid.num_y(),
               agreement.cells_with_sim,
               format_number(agreement.agreement).c_str());
  return 0;
}
