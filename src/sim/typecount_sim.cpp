#include "sim/typecount_sim.hpp"

#include "ctmc/event_rates.hpp"

namespace p2p {

namespace {
/// n^2 and x_a * (n - sup(a)) terms below must stay exact in int64:
/// n <= 2e9 keeps n^2 <= 4e18 < 2^63.
constexpr std::int64_t kMaxPopulation = 2'000'000'000;
}  // namespace

TypeCountSim::TypeCountSim(SwarmParams params, TypeCountSimOptions options)
    : params_(std::move(params)),
      options_(options),
      rng_(options.rng_seed),
      full_mask_((std::uint64_t{1} << params_.num_pieces()) - 1),
      state_(params_.num_pieces()),
      peers_by_type_(std::size_t{1} << params_.num_pieces()),
      sub_(std::size_t{1} << params_.num_pieces(), 0),
      sup_(std::size_t{1} << params_.num_pieces(), 0),
      arrival_times_(std::size_t{1} << params_.num_pieces()) {
  P2P_ASSERT(options_.tracked_piece >= 0 &&
             options_.tracked_piece < params_.num_pieces());
  arrival_weights_.reserve(params_.arrivals().size());
  for (const auto& a : params_.arrivals()) {
    arrival_weights_.push_back(a.rate);
    lambda_total_ += a.rate;
  }
}

void TypeCountSim::bump(std::uint64_t mask, std::int64_t delta) {
  if (delta == 0) return;
  // Pair-sum first: the identity uses the *old* subset/superset sums.
  pair_sum_s_ += delta * (sub_[mask] + sup_[mask]) + delta * delta;
  // Every a subseteq mask gains delta supersets-weighted peers...
  std::uint64_t a = mask;
  while (true) {
    sup_[a] += delta;
    if (a == 0) break;
    a = (a - 1) & mask;
  }
  // ...and every b superseteq mask gains delta subset-weighted peers.
  const std::uint64_t comp = full_mask_ & ~mask;
  std::uint64_t extra = 0;
  do {
    sub_[mask | extra] += delta;
    extra = (extra - comp) & comp;
  } while (extra != 0);
  state_.add(PieceSet(mask), delta);
  peers_by_type_.update(static_cast<std::size_t>(mask), delta);
  P2P_ASSERT_MSG(state_.total_peers() <= kMaxPopulation,
                 "TypeCountSim supports at most 2e9 concurrent peers");
}

double TypeCountSim::take_arrival_time(std::uint64_t mask) {
  std::vector<double>& times = arrival_times_[mask];
  P2P_ASSERT(!times.empty());
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(times.size())));
  const double t = times[idx];
  times[idx] = times.back();
  times.pop_back();
  return t;
}

void TypeCountSim::inject_peers(PieceSet type, std::int64_t count) {
  P2P_ASSERT(count >= 0);
  if (count == 0) return;
  if (params_.immediate_departure() && type.mask() == full_mask_) {
    // Complete peers depart the instant they enter (matching
    // SwarmSim::add_peer): they never join the population.
    counters_.departures += count;
    return;
  }
  bump(type.mask(), count);
  arrival_times_[type.mask()].insert(arrival_times_[type.mask()].end(),
                                     static_cast<std::size_t>(count),
                                     occupancy_.now());
}

void TypeCountSim::complete_download(std::uint64_t c_mask, PieceSet useful) {
  P2P_ASSERT(!useful.empty());
  const int piece = useful.nth(static_cast<int>(
      rng_.uniform_int(static_cast<std::uint64_t>(useful.size()))));
  const std::uint64_t next = c_mask | (std::uint64_t{1} << piece);
  ++counters_.downloads;
  if (piece == options_.tracked_piece) ++counters_.downloads_of_tracked;
  const double arrived = take_arrival_time(c_mask);
  bump(c_mask, -1);
  if (params_.immediate_departure() && next == full_mask_) {
    ++counters_.departures;
    sojourn_.add(occupancy_.now() - arrived);
    return;
  }
  bump(next, +1);
  arrival_times_[next].push_back(arrived);
}

void TypeCountSim::do_arrival() {
  const std::size_t idx = rng_.discrete(arrival_weights_);
  const PieceSet type = params_.arrivals()[idx].type;
  ++counters_.arrivals;
  if (!type.contains(options_.tracked_piece)) {
    ++counters_.arrivals_without_tracked;
  }
  if (params_.immediate_departure() && type.mask() == full_mask_) {
    ++counters_.departures;  // unreachable while lambda_F = 0; parity
    return;
  }
  bump(type.mask(), +1);
  arrival_times_[type.mask()].push_back(occupancy_.now());
}

void TypeCountSim::do_seed_tick() {
  // Conditioned on non-silent, the target is uniform among non-seed
  // peers. Slot F is the tree's last index, so a dart below n - x_F
  // cannot land on it.
  const std::int64_t eligible = state_.total_peers() - state_.seeds();
  P2P_ASSERT(eligible >= 1);
  const auto c_mask = static_cast<std::uint64_t>(peers_by_type_.find(
      static_cast<std::int64_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(eligible)))));
  const PieceSet needed =
      PieceSet(c_mask).complement(params_.num_pieces());
  ++counters_.seed_downloads;
  complete_download(c_mask, needed);
}

void TypeCountSim::do_peer_tick() {
  const std::int64_t n = state_.total_peers();
  const std::int64_t nonsilent = n * n - pair_sum_s_;
  P2P_ASSERT(nonsilent >= 1);
  std::uint64_t a_mask = 0;
  std::uint64_t b_mask = 0;
  if (2 * nonsilent >= n * n) {
    // Acceptance >= 1/2: rejection against the unconditioned pair law
    // (independent uniform peers; i = j allowed and silent, matching the
    // per-peer model's independent uploader/target draws).
    while (true) {
      a_mask = static_cast<std::uint64_t>(peers_by_type_.sample(rng_));
      b_mask = static_cast<std::uint64_t>(peers_by_type_.sample(rng_));
      if ((a_mask & ~b_mask) != 0) break;
    }
  } else {
    // Exact inversion over types: uploader type a with weight
    // x_a * (n - sup(a)) (its non-silent targets), then a uniform
    // non-superset target. O(2^K), but this branch runs exactly when
    // non-silent events are rare.
    auto r = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(nonsilent)));
    bool found = false;
    for (std::uint64_t m = 0; m <= full_mask_; ++m) {
      const std::int64_t xa = state_.count(m);
      if (xa == 0) continue;
      const std::int64_t w = xa * (n - sup_[m]);
      if (r < w) {
        a_mask = m;
        found = true;
        break;
      }
      r -= w;
    }
    P2P_ASSERT(found);
    auto r2 = static_cast<std::int64_t>(rng_.uniform_int(
        static_cast<std::uint64_t>(n - sup_[a_mask])));
    found = false;
    for (std::uint64_t m = 0; m <= full_mask_; ++m) {
      if ((m & a_mask) == a_mask) continue;  // b superseteq a: silent
      const std::int64_t xb = state_.count(m);
      if (r2 < xb) {
        b_mask = m;
        found = true;
        break;
      }
      r2 -= xb;
    }
    P2P_ASSERT(found);
  }
  const PieceSet useful = PieceSet(a_mask).minus(PieceSet(b_mask));
  complete_download(b_mask, useful);
}

void TypeCountSim::do_seed_departure() {
  P2P_ASSERT(state_.seeds() >= 1);
  const double arrived = take_arrival_time(full_mask_);
  bump(full_mask_, -1);
  ++counters_.departures;
  sojourn_.add(occupancy_.now() - arrived);
}

TypeCountSim::EffectiveRates TypeCountSim::effective_rates() const {
  const std::int64_t n = state_.total_peers();
  const std::int64_t seeds = state_.seeds();
  const AggregateRates base =
      aggregate_event_rates(params_.view(), n, seeds);
  EffectiveRates rates;
  rates.arrival = base.arrival;
  rates.depart = base.depart;
  if (n >= 1) {
    rates.seed = params_.seed_rate() * static_cast<double>(n - seeds) /
                 static_cast<double>(n);
    rates.peer = params_.contact_rate() *
                 static_cast<double>(n * n - pair_sum_s_) /
                 static_cast<double>(n);
  }
  rates.nominal_total = base.total();
  return rates;
}

void TypeCountSim::dispatch(const EffectiveRates& rates) {
  const double weights[4] = {rates.arrival, rates.seed, rates.peer,
                             rates.depart};
  switch (rng_.discrete(weights)) {
    case 0:
      do_arrival();
      break;
    case 1:
      do_seed_tick();
      break;
    case 2:
      do_peer_tick();
      break;
    case 3:
      do_seed_departure();
      break;
  }
}

bool TypeCountSim::step() {
  const EffectiveRates rates = effective_rates();
  const double total = rates.total();
  if (total <= 0) return false;
  occupancy_.advance(occupancy_.now() + rng_.exponential(total),
                     state_.total_peers());
  nominal_events_ += rates.nominal_total / total;
  ++effective_steps_;
  dispatch(rates);
  return true;
}

void TypeCountSim::run_until(double t_end) {
  while (occupancy_.now() < t_end) {
    if (!step()) break;
  }
}

void TypeCountSim::run_sampled(double t_end, double dt,
                               const std::function<void(double)>& fn) {
  // Pre-event sampling: the holding time is drawn first, samples falling
  // strictly before the event are emitted, then the event is applied.
  double next_sample = occupancy_.now() + dt;
  while (occupancy_.now() < t_end) {
    const EffectiveRates rates = effective_rates();
    const double total = rates.total();
    if (total <= 0) break;
    const double event_time = occupancy_.now() + rng_.exponential(total);
    while (next_sample <= t_end && next_sample < event_time) {
      fn(next_sample);
      next_sample += dt;
    }
    occupancy_.advance(event_time, state_.total_peers());
    nominal_events_ += rates.nominal_total / total;
    ++effective_steps_;
    dispatch(rates);
  }
  while (next_sample <= t_end) {
    fn(next_sample);
    next_sample += dt;
  }
}

}  // namespace p2p
