#include "sim/event_log.hpp"

#include <cctype>
#include <cstdlib>
#include <memory>

#include "engine/parse_util.hpp"
#include "engine/report.hpp"
#include "rand/rng.hpp"
#include "sim/swarm.hpp"
#include "sim/typecount_sim.hpp"

namespace p2p {

namespace {

using engine::format_number_into;

[[noreturn]] void bad_line(std::size_t line_number, const std::string& line,
                           const std::string& reason) {
  detail::assert_fail("parse_event_line", __FILE__, __LINE__,
                      "event log line " + std::to_string(line_number) + ": " +
                          reason + " (got \"" + line + "\")");
}

/// Nonnegative decimal integer, full consumption, no signs/whitespace.
std::uint64_t parse_uint_field(const std::string& cell,
                               std::size_t line_number,
                               const std::string& line, const char* what) {
  if (cell.empty()) bad_line(line_number, line, std::string(what) + " missing");
  for (const char c : cell) {
    if (c < '0' || c > '9') {
      bad_line(line_number, line,
               std::string(what) + " must be a nonnegative decimal integer");
    }
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(cell.c_str(), &end, 10);
  if (end != cell.c_str() + cell.size()) {
    bad_line(line_number, line,
             std::string(what) + " must be a nonnegative decimal integer");
  }
  return v;
}

SwarmEventKind parse_kind(const std::string& cell, std::size_t line_number,
                          const std::string& line) {
  if (cell == "arrive") return SwarmEventKind::kArrive;
  if (cell == "depart") return SwarmEventKind::kDepart;
  if (cell == "piece") return SwarmEventKind::kPiece;
  if (cell == "seed") return SwarmEventKind::kSeed;
  bad_line(line_number, line, "unknown event kind \"" + cell + "\"");
}

double parse_time_field(const std::string& cell, std::size_t line_number,
                        const std::string& line) {
  char* end = nullptr;
  const double t = std::strtod(cell.c_str(), &end);
  if (!engine::plain_decimal_shape(cell) ||
      end != cell.c_str() + cell.size() || !std::isfinite(t) || t < 0) {
    bad_line(line_number, line,
             "timestamp must be a finite nonnegative decimal");
  }
  return t;
}

SwarmEvent finish_event(double t, SwarmEventKind kind, std::uint64_t type,
                        bool has_piece, std::uint64_t piece,
                        std::size_t line_number, const std::string& line,
                        int num_pieces) {
  SwarmEvent event;
  event.t = t;
  event.kind = kind;
  event.type = type;
  const std::uint64_t full = PieceSet::full(num_pieces).mask();
  if (type > full) {
    bad_line(line_number, line,
             "type mask exceeds the K = " + std::to_string(num_pieces) +
                 " piece collection");
  }
  const bool transfer = kind == SwarmEventKind::kPiece ||
                        kind == SwarmEventKind::kSeed;
  if (transfer != has_piece) {
    bad_line(line_number, line,
             transfer ? "transfer events need a piece index"
                      : "arrive/depart events carry no piece index");
  }
  if (transfer) {
    if (piece >= static_cast<std::uint64_t>(num_pieces)) {
      bad_line(line_number, line, "piece index outside [0, K)");
    }
    event.piece = static_cast<int>(piece);
    if (PieceSet(type).contains(event.piece)) {
      bad_line(line_number, line, "target already holds the piece");
    }
  }
  return event;
}

SwarmEvent parse_event_csv(const std::string& line, std::size_t line_number,
                           int num_pieces) {
  const std::vector<std::string> cells = engine::split_list(line, ',');
  if (cells.size() != 4) {
    bad_line(line_number, line, "expected 4 cells (t,event,type,piece)");
  }
  const double t = parse_time_field(cells[0], line_number, line);
  const SwarmEventKind kind = parse_kind(cells[1], line_number, line);
  const std::uint64_t type =
      parse_uint_field(cells[2], line_number, line, "type mask");
  const bool has_piece = !cells[3].empty();
  const std::uint64_t piece =
      has_piece ? parse_uint_field(cells[3], line_number, line, "piece index")
                : 0;
  return finish_event(t, kind, type, has_piece, piece, line_number, line,
                      num_pieces);
}

/// Strict scanner for the fixed-shape JSON lines append_event_json
/// emits: {"t": T, "event": "K", "type": M[, "piece": P]}. Whitespace
/// between tokens is free; keys, their order and the value shapes are
/// not — an event feed is a machine protocol, and lenient parsing would
/// let a malformed producer drift silently.
class JsonLineScanner {
 public:
  JsonLineScanner(const std::string& line, std::size_t line_number)
      : line_(line), line_number_(line_number) {}

  void expect(char c) {
    skip_space();
    if (pos_ >= line_.size() || line_[pos_] != c) {
      bad_line(line_number_, line_,
               std::string("expected '") + c + "' in JSON event");
    }
    ++pos_;
  }

  void key(const char* name) {
    expect('"');
    const std::string want(name);
    if (line_.compare(pos_, want.size(), want) != 0 ||
        pos_ + want.size() >= line_.size() ||
        line_[pos_ + want.size()] != '"') {
      bad_line(line_number_, line_,
               "expected key \"" + want + "\" in JSON event");
    }
    pos_ += want.size() + 1;
    expect(':');
  }

  std::string bare_token() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ',' && line_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      bad_line(line_number_, line_, "expected a value in JSON event");
    }
    return line_.substr(start, pos_ - start);
  }

  std::string quoted_token() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != '"') ++pos_;
    if (pos_ >= line_.size()) {
      bad_line(line_number_, line_, "unterminated string in JSON event");
    }
    const std::string s = line_.substr(start, pos_ - start);
    ++pos_;
    return s;
  }

  bool peek_is(char c) {
    skip_space();
    return pos_ < line_.size() && line_[pos_] == c;
  }

  void expect_end() {
    skip_space();
    if (pos_ != line_.size()) {
      bad_line(line_number_, line_, "trailing bytes after JSON event");
    }
  }

 private:
  void skip_space() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& line_;
  std::size_t line_number_;
  std::size_t pos_ = 0;
};

SwarmEvent parse_event_json(const std::string& line, std::size_t line_number,
                            int num_pieces) {
  JsonLineScanner scan(line, line_number);
  scan.expect('{');
  scan.key("t");
  const double t = parse_time_field(scan.bare_token(), line_number, line);
  scan.expect(',');
  scan.key("event");
  const SwarmEventKind kind =
      parse_kind(scan.quoted_token(), line_number, line);
  scan.expect(',');
  scan.key("type");
  const std::uint64_t type = parse_uint_field(scan.bare_token(), line_number,
                                              line, "type mask");
  bool has_piece = false;
  std::uint64_t piece = 0;
  if (scan.peek_is(',')) {
    scan.expect(',');
    scan.key("piece");
    piece = parse_uint_field(scan.bare_token(), line_number, line,
                             "piece index");
    has_piece = true;
  }
  scan.expect('}');
  scan.expect_end();
  return finish_event(t, kind, type, has_piece, piece, line_number, line,
                      num_pieces);
}

}  // namespace

const char* to_string(SwarmEventKind kind) {
  switch (kind) {
    case SwarmEventKind::kArrive:
      return "arrive";
    case SwarmEventKind::kDepart:
      return "depart";
    case SwarmEventKind::kPiece:
      return "piece";
    case SwarmEventKind::kSeed:
      return "seed";
  }
  return "?";
}

const std::vector<std::string>& event_log_columns() {
  static const std::vector<std::string> columns = {"t", "event", "type",
                                                   "piece"};
  return columns;
}

std::string event_log_csv_header() { return "t,event,type,piece\n"; }

void append_event_csv(std::string& out, const SwarmEvent& event) {
  format_number_into(out, event.t);
  out += ',';
  out += to_string(event.kind);
  out += ',';
  out += std::to_string(event.type);
  out += ',';
  if (event.piece >= 0) out += std::to_string(event.piece);
  out += '\n';
}

void append_event_json(std::string& out, const SwarmEvent& event) {
  out += "{\"t\": ";
  format_number_into(out, event.t);
  out += ", \"event\": \"";
  out += to_string(event.kind);
  out += "\", \"type\": ";
  out += std::to_string(event.type);
  if (event.piece >= 0) {
    out += ", \"piece\": ";
    out += std::to_string(event.piece);
  }
  out += '}';
  out += '\n';
}

SwarmEvent parse_event_line(const std::string& line, std::size_t line_number,
                            int num_pieces) {
  P2P_ASSERT_MSG(num_pieces >= 1 && num_pieces <= 16,
                 "event logs support K in [1, 16]");
  if (!line.empty() && line.front() == '{') {
    return parse_event_json(line, line_number, num_pieces);
  }
  return parse_event_csv(line, line_number, num_pieces);
}

TypeCountState record_events(SwarmBackend& backend, double t_end,
                             double t_offset, const SwarmEventSink& emit) {
  TypeCountState prev = backend.type_counts();
  const int k = prev.num_pieces();
  const std::uint64_t full = PieceSet::full(k).mask();
  SwarmCounters prev_counters = backend.counters();

  while (true) {
    if (!backend.step()) break;
    if (backend.now() > t_end) break;  // discarded: prev is the t_end state
    const TypeCountState cur = backend.type_counts();
    const SwarmCounters& counters = backend.counters();
    const double t = t_offset + backend.now();

    // At most one type lost a peer and one gained one per event.
    std::uint64_t minus_mask = 0, plus_mask = 0;
    bool has_minus = false, has_plus = false;
    for (std::uint64_t m = 0; m <= full; ++m) {
      const std::int64_t delta = cur.count(m) - prev.count(m);
      if (delta == 0) continue;
      P2P_ASSERT(delta == 1 || delta == -1);
      if (delta < 0) {
        P2P_ASSERT(!has_minus);
        minus_mask = m;
        has_minus = true;
      } else {
        P2P_ASSERT(!has_plus);
        plus_mask = m;
        has_plus = true;
      }
    }

    const std::int64_t d_arrivals = counters.arrivals - prev_counters.arrivals;
    const std::int64_t d_departures =
        counters.departures - prev_counters.departures;
    const std::int64_t d_downloads =
        counters.downloads - prev_counters.downloads;
    const std::int64_t d_seed =
        counters.seed_downloads - prev_counters.seed_downloads;

    if (d_downloads == 1) {
      P2P_ASSERT(has_minus);
      int piece;
      if (has_plus) {
        const std::uint64_t bit = plus_mask ^ minus_mask;
        P2P_ASSERT(PieceSet(bit).size() == 1 &&
                   (plus_mask | minus_mask) == plus_mask);
        piece = PieceSet(bit).nth(0);
      } else {
        // Immediate departure: the completed peer left in the same
        // event, so the download is the target's unique missing piece.
        const PieceSet missing = PieceSet(minus_mask).complement(k);
        P2P_ASSERT(missing.size() == 1 && d_departures == 1);
        piece = missing.nth(0);
      }
      emit({t, d_seed == 1 ? SwarmEventKind::kSeed : SwarmEventKind::kPiece,
            minus_mask, piece});
      if (d_departures == 1) {
        emit({t, SwarmEventKind::kDepart,
              minus_mask | (std::uint64_t{1} << piece), -1});
      }
    } else if (d_arrivals == 1) {
      const std::uint64_t type = has_plus ? plus_mask : full;
      emit({t, SwarmEventKind::kArrive, type, -1});
      if (d_departures == 1) {
        // A full-type arrival under immediate departure never joins.
        P2P_ASSERT(!has_plus && !has_minus);
        emit({t, SwarmEventKind::kDepart, full, -1});
      }
    } else if (d_departures == 1) {
      P2P_ASSERT(has_minus && !has_plus && minus_mask == full);
      emit({t, SwarmEventKind::kDepart, full, -1});
    } else {
      // Silent contact: nothing moved, nothing logged.
      P2P_ASSERT(!has_minus && !has_plus);
    }

    prev = cur;
    prev_counters = counters;
  }
  return prev;
}

void generate_event_log(const std::vector<LogSegment>& segments,
                        const EventLogOptions& options,
                        const SwarmEventSink& emit) {
  P2P_ASSERT_MSG(!segments.empty(), "event log needs at least one segment");
  const int k = segments.front().params.num_pieces();
  P2P_ASSERT_MSG(k <= 16, "event logs support K in [1, 16]");
  TypeCountState carried(k);
  double offset = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const LogSegment& segment = segments[i];
    P2P_ASSERT_MSG(segment.params.num_pieces() == k,
                   "all log segments must share the piece count K");
    P2P_ASSERT_MSG(segment.duration > 0 && std::isfinite(segment.duration),
                   "log segment durations must be positive and finite");
    P2P_ASSERT_MSG(!(segment.params.immediate_departure() &&
                     carried.count(PieceSet::full(k)) > 0),
                   "cannot carry peer seeds into an immediate-departure "
                   "segment (they could never depart in the log)");
    // Independent per-segment streams from (seed, segment index).
    std::uint64_t sm = options.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    const std::uint64_t segment_seed = splitmix64(sm);

    std::unique_ptr<SwarmBackend> backend;
    if (options.backend == EventLogBackend::kTypeCount) {
      TypeCountSimOptions sim_options;
      sim_options.rng_seed = segment_seed;
      backend = std::make_unique<TypeCountSim>(segment.params, sim_options);
    } else {
      SwarmSimOptions sim_options;
      sim_options.rng_seed = segment_seed;
      backend = std::make_unique<SwarmSim>(segment.params, sim_options);
    }
    for (std::uint64_t m = 0; m < carried.num_types(); ++m) {
      if (carried.count(m) > 0) {
        backend->inject_peers(PieceSet(m), carried.count(m));
      }
    }
    carried = record_events(*backend, segment.duration, offset, emit);
    offset += segment.duration;
  }
}

}  // namespace p2p
