#include "sim/stats.hpp"

namespace p2p {

LinearFit linear_fit(const TimeSeries& series, std::size_t first,
                     std::size_t last) {
  P2P_ASSERT(last <= series.size());
  P2P_ASSERT(last - first >= 2);
  const auto n = static_cast<double>(last - first);
  double sx = 0, sy = 0;
  for (std::size_t i = first; i < last; ++i) {
    sx += series.t[i];
    sy += series.v[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0;
  for (std::size_t i = first; i < last; ++i) {
    const double dx = series.t[i] - mx;
    sxx += dx * dx;
    sxy += dx * (series.v[i] - my);
  }
  LinearFit fit;
  P2P_ASSERT(sxx > 0);
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = first; i < last; ++i) {
    const double resid =
        series.v[i] - (fit.intercept + fit.slope * series.t[i]);
    ss_res += resid * resid;
    const double dy = series.v[i] - my;
    ss_tot += dy * dy;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  if (last - first > 2) {
    fit.slope_stderr = std::sqrt(ss_res / (n - 2) / sxx);
  }
  return fit;
}

LinearFit tail_fit(const TimeSeries& series, double tail_fraction) {
  P2P_ASSERT(tail_fraction > 0 && tail_fraction <= 1);
  const auto first = static_cast<std::size_t>(
      static_cast<double>(series.size()) * (1.0 - tail_fraction));
  return linear_fit(series, first, series.size());
}

}  // namespace p2p
