// TypeCountSim: million-peer simulation of the Zhu–Hajek model through
// the exchangeable type-count collapse.
//
// Peers holding the same PieceSet are exchangeable (nothing in the base
// model distinguishes them), so the swarm is stored as counts x_C per
// type instead of per-peer records, with events sampled by type through
// an O(K) binary-indexed tree (rand/weighted_index.hpp). Same law as
// SwarmSim with RandomUsefulPolicy, eta = 1 and homogeneous rates — the
// regime where the law itself is type-granular. Tests pin the two
// backends (and ctmc's samplers) against each other distributionally.
//
// The million-peer speedup comes from integrating silent events out
// analytically instead of materializing them. With
//
//   S = sum over ordered type pairs a subseteq b of x_a * x_b
//
// the number of ordered peer pairs (i, j) where i cannot help j is
// exactly S (drawing i = j is allowed and always silent, matching the
// per-peer model's independent uploader/target draws). The chain with
// silent self-loops removed has effective rates
//
//   R_eff = lambda_total + Us * (n - x_F)/n * 1{n >= 1}
//         + mu * (n^2 - S)/n + gamma * x_F
//
// and identical law: holding times are Exp(R_eff) and every dispatched
// event changes the state. S is maintained in O(1) per count change from
// incrementally updated subset/superset sums
//
//   sub(c)  = sum over a subseteq c of x_a
//   sup(c)  = sum over b superseteq c of x_b
//   delta S = delta * (sub(c) + sup(c)) + delta^2   (old sums),
//
// each walk costing O(2^K) worst case per *state change* — but state
// changes are only the non-silent events, which near the one-club regime
// are rarer than nominal events by a factor of order n. Non-silent
// uploader/target pairs are drawn by rejection when the acceptance
// probability (n^2 - S)/n^2 >= 1/2 (expected <= 2 tree samples) and by
// exact inversion over types otherwise (that branch fires exactly when
// non-silent events are rare, so its O(2^K) scan is off the hot path).
//
// Sojourn times stay exact under exchangeability: each type keeps its
// members' arrival times, and the member affected by an event is a
// uniformly random one (swap-remove), which is the per-peer law
// conditioned on the type. A_t / D_t / occupancy are simple counters and
// integrals unaffected by silent-event aggregation; silent contacts are
// never materialized, so counters().silent_contacts stays 0.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/model.hpp"
#include "core/state.hpp"
#include "rand/rng.hpp"
#include "rand/weighted_index.hpp"
#include "sim/backend.hpp"

namespace p2p {

struct TypeCountSimOptions {
  /// Piece whose scarcity drives the A_t / D_t counting processes.
  int tracked_piece = 0;
  std::uint64_t rng_seed = 1;
};

class TypeCountSim final : public SwarmBackend {
 public:
  explicit TypeCountSim(SwarmParams params, TypeCountSimOptions options = {});

  double now() const override { return occupancy_.now(); }
  std::int64_t total_peers() const override { return state_.total_peers(); }
  std::int64_t peer_seeds() const override { return state_.seeds(); }
  const SwarmParams& params() const { return params_; }
  const TypeCountState& state() const { return state_; }

  void inject_peers(PieceSet type, std::int64_t count) override;

  bool step() override;
  void run_until(double t_end) override;
  /// Samples `fn(t)` every `dt` of simulated time up to t_end (pre-event
  /// state, mirroring SwarmSim::run_sampled).
  void run_sampled(double t_end, double dt,
                   const std::function<void(double)>& fn);

  double time_averaged_peers() const override {
    return occupancy_.time_average();
  }
  double occupancy_integral() const override { return occupancy_.integral(); }
  const OnlineStats& sojourn_stats() const override { return sojourn_; }
  const SwarmCounters& counters() const override { return counters_; }
  TypeCountState type_counts() const override { return state_; }

  /// Unbiased estimate of the *nominal* event count: the events an
  /// event-per-silent-contact sampler (SwarmSim, TypeCountChain) would
  /// have drawn over the same simulated span. Each effective step adds
  /// R_nominal / R_eff, the mean number of nominal events per effective
  /// one under Poisson thinning. This is the events/sec numerator that
  /// makes backend throughputs comparable (bench/bench_swarm.cpp).
  double nominal_events() const { return nominal_events_; }
  /// Materialized (non-silent) events actually dispatched.
  std::int64_t effective_steps() const { return effective_steps_; }

 private:
  /// Applies x_c += delta, keeping the Fenwick tree, the pair sum S and
  /// the subset/superset sums consistent. O(2^|c|) + O(2^(K-|c|)).
  void bump(std::uint64_t mask, std::int64_t delta);

  /// Uniform random member's arrival time of type `mask`, removed
  /// (swap-remove; exchangeability makes any member equivalent in law).
  double take_arrival_time(std::uint64_t mask);

  /// Target of type c downloads a uniform piece of `useful`.
  void complete_download(std::uint64_t c_mask, PieceSet useful);

  void do_arrival();
  /// Seed tick conditioned on non-silent: target is a uniform non-seed.
  void do_seed_tick();
  /// Peer tick conditioned on non-silent: ordered pair (uploader a,
  /// target b) with a not subseteq b, probability proportional to
  /// x_a * x_b.
  void do_peer_tick();
  void do_seed_departure();

  struct EffectiveRates {
    double arrival = 0, seed = 0, peer = 0, depart = 0;
    double nominal_total = 0;
    double total() const { return arrival + seed + peer + depart; }
  };
  EffectiveRates effective_rates() const;
  void dispatch(const EffectiveRates& rates);

  SwarmParams params_;
  TypeCountSimOptions options_;
  Rng rng_;
  std::uint64_t full_mask_;

  TypeCountState state_;
  WeightedIndex<std::int64_t> peers_by_type_;
  std::vector<std::int64_t> sub_;  // sub_[c] = sum over a subseteq c of x_a
  std::vector<std::int64_t> sup_;  // sup_[c] = sum over b superseteq c of x_b
  std::int64_t pair_sum_s_ = 0;    // S = sum over a subseteq b of x_a * x_b
  std::vector<std::vector<double>> arrival_times_;
  std::vector<double> arrival_weights_;
  double lambda_total_ = 0;

  SwarmCounters counters_;
  OccupancyIntegral occupancy_;
  OnlineStats sojourn_;
  double nominal_events_ = 0;
  std::int64_t effective_steps_ = 0;
};

}  // namespace p2p
