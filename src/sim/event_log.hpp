// Swarm event logs: a SwarmBackend run serialized as a replayable stream
// of discrete events — the wire format the live stability monitor
// (service/monitor.hpp) ingests and the ground-truth generator the test
// layer replays.
//
// Four event kinds cover every state change of the Zhu–Hajek chain:
//
//   arrive  a peer enters, carrying its arrival type
//   depart  a peer leaves (a peer seed's Exp(gamma) dwell expiring, or
//           the immediate departure after a completing download)
//   piece   a peer-to-peer transfer: the target's type BEFORE the
//           download plus the piece index it received
//   seed    the same transfer, uploaded by the fixed seed (the Us term)
//
// Every line carries an explicit timestamp — there is no wall clock
// anywhere in this layer or in the monitor, so a recorded log replays
// byte-identically forever. Two serializations share one grammar:
//
//   CSV (with header):   t,event,type,piece
//                        0.125,arrive,0,
//                        0.75,piece,1,1
//   JSON lines:          {"t": 0.125, "event": "arrive", "type": 0}
//                        {"t": 0.75, "event": "piece", "type": 1, "piece": 1}
//
// `type` is the peer's piece-set bitmask (decimal); `piece` is present
// exactly for the transfer kinds. Timestamps are format_number's
// shortest-round-trip decimals, so parsing reproduces the emitting
// backend's doubles bit for bit. parse_event_line is strict and aborts
// echoing the offending line verbatim (the csv_reader convention):
// event logs are either recorded artifacts or live feeds from a shim,
// and a malformed line is a bug to surface, never data to repair.
//
// The emitter drives any SwarmBackend: it steps the simulator and diffs
// the type-count state plus the counting processes after each event, so
// the per-peer and the type-count backend produce logs in the same
// grammar (silent contacts change nothing and emit nothing). A
// piecewise-parameter schedule generates frontier-crossing traces with
// labeled ground truth: each segment runs under its own SwarmParams, and
// the population carries across the boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/state.hpp"
#include "sim/backend.hpp"

namespace p2p {

enum class SwarmEventKind { kArrive, kDepart, kPiece, kSeed };

const char* to_string(SwarmEventKind kind);

struct SwarmEvent {
  double t = 0;
  SwarmEventKind kind = SwarmEventKind::kArrive;
  /// arrive/depart: the peer's type. piece/seed: the target's type
  /// before the download.
  std::uint64_t type = 0;
  /// Downloaded piece index for piece/seed; -1 otherwise.
  int piece = -1;

  bool operator==(const SwarmEvent&) const = default;
};

/// The CSV schema: {"t", "event", "type", "piece"}.
const std::vector<std::string>& event_log_columns();
/// "t,event,type,piece\n" — the header line every CSV event log starts
/// with (and the byte signature the corpus tests and the monitor use to
/// tell an event log from a sweep report).
std::string event_log_csv_header();

/// One '\n'-terminated CSV record (piece cell empty for arrive/depart).
void append_event_csv(std::string& out, const SwarmEvent& event);
/// One '\n'-terminated JSON-lines object.
void append_event_json(std::string& out, const SwarmEvent& event);

/// Parses one event line — a CSV record (no header) or a JSON-lines
/// object, auto-detected by the leading '{'. Aborts echoing the
/// 1-based `line_number` and the line verbatim on: malformed numbers,
/// unknown event kinds, a type mask outside [0, 2^num_pieces), a
/// missing/extra piece field, a piece index outside [0, num_pieces), or
/// a transfer delivering a piece the target already holds.
SwarmEvent parse_event_line(const std::string& line, std::size_t line_number,
                            int num_pieces);

using SwarmEventSink = std::function<void(const SwarmEvent&)>;

/// Steps `backend` until its clock passes `t_end`, emitting one event
/// per state change with timestamps shifted by `t_offset`. An event
/// drawn past t_end is discarded, so the returned type-count state is
/// the population exactly at t_end — the state a follow-on segment must
/// be injected with. A download that completes a peer under immediate
/// departure emits its transfer and the departure back to back at the
/// same timestamp. K <= 16 (the type-count diff bound).
TypeCountState record_events(SwarmBackend& backend, double t_end,
                             double t_offset, const SwarmEventSink& emit);

enum class EventLogBackend { kTypeCount, kPerPeer };

/// One stretch of a piecewise-stationary trace.
struct LogSegment {
  SwarmParams params;
  double duration = 0;
};

struct EventLogOptions {
  EventLogBackend backend = EventLogBackend::kTypeCount;
  std::uint64_t seed = 1;
};

/// Runs the segments back to back from an empty swarm, carrying the
/// population across each boundary (peers present at a boundary are
/// re-injected into the next segment's backend; injection is not an
/// arrival, so the log stays consistent: a replayer tracking state from
/// the events alone sees the same population the simulator holds).
/// Segments must share K; a segment may not switch to immediate
/// departure while peer seeds are carried (they could never depart in
/// the log). Per-segment RNG streams derive from (seed, segment), so a
/// schedule is one deterministic artifact.
void generate_event_log(const std::vector<LogSegment>& segments,
                        const EventLogOptions& options,
                        const SwarmEventSink& emit);

}  // namespace p2p
