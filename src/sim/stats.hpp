// Small statistics helpers shared by the simulators, benches and tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace p2p {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double sem() const {
    return count_ >= 1 ? stddev() / std::sqrt(static_cast<double>(count_))
                       : 0.0;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// A sampled time series (t_i, v_i), t_i strictly increasing.
struct TimeSeries {
  std::vector<double> t;
  std::vector<double> v;

  void push(double time, double value) {
    P2P_ASSERT(t.empty() || time > t.back());
    t.push_back(time);
    v.push_back(value);
  }
  std::size_t size() const { return t.size(); }

  /// Time average over the recorded span (trapezoidal).
  double time_average() const {
    if (t.size() < 2) return v.empty() ? 0.0 : v.front();
    double area = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      area += 0.5 * (v[i] + v[i - 1]) * (t[i] - t[i - 1]);
    }
    return area / (t.back() - t.front());
  }

  double max_value() const {
    double m = v.empty() ? 0.0 : v.front();
    for (double x : v) m = std::max(m, x);
    return m;
  }
};

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  /// Standard error of the slope estimate (OLS, iid residuals).
  double slope_stderr = 0;
  double r_squared = 0;
};

/// Ordinary least squares y = a + b x over the samples with index in
/// [first, last). Requires at least 2 points.
LinearFit linear_fit(const TimeSeries& series, std::size_t first,
                     std::size_t last);

/// Fit over the tail fraction (e.g. 0.5 = second half) of the series.
LinearFit tail_fit(const TimeSeries& series, double tail_fraction = 0.5);

}  // namespace p2p
