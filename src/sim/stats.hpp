// Small statistics helpers shared by the simulators, benches and tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace p2p {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double sem() const {
    return count_ >= 1 ? stddev() / std::sqrt(static_cast<double>(count_))
                       : 0.0;
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// The counting processes every swarm backend maintains (Section VI uses
/// A_t and D_t in the transience proof; the rest feed the sweep reports
/// and cross-backend sanity checks). Backend-agnostic by construction:
/// both the per-peer and the type-count simulator accumulate into this
/// struct, so the report layer never cares which backend ran.
struct SwarmCounters {
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t downloads = 0;
  /// Downloads whose uploader was the fixed seed (the Us term of the
  /// contact law). The event-log layer needs the attribution to tell a
  /// `seed` transfer from a `piece` transfer, and the monitor's Us
  /// estimator inverts exactly this count.
  std::int64_t seed_downloads = 0;
  /// Contacts that transferred nothing. The type-count backend aggregates
  /// silent events away analytically and never materializes them, so its
  /// count stays 0 (see sim/typecount_sim.hpp).
  std::int64_t silent_contacts = 0;
  /// A_t: cumulative arrivals without the tracked piece.
  std::int64_t arrivals_without_tracked = 0;
  /// D_t: cumulative downloads of the tracked piece.
  std::int64_t downloads_of_tracked = 0;
};

/// Exact event-by-event occupancy integral: the population is constant
/// between events, so accruing n * dt per holding interval gives the
/// time average of N_s with no sampling error. Owns the simulation clock.
class OccupancyIntegral {
 public:
  /// Moves the clock to `to`, accruing `population` over the interval.
  void advance(double to, std::int64_t population) {
    integral_ += static_cast<double>(population) * (to - now_);
    now_ = to;
  }

  double now() const { return now_; }
  double integral() const { return integral_; }
  /// (1/t) integral of N_s ds over [0, now()]; 0 before any time passes.
  double time_average() const {
    return now_ > 0 ? integral_ / now_ : 0.0;
  }

 private:
  double now_ = 0;
  double integral_ = 0;
};

/// A sampled time series (t_i, v_i), t_i strictly increasing.
struct TimeSeries {
  std::vector<double> t;
  std::vector<double> v;

  void push(double time, double value) {
    P2P_ASSERT(t.empty() || time > t.back());
    t.push_back(time);
    v.push_back(value);
  }
  std::size_t size() const { return t.size(); }

  /// Time average over the recorded span (trapezoidal).
  double time_average() const {
    if (t.size() < 2) return v.empty() ? 0.0 : v.front();
    double area = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      area += 0.5 * (v[i] + v[i - 1]) * (t[i] - t[i - 1]);
    }
    return area / (t.back() - t.front());
  }

  double max_value() const {
    double m = v.empty() ? 0.0 : v.front();
    for (double x : v) m = std::max(m, x);
    return m;
  }
};

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  /// Standard error of the slope estimate (OLS, iid residuals).
  double slope_stderr = 0;
  double r_squared = 0;
};

/// Ordinary least squares y = a + b x over the samples with index in
/// [first, last). Requires at least 2 points.
LinearFit linear_fit(const TimeSeries& series, std::size_t first,
                     std::size_t last);

/// Fit over the tail fraction (e.g. 0.5 = second half) of the series.
LinearFit tail_fit(const TimeSeries& series, double tail_fraction = 0.5);

}  // namespace p2p
