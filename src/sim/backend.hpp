// SwarmBackend: the simulation-layer abstraction with two implementations
// of one law.
//
//   * SwarmSim (sim/swarm.hpp) — per-peer state. O(1) per event but
//     every silent contact is a materialized event; required whenever the
//     law itself is peer-granular: piece-selection policies other than
//     RandomUseful, the VIII-C retry boost (eta > 1), heterogeneous
//     per-peer rates, Fig. 2 group tracking.
//
//   * TypeCountSim (sim/typecount_sim.hpp) — peers with identical
//     PieceSets are exchangeable, so the swarm is stored as counts per
//     type with aggregate rates maintained incrementally and silent
//     events integrated out analytically. Orders of magnitude faster on
//     large swarms; exact for the base model (RandomUseful, eta = 1,
//     homogeneous rates).
//
// The interface is the surface engine/sweep.cpp's replica runner and the
// cross-backend equivalence tests need; concrete extras (group counts,
// policy hooks, run_sampled) stay on the concrete classes.
#pragma once

#include <cstdint>

#include "core/state.hpp"
#include "sim/stats.hpp"
#include "util/piece_set.hpp"

namespace p2p {

class SwarmBackend {
 public:
  virtual ~SwarmBackend() = default;

  /// Current simulated time.
  virtual double now() const = 0;
  virtual std::int64_t total_peers() const = 0;
  virtual std::int64_t peer_seeds() const = 0;

  /// Adds `count` peers of the given type at the current instant (e.g. a
  /// one-club flash crowd). Not counted as arrivals.
  virtual void inject_peers(PieceSet type, std::int64_t count) = 0;

  /// Advances one event. Returns false iff the total event rate is zero.
  virtual bool step() = 0;
  virtual void run_until(double t_end) = 0;

  /// Exact time average of the peer population over [0, now()].
  virtual double time_averaged_peers() const = 0;
  /// Raw occupancy integral (for warmup-window subtraction).
  virtual double occupancy_integral() const = 0;

  /// Sojourn times of departed peers (arrival to departure).
  virtual const OnlineStats& sojourn_stats() const = 0;
  /// The backend-agnostic counting processes.
  virtual const SwarmCounters& counters() const = 0;

  /// Aggregate state vector (for cross-validation); K <= 16.
  virtual TypeCountState type_counts() const = 0;
};

}  // namespace p2p
