// Piece selection policies (Section VIII-A, family H).
//
// Whenever an uploader (peer or fixed seed) contacts a target it can help,
// a policy chooses which useful piece to transfer. Theorem 14 says the
// stability region is the same for every policy in H — the only
// requirement is *usefulness*: if a useful piece exists, a useful piece is
// sent. The policies here let the benches verify that insensitivity and
// compare quasi-stability lifetimes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "rand/rng.hpp"
#include "util/piece_set.hpp"

namespace p2p {

/// Read-only snapshot of swarm-wide piece availability, for policies that
/// estimate rarity (the paper allows selection to depend on the full
/// network state).
struct SwarmView {
  int num_pieces = 0;
  /// holders[i] = number of peers currently holding piece i.
  std::span<const std::int64_t> holders;
  std::int64_t total_peers = 0;
};

class PieceSelectionPolicy {
 public:
  virtual ~PieceSelectionPolicy() = default;

  /// Chooses a piece from `useful` (never empty) to upload to a peer
  /// currently holding `target_has`. Must return a member of `useful`.
  virtual int select(PieceSet useful, PieceSet target_has,
                     const SwarmView& view, Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// Uniformly random useful piece — the baseline policy of Theorem 1.
class RandomUsefulPolicy final : public PieceSelectionPolicy {
 public:
  int select(PieceSet useful, PieceSet, const SwarmView&, Rng& rng) override {
    return useful.nth(static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(useful.size()))));
  }
  std::string name() const override { return "random-useful"; }
};

/// Globally rarest useful piece (ties broken uniformly) — an idealized
/// rarest-first with perfect availability information.
class RarestFirstPolicy final : public PieceSelectionPolicy {
 public:
  int select(PieceSet useful, PieceSet, const SwarmView& view,
             Rng& rng) override;
  std::string name() const override { return "rarest-first"; }
};

/// Most common useful piece — the adversarial counterpart of rarest-first;
/// still in H, so still the same stability region.
class MostCommonFirstPolicy final : public PieceSelectionPolicy {
 public:
  int select(PieceSet useful, PieceSet, const SwarmView& view,
             Rng& rng) override;
  std::string name() const override { return "most-common-first"; }
};

/// Lowest-indexed useful piece ("in-order streaming"); deterministic.
class SequentialPolicy final : public PieceSelectionPolicy {
 public:
  int select(PieceSet useful, PieceSet, const SwarmView&, Rng&) override {
    return useful.lowest();
  }
  std::string name() const override { return "sequential"; }
};

/// Factory by name: "random-useful", "rarest-first", "most-common-first",
/// "sequential". Aborts on unknown names.
std::unique_ptr<PieceSelectionPolicy> make_policy(const std::string& name);

/// The built-in policies as a value type, so option structs and sweep
/// scenarios can carry a selection policy without owning a polymorphic
/// object. Order matches the factory-name listing above.
enum class PolicyKind {
  kRandomUseful,
  kRarestFirst,
  kMostCommonFirst,
  kSequential,
};

/// The factory/report name of a kind ("random-useful", ...): to_string
/// and make_policy round-trip.
const char* to_string(PolicyKind kind);
std::unique_ptr<PieceSelectionPolicy> make_policy(PolicyKind kind);

}  // namespace p2p
