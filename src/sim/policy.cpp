#include "sim/policy.hpp"

#include <limits>

namespace p2p {

namespace {

/// Picks a uniformly random piece among those in `useful` whose holder
/// count is extremal (min if `want_min`, else max).
int extremal_pick(PieceSet useful, const SwarmView& view, Rng& rng,
                  bool want_min) {
  std::int64_t best = want_min ? std::numeric_limits<std::int64_t>::max()
                               : std::numeric_limits<std::int64_t>::min();
  int chosen = -1;
  int ties = 0;
  for (int piece : useful) {
    const std::int64_t holders = view.holders[piece];
    const bool better = want_min ? holders < best : holders > best;
    if (better) {
      best = holders;
      chosen = piece;
      ties = 1;
    } else if (holders == best) {
      // Reservoir-sample among ties.
      ++ties;
      if (rng.uniform_int(static_cast<std::uint64_t>(ties)) == 0) {
        chosen = piece;
      }
    }
  }
  P2P_ASSERT(chosen >= 0);
  return chosen;
}

}  // namespace

int RarestFirstPolicy::select(PieceSet useful, PieceSet,
                              const SwarmView& view, Rng& rng) {
  return extremal_pick(useful, view, rng, /*want_min=*/true);
}

int MostCommonFirstPolicy::select(PieceSet useful, PieceSet,
                                  const SwarmView& view, Rng& rng) {
  return extremal_pick(useful, view, rng, /*want_min=*/false);
}

std::unique_ptr<PieceSelectionPolicy> make_policy(const std::string& name) {
  if (name == "random-useful") return std::make_unique<RandomUsefulPolicy>();
  if (name == "rarest-first") return std::make_unique<RarestFirstPolicy>();
  if (name == "most-common-first") {
    return std::make_unique<MostCommonFirstPolicy>();
  }
  if (name == "sequential") return std::make_unique<SequentialPolicy>();
  P2P_ASSERT_MSG(false, "unknown piece selection policy");
  return nullptr;
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandomUseful:
      return "random-useful";
    case PolicyKind::kRarestFirst:
      return "rarest-first";
    case PolicyKind::kMostCommonFirst:
      return "most-common-first";
    case PolicyKind::kSequential:
      return "sequential";
  }
  P2P_ASSERT_MSG(false, "unknown piece selection policy");
  return nullptr;
}

std::unique_ptr<PieceSelectionPolicy> make_policy(PolicyKind kind) {
  return make_policy(std::string(to_string(kind)));
}

}  // namespace p2p
