// SwarmSim: exact per-peer stochastic simulation of the Zhu–Hajek model.
//
// Implements the model of Section III at individual-peer granularity:
// Poisson arrivals of typed peers, a fixed seed and per-peer contact
// clocks with *uniform random peer contact*, pluggable useful-piece
// selection (Section VIII-A), Exp(gamma) peer-seed dwell, and the
// Section VIII-C "faster retry" variant (clock runs `retry_boost`x faster
// after an unsuccessful contact, until the next tick).
//
// With the default RandomUsefulPolicy and retry_boost = 1 the law of the
// induced type-count process is exactly the CTMC of core/generator.hpp;
// tests cross-validate the two simulators distributionally.
//
// The simulator additionally tracks the Section V / Fig. 2 partition of
// peers relative to a designated "tracked piece" (default piece 0, the
// paper's piece one): normal young (a), infected (b), one-club (e),
// former one-club (f), gifted (g), plus the counting processes A_t
// (arrivals without the tracked piece) and D_t (downloads of the tracked
// piece) used in the transience proof.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/model.hpp"
#include "core/state.hpp"
#include "rand/rng.hpp"
#include "sim/backend.hpp"
#include "sim/policy.hpp"
#include "sim/stats.hpp"

namespace p2p {

/// The five-group partition of Fig. 2 (relative to the tracked piece).
struct GroupCounts {
  std::int64_t normal_young = 0;    // (a) missing tracked piece + >=1 more
  std::int64_t infected = 0;        // (b) got tracked piece after arrival
  std::int64_t one_club = 0;        // (e) missing exactly the tracked piece
  std::int64_t former_one_club = 0; // (f) was one-club, now a peer seed
  std::int64_t gifted = 0;          // (g) arrived holding the tracked piece
  std::int64_t total() const {
    return normal_young + infected + one_club + former_one_club + gifted;
  }
};

/// A peer bandwidth class for the heterogeneous-rate extension (Section
/// IX names heterogeneous link speeds as the natural next step beyond the
/// paper's homogeneous model). A peer drawn into class i contacts at rate
/// multiplier * mu.
struct RateClass {
  double weight = 1;      // selection weight at arrival
  double multiplier = 1;  // upload-rate multiplier, > 0
};

/// Mean-preserving two-class heterogeneity: a slow class at multiplier
/// 1 - h and a fast class at 1 + h * slow_weight / fast_weight, so the
/// selection-weighted mean multiplier is exactly 1 and mu keeps its
/// Theorem-1 meaning as the mean upload capacity. h = 0 returns the empty
/// vector (the homogeneous fast path: no per-peer class draw at all).
/// Requires h in [0, 1) and positive weights.
inline std::vector<RateClass> two_class_spread(double h,
                                               double slow_weight = 1,
                                               double fast_weight = 1) {
  P2P_ASSERT_MSG(h >= 0 && h < 1,
                 "hetero spread must lie in [0, 1) (slow multiplier 1 - h "
                 "must stay positive)");
  P2P_ASSERT_MSG(slow_weight > 0 && fast_weight > 0,
                 "hetero class weights must be positive");
  if (h == 0) return {};
  return {{slow_weight, 1.0 - h},
          {fast_weight, 1.0 + h * slow_weight / fast_weight}};
}

struct SwarmSimOptions {
  /// Piece whose scarcity is tracked for the Fig. 2 partition.
  int tracked_piece = 0;
  /// Section VIII-C retry factor eta >= 1; 1 = the base model.
  double retry_boost = 1.0;
  /// Empty = homogeneous (every peer at rate mu). Otherwise each arriving
  /// or injected peer is assigned a class with probability proportional
  /// to weight.
  std::vector<RateClass> rate_classes;
  /// Useful-piece selection used by the policy-less constructor. The
  /// default is the Theorem-1 baseline, so existing call sites keep their
  /// exact event stream.
  PolicyKind policy = PolicyKind::kRandomUseful;
  std::uint64_t rng_seed = 1;
};

class SwarmSim final : public SwarmBackend {
 public:
  SwarmSim(SwarmParams params, std::unique_ptr<PieceSelectionPolicy> policy,
           SwarmSimOptions options = {});

  /// Convenience: the policy selected by options.policy (the Theorem-1
  /// RandomUsefulPolicy unless overridden).
  SwarmSim(SwarmParams params, SwarmSimOptions options = {});

  /// Adds `count` peers of the given type at the current instant (e.g. a
  /// one-club flash crowd). Peers injected this way are classified as if
  /// they arrived with their current pieces (so a one-club injection is
  /// "one-club", not "gifted").
  void inject_peers(PieceSet type, std::int64_t count) override;

  double now() const override { return occupancy_.now(); }
  std::int64_t total_peers() const override {
    return static_cast<std::int64_t>(peers_.size());
  }
  std::int64_t peer_seeds() const override {
    return static_cast<std::int64_t>(seed_indices_.size());
  }
  const GroupCounts& groups() const { return groups_; }
  /// Number of peers holding piece i.
  std::int64_t holders_of(int piece) const { return piece_holders_[piece]; }
  const SwarmParams& params() const { return params_; }
  const PieceSelectionPolicy& policy() const { return *policy_; }

  /// Aggregate state vector (for cross-validation with the CTMC); K <= 16.
  TypeCountState type_counts() const override;

  /// Advances one event (possibly silent). Returns false iff total rate 0.
  bool step() override;
  void run_until(double t_end) override;
  /// Samples `fn(t)` every `dt` of simulated time up to t_end.
  void run_sampled(double t_end, double dt,
                   const std::function<void(double)>& fn);

  // --- Counting processes (Section VI) ---
  const SwarmCounters& counters() const override { return counters_; }
  /// A_t: cumulative arrivals without the tracked piece.
  std::int64_t arrivals_without_tracked() const {
    return counters_.arrivals_without_tracked;
  }
  /// D_t: cumulative downloads of the tracked piece.
  std::int64_t downloads_of_tracked() const {
    return counters_.downloads_of_tracked;
  }
  std::int64_t total_arrivals() const { return counters_.arrivals; }
  std::int64_t total_departures() const { return counters_.departures; }
  std::int64_t total_downloads() const { return counters_.downloads; }
  std::int64_t silent_contacts() const { return counters_.silent_contacts; }

  /// Sojourn times of departed peers (arrival to departure).
  const OnlineStats& sojourn_stats() const override { return sojourn_; }

  /// Exact time average of the peer population over [0, now()]:
  /// (1/t) integral of N_s ds, accumulated event-by-event (no sampling
  /// error). 0 before any simulated time has passed.
  double time_averaged_peers() const override {
    return occupancy_.time_average();
  }
  double occupancy_integral() const override { return occupancy_.integral(); }

 private:
  struct Peer {
    PieceSet pieces;
    double arrival_time = 0;
    double rate_multiplier = 1.0;  // heterogeneous-rate extension
    bool gifted = false;        // arrived holding the tracked piece
    bool was_one_club = false;  // ever of type F - {tracked}
    bool boosted = false;       // VIII-C: last contact was unsuccessful
    std::int32_t seed_pos = -1; // index into seed_indices_, -1 if not seed
    std::int8_t group = 0;      // cached Fig. 2 group
  };

  /// Effective clock weight of a peer (multiplier x retry boost).
  double clock_weight(const Peer& peer) const {
    return peer.rate_multiplier *
           (peer.boosted ? options_.retry_boost : 1.0);
  }

  enum Group : std::int8_t {
    kNormalYoung = 0,
    kInfected = 1,
    kOneClub = 2,
    kFormerOneClub = 3,
    kGifted = 4,
  };

  /// Moves the clock to `t`, accruing the occupancy integral over the
  /// holding interval (the population is constant between events).
  void advance_time(double t);

  Group classify(const Peer& peer) const;
  std::int64_t& group_slot(Group g);
  void reclassify(std::size_t idx);

  void add_peer(PieceSet type, bool count_as_arrival);
  void remove_peer(std::size_t idx);
  /// Peer `idx` receives `piece`; handles completion/departure.
  void give_piece(std::size_t idx, int piece);

  std::size_t random_peer_index();
  /// Weighted by the VIII-C boost (rejection sampling; exact).
  std::size_t random_uploader_index();

  void do_arrival();
  void do_seed_tick();
  void do_peer_tick();
  void do_seed_departure();

  struct EventRates {
    double arrival = 0, seed = 0, peer = 0, depart = 0;
    double total() const { return arrival + seed + peer + depart; }
  };
  EventRates event_rates() const;
  void dispatch(const EventRates& rates);

  SwarmView view() const {
    return SwarmView{params_.num_pieces(), piece_holders_,
                     static_cast<std::int64_t>(peers_.size())};
  }

  SwarmParams params_;
  std::unique_ptr<PieceSelectionPolicy> policy_;
  SwarmSimOptions options_;
  Rng rng_;

  std::vector<Peer> peers_;
  std::vector<std::uint32_t> seed_indices_;
  std::vector<std::int64_t> piece_holders_;
  std::vector<double> arrival_weights_;
  std::vector<double> class_weights_;
  GroupCounts groups_;
  std::int64_t boosted_peers_ = 0;
  /// Sum of clock_weight over all peers (drives the peer-tick rate).
  double total_clock_weight_ = 0;
  /// Rejection-sampling bound: max multiplier x retry boost.
  double max_clock_weight_ = 1;
  bool seed_boosted_ = false;

  SwarmCounters counters_;
  OccupancyIntegral occupancy_;
  OnlineStats sojourn_;
};

}  // namespace p2p
