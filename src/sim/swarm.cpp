#include "sim/swarm.hpp"

#include <algorithm>

#include "ctmc/event_rates.hpp"

namespace p2p {

SwarmSim::SwarmSim(SwarmParams params,
                   std::unique_ptr<PieceSelectionPolicy> policy,
                   SwarmSimOptions options)
    : params_(std::move(params)),
      policy_(std::move(policy)),
      options_(options),
      rng_(options.rng_seed),
      piece_holders_(static_cast<std::size_t>(params_.num_pieces()), 0) {
  P2P_ASSERT(policy_ != nullptr);
  P2P_ASSERT(options_.tracked_piece >= 0 &&
             options_.tracked_piece < params_.num_pieces());
  P2P_ASSERT(options_.retry_boost >= 1.0);
  arrival_weights_.reserve(params_.arrivals().size());
  for (const auto& a : params_.arrivals()) arrival_weights_.push_back(a.rate);
  double max_multiplier = 1.0;
  for (const auto& cls : options_.rate_classes) {
    P2P_ASSERT_MSG(cls.weight >= 0 && cls.multiplier > 0,
                   "rate classes need nonnegative weight, positive rate");
    class_weights_.push_back(cls.weight);
    max_multiplier = std::max(max_multiplier, cls.multiplier);
  }
  max_clock_weight_ = max_multiplier * options_.retry_boost;
}

SwarmSim::SwarmSim(SwarmParams params, SwarmSimOptions options)
    : SwarmSim(std::move(params), make_policy(options.policy), options) {}

SwarmSim::Group SwarmSim::classify(const Peer& peer) const {
  const PieceSet full = PieceSet::full(params_.num_pieces());
  const int tracked = options_.tracked_piece;
  if (!peer.pieces.contains(tracked)) {
    return peer.pieces == full.without(tracked) ? kOneClub : kNormalYoung;
  }
  if (peer.gifted) return kGifted;
  if (peer.was_one_club) return kFormerOneClub;
  return kInfected;
}

std::int64_t& SwarmSim::group_slot(Group g) {
  switch (g) {
    case kNormalYoung:
      return groups_.normal_young;
    case kInfected:
      return groups_.infected;
    case kOneClub:
      return groups_.one_club;
    case kFormerOneClub:
      return groups_.former_one_club;
    case kGifted:
      return groups_.gifted;
  }
  P2P_ASSERT(false);
  return groups_.normal_young;
}

void SwarmSim::reclassify(std::size_t idx) {
  Peer& peer = peers_[idx];
  const Group next = classify(peer);
  if (next != static_cast<Group>(peer.group)) {
    --group_slot(static_cast<Group>(peer.group));
    ++group_slot(next);
    peer.group = next;
  }
}

void SwarmSim::add_peer(PieceSet type, bool count_as_arrival) {
  const PieceSet full = PieceSet::full(params_.num_pieces());
  if (params_.immediate_departure() && type == full) {
    // A complete arrival departs instantly; it never joins the population.
    if (count_as_arrival) ++counters_.arrivals;
    ++counters_.departures;
    return;
  }
  Peer peer;
  peer.pieces = type;
  peer.arrival_time = occupancy_.now();
  if (!class_weights_.empty()) {
    peer.rate_multiplier =
        options_.rate_classes[rng_.discrete(class_weights_)].multiplier;
  }
  peer.gifted = type.contains(options_.tracked_piece);
  peer.was_one_club = type == full.without(options_.tracked_piece);
  peers_.push_back(peer);
  total_clock_weight_ += peer.rate_multiplier;  // new peers are unboosted
  const std::size_t idx = peers_.size() - 1;
  for (int piece : type) ++piece_holders_[piece];
  if (type == full) {
    peers_[idx].seed_pos = static_cast<std::int32_t>(seed_indices_.size());
    seed_indices_.push_back(static_cast<std::uint32_t>(idx));
  }
  const Group g = classify(peers_[idx]);
  peers_[idx].group = g;
  ++group_slot(g);
  if (count_as_arrival) {
    ++counters_.arrivals;
    if (!type.contains(options_.tracked_piece)) {
      ++counters_.arrivals_without_tracked;
    }
  }
}

void SwarmSim::inject_peers(PieceSet type, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    add_peer(type, /*count_as_arrival=*/false);
  }
}

void SwarmSim::remove_peer(std::size_t idx) {
  Peer& peer = peers_[idx];
  sojourn_.add(occupancy_.now() - peer.arrival_time);
  for (int piece : peer.pieces) --piece_holders_[piece];
  --group_slot(static_cast<Group>(peer.group));
  total_clock_weight_ -= clock_weight(peer);
  if (peer.boosted) --boosted_peers_;
  if (peer.seed_pos >= 0) {
    // Swap-remove from the seed index list.
    const auto pos = static_cast<std::size_t>(peer.seed_pos);
    const std::uint32_t last = seed_indices_.back();
    seed_indices_[pos] = last;
    peers_[last].seed_pos = static_cast<std::int32_t>(pos);
    seed_indices_.pop_back();
    // If `last == idx` the pop already removed it; seed_pos fixup above is
    // then harmless (peer is about to be destroyed).
  }
  // Swap-remove from the peer vector.
  const std::size_t last_idx = peers_.size() - 1;
  if (idx != last_idx) {
    peers_[idx] = peers_[last_idx];
    if (peers_[idx].seed_pos >= 0) {
      seed_indices_[static_cast<std::size_t>(peers_[idx].seed_pos)] =
          static_cast<std::uint32_t>(idx);
    }
  }
  peers_.pop_back();
  ++counters_.departures;
}

void SwarmSim::give_piece(std::size_t idx, int piece) {
  Peer& peer = peers_[idx];
  P2P_ASSERT(!peer.pieces.contains(piece));
  peer.pieces = peer.pieces.with(piece);
  ++piece_holders_[piece];
  ++counters_.downloads;
  if (piece == options_.tracked_piece) ++counters_.downloads_of_tracked;

  const PieceSet full = PieceSet::full(params_.num_pieces());
  if (peer.pieces == full) {
    if (params_.immediate_departure()) {
      remove_peer(idx);
      return;
    }
    peer.seed_pos = static_cast<std::int32_t>(seed_indices_.size());
    seed_indices_.push_back(static_cast<std::uint32_t>(idx));
  } else if (peer.pieces == full.without(options_.tracked_piece)) {
    peer.was_one_club = true;
  }
  reclassify(idx);
}

std::size_t SwarmSim::random_peer_index() {
  P2P_ASSERT(!peers_.empty());
  return static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(peers_.size())));
}

std::size_t SwarmSim::random_uploader_index() {
  if ((options_.retry_boost == 1.0 || boosted_peers_ == 0) &&
      class_weights_.empty()) {
    return random_peer_index();
  }
  // Rejection sampling against the clock weight (multiplier x boost).
  while (true) {
    const std::size_t idx = random_peer_index();
    if (rng_.uniform() * max_clock_weight_ < clock_weight(peers_[idx])) {
      return idx;
    }
  }
}

void SwarmSim::do_arrival() {
  const std::size_t choice = rng_.discrete(arrival_weights_);
  add_peer(params_.arrivals()[choice].type, /*count_as_arrival=*/true);
}

void SwarmSim::do_seed_tick() {
  const std::size_t target = random_peer_index();
  const PieceSet needed =
      peers_[target].pieces.complement(params_.num_pieces());
  if (needed.empty()) {
    ++counters_.silent_contacts;
    seed_boosted_ = true;
    return;
  }
  seed_boosted_ = false;
  const int piece = policy_->select(needed, peers_[target].pieces, view(),
                                    rng_);
  P2P_ASSERT(needed.contains(piece));
  ++counters_.seed_downloads;
  give_piece(target, piece);
}

void SwarmSim::do_peer_tick() {
  const std::size_t uploader = random_uploader_index();
  const std::size_t target = random_peer_index();
  const PieceSet useful = peers_[uploader].pieces.minus(peers_[target].pieces);
  if (useful.empty()) {
    ++counters_.silent_contacts;
    if (!peers_[uploader].boosted) {
      total_clock_weight_ -= clock_weight(peers_[uploader]);
      peers_[uploader].boosted = true;
      total_clock_weight_ += clock_weight(peers_[uploader]);
      ++boosted_peers_;
    }
    return;
  }
  if (peers_[uploader].boosted) {
    total_clock_weight_ -= clock_weight(peers_[uploader]);
    peers_[uploader].boosted = false;
    total_clock_weight_ += clock_weight(peers_[uploader]);
    --boosted_peers_;
  }
  const int piece =
      policy_->select(useful, peers_[target].pieces, view(), rng_);
  P2P_ASSERT(useful.contains(piece));
  give_piece(target, piece);
}

void SwarmSim::do_seed_departure() {
  P2P_ASSERT(!seed_indices_.empty());
  const std::size_t pos = static_cast<std::size_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(seed_indices_.size())));
  remove_peer(seed_indices_[pos]);
}

SwarmSim::EventRates SwarmSim::event_rates() const {
  // Base-model clocks from the shared derivation, then the per-peer
  // modifiers: the VIII-C retry boost scales the seed clock while the
  // last seed contact was unsuccessful, and the peer clock runs on the
  // incrementally maintained sum of per-peer clock weights (multiplier x
  // boost) instead of plain mu * n.
  const AggregateRates base = aggregate_event_rates(
      params_.view(), static_cast<std::int64_t>(peers_.size()),
      static_cast<std::int64_t>(seed_indices_.size()));
  EventRates rates;
  rates.arrival = base.arrival;
  rates.seed = base.seed * (seed_boosted_ ? options_.retry_boost : 1.0);
  // Clamp at zero so floating-point residue from non-dyadic multipliers
  // can never produce a (tiny) negative rate.
  rates.peer = params_.contact_rate() * std::max(0.0, total_clock_weight_);
  rates.depart = base.depart;
  return rates;
}

void SwarmSim::dispatch(const EventRates& rates) {
  const double weights[4] = {rates.arrival, rates.seed, rates.peer,
                             rates.depart};
  switch (rng_.discrete(weights)) {
    case 0:
      do_arrival();
      break;
    case 1:
      do_seed_tick();
      break;
    case 2:
      do_peer_tick();
      break;
    case 3:
      do_seed_departure();
      break;
  }
}

void SwarmSim::advance_time(double t) {
  occupancy_.advance(t, static_cast<std::int64_t>(peers_.size()));
}

bool SwarmSim::step() {
  const EventRates rates = event_rates();
  if (rates.total() <= 0) return false;
  advance_time(occupancy_.now() + rng_.exponential(rates.total()));
  dispatch(rates);
  return true;
}

void SwarmSim::run_until(double t_end) {
  while (occupancy_.now() < t_end) {
    if (!step()) break;
  }
}

void SwarmSim::run_sampled(double t_end, double dt,
                           const std::function<void(double)>& fn) {
  // Samples observe the pre-event state: the holding time is drawn first,
  // samples falling strictly before the next event time are emitted, and
  // only then is the event applied.
  double next_sample = occupancy_.now() + dt;
  while (occupancy_.now() < t_end) {
    const EventRates rates = event_rates();
    if (rates.total() <= 0) break;
    const double event_time =
        occupancy_.now() + rng_.exponential(rates.total());
    while (next_sample <= t_end && next_sample < event_time) {
      fn(next_sample);
      next_sample += dt;
    }
    advance_time(event_time);
    dispatch(rates);
  }
  while (next_sample <= t_end) {
    fn(next_sample);
    next_sample += dt;
  }
}

TypeCountState SwarmSim::type_counts() const {
  TypeCountState state(params_.num_pieces());
  for (const Peer& peer : peers_) state.add(peer.pieces, +1);
  return state;
}

}  // namespace p2p
