#include "service/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/provisioning.hpp"
#include "engine/report.hpp"
#include "util/assert.hpp"

namespace p2p::service {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The monitor's consistency failures use the event-log parser's message
/// shape: line number first, offending line echoed verbatim.
[[noreturn]] void monitor_fail(const std::string& reason,
                               const std::string& line,
                               std::size_t line_number) {
  std::string msg =
      "event log line " + std::to_string(line_number) + ": " + reason;
  if (!line.empty()) msg += " (got \"" + line + "\")";
  detail::assert_fail("event stream consistent with replayed state",
                      __FILE__, __LINE__, msg);
}

/// format_number with the report convention: non-finite renders as null.
void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  engine::format_number_into(out, value);
}

}  // namespace

const char* to_string(MonitorVerdict verdict) {
  switch (verdict) {
    case MonitorVerdict::kEstimating:
      return "estimating";
    case MonitorVerdict::kStable:
      return "stable";
    case MonitorVerdict::kUnstable:
      return "unstable";
  }
  return "?";
}

bool MonitorEstimates::complete() const {
  if (!(std::isfinite(lambda) && lambda > 0)) return false;
  if (!(std::isfinite(mu) && mu > 0)) return false;
  if (!(std::isfinite(us) && us >= 0)) return false;
  if (std::isnan(gamma) || gamma <= 0) return false;
  if (gamma == kInfiniteRate) {
    // classify() would (rightly) abort on lambda_F > 0 with immediate
    // departure; a window showing that mix is not classifiable.
    const PieceSet full = PieceSet::full(num_pieces);
    for (const ArrivalSpec& a : arrivals) {
      if (a.type == full && a.rate > 0) return false;
    }
  }
  return true;
}

std::string advisory_json_line(const Advisory& advisory) {
  const MonitorEstimates& est = advisory.estimates;
  std::string out = "{\"t\": ";
  append_json_number(out, advisory.t);
  out += ", \"status\": ";
  engine::append_json_string(out, to_string(advisory.verdict));
  out += ", \"raw\": ";
  if (advisory.classified) {
    engine::append_json_string(out, to_string(advisory.raw_verdict));
  } else {
    out += "null";
  }
  out += ", \"margin\": ";
  append_json_number(out, advisory.classified ? advisory.margin : kNaN);
  out += ", \"flips\": ";
  out += std::to_string(advisory.flips);
  out += ", \"events\": ";
  out += std::to_string(advisory.events);
  out += ", \"n\": ";
  out += std::to_string(est.peers);
  out += ", \"seeds\": ";
  out += std::to_string(est.seeds);
  out += ", \"coverage\": ";
  append_json_number(out, est.coverage);
  out += ", \"mean_n\": ";
  append_json_number(out, est.mean_peers);
  out += ", \"lambda\": ";
  append_json_number(out, est.lambda);
  out += ", \"mix\": {";
  bool first = true;
  for (const ArrivalSpec& a : est.arrivals) {
    if (!first) out += ", ";
    first = false;
    engine::append_json_string(out, std::to_string(a.type.mask()));
    out += ": ";
    append_json_number(out, est.lambda > 0 ? a.rate / est.lambda : kNaN);
  }
  out += "}, \"us\": ";
  append_json_number(out, est.us);
  out += ", \"mu\": ";
  append_json_number(out, est.mu);
  out += ", \"gamma\": ";
  append_json_number(out, est.gamma);  // infinity renders null; see dwell
  out += ", \"dwell\": ";
  append_json_number(out, est.gamma > 0
                              ? analysis::depart_rate_to_dwell(est.gamma)
                              : kNaN);
  out += ", \"us_required\": ";
  append_json_number(out, advisory.classified ? advisory.us_required : kNaN);
  out += ", \"us_gap\": ";
  append_json_number(out, advisory.classified ? advisory.us_gap : kNaN);
  out += "}\n";
  return out;
}

void StabilityMonitor::Bucket::reset(std::int64_t new_epoch) {
  epoch = new_epoch;
  duration = 0;
  arrivals = 0;
  peer_downloads = 0;
  seed_downloads = 0;
  seed_departures = 0;
  peers_dt = 0;
  seeds_dt = 0;
  seed_target_dt = 0;
  peer_pair_dt = 0;
  arrivals_by_type.clear();
}

StabilityMonitor::StabilityMonitor(MonitorConfig config)
    : config_(config),
      bucket_width_(config.window / config.buckets),
      full_mask_((std::uint64_t{1} << std::max(config.num_pieces, 1)) - 1),
      state_(std::clamp(config.num_pieces, 1, 16)),
      sub_(std::size_t{1} << std::clamp(config.num_pieces, 1, 16), 0),
      sup_(std::size_t{1} << std::clamp(config.num_pieces, 1, 16), 0),
      ring_(static_cast<std::size_t>(std::max(config.buckets, 1))) {
  P2P_ASSERT_MSG(config_.num_pieces >= 1 && config_.num_pieces <= 16,
                 "monitor supports K in [1, 16]");
  P2P_ASSERT_MSG(std::isfinite(config_.window) && config_.window > 0,
                 "monitor window must be positive and finite");
  P2P_ASSERT_MSG(config_.buckets >= 1, "monitor needs at least one bucket");
  P2P_ASSERT_MSG(
      std::isfinite(config_.advice_every) && config_.advice_every > 0,
      "advisory cadence must be positive and finite");
  P2P_ASSERT_MSG(!std::isnan(config_.hyst_enter) &&
                     !std::isnan(config_.hyst_exit) &&
                     config_.hyst_enter >= config_.hyst_exit,
                 "hysteresis needs hyst_enter >= hyst_exit");
  P2P_ASSERT_MSG(config_.pinned_gamma >= 0,
                 "pinned gamma must be positive (0 = estimate from the log)");
}

void StabilityMonitor::bump(std::uint64_t mask, std::int64_t delta) {
  if (delta == 0) return;
  // Pair-sum first: the identity uses the *old* subset/superset sums
  // (the typecount_sim bump, minus the sampler bookkeeping).
  pair_sum_s_ += delta * (sub_[mask] + sup_[mask]) + delta * delta;
  std::uint64_t a = mask;
  while (true) {
    sup_[a] += delta;
    if (a == 0) break;
    a = (a - 1) & mask;
  }
  const std::uint64_t comp = full_mask_ & ~mask;
  std::uint64_t extra = 0;
  do {
    sub_[mask | extra] += delta;
    extra = (extra - comp) & comp;
  } while (extra != 0);
  state_.add(PieceSet(mask), delta);
}

StabilityMonitor::Bucket& StabilityMonitor::bucket_for_slot(
    std::int64_t slot) {
  Bucket& bucket = ring_[static_cast<std::size_t>(slot) % ring_.size()];
  if (bucket.epoch != slot) bucket.reset(slot);
  return bucket;
}

void StabilityMonitor::advance_time(double t) {
  P2P_ASSERT(t >= time_);
  while (time_ < t) {
    const double slot_end = bucket_width_ * static_cast<double>(slot_ + 1);
    if (time_ >= slot_end) {
      ++slot_;
      continue;
    }
    const double upto = std::min(t, slot_end);
    const double dt = upto - time_;
    Bucket& bucket = bucket_for_slot(slot_);
    const double n = static_cast<double>(state_.total_peers());
    const double s = static_cast<double>(state_.seeds());
    bucket.duration += dt;
    bucket.peers_dt += n * dt;
    bucket.seeds_dt += s * dt;
    if (n > 0) {
      bucket.seed_target_dt += ((n - s) / n) * dt;
      bucket.peer_pair_dt +=
          ((n * n - static_cast<double>(pair_sum_s_)) / n) * dt;
    }
    time_ = upto;
  }
}

void StabilityMonitor::apply(const SwarmEvent& event, const std::string& line,
                             std::size_t line_number) {
  Bucket& bucket = bucket_for_slot(slot_);
  switch (event.kind) {
    case SwarmEventKind::kArrive: {
      bump(event.type, +1);
      ++bucket.arrivals;
      for (auto& [mask, count] : bucket.arrivals_by_type) {
        if (mask == event.type) {
          ++count;
          return;
        }
      }
      bucket.arrivals_by_type.emplace_back(event.type, 1);
      return;
    }
    case SwarmEventKind::kDepart: {
      if (state_.count(event.type) <= 0) {
        monitor_fail("departure of type " + std::to_string(event.type) +
                         " but no such peer is present",
                     line, line_number);
      }
      if (event.type == full_mask_) ++bucket.seed_departures;
      bump(event.type, -1);
      return;
    }
    case SwarmEventKind::kPiece:
    case SwarmEventKind::kSeed: {
      if (state_.count(event.type) <= 0) {
        monitor_fail("transfer to a peer of type " +
                         std::to_string(event.type) +
                         " but no such peer is present",
                     line, line_number);
      }
      if (event.piece < 0 || event.piece >= config_.num_pieces ||
          ((event.type >> event.piece) & 1U) != 0) {
        monitor_fail("transfer delivers an invalid or already-held piece",
                     line, line_number);
      }
      const std::uint64_t to = event.type | (std::uint64_t{1} << event.piece);
      bump(event.type, -1);
      bump(to, +1);
      if (event.kind == SwarmEventKind::kPiece) {
        ++bucket.peer_downloads;
      } else {
        ++bucket.seed_downloads;
      }
      return;
    }
  }
  monitor_fail("unknown event kind", line, line_number);
}

MonitorEstimates StabilityMonitor::estimates() const {
  MonitorEstimates est;
  est.num_pieces = config_.num_pieces;
  double coverage = 0, peers_dt = 0, seeds_dt = 0;
  double seed_target_dt = 0, peer_pair_dt = 0;
  std::int64_t arrivals = 0, peer_downloads = 0, seed_downloads = 0;
  std::int64_t seed_departures = 0;
  std::vector<std::int64_t> by_type(std::size_t{1} << config_.num_pieces, 0);
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch < 0) continue;
    coverage += bucket.duration;
    peers_dt += bucket.peers_dt;
    seeds_dt += bucket.seeds_dt;
    seed_target_dt += bucket.seed_target_dt;
    peer_pair_dt += bucket.peer_pair_dt;
    arrivals += bucket.arrivals;
    peer_downloads += bucket.peer_downloads;
    seed_downloads += bucket.seed_downloads;
    seed_departures += bucket.seed_departures;
    for (const auto& [mask, count] : bucket.arrivals_by_type) {
      by_type[mask] += count;
    }
  }
  est.coverage = coverage;
  est.lambda =
      coverage > 0 ? static_cast<double>(arrivals) / coverage : kNaN;
  est.us = seed_target_dt > 0
               ? static_cast<double>(seed_downloads) / seed_target_dt
               : kNaN;
  est.mu = peer_pair_dt > 0
               ? static_cast<double>(peer_downloads) / peer_pair_dt
               : kNaN;
  if (config_.pinned_gamma > 0) {
    est.gamma = config_.pinned_gamma;
  } else if (seeds_dt > 0) {
    est.gamma = static_cast<double>(seed_departures) / seeds_dt;
  } else {
    // No peer-seed exposure: departures without dwell time mean
    // immediate departure; zero of each means "cannot tell yet".
    est.gamma = seed_departures > 0 ? kInfiniteRate : kNaN;
  }
  est.peers = state_.total_peers();
  est.seeds = state_.seeds();
  est.mean_peers = coverage > 0 ? peers_dt / coverage : kNaN;
  if (coverage > 0) {
    for (std::size_t mask = 0; mask < by_type.size(); ++mask) {
      if (by_type[mask] > 0) {
        est.arrivals.push_back(
            {PieceSet(mask), static_cast<double>(by_type[mask]) / coverage});
      }
    }
  }
  return est;
}

Advisory StabilityMonitor::make_advisory(double t) {
  Advisory advisory;
  advisory.t = t;
  advisory.events = events_;
  advisory.estimates = estimates();
  advisory.margin = kNaN;
  advisory.us_required = kNaN;
  advisory.us_gap = kNaN;
  if (advisory.estimates.complete()) {
    const MonitorEstimates& est = advisory.estimates;
    const SwarmParamsView view{config_.num_pieces, est.us, est.mu, est.gamma,
                               est.arrivals};
    const StabilityReport report = classify(view);
    advisory.classified = true;
    advisory.raw_verdict = report.verdict;
    // The altruistic branch has no finite margin; for hysteresis it is
    // as deep inside (or outside) the region as a point can be.
    advisory.margin =
        report.altruistic_branch
            ? (report.verdict == Stability::kPositiveRecurrent
                   ? std::numeric_limits<double>::infinity()
                   : -std::numeric_limits<double>::infinity())
            : report.margin;
    const analysis::SeedAdvice advice = analysis::seed_advice(view);
    advisory.us_required = advice.us_required;
    advisory.us_gap = advice.us_gap;
    MonitorVerdict target = verdict_;
    if (advisory.margin >= config_.hyst_enter) {
      target = MonitorVerdict::kStable;
    } else if (advisory.margin <= config_.hyst_exit) {
      target = MonitorVerdict::kUnstable;
    }
    if (target != verdict_) {
      if (verdict_ != MonitorVerdict::kEstimating) ++flips_;
      verdict_ = target;
    }
  }
  advisory.verdict = verdict_;
  advisory.flips = flips_;
  last_advisory_t_ = t;
  advised_ = true;
  return advisory;
}

void StabilityMonitor::feed(const SwarmEvent& event, const std::string& line,
                            std::size_t line_number,
                            const AdvisorySink& advise) {
  if (!(std::isfinite(event.t) && event.t >= 0)) {
    monitor_fail("timestamp must be finite and nonnegative", line,
                 line_number);
  }
  if (saw_event_ && event.t < last_event_t_) {
    monitor_fail("timestamp " + engine::format_number(event.t) +
                     " goes backwards (previous event at " +
                     engine::format_number(last_event_t_) + ")",
                 line, line_number);
  }
  while (config_.advice_every * static_cast<double>(tick_) <= event.t) {
    const double tick_t = config_.advice_every * static_cast<double>(tick_);
    advance_time(tick_t);
    const Advisory advisory = make_advisory(tick_t);
    if (advise) advise(advisory);
    ++tick_;
  }
  advance_time(event.t);
  apply(event, line, line_number);
  saw_event_ = true;
  last_event_t_ = event.t;
  ++events_;
}

void StabilityMonitor::finish(const AdvisorySink& advise) {
  if (!saw_event_) return;
  if (advised_ && last_advisory_t_ >= last_event_t_) return;
  advance_time(last_event_t_);
  const Advisory advisory = make_advisory(last_event_t_);
  if (advise) advise(advisory);
}

}  // namespace p2p::service
