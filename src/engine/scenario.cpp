#include "engine/scenario.hpp"

#include <cmath>

#include "engine/parse_util.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

namespace {

constexpr const char* kWeightError =
    "mix weights must be nonnegative finite numbers";

/// Parses one nonnegative finite weight; aborts echoing `spec`.
double parse_weight(const std::string& token, const std::string& spec) {
  const double v =
      parse_number(token, spec, /*allow_inf=*/false, kWeightError);
  P2P_ASSERT_MSG(v >= 0,
                 std::string(kWeightError) + " (got \"" + spec + "\")");
  return v;
}

std::vector<double> parse_weight_list(const std::string& args,
                                      const std::string& spec) {
  std::vector<double> weights;
  double total = 0;
  for (const std::string& token : split_list(args, ',')) {
    weights.push_back(parse_weight(token, spec));
    total += weights.back();
  }
  // Checked here rather than left to SwarmParams::normalized_mix so the
  // abort echoes the offending CLI spec like every other parse error.
  P2P_ASSERT_MSG(total > 0,
                 "mix weights must have a positive sum (got \"" + spec +
                     "\")");
  return weights;
}

}  // namespace

ScenarioSpec parse_scenario(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const bool has_args = colon != std::string::npos;
  P2P_ASSERT_MSG(!has_args || colon + 1 < spec.size(),
                 "mix spec has a trailing ':' with no arguments (got \"" +
                     spec + "\")");
  const std::string args = has_args ? spec.substr(colon + 1) : std::string();

  ScenarioSpec scenario;
  scenario.name = name;
  if (name == "example2") {
    std::vector<double> w = has_args ? parse_weight_list(args, spec)
                                     : std::vector<double>{1, 1};
    P2P_ASSERT_MSG(w.size() == 2,
                   "example2 mix takes exactly two weights w12,w34 (got \"" +
                       spec + "\")");
    scenario.num_pieces = 4;
    scenario.mix = SwarmParams::example2_mix(w[0], w[1]);
  } else if (name == "example3") {
    std::vector<double> w = has_args ? parse_weight_list(args, spec)
                                     : std::vector<double>{1, 1, 1};
    P2P_ASSERT_MSG(
        w.size() == 3,
        "example3 mix takes exactly three weights w1,w2,w3 (got \"" + spec +
            "\")");
    scenario.num_pieces = 3;
    scenario.mix = SwarmParams::example3_mix(w[0], w[1], w[2]);
  } else if (name == "oneclub") {
    P2P_ASSERT_MSG(has_args,
                   "oneclub mix needs a piece count, e.g. oneclub:4 (got \"" +
                       spec + "\")");
    const std::vector<double> w = parse_weight_list(args, spec);
    const long k = std::lround(w.size() == 1 ? w[0] : -1);
    P2P_ASSERT_MSG(w.size() == 1 && k >= 2 && k <= kMaxPieces &&
                       std::abs(w[0] - static_cast<double>(k)) < 1e-9,
                   "oneclub mix takes one integer piece count K in [2, 64] "
                   "(got \"" +
                       spec + "\")");
    scenario.num_pieces = static_cast<int>(k);
    scenario.mix = SwarmParams::one_club_mix(scenario.num_pieces);
  } else {
    P2P_ASSERT_MSG(false,
                   "unknown mix name (valid: example2, example3, oneclub; "
                   "got \"" +
                       spec + "\")");
  }
  return scenario;
}

PolicyKind parse_policy(const std::string& spec) {
  if (spec == "random") return PolicyKind::kRandomUseful;
  if (spec == "rarest") return PolicyKind::kRarestFirst;
  if (spec == "mostcommon") return PolicyKind::kMostCommonFirst;
  if (spec == "sequential") return PolicyKind::kSequential;
  P2P_ASSERT_MSG(false,
                 "unknown policy (valid: random, rarest, mostcommon, "
                 "sequential; got \"" +
                     spec + "\")");
  return PolicyKind::kRandomUseful;
}

void expand_arrivals(const ScenarioSpec& scenario, const CellParams& p,
                     std::vector<ArrivalSpec>& out) {
  P2P_ASSERT_MSG(p.mix >= 0 && p.mix <= 1,
                 "axis mix must lie in [0, 1] (0 = empty-arrival stream, "
                 "1 = the named mix)");
  P2P_ASSERT_MSG(scenario.empty() == (scenario.num_pieces == 0),
                 "scenario mix and piece count must be set together");
  if (scenario.empty()) {
    P2P_ASSERT_MSG(p.mix == 0,
                   "axis mix needs a named scenario (--mix) to interpolate "
                   "toward");
  } else {
    P2P_ASSERT_MSG(p.k == scenario.num_pieces,
                   "axis k must equal the scenario's piece count (mix \"" +
                       scenario.name + "\" is defined over K = " +
                       std::to_string(scenario.num_pieces) + ")");
  }

  // Zero-rate streams are dropped so the m = 0 (and degenerate-weight)
  // expansions are byte-for-byte the homogeneous cell: same arrival list,
  // same RNG consumption, same report bytes.
  out.clear();
  const double empty_rate = (1.0 - p.mix) * p.lambda;
  if (empty_rate > 0) out.push_back({PieceSet{}, empty_rate});
  for (const auto& a : scenario.mix) {
    const double rate = p.mix * p.lambda * a.rate;
    if (rate > 0) out.push_back({a.type, rate});
  }
}

ExpandedCell expand(const ScenarioSpec& scenario, const CellParams& p) {
  std::vector<ArrivalSpec> arrivals;
  expand_arrivals(scenario, p, arrivals);
  ExpandedCell cell{
      SwarmParams(p.k, p.us, p.mu, p.gamma, std::move(arrivals)), {}};
  cell.sim.retry_boost = p.eta;
  cell.sim.rate_classes =
      two_class_spread(p.hetero, scenario.slow_weight, scenario.fast_weight);
  cell.sim.policy = p.policy;
  return cell;
}

}  // namespace p2p::engine
