#include "engine/report.hpp"

#include <charconv>
#include <cmath>

#include "util/assert.hpp"

namespace p2p::engine {

void format_number_into(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "nan";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "inf" : "-inf";
    return;
  }
  // Shortest round-trip formatting: the emitted decimal parses back to
  // the exact same bit pattern. The previous "%.10g" silently dropped
  // precision (e.g. pi came back off by 4 ulps), so corpus CSVs were
  // lossy archives of the runs that produced them.
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  P2P_ASSERT(ec == std::errc());
  out.append(buffer, end);
}

std::string format_number(double value) {
  std::string out;
  format_number_into(out, value);
  return out;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; raw
          // they would make the document unparseable by any JSON
          // reader, our own corpus reader included.
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_csv_cell(std::string& out, std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_csv_row(std::string& out, const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) out += ',';
    append_csv_cell(out, cells[c]);
  }
  out += '\n';
}

/// True iff `cell` matches the JSON number grammar exactly
/// (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?), so the emitter can
/// leave it unquoted. Deliberately stricter than strtod, which also
/// accepts spellings JSON parsers reject ("+5", "0x1F", " 12").
bool is_json_number(std::string_view cell) {
  std::size_t i = 0;
  const auto digits = [&] {
    const std::size_t start = i;
    while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') ++i;
    return i > start;
  };
  if (i < cell.size() && cell[i] == '-') ++i;
  if (i < cell.size() && cell[i] == '0') {
    ++i;  // a leading zero must stand alone ("01" is not JSON)
  } else if (!digits()) {
    return false;
  }
  if (i < cell.size() && cell[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < cell.size() && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < cell.size() && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == cell.size() && i > (cell[0] == '-' ? 1u : 0u);
}

/// The JSON cell trichotomy shared by write_row and RowRenderer: numbers
/// unquoted, format_number's non-finite spellings as null, everything
/// else a quoted string.
void append_json_cell(std::string& out, std::string_view cell) {
  if (is_json_number(cell)) {
    out += cell;
  } else if (cell == "inf" || cell == "-inf" || cell == "nan") {
    out += "null";
  } else {
    append_json_string(out, cell);
  }
}

/// One row object WITHOUT its "}..." terminator: the streaming writer
/// cannot know whether a row is the last one until finish(), so the
/// terminator ("},\n" before a successor, "}\n" before the closer) is
/// emitted by whoever learns which it is.
void append_json_row_open(std::string& out,
                          const std::vector<std::string>& columns,
                          const std::vector<std::string>& cells) {
  out += "  {";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ", ";
    append_json_string(out, columns[c]);
    out += ": ";
    append_json_cell(out, cells[c]);
  }
}

/// Flush threshold for the file-backed writer: large enough that fwrite
/// costs amortize away, small enough that the buffer stays cache-warm.
constexpr std::size_t kFlushBytes = 1 << 16;

}  // namespace

RowRenderer::RowRenderer(ReportFormat format,
                         const std::vector<std::string>& columns)
    : format_(format) {
  P2P_ASSERT_MSG(!columns.empty(), "a report needs at least one column");
  prefixes_.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::string prefix;
    if (format == ReportFormat::kCsv) {
      if (c > 0) prefix = ",";
    } else {
      prefix = c == 0 ? "  {" : ", ";
      append_json_string(prefix, columns[c]);
      prefix += ": ";
    }
    prefixes_.push_back(std::move(prefix));
  }
}

RowRenderer::Row::Row(const RowRenderer& renderer, std::string& arena)
    : renderer_(&renderer), arena_(&arena) {
  // A JSON row following another in the same arena gets the separator
  // its predecessor withheld; the arena's last row stays open for the
  // writer to terminate.
  if (renderer.format_ == ReportFormat::kJson && !arena.empty()) {
    arena += "},\n";
  }
}

void RowRenderer::Row::append_prefix() {
  P2P_ASSERT_MSG(cell_ < renderer_->prefixes_.size() && !ended_,
                 "row arity must match the column count");
  *arena_ += renderer_->prefixes_[cell_++];
}

void RowRenderer::Row::number(double value) {
  append_prefix();
  if (renderer_->format_ == ReportFormat::kJson && !std::isfinite(value)) {
    *arena_ += "null";
  } else {
    format_number_into(*arena_, value);
  }
}

void RowRenderer::Row::preformatted_number(std::string_view cell) {
  append_prefix();
  if (renderer_->format_ == ReportFormat::kJson &&
      (cell == "inf" || cell == "-inf" || cell == "nan")) {
    *arena_ += "null";
  } else {
    arena_->append(cell);
  }
}

void RowRenderer::Row::text(std::string_view cell) {
  append_prefix();
  if (renderer_->format_ == ReportFormat::kCsv) {
    append_csv_cell(*arena_, cell);
  } else {
    append_json_cell(*arena_, cell);
  }
}

void RowRenderer::Row::cells_verbatim(std::string_view bytes,
                                      std::size_t count) {
  P2P_ASSERT_MSG(cell_ + count <= renderer_->prefixes_.size() && !ended_,
                 "row arity must match the column count");
  arena_->append(bytes);
  cell_ += count;
}

void RowRenderer::Row::end() {
  P2P_ASSERT_MSG(!ended_, "row ended twice");
  P2P_ASSERT_MSG(cell_ == renderer_->prefixes_.size(),
                 "row arity must match the column count");
  if (renderer_->format_ == ReportFormat::kCsv) *arena_ += '\n';
  ended_ = true;
}

ReportWriter::ReportWriter(const std::string& path, ReportFormat format,
                           std::vector<std::string> columns)
    : columns_(std::move(columns)), format_(format), path_(path) {
  P2P_ASSERT_MSG(!columns_.empty(), "a report needs at least one column");
  if (path_.empty() || path_ == "-") {
    file_ = stdout;
  }
  // A named file is opened lazily, at the first flush: a producer that
  // aborts in validation before writing anything (bad axis spec, ...)
  // must not have truncated a previously good output file — the old
  // write-after-success path never did.
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(buffer_, columns_);
  } else {
    buffer_ += "[\n";
  }
}

ReportWriter::ReportWriter(std::string* sink, ReportFormat format,
                           std::vector<std::string> columns)
    : columns_(std::move(columns)), format_(format), sink_(sink) {
  P2P_ASSERT_MSG(!columns_.empty(), "a report needs at least one column");
  P2P_ASSERT(sink_ != nullptr);
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(*sink_, columns_);
  } else {
    *sink_ += "[\n";
  }
}

ReportWriter::~ReportWriter() {
  if (!finished_) finish();
}

void ReportWriter::write_row(const std::vector<std::string>& cells) {
  P2P_ASSERT_MSG(!finished_, "write_row after finish()");
  P2P_ASSERT_MSG(cells.size() == columns_.size(),
                 "row arity must match the column count");
  std::string& out = sink_ != nullptr ? *sink_ : buffer_;
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(out, cells);
  } else {
    if (rows_ > 0) out += "},\n";
    append_json_row_open(out, columns_, cells);
  }
  ++rows_;
  if (sink_ == nullptr && buffer_.size() >= kFlushBytes) flush_to_file();
}

void ReportWriter::write_rendered(std::string_view bytes,
                                  std::size_t row_count) {
  P2P_ASSERT_MSG(!finished_, "write_rendered after finish()");
  if (row_count == 0) {
    P2P_ASSERT_MSG(bytes.empty(), "rendered bytes carry no rows");
    return;
  }
  std::string& out = sink_ != nullptr ? *sink_ : buffer_;
  // The arena's first row carries no separator (the renderer cannot know
  // whether the writer already holds an open row); rows within the arena
  // already carry theirs.
  if (format_ == ReportFormat::kJson && rows_ > 0) out += "},\n";
  out.append(bytes);
  rows_ += row_count;
  if (sink_ == nullptr && buffer_.size() >= kFlushBytes) flush_to_file();
}

void ReportWriter::finish() {
  P2P_ASSERT_MSG(!finished_, "finish() called twice");
  finished_ = true;
  std::string& out = sink_ != nullptr ? *sink_ : buffer_;
  if (format_ == ReportFormat::kJson) {
    if (rows_ > 0) out += "}\n";
    out += "]\n";
  }
  if (sink_ != nullptr) return;
  if (flusher_.joinable()) {
    flush_to_file();  // hands the closing bytes to the flusher
    {
      std::lock_guard<std::mutex> lock(flush_mutex_);
      flusher_stop_ = true;
    }
    flush_cv_.notify_all();
    flusher_.join();
  } else if (!buffer_.empty()) {
    write_file_bytes(buffer_);
    buffer_.clear();
  }
  if (owns_file_) {
    // fclose flushes the stdio buffer, so a full disk can surface there;
    // a truncated report must not exit 0.
    P2P_ASSERT_MSG(std::fclose(file_) == 0,
                   "short write to report output file");
  } else {
    P2P_ASSERT_MSG(std::fflush(file_) == 0, "short write to stdout");
  }
  file_ = nullptr;
}

void ReportWriter::flush_to_file() {
  if (buffer_.empty()) return;
  if (file_ == stdout) {
    // stdout stays synchronous: callers interleave their own writes.
    write_file_bytes(buffer_);
    buffer_.clear();
    return;
  }
  if (!flusher_.joinable()) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
  std::unique_lock<std::mutex> lock(flush_mutex_);
  // At most one buffer in flight: wait until the flusher drained the
  // previous one, then swap — the producer and the flusher ping-pong the
  // same two allocations for the whole run.
  flush_cv_.wait(lock, [this] { return !flush_pending_; });
  inflight_.swap(buffer_);
  buffer_.clear();
  flush_pending_ = true;
  flush_cv_.notify_all();
}

void ReportWriter::flusher_loop() {
  std::unique_lock<std::mutex> lock(flush_mutex_);
  while (true) {
    flush_cv_.wait(lock, [this] { return flush_pending_ || flusher_stop_; });
    if (flush_pending_) {
      // Write unlocked: the producer only touches inflight_ while
      // flush_pending_ is false.
      lock.unlock();
      write_file_bytes(inflight_);
      inflight_.clear();
      lock.lock();
      flush_pending_ = false;
      flush_cv_.notify_all();
      continue;
    }
    return;  // stop requested with nothing left in flight
  }
}

void ReportWriter::write_file_bytes(const std::string& bytes) {
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb");
    P2P_ASSERT_MSG(file_ != nullptr,
                   "cannot open report output file \"" + path_ + "\"");
    owns_file_ = true;
  }
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file_);
  P2P_ASSERT_MSG(written == bytes.size(),
                 "short write to report output file");
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  P2P_ASSERT_MSG(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  P2P_ASSERT_MSG(cells.size() == columns_.size(),
                 "row arity must match the column count");
  rows_.push_back(std::move(cells));
}

// to_csv/to_json render through ReportWriter, so the streaming and
// in-memory paths cannot drift apart byte-wise.
std::string Table::to_csv() const {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, columns_);
  for (const auto& row : rows_) writer.write_row(row);
  writer.finish();
  return out;
}

std::string Table::to_json() const {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kJson, columns_);
  for (const auto& row : rows_) writer.write_row(row);
  writer.finish();
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), stdout);
    P2P_ASSERT_MSG(written == text.size(), "short write to stdout");
    return;
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  P2P_ASSERT_MSG(file != nullptr, "cannot open report output file");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  // fclose flushes the stdio buffer, so a full disk can surface there;
  // a truncated report must not exit 0.
  const bool closed = std::fclose(file) == 0;
  P2P_ASSERT_MSG(written == text.size() && closed,
                 "short write to report output file");
}

}  // namespace p2p::engine
