#include "engine/report.hpp"

#include <charconv>
#include <cmath>

#include "util/assert.hpp"

namespace p2p::engine {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest round-trip formatting: the emitted decimal parses back to
  // the exact same bit pattern. The previous "%.10g" silently dropped
  // precision (e.g. pi came back off by 4 ulps), so corpus CSVs were
  // lossy archives of the runs that produced them.
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  P2P_ASSERT(ec == std::errc());
  return std::string(buffer, end);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; raw
          // they would make the document unparseable by any JSON
          // reader, our own corpus reader included.
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_csv_cell(std::string& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_csv_row(std::string& out, const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) out += ',';
    append_csv_cell(out, cells[c]);
  }
  out += '\n';
}

/// True iff `cell` matches the JSON number grammar exactly
/// (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?), so the emitter can
/// leave it unquoted. Deliberately stricter than strtod, which also
/// accepts spellings JSON parsers reject ("+5", "0x1F", " 12").
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  const auto digits = [&] {
    const std::size_t start = i;
    while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') ++i;
    return i > start;
  };
  if (i < cell.size() && cell[i] == '-') ++i;
  if (i < cell.size() && cell[i] == '0') {
    ++i;  // a leading zero must stand alone ("01" is not JSON)
  } else if (!digits()) {
    return false;
  }
  if (i < cell.size() && cell[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < cell.size() && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < cell.size() && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == cell.size() && i > (cell[0] == '-' ? 1u : 0u);
}

/// One row object WITHOUT its "}..." terminator: the streaming writer
/// cannot know whether a row is the last one until finish(), so the
/// terminator ("},\n" before a successor, "}\n" before the closer) is
/// emitted by whoever learns which it is.
void append_json_row_open(std::string& out,
                          const std::vector<std::string>& columns,
                          const std::vector<std::string>& cells) {
  out += "  {";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ", ";
    append_json_string(out, columns[c]);
    out += ": ";
    const std::string& cell = cells[c];
    if (is_json_number(cell)) {
      out += cell;
    } else if (cell == "inf" || cell == "-inf" || cell == "nan") {
      out += "null";
    } else {
      append_json_string(out, cell);
    }
  }
}

/// Flush threshold for the file-backed writer: large enough that fwrite
/// costs amortize away, small enough that the buffer stays cache-warm.
constexpr std::size_t kFlushBytes = 1 << 16;

}  // namespace

ReportWriter::ReportWriter(const std::string& path, ReportFormat format,
                           std::vector<std::string> columns)
    : columns_(std::move(columns)), format_(format), path_(path) {
  P2P_ASSERT_MSG(!columns_.empty(), "a report needs at least one column");
  if (path_.empty() || path_ == "-") {
    file_ = stdout;
  }
  // A named file is opened lazily, at the first flush: a producer that
  // aborts in validation before writing anything (bad axis spec, ...)
  // must not have truncated a previously good output file — the old
  // write-after-success path never did.
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(buffer_, columns_);
  } else {
    buffer_ += "[\n";
  }
}

ReportWriter::ReportWriter(std::string* sink, ReportFormat format,
                           std::vector<std::string> columns)
    : columns_(std::move(columns)), format_(format), sink_(sink) {
  P2P_ASSERT_MSG(!columns_.empty(), "a report needs at least one column");
  P2P_ASSERT(sink_ != nullptr);
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(*sink_, columns_);
  } else {
    *sink_ += "[\n";
  }
}

ReportWriter::~ReportWriter() {
  if (!finished_) finish();
}

void ReportWriter::write_row(const std::vector<std::string>& cells) {
  P2P_ASSERT_MSG(!finished_, "write_row after finish()");
  P2P_ASSERT_MSG(cells.size() == columns_.size(),
                 "row arity must match the column count");
  std::string& out = sink_ != nullptr ? *sink_ : buffer_;
  if (format_ == ReportFormat::kCsv) {
    append_csv_row(out, cells);
  } else {
    if (rows_ > 0) out += "},\n";
    append_json_row_open(out, columns_, cells);
  }
  ++rows_;
  if (sink_ == nullptr && buffer_.size() >= kFlushBytes) flush_to_file();
}

void ReportWriter::finish() {
  P2P_ASSERT_MSG(!finished_, "finish() called twice");
  finished_ = true;
  std::string& out = sink_ != nullptr ? *sink_ : buffer_;
  if (format_ == ReportFormat::kJson) {
    if (rows_ > 0) out += "}\n";
    out += "]\n";
  }
  if (sink_ != nullptr) return;
  flush_to_file();
  if (owns_file_) {
    // fclose flushes the stdio buffer, so a full disk can surface there;
    // a truncated report must not exit 0.
    P2P_ASSERT_MSG(std::fclose(file_) == 0,
                   "short write to report output file");
  } else {
    P2P_ASSERT_MSG(std::fflush(file_) == 0, "short write to stdout");
  }
  file_ = nullptr;
}

void ReportWriter::flush_to_file() {
  if (buffer_.empty()) return;
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb");
    P2P_ASSERT_MSG(file_ != nullptr,
                   "cannot open report output file \"" + path_ + "\"");
    owns_file_ = true;
  }
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  P2P_ASSERT_MSG(written == buffer_.size(),
                 "short write to report output file");
  buffer_.clear();
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  P2P_ASSERT_MSG(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  P2P_ASSERT_MSG(cells.size() == columns_.size(),
                 "row arity must match the column count");
  rows_.push_back(std::move(cells));
}

// to_csv/to_json render through ReportWriter, so the streaming and
// in-memory paths cannot drift apart byte-wise.
std::string Table::to_csv() const {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kCsv, columns_);
  for (const auto& row : rows_) writer.write_row(row);
  writer.finish();
  return out;
}

std::string Table::to_json() const {
  std::string out;
  ReportWriter writer(&out, ReportFormat::kJson, columns_);
  for (const auto& row : rows_) writer.write_row(row);
  writer.finish();
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), stdout);
    P2P_ASSERT_MSG(written == text.size(), "short write to stdout");
    return;
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  P2P_ASSERT_MSG(file != nullptr, "cannot open report output file");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  // fclose flushes the stdio buffer, so a full disk can surface there;
  // a truncated report must not exit 0.
  const bool closed = std::fclose(file) == 0;
  P2P_ASSERT_MSG(written == text.size() && closed,
                 "short write to report output file");
}

}  // namespace p2p::engine
