#include "engine/report.hpp"

#include <charconv>
#include <cmath>

#include "util/assert.hpp"

namespace p2p::engine {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest round-trip formatting: the emitted decimal parses back to
  // the exact same bit pattern. The previous "%.10g" silently dropped
  // precision (e.g. pi came back off by 4 ulps), so corpus CSVs were
  // lossy archives of the runs that produced them.
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  P2P_ASSERT(ec == std::errc());
  return std::string(buffer, end);
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  P2P_ASSERT_MSG(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  P2P_ASSERT_MSG(cells.size() == columns_.size(),
                 "row arity must match the column count");
  rows_.push_back(std::move(cells));
}

namespace {

void append_csv_cell(std::string& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

/// True iff `cell` matches the JSON number grammar exactly
/// (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?), so the emitter can
/// leave it unquoted. Deliberately stricter than strtod, which also
/// accepts spellings JSON parsers reject ("+5", "0x1F", " 12").
bool is_json_number(const std::string& cell) {
  std::size_t i = 0;
  const auto digits = [&] {
    const std::size_t start = i;
    while (i < cell.size() && cell[i] >= '0' && cell[i] <= '9') ++i;
    return i > start;
  };
  if (i < cell.size() && cell[i] == '-') ++i;
  if (i < cell.size() && cell[i] == '0') {
    ++i;  // a leading zero must stand alone ("01" is not JSON)
  } else if (!digits()) {
    return false;
  }
  if (i < cell.size() && cell[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < cell.size() && (cell[i] == 'e' || cell[i] == 'E')) {
    ++i;
    if (i < cell.size() && (cell[i] == '+' || cell[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == cell.size() && i > (cell[0] == '-' ? 1u : 0u);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    append_csv_cell(out, columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      append_csv_cell(out, row[c]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_json() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ", ";
      append_json_string(out, columns_[c]);
      out += ": ";
      const std::string& cell = rows_[r][c];
      if (is_json_number(cell)) {
        out += cell;
      } else if (cell == "inf" || cell == "-inf" || cell == "nan") {
        out += "null";
      } else {
        append_json_string(out, cell);
      }
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), stdout);
    P2P_ASSERT_MSG(written == text.size(), "short write to stdout");
    return;
  }
  FILE* file = std::fopen(path.c_str(), "wb");
  P2P_ASSERT_MSG(file != nullptr, "cannot open report output file");
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  // fclose flushes the stdio buffer, so a full disk can surface there;
  // a truncated report must not exit 0.
  const bool closed = std::fclose(file) == 0;
  P2P_ASSERT_MSG(written == text.size() && closed,
                 "short write to report output file");
}

}  // namespace p2p::engine
