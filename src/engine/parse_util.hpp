// Shared low-level parsing for the engine's CLI spec grammars
// (axis specs, refine specs, scenario specs): one strtod-full-consumption
// number parser and one separator splitter, so the grammars cannot drift
// apart on locale/whitespace/partial-token handling.
#pragma once

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace p2p::engine {

/// True iff `token` has the shape of a plain decimal number: an optional
/// leading '-', then a digit. This gates strtod's looser grammar — the
/// "nan"/"inf"/"infinity" word spellings (any case), hex floats ("0x1p3"
/// starts with a digit, so 'x'/'X' is rejected separately), and leading
/// whitespace all fail the gate instead of silently parsing.
inline bool plain_decimal_shape(const std::string& token) {
  const std::size_t first = token.size() > 1 && token[0] == '-' ? 1 : 0;
  if (token.size() <= first || token[first] < '0' || token[first] > '9') {
    return false;
  }
  return token.find_first_of("xX") == std::string::npos;
}

/// Parses one number token. `spec` is the enclosing CLI spec, echoed
/// verbatim on failure so the user sees which argument is bad. When
/// `allow_inf`, the literal token "inf" (exactly that spelling) parses to
/// +infinity; every other spelling must be a finite plain decimal that
/// strtod consumes whole — "1x", "", " 2", "nan", "infinity", "INF",
/// "0x1p3" and overflowing decimals all abort.
inline double parse_number(const std::string& token, const std::string& spec,
                           bool allow_inf, const char* what) {
  if (allow_inf && token == "inf") {
    return std::numeric_limits<double>::infinity();
  }
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  P2P_ASSERT_MSG(plain_decimal_shape(token) &&
                     end == token.c_str() + token.size() && std::isfinite(v),
                 std::string(what) + " (got \"" + spec + "\")");
  return v;
}

/// Splits `body` at every `sep` (no escaping; empty pieces preserved).
inline std::vector<std::string> split_list(const std::string& body,
                                           char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = body.find(sep, start);
    out.push_back(body.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

}  // namespace p2p::engine
