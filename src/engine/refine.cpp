#include "engine/refine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "engine/cell_eval.hpp"
#include "engine/parse_util.hpp"
#include "engine/thread_pool.hpp"
#include "rand/rng.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

namespace {

/// 2^d corner evaluations per box; past six dimensions the corner count
/// alone (64/box) erases the adaptive savings and the volume should be
/// sliced instead.
constexpr std::size_t kMaxAdaptiveAxes = 6;
constexpr int kMaxAdaptiveDepth = 20;

/// The fine vertex lattice the refinement subdivides into. Each adaptive
/// axis's caller values are the coarse vertices; with S = 2^max_depth,
/// fine index g on an axis with coarse values v[0..n-1] denotes
///
///   v[g / S] + (v[g / S + 1] - v[g / S]) * ((g mod S) / S)
///
/// — exactly v[i] at the coarse vertices (g = i * S), so a depth-0 run
/// evaluates precisely the caller's lattice. A vertex's key is its
/// row-major linear fine index (last adaptive axis fastest), which is
/// also the `a` component of its replica seeds — a pure function of the
/// grid, never of evaluation order.
struct AdaptiveLattice {
  SweepGrid effective;
  AxisSlots slots;
  /// Effective-grid slots of the adaptive (>= 2 values) axes, grid order.
  std::vector<std::size_t> axes;
  /// Every effective axis's first value; adaptive slots get overwritten
  /// per vertex.
  std::vector<double> base_values;
  std::uint64_t scale = 1;  // 2^max_depth fine steps per coarse box
  /// Per adaptive axis: coarse box count, fine vertex count
  /// (boxes * scale + 1), and the row-major key stride.
  std::vector<std::uint64_t> boxes;
  std::vector<std::uint64_t> dims;
  std::vector<std::uint64_t> strides;
  std::size_t dense_equivalent = 1;

  double vertex_value(std::size_t j, std::uint64_t g) const {
    const std::vector<double>& vals = effective.axes[axes[j]].values;
    const std::uint64_t ci = g / scale;
    const std::uint64_t f = g % scale;
    if (f == 0) return vals[ci];
    return vals[ci] + (vals[ci + 1] - vals[ci]) *
                          (static_cast<double>(f) / static_cast<double>(scale));
  }
};

AdaptiveLattice make_lattice(const SweepGrid& grid,
                             const SweepOptions& options,
                             const AdaptiveOptions& adaptive) {
  validate_caller_axes(grid);
  validate_options(options);
  P2P_ASSERT_MSG(
      adaptive.max_depth >= 0 && adaptive.max_depth <= kMaxAdaptiveDepth,
      "adaptive depth must lie in [0, " + std::to_string(kMaxAdaptiveDepth) +
          "]");
  P2P_ASSERT_MSG(adaptive.tol >= 0 && std::isfinite(adaptive.tol),
                 "adaptive tolerance must be nonnegative and finite");
  P2P_ASSERT_MSG(adaptive.max_sim_rounds >= 1,
                 "adaptive max_sim_rounds must be >= 1");

  AdaptiveLattice lat;
  lat.effective = effective_grid(grid);
  validate_effective_axes(lat.effective, options);
  lat.slots = resolve_axis_slots(lat.effective);
  lat.scale = std::uint64_t{1} << adaptive.max_depth;
  for (std::size_t i = 0; i < lat.effective.axes.size(); ++i) {
    const Axis& axis = lat.effective.axes[i];
    lat.base_values.push_back(axis.values.front());
    if (axis.values.size() < 2) continue;
    P2P_ASSERT_MSG(
        refinable_axis(axis.name),
        "adaptive refinement subdivides along every varying axis, but axis "
        "\"" +
            axis.name +
            "\" is not refinable (lambda, us, mu, gamma, mix are); pin it to "
            "a single value");
    for (std::size_t v = 0; v < axis.values.size(); ++v) {
      P2P_ASSERT_MSG(std::isfinite(axis.values[v]),
                     "adaptive axis \"" + axis.name +
                         "\" must take finite values");
      P2P_ASSERT_MSG(v == 0 || axis.values[v - 1] < axis.values[v],
                     "adaptive axis \"" + axis.name +
                         "\" must take strictly increasing values");
    }
    lat.axes.push_back(i);
  }
  P2P_ASSERT_MSG(lat.axes.size() >= 2,
                 "adaptive refinement needs at least two varying axes "
                 "(use --refine axis:tol for 1-D localization)");
  P2P_ASSERT_MSG(lat.axes.size() <= kMaxAdaptiveAxes,
                 "adaptive refinement supports at most " +
                     std::to_string(kMaxAdaptiveAxes) + " varying axes (got " +
                     std::to_string(lat.axes.size()) + ")");

  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total = 1;
  for (const std::size_t slot : lat.axes) {
    const std::uint64_t nb = lat.effective.axes[slot].values.size() - 1;
    P2P_ASSERT_MSG(nb <= (kMax - 1) / lat.scale,
                   "adaptive fine lattice does not fit 64-bit vertex keys; "
                   "lower the depth or coarsen the grid");
    const std::uint64_t dim = nb * lat.scale + 1;
    P2P_ASSERT_MSG(total <= kMax / dim,
                   "adaptive fine lattice does not fit 64-bit vertex keys; "
                   "lower the depth or coarsen the grid");
    total *= dim;
    lat.boxes.push_back(nb);
    lat.dims.push_back(dim);
  }
  lat.dense_equivalent = total;
  lat.strides.assign(lat.axes.size(), 1);
  for (std::size_t j = lat.axes.size() - 1; j-- > 0;) {
    lat.strides[j] = lat.strides[j + 1] * lat.dims[j + 1];
  }
  return lat;
}

/// One evaluated lattice vertex: the full cell classification plus
/// whether the CI-straddle escalation ran extra replica rounds here.
struct VertexResult {
  CellResult cell;
  bool escalated = false;
};

/// Classifies (and, unless theory_only, simulates) one vertex. Replica
/// seeds are (base_seed, kStreamAdaptiveSim, key, replica index) and each
/// aggregation round draws its bootstrap from (base_seed,
/// kStreamAdaptiveAgg, key, round): pure functions of the vertex, so the
/// result is identical no matter which thread — or which generation —
/// evaluates it.
void evaluate_vertex(const AdaptiveLattice& lat, const SweepOptions& options,
                     const AdaptiveOptions& adaptive, std::uint64_t key,
                     VertexResult& out) {
  thread_local std::vector<double> values;
  thread_local std::vector<ArrivalSpec> arrival_scratch;
  thread_local std::vector<ReplicaSample> samples;
  values = lat.base_values;
  for (std::size_t j = 0; j < lat.axes.size(); ++j) {
    const std::uint64_t g = (key / lat.strides[j]) % lat.dims[j];
    values[lat.axes[j]] = lat.vertex_value(j, g);
  }
  const CellParams p = cell_params(lat.slots, values, options.scenario.policy);
  fill_cell(out.cell, /*cell=*/0, p, options, arrival_scratch);
  out.escalated = false;
  if (options.theory_only) return;

  // Active learning over the replica budget: every vertex gets the base
  // round; a vertex whose bootstrap CI straddles the decision threshold
  // keeps drawing further rounds (re-aggregated over ALL its samples, so
  // the CI tightens) until it clears or the round cap hits.
  const bool can_escalate =
      std::isfinite(adaptive.sim_threshold) && options.replicas >= 2;
  const int rounds = can_escalate ? adaptive.max_sim_rounds : 1;
  samples.clear();
  for (int round = 0; round < rounds; ++round) {
    for (int rep = 0; rep < options.replicas; ++rep) {
      const std::uint64_t idx =
          static_cast<std::uint64_t>(round) *
              static_cast<std::uint64_t>(options.replicas) +
          static_cast<std::uint64_t>(rep);
      samples.push_back(simulate_replica(
          p, options,
          derive_seed(options.base_seed, kStreamAdaptiveSim, key, idx)));
    }
    Rng agg_rng(derive_seed(options.base_seed, kStreamAdaptiveAgg, key,
                            static_cast<std::uint64_t>(round)));
    out.cell.sim = aggregate_samples(samples, options, agg_rng);
    if (round + 1 >= rounds) break;
    const double lo = out.cell.sim.mean_peers_lo;
    const double hi = out.cell.sim.mean_peers_hi;
    const bool straddles = std::isfinite(lo) && std::isfinite(hi) &&
                           lo <= adaptive.sim_threshold &&
                           adaptive.sim_threshold <= hi;
    if (!straddles) break;
    out.escalated = true;
  }
}

/// One (sub)box: subdivision depth and the fine indices of its lower
/// corner. Its per-axis fine extent is scale >> depth (the same on every
/// axis, so the center vertex exists exactly while depth < max_depth).
struct Box {
  int depth = 0;
  std::array<std::uint64_t, kMaxAdaptiveAxes> origin{};
};

}  // namespace

AdaptiveOptions parse_adaptive(const std::string& spec) {
  AdaptiveOptions adaptive;
  const auto colon = spec.find(':');
  const std::string depth_token =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const double depth = parse_number(
      depth_token, spec, /*allow_inf=*/false,
      "adaptive spec must look like depth or depth:tol, e.g. 4 or 5:0.01");
  P2P_ASSERT_MSG(depth >= 0 && depth <= kMaxAdaptiveDepth &&
                     depth == std::floor(depth),
                 "adaptive depth must be an integer in [0, " +
                     std::to_string(kMaxAdaptiveDepth) + "] (got \"" + spec +
                     "\")");
  adaptive.max_depth = static_cast<int>(depth);
  if (colon != std::string::npos) {
    adaptive.tol = parse_number(
        spec.substr(colon + 1), spec, /*allow_inf=*/false,
        "adaptive spec must look like depth or depth:tol, e.g. 4 or 5:0.01");
    P2P_ASSERT_MSG(adaptive.tol >= 0,
                   "adaptive tolerance must be nonnegative (got \"" + spec +
                       "\")");
  }
  return adaptive;
}

std::vector<std::string> adaptive_axes(const SweepGrid& grid) {
  const SweepGrid effective = effective_grid(grid);
  std::vector<std::string> out;
  for (const Axis& axis : effective.axes) {
    if (axis.values.size() >= 2) out.push_back(axis.name);
  }
  return out;
}

std::vector<std::string> adaptive_columns(const SweepGrid& grid,
                                          const SweepOptions& options) {
  std::vector<std::string> columns = sweep_columns(options);
  columns.push_back(kBoxDepthColumn);
  columns.push_back(kBoxUniformColumn);
  for (const std::string& name : adaptive_axes(grid)) {
    columns.push_back(kBoxExtPrefix + name);
  }
  return columns;
}

AdaptiveSummary run_adaptive_stream(const SweepGrid& grid,
                                    const SweepOptions& options,
                                    const AdaptiveOptions& adaptive,
                                    ReportWriter& writer) {
  const AdaptiveLattice lat = make_lattice(grid, options, adaptive);
  P2P_ASSERT_MSG(writer.columns() == adaptive_columns(grid, options),
                 "adaptive writer must be constructed with adaptive_columns()");

  AdaptiveSummary summary;
  summary.dense_equivalent = lat.dense_equivalent;
  const std::size_t d = lat.axes.size();
  const std::uint64_t corners = std::uint64_t{1} << d;

  // Generation 0: the coarse boxes, row-major over the per-axis box
  // counts (last adaptive axis fastest) — the enumeration order a dense
  // sweep over the coarse lattice uses.
  std::vector<Box> current;
  {
    std::size_t total = 1;
    for (const std::uint64_t nb : lat.boxes) total *= nb;
    current.reserve(total);
    Box b;
    for (std::size_t i = 0; i < total; ++i) {
      current.push_back(b);
      for (std::size_t j = d; j-- > 0;) {
        b.origin[j] += lat.scale;
        if (b.origin[j] < lat.boxes[j] * lat.scale) break;
        b.origin[j] = 0;
      }
    }
  }

  ThreadPool pool(options.threads);
  // Evaluated vertices, shared across generations: a vertex introduced
  // as one generation's edge midpoint is a later generation's corner,
  // and is never paid for twice. unordered_map nodes are stable, so
  // workers fill results through plain pointers while the map keeps
  // growing between generations.
  std::unordered_map<std::uint64_t, VertexResult> verts;
  std::vector<Box> next;
  std::vector<std::uint64_t> new_keys;
  std::vector<VertexResult*> targets;
  std::vector<std::size_t> need;
  std::unordered_map<std::uint64_t, std::size_t> gen_pos;

  const auto corner_key = [&](const Box& box, std::uint64_t corner_bits,
                              std::uint64_t off) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const std::uint64_t shift =
          ((corner_bits >> (d - 1 - j)) & 1) != 0 ? off : 0;
      key += (box.origin[j] + shift) * lat.strides[j];
    }
    return key;
  };
  const auto center_key = [&](const Box& box, std::uint64_t half) {
    std::uint64_t key = 0;
    for (std::size_t j = 0; j < d; ++j) {
      key += (box.origin[j] + half) * lat.strides[j];
    }
    return key;
  };

  // Decides one finished box: subdivide into its 2^d children when the
  // corner/center verdicts disagree (and neither the depth cap nor the
  // physical tolerance stops it), else emit it as a leaf row carrying its
  // origin vertex's evaluation. Runs on the calling thread behind the
  // completion prefix, in box order — the emission order, and hence the
  // bytes, depend only on the grid.
  const auto process_box = [&](const Box& box) {
    const std::uint64_t ext = lat.scale >> box.depth;
    const VertexResult& origin_vr = verts.find(corner_key(box, 0, 0))->second;
    const Stability first = origin_vr.cell.theory.verdict;
    bool uniform = true;
    for (std::uint64_t c = 1; c < corners; ++c) {
      if (verts.find(corner_key(box, c, ext))->second.cell.theory.verdict !=
          first) {
        uniform = false;
      }
    }
    if (box.depth < adaptive.max_depth &&
        verts.find(center_key(box, ext / 2))->second.cell.theory.verdict !=
            first) {
      uniform = false;
    }
    bool split = !uniform && box.depth < adaptive.max_depth;
    if (split && adaptive.tol > 0) {
      bool within_tol = true;
      for (std::size_t j = 0; j < d; ++j) {
        const double width = lat.vertex_value(j, box.origin[j] + ext) -
                             lat.vertex_value(j, box.origin[j]);
        if (width > adaptive.tol) within_tol = false;
      }
      if (within_tol) split = false;
    }
    if (split) {
      const std::uint64_t half = ext / 2;
      for (std::uint64_t c = 0; c < corners; ++c) {
        Box child;
        child.depth = box.depth + 1;
        child.origin = box.origin;
        for (std::size_t j = 0; j < d; ++j) {
          if (((c >> (d - 1 - j)) & 1) != 0) child.origin[j] += half;
        }
        next.push_back(child);
      }
      return;
    }
    CellResult cell = origin_vr.cell;
    cell.index = summary.boxes;
    std::vector<std::string> cells = sweep_row(cell, options);
    cells.push_back(format_number(static_cast<double>(box.depth)));
    cells.push_back(format_number(uniform ? 1 : 0));
    for (std::size_t j = 0; j < d; ++j) {
      cells.push_back(format_number(lat.vertex_value(j, box.origin[j] + ext) -
                                    lat.vertex_value(j, box.origin[j])));
    }
    writer.write_row(cells);
    ++summary.boxes;
    summary.max_depth_reached = std::max(summary.max_depth_reached, box.depth);
    switch (cell.theory.verdict) {
      case Stability::kPositiveRecurrent:
        ++summary.stable;
        break;
      case Stability::kTransient:
        ++summary.transient;
        break;
      case Stability::kBorderline:
        ++summary.borderline;
        break;
    }
  };

  while (!current.empty()) {
    next.clear();
    new_keys.clear();
    targets.clear();
    gen_pos.clear();
    need.assign(current.size(), 0);

    // Plan the generation: every vertex a box needs, deduplicated in
    // first-need order. need[b] is the completed-prefix length of the
    // new-key list after which box b is decidable (0 when every vertex
    // was already evaluated by an earlier generation).
    const auto want = [&](std::uint64_t key, std::size_t b) {
      const auto gp = gen_pos.find(key);
      if (gp != gen_pos.end()) {
        need[b] = std::max(need[b], gp->second + 1);
        return;
      }
      const auto [it, inserted] = verts.try_emplace(key);
      if (!inserted) return;  // evaluated in an earlier generation
      gen_pos.emplace(key, new_keys.size());
      need[b] = std::max(need[b], new_keys.size() + 1);
      new_keys.push_back(key);
      targets.push_back(&it->second);
    };
    for (std::size_t b = 0; b < current.size(); ++b) {
      const Box& box = current[b];
      const std::uint64_t ext = lat.scale >> box.depth;
      for (std::uint64_t c = 0; c < corners; ++c) {
        want(corner_key(box, c, ext), b);
      }
      if (box.depth < adaptive.max_depth) {
        want(center_key(box, ext / 2), b);
      }
    }

    // Stream the generation: workers fan over the new vertices while the
    // calling thread decides, subdivides and emits every box whose
    // vertices lie inside the completed prefix. Children wait for the
    // next pass of the while loop — the dynamically injected generations
    // of the work frontier.
    std::size_t next_box = 0;
    const auto process_ready = [&](std::size_t prefix) {
      while (next_box < current.size() && need[next_box] <= prefix) {
        process_box(current[next_box]);
        ++next_box;
      }
    };
    if (new_keys.empty()) {
      process_ready(0);
    } else {
      const std::size_t chunk =
          options.chunk != 0
              ? options.chunk
              : ThreadPool::auto_chunk(new_keys.size(), pool.size());
      pool.parallel_for_streaming(
          new_keys.size(), chunk, /*window=*/0,
          [&](std::size_t i) {
            evaluate_vertex(lat, options, adaptive, new_keys[i], *targets[i]);
          },
          process_ready);
    }
    P2P_ASSERT(next_box == current.size());
    current.swap(next);
  }

  summary.evaluated = verts.size();
  summary.simulated = options.theory_only ? 0 : verts.size();
  for (const auto& [key, vr] : verts) {
    if (vr.escalated) ++summary.escalated;
  }
  return summary;
}

}  // namespace p2p::engine
