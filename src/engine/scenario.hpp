// Scenario layer for the sweep engine: typed arrival mixes and
// heterogeneous rate classes beyond the homogeneous slice.
//
// A ScenarioSpec names a typed arrival mix — per-type fractions of the
// total arrival rate over piece sets, e.g. the paper's Example 2
// paired-halves mix, the Example 3 single-piece mix, or the Section V
// one-club stream — plus the selection weights of the slow/fast class
// pair that the `hetero` sweep axis spreads.
//
// Two sweep axes consume a scenario:
//
//   * mix m in [0, 1] — interpolation between the empty-arrival stream
//     (m = 0, the homogeneous slice every earlier sweep explored) and the
//     named mix (m = 1): arrivals are (1 - m) * lambda on the empty type
//     plus m * lambda split across the mix fractions. lambda keeps its
//     meaning as the *total* arrival rate, so the mix axis moves the
//     composition of the load, never its volume.
//
//   * hetero h in [0, 1) — mean-preserving spread of the two-class
//     upload-rate multiplier (sim/swarm.hpp two_class_spread): the slow
//     class runs at 1 - h, the fast class at 1 + h * w_slow / w_fast, so
//     the weighted mean multiplier stays 1 and mu remains the mean
//     capacity. h enters only the simulator; Theorem 1 is homogeneous.
//
// expand() materializes one grid cell into the SwarmParams / SwarmSimOptions
// pair the (cell, replica) fan feeds to the classifier, the truncated-CTMC
// cross-check and SwarmSim. At m = 0 and h = 0 the expansion is exactly
// the homogeneous cell (empty-arrival stream, no rate classes), so legacy
// grids are the mix = 0, hetero = 0 slice of the scenario space.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "sim/swarm.hpp"

namespace p2p::engine {

/// A named typed-arrival scenario. `empty()` (no mix types) means the
/// homogeneous empty-arrival stream; the mix axis must then stay 0.
struct ScenarioSpec {
  /// Name as parsed ("example2", "example3", "oneclub"), for messages and
  /// report metadata.
  std::string name;
  /// Piece count the mix is defined over; the k axis must equal this for
  /// every cell when the scenario is non-empty.
  int num_pieces = 0;
  /// Per-type fractions of the typed share of the arrival stream,
  /// normalized to sum 1 (SwarmParams::normalized_mix). Entries may carry
  /// fraction 0 (a degenerate weight); expand() drops them from the
  /// materialized params.
  std::vector<ArrivalSpec> mix;
  /// Selection weights of the slow/fast rate class spread by the hetero
  /// axis (sim/swarm.hpp two_class_spread).
  double slow_weight = 1;
  double fast_weight = 1;
  /// Useful-piece selection the simulated peers run (Theorem 14's class
  /// H). Orthogonal to the arrival mix: a scenario may set a policy with
  /// or without a typed mix, so empty() is unaffected. Theory columns
  /// ignore it — Theorem 14 says the stability region does not move.
  PolicyKind policy = PolicyKind::kRandomUseful;

  bool empty() const { return mix.empty(); }
};

/// Parses a `--mix` scenario spec. Grammar: name[:args] with
///   example2[:w12,w34]   Example 2 paired-halves mix over K = 4
///                        (weights default 1,1)
///   example3[:w1,w2,w3]  Example 3 single-piece mix over K = 3
///                        (weights default 1,1,1)
///   oneclub:K            one-club stream (every arrival holds F - {0})
///                        over K >= 2 pieces
/// Weights are nonnegative with a positive sum. Aborts on malformed
/// specs, echoing the offending spec verbatim.
ScenarioSpec parse_scenario(const std::string& spec);

/// Parses a `--policy` token: "random" (the Theorem-1 baseline),
/// "rarest", "mostcommon", or "sequential". Aborts on unknown tokens,
/// echoing the offending spec verbatim.
PolicyKind parse_policy(const std::string& spec);

/// The model-parameter tuple a single grid point denotes (engine/sweep.hpp
/// fills it from the axis values).
struct CellParams {
  double lambda = 0, us = 0, mu = 0, gamma = 0, eta = 1;
  double mix = 0, hetero = 0;
  int k = 0;
  std::int64_t flash = 0;
  /// Copied from the scenario (no policy axis exists): part of the cell
  /// so backend-domain checks (engine/sweep.hpp typecount_in_domain) see
  /// the full simulator configuration one tuple describes.
  PolicyKind policy = PolicyKind::kRandomUseful;
};

/// One materialized grid cell: the model the theory/CTMC layers classify
/// and the simulator configuration (minus the per-replica rng_seed, which
/// the caller derives from (seed, cell, replica)).
struct ExpandedCell {
  SwarmParams params;
  SwarmSimOptions sim;
};

/// Materializes cell `p` under `scenario`: arrival streams
/// (1 - mix) * lambda on the empty type plus mix * lambda across the mix
/// fractions (zero-rate streams dropped, so mix = 0 reproduces the
/// homogeneous cell byte-for-byte), retry_boost = eta, and rate classes
/// from two_class_spread(hetero, slow_weight, fast_weight). Aborts when
/// mix > 0 with an empty scenario, when k differs from the scenario's
/// piece count, or when mix/hetero leave their domains.
ExpandedCell expand(const ScenarioSpec& scenario, const CellParams& p);

/// The arrival-stream materialization inside expand(), writing into a
/// reused buffer: clears `out`, then appends (1 - mix) * lambda on the
/// empty type and mix * lambda across the mix fractions, dropping
/// zero-rate streams. Runs expand()'s validation of the (scenario, p)
/// pairing. The sweep engine's allocation-free theory path and the
/// simulator path both materialize through here, so the classifier and
/// the simulator can never disagree about the streams a cell carries.
void expand_arrivals(const ScenarioSpec& scenario, const CellParams& p,
                     std::vector<ArrivalSpec>& out);

}  // namespace p2p::engine
