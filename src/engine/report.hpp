// Deterministic tabular report emitters (CSV and JSON) for sweep results.
//
// Cells are formatted to strings once, by the producer, in cell-index
// order after the parallel phase has joined — so the emitted bytes depend
// only on the results, never on thread count or scheduling. Numbers go
// through format_number (std::to_chars shortest round-trip form, with
// "inf"/"-inf"/"nan" spelled out) so CSV diffs are stable across runs
// and every emitted decimal parses back to the exact bit pattern.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace p2p::engine {

/// Deterministic number rendering: std::to_chars shortest form that
/// round-trips to the identical double; non-finite values become "inf",
/// "-inf" or "nan".
std::string format_number(double value);

/// A rectangular table of pre-formatted cells with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Appends a row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// RFC-4180-ish CSV: header line + one line per row, '\n' terminated.
  /// Cells containing commas, quotes or newlines are quoted and escaped.
  std::string to_csv() const;

  /// JSON array of objects keyed by column name. Cells produced by
  /// format_number are emitted as JSON numbers ("inf"/"nan" become null);
  /// everything else is a quoted string.
  std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `text` to `path`, or to stdout when path is "-" or empty.
/// Aborts with a message when the file cannot be opened.
void write_text(const std::string& path, const std::string& text);

}  // namespace p2p::engine
