// Deterministic tabular report emitters (CSV and JSON) for sweep results.
//
// Cells are formatted to strings once, by the producer, in cell-index
// order — so the emitted bytes depend only on the results, never on
// thread count or scheduling. Numbers go through format_number
// (std::to_chars shortest round-trip form, with "inf"/"-inf"/"nan"
// spelled out) so CSV diffs are stable across runs and every emitted
// decimal parses back to the exact bit pattern.
//
// Two emit paths share one serializer:
//
//   * Table        — in-memory rows, rendered whole by to_csv/to_json;
//   * ReportWriter — streaming: header up front, rows appended as they
//                    become final, closer written by finish(). Emitted
//                    bytes are identical to Table's for the same rows
//                    (Table's renderers are implemented ON ReportWriter),
//                    but peak memory is one I/O buffer, not the table —
//                    the emitter million-cell sweeps stream through.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace p2p::engine {

/// Deterministic number rendering: std::to_chars shortest form that
/// round-trips to the identical double; non-finite values become "inf",
/// "-inf" or "nan".
std::string format_number(double value);

/// Appends the JSON string literal for `s` (quoted; '"', '\\' and
/// control characters escaped). The one JSON string encoder — report
/// rows and the phase-diagram summary JSON must escape identically, or
/// the byte-golden corpora drift.
void append_json_string(std::string& out, const std::string& s);

enum class ReportFormat { kCsv, kJson };

/// Streams a rectangular table row by row to a file (or a string, for
/// tests and in-memory consumers) without retaining the rows. The
/// constructor emits the header, write_row one row, finish() the JSON
/// closer + flush; byte-for-byte the output equals Table::to_csv /
/// to_json of the same rows.
class ReportWriter {
 public:
  /// Streams to `path`; "-" or empty means stdout. A named file is
  /// opened (and truncated) lazily at the first buffer flush, so a
  /// producer that aborts before writing anything leaves a pre-existing
  /// file untouched; an unopenable path aborts at that first flush.
  ReportWriter(const std::string& path, ReportFormat format,
               std::vector<std::string> columns);
  /// Streams into `*sink` (appended; not cleared first).
  ReportWriter(std::string* sink, ReportFormat format,
               std::vector<std::string> columns);

  ReportWriter(const ReportWriter&) = delete;
  ReportWriter& operator=(const ReportWriter&) = delete;

  /// Finishes implicitly if finish() was not called; prefer calling it
  /// explicitly — a short write still aborts, just later.
  ~ReportWriter();

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t rows_written() const { return rows_; }

  /// Appends a row; must have exactly columns().size() cells.
  void write_row(const std::vector<std::string>& cells);

  /// Writes the JSON closer, flushes, and closes the file. A truncated
  /// report (disk full, broken pipe) aborts rather than exiting 0.
  /// Exactly once; write_row is invalid afterwards.
  void finish();

 private:
  void flush_to_file();

  std::vector<std::string> columns_;
  ReportFormat format_;
  std::string* sink_ = nullptr;
  std::string path_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::string buffer_;
  std::size_t rows_ = 0;
  bool finished_ = false;
};

/// A rectangular table of pre-formatted cells with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Appends a row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// RFC-4180-ish CSV: header line + one line per row, '\n' terminated.
  /// Cells containing commas, quotes or newlines are quoted and escaped.
  std::string to_csv() const;

  /// JSON array of objects keyed by column name. Cells produced by
  /// format_number are emitted as JSON numbers ("inf"/"nan" become null);
  /// everything else is a quoted string.
  std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `text` to `path`, or to stdout when path is "-" or empty.
/// Aborts with a message when the file cannot be opened.
void write_text(const std::string& path, const std::string& text);

}  // namespace p2p::engine
