// Deterministic tabular report emitters (CSV and JSON) for sweep results.
//
// Cells are formatted to strings once, by the producer, in cell-index
// order — so the emitted bytes depend only on the results, never on
// thread count or scheduling. Numbers go through format_number
// (std::to_chars shortest round-trip form, with "inf"/"-inf"/"nan"
// spelled out) so CSV diffs are stable across runs and every emitted
// decimal parses back to the exact bit pattern.
//
// Three emit paths share one serializer:
//
//   * Table        — in-memory rows, rendered whole by to_csv/to_json;
//   * ReportWriter — streaming: header up front, rows appended as they
//                    become final, closer written by finish(). Emitted
//                    bytes are identical to Table's for the same rows
//                    (Table's renderers are implemented ON ReportWriter),
//                    but peak memory is one I/O buffer, not the table —
//                    the emitter million-cell sweeps stream through.
//   * RowRenderer  — parallel producers: renders one row into a
//                    caller-supplied arena, byte-identical to what
//                    write_row would have appended, so worker threads
//                    can format rows concurrently and the writer just
//                    concatenates them (write_rendered).
//
// A file-backed ReportWriter double-buffers its output: full buffers are
// handed to a background flusher thread, so the producing thread overlaps
// compute with fwrite instead of stalling on the disk.
#pragma once

#include <cstdio>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace p2p::engine {

/// Deterministic number rendering: std::to_chars shortest form that
/// round-trips to the identical double; non-finite values become "inf",
/// "-inf" or "nan".
std::string format_number(double value);

/// format_number appended to `out` in place: same bytes, no temporary
/// string — the form every per-row hot path uses.
void format_number_into(std::string& out, double value);

/// Appends the JSON string literal for `s` (quoted; '"', '\\' and
/// control characters escaped). The one JSON string encoder — report
/// rows and the phase-diagram summary JSON must escape identically, or
/// the byte-golden corpora drift.
void append_json_string(std::string& out, std::string_view s);

enum class ReportFormat { kCsv, kJson };

/// Renders rows of a fixed column schema into caller-supplied string
/// arenas, producing exactly the bytes ReportWriter::write_row appends
/// for the same cells. This is what lets sweep workers format rows in
/// parallel: each worker renders into its own arena, and the writer
/// concatenates the finished spans (ReportWriter::write_rendered)
/// instead of formatting on the consuming thread.
///
/// The per-column prefixes ("," / ", \"name\": ") are rendered once at
/// construction; rendering a row costs no allocation beyond arena
/// growth. A RowRenderer is immutable after construction and may be
/// shared by any number of threads — each in-flight row lives in a Row
/// cursor on the rendering thread's stack.
class RowRenderer {
 public:
  RowRenderer(ReportFormat format, const std::vector<std::string>& columns);

  std::size_t num_columns() const { return prefixes_.size(); }
  ReportFormat format() const { return format_; }

  /// One row being rendered into an arena. In JSON the row's "}"
  /// terminator is withheld exactly like write_row does (the writer
  /// emits "},\n" or "}\n" when it learns whether a successor exists);
  /// beginning a row in a non-empty arena emits the "},\n" separator
  /// first — so an arena holding N rows carries N-1 separators and no
  /// trailing terminator, which is precisely the byte layout
  /// write_rendered expects.
  class Row {
   public:
    /// Begins a row appended to `arena`. The arena must contain only
    /// rows previously rendered by the same renderer (or nothing).
    Row(const RowRenderer& renderer, std::string& arena);

    /// Appends format_number(value) as the next cell (JSON renders
    /// non-finite values as null, like write_row).
    void number(double value);
    /// Appends a cell that already carries format_number's bytes — the
    /// memcpy fast path for cached axis-value tokens. JSON maps the
    /// "inf"/"-inf"/"nan" spellings to null; no other inspection runs,
    /// so the cell MUST have come from format_number.
    void preformatted_number(std::string_view cell);
    /// Appends a general text cell: CSV quoting and the JSON
    /// number-vs-null-vs-string trichotomy, byte-identical to write_row.
    void text(std::string_view cell);
    /// Appends `count` cells previously rendered by this renderer at
    /// the same column positions (prefixes included) — the cached
    /// constant-suffix fast path. The bytes are trusted verbatim.
    void cells_verbatim(std::string_view bytes, std::size_t count);
    /// Ends the row; aborts unless exactly num_columns() cells were
    /// emitted (the arity check write_row does on its cell vector).
    void end();

   private:
    void append_prefix();

    const RowRenderer* renderer_;
    std::string* arena_;
    std::size_t cell_ = 0;
    bool ended_ = false;
  };

 private:
  ReportFormat format_;
  /// prefixes_[c]: the bytes emitted before cell c's value.
  std::vector<std::string> prefixes_;
};

/// Streams a rectangular table row by row to a file (or a string, for
/// tests and in-memory consumers) without retaining the rows. The
/// constructor emits the header, write_row one row, finish() the JSON
/// closer + flush; byte-for-byte the output equals Table::to_csv /
/// to_json of the same rows.
class ReportWriter {
 public:
  /// Streams to `path`; "-" or empty means stdout. A named file is
  /// opened (and truncated) lazily at the first buffer flush, so a
  /// producer that aborts before writing anything leaves a pre-existing
  /// file untouched; an unopenable path aborts at that first flush.
  ReportWriter(const std::string& path, ReportFormat format,
               std::vector<std::string> columns);
  /// Streams into `*sink` (appended; not cleared first).
  ReportWriter(std::string* sink, ReportFormat format,
               std::vector<std::string> columns);

  ReportWriter(const ReportWriter&) = delete;
  ReportWriter& operator=(const ReportWriter&) = delete;

  /// Finishes implicitly if finish() was not called; prefer calling it
  /// explicitly — a short write still aborts, just later.
  ~ReportWriter();

  const std::vector<std::string>& columns() const { return columns_; }
  ReportFormat format() const { return format_; }
  std::size_t rows_written() const { return rows_; }

  /// Appends a row; must have exactly columns().size() cells.
  void write_row(const std::vector<std::string>& cells);

  /// Appends `row_count` rows rendered into `bytes` by a RowRenderer
  /// built over this writer's format and columns — the concatenate-only
  /// fast path of the worker-rendered pipeline. The bytes are appended
  /// verbatim (after the JSON row separator, when due), so the result
  /// is byte-identical to write_row of the same cells.
  void write_rendered(std::string_view bytes, std::size_t row_count);

  /// Writes the JSON closer, flushes (joining the background flusher if
  /// one was started), and closes the file. A truncated report (disk
  /// full, broken pipe) aborts rather than exiting 0. Exactly once;
  /// write_row is invalid afterwards.
  void finish();

 private:
  void flush_to_file();
  void flusher_loop();
  /// Opens the file lazily and writes `bytes`; aborts on a short write.
  void write_file_bytes(const std::string& bytes);

  std::vector<std::string> columns_;
  ReportFormat format_;
  std::string* sink_ = nullptr;
  std::string path_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::string buffer_;
  std::size_t rows_ = 0;
  bool finished_ = false;

  // Double-buffered output: a full buffer_ is swapped into inflight_ and
  // written by the flusher thread while the producer keeps appending.
  // The flusher is started lazily at the first file flush, so small
  // reports (everything fits in one buffer until finish()) never pay
  // for a thread. stdout stays synchronous — callers interleave their
  // own writes with it.
  std::thread flusher_;
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::string inflight_;
  bool flush_pending_ = false;
  bool flusher_stop_ = false;
};

/// A rectangular table of pre-formatted cells with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Appends a row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// RFC-4180-ish CSV: header line + one line per row, '\n' terminated.
  /// Cells containing commas, quotes or newlines are quoted and escaped.
  std::string to_csv() const;

  /// JSON array of objects keyed by column name. Cells produced by
  /// format_number are emitted as JSON numbers ("inf"/"nan" become null);
  /// everything else is a quoted string.
  std::string to_json() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `text` to `path`, or to stdout when path is "-" or empty.
/// Aborts with a message when the file cannot be opened.
void write_text(const std::string& path, const std::string& text);

}  // namespace p2p::engine
