// Adaptive multi-resolution refinement of the Theorem-1 phase boundary.
//
// A dense cartesian sweep spends nearly every cell far from the
// stability frontier. run_adaptive_stream inverts the budget: the
// caller's grid values become a coarse *vertex lattice* whose gaps are
// the depth-0 boxes (a quadtree in 2-D, sparse 2^d-ary boxes in
// higher-D), and only boxes whose corner/center verdicts disagree are
// subdivided — generation by generation, each generation's newly needed
// vertices fanned across the thread pool through
// ThreadPool::parallel_for_streaming while finished boxes are decided
// and emitted behind the completion prefix. Vertices are shared between
// neighboring boxes and across generations, so the evaluation count
// scales with the frontier's area, not the volume's.
//
// The report is the grid schema plus a trailing multi-resolution block:
//
//   ... sweep columns ... | box_depth | box_uniform | box_ext_<axis>...
//
// one row per *leaf box*, whose parameter columns hold the box's origin
// (lower corner) vertex and whose verdict/margin/sim columns are that
// vertex's evaluation. box_uniform records whether the leaf's corners
// agreed (1) or the depth/tolerance cap stopped a still-disagreeing box
// (0) — the frontier cover. Dense sweeps never carry the block, so every
// committed archive keeps its bytes.
//
// Active learning on the simulation side: when `sim_threshold` is set,
// vertices whose bootstrap CI (analysis/confidence.hpp via the shared
// aggregation path) straddles the threshold get their replica budget
// escalated in deterministic rounds — the replica money goes where the
// theory/sim decision is actually uncertain.
//
// Determinism contract (same as the dense pipeline): every vertex's
// replicas derive their RNG streams from (base_seed, vertex key,
// replica) alone, vertex keys and box orders are pure functions of the
// grid, so the emitted report is byte-identical for any --threads and
// any chunk size.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/sweep.hpp"

namespace p2p::engine {

/// First trailing column of the multi-resolution block: the leaf box's
/// subdivision depth (0 = a coarse box of the caller's lattice).
inline constexpr const char* kBoxDepthColumn = "box_depth";

/// Second trailing column: 1 when the leaf's corner/center verdicts all
/// agree, 0 when the depth or tolerance cap stopped a still-disagreeing
/// box — the rows with 0 cover the phase boundary.
inline constexpr const char* kBoxUniformColumn = "box_uniform";

/// Prefix of the per-adaptive-axis physical box widths that close the
/// block ("box_ext_lambda", "box_ext_us", ...), in grid axis order.
inline constexpr const char* kBoxExtPrefix = "box_ext_";

struct AdaptiveOptions {
  /// Maximum subdivision depth: a depth-0 box may be halved per axis this
  /// many times, so the fine lattice is 2^max_depth times the coarse
  /// resolution. 0 degenerates to classifying the coarse boxes only.
  int max_depth = 4;
  /// Physical stopping width: a disagreeing box whose width is <= tol on
  /// every adaptive axis is emitted as a (non-uniform) leaf instead of
  /// subdivided further. 0 = subdivide disagreements all the way to
  /// max_depth.
  double tol = 0;
  /// When finite (and the sweep simulates with replicas >= 2): a vertex
  /// whose bootstrap CI on the mean occupancy straddles this threshold —
  /// the theory/sim decision boundary p2p_phase classifies against — has
  /// its replica budget escalated (another `replicas` runs per round,
  /// re-aggregated over all samples) until the CI clears the threshold
  /// or max_sim_rounds is reached. NaN = never escalate.
  double sim_threshold = std::nan("");
  /// Total replica rounds a straddling vertex may consume (>= 1).
  int max_sim_rounds = 4;
};

/// Parses "depth" or "depth:tol", e.g. "4:0.01". Depth is a nonnegative
/// integer (<= 20), tol a nonnegative finite number (default 0). Aborts
/// on malformed specs, echoing the offending spec verbatim.
AdaptiveOptions parse_adaptive(const std::string& spec);

/// The adaptive axes of `grid` after default-filling: every axis with
/// >= 2 values, in grid order. These are the box dimensions; each must
/// be refinable (refinable_axis) with strictly increasing finite values.
std::vector<std::string> adaptive_axes(const SweepGrid& grid);

/// The adaptive report's column names for (grid, options): the grid
/// schema (sweep_columns) plus box_depth, box_uniform and one
/// box_ext_<axis> per adaptive axis. A streaming ReportWriter for
/// run_adaptive_stream must be constructed with exactly these.
std::vector<std::string> adaptive_columns(const SweepGrid& grid,
                                          const SweepOptions& options);

/// What an adaptive run leaves behind (the leaf rows went to the
/// writer): the savings accounting the tool prints, and the verdict
/// tallies of the emitted leaves.
struct AdaptiveSummary {
  /// Leaf boxes emitted (= report rows).
  std::size_t boxes = 0;
  /// Distinct lattice vertices classified (the cost an equivalent dense
  /// sweep pays per vertex of the fine lattice).
  std::size_t evaluated = 0;
  /// Vertices that ran simulation replicas (evaluated, unless
  /// theory_only).
  std::size_t simulated = 0;
  /// Vertices whose bootstrap CI straddled sim_threshold and received
  /// escalated replica rounds.
  std::size_t escalated = 0;
  /// Deepest subdivision actually reached.
  int max_depth_reached = 0;
  /// Vertex count of the dense fine lattice at max_depth (product over
  /// adaptive axes of coarse_boxes * 2^max_depth + 1) — the cell count a
  /// dense sweep at matched resolution would evaluate.
  std::size_t dense_equivalent = 0;
  /// Leaf-box origin verdict tallies (like SweepSummary's).
  std::size_t stable = 0;
  std::size_t transient = 0;
  std::size_t borderline = 0;
};

/// Streams the adaptive refinement of `grid` under the sweep `options`
/// to `writer` (construct it with adaptive_columns(grid, options)).
/// Missing axes take default_region_grid values like run_sweep; at least
/// two axes must vary, every varying axis must be refinable with
/// strictly increasing finite values, and the fine lattice must fit a
/// 64-bit vertex key. Rows are leaf boxes in deterministic order
/// (generation by generation, box order within a generation), emitted as
/// their vertices complete. Byte-identical for any (threads, chunk).
AdaptiveSummary run_adaptive_stream(const SweepGrid& grid,
                                    const SweepOptions& options,
                                    const AdaptiveOptions& adaptive,
                                    ReportWriter& writer);

}  // namespace p2p::engine
