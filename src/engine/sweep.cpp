#include "engine/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <span>

#include "core/model.hpp"
#include "engine/cell_eval.hpp"
#include "engine/parse_util.hpp"
#include "engine/thread_pool.hpp"
#include "rand/rng.hpp"
#include "sim/swarm.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

namespace {

/// Axes the frontier refiner may bisect: the continuous parameters that
/// enter the Theorem-1 closed form. mix qualifies — the verdict depends
/// on the arrival composition — but eta, hetero and flash do not (Section
/// VIII-C's point is that retries leave the stability region unchanged,
/// the theory is homogeneous in upload rate, and flash only moves the
/// initial state), and k is integral.
constexpr const char* kRefinableAxes[] = {"lambda", "us", "mu", "gamma",
                                          "mix"};

/// Parses one axis/tolerance value; `spec` is the enclosing CLI spec,
/// echoed verbatim on failure so the user sees which argument is bad.
double parse_value(const std::string& token, const std::string& spec) {
  return parse_number(token, spec, /*allow_inf=*/true,
                      "axis values must be numbers (or 'inf')");
}

double axis_value(const std::vector<Axis>& axes,
                  const std::vector<double>& values,
                  const std::string& name) {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes[i].name == name) return values[i];
  }
  P2P_ASSERT_MSG(false, "sweep cell queried for an axis the grid lacks");
  return 0;
}

CellParams extract_params(const std::vector<Axis>& axes,
                          const std::vector<double>& values) {
  CellParams p;
  p.lambda = axis_value(axes, values, "lambda");
  p.us = axis_value(axes, values, "us");
  p.mu = axis_value(axes, values, "mu");
  p.gamma = axis_value(axes, values, "gamma");
  p.eta = axis_value(axes, values, "eta");
  p.mix = axis_value(axes, values, "mix");
  p.hetero = axis_value(axes, values, "hetero");
  const double k_raw = axis_value(axes, values, "k");
  p.k = static_cast<int>(std::lround(k_raw));
  P2P_ASSERT_MSG(p.k >= 1 && std::abs(k_raw - p.k) < 1e-9,
                 "axis k must take positive integer values");
  const double flash_raw = axis_value(axes, values, "flash");
  p.flash = std::llround(flash_raw);
  P2P_ASSERT_MSG(p.flash >= 0 &&
                     std::abs(flash_raw - static_cast<double>(p.flash)) < 1e-9,
                 "axis flash must take nonnegative integer values");
  return p;
}

/// Odometer over the grid's cell enumeration (last axis fastest): a
/// worker walking a contiguous block of cells pays one div/mod chain at
/// seek() and a carry-propagating increment per step after that, with
/// the per-axis digit and value exposed directly — no per-cell vector
/// allocation like SweepGrid::cell_values.
class CellCursor {
 public:
  explicit CellCursor(const SweepGrid& grid)
      : grid_(&grid),
        digits_(grid.axes.size(), 0),
        values_(grid.axes.size(), 0) {}

  void seek(std::size_t cell) {
    std::size_t rem = cell;
    for (std::size_t i = digits_.size(); i-- > 0;) {
      const auto& vals = grid_->axes[i].values;
      digits_[i] = rem % vals.size();
      values_[i] = vals[digits_[i]];
      rem /= vals.size();
    }
  }

  void advance() {
    for (std::size_t i = digits_.size(); i-- > 0;) {
      const auto& vals = grid_->axes[i].values;
      if (++digits_[i] < vals.size()) {
        values_[i] = vals[digits_[i]];
        return;
      }
      digits_[i] = 0;
      values_[i] = vals[0];
    }
  }

  /// Per-axis value indices of the current cell, aligned with the axes.
  const std::vector<std::size_t>& digits() const { return digits_; }
  /// Per-axis values of the current cell, aligned with the axes.
  const std::vector<double>& values() const { return values_; }

 private:
  const SweepGrid* grid_;
  std::vector<std::size_t> digits_;
  std::vector<double> values_;
};

/// Everything a worker needs to render one grid row without touching
/// shared mutable state: the columns' RowRenderer, the axis slot map,
/// every axis value pre-rendered to its format_number token, and — for
/// theory-only sweeps without a CTMC column — the constant 8-cell sim
/// tail every row shares, cached once as raw bytes.
struct GridRenderPlan {
  RowRenderer renderer;
  AxisSlots slots;
  /// axis_tokens[axis][digit] = format_number of that grid value. k and
  /// flash are rounded to their integer first: sweep_row formats the
  /// *rounded* c.k / c.flash, and a raw axis value may sit anywhere
  /// within the 1e-9 integrality slack.
  std::vector<std::vector<std::string>> axis_tokens;
  /// The nine axis columns in render order, with maximal runs of
  /// single-valued axes collapsed into one pre-rendered byte span
  /// (cells > 0): a typical phase diagram varies two axes and pins
  /// seven, so most of the row head is one memcpy.
  struct RenderSegment {
    std::size_t axis = 0;  // grid slot of the varying axis (cells == 0)
    std::size_t cells = 0;
    std::string bytes;
  };
  std::vector<RenderSegment> segments;
  /// The verdict and critical_piece cells take a handful of values per
  /// run; their full cell bytes (column prefix included) are cached so
  /// the hot loop appends them verbatim instead of allocating a verdict
  /// string and re-deciding quoting per cell. verdict_tokens is indexed
  /// by the Stability enum value; critical_tokens by critical_piece + 1
  /// (so -1, the gamma <= mu branch, is slot 0).
  std::string verdict_tokens[3];
  std::vector<std::string> critical_tokens;
  /// Full trailing sim_backend cells (absent under theory_only), indexed
  /// by backend_token_slot of the cell's resolved backend.
  std::string backend_tokens[2];
  std::string const_tail;
  std::size_t const_tail_cells = 0;
  /// Full policy cell (present only when simulating off the RandomUseful
  /// baseline): the policy is sweep-constant, so one cached cell serves
  /// every row.
  std::string policy_token;
  /// Full trailing fluid_verdict cells (present only under
  /// SweepOptions::fluid), indexed by the Stability enum value.
  std::string fluid_tokens[3];
};

/// backend_tokens index of a resolved backend.
std::size_t backend_token_slot(SimBackend resolved) {
  return resolved == SimBackend::kTypeCount ? 1 : 0;
}

GridRenderPlan make_grid_render_plan(const SweepGrid& effective,
                                     const AxisSlots& slots,
                                     const SweepOptions& options,
                                     const ReportWriter& writer) {
  GridRenderPlan plan{RowRenderer(writer.format(), writer.columns()),
                      slots,
                      {},
                      {},
                      {},
                      {},
                      {},
                      {},
                      0,
                      {},
                      {}};
  plan.axis_tokens.resize(effective.axes.size());
  int max_k = 1;
  for (std::size_t i = 0; i < effective.axes.size(); ++i) {
    plan.axis_tokens[i].reserve(effective.axes[i].values.size());
    for (const double v : effective.axes[i].values) {
      double cell_value = v;
      if (i == slots.k) {
        cell_value = static_cast<double>(std::lround(v));
        max_k = std::max(max_k, static_cast<int>(std::lround(v)));
      }
      if (i == slots.flash) {
        cell_value = static_cast<double>(std::llround(v));
      }
      plan.axis_tokens[i].push_back(format_number(cell_value));
    }
  }
  // Cache the low-cardinality cells' full bytes by rendering each
  // candidate value through the real Row path at its real column
  // position (so the cached bytes can never drift from what text() /
  // number() would emit): the verdict strings, every critical_piece the
  // grid's K values allow, and — in a theory-only sweep with the CTMC
  // column disabled — the constant 8-cell sim tail (replicas = 0 and
  // seven NaNs) every row shares.
  const std::size_t num_columns = plan.renderer.num_columns();
  const auto cache_cells = [&](std::size_t column, std::size_t count,
                               const auto& emit) {
    std::string scratch;
    RowRenderer::Row row(plan.renderer, scratch);
    for (std::size_t c = 0; c < column; ++c) row.number(0);
    const std::size_t mark = scratch.size();
    emit(row);
    std::string bytes = scratch.substr(mark);
    for (std::size_t c = column + count; c < num_columns; ++c) row.number(0);
    row.end();
    return bytes;
  };
  // Front-counted: index column + nine axes + the optional per-type
  // block put "verdict" here (the tail is no longer a fixed distance
  // from the end — the sim_backend column exists only when simulating).
  const std::size_t verdict_column =
      sweep_schema_head().size() +
      (options.scenario.empty() ? 0 : 1 + options.scenario.mix.size());
  for (const Stability v : {Stability::kPositiveRecurrent,
                            Stability::kTransient, Stability::kBorderline}) {
    plan.verdict_tokens[static_cast<int>(v)] = cache_cells(
        verdict_column, 1,
        [&](RowRenderer::Row& row) { row.text(to_string(v)); });
  }
  for (int piece = -1; piece < max_k; ++piece) {
    plan.critical_tokens.push_back(
        cache_cells(verdict_column + 2, 1,
                    [&](RowRenderer::Row& row) { row.number(piece); }));
  }
  // The optional policy and fluid_verdict columns trail sim_backend, so
  // every end-anchored column position below backs off by however many
  // of them this sweep emits.
  const std::size_t fluid_cells = options.fluid ? 1 : 0;
  const bool with_policy =
      !options.theory_only &&
      options.scenario.policy != PolicyKind::kRandomUseful;
  const std::size_t policy_cells = with_policy ? 1 : 0;
  if (!options.theory_only) {
    for (const SimBackend b : {SimBackend::kPerPeer, SimBackend::kTypeCount}) {
      plan.backend_tokens[backend_token_slot(b)] = cache_cells(
          num_columns - 1 - policy_cells - fluid_cells, 1,
          [&](RowRenderer::Row& row) { row.text(to_string(b)); });
    }
  }
  if (with_policy) {
    plan.policy_token =
        cache_cells(num_columns - 1 - fluid_cells, 1,
                    [&](RowRenderer::Row& row) {
                      row.text(to_string(options.scenario.policy));
                    });
  }
  if (options.fluid) {
    for (const Stability v : {Stability::kPositiveRecurrent,
                              Stability::kTransient,
                              Stability::kBorderline}) {
      plan.fluid_tokens[static_cast<int>(v)] = cache_cells(
          num_columns - 1, 1,
          [&](RowRenderer::Row& row) { row.text(to_string(v)); });
    }
  }
  if (options.theory_only && options.ctmc_max_peers <= 0) {
    plan.const_tail = cache_cells(
        num_columns - 8 - fluid_cells, 8, [&](RowRenderer::Row& row) {
          row.number(0);  // replicas
          for (int c = 0; c < 7; ++c) row.number(std::nan(""));
        });
    plan.const_tail_cells = 8;
  }
  // Collapse maximal runs of single-valued axis columns (columns 1..9,
  // after the index) into one pre-rendered span each; varying axes stay
  // per-digit token lookups.
  const std::size_t order[9] = {slots.lambda, slots.us,  slots.mu,
                                slots.gamma,  slots.k,   slots.eta,
                                slots.flash,  slots.mix, slots.hetero};
  for (std::size_t j = 0; j < 9;) {
    if (effective.axes[order[j]].values.size() != 1) {
      plan.segments.push_back({order[j], 0, {}});
      ++j;
      continue;
    }
    std::size_t len = 1;
    while (j + len < 9 && effective.axes[order[j + len]].values.size() == 1) {
      ++len;
    }
    std::string bytes =
        cache_cells(1 + j, len, [&](RowRenderer::Row& row) {
          for (std::size_t t = 0; t < len; ++t) {
            row.preformatted_number(plan.axis_tokens[order[j + t]][0]);
          }
        });
    plan.segments.push_back({0, len, std::move(bytes)});
    j += len;
  }
  return plan;
}

/// Renders one finished cell into `arena` — the worker-side twin of
/// sweep_row + write_row. MIRRORS sweep_row CELL FOR CELL: any column
/// added or reordered there must land here too, or the worker-rendered
/// bytes drift from the Table emitters (the byte-identity suite in
/// tests/test_sweep_stream.cpp is the tripwire).
void render_grid_row(const GridRenderPlan& plan, const SweepOptions& options,
                     const std::vector<std::size_t>& digits,
                     const CellResult& c, std::string& arena) {
  RowRenderer::Row row(plan.renderer, arena);
  // Integer fast path for the cell index: for an integer below 2^53
  // that is not a multiple of 10, its plain decimal digits ARE
  // format_number's output — integers there are exactly representable
  // and >= 1 apart, so no shorter decimal round-trips, and scientific
  // needs every significant digit plus "e+NN", strictly longer. (A
  // trailing zero can flip that: format_number(1e5) is "1e+05", so
  // multiples of 10 take the double path.)
  if (c.index < (std::uint64_t{1} << 53) &&
      (c.index == 0 || c.index % 10 != 0)) {
    char buf[20];
    const auto res = std::to_chars(buf, buf + sizeof(buf), c.index);
    row.preformatted_number(
        std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  } else {
    row.number(static_cast<double>(c.index));
  }
  // The nine axis cells (lambda, us, mu, gamma, k, eta, flash, mix,
  // hetero, in that order) — pinned axes come pre-merged into verbatim
  // spans by make_grid_render_plan.
  for (const GridRenderPlan::RenderSegment& seg : plan.segments) {
    if (seg.cells > 0) {
      row.cells_verbatim(seg.bytes, seg.cells);
    } else {
      row.preformatted_number(plan.axis_tokens[seg.axis][digits[seg.axis]]);
    }
  }
  if (!options.scenario.empty()) {
    row.number((1.0 - c.mix) * c.lambda);
    for (const auto& a : options.scenario.mix) {
      row.number(c.mix * c.lambda * a.rate);
    }
  }
  row.cells_verbatim(plan.verdict_tokens[static_cast<int>(c.theory.verdict)],
                     1);
  row.number(c.theory.margin);
  row.cells_verbatim(
      plan.critical_tokens[static_cast<std::size_t>(c.theory.critical_piece +
                                                    1)],
      1);
  if (plan.const_tail_cells > 0) {
    row.cells_verbatim(plan.const_tail, plan.const_tail_cells);
  } else {
    row.number(c.sim.replicas);
    row.number(c.sim.final_peers_mean);
    row.number(c.sim.mean_peers_mean);
    row.number(c.sim.mean_sojourn);
    row.number(c.sim.mean_peers_sem);
    row.number(c.sim.mean_peers_lo);
    row.number(c.sim.mean_peers_hi);
    row.number(c.ctmc_mean_peers);
    if (!options.theory_only) {
      row.cells_verbatim(plan.backend_tokens[backend_token_slot(c.backend)],
                         1);
    }
  }
  if (!plan.policy_token.empty()) {
    row.cells_verbatim(plan.policy_token, 1);
  }
  if (options.fluid) {
    row.cells_verbatim(plan.fluid_tokens[static_cast<int>(c.fluid)], 1);
  }
  row.end();
}

/// Chunk, claim-window and ring sizing shared by the grid and frontier
/// streaming pipelines.
struct RingPlan {
  /// Work items claimed per pool mutex acquisition.
  std::size_t chunk = 1;
  /// Claims may run this many items past the emitted prefix: enough
  /// slack that one slow chunk does not stall the claimers, while
  /// keeping live results O(chunk * threads) rather than O(num_items).
  std::size_t window = 0;
  /// Replica-sample ring length. The live span of unaggregated samples
  /// is the claim window PLUS up to replicas-1 items of the block the
  /// consumed prefix stopped inside (blocks are only aggregated whole),
  /// rounded up to a whole number of replica blocks so each block's
  /// samples stay contiguous modulo the ring, and capped at the job
  /// itself. Ring reuse is safe because the pool opens the claim window
  /// only after the consumer has taken the prefix: a writer's slot can
  /// then only collide with an item of a fully aggregated block.
  /// (Sizing to the bare window was a real bug: with
  /// chunk % replicas != 0 a mid-block prefix let a claimable tail item
  /// overwrite the straddling block's samples.)
  std::size_t ring_items = 0;
  /// Per-cell / per-row result ring length.
  std::size_t block_ring = 1;
};

RingPlan plan_rings(std::size_t num_items, std::size_t replicas,
                    const SweepOptions& options) {
  RingPlan plan;
  plan.chunk = options.chunk != 0
                   ? options.chunk
                   : ThreadPool::auto_chunk(num_items, options.threads);
  const std::size_t window_chunks =
      4 * static_cast<std::size_t>(options.threads) + 2;
  plan.window = window_chunks * plan.chunk;
  std::size_t ring_items = plan.window + (replicas - 1);
  ring_items = ((ring_items + replicas - 1) / replicas) * replicas;
  plan.ring_items = std::min(ring_items, num_items);
  plan.block_ring = plan.ring_items / replicas + 1;
  return plan;
}

/// One ring slot of in-flight cell state. `pending` is the replica
/// countdown that elects the slot's aggregator/renderer: every worker
/// block that finishes items of the cell decrements by the number it
/// finished, and the decrement that reaches zero (an acq_rel RMW, so it
/// observes every earlier finisher's writes through the release
/// sequence) aggregates the samples and renders the row. The consumer
/// re-arms `pending` with a relaxed store — safe because the pool opens
/// the claim window past a prefix only after on_prefix returns, so no
/// worker can touch the slot concurrently, and the hand-back is ordered
/// by the pool mutex.
struct CellSlot {
  CellResult result;
  std::string arena;
  std::atomic<std::size_t> pending{0};
};

/// One ring slot of the chunk-batched writer path (replicas == 1): the
/// finished block's rendered bytes plus its verdict tallies. With one
/// item per cell a claimed block is completed entirely by its worker,
/// so the whole chunk's rows can share one arena and the consumer pays
/// one write_rendered — and one ring access — per CHUNK instead of per
/// cell. Reuse safety is the claim window again: a chunk index is only
/// claimable within window_chunks of the consumed prefix, and the ring
/// is larger than the window.
struct ChunkSlot {
  std::string arena;
  std::size_t rows = 0;
  std::size_t stable = 0, transient = 0, borderline = 0;
};

/// The shared sweep pipeline behind run_sweep and run_sweep_stream:
/// validates, expands the grid, fans the (cell, replica) items across
/// the pool in chunk-sized blocks, and emits each finished cell in index
/// order as soon as every cell before it is complete. Live state is a
/// ring of O(window) items.
///
/// Exactly one of `sink` / `writer` is non-null. With a writer, the
/// cell's report row is rendered INSIDE the worker that finishes it
/// (into the slot's reusable arena), and the consumer thread only
/// concatenates finished spans into the writer — formatting scales with
/// the pool instead of serializing on the consumer. With a sink, the
/// CellResult is handed over unrendered (run_sweep keeps the structs).
SweepSummary sweep_cells_ordered(const SweepGrid& grid,
                                 const SweepOptions& options,
                                 const std::function<void(CellResult&&)>* sink,
                                 ReportWriter* writer) {
  P2P_ASSERT((sink != nullptr) != (writer != nullptr));
  validate_caller_axes(grid);
  validate_options(options);
  const SweepGrid effective = effective_grid(grid);
  validate_effective_axes(effective, options);
  if (!options.theory_only && options.sim_backend == SimBackend::kTypeCount) {
    // A forced backend must never silently change the law: abort up
    // front, naming the offending axis, instead of running out-of-domain
    // cells on the wrong simulator (kAuto falls back per cell instead).
    const std::string violation =
        typecount_domain_violation(effective, options.scenario);
    P2P_ASSERT_MSG(violation.empty(), violation);
  }

  const std::size_t num_cells = effective.num_cells();
  // Theory-only sweeps run one closed-form item per cell: fanning unused
  // replica slots would just multiply claim traffic.
  const std::size_t replicas =
      options.theory_only ? 1 : static_cast<std::size_t>(options.replicas);
  P2P_ASSERT_MSG(num_cells <= SIZE_MAX / replicas,
                 "sweep work item count overflows size_t (" +
                     std::to_string(num_cells) + " cells x " +
                     std::to_string(replicas) + " replicas)");
  const std::size_t num_items = num_cells * replicas;

  const RingPlan plan = plan_rings(num_items, replicas, options);
  const std::size_t ring_items = plan.ring_items;
  // The slot ring is rounded up to a power of two so the per-cell slot
  // lookup is a mask, not a division — the ring only ever grows, so the
  // reuse-safety argument (claim window opens after the consumer) is
  // unchanged.
  std::size_t cell_ring = 1;
  while (cell_ring < plan.block_ring) cell_ring *= 2;
  const std::size_t slot_mask = cell_ring - 1;

  // With one item per cell and a writer, a claimed block is finished
  // entirely by one worker, so the pipeline batches whole chunks: each
  // block renders into its chunk's arena and the ring carries
  // (range, bytes) instead of per-cell structs.
  const bool chunk_mode = writer != nullptr && replicas == 1;
  std::size_t chunk_ring = 1;
  if (chunk_mode) {
    const std::size_t window_chunks = plan.window / plan.chunk;
    while (chunk_ring < window_chunks + 2) chunk_ring *= 2;
  }
  const std::size_t chunk_mask = chunk_ring - 1;
  std::vector<ChunkSlot> chunk_slots(chunk_mode ? chunk_ring : 0);

  std::vector<ReplicaSample> samples(
      options.theory_only || chunk_mode ? 0 : ring_items);
  std::vector<CellSlot> slots(chunk_mode ? 0 : cell_ring);
  if (replicas > 1) {
    for (auto& slot : slots) {
      slot.pending.store(replicas, std::memory_order_relaxed);
    }
  }

  const AxisSlots axis_slots = resolve_axis_slots(effective);
  std::optional<GridRenderPlan> render;
  if (writer != nullptr) {
    render.emplace(
        make_grid_render_plan(effective, axis_slots, options, *writer));
  }

  SweepSummary summary;
  summary.cells = num_cells;
  std::size_t emitted = 0;

  ThreadPool pool(options.threads);
  pool.parallel_for_streaming_blocks(
      num_items, plan.chunk, plan.window,
      [&](std::size_t begin, std::size_t end) {
        // One claimed block: walk its cells with an odometer cursor and
        // a reused arrival buffer — the per-item work is rounding, the
        // closed form, and (in replica mode) the simulations; nothing
        // here allocates per cell in the theory-only path.
        CellCursor cursor(effective);
        cursor.seek(begin / replicas);
        std::vector<ArrivalSpec> arrival_scratch;
        if (chunk_mode) {
          // Chunk-batched path: one local CellResult reused across the
          // block's cells, rows appended to the chunk's arena, verdicts
          // tallied into the chunk slot (the sums are order-free, so
          // the totals stay deterministic).
          ChunkSlot& cslot = chunk_slots[(begin / plan.chunk) & chunk_mask];
          cslot.arena.clear();
          cslot.rows = end - begin;
          cslot.stable = cslot.transient = cslot.borderline = 0;
          CellResult result;
          for (std::size_t cell = begin; cell < end; ++cell) {
            const CellParams p = cell_params(axis_slots, cursor.values(),
                                             options.scenario.policy);
            fill_cell(result, cell, p, options, arrival_scratch);
            if (!options.theory_only) {
              const ReplicaSample sample = simulate_replica(
                  p, options,
                  derive_seed(options.base_seed, kStreamCellSim, cell, 0));
              Rng agg_rng(
                  derive_seed(options.base_seed, kStreamCellAgg, cell, 0));
              result.sim = aggregate_samples(
                  std::span<const ReplicaSample>(&sample, 1), options,
                  agg_rng);
            }
            switch (result.theory.verdict) {
              case Stability::kPositiveRecurrent:
                ++cslot.stable;
                break;
              case Stability::kTransient:
                ++cslot.transient;
                break;
              case Stability::kBorderline:
                ++cslot.borderline;
                break;
            }
            render_grid_row(*render, options, cursor.digits(), result,
                            cslot.arena);
            if (cell + 1 < end) cursor.advance();
          }
          return;
        }
        // single = the one-replica shape: item == cell, so the per-cell
        // loop below runs no division at all.
        const bool single = replicas == 1;
        std::size_t item = begin;
        while (item < end) {
          const std::size_t cell = single ? item : item / replicas;
          const std::size_t cell_end =
              single ? item + 1 : std::min(end, (cell + 1) * replicas);
          CellSlot& slot = slots[cell & slot_mask];
          const CellParams p = cell_params(axis_slots, cursor.values(),
                                           options.scenario.policy);
          if (single || item % replicas == 0) {
            fill_cell(slot.result, cell, p, options, arrival_scratch);
          }
          if (!options.theory_only) {
            for (std::size_t it = item; it < cell_end; ++it) {
              samples[it % ring_items] = simulate_replica(
                  p, options,
                  derive_seed(options.base_seed, kStreamCellSim, cell,
                              it % replicas));
            }
          }
          // The finisher that completes the cell (with one replica:
          // always this block) aggregates and renders it, on whatever
          // worker thread it ran — seeds and formatting depend only on
          // the cell index, so the bytes cannot.
          const std::size_t done = cell_end - item;
          const bool last =
              single ||
              slot.pending.fetch_sub(done, std::memory_order_acq_rel) == done;
          if (last) {
            if (!options.theory_only) {
              Rng agg_rng(
                  derive_seed(options.base_seed, kStreamCellAgg, cell, 0));
              slot.result.sim = aggregate_samples(
                  std::span<const ReplicaSample>(
                      samples.data() + (cell * replicas) % ring_items,
                      replicas),
                  options, agg_rng);
            }
            if (render) {
              slot.arena.clear();
              render_grid_row(*render, options, cursor.digits(), slot.result,
                              slot.arena);
            }
          }
          item = cell_end;
          if (item < end) cursor.advance();
        }
      },
      [&](std::size_t prefix_items) {
        // The consumer runs serially on the calling thread in cell
        // order; with a writer it only tallies verdicts and concatenates
        // the pre-rendered spans — one span per chunk in chunk mode.
        if (chunk_mode) {
          while (emitted < prefix_items) {
            ChunkSlot& cslot =
                chunk_slots[(emitted / plan.chunk) & chunk_mask];
            writer->write_rendered(cslot.arena, cslot.rows);
            summary.stable += cslot.stable;
            summary.transient += cslot.transient;
            summary.borderline += cslot.borderline;
            emitted += cslot.rows;
          }
          return;
        }
        const std::size_t complete_cells = prefix_items / replicas;
        for (; emitted < complete_cells; ++emitted) {
          CellSlot& slot = slots[emitted & slot_mask];
          switch (slot.result.theory.verdict) {
            case Stability::kPositiveRecurrent:
              ++summary.stable;
              break;
            case Stability::kTransient:
              ++summary.transient;
              break;
            case Stability::kBorderline:
              ++summary.borderline;
              break;
          }
          if (writer != nullptr) {
            writer->write_rendered(slot.arena, 1);
          } else {
            (*sink)(std::move(slot.result));
          }
          if (replicas > 1) {
            slot.pending.store(replicas, std::memory_order_relaxed);
          }
        }
      });
  return summary;
}

}  // namespace

Axis parse_axis(const std::string& spec) {
  // Every message names the offending spec verbatim: a sweep command
  // often carries half a dozen ';'-separated axes, and an abort that
  // does not say which one is malformed sends the user diffing specs by
  // hand.
  const auto eq = spec.find('=');
  P2P_ASSERT_MSG(eq != std::string::npos && eq > 0 && eq + 1 < spec.size(),
                 "axis spec must look like name=lo:hi:count, name=v1,v2 "
                 "or name=v (got \"" +
                     spec + "\")");
  Axis axis;
  axis.name = spec.substr(0, eq);
  const std::string body = spec.substr(eq + 1);

  if (body.find(':') != std::string::npos) {
    // Inclusive linspace lo:hi:count.
    const auto c1 = body.find(':');
    const auto c2 = body.find(':', c1 + 1);
    P2P_ASSERT_MSG(c2 != std::string::npos &&
                       body.find(':', c2 + 1) == std::string::npos,
                   "linspace axis must be name=lo:hi:count (got \"" + spec +
                       "\")");
    const double lo = parse_value(body.substr(0, c1), spec);
    const double hi = parse_value(body.substr(c1 + 1, c2 - c1 - 1), spec);
    const double count_raw = parse_value(body.substr(c2 + 1), spec);
    const long count = std::lround(count_raw);
    P2P_ASSERT_MSG(count >= 1 && std::abs(count_raw - count) < 1e-9,
                   "linspace count must be a positive integer (got \"" +
                       spec + "\")");
    P2P_ASSERT_MSG(std::isfinite(lo) && std::isfinite(hi),
                   "linspace endpoints must be finite (got \"" + spec +
                       "\")");
    for (long i = 0; i < count; ++i) {
      axis.values.push_back(
          count == 1 ? lo
                     : lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(count - 1));
    }
  } else {
    // Explicit list (possibly a single value).
    for (const std::string& token : split_list(body, ',')) {
      axis.values.push_back(parse_value(token, spec));
    }
  }
  return axis;
}

std::size_t SweepGrid::num_cells() const {
  std::size_t n = 1;
  for (const auto& axis : axes) {
    const std::size_t size = axis.values.size();
    // A hostile spec (four 65536-point linspaces) would wrap the product
    // and silently under-allocate the whole sweep; fail fast and name
    // the grid's axis sizes so the user sees which spec did it.
    if (size != 0 && n > SIZE_MAX / size) {
      std::string shape;
      for (const auto& a : axes) {
        if (!shape.empty()) shape += " x ";
        shape += a.name + "[" + std::to_string(a.values.size()) + "]";
      }
      P2P_ASSERT_MSG(false,
                     "sweep grid cell count overflows size_t (grid " +
                         shape + ")");
    }
    n *= size;
  }
  return axes.empty() ? 0 : n;
}

std::vector<double> SweepGrid::cell_values(std::size_t index) const {
  P2P_ASSERT(index < num_cells());
  std::vector<double> values(axes.size());
  std::size_t rem = index;
  for (std::size_t i = axes.size(); i-- > 0;) {
    const std::size_t size = axes[i].values.size();
    values[i] = axes[i].values[rem % size];
    rem /= size;
  }
  return values;
}

void SweepGrid::set_axis(Axis axis) {
  for (auto& existing : axes) {
    if (existing.name == axis.name) {
      existing = std::move(axis);
      return;
    }
  }
  axes.push_back(std::move(axis));
}

const Axis* SweepGrid::find_axis(const std::string& name) const {
  for (const auto& axis : axes) {
    if (axis.name == name) return &axis;
  }
  return nullptr;
}

SweepGrid parse_grid(const std::string& spec) {
  SweepGrid grid;
  std::size_t start = 0;
  while (start < spec.size()) {
    auto semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    if (semi > start) {
      grid.set_axis(parse_axis(spec.substr(start, semi - start)));
    }
    start = semi + 1;
  }
  return grid;
}

SweepGrid default_region_grid() {
  SweepGrid grid;
  grid.set_axis(parse_axis("lambda=0.5:3.0:16"));
  grid.set_axis(parse_axis("us=0.2:1.7:16"));
  grid.set_axis(parse_axis("mu=1"));
  grid.set_axis(parse_axis("gamma=1.25"));
  grid.set_axis(parse_axis("k=3"));
  grid.set_axis(parse_axis("eta=1"));
  grid.set_axis(parse_axis("flash=0"));
  grid.set_axis(parse_axis("mix=0"));
  grid.set_axis(parse_axis("hetero=0"));
  return grid;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  SweepResult result;
  result.options = options;
  const std::function<void(CellResult&&)> sink = [&](CellResult&& cell) {
    result.cells.push_back(std::move(cell));
  };
  sweep_cells_ordered(grid, options, &sink, nullptr);
  result.grid = effective_grid(grid);
  return result;
}

SweepSummary run_sweep_stream(const SweepGrid& grid,
                              const SweepOptions& options,
                              ReportWriter& writer) {
  P2P_ASSERT_MSG(writer.columns() == sweep_columns(options),
                 "run_sweep_stream writer must be built with "
                 "sweep_columns(options)");
  return sweep_cells_ordered(grid, options, nullptr, &writer);
}

namespace {

// The single source of truth for both report headers. sweep_columns /
// frontier_columns assemble the emitted headers from these arrays, and
// the corpus reader (engine/csv_reader.cpp) validates archived headers
// against the same spans — schema drift is a compile-and-test failure,
// not a corrupted notebook months later.
constexpr const char* kSweepHead[] = {"cell", "lambda", "us",    "mu",
                                      "gamma", "k",     "eta",   "flash",
                                      "mix",   "hetero"};
constexpr const char* kSweepTail[] = {
    "verdict",           "margin",          "critical_piece",
    "replicas",          "sim_final_peers", "sim_mean_peers",
    "sim_mean_sojourn",  "sim_mean_peers_sem",
    "sim_mean_peers_lo", "sim_mean_peers_hi", "ctmc_mean_peers"};
constexpr const char* kFrontierHead[] = {
    "row", "axis", "bracketed", "value", "value_lo", "value_hi", "margin",
    "lambda", "us", "mu", "gamma", "k", "eta", "flash", "mix", "hetero"};
constexpr const char* kFrontierTail[] = {
    "replicas", "sim_mean_peers", "sim_mean_peers_sem", "sim_mean_peers_lo",
    "sim_mean_peers_hi"};

/// head + [per-type block] + tail + [sim_backend] + [policy] +
/// [fluid_verdict], the shape of both report tables. The optional
/// columns trail the fixed tail in that order so every archived corpus
/// remains a prefix of the new schema (the reader treats each as
/// optional).
std::vector<std::string> schema_columns(std::span<const char* const> head,
                                        std::span<const char* const> tail,
                                        const ScenarioSpec& scenario,
                                        bool with_backend, bool with_policy,
                                        bool with_fluid) {
  std::vector<std::string> cols(head.begin(), head.end());
  if (!scenario.empty()) {
    // Per-type arrival-rate columns: the composition the mix axis
    // actually produced, one column per stream of the scenario.
    cols.push_back(kLambdaEmptyColumn);
    for (const auto& a : scenario.mix) cols.push_back(mix_column_name(a.type));
  }
  cols.insert(cols.end(), tail.begin(), tail.end());
  if (with_backend) cols.push_back(kSimBackendColumn);
  if (with_policy) cols.push_back(kPolicyColumn);
  if (with_fluid) cols.push_back(kFluidVerdictColumn);
  return cols;
}

}  // namespace

std::span<const char* const> sweep_schema_head() { return kSweepHead; }
std::span<const char* const> sweep_schema_tail() { return kSweepTail; }
std::span<const char* const> frontier_schema_head() { return kFrontierHead; }
std::span<const char* const> frontier_schema_tail() { return kFrontierTail; }

std::string mix_column_name(PieceSet type) {
  std::string name = kLambdaTypePrefix;
  bool first = true;
  for (int piece : type) {
    if (!first) name += '.';
    name += std::to_string(piece + 1);
    first = false;
  }
  return name;
}

std::vector<std::string> sweep_columns(const SweepOptions& options) {
  // Theory-only grids carry no backend or policy column: no simulator
  // ran, and archived closed-form corpora must keep reproducing
  // byte-identically. The policy column likewise stays absent on the
  // RandomUseful baseline, so pre-policy sim archives keep their bytes.
  const bool sim = !options.theory_only;
  return schema_columns(
      sweep_schema_head(), sweep_schema_tail(), options.scenario, sim,
      sim && options.scenario.policy != PolicyKind::kRandomUseful,
      options.fluid);
}

const char* to_string(SimBackend backend) {
  switch (backend) {
    case SimBackend::kPerPeer:
      return "perpeer";
    case SimBackend::kTypeCount:
      return "typecount";
    case SimBackend::kAuto:
      break;
  }
  P2P_ASSERT_MSG(false, "kAuto is a request, not a resolved backend");
  return "";
}

bool typecount_in_domain(const CellParams& p) {
  // eta != 1 is per-peer state (the retry boost tracks each peer's last
  // contact), hetero != 0 draws per-peer rate classes, the dense
  // type-count state caps K at 16, and any policy besides RandomUseful
  // makes the transfer law depend on which concrete peer is contacted —
  // outside any of these, only the per-peer simulator realizes the
  // cell's law.
  return p.policy == PolicyKind::kRandomUseful && p.eta == 1.0 &&
         p.hetero == 0.0 && p.k <= 16;
}

SimBackend resolve_sim_backend(SimBackend requested, const CellParams& p) {
  if (requested != SimBackend::kAuto) return requested;
  return typecount_in_domain(p) ? SimBackend::kTypeCount
                                : SimBackend::kPerPeer;
}

std::string typecount_domain_violation(const SweepGrid& grid,
                                       const ScenarioSpec& scenario) {
  if (scenario.policy != PolicyKind::kRandomUseful) {
    // The policy is a scenario dimension, not a grid axis, but the
    // message keeps the named-axis shape of the other domain legs so
    // every violation reads the same way.
    return std::string("the typecount backend requires policy = "
                       "random-useful (the exchangeable type-count state "
                       "assumes the Theorem-1 selection law), but axis "
                       "policy takes the value ") +
           to_string(scenario.policy) +
           "; drop the axis or use the perpeer/auto backend";
  }
  const SweepGrid effective = effective_grid(grid);
  const auto offends = [](const std::string& name, double v) {
    if (name == "eta") return v != 1.0;
    if (name == "hetero") return v != 0.0;
    if (name == "k") return v > 16;
    return false;
  };
  const auto requirement = [](const std::string& name) {
    if (name == "eta") {
      return "eta = 1 (the Section VIII-C retry boost is per-peer state)";
    }
    if (name == "hetero") {
      return "hetero = 0 (rate classes are drawn per peer)";
    }
    return "k <= 16 (the dense type-count state is 2^k wide)";
  };
  for (const auto& axis : effective.axes) {
    for (const double v : axis.values) {
      if (offends(axis.name, v)) {
        return "the typecount backend requires " +
               std::string(requirement(axis.name)) + ", but axis " +
               axis.name + " takes the value " +
               format_number(v) +
               "; drop the axis or use the perpeer/auto backend";
      }
    }
  }
  return {};
}

std::string typecount_domain_violation(const SweepGrid& grid) {
  return typecount_domain_violation(grid, ScenarioSpec{});
}

std::vector<std::string> sweep_row(const CellResult& c,
                                   const SweepOptions& options) {
  const ScenarioSpec& scenario = options.scenario;
  std::vector<std::string> row = {
      format_number(static_cast<double>(c.index)), format_number(c.lambda),
      format_number(c.us),                         format_number(c.mu),
      format_number(c.gamma),                      format_number(c.k),
      format_number(c.eta),
      format_number(static_cast<double>(c.flash)), format_number(c.mix),
      format_number(c.hetero)};
  if (!scenario.empty()) {
    row.push_back(format_number((1.0 - c.mix) * c.lambda));
    for (const auto& a : scenario.mix) {
      row.push_back(format_number(c.mix * c.lambda * a.rate));
    }
  }
  for (std::string cell :
       {to_string(c.theory.verdict), format_number(c.theory.margin),
        format_number(c.theory.critical_piece),
        format_number(c.sim.replicas),
        format_number(c.sim.final_peers_mean),
        format_number(c.sim.mean_peers_mean),
        format_number(c.sim.mean_sojourn),
        format_number(c.sim.mean_peers_sem),
        format_number(c.sim.mean_peers_lo),
        format_number(c.sim.mean_peers_hi),
        format_number(c.ctmc_mean_peers)}) {
    row.push_back(std::move(cell));
  }
  if (!options.theory_only) row.push_back(to_string(c.backend));
  if (!options.theory_only &&
      options.scenario.policy != PolicyKind::kRandomUseful) {
    row.push_back(to_string(options.scenario.policy));
  }
  if (options.fluid) row.push_back(to_string(c.fluid));
  return row;
}

Table SweepResult::to_table() const {
  Table table(sweep_columns(options));
  for (const auto& c : cells) table.add_row(sweep_row(c, options));
  return table;
}

RefineOptions parse_refine(const std::string& spec) {
  const auto colon = spec.find(':');
  P2P_ASSERT_MSG(colon != std::string::npos && colon > 0 &&
                     colon + 1 < spec.size(),
                 "refine spec must look like axis:tol, e.g. lambda:0.01 "
                 "(got \"" +
                     spec + "\")");
  RefineOptions refine;
  refine.axis = spec.substr(0, colon);
  refine.tol = parse_value(spec.substr(colon + 1), spec);
  P2P_ASSERT_MSG(std::isfinite(refine.tol) && refine.tol > 0,
                 "refine tolerance must be positive and finite (got \"" +
                     spec + "\")");
  return refine;
}

bool refinable_axis(const std::string& name) {
  for (const char* known : kRefinableAxes) {
    if (name == known) return true;
  }
  return false;
}

namespace {

/// Closed-form bisection of one row: scan the refined axis's coarse
/// values for the first adjacent verdict change, then halve the bracket
/// until it is at most `tol` wide. No simulation runs here — Theorem 1
/// is a formula — which is what lets refinement localize the boundary
/// ~10 bisections deep for the price of one coarse cell.
FrontierPoint bisect_row(const SweepGrid& rows, std::size_t row,
                         const Axis& refined, const RefineOptions& refine,
                         const ScenarioSpec& scenario) {
  std::vector<Axis> axes = rows.axes;
  axes.push_back(Axis{refined.name, {}});
  std::vector<double> values = rows.cell_values(row);
  values.push_back(0);
  const auto params_at = [&](double v) {
    values.back() = v;
    CellParams p = extract_params(axes, values);
    p.policy = scenario.policy;
    return p;
  };
  const auto verdict_at = [&](double v) {
    return classify(expand(scenario, params_at(v)).params).verdict;
  };

  FrontierPoint pt;
  pt.row = row;

  std::vector<Stability> verdicts(refined.values.size());
  for (std::size_t i = 0; i < refined.values.size(); ++i) {
    verdicts[i] = verdict_at(refined.values[i]);
  }
  std::size_t bracket = refined.values.size();
  for (std::size_t i = 0; i + 1 < refined.values.size(); ++i) {
    if (verdicts[i] != verdicts[i + 1]) {
      bracket = i;
      break;
    }
  }
  if (bracket == refined.values.size()) {
    // No flip inside the coarse range: report the row's parameters with
    // the refined slot (and everything downstream) NaN.
    pt.params = params_at(std::nan(""));
    return pt;
  }

  double lo = refined.values[bracket];
  double hi = refined.values[bracket + 1];
  const Stability at_lo = verdicts[bracket];
  // 200 iterations caps runaway loops when tol is below the bracket's
  // floating-point resolution; each halving is one classify() call.
  for (int iter = 0; std::abs(hi - lo) > refine.tol && iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (verdict_at(mid) == at_lo) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  pt.bracketed = true;
  pt.value_lo = lo;
  pt.value_hi = hi;
  pt.value = 0.5 * (lo + hi);
  pt.params = params_at(pt.value);
  pt.margin = classify(expand(scenario, pt.params).params).margin;
  return pt;
}

/// One ring slot of in-flight frontier state; see CellSlot for the
/// `pending` countdown and re-arm protocol.
struct FrontierSlot {
  FrontierPoint point;
  std::string arena;
  std::atomic<std::size_t> pending{0};
};

/// Renders one localized frontier point into `arena` — the worker-side
/// twin of frontier_row + write_row. MIRRORS frontier_row CELL FOR
/// CELL; see render_grid_row's note.
void render_frontier_row(const RowRenderer& renderer,
                         const FrontierPoint& pt, const RefineOptions& refine,
                         const SweepOptions& options, std::string& arena) {
  RowRenderer::Row row(renderer, arena);
  row.number(static_cast<double>(pt.row));
  row.text(refine.axis);
  row.number(pt.bracketed ? 1 : 0);
  row.number(pt.value);
  row.number(pt.value_lo);
  row.number(pt.value_hi);
  row.number(pt.margin);
  row.number(pt.params.lambda);
  row.number(pt.params.us);
  row.number(pt.params.mu);
  row.number(pt.params.gamma);
  row.number(pt.params.k);
  row.number(pt.params.eta);
  row.number(static_cast<double>(pt.params.flash));
  row.number(pt.params.mix);
  row.number(pt.params.hetero);
  if (!options.scenario.empty()) {
    row.number((1.0 - pt.params.mix) * pt.params.lambda);
    for (const auto& a : options.scenario.mix) {
      row.number(pt.params.mix * pt.params.lambda * a.rate);
    }
  }
  row.number(pt.sim.replicas);
  row.number(pt.sim.mean_peers_mean);
  row.number(pt.sim.mean_peers_sem);
  row.number(pt.sim.mean_peers_lo);
  row.number(pt.sim.mean_peers_hi);
  // The backend the point's replicas run on; the refined axis is never
  // a domain axis (eta/hetero/k), so the resolution is well defined
  // even for unbracketed rows.
  row.text(to_string(resolve_sim_backend(options.sim_backend, pt.params)));
  if (options.scenario.policy != PolicyKind::kRandomUseful) {
    row.text(to_string(options.scenario.policy));
  }
  row.end();
}

/// The shared frontier pipeline behind refine_frontier and
/// run_frontier_stream: validates, fans the (row, replica) items across
/// the pool in chunk-sized blocks, and emits each localized point in
/// row order as soon as every row before it is complete. Each block
/// re-runs the closed-form bisection once per row it touches instead of
/// publishing it across blocks: the bisection is a deterministic
/// handful of classify() calls, cheap next to one replica simulation,
/// and recomputing it keeps the live state a ring of O(chunk * threads)
/// items with no cross-item synchronization. Unbracketed rows skip the
/// simulation entirely. Seeds key on the row index, so adding an
/// unbracketed row elsewhere in the grid never shifts another row's
/// streams — and the emitted numbers match the retained-points emitter
/// of PRs 2/3 bit-exactly.
///
/// Exactly one of `sink` / `writer` is non-null; with a writer the row
/// bytes are rendered by the finishing worker, as in the grid pipeline.
FrontierSummary frontier_points_ordered(
    const SweepGrid& grid, const SweepOptions& options,
    const RefineOptions& refine,
    const std::function<void(FrontierPoint&&)>* sink, ReportWriter* writer,
    SweepGrid* effective_out = nullptr) {
  P2P_ASSERT((sink != nullptr) != (writer != nullptr));
  validate_caller_axes(grid);
  validate_options(options);
  const SweepGrid effective = effective_grid(grid);
  validate_effective_axes(effective, options);
  if (options.sim_backend == SimBackend::kTypeCount) {
    // Same forced-backend guard as the grid pipeline: frontier points
    // always simulate, so an out-of-domain row axis must abort up front.
    const std::string violation =
        typecount_domain_violation(effective, options.scenario);
    P2P_ASSERT_MSG(violation.empty(), violation);
  }
  if (effective_out != nullptr) *effective_out = effective;

  P2P_ASSERT_MSG(refinable_axis(refine.axis),
                 "refine axis must be one of lambda, us, mu, gamma, mix");
  // The frontier's whole point is simulating at the localized flip;
  // accepting theory_only here would silently skip those sims while the
  // table still advertises replica columns.
  P2P_ASSERT_MSG(!options.theory_only,
                 "theory_only applies to grid sweeps, not refine_frontier");
  P2P_ASSERT_MSG(std::isfinite(refine.tol) && refine.tol > 0,
                 "refine tolerance must be positive and finite");
  const Axis* refined = effective.find_axis(refine.axis);
  P2P_ASSERT(refined != nullptr);
  P2P_ASSERT_MSG(refined->values.size() >= 2,
                 "refined axis needs >= 2 coarse values to bracket a flip");
  for (const double v : refined->values) {
    P2P_ASSERT_MSG(std::isfinite(v), "refined axis values must be finite");
  }

  SweepGrid rows;
  for (const auto& axis : effective.axes) {
    if (axis.name != refine.axis) rows.axes.push_back(axis);
  }
  const std::size_t num_rows = rows.num_cells();
  const std::size_t replicas = static_cast<std::size_t>(options.replicas);
  P2P_ASSERT_MSG(num_rows <= SIZE_MAX / replicas,
                 "frontier work item count overflows size_t");
  const std::size_t num_items = num_rows * replicas;

  const RingPlan plan = plan_rings(num_items, replicas, options);
  std::vector<ReplicaSample> samples(plan.ring_items);
  std::vector<FrontierSlot> slots(plan.block_ring);
  if (replicas > 1) {
    for (auto& slot : slots) {
      slot.pending.store(replicas, std::memory_order_relaxed);
    }
  }

  std::optional<RowRenderer> renderer;
  if (writer != nullptr) {
    renderer.emplace(writer->format(), writer->columns());
  }

  FrontierSummary summary;
  summary.rows = num_rows;
  std::size_t emitted = 0;

  ThreadPool pool(options.threads);
  pool.parallel_for_streaming_blocks(
      num_items, plan.chunk, plan.window,
      [&](std::size_t begin, std::size_t end) {
        std::size_t item = begin;
        while (item < end) {
          const std::size_t row = item / replicas;
          const std::size_t row_end = std::min(end, (row + 1) * replicas);
          FrontierSlot& slot = slots[row % slots.size()];
          FrontierPoint pt =
              bisect_row(rows, row, *refined, refine, options.scenario);
          if (item % replicas == 0) slot.point = pt;
          if (pt.bracketed) {
            for (std::size_t it = item; it < row_end; ++it) {
              samples[it % plan.ring_items] = simulate_replica(
                  pt.params, options,
                  derive_seed(options.base_seed, kStreamFrontierSim, row,
                              it % replicas));
            }
          }
          const std::size_t done = row_end - item;
          const bool last =
              replicas == 1 ||
              slot.pending.fetch_sub(done, std::memory_order_acq_rel) == done;
          if (last) {
            if (pt.bracketed) {
              Rng agg_rng(derive_seed(options.base_seed, kStreamFrontierAgg,
                                      row, 0));
              slot.point.sim = aggregate_samples(
                  std::span<const ReplicaSample>(
                      samples.data() + (row * replicas) % plan.ring_items,
                      replicas),
                  options, agg_rng);
              pt.sim = slot.point.sim;
            }
            if (renderer) {
              slot.arena.clear();
              render_frontier_row(*renderer, pt, refine, options, slot.arena);
            }
          }
          item = row_end;
        }
      },
      [&](std::size_t prefix_items) {
        // The consumer runs serially on the calling thread in row order;
        // with a writer it only tallies brackets and concatenates the
        // pre-rendered spans.
        const std::size_t complete_rows = prefix_items / replicas;
        for (; emitted < complete_rows; ++emitted) {
          FrontierSlot& slot = slots[emitted % slots.size()];
          if (slot.point.bracketed) ++summary.bracketed;
          if (writer != nullptr) {
            writer->write_rendered(slot.arena, 1);
          } else {
            (*sink)(std::move(slot.point));
          }
          if (replicas > 1) {
            slot.pending.store(replicas, std::memory_order_relaxed);
          }
        }
      });
  return summary;
}

}  // namespace

FrontierResult refine_frontier(const SweepGrid& grid,
                               const SweepOptions& options,
                               const RefineOptions& refine) {
  FrontierResult result;
  result.refine = refine;
  result.options = options;
  const std::function<void(FrontierPoint&&)> sink = [&](FrontierPoint&& pt) {
    result.points.push_back(std::move(pt));
  };
  frontier_points_ordered(grid, options, refine, &sink, nullptr,
                          &result.grid);
  return result;
}

FrontierSummary run_frontier_stream(const SweepGrid& grid,
                                    const SweepOptions& options,
                                    const RefineOptions& refine,
                                    ReportWriter& writer) {
  P2P_ASSERT_MSG(writer.columns() == frontier_columns(options),
                 "run_frontier_stream writer must be built with "
                 "frontier_columns(options)");
  return frontier_points_ordered(grid, options, refine, nullptr, &writer);
}

std::vector<std::string> frontier_columns(const SweepOptions& options) {
  // The per-type block records the composition each localized point ran
  // (NaN when the row never bracketed a flip) — the mix weights are not
  // recoverable from the generic axis columns alone.
  return schema_columns(
      frontier_schema_head(), frontier_schema_tail(), options.scenario,
      /*with_backend=*/true,
      options.scenario.policy != PolicyKind::kRandomUseful,
      /*with_fluid=*/false);
}

std::vector<std::string> frontier_row(const FrontierPoint& pt,
                                      const RefineOptions& refine,
                                      const SweepOptions& options) {
  const ScenarioSpec& scenario = options.scenario;
  std::vector<std::string> row = {
      format_number(static_cast<double>(pt.row)), refine.axis,
      format_number(pt.bracketed ? 1 : 0), format_number(pt.value),
      format_number(pt.value_lo), format_number(pt.value_hi),
      format_number(pt.margin), format_number(pt.params.lambda),
      format_number(pt.params.us), format_number(pt.params.mu),
      format_number(pt.params.gamma), format_number(pt.params.k),
      format_number(pt.params.eta),
      format_number(static_cast<double>(pt.params.flash)),
      format_number(pt.params.mix), format_number(pt.params.hetero)};
  if (!scenario.empty()) {
    row.push_back(format_number((1.0 - pt.params.mix) * pt.params.lambda));
    for (const auto& a : scenario.mix) {
      row.push_back(format_number(pt.params.mix * pt.params.lambda * a.rate));
    }
  }
  for (std::string cell : {format_number(pt.sim.replicas),
                           format_number(pt.sim.mean_peers_mean),
                           format_number(pt.sim.mean_peers_sem),
                           format_number(pt.sim.mean_peers_lo),
                           format_number(pt.sim.mean_peers_hi)}) {
    row.push_back(std::move(cell));
  }
  row.push_back(to_string(resolve_sim_backend(options.sim_backend, pt.params)));
  if (options.scenario.policy != PolicyKind::kRandomUseful) {
    row.push_back(to_string(options.scenario.policy));
  }
  return row;
}

Table FrontierResult::to_table() const {
  Table table(frontier_columns(options));
  for (const auto& pt : points) {
    table.add_row(frontier_row(pt, refine, options));
  }
  return table;
}

}  // namespace p2p::engine
