#include "engine/sweep.hpp"

#include <cmath>
#include <cstdlib>

#include "core/model.hpp"
#include "ctmc/stationary.hpp"
#include "engine/thread_pool.hpp"
#include "rand/rng.hpp"
#include "sim/swarm.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

namespace {

constexpr const char* kAxisNames[] = {"lambda", "us", "mu", "gamma", "k"};

bool known_axis(const std::string& name) {
  for (const char* known : kAxisNames) {
    if (name == known) return true;
  }
  return false;
}

double parse_value(const std::string& token) {
  if (token == "inf") return kInfiniteRate;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  P2P_ASSERT_MSG(!token.empty() && end == token.c_str() + token.size(),
                 "axis values must be numbers (or 'inf')");
  return v;
}

/// Seeds cell `index` independently of execution order: splitmix64 over
/// (base_seed, index), the same derivation Rng::split uses.
std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t index) {
  std::uint64_t sm =
      base_seed ^
      (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1));
  return splitmix64(sm);
}

double axis_value(const SweepGrid& grid, const std::vector<double>& values,
                  const std::string& name) {
  for (std::size_t i = 0; i < grid.axes.size(); ++i) {
    if (grid.axes[i].name == name) return values[i];
  }
  P2P_ASSERT_MSG(false, "sweep cell queried for an axis the grid lacks");
  return 0;
}

CellResult sweep_cell(const SweepGrid& grid, const SweepOptions& options,
                      std::size_t index) {
  const std::vector<double> values = grid.cell_values(index);
  CellResult r;
  r.index = index;
  r.lambda = axis_value(grid, values, "lambda");
  r.us = axis_value(grid, values, "us");
  r.mu = axis_value(grid, values, "mu");
  r.gamma = axis_value(grid, values, "gamma");
  const double k_raw = axis_value(grid, values, "k");
  r.k = static_cast<int>(std::lround(k_raw));
  P2P_ASSERT_MSG(r.k >= 1 && std::abs(k_raw - r.k) < 1e-9,
                 "axis k must take positive integer values");

  const SwarmParams params(r.k, r.us, r.mu, r.gamma,
                           {{PieceSet{}, r.lambda}});
  r.theory = classify(params);

  SwarmSimOptions sim_options;
  sim_options.rng_seed = cell_seed(options.base_seed, index);
  SwarmSim sim(params, sim_options);
  if (options.flash_crowd > 0) {
    sim.inject_peers(PieceSet::full(r.k).without(0), options.flash_crowd);
  }
  sim.run_until(options.horizon);
  r.sim_final_peers = static_cast<double>(sim.total_peers());
  r.sim_mean_peers = sim.time_averaged_peers();
  r.sim_mean_sojourn = sim.sojourn_stats().count() > 0
                           ? sim.sojourn_stats().mean()
                           : std::nan("");

  r.ctmc_mean_peers = std::nan("");
  if (options.ctmc_max_peers > 0 && r.k <= SweepOptions::kCtmcMaxPieces) {
    r.ctmc_mean_peers =
        solve_truncated_swarm(params, options.ctmc_max_peers).mean_peers();
  }
  return r;
}

}  // namespace

Axis parse_axis(const std::string& spec) {
  const auto eq = spec.find('=');
  P2P_ASSERT_MSG(eq != std::string::npos && eq > 0 && eq + 1 < spec.size(),
                 "axis spec must look like name=lo:hi:count, name=v1,v2 "
                 "or name=v");
  Axis axis;
  axis.name = spec.substr(0, eq);
  const std::string body = spec.substr(eq + 1);

  if (body.find(':') != std::string::npos) {
    // Inclusive linspace lo:hi:count.
    const auto c1 = body.find(':');
    const auto c2 = body.find(':', c1 + 1);
    P2P_ASSERT_MSG(c2 != std::string::npos &&
                       body.find(':', c2 + 1) == std::string::npos,
                   "linspace axis must be name=lo:hi:count");
    const double lo = parse_value(body.substr(0, c1));
    const double hi = parse_value(body.substr(c1 + 1, c2 - c1 - 1));
    const double count_raw = parse_value(body.substr(c2 + 1));
    const long count = std::lround(count_raw);
    P2P_ASSERT_MSG(count >= 1 && std::abs(count_raw - count) < 1e-9,
                   "linspace count must be a positive integer");
    P2P_ASSERT_MSG(std::isfinite(lo) && std::isfinite(hi),
                   "linspace endpoints must be finite");
    for (long i = 0; i < count; ++i) {
      axis.values.push_back(
          count == 1 ? lo
                     : lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(count - 1));
    }
  } else {
    // Explicit list (possibly a single value).
    std::size_t start = 0;
    while (true) {
      const auto comma = body.find(',', start);
      axis.values.push_back(parse_value(
          body.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return axis;
}

std::size_t SweepGrid::num_cells() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return axes.empty() ? 0 : n;
}

std::vector<double> SweepGrid::cell_values(std::size_t index) const {
  P2P_ASSERT(index < num_cells());
  std::vector<double> values(axes.size());
  std::size_t rem = index;
  for (std::size_t i = axes.size(); i-- > 0;) {
    const std::size_t size = axes[i].values.size();
    values[i] = axes[i].values[rem % size];
    rem /= size;
  }
  return values;
}

void SweepGrid::set_axis(Axis axis) {
  for (auto& existing : axes) {
    if (existing.name == axis.name) {
      existing = std::move(axis);
      return;
    }
  }
  axes.push_back(std::move(axis));
}

const Axis* SweepGrid::find_axis(const std::string& name) const {
  for (const auto& axis : axes) {
    if (axis.name == name) return &axis;
  }
  return nullptr;
}

SweepGrid parse_grid(const std::string& spec) {
  SweepGrid grid;
  std::size_t start = 0;
  while (start < spec.size()) {
    auto semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    if (semi > start) {
      grid.set_axis(parse_axis(spec.substr(start, semi - start)));
    }
    start = semi + 1;
  }
  return grid;
}

SweepGrid default_region_grid() {
  SweepGrid grid;
  grid.set_axis(parse_axis("lambda=0.5:3.0:16"));
  grid.set_axis(parse_axis("us=0.2:1.7:16"));
  grid.set_axis(parse_axis("mu=1"));
  grid.set_axis(parse_axis("gamma=1.25"));
  grid.set_axis(parse_axis("k=3"));
  return grid;
}

SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options) {
  for (const auto& axis : grid.axes) {
    P2P_ASSERT_MSG(known_axis(axis.name),
                   "unknown sweep axis (valid: lambda, us, mu, gamma, k)");
    P2P_ASSERT_MSG(!axis.values.empty(), "sweep axis has no values");
  }
  // Axes the caller did not specify take the default region grid's —
  // the single source of fallback values, so a partial grid cannot
  // silently simulate at undocumented parameters.
  SweepGrid effective = default_region_grid();
  for (const auto& axis : grid.axes) effective.set_axis(axis);
  for (const auto& axis : effective.axes) {
    if (axis.name == "gamma") continue;  // inf = immediate departure
    for (const double v : axis.values) {
      P2P_ASSERT_MSG(std::isfinite(v),
                     "only the gamma axis may take inf values");
    }
  }

  SweepResult result;
  result.grid = effective;
  result.options = options;
  result.cells.resize(effective.num_cells());

  ThreadPool pool(options.threads);
  pool.parallel_for(result.cells.size(), [&](std::size_t i) {
    result.cells[i] = sweep_cell(effective, options, i);
  });
  return result;
}

Table SweepResult::to_table() const {
  Table table({"cell", "lambda", "us", "mu", "gamma", "k", "verdict",
               "margin", "critical_piece", "sim_final_peers",
               "sim_mean_peers", "sim_mean_sojourn", "ctmc_mean_peers"});
  for (const auto& c : cells) {
    table.add_row({format_number(static_cast<double>(c.index)),
                   format_number(c.lambda), format_number(c.us),
                   format_number(c.mu), format_number(c.gamma),
                   format_number(c.k), to_string(c.theory.verdict),
                   format_number(c.theory.margin),
                   format_number(c.theory.critical_piece),
                   format_number(c.sim_final_peers),
                   format_number(c.sim_mean_peers),
                   format_number(c.sim_mean_sojourn),
                   format_number(c.ctmc_mean_peers)});
  }
  return table;
}

}  // namespace p2p::engine
