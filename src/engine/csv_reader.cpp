#include "engine/csv_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "engine/parse_util.hpp"
#include "engine/refine.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

double parse_report_number(const std::string& cell,
                           const std::string& context) {
  if (cell == "nan") return std::nan("");
  if (cell == "inf") return std::numeric_limits<double>::infinity();
  if (cell == "-inf") return -std::numeric_limits<double>::infinity();
  // strtod alone is too liberal for a dialect check: it skips leading
  // whitespace and accepts "+2" and hex floats ("0x10" -> 16.0), none
  // of which format_number can emit. Pre-gate the spellings, then let
  // strtod do the value work; isfinite rejects the remaining aliases
  // ("infinity", "nan(...)").
  const bool shape_ok =
      !cell.empty() && (cell[0] == '-' || (cell[0] >= '0' && cell[0] <= '9')) &&
      cell.find_first_of("xX") == std::string::npos;
  char* end = nullptr;
  const double v = shape_ok ? std::strtod(cell.c_str(), &end) : 0.0;
  P2P_ASSERT_MSG(shape_ok && end == cell.c_str() + cell.size() &&
                     std::isfinite(v),
                 "expected a report number (format_number dialect), got \"" +
                     cell + "\" in " + context);
  return v;
}

namespace {

/// At most this many bytes of an offending line are echoed in aborts —
/// enough to identify the row, without dumping a megabyte cell.
constexpr std::size_t kErrorPreview = 200;

std::string preview_of(std::string_view text) {
  const std::size_t line_end = std::min(text.find('\n'), text.size());
  std::string out(text.substr(0, std::min(line_end, kErrorPreview)));
  if (line_end > kErrorPreview) out += "...";
  return out;
}

/// Read chunk size: matches the writer's flush threshold.
constexpr std::size_t kReadChunk = 1 << 16;

}  // namespace

CsvReader::CsvReader(const std::string& path) {
  if (path.empty() || path == "-") {
    source_ = "<stdin>";
    file_ = stdin;
  } else {
    source_ = path;
    file_ = std::fopen(path.c_str(), "rb");
    P2P_ASSERT_MSG(file_ != nullptr,
                   "cannot open report input file \"" + path + "\"");
    owns_file_ = true;
  }
  std::vector<std::string> header;
  P2P_ASSERT_MSG(next_row(&header),
                 "report CSV \"" + source_ + "\" is empty (no header line)");
  columns_ = std::move(header);
  rows_ = 0;  // the header is not a data row
}

CsvReader CsvReader::from_text(std::string text) {
  CsvReader reader;
  reader.source_ = "<string>";
  reader.exhausted_ = true;
  reader.buffer_ = std::move(text);
  std::vector<std::string> header;
  P2P_ASSERT_MSG(reader.next_row(&header),
                 "report CSV <string> is empty (no header line)");
  reader.columns_ = std::move(header);
  reader.rows_ = 0;
  return reader;
}

CsvReader::CsvReader(CsvReader&& other) noexcept
    : source_(std::move(other.source_)),
      file_(other.file_),
      owns_file_(other.owns_file_),
      exhausted_(other.exhausted_),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_),
      line_(other.line_),
      columns_(std::move(other.columns_)),
      rows_(other.rows_) {
  other.file_ = nullptr;
  other.owns_file_ = false;
}

CsvReader::~CsvReader() {
  if (owns_file_ && file_ != nullptr) std::fclose(file_);
}

void CsvReader::refill() {
  if (exhausted_) return;
  // Compact the consumed prefix once per refill (not per row): rows are
  // erased by bumping pos_, so a million-row file costs one memmove per
  // 64 KiB chunk instead of one per record.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[kReadChunk];
  const std::size_t got = std::fread(chunk, 1, sizeof(chunk), file_);
  buffer_.append(chunk, got);
  if (got < sizeof(chunk)) {
    P2P_ASSERT_MSG(std::ferror(file_) == 0,
                   "read error on report input file \"" + source_ + "\"");
    exhausted_ = true;
  }
}

bool CsvReader::next_row(std::vector<std::string>* cells) {
  const auto fail = [&](const std::string& what) {
    P2P_ASSERT_MSG(false,
                   what + " (" + source_ + " line " + std::to_string(line_) +
                       ": \"" +
                       preview_of(std::string_view(buffer_).substr(pos_)) +
                       "\")");
  };

  // Find the end of the next record: the first '\n' outside quotes.
  // Quoted cells may span newlines (and, in a file-backed reader, chunk
  // boundaries), so the scan restarts after every refill (which may
  // compact the buffer and move pos_). A '"' opens a quoted cell only
  // at a cell boundary — a bare quote mid-cell is data to the scanner
  // and a loud parse error below, never a silent
  // swallow-the-rest-of-the-file state.
  std::size_t end = std::string::npos;
  while (true) {
    bool quoted = false;
    bool cell_start = true;
    for (std::size_t i = pos_; i < buffer_.size(); ++i) {
      const char c = buffer_[i];
      if (quoted) {
        if (c == '"') {
          if (i + 1 < buffer_.size() && buffer_[i + 1] == '"') {
            ++i;  // doubled quote: stay inside the cell
          } else if (i + 1 == buffer_.size() && !exhausted_) {
            break;  // cannot tell yet: refill decides
          } else {
            quoted = false;
          }
        }
      } else if (c == '"' && cell_start) {
        quoted = true;
        cell_start = false;
      } else if (c == ',') {
        cell_start = true;
      } else if (c == '\n') {
        end = i;
        break;
      } else {
        cell_start = false;
      }
    }
    if (end != std::string::npos) break;
    if (exhausted_) {
      if (pos_ >= buffer_.size()) return false;  // clean end of file
      // Bytes with no terminating newline: the writer '\n'-terminates
      // every row, so the file was cut mid-record (or a quote never
      // closed).
      fail("truncated report CSV: final record has no terminating "
           "newline (or an unterminated quoted cell)");
    }
    refill();
  }

  // Split the record [pos_, end) into cells, enforcing the writer's
  // quoting discipline.
  cells->clear();
  const std::string_view record(buffer_.data() + pos_, end - pos_);
  std::size_t i = 0;
  while (true) {
    std::string cell;
    if (i < record.size() && record[i] == '"') {
      ++i;
      while (true) {
        if (i >= record.size()) {
          // The closing quote can only be missing here if the record
          // terminator itself sat inside the quotes — record scanning
          // above would have skipped it — so this is a stray state.
          fail("unterminated quoted cell in report CSV");
        }
        if (record[i] == '"') {
          if (i + 1 < record.size() && record[i + 1] == '"') {
            cell += '"';
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          cell += record[i++];
        }
      }
      if (i < record.size() && record[i] != ',') {
        fail("malformed quoting in report CSV: a quoted cell must be "
             "followed by a comma or the end of the record");
      }
    } else {
      const std::size_t start = i;
      while (i < record.size() && record[i] != ',') {
        if (record[i] == '"') {
          fail("malformed quoting in report CSV: bare '\"' inside an "
               "unquoted cell");
        }
        ++i;
      }
      cell.assign(record.substr(start, i - start));
    }
    cells->push_back(std::move(cell));
    if (i >= record.size()) break;
    ++i;  // skip ','
  }

  if (!columns_.empty() && cells->size() != columns_.size()) {
    fail("report CSV row has " + std::to_string(cells->size()) +
         " cells, expected " + std::to_string(columns_.size()));
  }

  // Consume the record and its terminator by advancing pos_ (the
  // buffer compacts at the next refill); line numbers advance by the
  // newlines inside quoted cells too.
  for (std::size_t j = pos_; j <= end; ++j) {
    if (buffer_[j] == '\n') ++line_;
  }
  pos_ = end + 1;
  ++rows_;
  return true;
}

Table read_csv(std::string text) {
  CsvReader reader = CsvReader::from_text(std::move(text));
  Table table(reader.columns());
  std::vector<std::string> cells;
  while (reader.next_row(&cells)) table.add_row(cells);
  return table;
}

Table read_csv_file(const std::string& path) {
  CsvReader reader(path);
  Table table(reader.columns());
  std::vector<std::string> cells;
  while (reader.next_row(&cells)) table.add_row(cells);
  return table;
}

// --- JSON ---

namespace {

/// Recursive-descent cursor over one JSON document. Shared by
/// validate_json (grammar only) and read_json (report arrays): one
/// tokenizer, so the two cannot disagree about what well-formed means.
class JsonCursor {
 public:
  JsonCursor(const std::string& text, std::string context)
      : text_(text), context_(std::move(context)) {}

  [[noreturn]] void fail(const std::string& what) const {
    P2P_ASSERT_MSG(false, what + " in " + context_ + " at byte " +
                              std::to_string(pos_) + " (\"" +
                              preview_of(std::string_view(text_).substr(
                                  pos_, kErrorPreview)) +
                              "\")");
    std::abort();  // unreachable
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const {
    if (at_end()) fail("unexpected end of JSON document");
    return text_[pos_];
  }

  void expect(char c) {
    if (at_end() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void expect_literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      fail("malformed JSON literal (expected \"" + std::string(word) + "\")");
    }
    pos_ += word.size();
  }

  /// Parses a JSON string, returning the unescaped contents. \uXXXX
  /// decodes to UTF-8 for the basic plane (the writer emits \u00xx for
  /// raw control characters); surrogate pairs abort — the emitter
  /// never splits astral characters, it passes their UTF-8 through.
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in JSON string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated JSON escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int h = 0; h < 4; ++h) {
            if (at_end()) fail("malformed \\u escape");
            const char d = text_[pos_++];
            code <<= 4;
            if (d >= '0' && d <= '9') {
              code |= static_cast<unsigned>(d - '0');
            } else if (d >= 'a' && d <= 'f') {
              code |= static_cast<unsigned>(d - 'a' + 10);
            } else if (d >= 'A' && d <= 'F') {
              code |= static_cast<unsigned>(d - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not part of the report JSON "
                 "dialect");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid JSON escape");
      }
    }
  }

  /// Validates a string's syntax only (allows \uXXXX).
  void skip_string() {
    expect('"');
    while (true) {
      if (at_end()) fail("unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in JSON string");
      }
      if (c != '\\') continue;
      if (at_end()) fail("unterminated JSON escape");
      const char e = text_[pos_++];
      if (e == 'u') {
        for (int h = 0; h < 4; ++h) {
          if (at_end() || !std::isxdigit(
                              static_cast<unsigned char>(text_[pos_]))) {
            fail("malformed \\u escape");
          }
          ++pos_;
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        fail("invalid JSON escape");
      }
    }
  }

  /// Parses a JSON number (strict grammar) and returns its literal
  /// spelling, so report cells re-emit byte-identically.
  std::string parse_number_token() {
    const std::size_t start = pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == first) fail("malformed JSON number");
    };
    if (!at_end() && text_[pos_] == '-') ++pos_;
    if (!at_end() && text_[pos_] == '0') {
      ++pos_;  // a leading zero must stand alone
    } else {
      digits();
    }
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      digits();
    }
    return text_.substr(start, pos_ - start);
  }

  /// Validates one value of any type. `depth` caps nesting so a hostile
  /// document cannot overflow the stack.
  void skip_value(int depth) {
    if (depth > kMaxDepth) fail("JSON nesting exceeds the depth budget");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return;
      }
      while (true) {
        skip_ws();
        skip_string();
        skip_ws();
        expect(':');
        skip_value(depth + 1);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return;
      }
    } else if (c == '[') {
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return;
      }
      while (true) {
        skip_value(depth + 1);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return;
      }
    } else if (c == '"') {
      skip_string();
    } else if (c == 't') {
      expect_literal("true");
    } else if (c == 'f') {
      expect_literal("false");
    } else if (c == 'n') {
      expect_literal("null");
    } else {
      parse_number_token();
    }
  }

  static constexpr int kMaxDepth = 256;

 private:
  const std::string& text_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace

void validate_json(const std::string& text, const std::string& context) {
  JsonCursor cursor(text, context);
  cursor.skip_value(0);
  cursor.skip_ws();
  if (!cursor.at_end()) {
    cursor.fail("trailing bytes after the JSON document");
  }
}

Table read_json(const std::string& text) {
  JsonCursor cursor(text, "report JSON");
  cursor.skip_ws();
  cursor.expect('[');
  cursor.skip_ws();
  if (!cursor.at_end() && cursor.peek() == ']') {
    cursor.fail("empty report JSON carries no header to recover a schema "
                "from; archive at least the columns (CSV always has them)");
  }

  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  while (true) {
    cursor.skip_ws();
    cursor.expect('{');
    std::vector<std::string> keys;
    std::vector<std::string> cells;
    cursor.skip_ws();
    if (cursor.peek() != '}') {
      while (true) {
        cursor.skip_ws();
        keys.push_back(cursor.parse_string());
        cursor.skip_ws();
        cursor.expect(':');
        cursor.skip_ws();
        const char c = cursor.peek();
        if (c == '"') {
          cells.push_back(cursor.parse_string());
        } else if (c == 'n') {
          cursor.expect_literal("null");
          // The emitter maps every non-finite cell to null; nan is the
          // only spelling that maps back without inventing a sign.
          cells.push_back("nan");
        } else if (c == '{' || c == '[' || c == 't' || c == 'f') {
          cursor.fail("report cells must be numbers, strings or null");
        } else {
          cells.push_back(cursor.parse_number_token());
        }
        cursor.skip_ws();
        if (cursor.peek() == ',') {
          cursor.expect(',');
          continue;
        }
        break;
      }
    }
    cursor.expect('}');

    if (columns.empty()) {
      if (keys.empty()) {
        cursor.fail("report JSON rows need at least one column");
      }
      columns = keys;
    } else if (keys != columns) {
      cursor.fail("report JSON row keys do not match the first row's "
                  "columns (same names, same order, same count)");
    }
    rows.push_back(std::move(cells));

    cursor.skip_ws();
    if (cursor.peek() == ',') {
      cursor.expect(',');
      continue;
    }
    cursor.expect(']');
    break;
  }
  cursor.skip_ws();
  if (!cursor.at_end()) {
    cursor.fail("trailing bytes after the report JSON array");
  }

  Table table(std::move(columns));
  for (auto& row : rows) table.add_row(std::move(row));
  return table;
}

namespace {

std::string slurp(const std::string& path) {
  std::FILE* file = stdin;
  const bool named = !(path.empty() || path == "-");
  if (named) {
    file = std::fopen(path.c_str(), "rb");
    P2P_ASSERT_MSG(file != nullptr,
                   "cannot open report input file \"" + path + "\"");
  }
  std::string text;
  char chunk[kReadChunk];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  const bool read_error = std::ferror(file) != 0;
  if (named) std::fclose(file);
  P2P_ASSERT_MSG(!read_error, "read error on report input file \"" +
                                  (named ? path : "<stdin>") + "\"");
  return text;
}

}  // namespace

Table read_json_file(const std::string& path) { return read_json(slurp(path)); }

bool report_is_json(const std::string& path) {
  const auto ws = [](int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  if (path.empty() || path == "-") {
    // Pipes cannot seek: probe byte by byte and push the deciding one
    // back (ungetc guarantees exactly one byte). The skipped leading
    // whitespace is not part of either dialect.
    int c = 0;
    while ((c = std::fgetc(stdin)) != EOF) {
      if (ws(c)) continue;
      std::ungetc(c, stdin);
      return c == '[';
    }
    return false;  // empty stdin: let the CSV reader's abort name it
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;  // the real reader reports the error
  bool json = false;
  int c = 0;
  while ((c = std::fgetc(file)) != EOF) {
    if (ws(c)) continue;
    json = c == '[';
    break;
  }
  std::fclose(file);
  return json;
}

// --- Report schema validation ---

PieceSet parse_mix_column_type(const std::string& column) {
  const std::string_view prefix = kLambdaTypePrefix;
  P2P_ASSERT_MSG(column.size() > prefix.size() &&
                     column.compare(0, prefix.size(), prefix) == 0,
                 "not a per-type arrival-rate column (expected \"" +
                     std::string(prefix) + "<pieces>\", got \"" + column +
                     "\")");
  PieceSet type;
  long prev = 0;
  for (const std::string& token :
       split_list(column.substr(prefix.size()), '.')) {
    // All-digit tokens only: strtol's leniency ("+1", " 1") is not part
    // of the column-name dialect mix_column_name emits.
    bool digits_only = !token.empty();
    for (const char c : token) digits_only = digits_only && c >= '0' && c <= '9';
    const long piece = digits_only ? std::strtol(token.c_str(), nullptr, 10) : 0;
    P2P_ASSERT_MSG(digits_only && piece > prev && piece <= kMaxPieces,
                   "malformed per-type column \"" + column +
                       "\": piece indices must be strictly increasing "
                       "one-based integers in [1, 64]");
    type = type.with(static_cast<int>(piece) - 1);
    prev = piece;
  }
  return type;
}

ReportSchema validate_report_schema(const std::vector<std::string>& columns) {
  P2P_ASSERT_MSG(!columns.empty(),
                 "a report header needs at least one column");

  ReportSchema schema;
  std::span<const char* const> head, tail;
  if (columns[0] == sweep_schema_head()[0]) {
    schema.kind = ReportKind::kGrid;
    head = sweep_schema_head();
    tail = sweep_schema_tail();
  } else if (columns[0] == frontier_schema_head()[0]) {
    schema.kind = ReportKind::kFrontier;
    head = frontier_schema_head();
    tail = frontier_schema_tail();
  } else {
    P2P_ASSERT_MSG(false, "not a sweep report header (expected the first "
                          "column to be \"cell\" or \"row\", got \"" +
                              columns[0] + "\")");
  }

  const auto expect = [&](std::size_t i, const char* want) {
    P2P_ASSERT_MSG(
        i < columns.size() && columns[i] == want,
        "report header mismatch at column " + std::to_string(i) +
            ": expected \"" + want + "\", got " +
            (i < columns.size() ? "\"" + columns[i] + "\""
                                : std::string("the end of the header")));
  };

  std::size_t i = 0;
  for (const char* c : head) expect(i++, c);
  if (i < columns.size() && columns[i] == kLambdaEmptyColumn) {
    schema.has_scenario = true;
    ++i;
    while (i < columns.size() &&
           columns[i].compare(0, std::string_view(kLambdaTypePrefix).size(),
                              kLambdaTypePrefix) == 0) {
      schema.mix_types.push_back(parse_mix_column_type(columns[i]));
      ++i;
    }
    P2P_ASSERT_MSG(!schema.mix_types.empty(),
                   "per-type block has \"lambda_empty\" but no \"lambda_t\" "
                   "columns");
    for (std::size_t a = 0; a < schema.mix_types.size(); ++a) {
      for (std::size_t b = a + 1; b < schema.mix_types.size(); ++b) {
        P2P_ASSERT_MSG(!(schema.mix_types[a] == schema.mix_types[b]),
                       "per-type block repeats an arrival type (column \"" +
                           mix_column_name(schema.mix_types[b]) + "\")");
      }
    }
  }
  schema.tail_start = i;
  for (const char* c : tail) expect(i++, c);
  // The sim_backend, policy and fluid_verdict columns (engine/sweep.hpp)
  // trail the fixed tail in that order, each optional: theory-only
  // grids, pre-backend corpora, baseline-policy sweeps and fluid-less
  // runs all lack some suffix of them.
  if (i < columns.size() && columns[i] == kSimBackendColumn) {
    schema.has_backend = true;
    ++i;
  }
  if (i < columns.size() && columns[i] == kPolicyColumn) {
    P2P_ASSERT_MSG(schema.has_backend,
                   "the policy column requires a sim_backend column before "
                   "it (no simulator ran without one)");
    schema.has_policy = true;
    ++i;
  }
  if (i < columns.size() && columns[i] == kFluidVerdictColumn) {
    P2P_ASSERT_MSG(schema.kind == ReportKind::kGrid,
                   "the fluid_verdict column belongs to grid reports only");
    schema.has_fluid = true;
    ++i;
  }
  if (i < columns.size() && columns[i] == kBoxDepthColumn) {
    // The multi-resolution box block closes an adaptive report's header:
    // box_depth, box_uniform, then one box_ext_<axis> per adaptive axis.
    P2P_ASSERT_MSG(schema.kind == ReportKind::kGrid,
                   "the box_depth column belongs to grid reports only");
    schema.has_boxes = true;
    schema.box_start = i;
    ++i;
    expect(i++, kBoxUniformColumn);
    const std::string_view ext_prefix = kBoxExtPrefix;
    while (i < columns.size() &&
           columns[i].compare(0, ext_prefix.size(), ext_prefix) == 0) {
      const std::string axis = columns[i].substr(ext_prefix.size());
      bool known = false;
      for (const char* c : sweep_schema_head()) known = known || axis == c;
      P2P_ASSERT_MSG(known && axis != sweep_schema_head()[0],
                     "box extent column \"" + columns[i] +
                         "\" does not name a model axis");
      for (const std::string& seen : schema.box_axes) {
        P2P_ASSERT_MSG(seen != axis, "box block repeats an extent column "
                                     "(column \"" +
                                         columns[i] + "\")");
      }
      schema.box_axes.push_back(axis);
      ++i;
    }
    P2P_ASSERT_MSG(schema.box_axes.size() >= 2,
                   "box block needs at least two box_ext_<axis> columns "
                   "(adaptive refinement subdivides >= 2 axes)");
  }
  P2P_ASSERT_MSG(i == columns.size(),
                 "report header has trailing columns after \"" +
                     std::string(tail.back()) + "\" (got \"" + columns[i] +
                     "\")");
  schema.num_columns = columns.size();
  return schema;
}

}  // namespace p2p::engine
