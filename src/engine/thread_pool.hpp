// Fixed-size thread pool for embarrassingly parallel sweeps.
//
// Deliberately work-stealing-free: parallel_for hands out cell indices
// one at a time from a shared cursor, so every index runs exactly once on
// some thread. Cells are coarse (a whole simulation or CTMC solve), so a
// mutex-protected claim is negligible next to the work itself and keeps
// the pool small enough to reason about. Determinism is the caller's
// contract: a cell's result may depend only on its index, never on which
// thread ran it or in what order — then output is byte-identical for any
// thread count.
//
// The calling thread participates in parallel_for, so ThreadPool(n) uses
// exactly n OS threads (n-1 workers + the caller) and ThreadPool(1) runs
// everything inline with no synchronization surprises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace p2p::engine {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    P2P_ASSERT_MSG(num_threads >= 1, "thread pool needs >= 1 thread");
    workers_.reserve(static_cast<std::size_t>(num_threads - 1));
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Total OS threads used, including the caller.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributed over the pool; blocks
  /// until all n calls have returned. fn must not throw. Not reentrant
  /// (no parallel_for from inside fn) and not thread-safe: one
  /// parallel_for at a time.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      next_ = 0;
      completed_ = 0;
      ++generation_;
    }
    job_cv_.notify_all();
    run_items();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return completed_ == job_n_; });
    job_fn_ = nullptr;
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock,
                     [&, this] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_items();
    }
  }

  /// Claims and runs indices until the cursor is exhausted. The claim is
  /// made under the mutex; the call itself runs unlocked.
  void run_items() {
    while (true) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job_fn_ == nullptr || next_ >= job_n_) return;
        index = next_++;
        fn = job_fn_;
      }
      (*fn)(index);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++completed_;
      }
      done_cv_.notify_one();
    }
  }

  std::mutex mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace p2p::engine
