// Fixed-size thread pool for embarrassingly parallel sweeps.
//
// Deliberately work-stealing-free: parallel_for hands out contiguous
// chunks of indices from a shared cursor, so every index runs exactly
// once on some thread. A chunk is claimed under one mutex acquisition —
// for coarse cells (a whole simulation) chunk = 1 is already negligible
// next to the work, while closed-form-only grids with millions of tiny
// cells need chunked claiming to keep the claim mutex off the profile.
// Determinism is the caller's contract: a cell's result may depend only
// on its index, never on which thread ran it, in what order, or in which
// chunk — then output is byte-identical for any thread count and any
// chunk size.
//
// parallel_for_streaming additionally reports the contiguous completed
// prefix to the caller between chunks, with a bounded claim window, so a
// consumer can emit results in index order while the sweep is still
// running and keep live buffering at O(window) instead of O(n).
//
// The calling thread participates in both entry points, so ThreadPool(n)
// uses exactly n OS threads (n-1 workers + the caller) and ThreadPool(1)
// runs everything inline with no synchronization surprises.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace p2p::engine {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    P2P_ASSERT_MSG(num_threads >= 1, "thread pool needs >= 1 thread");
    workers_.reserve(static_cast<std::size_t>(num_threads - 1));
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Total OS threads used, including the caller.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Default chunk size for an n-item job on `threads` threads: large
  /// enough that claim overhead vanishes, small enough (~64 chunks per
  /// thread) that the tail imbalance stays a fraction of a percent. The
  /// 4096 cap keeps the chunk — and everything sized from it, like the
  /// streaming consumers' O(chunk * threads) rings — bounded as n grows:
  /// past ~4k items per claim the mutex is already off the profile.
  static std::size_t auto_chunk(std::size_t n, int threads) {
    // Same contract as the constructor — and a divide by 64*0 below
    // would be a SIGFPE instead of a readable message.
    P2P_ASSERT_MSG(threads >= 1, "thread pool needs >= 1 thread");
    return std::max<std::size_t>(
        1, std::min<std::size_t>(
               4096, n / (64 * static_cast<std::size_t>(threads))));
  }

  /// Runs fn(i) for every i in [0, n), distributed over the pool in
  /// chunks of `chunk` consecutive indices (0 = auto_chunk); blocks until
  /// all n calls have returned. fn must not throw — a throw is caught and
  /// turned into a P2P_ASSERT naming the index, instead of a silent
  /// std::terminate deep in libstdc++. Not reentrant (no parallel_for
  /// from inside fn) and not thread-safe: one job at a time.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 1) {
    const BlockFn block = item_block(fn);
    run_job(n, chunk, /*window=*/0, block, nullptr);
  }

  /// Like parallel_for, but streams completion to the caller: whenever
  /// the contiguous completed prefix of [0, n) grows, on_prefix(p) runs
  /// on the CALLING thread with the new prefix length (nondecreasing,
  /// finally n). Claims never run more than `window` items (at least one
  /// chunk; 0 = unbounded) past the last prefix consumed, so a consumer
  /// that drains results inside on_prefix bounds live results to
  /// O(window). fn must not throw; same reentrancy contract as
  /// parallel_for.
  void parallel_for_streaming(std::size_t n, std::size_t chunk,
                              std::size_t window,
                              const std::function<void(std::size_t)>& fn,
                              const std::function<void(std::size_t)>& on_prefix) {
    const BlockFn block = item_block(fn);
    run_job(n, chunk, window, block, &on_prefix);
  }

  /// Like parallel_for_streaming, but each claimed chunk is handed to
  /// block_fn as one half-open index range [begin, end) instead of one
  /// index at a time. A worker that processes a whole contiguous block
  /// can hoist per-chunk setup — grid odometers, cached axis values,
  /// arena reservations — out of the per-item loop, which is what lets
  /// the sweep engine render rows at memcpy speed. Same claiming,
  /// windowing, prefix and must-not-throw contracts as
  /// parallel_for_streaming.
  void parallel_for_streaming_blocks(
      std::size_t n, std::size_t chunk, std::size_t window,
      const std::function<void(std::size_t, std::size_t)>& block_fn,
      const std::function<void(std::size_t)>& on_prefix) {
    const BlockFn block = guarded_block(block_fn);
    run_job(n, chunk, window, block, &on_prefix);
  }

 private:
  /// Jobs run chunk-at-a-time internally; the per-item entry points wrap
  /// their fn in a range loop.
  using BlockFn = std::function<void(std::size_t, std::size_t)>;

  /// The per-item loop with the index-naming throw guard the per-item
  /// API documents.
  static BlockFn item_block(const std::function<void(std::size_t)>& fn) {
    return [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // fn must not throw: an exception cannot be matched back to its
        // item by the caller, and unwinding through the pool would
        // std::terminate inside libstdc++ with no index in sight. Turn
        // it into an assert that names the item.
        try {
          fn(i);
        } catch (const std::exception& e) {
          P2P_ASSERT_MSG(false, "parallel_for fn threw at index " +
                                    std::to_string(i) + ": " + e.what());
        } catch (...) {
          P2P_ASSERT_MSG(false, "parallel_for fn threw at index " +
                                    std::to_string(i));
        }
      }
    };
  }

  /// The range-naming throw guard for the block API.
  static BlockFn guarded_block(const BlockFn& fn) {
    return [&fn](std::size_t begin, std::size_t end) {
      const auto range = [begin, end] {
        return "[" + std::to_string(begin) + ", " + std::to_string(end) +
               ")";
      };
      try {
        fn(begin, end);
      } catch (const std::exception& e) {
        P2P_ASSERT_MSG(false, "parallel_for block fn threw in range " +
                                  range() + ": " + e.what());
      } catch (...) {
        P2P_ASSERT_MSG(false,
                       "parallel_for block fn threw in range " + range());
      }
    };
  }

  void run_job(std::size_t n, std::size_t chunk, std::size_t window,
               const BlockFn& fn,
               const std::function<void(std::size_t)>* on_prefix) {
    if (n == 0) return;
    if (chunk == 0) chunk = auto_chunk(n, size());
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      P2P_ASSERT_MSG(job_fn_ == nullptr,
                     "parallel_for is not reentrant: one job at a time");
      job_fn_ = &fn;
      job_n_ = n;
      chunk_ = chunk;
      next_ = 0;
      completed_ = 0;
      consumed_chunks_ = 0;
      streaming_ = on_prefix != nullptr;
      window_chunks_ = (on_prefix != nullptr && window != 0)
                           ? std::max<std::size_t>(1, window / chunk)
                           : 0;
      chunk_done_.assign(num_chunks, 0);
    }
    job_cv_.notify_all();

    // The caller participates: claim and run chunks, draining the
    // completed prefix (streaming mode) between claims.
    while (true) {
      const bool claimed = run_one_chunk();
      if (on_prefix != nullptr) drain_prefix(*on_prefix);
      if (claimed) continue;
      std::unique_lock<std::mutex> lock(mutex_);
      if (completed_ == job_n_) break;
      if (on_prefix == nullptr) {
        // Workers wake the caller only when the last increment lands —
        // intermediate completions cannot satisfy this wait.
        done_cv_.wait(lock, [this] { return completed_ == job_n_; });
        break;
      }
      // Streaming and window-stalled (or out of claims): wait for the
      // head chunk — the one blocking the prefix — or the whole job.
      done_cv_.wait(lock, [this] {
        return completed_ == job_n_ ||
               (consumed_chunks_ < chunk_done_.size() &&
                chunk_done_[consumed_chunks_] != 0);
      });
    }
    // With all chunks complete the prefix is all of [0, n).
    if (on_prefix != nullptr) drain_prefix(*on_prefix);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_fn_ = nullptr;
    }
  }

  void worker_loop() {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock, [this] { return stop_ || claimable_locked(); });
        if (stop_) return;
      }
      run_one_chunk();
    }
  }

  /// First index no chunk may claim past: the consumed prefix plus the
  /// window (streaming), or the job end (unbounded).
  std::size_t claim_limit_locked() const {
    if (window_chunks_ == 0) return job_n_;
    const std::size_t limit_chunks = consumed_chunks_ + window_chunks_;
    if (limit_chunks >= chunk_done_.size()) return job_n_;
    return limit_chunks * chunk_;
  }

  bool claimable_locked() const {
    return job_fn_ != nullptr && next_ < claim_limit_locked();
  }

  /// Claims the next chunk and runs it unlocked; returns false when
  /// nothing is claimable (job exhausted or window-stalled). The caller
  /// is woken once per chunk that can matter to it, never per item.
  bool run_one_chunk() {
    const BlockFn* fn = nullptr;
    std::size_t begin = 0, end = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!claimable_locked()) return false;
      fn = job_fn_;
      begin = next_;
      end = std::min(begin + chunk_, job_n_);
      next_ = end;
    }
    // The throw guards (item_block / guarded_block) are baked into fn by
    // the entry points, so this call never unwinds.
    (*fn)(begin, end);
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      completed_ += end - begin;
      const std::size_t chunk_index = begin / chunk_;
      chunk_done_[chunk_index] = 1;
      // Only two completions can satisfy the caller's waits: the final
      // one, and (streaming) the head chunk that gates the prefix.
      notify = completed_ == job_n_ ||
               (streaming_ && chunk_index == consumed_chunks_);
    }
    if (notify) done_cv_.notify_one();
    return true;
  }

  /// Reports any newly completed prefix to on_prefix (unlocked — the
  /// consumer typically does file I/O), then opens the claim window past
  /// the consumed chunks. Runs only on the calling thread.
  void drain_prefix(const std::function<void(std::size_t)>& on_prefix) {
    while (true) {
      std::size_t new_consumed = 0;
      std::size_t prefix_items = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        new_consumed = consumed_chunks_;
        while (new_consumed < chunk_done_.size() &&
               chunk_done_[new_consumed] != 0) {
          ++new_consumed;
        }
        if (new_consumed == consumed_chunks_) return;
        prefix_items = std::min(job_n_, new_consumed * chunk_);
      }
      on_prefix(prefix_items);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // Advanced only after the consumer returns: a claim window past
        // unconsumed results would let workers overwrite a ring slot the
        // consumer is still reading.
        consumed_chunks_ = new_consumed;
      }
      job_cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const BlockFn* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t chunk_ = 1;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  /// Chunks whose results the streaming consumer has taken; claims may
  /// run at most window_chunks_ past this.
  std::size_t consumed_chunks_ = 0;
  std::size_t window_chunks_ = 0;
  std::vector<std::uint8_t> chunk_done_;
  bool streaming_ = false;
  bool stop_ = false;
};

}  // namespace p2p::engine
