#include "engine/cell_eval.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/confidence.hpp"
#include "core/fluid.hpp"
#include "core/model.hpp"
#include "ctmc/stationary.hpp"
#include "sim/swarm.hpp"
#include "sim/typecount_sim.hpp"
#include "util/assert.hpp"

namespace p2p::engine {

namespace {

constexpr const char* kAxisNames[] = {"lambda", "us",    "mu",
                                      "gamma",  "k",     "eta",
                                      "flash",  "mix",   "hetero"};

bool known_axis(const std::string& name) {
  for (const char* known : kAxisNames) {
    if (name == known) return true;
  }
  return false;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t sm =
      seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1));
  return splitmix64(sm);
}

/// True when the truncated chain for (K, cap) fits the solver's budget:
/// the state count grows like C(cap + 2^K, 2^K), so a cap that is cheap
/// at K = 1 (a few thousand states) is billions of states at K = 3.
/// Intractable cells skip the solve (NaN column, like the K gate) rather
/// than hanging the sweep.
bool ctmc_tractable(int k, std::int64_t cap) {
  const int types = 1 << k;  // k <= kCtmcMaxPieces, so at most 8
  double states = 1;
  for (int i = 1; i <= types; ++i) {
    states *= static_cast<double>(cap + i) / static_cast<double>(i);
    if (states > SweepOptions::kCtmcMaxStates) return false;
  }
  return true;
}

/// Fluid-limit verdict of one cell: integrate the mean-field ODE
/// (core/fluid.hpp) from a large one-club point mass and sign the growth
/// of the club coordinate over the later half of the horizon. The fluid
/// one-club growth rate converges to Delta_S — the quantity Theorem 1
/// signs (bench/bench_fluid_limit.cpp pins the agreement numerically) —
/// so a swelling club is the transience signature and a shrinking or
/// drained club is positive recurrence. Unlike the closed form, the
/// integration needs no mu < gamma restriction, so the verdict covers
/// the altruistic branch too. Deterministic: no RNG, so the report stays
/// byte-identical for any (threads, chunk).
Stability fluid_cell_verdict(const CellParams& p, const SweepOptions& options,
                             const std::vector<ArrivalSpec>& arrivals) {
  constexpr double kClubMass = 5000.0;
  constexpr double kGrowthTol = 1e-3;
  const FluidModel model(SwarmParams(p.k, p.us, p.mu, p.gamma, arrivals));
  const PieceSet club = PieceSet::full(p.k).without(0);
  // Scale the RK4 step with the fastest rate so stiff cells (large mu or
  // gamma) stay inside the stability region of the integrator; the
  // verdict is a sign, not a trajectory, so accuracy beyond that is
  // wasted.
  const double rate_scale =
      std::max({1.0, p.mu, p.us, std::isfinite(p.gamma) ? p.gamma : 1.0});
  const double dt = 0.05 / rate_scale;
  const double half = 0.5 * options.horizon;
  const FluidState mid = model.integrate(model.point_mass(club, kClubMass),
                                         half, dt);
  const FluidState late = model.integrate(mid, half, dt);
  const double growth = (late[club.mask()] - mid[club.mask()]) / half;
  if (growth > kGrowthTol) return Stability::kTransient;
  if (growth < -kGrowthTol) return Stability::kPositiveRecurrent;
  // A strongly stable cell drains the whole club before the first window
  // closes, leaving zero late growth; an (almost) empty club is
  // recurrence, not a borderline call.
  return late[club.mask()] < 0.01 * kClubMass ? Stability::kPositiveRecurrent
                                              : Stability::kBorderline;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, Stream stream,
                          std::uint64_t a, std::uint64_t b) {
  return mix_seed(mix_seed(mix_seed(base_seed, stream), a), b);
}

namespace {

std::size_t axis_slot(const SweepGrid& grid, const char* name) {
  for (std::size_t i = 0; i < grid.axes.size(); ++i) {
    if (grid.axes[i].name == name) return i;
  }
  P2P_ASSERT_MSG(false, "sweep cell queried for an axis the grid lacks");
  return 0;
}

}  // namespace

AxisSlots resolve_axis_slots(const SweepGrid& grid) {
  AxisSlots s;
  s.lambda = axis_slot(grid, "lambda");
  s.us = axis_slot(grid, "us");
  s.mu = axis_slot(grid, "mu");
  s.gamma = axis_slot(grid, "gamma");
  s.k = axis_slot(grid, "k");
  s.eta = axis_slot(grid, "eta");
  s.flash = axis_slot(grid, "flash");
  s.mix = axis_slot(grid, "mix");
  s.hetero = axis_slot(grid, "hetero");
  return s;
}

CellParams cell_params(const AxisSlots& s, const std::vector<double>& v,
                       PolicyKind policy) {
  CellParams p;
  p.lambda = v[s.lambda];
  p.us = v[s.us];
  p.mu = v[s.mu];
  p.gamma = v[s.gamma];
  p.eta = v[s.eta];
  p.mix = v[s.mix];
  p.hetero = v[s.hetero];
  p.k = static_cast<int>(std::lround(v[s.k]));
  p.flash = std::llround(v[s.flash]);
  p.policy = policy;
  return p;
}

ReplicaSample simulate_replica(const CellParams& p,
                               const SweepOptions& options,
                               std::uint64_t seed) {
  ExpandedCell cell = expand(options.scenario, p);
  // Both backends realize the same law on the type-count domain, so the
  // measurement path below sees only the SwarmBackend interface; which
  // concrete simulator runs is the per-cell resolution of
  // SweepOptions::sim_backend (forced out-of-domain choices were
  // rejected up front).
  std::optional<SwarmSim> per_peer;
  std::optional<TypeCountSim> type_count;
  SwarmBackend* sim = nullptr;
  if (resolve_sim_backend(options.sim_backend, p) == SimBackend::kTypeCount) {
    type_count.emplace(
        std::move(cell.params),
        TypeCountSimOptions{cell.sim.tracked_piece, seed});
    sim = &*type_count;
  } else {
    cell.sim.rng_seed = seed;
    per_peer.emplace(std::move(cell.params), cell.sim);
    sim = &*per_peer;
  }
  if (p.flash > 0) {
    sim->inject_peers(PieceSet::full(p.k).without(0), p.flash);
  }
  // The occupancy integral over [warmup, horizon] is the total integral
  // minus the integral at the warmup instant, so no simulator support is
  // needed to discard the empty-start transient.
  double warm_integral = 0, warm_time = 0;
  if (options.warmup > 0) {
    sim->run_until(options.warmup);
    warm_time = sim->now();
    warm_integral = sim->time_averaged_peers() * warm_time;
  }
  sim->run_until(options.horizon);

  ReplicaSample r;
  r.final_peers = static_cast<double>(sim->total_peers());
  // run_until steps whole events, so the warmup run can overshoot past
  // the horizon when the event rate is tiny; a zero-width measurement
  // window then carries no information — report NaN, never a fake 0.
  const double window = sim->now() - warm_time;
  r.mean_peers =
      window > 0
          ? (sim->time_averaged_peers() * sim->now() - warm_integral) / window
          : std::nan("");
  r.mean_sojourn = sim->sojourn_stats().count() > 0
                       ? sim->sojourn_stats().mean()
                       : std::nan("");
  return r;
}

SimAggregate aggregate_samples(std::span<const ReplicaSample> samples,
                               const SweepOptions& options, Rng& rng) {
  const int r = static_cast<int>(samples.size());
  P2P_ASSERT(r >= 1);
  SimAggregate agg;
  agg.replicas = r;

  // Replicas whose measurement window collapsed (NaN mean) carry no
  // time-average information and are excluded, like departure-free
  // replicas are from the sojourn mean.
  std::vector<double> means;
  means.reserve(samples.size());
  double final_sum = 0, sojourn_sum = 0;
  int sojourn_n = 0;
  for (const ReplicaSample& s : samples) {
    if (!std::isnan(s.mean_peers)) means.push_back(s.mean_peers);
    final_sum += s.final_peers;
    if (!std::isnan(s.mean_sojourn)) {
      sojourn_sum += s.mean_sojourn;
      ++sojourn_n;
    }
  }
  agg.final_peers_mean = final_sum / r;
  agg.mean_sojourn =
      sojourn_n > 0 ? sojourn_sum / sojourn_n : std::nan("");

  if (means.size() >= 2) {
    // Replicas are independent, so batch size 1 is the exact iid SEM.
    const BatchMeansResult bm =
        batch_means(means, static_cast<int>(means.size()));
    agg.mean_peers_mean = bm.mean;
    agg.mean_peers_sem = bm.sem;
    const BootstrapResult ci = block_bootstrap(
        means,
        [](std::span<const double> s) {
          double m = 0;
          for (double x : s) m += x;
          return m / static_cast<double>(s.size());
        },
        /*block_length=*/1, options.bootstrap_resamples, options.confidence,
        rng);
    agg.mean_peers_lo = ci.lower;
    agg.mean_peers_hi = ci.upper;
  } else if (means.size() == 1) {
    agg.mean_peers_mean = means[0];
    // SEM/CI stay NaN: one trajectory carries no uncertainty estimate.
  }
  return agg;
}

void validate_caller_axes(const SweepGrid& grid) {
  for (const auto& axis : grid.axes) {
    P2P_ASSERT_MSG(known_axis(axis.name),
                   "unknown sweep axis (valid: lambda, us, mu, gamma, k, "
                   "eta, flash, mix, hetero; got \"" +
                       axis.name + "\")");
    P2P_ASSERT_MSG(!axis.values.empty(),
                   "sweep axis has no values (axis \"" + axis.name + "\")");
  }
}

void validate_effective_axes(const SweepGrid& effective,
                             const SweepOptions& options) {
  for (const auto& axis : effective.axes) {
    for (const double v : axis.values) {
      if (axis.name != "gamma") {  // inf = immediate departure
        P2P_ASSERT_MSG(std::isfinite(v),
                       "only the gamma axis may take inf values");
      }
      if (axis.name == "eta") {
        P2P_ASSERT_MSG(v >= 1.0,
                       "axis eta must be >= 1 (Section VIII-C retry boost)");
      }
      if (axis.name == "k") {
        P2P_ASSERT_MSG(v >= 1 && std::abs(v - std::lround(v)) < 1e-9,
                       "axis k must take positive integer values");
        P2P_ASSERT_MSG(
            !options.fluid || v <= SweepOptions::kFluidMaxPieces,
            "the fluid verdict integrates a dense 2^k-state ODE per cell "
            "(k <= " +
                std::to_string(SweepOptions::kFluidMaxPieces) +
                "), but axis k takes the value " + format_number(v) +
                "; shrink k or drop --fluid");
        P2P_ASSERT_MSG(
            options.scenario.empty() ||
                std::lround(v) == options.scenario.num_pieces,
            "axis k must equal the scenario's piece count (mix \"" +
                options.scenario.name + "\" is defined over K = " +
                std::to_string(options.scenario.num_pieces) + ")");
      }
      if (axis.name == "flash") {
        P2P_ASSERT_MSG(v >= 0 && std::abs(v - std::llround(v)) < 1e-9,
                       "axis flash must take nonnegative integer values");
      }
      if (axis.name == "mix") {
        P2P_ASSERT_MSG(v >= 0 && v <= 1, "axis mix must lie in [0, 1]");
        P2P_ASSERT_MSG(v == 0 || !options.scenario.empty(),
                       "axis mix needs a named scenario (--mix) to "
                       "interpolate toward");
      }
      if (axis.name == "hetero") {
        P2P_ASSERT_MSG(v >= 0 && v < 1,
                       "axis hetero must lie in [0, 1) (slow multiplier "
                       "1 - h must stay positive)");
      }
    }
  }
}

void validate_options(const SweepOptions& options) {
  P2P_ASSERT_MSG(options.threads >= 1, "sweep threads must be >= 1");
  P2P_ASSERT_MSG(options.horizon > 0, "sweep horizon must be positive");
  P2P_ASSERT_MSG(options.warmup >= 0 && options.warmup < options.horizon,
                 "warmup must lie in [0, horizon)");
  P2P_ASSERT_MSG(options.replicas >= 1, "replicas must be >= 1");
  P2P_ASSERT_MSG(options.confidence > 0 && options.confidence < 1,
                 "confidence must lie in (0, 1)");
  P2P_ASSERT_MSG(options.bootstrap_resamples >= 10,
                 "bootstrap resamples must be >= 10");
}

SweepGrid effective_grid(const SweepGrid& grid) {
  SweepGrid effective = default_region_grid();
  for (const auto& axis : grid.axes) effective.set_axis(axis);
  return effective;
}

void fill_cell(CellResult& r, std::size_t cell, const CellParams& p,
               const SweepOptions& options,
               std::vector<ArrivalSpec>& arrival_scratch) {
  // Every other field is assigned unconditionally below; these two are
  // only written when their solve/aggregation runs, so a recycled slot
  // (or the chunk path's reused local) must see them reset.
  r.sim = SimAggregate{};
  r.ctmc_mean_peers = std::nan("");
  r.fluid = Stability::kBorderline;
  r.backend = resolve_sim_backend(options.sim_backend, p);
  r.index = cell;
  r.lambda = p.lambda;
  r.us = p.us;
  r.mu = p.mu;
  r.gamma = p.gamma;
  r.k = p.k;
  r.eta = p.eta;
  r.flash = p.flash;
  r.mix = p.mix;
  r.hetero = p.hetero;
  expand_arrivals(options.scenario, p, arrival_scratch);
  r.theory = classify(SwarmParamsView{p.k, p.us, p.mu, p.gamma,
                                      arrival_scratch});
  if (options.fluid) {
    r.fluid = fluid_cell_verdict(p, options, arrival_scratch);
  }
  // The truncated chain is the *homogeneous RandomUseful* law: under a
  // retry boost, a rate spread or a non-baseline selection policy its
  // stationary mean is not the answer the simulator approaches, so the
  // column stays NaN rather than posing as an exact cross-check. Typed
  // mixes are fine — the chain is typed by nature.
  if (options.ctmc_max_peers > 0 && p.k <= SweepOptions::kCtmcMaxPieces &&
      p.eta == 1 && p.hetero == 0 &&
      p.policy == PolicyKind::kRandomUseful &&
      ctmc_tractable(p.k, options.ctmc_max_peers)) {
    r.ctmc_mean_peers =
        solve_truncated_swarm(
            SwarmParams(p.k, p.us, p.mu, p.gamma, arrival_scratch),
            options.ctmc_max_peers)
            .mean_peers();
  }
}

}  // namespace p2p::engine
