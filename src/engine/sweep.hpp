// Parameter-grid scenario sweeps over the Zhu–Hajek model.
//
// A sweep is a cartesian grid over the model's parameter axes
// (lambda, us, mu, gamma, k). Each grid cell is classified three ways:
//
//   * theory  — Theorem 1 closed form (core/stability.hpp): verdict,
//               stability margin, critical piece;
//   * sim     — one SwarmSim replica to a time horizon (sim/swarm.hpp):
//               final population, exact time-averaged population, mean
//               sojourn of departed peers;
//   * ctmc    — optionally, the truncated-chain stationary E[N]
//               (ctmc/stationary.hpp) for small K, the exact answer the
//               simulator should approach.
//
// Cells are independent, so the sweep fans them across a fixed thread
// pool (engine/thread_pool.hpp). Determinism contract: every cell derives
// its RNG stream from (base_seed, cell index) alone and results are
// formatted in index order after the pool joins, so the emitted report is
// byte-identical for any --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stability.hpp"
#include "engine/report.hpp"

namespace p2p::engine {

/// One sweep axis: a parameter name and the grid values it takes.
/// Valid names: "lambda" (empty-arrival rate), "us", "mu", "gamma"
/// ("inf" allowed), "k" (integral piece count).
struct Axis {
  std::string name;
  std::vector<double> values;
};

/// Parses a single axis spec. Three forms:
///   name=lo:hi:count   inclusive linspace with `count` >= 1 points
///   name=v1,v2,...     explicit list
///   name=v             single value
/// "inf" is accepted as a value (for gamma). Aborts on malformed specs.
Axis parse_axis(const std::string& spec);

/// A cartesian grid: the cell index enumerates axis values row-major with
/// the LAST axis fastest (cell 0 is every axis at its first value).
struct SweepGrid {
  std::vector<Axis> axes;

  std::size_t num_cells() const;
  /// The axis values of cell `index`, aligned with `axes`.
  std::vector<double> cell_values(std::size_t index) const;
  /// Replaces the axis with the same name, or appends a new one.
  void set_axis(Axis axis);
  const Axis* find_axis(const std::string& name) const;
};

/// Parses ';'-separated axis specs, e.g. "lambda=0.5:3.0:16;gamma=inf".
SweepGrid parse_grid(const std::string& spec);

/// The standard Theorem-1 region grid: lambda 0.5:3.0:16 crossed with
/// us 0.2:1.7:16 (256 cells) at mu = 1, gamma = 1.25, K = 3 — the
/// phase-diagram slice of Fig. 1(a) generalized to K pieces.
SweepGrid default_region_grid();

struct SweepOptions {
  /// Simulated time per cell.
  double horizon = 400;
  /// Root seed; cell i simulates with a stream derived from (seed, i).
  std::uint64_t base_seed = 1;
  /// OS threads (callers usually pass hardware_concurrency).
  int threads = 1;
  /// Initial one-club flash crowd injected into every cell (0 = none).
  std::int64_t flash_crowd = 0;
  /// > 0: additionally solve the truncated chain with this peer cap for
  /// cells with K <= kCtmcMaxPieces (state space explodes beyond that).
  std::int64_t ctmc_max_peers = 0;

  static constexpr int kCtmcMaxPieces = 2;
};

/// One classified grid cell.
struct CellResult {
  std::size_t index = 0;
  double lambda = 0, us = 0, mu = 0, gamma = 0;
  int k = 0;
  StabilityReport theory;
  double sim_final_peers = 0;
  double sim_mean_peers = 0;
  double sim_mean_sojourn = 0;
  /// NaN unless the CTMC solve ran for this cell.
  double ctmc_mean_peers = 0;
};

struct SweepResult {
  SweepGrid grid;
  SweepOptions options;
  std::vector<CellResult> cells;

  /// Fixed-schema table (cell-index order): cell, lambda, us, mu, gamma,
  /// k, verdict, margin, critical_piece, sim_final_peers, sim_mean_peers,
  /// sim_mean_sojourn, ctmc_mean_peers.
  Table to_table() const;
};

/// Runs every cell of `grid` across `options.threads` threads. Axes not
/// present in `grid` take the default_region_grid() values (so an empty
/// grid runs the full 256-cell region sweep); the effective grid is
/// returned in SweepResult::grid. Aborts on unknown axis names, inf on
/// any axis but gamma, or invalid parameter values (lambda/mu <= 0, ...).
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options);

}  // namespace p2p::engine
