// Parameter-grid scenario sweeps over the Zhu–Hajek model.
//
// A sweep is a cartesian grid over the model's parameter axes
// (lambda, us, mu, gamma, k, eta, flash, mix, hetero). The mix and
// hetero axes leave the homogeneous slice: mix interpolates the arrival
// composition between the empty-arrival stream and a named typed mix
// (engine/scenario.hpp), hetero spreads the two-class upload-rate
// multiplier around mean 1. Each grid cell is classified three ways:
//
//   * theory  — Theorem 1 closed form (core/stability.hpp): verdict,
//               stability margin, critical piece;
//   * sim     — R independent SwarmSim replicas to a time horizon
//               (sim/swarm.hpp): final population, exact time-averaged
//               population, mean sojourn of departed peers — aggregated
//               across replicas into mean / SEM / bootstrap-CI columns
//               (analysis/confidence.hpp);
//   * ctmc    — optionally, the truncated-chain stationary E[N]
//               (ctmc/stationary.hpp) for small K, the exact answer the
//               simulator should approach.
//
// Replicas are independent, so the sweep fans the (cell, replica) pairs
// across a fixed thread pool (engine/thread_pool.hpp) in chunks of
// SweepOptions::chunk items per claim — a grid of few cells with large R
// parallelizes just as well as a large grid, and a closed-form-only grid
// of a million tiny cells is not serialized on the claim mutex.
// Determinism contract: every replica derives its RNG stream from
// (base_seed, cell, replica) alone, cells are aggregated and emitted in
// index order as their prefix completes, so the emitted report is
// byte-identical for any --threads and any chunk size.
//
// Two entry points share one pipeline: run_sweep retains every
// CellResult (tests, small grids); run_sweep_stream hands each finished
// cell's row straight to a streaming ReportWriter and keeps only a
// bounded ring of in-flight results — peak memory O(chunk * threads),
// not O(num_cells) — with output byte-identical to run_sweep's table.
//
// Boundary refinement (refine_frontier) localizes the Theorem-1 phase
// boundary instead of rasterizing it: per combination of the non-refined
// axes ("row"), it scans the refined axis's coarse values for a verdict
// flip, bisects the bracket down to a requested tolerance (the verdict
// is closed form, so bisection costs no simulation), and then spends the
// simulation budget only at the localized frontier point — R replicas
// with the same CI aggregation as replica mode.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/stability.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"

namespace p2p::engine {

// --- Report schema (shared writer/reader constants) ---
//
// Both report tables have the shape
//
//   head columns | optional per-type arrival-rate block | tail columns
//
// where the per-type block ("lambda_empty" then one "lambda_t..." column
// per stream of the scenario) appears exactly when a named mix is
// active. The corpus reader (engine/csv_reader.hpp) validates archived
// headers against these same constants, so the writer and the reader
// cannot drift apart silently.

/// Grid-table columns before / after the optional per-type block.
std::span<const char* const> sweep_schema_head();
std::span<const char* const> sweep_schema_tail();

/// Frontier-table columns before / after the optional per-type block.
std::span<const char* const> frontier_schema_head();
std::span<const char* const> frontier_schema_tail();

/// First column of the per-type block, and the prefix of the per-stream
/// columns that follow it.
inline constexpr const char* kLambdaEmptyColumn = "lambda_empty";
inline constexpr const char* kLambdaTypePrefix = "lambda_t";

/// Column name of one typed arrival stream: "lambda_t" + one-based piece
/// indices joined by '.' (e.g. {0,1} -> "lambda_t1.2"). Dots instead of
/// commas keep CSV headers unquoted, so archived corpora stay naively
/// splittable. The reader inverts this with parse_mix_column_type.
std::string mix_column_name(PieceSet type);

// --- Simulation backend selection ---

/// Which simulator runs a cell's replicas. Both backends realize the
/// same stochastic law on the type-count backend's domain; they differ
/// only in representation (sim/backend.hpp):
///
///   kPerPeer   — SwarmSim, per-peer records. Required for eta != 1
///                (the retry boost is per-peer state) and hetero != 0
///                (per-peer rate classes); works everywhere.
///   kTypeCount — TypeCountSim, counts per PieceSet type with silent
///                contacts integrated out analytically. Orders of
///                magnitude faster on large swarms, but only lawful
///                where identical-type peers are exchangeable:
///                eta = 1, hetero = 0 and k <= 16.
///   kAuto      — per cell: kTypeCount where its law applies, kPerPeer
///                otherwise. The default.
enum class SimBackend { kAuto, kPerPeer, kTypeCount };

/// Report token of a *resolved* backend ("perpeer" / "typecount";
/// kAuto never reaches a report row).
const char* to_string(SimBackend backend);

/// True when the type-count backend realizes the cell's law: eta = 1,
/// hetero = 0, k <= 16 (TypeCountState's dense-type limit) and the
/// RandomUseful policy — any other selection breaks the exchangeability
/// of identical-type peers the collapsed state relies on.
bool typecount_in_domain(const CellParams& p);

/// Resolves kAuto by the documented rule; forced choices pass through.
SimBackend resolve_sim_backend(SimBackend requested, const CellParams& p);

/// Trailing report column recording the backend each cell's replicas
/// ran on. Present whenever the table carries simulation columns that
/// a backend actually produced (grid mode without --theory-only, and
/// every frontier table); absent from theory-only grids, so archived
/// closed-form corpora reproduce byte-identically.
inline constexpr const char* kSimBackendColumn = "sim_backend";

/// Trailing report column naming the piece-selection policy the cell's
/// replicas ran (after sim_backend). Present exactly when the table
/// carries simulation columns and the scenario's policy is not the
/// RandomUseful baseline — baseline sweeps keep their historical bytes.
inline constexpr const char* kPolicyColumn = "policy";

/// Trailing report column with the fluid-limit verdict (after the
/// policy column). Present exactly when SweepOptions::fluid is set;
/// archived corpora without it reproduce byte-identically.
inline constexpr const char* kFluidVerdictColumn = "fluid_verdict";

/// One sweep axis: a parameter name and the grid values it takes.
/// Valid names: "lambda" (total arrival rate), "us", "mu", "gamma"
/// ("inf" allowed), "k" (integral piece count), "eta" (Section VIII-C
/// retry boost, >= 1), "flash" (one-club peers injected at t = 0,
/// nonnegative integer), "mix" (arrival-composition interpolation in
/// [0, 1] toward SweepOptions::scenario; nonzero values require a named
/// scenario), "hetero" (mean-preserving two-class rate spread in [0, 1)).
struct Axis {
  std::string name;
  std::vector<double> values;
};

/// Parses a single axis spec. Three forms:
///   name=lo:hi:count   inclusive linspace with `count` >= 1 points
///   name=v1,v2,...     explicit list
///   name=v             single value
/// "inf" is accepted as a value (for gamma). Aborts on malformed specs.
Axis parse_axis(const std::string& spec);

/// A cartesian grid: the cell index enumerates axis values row-major with
/// the LAST axis fastest (cell 0 is every axis at its first value).
struct SweepGrid {
  std::vector<Axis> axes;

  /// Product of the axis sizes. Aborts (echoing the axis sizes) when the
  /// product overflows size_t — a hostile spec must not wrap silently
  /// and under-allocate the sweep.
  std::size_t num_cells() const;
  /// The axis values of cell `index`, aligned with `axes`.
  std::vector<double> cell_values(std::size_t index) const;
  /// Replaces the axis with the same name, or appends a new one.
  void set_axis(Axis axis);
  const Axis* find_axis(const std::string& name) const;
};

/// Parses ';'-separated axis specs, e.g. "lambda=0.5:3.0:16;gamma=inf".
SweepGrid parse_grid(const std::string& spec);

/// Empty when every cell of `grid` (missing axes filled from the
/// default region grid, like run_sweep does) under `scenario` lies in
/// the type-count backend's domain; otherwise a message naming the
/// offending axis and value. Shared by the engine's forced-typecount
/// validation and p2p_sweep's friendly pre-flight error, so the two
/// never disagree on the domain.
std::string typecount_domain_violation(const SweepGrid& grid,
                                       const ScenarioSpec& scenario);
std::string typecount_domain_violation(const SweepGrid& grid);

/// The standard Theorem-1 region grid: lambda 0.5:3.0:16 crossed with
/// us 0.2:1.7:16 (256 cells) at mu = 1, gamma = 1.25, K = 3, eta = 1,
/// flash = 0, mix = 0, hetero = 0 — the phase-diagram slice of Fig. 1(a)
/// generalized to K pieces (and pinned to the homogeneous slice of the
/// scenario space).
SweepGrid default_region_grid();

struct SweepOptions {
  /// Simulated time per replica.
  double horizon = 400;
  /// Simulated time discarded from the time-averaged population (the
  /// occupancy integral starts at `warmup`), so stationary estimates are
  /// not dragged down by the empty-start transient. Must be < horizon.
  double warmup = 0;
  /// Root seed; replica r of cell i simulates with a stream derived from
  /// (seed, i, r).
  std::uint64_t base_seed = 1;
  /// OS threads (callers usually pass hardware_concurrency).
  int threads = 1;
  /// (cell, replica) work items claimed per pool mutex acquisition;
  /// 0 = auto (~items / (64 * threads)). Any value yields byte-identical
  /// output; large chunks only matter for huge closed-form grids where
  /// per-item claiming would serialize on the mutex.
  std::size_t chunk = 0;
  /// Independent replicas per cell, fanned as individual work items.
  int replicas = 1;
  /// Skip the simulator entirely: every cell gets only the Theorem-1
  /// closed form (and the CTMC solve, if enabled). The sim columns stay
  /// NaN with replicas = 0, one work item per cell regardless of
  /// `replicas`. This is what lets million-cell phase diagrams render in
  /// seconds.
  bool theory_only = false;
  /// Confidence level of the replica-mean bootstrap CI.
  double confidence = 0.95;
  /// Bootstrap resamples for the CI (>= 10).
  int bootstrap_resamples = 256;
  /// > 0: additionally solve the truncated chain with this peer cap for
  /// cells with K <= kCtmcMaxPieces whose state count C(cap + 2^K, 2^K)
  /// stays within kCtmcMaxStates (the space explodes combinatorially: a
  /// cap of 60 is ~2e3 states at K = 1 and ~7e9 at K = 3). The solve is
  /// also skipped — the column stays NaN, "NaN unless the solve ran" —
  /// for cells whose simulated law is not the homogeneous chain's
  /// (eta != 1 or hetero != 0); typed mixes are fine, the chain is typed
  /// by nature.
  std::int64_t ctmc_max_peers = 0;

  /// Simulation backend for the replica runs. kAuto picks per cell:
  /// the type-count backend where its law applies (eta = 1, hetero = 0,
  /// k <= 16), the per-peer simulator otherwise. Forcing kTypeCount on
  /// a grid with cells outside that domain aborts up front, naming the
  /// offending axis — the backend must never silently change the law.
  SimBackend sim_backend = SimBackend::kAuto;

  /// Typed-arrival scenario the mix/hetero axes act on; default empty
  /// (the mix axis must then be 0 everywhere). Its policy field selects
  /// the simulated peers' piece-selection rule for every cell.
  ScenarioSpec scenario;

  /// Additionally classify every cell by the fluid (mean-field) limit:
  /// integrate the dense ODE of core/fluid.hpp from a large one-club
  /// point mass over the horizon and sign the late-window growth of the
  /// club coordinate — the numerical analogue of Delta_S (the fluid
  /// one-club drift), and the third verdict next to theory and sim.
  /// Adds the fluid_verdict column. The ODE is dense over 2^k piece
  /// sets, so the k axis must stay <= kFluidMaxPieces.
  bool fluid = false;

  static constexpr int kCtmcMaxPieces = 3;
  static constexpr double kCtmcMaxStates = 2e6;
  static constexpr int kFluidMaxPieces = 8;
};

/// Replica-aggregated simulation statistics for one parameter point.
/// With a single replica the uncertainty fields are NaN.
struct SimAggregate {
  int replicas = 0;
  double final_peers_mean = std::nan("");
  double mean_peers_mean = std::nan("");
  /// SEM of mean_peers across replicas (batch means, batch size 1).
  double mean_peers_sem = std::nan("");
  /// Percentile bootstrap CI for the replica mean at
  /// SweepOptions::confidence.
  double mean_peers_lo = std::nan("");
  double mean_peers_hi = std::nan("");
  /// Mean sojourn over the replicas that saw departures; NaN if none did.
  /// (Similarly, mean_peers statistics cover only replicas whose
  /// measurement window was nonempty — replicas counts the requested
  /// total.)
  double mean_sojourn = std::nan("");
};

/// One classified grid cell.
struct CellResult {
  std::size_t index = 0;
  double lambda = 0, us = 0, mu = 0, gamma = 0;
  int k = 0;
  /// Section VIII-C retry boost (1 = base model).
  double eta = 1;
  /// One-club flash crowd injected at t = 0.
  std::int64_t flash = 0;
  /// Arrival-composition interpolation toward the scenario mix (0 =
  /// empty-arrival stream).
  double mix = 0;
  /// Two-class upload-rate spread (0 = homogeneous).
  double hetero = 0;
  StabilityReport theory;
  SimAggregate sim;
  /// NaN unless the CTMC solve ran for this cell.
  double ctmc_mean_peers = std::nan("");
  /// Resolved backend the cell's replicas ran on (never kAuto).
  /// Meaningless — and the report column absent — under theory_only.
  SimBackend backend = SimBackend::kPerPeer;
  /// Fluid-limit verdict (meaningful only when SweepOptions::fluid):
  /// transient when the one-club point mass grows along the mean-field
  /// flow, positive-recurrent when it drains, borderline in between.
  Stability fluid = Stability::kBorderline;
};

struct SweepResult {
  SweepGrid grid;
  SweepOptions options;
  std::vector<CellResult> cells;

  /// Fixed-schema table (cell-index order): cell, lambda, us, mu, gamma,
  /// k, eta, flash, mix, hetero, [per-type arrival-rate columns when the
  /// scenario is non-empty: lambda_empty then lambda_t<pieces> per mix
  /// type, one-based and '.'-joined, e.g. lambda_t1.2], verdict, margin,
  /// critical_piece, replicas, sim_final_peers, sim_mean_peers,
  /// sim_mean_sojourn, sim_mean_peers_sem, sim_mean_peers_lo,
  /// sim_mean_peers_hi, ctmc_mean_peers[, sim_backend unless
  /// theory_only][, policy when simulating off the RandomUseful
  /// baseline][, fluid_verdict when options.fluid].
  Table to_table() const;
};

/// The grid table's column names for `options` (to_table's header, and
/// what a streaming ReportWriter must be constructed with).
std::vector<std::string> sweep_columns(const SweepOptions& options);

/// One formatted grid-table row, aligned with sweep_columns(options).
std::vector<std::string> sweep_row(const CellResult& cell,
                                   const SweepOptions& options);

/// Runs every (cell, replica) pair of `grid` across `options.threads`
/// threads. Axes not present in `grid` take the default_region_grid()
/// values (so an empty grid runs the full 256-cell region sweep); the
/// effective grid is returned in SweepResult::grid. Aborts on unknown
/// axis names, inf on any axis but gamma, or invalid parameter values
/// (lambda/mu <= 0, eta < 1, fractional flash, ...).
SweepResult run_sweep(const SweepGrid& grid, const SweepOptions& options);

/// What a streamed sweep leaves behind: the verdict tallies the tool
/// prints to stderr (the cells themselves went to the writer).
struct SweepSummary {
  std::size_t cells = 0;
  std::size_t stable = 0;
  std::size_t transient = 0;
  std::size_t borderline = 0;
};

/// run_sweep's bounded-memory twin: identical validation, scheduling and
/// numbers, but each cell's row is handed to `writer` (construct it with
/// sweep_columns(options)) as soon as every cell before it has finished,
/// and the CellResult is dropped. Live state is a ring of
/// O(chunk * threads) items, so grid size no longer bounds memory. The
/// caller finishes the writer. Emitted bytes equal
/// run_sweep(...).to_table() rendered with the same format, for any
/// (threads, chunk) combination.
SweepSummary run_sweep_stream(const SweepGrid& grid,
                              const SweepOptions& options,
                              ReportWriter& writer);

// --- Theorem-1 boundary refinement ---

struct RefineOptions {
  /// Axis bisected toward the verdict flip; must be one of the
  /// continuous theory axes "lambda", "us", "mu", "gamma", "mix" (the
  /// verdict depends on the arrival composition, so the Theorem-1 flip
  /// can be localized along the mix interpolation too).
  std::string axis;
  /// Absolute tolerance: bisection stops once the bracket is this wide.
  double tol = 1e-3;
};

/// Parses "axis:tol", e.g. "lambda:0.01". Aborts on malformed specs.
RefineOptions parse_refine(const std::string& spec);

/// True for the axes refinement may bisect: the continuous parameters
/// the Theorem-1 closed form depends on (lambda, us, mu, gamma, mix).
/// eta, hetero and flash never flip the verdict along themselves
/// (Section VIII-C's point, homogeneous-rate theory, initial state
/// only), and k is integral. The phase-diagram re-bisection
/// (analysis/phase_diagram.hpp) consults the same predicate, so the
/// two localizers cannot drift on which axes they cover.
bool refinable_axis(const std::string& name);

/// One localized frontier point: the Theorem-1 verdict flip along the
/// refined axis for one combination of the remaining axes.
struct FrontierPoint {
  /// Row index over the non-refined axes (last axis fastest).
  std::size_t row = 0;
  /// False when the coarse scan found no verdict flip in this row: no
  /// simulation runs, value/value_lo/value_hi/margin and the sim fields
  /// are NaN, and `params` still reports the row's values (with NaN in
  /// the refined axis's slot).
  bool bracketed = false;
  /// Cell parameters at the frontier estimate (the refined axis's slot
  /// holds `value`).
  CellParams params;
  /// Frontier estimate: midpoint of the final bracket [value_lo,
  /// value_hi], which is at most `tol` wide and contains the flip.
  double value = std::nan("");
  double value_lo = std::nan("");
  double value_hi = std::nan("");
  /// Theorem-1 stability margin at `value` (~0 by construction).
  double margin = std::nan("");
  /// R replicas simulated at the frontier point.
  SimAggregate sim;
};

struct FrontierResult {
  /// The effective (defaults-filled) grid refinement started from.
  SweepGrid grid;
  RefineOptions refine;
  SweepOptions options;
  /// One point per row, in row order.
  std::vector<FrontierPoint> points;

  /// Fixed-schema table (row order): row, axis, bracketed, value,
  /// value_lo, value_hi, margin, lambda, us, mu, gamma, k, eta, flash,
  /// mix, hetero, [the same per-type arrival-rate columns as the grid
  /// table when the scenario is non-empty], replicas, sim_mean_peers,
  /// sim_mean_peers_sem, sim_mean_peers_lo, sim_mean_peers_hi,
  /// sim_backend[, policy when the scenario's policy is not the
  /// RandomUseful baseline].
  Table to_table() const;
};

/// The frontier table's column names for `options` (to_table's header,
/// and what a streaming ReportWriter must be constructed with).
std::vector<std::string> frontier_columns(const SweepOptions& options);

/// One formatted frontier-table row, aligned with
/// frontier_columns(options).
std::vector<std::string> frontier_row(const FrontierPoint& pt,
                                      const RefineOptions& refine,
                                      const SweepOptions& options);

/// For each combination of the non-refined axes ("row"), scans the
/// refined axis's coarse values (in axis order) for the first adjacent
/// Theorem-1 verdict change, bisects that bracket down to `refine.tol`
/// (closed form, no simulation), then runs options.replicas SwarmSim
/// replicas at the localized frontier point — the (row, replica) items
/// go through the same chunked claiming as the grid sweep
/// (options.chunk), so a tall coarse grid does not serialize on the
/// claim mutex. Same determinism contract as run_sweep. Aborts if the
/// refined axis is missing, non-refinable, has < 2 values, or contains
/// inf.
FrontierResult refine_frontier(const SweepGrid& grid,
                               const SweepOptions& options,
                               const RefineOptions& refine);

/// What a streamed frontier run leaves behind (the points themselves
/// went to the writer).
struct FrontierSummary {
  std::size_t rows = 0;
  std::size_t bracketed = 0;
};

/// refine_frontier's bounded-memory twin, closing the last
/// O(num_rows) buffer in the sweep engine: identical validation,
/// scheduling and numbers, but each localized point's row is handed to
/// `writer` (construct it with frontier_columns(options)) as soon as
/// every row before it has finished, and the FrontierPoint is dropped.
/// Live state is a ring of O(chunk * threads) items, so a very tall
/// coarse grid no longer bounds memory. The caller finishes the writer.
/// Emitted bytes equal refine_frontier(...).to_table() rendered with
/// the same format, for any (threads, chunk) combination.
FrontierSummary run_frontier_stream(const SweepGrid& grid,
                                    const SweepOptions& options,
                                    const RefineOptions& refine,
                                    ReportWriter& writer);

}  // namespace p2p::engine
