// Shared cell-evaluation core of the sweep engine.
//
// Internal header: everything a sweep-shaped driver needs to turn one
// parameter point into a report row — deterministic per-work-item seed
// derivation, the per-replica simulation harness, replica aggregation,
// the closed-form/CTMC/fluid classification of a cell, and the grid /
// option validators. `engine/sweep.cpp` (dense grids, per-row frontier
// refinement) and `engine/refine.cpp` (adaptive multi-resolution boxes)
// both evaluate through here, so a dense cell and an adaptive box corner
// at the same parameters can never disagree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "rand/rng.hpp"

namespace p2p::engine {

/// Independent named streams off one base seed, so replica sims, the
/// aggregation bootstrap, frontier sims and adaptive vertex sims can
/// never collide. The numeric values are part of the archive contract:
/// every committed corpus was generated with these assignments, so new
/// streams may only be appended, never renumbered.
enum Stream : std::uint64_t {
  kStreamCellSim = 0,
  kStreamCellAgg = 1,
  kStreamFrontierSim = 2,
  kStreamFrontierAgg = 3,
  kStreamAdaptiveSim = 4,
  kStreamAdaptiveAgg = 5,
};

/// Seeds work item (stream, a, b) independently of execution order:
/// chained splitmix64, the same derivation Rng::split uses. Every
/// replica's stream depends only on (base_seed, cell/row, replica), never
/// on which thread ran it — the determinism contract.
std::uint64_t derive_seed(std::uint64_t base_seed, Stream stream,
                          std::uint64_t a, std::uint64_t b);

/// Positions of the nine model axes in the effective grid's axis list,
/// resolved once per sweep so the per-cell hot loop indexes by slot
/// instead of comparing axis names nine times per cell.
struct AxisSlots {
  std::size_t lambda = 0, us = 0, mu = 0, gamma = 0, k = 0, eta = 0,
              flash = 0, mix = 0, hetero = 0;
};

AxisSlots resolve_axis_slots(const SweepGrid& grid);

/// extract_params without the name lookups and integrality asserts —
/// validate_effective_axes already vetted every grid value once up
/// front, so the per-cell path only rounds.
CellParams cell_params(const AxisSlots& s, const std::vector<double>& v,
                       PolicyKind policy);

/// One replica's simulation summary (pre-aggregation).
struct ReplicaSample {
  double final_peers = 0;
  double mean_peers = 0;
  double mean_sojourn = 0;
};

ReplicaSample simulate_replica(const CellParams& p,
                               const SweepOptions& options,
                               std::uint64_t seed);

/// Collapses R replica samples into mean / SEM / bootstrap-CI. Runs
/// serially in index order after the pool joins; `rng` drives only the
/// bootstrap and is derived per cell, so the result is deterministic.
SimAggregate aggregate_samples(std::span<const ReplicaSample> samples,
                               const SweepOptions& options, Rng& rng);

void validate_caller_axes(const SweepGrid& grid);

void validate_effective_axes(const SweepGrid& effective,
                             const SweepOptions& options);

void validate_options(const SweepOptions& options);

/// Axes the caller did not specify take the default region grid's —
/// the single source of fallback values, so a partial grid cannot
/// silently simulate at undocumented parameters.
SweepGrid effective_grid(const SweepGrid& grid);

/// Fills the non-sim fields of one cell — everything the cell's first
/// work item computes besides its own simulation. Resets the struct
/// first: the streaming pipeline recycles ring slots, and a stale CTMC
/// value from a previous occupant must not survive a skipped solve.
/// `arrival_scratch` is the caller's reused arrival buffer: the theory
/// classification runs on a SwarmParamsView borrowing it, so the
/// closed-form path never allocates per cell.
void fill_cell(CellResult& r, std::size_t cell, const CellParams& p,
               const SweepOptions& options,
               std::vector<ArrivalSpec>& arrival_scratch);

}  // namespace p2p::engine
