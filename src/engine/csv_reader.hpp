// Streaming, schema-validating readers for the sweep corpus — the
// inverse of engine/report.hpp.
//
// The CSV dialect is exactly what ReportWriter emits: a header line and
// '\n'-terminated rows with RFC-4180 quoting (cells containing commas,
// quotes or newlines are quoted, embedded quotes doubled). Reading a
// table's to_csv() reproduces the table bit-exactly, and every numeric
// cell parses back to the identical double (format_number's
// shortest-round-trip contract) — archived corpora under experiments/
// are lossless records whose physics the golden-corpus tests re-derive
// from the bytes alone.
//
// Errors are hard aborts (P2P_ASSERT) echoing the offending line or
// byte offset: corpus files are test-pinned artifacts, so a truncated,
// reordered or wrong-arity file is a bug to surface loudly, never an
// input to recover from silently.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/report.hpp"
#include "engine/sweep.hpp"
#include "util/piece_set.hpp"

namespace p2p::engine {

/// Inverse of format_number: "nan", "inf", "-inf", or a finite decimal
/// spelling (strtod must consume the whole cell — "", "1x", " 2" all
/// abort, echoing `cell` and `context`).
double parse_report_number(const std::string& cell,
                           const std::string& context);

/// Pulls rows one at a time out of a report CSV without retaining the
/// document, so corpora larger than memory stream in O(row) space. The
/// header is parsed eagerly at construction; each next_row() call
/// yields one record and validates its arity against the header.
class CsvReader {
 public:
  /// Reads from `path`; "-" means stdin (so a fresh p2p_sweep run can
  /// be piped straight in). Aborts if the file cannot be opened or the
  /// header line is malformed.
  explicit CsvReader(const std::string& path);

  /// Reads from an in-memory document (tests, captured output).
  static CsvReader from_text(std::string text);

  CsvReader(CsvReader&& other) noexcept;
  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;
  ~CsvReader();

  const std::vector<std::string>& columns() const { return columns_; }
  /// Data rows returned so far (the header does not count).
  std::size_t rows_read() const { return rows_; }

  /// Fills `cells` with the next data row; false at clean end of file.
  /// Aborts — echoing the 1-based line number and the line itself — on
  /// wrong arity, malformed quoting, or a truncated final record (a
  /// file that does not end in '\n' was cut mid-row).
  bool next_row(std::vector<std::string>* cells);

 private:
  CsvReader() = default;
  void refill();

  std::string source_;  // for error messages
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  bool exhausted_ = false;  // no more bytes behind buffer_
  std::string buffer_;      // read bytes; [pos_, end) not yet parsed
  std::size_t pos_ = 0;     // consumed prefix (compacted at refill)
  std::size_t line_ = 1;    // 1-based line number of the next record
  std::vector<std::string> columns_;
  std::size_t rows_ = 0;
};

/// Reads a whole CSV document into a Table. read_csv(t.to_csv()) == t,
/// cell for cell.
Table read_csv(std::string text);
Table read_csv_file(const std::string& path);

/// Reads a report-format JSON document (the array of flat objects that
/// ReportWriter / Table::to_json emit) into a Table. Columns come from
/// the first object's keys; every later object must repeat them in the
/// same order. Numbers keep their literal spelling (so a read report
/// re-emits byte-identically) and null cells read back as "nan" — the
/// emitter maps every non-finite cell to null, so inf/-inf/nan
/// distinctions are not recoverable from JSON; archive CSV when
/// bit-exactness matters. An empty array aborts: it carries no header
/// to recover a schema from.
Table read_json(const std::string& text);
Table read_json_file(const std::string& path);

/// The one JSON-vs-CSV sniff: a report whose first non-whitespace byte
/// is '[' is JSON, anything else CSV (whatever the file is named — the
/// dialect is in the bytes). For "-" (stdin) the probed whitespace is
/// consumed and the deciding byte pushed back, so a subsequent reader
/// sees the document from its first non-whitespace byte. Unreadable or
/// empty inputs return false and leave the error to the real reader.
/// Dispatch on this to pick read_json_file or a streaming CsvReader.
bool report_is_json(const std::string& path);

/// Validates that `text` is exactly one well-formed JSON value (full
/// grammar: objects, arrays, strings with escapes, numbers,
/// true/false/null). Aborts echoing `context` and the byte offset on
/// malformed input. The golden-corpus suite runs this over non-tabular
/// archives (bench JSON, phase-diagram summary JSON).
void validate_json(const std::string& text, const std::string& context);

// --- Report schema validation ---

enum class ReportKind { kGrid, kFrontier };

/// A validated report header: which of the two tables it is, and the
/// arrival types of the per-type block when one is present.
struct ReportSchema {
  ReportKind kind = ReportKind::kGrid;
  /// True when the per-type arrival-rate block (lambda_empty +
  /// lambda_t...) is present, i.e. the report was produced under a
  /// named scenario.
  bool has_scenario = false;
  /// Piece sets parsed back from the lambda_t column names, in column
  /// order; empty when has_scenario is false.
  std::vector<PieceSet> mix_types;
  /// Column index of the first tail column ("verdict" for the grid,
  /// "replicas" for the frontier).
  std::size_t tail_start = 0;
  std::size_t num_columns = 0;
  /// True when the trailing "sim_backend" column is present. Reports
  /// written since the type-count backend landed carry it whenever a
  /// simulator ran; earlier corpora (and theory-only grids) do not, and
  /// both generations must keep validating.
  bool has_backend = false;
  /// True when the trailing "policy" column (after sim_backend) is
  /// present: the report simulated a non-RandomUseful selection policy.
  bool has_policy = false;
  /// True when the trailing "fluid_verdict" column (last) is present:
  /// the sweep ran the fluid-limit classifier next to theory and sim.
  bool has_fluid = false;
  /// True when the multi-resolution box block (box_depth, box_uniform,
  /// box_ext_<axis>...) closes the header: the report came from an
  /// adaptive refinement and each row is a leaf box, not a lattice cell.
  bool has_boxes = false;
  /// Column index of box_depth; meaningful only when has_boxes.
  std::size_t box_start = 0;
  /// Axis names parsed from the box_ext_* columns, in column order
  /// (>= 2, distinct model axes); empty when has_boxes is false.
  std::vector<std::string> box_axes;
};

/// Inverse of mix_column_name: "lambda_t1.2" -> {0, 1}. Aborts on
/// malformed names — the indices must be strictly increasing one-based
/// integers in [1, 64].
PieceSet parse_mix_column_type(const std::string& column);

/// Validates `columns` against the header shape the writers build from
/// the same constants (sweep_schema_head/tail, frontier_schema_head/
/// tail): fixed head, optional per-type block (lambda_empty followed by
/// at least one lambda_t column, all types distinct), fixed tail —
/// in exactly that order. Aborts naming the first mismatching column,
/// so a reordered or renamed header fails loudly instead of silently
/// misassigning every column after it.
ReportSchema validate_report_schema(const std::vector<std::string>& columns);

}  // namespace p2p::engine
