#include "ctmc/muinf_chain.hpp"

namespace p2p {

MuInfChain::MuInfChain(int num_pieces, double lambda_per_piece,
                       std::uint64_t seed)
    : num_pieces_(num_pieces), lambda_(lambda_per_piece), rng_(seed) {
  P2P_ASSERT(num_pieces >= 2);
  P2P_ASSERT(lambda_per_piece > 0);
}

void MuInfChain::set_state(MuInfState s) {
  P2P_ASSERT(s.peers >= 0);
  P2P_ASSERT((s.peers == 0 && s.pieces == 0) ||
             (s.peers >= 1 && s.pieces >= 1 && s.pieces <= num_pieces_ - 1));
  state_ = s;
}

std::int64_t MuInfChain::sample_heads_before_tails(Rng& rng,
                                                   int tails_needed) {
  std::int64_t heads = 0;
  int tails = 0;
  while (tails < tails_needed) {
    if (rng.bernoulli(0.5)) {
      ++heads;
    } else {
      ++tails;
    }
  }
  return heads;
}

void MuInfChain::step() {
  const double total_rate = lambda_ * num_pieces_;
  now_ += rng_.exponential(total_rate);

  if (state_.peers == 0) {
    state_ = {1, 1};
    return;
  }
  const int k = state_.pieces;
  // Which piece does the arriving peer carry? Uniform over K pieces.
  const auto piece_index =
      static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(
          num_pieces_)));
  const bool carried_by_club = piece_index < k;

  if (carried_by_club) {
    state_.peers += 1;  // instantly absorbs the club's pieces
    return;
  }
  if (k < num_pieces_ - 1) {
    // New piece spreads to everyone instantly; nobody completes.
    state_ = {state_.peers + 1, k + 1};
    return;
  }
  // Top layer: race between uploads of the missing piece (heads) and the
  // newcomer's K-1 downloads (tails).
  std::int64_t heads = 0;
  int tails = 0;
  while (true) {
    if (tails == num_pieces_ - 1) {
      // Newcomer completed and departs; `heads` club members departed too.
      state_ = {state_.peers - heads, num_pieces_ - 1};
      P2P_ASSERT(state_.peers >= 1);
      return;
    }
    if (heads == state_.peers) {
      // Club emptied before the newcomer finished.
      state_ = {1, 1 + tails};
      return;
    }
    if (rng_.bernoulli(0.5)) {
      ++heads;
    } else {
      ++tails;
    }
  }
}

void MuInfChain::run_until(double t_end) {
  while (now_ < t_end) step();
}

void MuInfChain::run_sampled(
    double t_end, double dt,
    const std::function<void(double, const MuInfState&)>& fn) {
  double next_sample = now_ + dt;
  while (now_ < t_end) {
    const MuInfState before = state_;
    step();
    while (next_sample <= now_ && next_sample <= t_end) {
      fn(next_sample, before);
      next_sample += dt;
    }
  }
  while (next_sample <= t_end) {
    fn(next_sample, state_);
    next_sample += dt;
  }
}

}  // namespace p2p
