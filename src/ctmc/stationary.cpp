#include "ctmc/stationary.hpp"

#include <cmath>
#include <deque>

namespace p2p {

std::vector<double> stationary_distribution(const FiniteCtmc& chain,
                                            double tol, int max_sweeps) {
  const auto n = static_cast<std::size_t>(chain.num_states);
  P2P_ASSERT(n >= 1);

  // Build per-target incoming adjacency and outflow totals.
  std::vector<double> outflow(n, 0.0);
  for (const auto& e : chain.edges) {
    P2P_ASSERT(e.rate > 0);
    P2P_ASSERT(e.from != e.to);
    outflow[static_cast<std::size_t>(e.from)] += e.rate;
  }
  // Uniformization constant.
  double big_lambda = 0;
  for (double r : outflow) big_lambda = std::max(big_lambda, r);
  big_lambda *= 1.001;
  P2P_ASSERT(big_lambda > 0);

  // Incoming edges grouped by target (CSR-ish).
  std::vector<std::int32_t> in_count(n, 0);
  for (const auto& e : chain.edges) ++in_count[static_cast<std::size_t>(e.to)];
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offset[i + 1] = offset[i] +
      static_cast<std::size_t>(in_count[i]);
  std::vector<std::int32_t> in_from(chain.edges.size());
  std::vector<double> in_prob(chain.edges.size());
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (const auto& e : chain.edges) {
      const auto t = static_cast<std::size_t>(e.to);
      in_from[cursor[t]] = e.from;
      in_prob[cursor[t]] = e.rate / big_lambda;
      ++cursor[t];
    }
  }
  // Self-loop probability of the uniformized kernel.
  std::vector<double> stay(n);
  for (std::size_t i = 0; i < n; ++i) stay[i] = 1.0 - outflow[i] / big_lambda;

  // Gauss–Seidel: pi_j <- (sum_{i->j} pi_i P_ij) / (1 - P_jj).
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double change = 0;
    for (std::size_t j = 0; j < n; ++j) {
      double inflow = 0;
      for (std::size_t idx = offset[j]; idx < offset[j + 1]; ++idx) {
        inflow += pi[static_cast<std::size_t>(in_from[idx])] * in_prob[idx];
      }
      const double denom = 1.0 - stay[j];
      const double next = denom > 0 ? inflow / denom : pi[j];
      change += std::abs(next - pi[j]);
      pi[j] = next;
    }
    // Normalize each sweep (GS drifts in scale).
    double total = 0;
    for (double p : pi) total += p;
    P2P_ASSERT(total > 0);
    for (double& p : pi) p /= total;
    if (change < tol) break;
  }
  return pi;
}

double TruncatedSwarmChain::mean_peers() const {
  double mean = 0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    mean += pi[i] * static_cast<double>(states[i].total_peers());
  }
  return mean;
}

double TruncatedSwarmChain::mean_count(PieceSet type) const {
  double mean = 0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    mean += pi[i] * static_cast<double>(states[i].count(type));
  }
  return mean;
}

double TruncatedSwarmChain::peer_count_pmf(std::int64_t n) const {
  double p = 0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].total_peers() == n) p += pi[i];
  }
  return p;
}

TruncatedSwarmChain solve_truncated_swarm(const SwarmParams& params,
                                          std::int64_t max_peers, double tol,
                                          int max_sweeps) {
  TruncatedSwarmChain out;
  std::map<std::vector<std::int64_t>, std::int32_t> index;
  std::deque<std::int32_t> frontier;

  auto intern = [&](const TypeCountState& s) -> std::int32_t {
    auto [it, inserted] = index.try_emplace(
        s.raw(), static_cast<std::int32_t>(out.states.size()));
    if (inserted) {
      out.states.push_back(s);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  intern(TypeCountState(params.num_pieces()));
  while (!frontier.empty()) {
    const std::int32_t from = frontier.front();
    frontier.pop_front();
    // Copy: out.states may reallocate during intern().
    const TypeCountState state = out.states[static_cast<std::size_t>(from)];
    for_each_transition(params, state, [&](const Transition& t) {
      if (t.kind == TransitionKind::kArrival &&
          state.total_peers() >= max_peers) {
        return;  // truncation: drop arrivals at the cap
      }
      TypeCountState next = state;
      apply_transition(t, next);
      const std::int32_t to = intern(next);
      out.ctmc.edges.push_back({from, to, t.rate});
    });
  }
  out.ctmc.num_states = static_cast<std::int32_t>(out.states.size());
  out.pi = stationary_distribution(out.ctmc, tol, max_sweeps);
  return out;
}

}  // namespace p2p
