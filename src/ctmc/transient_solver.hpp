// Transient distribution of a finite CTMC via uniformization.
//
// pi(t) = sum_{j>=0} Pois(Lambda t){j} * pi(0) P^j, with P the uniformized
// kernel. Gives *exact* (to series truncation) time-t distributions and
// expectations for small truncated swarm chains — the strongest possible
// oracle for validating the simulators' transient behaviour, complementing
// the stationary solver.
#pragma once

#include <vector>

#include "ctmc/stationary.hpp"

namespace p2p {

class TransientSolver {
 public:
  /// The chain must have num_states >= 1. Edges with from == to are not
  /// allowed (as in FiniteCtmc).
  explicit TransientSolver(const FiniteCtmc& chain);

  /// Distribution at time t >= 0 starting from `initial` (a probability
  /// vector of size num_states). `tolerance` bounds the neglected Poisson
  /// tail mass.
  std::vector<double> distribution_at(const std::vector<double>& initial,
                                      double t,
                                      double tolerance = 1e-12) const;

  /// E[f(X_t)] for per-state values f.
  double expectation_at(const std::vector<double>& initial,
                        const std::vector<double>& values, double t,
                        double tolerance = 1e-12) const;

  std::int32_t num_states() const { return num_states_; }
  double uniformization_rate() const { return big_lambda_; }

 private:
  /// One application of the uniformized kernel: out = in * P.
  std::vector<double> apply_kernel(const std::vector<double>& in) const;

  std::int32_t num_states_;
  double big_lambda_ = 0;
  // CSR by source: P's off-diagonal entries.
  std::vector<std::size_t> offset_;
  std::vector<std::int32_t> to_;
  std::vector<double> prob_;
  std::vector<double> stay_;
};

}  // namespace p2p
