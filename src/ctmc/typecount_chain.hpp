// Exact stochastic simulation of the aggregate type-count chain.
//
// Two samplers with provably the same law:
//
//  * TypeCountChain — event-level Gillespie matching the model's verbal
//    description: arrival / seed tick / peer tick / seed departure events,
//    with uniform peer contact and uniform useful piece choice, including
//    *silent* ticks (contacting a peer you cannot help wastes the tick,
//    exactly as in Section III). O(occupied types) per event.
//
//  * ExactGeneratorSampler — textbook Gillespie over the enumerated
//    generator Q (core/generator.hpp). O(2^K * K) per event; used in tests
//    to cross-validate TypeCountChain distributionally.
//
// Peer-level dynamics (piece-selection policies, Fig. 2 group tracking,
// network coding) live in src/sim and src/coding; this chain is the
// fastest way to study the aggregate process for moderate K.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/generator.hpp"
#include "core/model.hpp"
#include "core/state.hpp"
#include "rand/rng.hpp"

namespace p2p {

class TypeCountChain {
 public:
  TypeCountChain(SwarmParams params, std::uint64_t seed);

  /// Replaces the current population (time is not reset).
  void set_state(const TypeCountState& state);
  const TypeCountState& state() const { return state_; }
  double now() const { return now_; }
  std::int64_t total_peers() const { return state_.total_peers(); }

  /// Advances by one event (which may be silent). Returns false only if
  /// the total event rate is zero (cannot happen: lambda_total > 0).
  bool step();

  /// Runs until simulated time reaches `t_end`.
  void run_until(double t_end);

  /// Runs until `t_end`, invoking `sample(t, state)` every `dt` of
  /// simulated time (including at t_end).
  void run_sampled(double t_end, double dt,
                   const std::function<void(double, const TypeCountState&)>&
                       sample);

  const SwarmParams& params() const { return params_; }

  /// Cumulative counts, for rate sanity checks in tests.
  std::int64_t arrivals_seen() const { return arrivals_seen_; }
  std::int64_t downloads_seen() const { return downloads_seen_; }
  std::int64_t departures_seen() const { return departures_seen_; }
  std::int64_t silent_ticks_seen() const { return silent_ticks_seen_; }

 private:
  /// Samples a peer uniformly at random (returns its type); n >= 1.
  PieceSet random_peer_type();

  void do_arrival();
  void do_seed_tick();
  void do_peer_tick();
  void do_seed_departure();
  double total_event_rate() const;
  void dispatch_event();
  /// Target (type c) downloads a uniform piece of `useful`; handles
  /// completion/departure bookkeeping.
  void complete_download(PieceSet c, PieceSet useful);

  SwarmParams params_;
  TypeCountState state_;
  Rng rng_;
  double now_ = 0;
  std::vector<double> arrival_weights_;
  std::int64_t arrivals_seen_ = 0;
  std::int64_t downloads_seen_ = 0;
  std::int64_t departures_seen_ = 0;
  std::int64_t silent_ticks_seen_ = 0;
};

/// Reference sampler over the enumerated generator (slow, exact).
class ExactGeneratorSampler {
 public:
  ExactGeneratorSampler(SwarmParams params, std::uint64_t seed)
      : params_(std::move(params)),
        state_(params_.num_pieces()),
        rng_(seed) {}

  void set_state(const TypeCountState& state) { state_ = state; }
  const TypeCountState& state() const { return state_; }
  double now() const { return now_; }

  bool step();
  void run_until(double t_end);
  /// Samples the pre-event state every `dt` up to t_end.
  void run_sampled(double t_end, double dt,
                   const std::function<void(double, const TypeCountState&)>&
                       sample);

 private:
  SwarmParams params_;
  TypeCountState state_;
  Rng rng_;
  double now_ = 0;
};

}  // namespace p2p
