#include "ctmc/transient_solver.hpp"

#include <cmath>

namespace p2p {

TransientSolver::TransientSolver(const FiniteCtmc& chain)
    : num_states_(chain.num_states) {
  P2P_ASSERT(num_states_ >= 1);
  const auto n = static_cast<std::size_t>(num_states_);
  std::vector<double> outflow(n, 0.0);
  std::vector<std::int32_t> out_count(n, 0);
  for (const auto& e : chain.edges) {
    P2P_ASSERT(e.rate > 0);
    P2P_ASSERT(e.from != e.to);
    outflow[static_cast<std::size_t>(e.from)] += e.rate;
    ++out_count[static_cast<std::size_t>(e.from)];
  }
  big_lambda_ = 0;
  for (double r : outflow) big_lambda_ = std::max(big_lambda_, r);
  if (big_lambda_ <= 0) big_lambda_ = 1.0;  // absorbing-only chain
  big_lambda_ *= 1.0001;

  offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offset_[i + 1] = offset_[i] + static_cast<std::size_t>(out_count[i]);
  }
  to_.resize(chain.edges.size());
  prob_.resize(chain.edges.size());
  std::vector<std::size_t> cursor(offset_.begin(), offset_.end() - 1);
  for (const auto& e : chain.edges) {
    const auto f = static_cast<std::size_t>(e.from);
    to_[cursor[f]] = e.to;
    prob_[cursor[f]] = e.rate / big_lambda_;
    ++cursor[f];
  }
  stay_.resize(n);
  for (std::size_t i = 0; i < n; ++i) stay_[i] = 1.0 - outflow[i] / big_lambda_;
}

std::vector<double> TransientSolver::apply_kernel(
    const std::vector<double>& in) const {
  const auto n = static_cast<std::size_t>(num_states_);
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double mass = in[i];
    if (mass == 0) continue;
    out[i] += mass * stay_[i];
    for (std::size_t idx = offset_[i]; idx < offset_[i + 1]; ++idx) {
      out[static_cast<std::size_t>(to_[idx])] += mass * prob_[idx];
    }
  }
  return out;
}

std::vector<double> TransientSolver::distribution_at(
    const std::vector<double>& initial, double t, double tolerance) const {
  P2P_ASSERT(t >= 0);
  P2P_ASSERT(initial.size() == static_cast<std::size_t>(num_states_));
  const double a = big_lambda_ * t;
  std::vector<double> acc(initial.size(), 0.0);
  std::vector<double> current = initial;
  // Poisson weights computed iteratively; stop when the accumulated weight
  // reaches 1 - tolerance.
  double weight = std::exp(-a);
  double cumulative = 0;
  // For large a, exp(-a) underflows; scale by working in a loop that
  // starts contributing near j ~ a. Simpler: use logs.
  const bool use_logs = a > 700;
  double log_weight = -a;
  // Hard cap: beyond a + 12 sqrt(a) the Poisson tail is < 1e-30; the
  // cumulative-weight test alone can stall just below 1 - tolerance from
  // floating-point accumulation error.
  const auto j_max = static_cast<std::int64_t>(
      a + 12.0 * std::sqrt(a + 100.0) + 200.0);
  for (std::int64_t j = 0;; ++j) {
    const double w = use_logs ? std::exp(log_weight) : weight;
    if (w > 0) {
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] += w * current[i];
      }
      cumulative += w;
    }
    if (cumulative >= 1.0 - tolerance || j >= j_max) break;
    P2P_ASSERT_MSG(j < 50'000'000, "uniformization series too long");
    current = apply_kernel(current);
    if (use_logs) {
      log_weight += std::log(a / static_cast<double>(j + 1));
    } else {
      weight *= a / static_cast<double>(j + 1);
    }
  }
  // Renormalize the truncated series.
  double total = 0;
  for (double p : acc) total += p;
  if (total > 0) {
    for (double& p : acc) p /= total;
  }
  return acc;
}

double TransientSolver::expectation_at(const std::vector<double>& initial,
                                       const std::vector<double>& values,
                                       double t, double tolerance) const {
  const auto dist = distribution_at(initial, t, tolerance);
  P2P_ASSERT(values.size() == dist.size());
  double mean = 0;
  for (std::size_t i = 0; i < dist.size(); ++i) mean += dist[i] * values[i];
  return mean;
}

}  // namespace p2p
