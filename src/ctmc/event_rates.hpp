// The four aggregate event-category rates of the Zhu–Hajek generator.
//
// Every sampler of the model draws its next event from the same four
// exponential clocks (Section III):
//
//   arrival  lambda_total                  (typed Poisson arrivals)
//   seed     Us * 1{n >= 1}                (fixed seed contacts a peer)
//   peer     mu * n                        (some peer's contact clock)
//   depart   gamma * x_F                   (a peer seed departs;
//                                           0 when gamma = infinity)
//
// This helper is the single source of those derivations, shared by the
// event-level chain (ctmc/typecount_chain), the per-peer simulator
// (sim/swarm — which then applies its VIII-C retry-boost and
// heterogeneous-rate modifiers on top), and the type-count simulator
// (sim/typecount_sim — which subtracts the silent fraction from the seed
// and peer clocks; see that header).
#pragma once

#include <cstdint>

#include "core/model.hpp"

namespace p2p {

struct AggregateRates {
  double arrival = 0;
  double seed = 0;
  double peer = 0;
  double depart = 0;
  double total() const { return arrival + seed + peer + depart; }
};

/// Rates for a population of `peers` peers of which `peer_seeds` hold all
/// K pieces. Exact for the base model (RandomUseful selection, eta = 1,
/// homogeneous rates).
inline AggregateRates aggregate_event_rates(const SwarmParamsView& params,
                                            std::int64_t peers,
                                            std::int64_t peer_seeds) {
  AggregateRates rates;
  rates.arrival = params.total_arrival_rate();
  rates.seed = peers >= 1 ? params.seed_rate : 0.0;
  rates.peer = params.contact_rate * static_cast<double>(peers);
  rates.depart = params.immediate_departure()
                     ? 0.0
                     : params.seed_depart_rate *
                           static_cast<double>(peer_seeds);
  return rates;
}

}  // namespace p2p
