// Stationary distribution of a finite (truncated) CTMC.
//
// Used to validate simulators and to compute exact E[N] for small piece
// counts: the infinite Zhu–Hajek chain is truncated by capping the peer
// population (arrivals that would exceed the cap are dropped), states are
// enumerated by BFS from the empty state, and pi Q = 0 is solved by
// Gauss–Seidel sweeps on the uniformized kernel.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/generator.hpp"
#include "core/model.hpp"
#include "core/state.hpp"

namespace p2p {

/// A finite CTMC given by transition triplets (from, to, rate>0) over
/// states 0..num_states-1. The chain must be irreducible on the reachable
/// class of `initial_state` for the solver to be meaningful.
struct FiniteCtmc {
  struct Edge {
    std::int32_t from = 0;
    std::int32_t to = 0;
    double rate = 0;
  };
  std::int32_t num_states = 0;
  std::vector<Edge> edges;
};

/// Solves pi Q = 0, sum pi = 1 by Gauss–Seidel on the embedded
/// uniformized chain. Returns the stationary vector (size num_states).
/// `tol` is the L1 change per sweep at which iteration stops.
std::vector<double> stationary_distribution(const FiniteCtmc& chain,
                                            double tol = 1e-13,
                                            int max_sweeps = 20000);

/// The truncated Zhu–Hajek chain: all states reachable from empty with at
/// most `max_peers` peers; arrivals beyond the cap are dropped.
struct TruncatedSwarmChain {
  FiniteCtmc ctmc;
  /// Enumerated states, indexed consistently with the CTMC.
  std::vector<TypeCountState> states;
  /// Stationary distribution.
  std::vector<double> pi;

  /// E[N] under pi.
  double mean_peers() const;
  /// E[x_C] under pi.
  double mean_count(PieceSet type) const;
  /// P{N = n} under pi.
  double peer_count_pmf(std::int64_t n) const;
};

/// Builds and solves the truncated chain. Practical for K <= 3 and caps of
/// a few dozen peers (state count grows like C(cap + 2^K, 2^K)).
TruncatedSwarmChain solve_truncated_swarm(const SwarmParams& params,
                                          std::int64_t max_peers,
                                          double tol = 1e-13,
                                          int max_sweeps = 20000);

}  // namespace p2p
