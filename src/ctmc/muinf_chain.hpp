// The mu = infinity watched chain of Section VIII-D (Fig. 3).
//
// Setting: symmetric single-piece arrivals (lambda_C = lambda for |C| = 1,
// else 0), no fixed seed, gamma = infinity, and the mu -> infinity limit of
// the process watched on "slow" states (all peers share one type). The
// state space is {(0,0)} ∪ {(n,k) : n >= 1, 1 <= k <= K-1}: n peers all
// holding the same k pieces.
//
// Transitions:
//   (0,0)  --K lambda-->  (1,1)
//   (n,k), k < K-1:
//       --k lambda-->      (n+1, k)    (arrival holds a piece the club has)
//       --(K-k) lambda-->  (n+1, k+1)  (new piece spreads instantly to all)
//   (n,K-1):
//       --(K-1) lambda-->  (n+1, K-1)
//       --lambda-->        missing-piece arrival: the newcomer uploads the
//         missing piece (each upload completes a club member, who departs)
//         and downloads the K-1 club pieces at equal rates. Fair-coin race:
//         heads = upload, tails = download. Stops when downloads reach K-1
//         (newcomer completes and departs; state (n - heads, K-1)) or when
//         heads reach n (club emptied; state (1, 1 + tails)).
//
// The top layer performs a zero-drift random walk (E[Z] = K-1 with
// Z ~ #heads before the (K-1)-th tail), which is why the symmetric system
// sits exactly on the stability boundary and is null recurrent.
#pragma once

#include <cstdint>
#include <functional>

#include "rand/rng.hpp"
#include "util/assert.hpp"

namespace p2p {

struct MuInfState {
  std::int64_t peers = 0;  // n
  int pieces = 0;          // k: pieces every peer holds (0 iff n = 0)
  bool operator==(const MuInfState&) const = default;
};

class MuInfChain {
 public:
  /// K >= 2 (for K = 1 the slow states have no layers; not modeled here).
  MuInfChain(int num_pieces, double lambda_per_piece, std::uint64_t seed);

  const MuInfState& state() const { return state_; }
  void set_state(MuInfState s);
  double now() const { return now_; }
  int num_pieces() const { return num_pieces_; }

  /// One transition of the watched chain.
  void step();
  void run_until(double t_end);
  void run_sampled(double t_end, double dt,
                   const std::function<void(double, const MuInfState&)>& fn);

  /// Samples Z: number of heads before the (K-1)-th tail of a fair coin
  /// (negative binomial). Exposed for tests; E[Z] = K-1.
  static std::int64_t sample_heads_before_tails(Rng& rng, int tails_needed);

 private:
  int num_pieces_;
  double lambda_;
  MuInfState state_;
  Rng rng_;
  double now_ = 0;
};

}  // namespace p2p
