#include "ctmc/typecount_chain.hpp"

#include <cmath>

#include "ctmc/event_rates.hpp"

namespace p2p {

TypeCountChain::TypeCountChain(SwarmParams params, std::uint64_t seed)
    : params_(std::move(params)),
      state_(params_.num_pieces()),
      rng_(seed) {
  arrival_weights_.reserve(params_.arrivals().size());
  for (const auto& a : params_.arrivals()) {
    arrival_weights_.push_back(a.rate);
  }
}

void TypeCountChain::set_state(const TypeCountState& state) {
  P2P_ASSERT(state.num_pieces() == params_.num_pieces());
  if (params_.immediate_departure()) {
    P2P_ASSERT_MSG(state.seeds() == 0,
                   "gamma = infinity forbids peer seeds in the state");
  }
  state_ = state;
}

PieceSet TypeCountChain::random_peer_type() {
  const std::int64_t n = state_.total_peers();
  P2P_ASSERT(n >= 1);
  std::int64_t target = static_cast<std::int64_t>(
      rng_.uniform_int(static_cast<std::uint64_t>(n)));
  for (std::size_t m = 0; m < state_.num_types(); ++m) {
    const std::int64_t c = state_.count(m);
    if (target < c) return PieceSet{m};
    target -= c;
  }
  P2P_ASSERT(false);
  return PieceSet{};
}

void TypeCountChain::complete_download(PieceSet c, PieceSet useful) {
  P2P_ASSERT(!useful.empty());
  const int piece = useful.nth(static_cast<int>(
      rng_.uniform_int(static_cast<std::uint64_t>(useful.size()))));
  const PieceSet next = c.with(piece);
  ++downloads_seen_;
  if (params_.immediate_departure() &&
      next == PieceSet::full(params_.num_pieces())) {
    state_.add(c, -1);
    ++departures_seen_;
  } else {
    state_.transfer(c, next);
  }
}

void TypeCountChain::do_arrival() {
  const std::size_t idx = rng_.discrete(arrival_weights_);
  state_.add(params_.arrivals()[idx].type, +1);
  ++arrivals_seen_;
}

void TypeCountChain::do_seed_tick() {
  // Fixed seed contacts a uniform peer; uploads a uniform needed piece.
  const PieceSet c = random_peer_type();
  const PieceSet needed = c.complement(params_.num_pieces());
  if (needed.empty()) {
    ++silent_ticks_seen_;
    return;  // contacted a peer seed; tick wasted
  }
  complete_download(c, needed);
}

void TypeCountChain::do_peer_tick() {
  // A uniform peer contacts a uniform peer (possibly of the same type, in
  // which case nothing transfers — matching Eq. (1) exactly).
  const PieceSet uploader = random_peer_type();
  const PieceSet target = random_peer_type();
  const PieceSet useful = uploader.minus(target);
  if (useful.empty()) {
    ++silent_ticks_seen_;
    return;
  }
  complete_download(target, useful);
}

void TypeCountChain::do_seed_departure() {
  P2P_ASSERT(state_.seeds() >= 1);
  state_.add(PieceSet::full(params_.num_pieces()), -1);
  ++departures_seen_;
}

double TypeCountChain::total_event_rate() const {
  return aggregate_event_rates(params_.view(), state_.total_peers(),
                               state_.seeds())
      .total();
}

void TypeCountChain::dispatch_event() {
  const AggregateRates r = aggregate_event_rates(
      params_.view(), state_.total_peers(), state_.seeds());
  const double rates[4] = {r.arrival, r.seed, r.peer, r.depart};
  switch (rng_.discrete(rates)) {
    case 0:
      do_arrival();
      break;
    case 1:
      do_seed_tick();
      break;
    case 2:
      do_peer_tick();
      break;
    case 3:
      do_seed_departure();
      break;
  }
}

bool TypeCountChain::step() {
  const double total = total_event_rate();
  if (total <= 0) return false;
  now_ += rng_.exponential(total);
  dispatch_event();
  return true;
}

void TypeCountChain::run_until(double t_end) {
  while (now_ < t_end) {
    if (!step()) break;
  }
}

void TypeCountChain::run_sampled(
    double t_end, double dt,
    const std::function<void(double, const TypeCountState&)>& sample) {
  // Samples observe the pre-event state (holding time drawn first).
  double next_sample = now_ + dt;
  while (now_ < t_end) {
    const double total = total_event_rate();
    if (total <= 0) break;
    const double event_time = now_ + rng_.exponential(total);
    while (next_sample <= t_end && next_sample < event_time) {
      sample(next_sample, state_);
      next_sample += dt;
    }
    now_ = event_time;
    dispatch_event();
  }
  while (next_sample <= t_end) {
    sample(next_sample, state_);
    next_sample += dt;
  }
}

bool ExactGeneratorSampler::step() {
  // Collect all transitions with their rates, then sample one.
  std::vector<Transition> transitions;
  double total = 0;
  for_each_transition(params_, state_, [&](const Transition& t) {
    transitions.push_back(t);
    total += t.rate;
  });
  if (total <= 0) return false;
  now_ += rng_.exponential(total);
  double u = rng_.uniform() * total;
  for (const auto& t : transitions) {
    if (u < t.rate) {
      apply_transition(t, state_);
      return true;
    }
    u -= t.rate;
  }
  apply_transition(transitions.back(), state_);
  return true;
}

void ExactGeneratorSampler::run_until(double t_end) {
  while (now_ < t_end) {
    if (!step()) break;
  }
}

void ExactGeneratorSampler::run_sampled(
    double t_end, double dt,
    const std::function<void(double, const TypeCountState&)>& sample) {
  // Pre-event sampling, mirroring TypeCountChain::run_sampled.
  double next_sample = now_ + dt;
  while (now_ < t_end) {
    std::vector<Transition> transitions;
    double total = 0;
    for_each_transition(params_, state_, [&](const Transition& t) {
      transitions.push_back(t);
      total += t.rate;
    });
    if (total <= 0) break;
    const double event_time = now_ + rng_.exponential(total);
    while (next_sample <= t_end && next_sample < event_time) {
      sample(next_sample, state_);
      next_sample += dt;
    }
    now_ = event_time;
    double u = rng_.uniform() * total;
    bool applied = false;
    for (const auto& t : transitions) {
      if (u < t.rate) {
        apply_transition(t, state_);
        applied = true;
        break;
      }
      u -= t.rate;
    }
    if (!applied) apply_transition(transitions.back(), state_);
  }
  while (next_sample <= t_end) {
    sample(next_sample, state_);
    next_sample += dt;
  }
}

}  // namespace p2p
