// Minimal command-line flag parsing for the example drivers.
//
// Supports --name=value and --name value, typed getters with defaults,
// and an auto-generated usage listing. No external dependencies; strict:
// unknown flags abort with the usage text (so typos never silently run a
// different experiment).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>

namespace p2p {

class Flags {
 public:
  Flags(int argc, char** argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        fail("positional arguments are not supported: " + arg);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        set_once(arg.substr(0, eq), arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) !=
                                     0) {
        set_once(arg, argv[++i]);
      } else {
        set_once(arg, "true");  // bare boolean flag
      }
    }
  }

  double get_double(const std::string& name, double fallback,
                    const std::string& help) {
    describe(name, std::to_string(fallback), help);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    consumed_.insert(name);
    const std::string& token = it->second;
    // Shape-gate before strtod: its grammar also accepts "nan",
    // "inf"/"infinity" (any case), hex floats and leading whitespace —
    // spellings that would silently run a different experiment than the
    // flag suggests. Only plain finite decimals pass.
    const std::size_t first = token.size() > 1 && token[0] == '-' ? 1 : 0;
    const bool decimal_shape =
        token.size() > first && token[first] >= '0' && token[first] <= '9' &&
        token.find_first_of("xX") == std::string::npos;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (!decimal_shape || *end != '\0' || !std::isfinite(v)) {
      fail("flag --" + name + " expects a number (finite decimal), got '" +
           token + "'");
    }
    return v;
  }

  int get_int(const std::string& name, int fallback,
              const std::string& help) {
    const double v = get_double(name, static_cast<double>(fallback), help);
    // Range-check before the cast: float-to-int conversion of an
    // out-of-range value is undefined behavior, not a detectable wrap.
    constexpr double lo = std::numeric_limits<int>::min();
    constexpr double hi = std::numeric_limits<int>::max();
    if (!(v >= lo && v <= hi) || v != std::floor(v)) {
      fail("flag --" + name + " expects an integer, got '" +
           std::to_string(v) + "'");
    }
    return static_cast<int>(v);
  }

  std::string get_string(const std::string& name, const std::string& fallback,
                         const std::string& help) {
    describe(name, fallback, help);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    consumed_.insert(name);
    return it->second;
  }

  bool get_bool(const std::string& name, bool fallback,
                const std::string& help) {
    describe(name, fallback ? "true" : "false", help);
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    consumed_.insert(name);
    return it->second != "false" && it->second != "0";
  }

  /// Call after all getters: aborts with usage on unknown flags or --help.
  void finish() {
    if (values_.count("help")) {
      print_usage();
      std::exit(0);
    }
    for (const auto& [name, value] : values_) {
      if (!consumed_.count(name)) {
        fail("unknown flag --" + name);
      }
    }
  }

 private:
  /// A repeated flag is a hard error: letting the last occurrence win
  /// silently runs a different experiment than the command line suggests.
  void set_once(const std::string& name, std::string value) {
    if (!values_.emplace(name, std::move(value)).second) {
      fail("flag --" + name + " given more than once");
    }
  }

  struct Description {
    std::string fallback;
    std::string help;
  };

  void describe(const std::string& name, const std::string& fallback,
                const std::string& help) {
    described_[name] = {fallback, help};
  }

  void print_usage() const {
    std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program_.c_str());
    for (const auto& [name, d] : described_) {
      std::fprintf(stderr, "  --%-16s %s (default %s)\n", name.c_str(),
                   d.help.c_str(), d.fallback.c_str());
    }
  }

  [[noreturn]] void fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    print_usage();
    std::exit(2);
  }

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, Description> described_;
  std::set<std::string> consumed_;
};

}  // namespace p2p
