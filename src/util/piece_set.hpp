// PieceSet: a subset of the file's pieces {0, 1, ..., K-1}, stored as a
// 64-bit mask. This is the "type" of a peer in the Zhu–Hajek model (the
// paper numbers pieces 1..K; we use 0-based indices internally).
//
// The class is a value type; all operations are O(1) or O(K) and allocation
// free. Supports K up to 64 (the aggregate CTMC additionally restricts K so
// that 2^K state-vector entries fit in memory; see ctmc/typecount_chain.hpp).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/assert.hpp"

namespace p2p {

/// Maximum number of pieces supported by PieceSet.
inline constexpr int kMaxPieces = 64;

class PieceSet {
 public:
  /// The empty set.
  constexpr PieceSet() = default;

  /// A set from a raw bitmask (bit i <=> piece i present).
  constexpr explicit PieceSet(std::uint64_t mask) : mask_(mask) {}

  /// The full collection {0, ..., k-1}. Requires 0 <= k <= kMaxPieces.
  static constexpr PieceSet full(int k) {
    P2P_ASSERT_MSG(k >= 0 && k <= kMaxPieces,
                   "PieceSet::full requires 0 <= k <= 64");
    return PieceSet(k >= 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << k) - 1));
  }

  /// The singleton {piece}. Requires 0 <= piece < kMaxPieces.
  static constexpr PieceSet single(int piece) {
    P2P_ASSERT_MSG(piece >= 0 && piece < kMaxPieces,
                   "PieceSet::single requires 0 <= piece < 64");
    return PieceSet(std::uint64_t{1} << piece);
  }

  constexpr std::uint64_t mask() const { return mask_; }
  constexpr int size() const { return std::popcount(mask_); }
  constexpr bool empty() const { return mask_ == 0; }

  constexpr bool contains(int piece) const {
    return (mask_ >> piece) & std::uint64_t{1};
  }
  constexpr bool is_subset_of(PieceSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }
  constexpr bool is_proper_subset_of(PieceSet other) const {
    return is_subset_of(other) && mask_ != other.mask_;
  }

  constexpr PieceSet with(int piece) const {
    return PieceSet(mask_ | (std::uint64_t{1} << piece));
  }
  constexpr PieceSet without(int piece) const {
    return PieceSet(mask_ & ~(std::uint64_t{1} << piece));
  }

  /// Set difference: pieces in this set but not in `other` (C - C' in the
  /// paper's notation).
  constexpr PieceSet minus(PieceSet other) const {
    return PieceSet(mask_ & ~other.mask_);
  }
  constexpr PieceSet intersect(PieceSet other) const {
    return PieceSet(mask_ & other.mask_);
  }
  constexpr PieceSet unite(PieceSet other) const {
    return PieceSet(mask_ | other.mask_);
  }

  /// Pieces of the full K-piece collection missing from this set.
  constexpr PieceSet complement(int k) const {
    return full(k).minus(*this);
  }

  /// Index (0-based) of the n-th lowest piece in the set. Requires
  /// 0 <= n < size().
  int nth(int n) const {
    P2P_ASSERT(n >= 0 && n < size());
    std::uint64_t m = mask_;
    for (int i = 0; i < n; ++i) m &= m - 1;  // clear lowest set bits
    return std::countr_zero(m);
  }

  /// Lowest-indexed piece in the set. Requires non-empty.
  int lowest() const {
    P2P_ASSERT(!empty());
    return std::countr_zero(mask_);
  }

  constexpr bool operator==(const PieceSet&) const = default;

  /// Iterates the pieces in the set in increasing order.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t m) : m_(m) {}
    constexpr int operator*() const { return std::countr_zero(m_); }
    constexpr iterator& operator++() {
      m_ &= m_ - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const { return m_ != o.m_; }

   private:
    std::uint64_t m_;
  };
  constexpr iterator begin() const { return iterator(mask_); }
  constexpr iterator end() const { return iterator(0); }

  /// Renders e.g. "{0,2,5}" (1-based "{1,3,6}" if one_based).
  std::string to_string(bool one_based = false) const {
    std::string out = "{";
    bool first = true;
    for (int p : *this) {
      if (!first) out += ",";
      out += std::to_string(p + (one_based ? 1 : 0));
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  std::uint64_t mask_ = 0;
};

/// Enumerates all subsets of `superset` (including empty and superset
/// itself) via the standard subset-walk trick. Calls fn(PieceSet) for each.
template <typename Fn>
void for_each_subset(PieceSet superset, Fn&& fn) {
  const std::uint64_t sup = superset.mask();
  std::uint64_t sub = sup;
  while (true) {
    fn(PieceSet(sub));
    if (sub == 0) break;
    sub = (sub - 1) & sup;
  }
}

}  // namespace p2p
