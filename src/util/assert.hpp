// Lightweight always-on assertion macro for invariant checking.
//
// Simulation correctness depends on structural invariants (piece sets only
// grow, group populations partition the swarm, ...). These checks are cheap
// relative to event processing, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/cxx20_check.hpp"

namespace p2p::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "P2P_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

/// std::string overload so messages can embed runtime context (e.g. the
/// offending CLI spec, verbatim).
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  assert_fail(expr, file, line, msg.c_str());
}

}  // namespace p2p::detail

#define P2P_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::p2p::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                 \
  } while (false)

#define P2P_ASSERT_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::p2p::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                              \
  } while (false)
