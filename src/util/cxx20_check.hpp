// Hard compile-time check that the toolchain is actually in C++20 mode.
//
// The codebase uses std::span, std::popcount, and defaulted operator==.
// When the seed was compiled without -std=c++20 (or with a pre-C++20
// default standard) those failed with pages of unrelated template errors —
// or worse, configured targets silently skipped registration. This header
// is included from util/assert.hpp, which every translation unit reaches,
// so a -std mismatch now fails immediately with one readable message.
#pragma once

#if !defined(__cplusplus) || __cplusplus < 202002L
#error "p2p requires C++20: compile with -std=c++20 (CMake sets cxx_std_20)"
#endif

#include <version>

static_assert(__cpp_impl_three_way_comparison >= 201907L,
              "p2p requires C++20 defaulted comparisons (<=>/==)");
static_assert(__cpp_lib_span >= 202002L,
              "p2p requires std::span from <span> (C++20 standard library)");
static_assert(__cpp_lib_bitops >= 201907L,
              "p2p requires std::popcount from <bit> (C++20 standard library)");
