// Quasi-stability analytics (Section IX outlook).
//
// A provably-transient swarm can behave well for a long time before the
// one-club forms; a provably-stable one still has excursions. This module
// quantifies both:
//   * one-club onset detection (when some piece's availability collapses
//     in a large swarm), used to compare piece-selection policies;
//   * excursion statistics of a population time series over a threshold
//     (count, durations, peak), the empirical face of positive recurrence.
#pragma once

#include <cstdint>
#include <string>

#include "core/model.hpp"
#include "sim/stats.hpp"

namespace p2p {

struct OnsetOptions {
  double horizon = 4000;
  double check_dt = 5;
  /// Onset declared when total peers exceed this ...
  std::int64_t min_peers = 200;
  /// ... and some piece is held by less than this fraction of them.
  double rarity_fraction = 0.1;
  std::uint64_t rng_seed = 1;
};

struct OnsetResult {
  /// Time of onset; equals the horizon when no onset occurred.
  double onset_time = 0;
  bool onset = false;
  /// The piece whose availability collapsed (-1 if none).
  int rare_piece = -1;
  /// Population at onset (or at the horizon).
  std::int64_t peers_at_onset = 0;
};

/// Runs a fresh swarm (started empty) under the named policy and reports
/// the first one-club onset.
OnsetResult detect_onset(const SwarmParams& params,
                         const std::string& policy_name,
                         const OnsetOptions& options);

struct ExcursionStats {
  /// Number of completed excursions above the threshold.
  std::int64_t count = 0;
  double mean_duration = 0;
  double max_duration = 0;
  double max_value = 0;
  /// Fraction of observed time spent above the threshold.
  double fraction_above = 0;
};

/// Excursions of `series` strictly above `threshold`. An excursion open
/// at the end of the series is counted (its duration truncated).
ExcursionStats excursions_above(const TimeSeries& series, double threshold);

}  // namespace p2p
