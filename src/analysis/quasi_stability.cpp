#include "analysis/quasi_stability.hpp"

#include "sim/swarm.hpp"

namespace p2p {

OnsetResult detect_onset(const SwarmParams& params,
                         const std::string& policy_name,
                         const OnsetOptions& options) {
  SwarmSimOptions sim_options;
  sim_options.rng_seed = options.rng_seed;
  SwarmSim sim(params, make_policy(policy_name), sim_options);
  OnsetResult result;
  result.onset_time = options.horizon;
  sim.run_sampled(options.horizon, options.check_dt, [&](double t) {
    if (result.onset) return;
    const std::int64_t n = sim.total_peers();
    if (n < options.min_peers) return;
    for (int piece = 0; piece < params.num_pieces(); ++piece) {
      if (static_cast<double>(sim.holders_of(piece)) <
          options.rarity_fraction * static_cast<double>(n)) {
        result.onset = true;
        result.onset_time = t;
        result.rare_piece = piece;
        result.peers_at_onset = n;
        return;
      }
    }
  });
  if (!result.onset) result.peers_at_onset = sim.total_peers();
  return result;
}

ExcursionStats excursions_above(const TimeSeries& series, double threshold) {
  ExcursionStats stats;
  if (series.size() == 0) return stats;
  bool above = false;
  double start = 0;
  double time_above = 0;
  auto close_excursion = [&](double end) {
    const double duration = end - start;
    ++stats.count;
    stats.mean_duration += duration;
    stats.max_duration = std::max(stats.max_duration, duration);
  };
  for (std::size_t i = 0; i < series.size(); ++i) {
    stats.max_value = std::max(stats.max_value, series.v[i]);
    const bool now_above = series.v[i] > threshold;
    if (now_above && !above) {
      above = true;
      start = series.t[i];
    } else if (!now_above && above) {
      above = false;
      close_excursion(series.t[i]);
    }
    if (now_above && i + 1 < series.size()) {
      time_above += series.t[i + 1] - series.t[i];
    }
  }
  if (above) close_excursion(series.t.back());
  if (stats.count > 0) {
    stats.mean_duration /= static_cast<double>(stats.count);
  }
  const double span = series.t.back() - series.t.front();
  stats.fraction_above = span > 0 ? time_above / span : 0.0;
  return stats;
}

}  // namespace p2p
