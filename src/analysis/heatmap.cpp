#include "analysis/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "engine/report.hpp"
#include "util/assert.hpp"

namespace p2p::analysis {

namespace {

struct Rgb {
  int r = 0, g = 0, b = 0;
};

// Diverging pair from the reference data-viz palette: neutral light
// midpoint, sequential-blue pole for the positive-recurrent arm, a
// darkened red pole for the transient arm, near-black ink for the
// frontier overlay on the light surface.
constexpr Rgb kMidpoint = {0xf0, 0xef, 0xec};   // margin ~ 0 / borderline
constexpr Rgb kStablePole = {0x0d, 0x36, 0x6b};  // blue, deep stability
constexpr Rgb kTransientPole = {0x7f, 0x1f, 0x1e};  // red, deep transience
constexpr Rgb kInk = {0x0b, 0x0b, 0x0b};
constexpr const char* kSurface = "#fcfcfb";
constexpr const char* kTextPrimary = "#0b0b0b";
constexpr const char* kTextSecondary = "#52514e";

Rgb lerp(Rgb a, Rgb b, double t) {
  const auto mix = [t](int x, int y) {
    return static_cast<int>(std::lround(x + (y - x) * t));
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

/// Largest finite |margin| over the grid; 1 when none (flat ramp).
double default_margin_scale(const PhaseGrid& grid) {
  double scale = 0;
  for (const PhaseCell& c : grid.cells) {
    if (std::isfinite(c.margin)) scale = std::max(scale, std::abs(c.margin));
  }
  return scale > 0 ? scale : 1;
}

Rgb cell_color(const PhaseCell& cell, double scale) {
  // sqrt ramp: most of the dynamic range goes to the near-frontier
  // cells, where the diagram's structure lives. sqrt is correctly
  // rounded per IEEE-754, so the bytes stay platform-stable.
  const double m = std::isfinite(cell.margin) ? std::abs(cell.margin) : 0;
  const double t = std::sqrt(std::min(1.0, m / scale));
  switch (cell.verdict) {
    case Stability::kPositiveRecurrent:
      return lerp(kMidpoint, kStablePole, t);
    case Stability::kTransient:
      return lerp(kMidpoint, kTransientPole, t);
    case Stability::kBorderline:
      return kMidpoint;
  }
  P2P_ASSERT(false);
  return kMidpoint;
}

/// The best frontier estimate a row offers: closed-form re-bisection,
/// else margin interpolation, else the bracket midpoint; NaN when the
/// row is unbracketed.
double frontier_x(const PhaseFrontierPoint& pt) {
  if (!pt.bracketed) return std::nan("");
  if (std::isfinite(pt.value)) return pt.value;
  if (std::isfinite(pt.interpolated)) return pt.interpolated;
  return 0.5 * (pt.x_lo + pt.x_hi);
}

/// Maps an x value to a fractional cell-center coordinate in [0, nx):
/// piecewise linear between adjacent coarse cells, so non-uniform axes
/// land where their bracket sits. NaN when x falls outside every
/// segment.
double x_to_cell_coord(const std::vector<double>& xs, double x) {
  if (!std::isfinite(x)) return std::nan("");
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(xs[i + 1])) continue;
    if ((x - xs[i]) * (x - xs[i + 1]) <= 0 && xs[i] != xs[i + 1]) {
      return static_cast<double>(i) + 0.5 +
             (x - xs[i]) / (xs[i + 1] - xs[i]);
    }
  }
  return std::nan("");
}

void validate(const PhaseGrid& grid, const RenderOptions& options) {
  P2P_ASSERT_MSG(options.cell_px >= 1 && options.cell_px <= 256,
                 "cell_px must lie in [1, 256]");
  P2P_ASSERT_MSG(!grid.cells.empty(), "cannot render an empty phase grid");
  P2P_ASSERT_MSG(grid.cells.size() == grid.num_x() * grid.num_y(),
                 "phase grid cells do not tile num_x * num_y");
}

/// Appends format_number's bytes for `v` in place — the SVG emitter
/// builds its coordinate attributes through the same allocation-free
/// formatter as the report pipeline, so diagram bytes can never drift
/// from the corpus bytes they are rendered from.
void fmt_into(std::string& out, double v) {
  engine::format_number_into(out, v);
}

std::string fmt(double v) {
  std::string s;
  fmt_into(s, v);
  return s;
}

}  // namespace

namespace {

/// The PPM generator behind render_ppm and write_ppm: emits the header
/// and then one scanline at a time to `sink`, so the file writer's
/// peak memory is a single pixel row, never the image.
void render_ppm_rows(const PhaseGrid& grid,
                     const std::vector<PhaseFrontierPoint>& frontier,
                     const RenderOptions& options,
                     const std::function<void(const std::string&)>& sink) {
  validate(grid, options);
  const std::size_t px = static_cast<std::size_t>(options.cell_px);
  const std::size_t nx = grid.num_x();
  const std::size_t ny = grid.num_y();
  const std::size_t width = nx * px;
  const std::size_t height = ny * px;
  const double scale = std::isnan(options.margin_scale)
                           ? default_margin_scale(grid)
                           : options.margin_scale;
  P2P_ASSERT_MSG(scale > 0 && std::isfinite(scale),
                 "margin_scale must be positive and finite");

  // Frontier marker column (in pixels) per y row, if any.
  std::vector<double> marker(ny, std::nan(""));
  if (options.overlay_frontier) {
    for (const PhaseFrontierPoint& pt : frontier) {
      if (pt.row < ny) {
        const double coord = x_to_cell_coord(grid.x_values, frontier_x(pt));
        if (std::isfinite(coord)) {
          marker[pt.row] = coord * static_cast<double>(px);
        }
      }
    }
  }

  sink("P6\n" + std::to_string(width) + " " + std::to_string(height) +
       "\n255\n");
  std::vector<Rgb> row_colors(nx);
  std::string line;
  for (std::size_t row = 0; row < height; ++row) {
    // Image row 0 is the TOP: the last y value (y grows upward).
    const std::size_t yi = ny - 1 - row / px;
    // One cell_color per cell, not per pixel: the px^2 pixels of a cell
    // reuse the row's colors.
    if (row % px == 0) {
      for (std::size_t xi = 0; xi < nx; ++xi) {
        row_colors[xi] = cell_color(grid.at(yi, xi), scale);
      }
    }
    // The 2px-wide ink marker for this row's frontier estimate.
    long mark_lo = -1, mark_hi = -2;
    if (std::isfinite(marker[yi])) {
      const long center = std::lround(marker[yi]);
      mark_lo = std::max(0L, center - 1);
      mark_hi = std::min(static_cast<long>(width) - 1, center);
    }
    line.clear();
    for (std::size_t col = 0; col < width; ++col) {
      const bool marked = static_cast<long>(col) >= mark_lo &&
                          static_cast<long>(col) <= mark_hi;
      const Rgb c = marked ? kInk : row_colors[col / px];
      line += static_cast<char>(c.r);
      line += static_cast<char>(c.g);
      line += static_cast<char>(c.b);
    }
    sink(line);
  }
}

}  // namespace

std::string render_ppm(const PhaseGrid& grid,
                       const std::vector<PhaseFrontierPoint>& frontier,
                       const RenderOptions& options) {
  std::string out;
  render_ppm_rows(grid, frontier, options,
                  [&](const std::string& bytes) { out += bytes; });
  return out;
}

void write_ppm(const PhaseGrid& grid,
               const std::vector<PhaseFrontierPoint>& frontier,
               const RenderOptions& options, const std::string& path) {
  const bool to_stdout = path.empty() || path == "-";
  std::FILE* file = stdout;
  if (!to_stdout) {
    file = std::fopen(path.c_str(), "wb");
    P2P_ASSERT_MSG(file != nullptr,
                   "cannot open PPM output file \"" + path + "\"");
  }
  render_ppm_rows(grid, frontier, options, [&](const std::string& bytes) {
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), file);
    P2P_ASSERT_MSG(written == bytes.size(),
                   "short write to PPM output file");
  });
  if (to_stdout) {
    P2P_ASSERT_MSG(std::fflush(file) == 0, "short write to stdout");
  } else {
    // fclose flushes, so a full disk can surface there; a truncated
    // diagram must not exit 0.
    P2P_ASSERT_MSG(std::fclose(file) == 0,
                   "short write to PPM output file");
  }
}

std::string render_svg(const PhaseGrid& grid,
                       const std::vector<PhaseFrontierPoint>& frontier,
                       const RenderOptions& options) {
  validate(grid, options);
  const int px = options.cell_px;
  const std::size_t nx = grid.num_x();
  const std::size_t ny = grid.num_y();
  const double scale = std::isnan(options.margin_scale)
                           ? default_margin_scale(grid)
                           : options.margin_scale;
  P2P_ASSERT_MSG(scale > 0 && std::isfinite(scale),
                 "margin_scale must be positive and finite");

  // Layout: title and legend rows on top, y labels left, x labels
  // below the plot. The minimum width keeps the header legible when
  // the plot itself is only a few cells wide.
  const int left = 64, top = 52, bottom = 40, right = 16;
  const int plot_w = static_cast<int>(nx) * px;
  const int plot_h = static_cast<int>(ny) * px;
  const int width = std::max(left + plot_w + right, left + 240);
  const int height = top + plot_h + bottom;

  const std::string title =
      options.title.empty()
          ? grid.y_axis + " vs " + grid.x_axis + " phase diagram"
          : options.title;

  const auto rgb = [](Rgb c) {
    return "rgb(" + std::to_string(c.r) + "," + std::to_string(c.g) + "," +
           std::to_string(c.b) + ")";
  };
  // Text content is XML-escaped: the title is caller input, and a bare
  // '&' or '<' would make the whole document unparseable.
  const auto xml_escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '&') {
        out += "&amp;";
      } else if (c == '<') {
        out += "&lt;";
      } else if (c == '>') {
        out += "&gt;";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::string out;
  const auto text = [&](double x, double y, const char* anchor,
                        const char* fill, int size, const std::string& s) {
    out += "  <text x=\"";
    fmt_into(out, x);
    out += "\" y=\"";
    fmt_into(out, y);
    out += "\" text-anchor=\"";
    out += anchor;
    out += "\" fill=\"";
    out += fill;
    out += "\" font-family=\"system-ui, sans-serif\" font-size=\"" +
           std::to_string(size) + "\">" + xml_escape(s) + "</text>\n";
  };
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(width) + "\" height=\"" + std::to_string(height) +
         "\" viewBox=\"0 0 " + std::to_string(width) + " " +
         std::to_string(height) + "\">\n";
  out += "  <rect width=\"" + std::to_string(width) + "\" height=\"" +
         std::to_string(height) + "\" fill=\"" + kSurface + "\"/>\n";
  text(left, 18, "start", kTextPrimary, 13, title);

  // Verdict legend on its own row under the title: two labeled
  // swatches plus the overlay key (identity is never color alone — the
  // labels carry it; the swatches sit at mid-ramp).
  const int legend_y = 30;
  out += "  <rect x=\"" + std::to_string(left) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kStablePole, 0.6)) + "\"/>\n";
  text(left + 14, legend_y + 9, "start", kTextSecondary, 11,
              "stable");
  out += "  <rect x=\"" + std::to_string(left + 70) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kTransientPole, 0.6)) + "\"/>\n";
  text(left + 84, legend_y + 9, "start", kTextSecondary, 11,
              "transient");
  if (options.overlay_frontier) {
    out += "  <line x1=\"" + std::to_string(left + 160) + "\" y1=\"" +
           std::to_string(legend_y + 5) + "\" x2=\"" +
           std::to_string(left + 180) + "\" y2=\"" +
           std::to_string(legend_y + 5) + "\" stroke=\"" + rgb(kInk) +
           "\" stroke-width=\"2\"/>\n";
    text(left + 186, legend_y + 9, "start", kTextSecondary, 11,
                "frontier");
  }

  // Cells, row-major from the top image row (last y value).
  for (std::size_t yi = 0; yi < ny; ++yi) {
    const int y = top + static_cast<int>(ny - 1 - yi) * px;
    for (std::size_t xi = 0; xi < nx; ++xi) {
      out += "  <rect x=\"" +
             std::to_string(left + static_cast<int>(xi) * px) + "\" y=\"" +
             std::to_string(y) + "\" width=\"" + std::to_string(px) +
             "\" height=\"" + std::to_string(px) + "\" fill=\"" +
             rgb(cell_color(grid.at(yi, xi), scale)) + "\"/>\n";
    }
  }

  // Frontier polyline with a surface halo so it separates from both
  // arms of the diverging ramp.
  if (options.overlay_frontier) {
    std::string pts;
    for (const PhaseFrontierPoint& pt : frontier) {
      if (pt.row >= ny) continue;
      const double coord = x_to_cell_coord(grid.x_values, frontier_x(pt));
      if (!std::isfinite(coord)) continue;
      const double x = left + coord * px;
      const double y =
          top + (static_cast<double>(ny - 1 - pt.row) + 0.5) * px;
      if (!pts.empty()) pts += ' ';
      pts += fmt(x) + "," + fmt(y);
    }
    if (!pts.empty()) {
      out += "  <polyline points=\"" + pts + "\" fill=\"none\" stroke=\"" +
             kSurface + "\" stroke-width=\"4\"/>\n";
      out += "  <polyline points=\"" + pts + "\" fill=\"none\" stroke=\"" +
             rgb(kInk) + "\" stroke-width=\"2\"/>\n";
    }
  }

  // Selective axis labels: the axis names plus first/last tick values.
  const int axis_y = top + plot_h;
  text(left, axis_y + 16, "start", kTextSecondary, 11,
              fmt(grid.x_values.front()));
  text(left + plot_w, axis_y + 16, "end", kTextSecondary, 11,
              fmt(grid.x_values.back()));
  text(left + plot_w / 2.0, axis_y + 32, "middle", kTextPrimary, 12,
              grid.x_axis);
  text(left - 6, axis_y - plot_h + 12, "end", kTextSecondary, 11,
              fmt(grid.y_values.back()));
  text(left - 6, axis_y - 2, "end", kTextSecondary, 11,
              fmt(grid.y_values.front()));
  text(left - 6, axis_y - plot_h / 2.0, "end", kTextPrimary, 12,
              grid.y_axis);
  out += "</svg>\n";
  return out;
}

namespace {

/// Two ingested grids are diffable only over identical axes and axis
/// values — both come verbatim from corpora, so exact equality is the
/// right notion of "the same grid point".
void validate_diff_pair(const PhaseGrid& baseline, const PhaseGrid& variant,
                        const RenderOptions& options) {
  validate(baseline, options);
  validate(variant, options);
  P2P_ASSERT_MSG(baseline.x_axis == variant.x_axis &&
                     baseline.y_axis == variant.y_axis,
                 "cannot diff grids over different axes (" + baseline.y_axis +
                     " vs " + baseline.x_axis + " against " + variant.y_axis +
                     " vs " + variant.x_axis + ")");
  P2P_ASSERT_MSG(baseline.x_values == variant.x_values &&
                     baseline.y_values == variant.y_values,
                 "cannot diff grids over different axis values (the two "
                 "corpora were swept over different " +
                     baseline.x_axis + " / " + baseline.y_axis + " points)");
}

/// variant minus baseline simulated occupancy per cell; NaN when either
/// side lacks simulation data there.
std::vector<double> occupancy_diffs(const PhaseGrid& baseline,
                                    const PhaseGrid& variant) {
  std::vector<double> diffs(baseline.cells.size(), std::nan(""));
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    const PhaseCell& b = baseline.cells[i];
    const PhaseCell& v = variant.cells[i];
    if (b.replicas > 0 && v.replicas > 0 &&
        std::isfinite(b.sim_mean_peers) && std::isfinite(v.sim_mean_peers)) {
      diffs[i] = v.sim_mean_peers - b.sim_mean_peers;
    }
  }
  return diffs;
}

/// Largest finite |difference|; 1 when none (flat ramp).
double default_diff_scale(const std::vector<double>& diffs) {
  double scale = 0;
  for (const double d : diffs) {
    if (std::isfinite(d)) scale = std::max(scale, std::abs(d));
  }
  return scale > 0 ? scale : 1;
}

Rgb diff_color(double d, double scale) {
  if (!std::isfinite(d) || d == 0) return kMidpoint;
  const double t = std::sqrt(std::min(1.0, std::abs(d) / scale));
  return d > 0 ? lerp(kMidpoint, kTransientPole, t)
               : lerp(kMidpoint, kStablePole, t);
}

std::string diff_title(const PhaseGrid& baseline, const PhaseGrid& variant,
                       const RenderOptions& options) {
  if (!options.title.empty()) return options.title;
  const std::string who =
      variant.policy.empty() ? "variant" : variant.policy;
  return who + " minus baseline occupancy (" + baseline.y_axis + " vs " +
         baseline.x_axis + ")";
}

}  // namespace

std::string render_diff_ppm(const PhaseGrid& baseline,
                            const PhaseGrid& variant,
                            const RenderOptions& options) {
  validate_diff_pair(baseline, variant, options);
  const std::vector<double> diffs = occupancy_diffs(baseline, variant);
  const double scale = std::isnan(options.margin_scale)
                           ? default_diff_scale(diffs)
                           : options.margin_scale;
  P2P_ASSERT_MSG(scale > 0 && std::isfinite(scale),
                 "margin_scale must be positive and finite");
  const std::size_t px = static_cast<std::size_t>(options.cell_px);
  const std::size_t nx = baseline.num_x();
  const std::size_t ny = baseline.num_y();
  const std::size_t width = nx * px;
  const std::size_t height = ny * px;

  std::string out = "P6\n" + std::to_string(width) + " " +
                    std::to_string(height) + "\n255\n";
  std::vector<Rgb> row_colors(nx);
  for (std::size_t row = 0; row < height; ++row) {
    const std::size_t yi = ny - 1 - row / px;
    if (row % px == 0) {
      for (std::size_t xi = 0; xi < nx; ++xi) {
        row_colors[xi] = diff_color(diffs[yi * nx + xi], scale);
      }
    }
    for (std::size_t col = 0; col < width; ++col) {
      const Rgb c = row_colors[col / px];
      out += static_cast<char>(c.r);
      out += static_cast<char>(c.g);
      out += static_cast<char>(c.b);
    }
  }
  return out;
}

std::string render_diff_svg(const PhaseGrid& baseline,
                            const PhaseGrid& variant,
                            const RenderOptions& options) {
  validate_diff_pair(baseline, variant, options);
  const std::vector<double> diffs = occupancy_diffs(baseline, variant);
  const double scale = std::isnan(options.margin_scale)
                           ? default_diff_scale(diffs)
                           : options.margin_scale;
  P2P_ASSERT_MSG(scale > 0 && std::isfinite(scale),
                 "margin_scale must be positive and finite");
  const int px = options.cell_px;
  const std::size_t nx = baseline.num_x();
  const std::size_t ny = baseline.num_y();

  const int left = 64, top = 52, bottom = 40, right = 16;
  const int plot_w = static_cast<int>(nx) * px;
  const int plot_h = static_cast<int>(ny) * px;
  const int width = std::max(left + plot_w + right, left + 240);
  const int height = top + plot_h + bottom;

  const auto rgb = [](Rgb c) {
    return "rgb(" + std::to_string(c.r) + "," + std::to_string(c.g) + "," +
           std::to_string(c.b) + ")";
  };
  const auto xml_escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '&') {
        out += "&amp;";
      } else if (c == '<') {
        out += "&lt;";
      } else if (c == '>') {
        out += "&gt;";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::string out;
  const auto text = [&](double x, double y, const char* anchor,
                        const char* fill, int size, const std::string& s) {
    out += "  <text x=\"";
    fmt_into(out, x);
    out += "\" y=\"";
    fmt_into(out, y);
    out += "\" text-anchor=\"";
    out += anchor;
    out += "\" fill=\"";
    out += fill;
    out += "\" font-family=\"system-ui, sans-serif\" font-size=\"" +
           std::to_string(size) + "\">" + xml_escape(s) + "</text>\n";
  };
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(width) + "\" height=\"" + std::to_string(height) +
         "\" viewBox=\"0 0 " + std::to_string(width) + " " +
         std::to_string(height) + "\">\n";
  out += "  <rect width=\"" + std::to_string(width) + "\" height=\"" +
         std::to_string(height) + "\" fill=\"" + kSurface + "\"/>\n";
  text(left, 18, "start", kTextPrimary, 13,
       diff_title(baseline, variant, options));

  // Legend: the two difference arms (labels carry the meaning, the
  // swatches sit at mid-ramp like the verdict legend's).
  const int legend_y = 30;
  out += "  <rect x=\"" + std::to_string(left) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kStablePole, 0.6)) + "\"/>\n";
  text(left + 14, legend_y + 9, "start", kTextSecondary, 11,
       "fewer peers");
  out += "  <rect x=\"" + std::to_string(left + 90) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kTransientPole, 0.6)) + "\"/>\n";
  text(left + 104, legend_y + 9, "start", kTextSecondary, 11,
       "more peers");

  for (std::size_t yi = 0; yi < ny; ++yi) {
    const int y = top + static_cast<int>(ny - 1 - yi) * px;
    for (std::size_t xi = 0; xi < nx; ++xi) {
      out += "  <rect x=\"" +
             std::to_string(left + static_cast<int>(xi) * px) + "\" y=\"" +
             std::to_string(y) + "\" width=\"" + std::to_string(px) +
             "\" height=\"" + std::to_string(px) + "\" fill=\"" +
             rgb(diff_color(diffs[yi * nx + xi], scale)) + "\"/>\n";
    }
  }

  const int axis_y = top + plot_h;
  text(left, axis_y + 16, "start", kTextSecondary, 11,
       fmt(baseline.x_values.front()));
  text(left + plot_w, axis_y + 16, "end", kTextSecondary, 11,
       fmt(baseline.x_values.back()));
  text(left + plot_w / 2.0, axis_y + 32, "middle", kTextPrimary, 12,
       baseline.x_axis);
  text(left - 6, axis_y - plot_h + 12, "end", kTextSecondary, 11,
       fmt(baseline.y_values.back()));
  text(left - 6, axis_y - 2, "end", kTextSecondary, 11,
       fmt(baseline.y_values.front()));
  text(left - 6, axis_y - plot_h / 2.0, "end", kTextPrimary, 12,
       baseline.y_axis);
  out += "</svg>\n";
  return out;
}

namespace {

/// Largest finite |margin| over the leaves; 1 when none (flat ramp).
double default_box_margin_scale(const BoxGrid& grid) {
  double scale = 0;
  for (const PhaseBox& b : grid.boxes) {
    if (std::isfinite(b.margin)) scale = std::max(scale, std::abs(b.margin));
  }
  return scale > 0 ? scale : 1;
}

Rgb box_color(const PhaseBox& box, double scale, bool overlay) {
  // Non-uniform leaves are the frontier cover: the subdivision stopped
  // (depth or tolerance cap) while their corners still disagreed, so
  // they play the role the dense renderers' ink overlay plays.
  if (overlay && !box.uniform) return kInk;
  const double m = std::isfinite(box.margin) ? std::abs(box.margin) : 0;
  const double t = std::sqrt(std::min(1.0, m / scale));
  switch (box.verdict) {
    case Stability::kPositiveRecurrent:
      return lerp(kMidpoint, kStablePole, t);
    case Stability::kTransient:
      return lerp(kMidpoint, kTransientPole, t);
    case Stability::kBorderline:
      return kMidpoint;
  }
  P2P_ASSERT(false);
  return kMidpoint;
}

struct BoxPlotGeometry {
  std::size_t width = 0, height = 0;  // plot pixels
  double scale = 0;                   // resolved margin scale
};

BoxPlotGeometry box_geometry(const BoxGrid& grid,
                             const RenderOptions& options) {
  P2P_ASSERT_MSG(options.cell_px >= 1 && options.cell_px <= 256,
                 "cell_px must lie in [1, 256]");
  P2P_ASSERT_MSG(!grid.boxes.empty(), "cannot render an empty box grid");
  BoxPlotGeometry g;
  // cell_px pixels per FINEST leaf: the raster resolves every box the
  // archive resolved, nothing finer.
  const double nx = (grid.x_max - grid.x_min) / grid.min_ext_x;
  const double ny = (grid.y_max - grid.y_min) / grid.min_ext_y;
  P2P_ASSERT_MSG(nx <= 8192 && ny <= 8192,
                 "box grid spans more than 8192 finest-leaf widths; "
                 "render with a larger tolerance archive");
  g.width = static_cast<std::size_t>(std::lround(nx)) *
            static_cast<std::size_t>(options.cell_px);
  g.height = static_cast<std::size_t>(std::lround(ny)) *
             static_cast<std::size_t>(options.cell_px);
  g.scale = std::isnan(options.margin_scale)
                ? default_box_margin_scale(grid)
                : options.margin_scale;
  P2P_ASSERT_MSG(g.scale > 0 && std::isfinite(g.scale),
                 "margin_scale must be positive and finite");
  return g;
}

}  // namespace

std::string render_boxes_ppm(const BoxGrid& grid,
                             const RenderOptions& options) {
  const BoxPlotGeometry g = box_geometry(grid, options);

  // Physical -> pixel, shared-edge safe: two boxes that share an edge
  // coordinate snap it to the same pixel column, so the tiling leaves
  // no seams and no bleed whatever the subdivision pattern.
  const auto x_px = [&](double x) {
    return std::lround((x - grid.x_min) / (grid.x_max - grid.x_min) *
                       static_cast<double>(g.width));
  };
  const auto y_px = [&](double y) {
    return std::lround((y - grid.y_min) / (grid.y_max - grid.y_min) *
                       static_cast<double>(g.height));
  };

  std::vector<Rgb> image(g.width * g.height, kMidpoint);
  for (const PhaseBox& b : grid.boxes) {
    const Rgb c = box_color(b, g.scale, options.overlay_frontier);
    const long px0 = std::clamp(x_px(b.x0), 0L, static_cast<long>(g.width));
    const long px1 =
        std::clamp(x_px(b.x0 + b.ext_x), 0L, static_cast<long>(g.width));
    const long py0 = std::clamp(y_px(b.y0), 0L, static_cast<long>(g.height));
    const long py1 =
        std::clamp(y_px(b.y0 + b.ext_y), 0L, static_cast<long>(g.height));
    for (long py = py0; py < py1; ++py) {
      // Image row 0 is the TOP: y grows upward like a plot.
      const std::size_t row = g.height - 1 - static_cast<std::size_t>(py);
      for (long px = px0; px < px1; ++px) {
        image[row * g.width + static_cast<std::size_t>(px)] = c;
      }
    }
  }

  std::string out = "P6\n" + std::to_string(g.width) + " " +
                    std::to_string(g.height) + "\n255\n";
  out.reserve(out.size() + image.size() * 3);
  for (const Rgb& c : image) {
    out += static_cast<char>(c.r);
    out += static_cast<char>(c.g);
    out += static_cast<char>(c.b);
  }
  return out;
}

std::string render_boxes_svg(const BoxGrid& grid,
                             const RenderOptions& options) {
  const BoxPlotGeometry g = box_geometry(grid, options);
  const int left = 64, top = 52, bottom = 40, right = 16;
  const int plot_w = static_cast<int>(g.width);
  const int plot_h = static_cast<int>(g.height);
  const int width = std::max(left + plot_w + right, left + 240);
  const int height = top + plot_h + bottom;

  const std::string title =
      options.title.empty()
          ? grid.y_axis + " vs " + grid.x_axis + " adaptive phase diagram"
          : options.title;

  const auto rgb = [](Rgb c) {
    return "rgb(" + std::to_string(c.r) + "," + std::to_string(c.g) + "," +
           std::to_string(c.b) + ")";
  };
  const auto xml_escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '&') {
        out += "&amp;";
      } else if (c == '<') {
        out += "&lt;";
      } else if (c == '>') {
        out += "&gt;";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::string out;
  const auto text = [&](double x, double y, const char* anchor,
                        const char* fill, int size, const std::string& s) {
    out += "  <text x=\"";
    fmt_into(out, x);
    out += "\" y=\"";
    fmt_into(out, y);
    out += "\" text-anchor=\"";
    out += anchor;
    out += "\" fill=\"";
    out += fill;
    out += "\" font-family=\"system-ui, sans-serif\" font-size=\"" +
           std::to_string(size) + "\">" + xml_escape(s) + "</text>\n";
  };
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(width) + "\" height=\"" + std::to_string(height) +
         "\" viewBox=\"0 0 " + std::to_string(width) + " " +
         std::to_string(height) + "\">\n";
  out += "  <rect width=\"" + std::to_string(width) + "\" height=\"" +
         std::to_string(height) + "\" fill=\"" + kSurface + "\"/>\n";
  text(left, 18, "start", kTextPrimary, 13, title);

  // Verdict legend plus the frontier-cover swatch (a filled square, not
  // a line: the cover is an area here, not a polyline).
  const int legend_y = 30;
  out += "  <rect x=\"" + std::to_string(left) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kStablePole, 0.6)) + "\"/>\n";
  text(left + 14, legend_y + 9, "start", kTextSecondary, 11, "stable");
  out += "  <rect x=\"" + std::to_string(left + 70) + "\" y=\"" +
         std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
         rgb(lerp(kMidpoint, kTransientPole, 0.6)) + "\"/>\n";
  text(left + 84, legend_y + 9, "start", kTextSecondary, 11, "transient");
  if (options.overlay_frontier) {
    out += "  <rect x=\"" + std::to_string(left + 160) + "\" y=\"" +
           std::to_string(legend_y) + "\" width=\"10\" height=\"10\" fill=\"" +
           rgb(kInk) + "\"/>\n";
    text(left + 174, legend_y + 9, "start", kTextSecondary, 11, "frontier");
  }

  // One rect per leaf at exact coordinates: shared edges are shared
  // numbers, so the tiling is seamless at any zoom — the native
  // variable-resolution rendering.
  const double sx = static_cast<double>(plot_w) / (grid.x_max - grid.x_min);
  const double sy = static_cast<double>(plot_h) / (grid.y_max - grid.y_min);
  for (const PhaseBox& b : grid.boxes) {
    const double x = left + (b.x0 - grid.x_min) * sx;
    const double y = top + (grid.y_max - (b.y0 + b.ext_y)) * sy;
    out += "  <rect x=\"";
    fmt_into(out, x);
    out += "\" y=\"";
    fmt_into(out, y);
    out += "\" width=\"";
    fmt_into(out, b.ext_x * sx);
    out += "\" height=\"";
    fmt_into(out, b.ext_y * sy);
    out += "\" fill=\"" +
           rgb(box_color(b, g.scale, options.overlay_frontier)) + "\"/>\n";
  }

  const int axis_y = top + plot_h;
  text(left, axis_y + 16, "start", kTextSecondary, 11, fmt(grid.x_min));
  text(left + plot_w, axis_y + 16, "end", kTextSecondary, 11,
       fmt(grid.x_max));
  text(left + plot_w / 2.0, axis_y + 32, "middle", kTextPrimary, 12,
       grid.x_axis);
  text(left - 6, axis_y - plot_h + 12, "end", kTextSecondary, 11,
       fmt(grid.y_max));
  text(left - 6, axis_y - 2, "end", kTextSecondary, 11, fmt(grid.y_min));
  text(left - 6, axis_y - plot_h / 2.0, "end", kTextPrimary, 12,
       grid.y_axis);
  out += "</svg>\n";
  return out;
}

}  // namespace p2p::analysis
