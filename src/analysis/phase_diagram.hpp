// Phase-diagram analysis of ingested sweep corpora: the read-side
// counterpart of the sweep engine, turning an archived grid table
// (engine/csv_reader.hpp) back into physics.
//
//   * build_phase_grid — validates an ingested grid report, recovers
//     the two varying axes (x fastest unless told otherwise), checks
//     the rows form the full cartesian product, and reconstructs the
//     typed-arrival scenario from the per-type rate columns — so a CSV
//     on disk is enough to re-run the Theorem-1 closed form at any
//     parameter point the grid spans.
//
//   * extract_frontier — per grid row, localizes the Theorem-1 verdict
//     flip along x twice over: a margin zero-crossing interpolation
//     (data only: the margin is piecewise linear in every refinable
//     axis, so between coarse cells sharing a critical piece the
//     interpolant is exact), and a closed-form re-bisection of the
//     bracket via classify() on the reconstructed cells — the same
//     localization refine_frontier performs at sweep time, now
//     recoverable from the archive alone. The golden-corpus suite
//     pins archived frontier tables against this re-derivation.
//
//   * verdict_agreement — theory-vs-simulation confusion matrix over
//     the grid (sim cells classified by an occupancy threshold) with a
//     bootstrap CI on the agreement rate (analysis/confidence.hpp).
//
// Everything here is deterministic: no wall clock, no libm
// transcendentals, bootstrap RNG seeded by the caller — so rendered
// diagrams and summary JSON are byte-stable across runs, threads and
// platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/confidence.hpp"
#include "core/stability.hpp"
#include "engine/report.hpp"
#include "engine/scenario.hpp"

namespace p2p::engine {
class CsvReader;
}

namespace p2p::analysis {

/// One ingested grid cell: the parameter point and the classified /
/// simulated columns the corpus recorded for it.
struct PhaseCell {
  engine::CellParams params;
  Stability verdict = Stability::kBorderline;
  double margin = std::nan("");
  int replicas = 0;
  double sim_mean_peers = std::nan("");
  double ctmc_mean_peers = std::nan("");
  /// Fluid-limit verdict; meaningful only when PhaseGrid::has_fluid.
  Stability fluid = Stability::kBorderline;
};

/// A rectangular phase-diagram view of an ingested grid report.
struct PhaseGrid {
  /// The two varying axes: x is the fast (column) axis, y the slow
  /// (row) axis. When only one axis varies, y is a constant axis and
  /// y_values has one element.
  std::string x_axis, y_axis;
  std::vector<double> x_values, y_values;  // in grid (emission) order
  /// Scenario reconstructed from the per-type rate columns; empty for
  /// homogeneous corpora (and for scenario corpora whose mix axis is 0
  /// everywhere — the weights are unrecoverable from an all-zero
  /// block, and unneeded: every such cell is the homogeneous cell).
  engine::ScenarioSpec scenario;
  /// Piece-selection policy token recorded by the corpus ("rarest-first",
  /// ...); empty for baseline corpora without a policy column. The
  /// column is sweep-constant, so one string covers the grid.
  std::string policy;
  /// True when the corpus carried a fluid_verdict column (every cell's
  /// `fluid` field is then meaningful).
  bool has_fluid = false;
  /// Row-major [y][x].
  std::vector<PhaseCell> cells;

  std::size_t num_x() const { return x_values.size(); }
  std::size_t num_y() const { return y_values.size(); }
  const PhaseCell& at(std::size_t yi, std::size_t xi) const {
    return cells[yi * x_values.size() + xi];
  }
};

/// Builds the grid view from an ingested grid table. Axes default to
/// the varying ones (1 or 2 of them; x = the faster in emission order);
/// naming x_axis/y_axis explicitly selects (and possibly transposes)
/// them. Aborts — naming the offending row or column — when the table
/// is not a grid report, a coordinate is malformed (non-finite lambda,
/// fractional k, unknown verdict, cell index out of row order, ...), a
/// third axis varies, rows do not tile the full |x| * |y| product
/// exactly once, or the per-type columns contradict the mix/lambda
/// axes.
PhaseGrid build_phase_grid(const engine::Table& table,
                           const std::string& x_axis = "",
                           const std::string& y_axis = "");

/// Streaming overload: pulls rows straight off a CsvReader, so a
/// million-cell corpus ingests in O(cells) typed state without ever
/// holding the document (or an all-strings Table) in memory. Same
/// validation and result as the Table overload.
PhaseGrid build_phase_grid(engine::CsvReader& reader,
                           const std::string& x_axis = "",
                           const std::string& y_axis = "");

/// One ingested leaf box of an adaptive multi-resolution report
/// (engine/refine.hpp): the origin (lower-corner) vertex's evaluation
/// plus the box geometry from the trailing block.
struct PhaseBox {
  engine::CellParams params;  // the origin vertex
  Stability verdict = Stability::kBorderline;
  double margin = std::nan("");
  int replicas = 0;
  double sim_mean_peers = std::nan("");
  /// Subdivision depth (0 = a coarse box of the emitting lattice).
  int depth = 0;
  /// True when the box's corner/center verdicts all agreed at sweep
  /// time; false leaves cover the phase boundary.
  bool uniform = true;
  /// Lower corner and physical widths along BoxGrid::x_axis / y_axis.
  double x0 = std::nan(""), y0 = std::nan("");
  double ext_x = std::nan(""), ext_y = std::nan("");
};

/// A 2-D multi-resolution view of an ingested adaptive report: leaf
/// boxes tiling the [x_min, x_max] x [y_min, y_max] window, in emission
/// order. The renderable field an adaptive archive reconstructs to.
struct BoxGrid {
  /// The two box axes: x is the later (faster) one in grid-schema
  /// order, matching the cartesian builder's default orientation.
  std::string x_axis, y_axis;
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  /// The finest leaf widths — the archive's effective resolution.
  double min_ext_x = 0, min_ext_y = 0;
  int max_depth = 0;
  std::vector<PhaseBox> boxes;

  /// The leaf containing (x, y): half-open [x0, x0 + ext) containment,
  /// closed on the window's max edges. Aborts unless exactly one leaf
  /// contains the point — overlapping or gappy tilings are corrupt.
  const PhaseBox& box_at(double x, double y) const;
  Stability verdict_at(double x, double y) const {
    return box_at(x, y).verdict;
  }
};

/// Builds the multi-resolution view from an ingested adaptive report
/// (header carries the box block). Aborts — naming the offending row or
/// column — when the report is not an adaptive grid report, the box
/// block does not name exactly two axes (higher-D adaptive volumes are
/// archives to slice, not diagrams), a geometry cell is malformed
/// (negative depth, non-positive extent, uniform outside {0, 1}), or
/// the leaves' total measure does not tile the bounding window.
BoxGrid build_box_grid(const engine::Table& table);

/// Streaming overload, like build_phase_grid's: O(boxes) typed state.
BoxGrid build_box_grid(engine::CsvReader& reader);

/// One extracted frontier point: the Theorem-1 verdict flip along x for
/// one grid row.
struct PhaseFrontierPoint {
  std::size_t row = 0;  // y index
  double y = std::nan("");
  /// False when the row's coarse cells never change verdict: every
  /// estimate below is NaN.
  bool bracketed = false;
  /// The x values of the adjacent coarse cells whose verdicts differ.
  double x_lo = std::nan(""), x_hi = std::nan("");
  /// Margin zero-crossing interpolated between the bracket cells; NaN
  /// when the recorded margins do not straddle zero.
  double interpolated = std::nan("");
  /// Closed-form re-bisection of the bracket down to `tol` (midpoint
  /// and final bracket), via classify() on the reconstructed cells —
  /// matches refine_frontier run on the same coarse grid. NaN when x
  /// is not a refinable axis (k, eta, flash, hetero never flip the
  /// closed form along themselves) or a bracket endpoint is inf.
  double value = std::nan("");
  double value_lo = std::nan(""), value_hi = std::nan("");
  /// classify() margin at `value` (~0 by construction).
  double margin = std::nan("");
};

/// Extracts the frontier from every grid row (scanning x in grid order
/// for the first adjacent verdict change, like refine_frontier's coarse
/// scan). `tol` is the re-bisection stopping width. Rows are
/// independent, so they fan across `threads` OS threads; each row's
/// point depends only on the row, so the result is identical for any
/// thread count.
std::vector<PhaseFrontierPoint> extract_frontier(const PhaseGrid& grid,
                                                 double tol = 1e-3,
                                                 int threads = 1);

/// Theory-vs-simulation verdict agreement over a grid's cells; when the
/// grid carries a fluid_verdict column, additionally the three-way
/// theory/fluid/sim confusion tensor and the closed-form theory-vs-fluid
/// matrix over every cell.
struct VerdictAgreement {
  /// Occupancy threshold that splits simulated cells into
  /// "transient-looking" (mean peers above) and "stable-looking".
  double threshold = std::nan("");
  /// counts[theory verdict][sim transient-looking ? 1 : 0] over cells
  /// with simulation data; verdict indexed 0 = positive-recurrent,
  /// 1 = transient, 2 = borderline.
  std::size_t counts[3][2] = {};
  /// Cells with simulation data (replicas > 0, finite mean).
  std::size_t cells_with_sim = 0;
  /// Non-borderline cells entering the agreement rate, and how many of
  /// them agree (theory transient <=> sim transient-looking).
  std::size_t compared = 0;
  std::size_t agreeing = 0;
  /// agreeing / compared with a percentile-bootstrap CI; NaN when no
  /// cell qualifies.
  double agreement = std::nan("");
  double agreement_lo = std::nan(""), agreement_hi = std::nan("");
  /// True when the ingested grid carried a fluid_verdict column; the
  /// fields below are only meaningful then.
  bool has_fluid = false;
  /// counts3[theory][fluid][sim busy ? 1 : 0] over cells with
  /// simulation data — the three-way confusion tensor (verdict indexing
  /// as in `counts`).
  std::size_t counts3[3][3][2] = {};
  /// fluid_counts[theory][fluid] over EVERY grid cell: both verdicts
  /// are closed-form, so no simulation gate applies.
  std::size_t fluid_counts[3][3] = {};
  /// Cells where both closed-form verdicts are non-borderline, and how
  /// many of those agree.
  std::size_t fluid_compared = 0;
  std::size_t fluid_agreeing = 0;
};

/// Classifies every simulated cell against `threshold` (NaN = use the
/// median simulated occupancy, a scale-free default that splits any
/// two-phase grid) and bootstraps a CI on the agreement rate. `seed`
/// drives only the bootstrap, so the result is deterministic.
VerdictAgreement verdict_agreement(const PhaseGrid& grid,
                                   double threshold = std::nan(""),
                                   double confidence = 0.95,
                                   int resamples = 256,
                                   std::uint64_t seed = 1);

}  // namespace p2p::analysis
