#include "analysis/stability_probe.hpp"

namespace p2p {

std::string to_string(ProbeVerdict v) {
  switch (v) {
    case ProbeVerdict::kStable:
      return "stable";
    case ProbeVerdict::kUnstable:
      return "unstable";
    case ProbeVerdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::string ProbeResult::to_string() const {
  return "ProbeResult{" + p2p::to_string(verdict) +
         ", normalized_slope=" + std::to_string(normalized_slope) + " +/- " +
         std::to_string(slope_sem) +
         ", mean_tail_peers=" + std::to_string(mean_tail_peers) +
         ", mean_final_peers=" + std::to_string(mean_final_peers) + "}";
}

ProbeResult probe_stability(
    const std::function<TimeSeries(std::uint64_t seed)>& make_series,
    double lambda_total, const ProbeOptions& options) {
  P2P_ASSERT(lambda_total > 0);
  P2P_ASSERT(options.replicas >= 1);
  OnlineStats slopes;
  OnlineStats tails;
  OnlineStats finals;
  for (int r = 0; r < options.replicas; ++r) {
    const TimeSeries series =
        make_series(options.base_seed + static_cast<std::uint64_t>(r));
    P2P_ASSERT(series.size() >= 4);
    const LinearFit fit = tail_fit(series, 0.5);
    slopes.add(fit.slope / lambda_total);
    // Tail time-average.
    TimeSeries tail;
    const std::size_t first = series.size() / 2;
    for (std::size_t i = first; i < series.size(); ++i) {
      tail.push(series.t[i], series.v[i]);
    }
    tails.add(tail.time_average());
    finals.add(series.v.back());
  }
  ProbeResult result;
  result.normalized_slope = slopes.mean();
  result.slope_sem = slopes.sem();
  result.mean_tail_peers = tails.mean();
  result.mean_final_peers = finals.mean();

  const double margin = 2.0 * slopes.sem();
  if (result.normalized_slope - margin > options.slope_threshold) {
    result.verdict = ProbeVerdict::kUnstable;
  } else if (result.normalized_slope + margin < options.slope_threshold) {
    result.verdict = ProbeVerdict::kStable;
  } else {
    result.verdict = ProbeVerdict::kInconclusive;
  }
  return result;
}

TimeSeries swarm_peer_series(const SwarmParams& params,
                             const ProbeOptions& options, std::uint64_t seed,
                             const std::string& policy_name) {
  SwarmSimOptions sim_options;
  sim_options.rng_seed = seed;
  sim_options.tracked_piece = options.tracked_piece;
  SwarmSim sim(params, make_policy(policy_name), sim_options);
  if (options.initial_one_club > 0) {
    const PieceSet one_club =
        PieceSet::full(params.num_pieces()).without(sim_options.tracked_piece);
    P2P_ASSERT_MSG(params.num_pieces() >= 1, "need at least one piece");
    sim.inject_peers(one_club, options.initial_one_club);
  }
  TimeSeries series;
  series.push(0.0, static_cast<double>(sim.total_peers()));
  sim.run_sampled(options.horizon, options.sample_dt, [&](double t) {
    series.push(t, static_cast<double>(sim.total_peers()));
  });
  return series;
}

ProbeResult probe_swarm(const SwarmParams& params, const ProbeOptions& options,
                        const std::string& policy_name) {
  return probe_stability(
      [&](std::uint64_t seed) {
        return swarm_peer_series(params, options, seed, policy_name);
      },
      params.total_arrival_rate(), options);
}

}  // namespace p2p
