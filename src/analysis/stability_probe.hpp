// Empirical stability classification of a simulated swarm.
//
// Theorem 1 signs the long-run drift of the peer population N_t: transient
// systems grow linearly (at rate bounded below by the one-club imbalance),
// positive-recurrent systems keep N_t tight. The probe runs independent
// replicas, fits the tail slope of N_t, and classifies with explicit
// thresholds; benches report the raw normalized slopes so borderline
// cases are visible rather than hidden behind the verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/model.hpp"
#include "sim/policy.hpp"
#include "sim/stats.hpp"
#include "sim/swarm.hpp"

namespace p2p {

enum class ProbeVerdict { kStable, kUnstable, kInconclusive };

std::string to_string(ProbeVerdict v);

struct ProbeOptions {
  double horizon = 2000;      // simulated time per replica
  double sample_dt = 10;      // sampling grid for the N_t series
  int replicas = 5;
  /// Flash-crowd style initial load: this many one-club peers (type
  /// F - {tracked}), probing recovery from the adversarial heavy state.
  std::int64_t initial_one_club = 0;
  /// Piece defining the injected one-club and the Fig. 2 partition.
  int tracked_piece = 0;
  /// Normalized-slope cutoff: mean slope / lambda_total above this =>
  /// unstable, below (with margin) => stable.
  double slope_threshold = 0.02;
  std::uint64_t base_seed = 7;
};

struct ProbeResult {
  ProbeVerdict verdict = ProbeVerdict::kInconclusive;
  /// Mean over replicas of tail slope of N_t divided by lambda_total
  /// (so +1.0 = every arrival sticks around forever).
  double normalized_slope = 0;
  /// Standard error of that mean across replicas.
  double slope_sem = 0;
  /// Mean over replicas of the time-averaged N over the tail window.
  double mean_tail_peers = 0;
  /// Mean final population.
  double mean_final_peers = 0;
  std::string to_string() const;
};

/// Generic probe over any time-series generator: `make_series(seed)` must
/// return the sampled N_t trajectory of one replica.
ProbeResult probe_stability(
    const std::function<TimeSeries(std::uint64_t seed)>& make_series,
    double lambda_total, const ProbeOptions& options);

/// Probes a SwarmSim with the given policy name ("random-useful" etc.).
ProbeResult probe_swarm(const SwarmParams& params, const ProbeOptions& options,
                        const std::string& policy_name = "random-useful");

/// One replica's N_t series for a SwarmSim (exposed for benches that plot
/// trajectories rather than classify).
TimeSeries swarm_peer_series(const SwarmParams& params,
                             const ProbeOptions& options, std::uint64_t seed,
                             const std::string& policy_name = "random-useful");

}  // namespace p2p
