// Dependency-free phase-diagram renderers: binary PPM (P6) and SVG.
//
// The verdict margin is a polarity around the Theorem-1 frontier, so
// cells wear a diverging palette: a blue arm for positive-recurrent
// cells, a red arm for transient ones, and a neutral near-surface
// midpoint at margin 0 / borderline — never a rainbow. Shade encodes
// |margin| (square-root ramp, saturating at `margin_scale`), so the
// frontier reads as the light seam between the two arms, and the
// extracted frontier overlay is drawn in near-black ink with a surface
// halo so it separates from both arms.
//
// Rendering is pure arithmetic over the ingested grid (no wall clock,
// no transcendentals beyond sqrt, numbers via format_number), so the
// emitted bytes are identical across runs, thread counts and platforms
// — the golden tests and the CI corpus job pin them.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "analysis/phase_diagram.hpp"

namespace p2p::analysis {

struct RenderOptions {
  /// Square pixels per grid cell (PPM) / SVG user units per cell.
  int cell_px = 12;
  /// Draw the extracted frontier (best available estimate per row:
  /// re-bisected value, else margin interpolation, else the bracket
  /// midpoint).
  bool overlay_frontier = true;
  /// |margin| that saturates the color ramp; NaN = the grid's largest
  /// finite |margin| (deterministic).
  double margin_scale = std::nan("");
  /// SVG title line; empty derives "<y_axis> vs <x_axis> phase diagram".
  std::string title;
};

/// Binary PPM (P6), row 0 of the image at the TOP: the grid's last y
/// value. y increases upward like a plot, x left to right in grid
/// order. Image size: (num_x * cell_px) x (num_y * cell_px).
std::string render_ppm(const PhaseGrid& grid,
                       const std::vector<PhaseFrontierPoint>& frontier,
                       const RenderOptions& options = {});

/// Streams the same bytes straight to `path` ("-" or empty = stdout),
/// one scanline at a time — a million-cell diagram at the default
/// cell_px would be a ~400 MB string, which a plotting CLI has no
/// business holding. Aborts on short writes.
void write_ppm(const PhaseGrid& grid,
               const std::vector<PhaseFrontierPoint>& frontier,
               const RenderOptions& options, const std::string& path);

/// Standalone SVG with axis names, first/last tick labels (selective,
/// never a label per cell), a two-swatch verdict legend, and the
/// frontier polyline. Same cell colors and orientation as the PPM.
std::string render_svg(const PhaseGrid& grid,
                       const std::vector<PhaseFrontierPoint>& frontier,
                       const RenderOptions& options = {});

/// Policy-vs-baseline difference diagram: per cell, the simulated
/// occupancy of `variant` minus `baseline` on the same diverging
/// palette — blue arm where the variant holds FEWER peers than the
/// baseline, red arm where more, neutral midpoint where either side
/// lacks simulation data (or the difference is exactly zero). Shade is
/// the sqrt ramp over |difference|, saturating at margin_scale (NaN =
/// the largest finite |difference|, deterministic). Theorem 14 says
/// work-conserving policies share one stability region, so a
/// frontier-straddling red/blue band is the signal worth looking at.
/// Aborts when the grids disagree on axes or axis values (a diff of
/// unaligned grids would be silently meaningless). overlay_frontier is
/// ignored: verdict frontiers belong to the per-grid renderers.
std::string render_diff_ppm(const PhaseGrid& baseline,
                            const PhaseGrid& variant,
                            const RenderOptions& options = {});

/// The SVG face of the same difference diagram: identical cell colors
/// and orientation, fewer/more-peers legend swatches, axis labels as in
/// render_svg. The default title names the variant's policy token.
std::string render_diff_svg(const PhaseGrid& baseline,
                            const PhaseGrid& variant,
                            const RenderOptions& options = {});

/// Multi-resolution diagram of an adaptive box grid: every leaf box is
/// painted natively at its own physical size — one rect per leaf, no
/// resampling onto a dense lattice — with the same diverging verdict
/// palette and orientation as render_ppm. Non-uniform leaves (the boxes
/// whose corner verdicts still disagreed at the depth/tolerance cap)
/// ARE the frontier cover, so overlay_frontier paints them in the same
/// near-black ink the dense frontier overlay uses. cell_px is the pixel
/// width of the FINEST leaf; coarser leaves scale up proportionally.
/// Box edges land on exact pixel boundaries for lattice-aligned
/// archives, so adjacent boxes never bleed.
std::string render_boxes_ppm(const BoxGrid& grid,
                             const RenderOptions& options = {});

/// The SVG face of the same multi-resolution diagram: one rect per leaf
/// at exact (unrounded) coordinates, verdict + frontier legend, axis
/// labels as in render_svg.
std::string render_boxes_svg(const BoxGrid& grid,
                             const RenderOptions& options = {});

}  // namespace p2p::analysis
