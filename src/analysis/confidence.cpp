#include "analysis/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace p2p {

BatchMeansResult batch_means(std::span<const double> samples,
                             int num_batches) {
  P2P_ASSERT(num_batches >= 2);
  P2P_ASSERT_MSG(samples.size() >= static_cast<std::size_t>(num_batches),
                 "need at least 1 sample per batch");
  const std::size_t batch_size = samples.size() / num_batches;
  std::vector<double> means(static_cast<std::size_t>(num_batches), 0.0);
  for (int b = 0; b < num_batches; ++b) {
    double sum = 0;
    for (std::size_t i = 0; i < batch_size; ++i) {
      sum += samples[static_cast<std::size_t>(b) * batch_size + i];
    }
    means[static_cast<std::size_t>(b)] = sum / static_cast<double>(batch_size);
  }
  BatchMeansResult result;
  result.batches = num_batches;
  for (double m : means) result.mean += m;
  result.mean /= num_batches;
  double var = 0;
  for (double m : means) var += (m - result.mean) * (m - result.mean);
  var /= num_batches - 1;
  result.sem = std::sqrt(var / num_batches);
  return result;
}

BootstrapResult block_bootstrap(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic,
    int block_length, int resamples, double confidence, Rng& rng) {
  P2P_ASSERT(block_length >= 1);
  P2P_ASSERT(resamples >= 10);
  P2P_ASSERT(confidence > 0 && confidence < 1);
  P2P_ASSERT(samples.size() >= static_cast<std::size_t>(block_length));

  BootstrapResult result;
  result.estimate = statistic(samples);
  const std::size_t n = samples.size();
  std::vector<double> stats(static_cast<std::size_t>(resamples));
  std::vector<double> resample(n);
  for (int r = 0; r < resamples; ++r) {
    std::size_t filled = 0;
    while (filled < n) {
      const std::size_t start =
          static_cast<std::size_t>(rng.uniform_int(n));  // circular
      for (int j = 0; j < block_length && filled < n; ++j, ++filled) {
        resample[filled] = samples[(start + static_cast<std::size_t>(j)) % n];
      }
    }
    stats[static_cast<std::size_t>(r)] = statistic(resample);
  }
  std::sort(stats.begin(), stats.end());
  // Symmetric nearest-rank percentiles: round the lower index down and
  // the upper index up. Truncating both (the old behavior) floor-biased
  // the upper bound inward whenever (1-alpha)*(resamples-1) was not an
  // integer, shrinking the CI below its nominal coverage.
  const double alpha = (1.0 - confidence) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(
      std::floor(alpha * static_cast<double>(resamples - 1)));
  const auto hi_idx = static_cast<std::size_t>(
      std::ceil((1.0 - alpha) * static_cast<double>(resamples - 1)));
  result.lower = stats[lo_idx];
  result.upper = stats[hi_idx];
  return result;
}

double integrated_autocorrelation_time(std::span<const double> samples) {
  const std::size_t n = samples.size();
  P2P_ASSERT(n >= 4);
  double mean = 0;
  for (double x : samples) mean += x;
  mean /= static_cast<double>(n);
  double c0 = 0;
  for (double x : samples) c0 += (x - mean) * (x - mean);
  c0 /= static_cast<double>(n);
  if (c0 <= 0) return 1.0;
  double tau = 1.0;
  for (std::size_t lag = 1; lag < n / 2; ++lag) {
    double ck = 0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      ck += (samples[i] - mean) * (samples[i + lag] - mean);
    }
    ck /= static_cast<double>(n - lag);
    const double rho = ck / c0;
    if (rho <= 0) break;  // initial positive sequence cutoff
    tau += 2.0 * rho;
  }
  return tau;
}

}  // namespace p2p
