#include "analysis/provisioning.hpp"

#include <algorithm>
#include <cmath>

#include "core/stability.hpp"

namespace p2p::analysis {

double dwell_to_depart_rate(double mean_dwell) {
  P2P_ASSERT_MSG(mean_dwell >= 0 && std::isfinite(mean_dwell),
                 "mean dwell must be finite and nonnegative");
  return mean_dwell == 0 ? kInfiniteRate : 1.0 / mean_dwell;
}

double depart_rate_to_dwell(double gamma) {
  P2P_ASSERT_MSG(gamma > 0, "gamma must be positive");
  return gamma == kInfiniteRate ? 0.0 : 1.0 / gamma;
}

SeedAdvice seed_advice(const SwarmParamsView& params) {
  SeedAdvice advice;
  advice.us_required = min_stabilizing_seed_rate(params);
  advice.us_margin = params.seed_rate - advice.us_required;
  advice.us_gap = std::max(0.0, -advice.us_margin);
  return advice;
}

SeedAdvice seed_advice(const SwarmParams& params) {
  return seed_advice(params.view());
}

double min_stabilizing_dwell(const SwarmParams& params) {
  return depart_rate_to_dwell(max_stabilizing_seed_depart_rate(params));
}

CapacityPlan seed_capacity_plan(int num_pieces, double mu,
                                std::vector<double> loads,
                                std::vector<double> dwells) {
  CapacityPlan plan;
  plan.loads = std::move(loads);
  plan.dwells = std::move(dwells);
  plan.us_required.reserve(plan.loads.size() * plan.dwells.size());
  for (const double lambda : plan.loads) {
    for (const double dwell : plan.dwells) {
      const SwarmParams params(num_pieces, 0.0, mu,
                               dwell_to_depart_rate(dwell),
                               {{PieceSet{}, lambda}});
      plan.us_required.push_back(min_stabilizing_seed_rate(params));
    }
  }
  return plan;
}

std::vector<double> min_dwell_by_load(int num_pieces, double us, double mu,
                                      const std::vector<double>& loads) {
  std::vector<double> dwells;
  dwells.reserve(loads.size());
  for (const double lambda : loads) {
    // The solver only reads (arrivals, Us, mu); the gamma the params
    // carry is a placeholder above mu so construction stays in the
    // mu < gamma regime the question is about.
    const SwarmParams params(num_pieces, us, mu, 2.0 * mu,
                             {{PieceSet{}, lambda}});
    dwells.push_back(min_stabilizing_dwell(params));
  }
  return dwells;
}

}  // namespace p2p::analysis
