// Seed-capacity planning: the closed-form inversions of Theorem 1's
// boundary packaged as a provisioning API.
//
// Extracted from examples/seed_provisioning.cpp so the formulas the
// capacity planner prints — and the live monitor's "how much seed buys
// the swarm back into the stable region" advisory — are library code
// with unit tests, not demo code. The solvers themselves live in
// core/stability.hpp (min_stabilizing_seed_rate and friends); this layer
// adds the operator-facing derived quantities: dwell <-> departure-rate
// conversion, the required-vs-configured seed gap, and whole plan tables
// over load/dwell lattices.
#pragma once

#include <vector>

#include "core/model.hpp"

namespace p2p::analysis {

/// Mean peer-seed dwell 1/gamma -> departure rate gamma. Dwell 0 means
/// "depart the instant the download completes" (gamma = infinity).
/// Requires a finite, nonnegative dwell.
double dwell_to_depart_rate(double mean_dwell);

/// Inverse of dwell_to_depart_rate. Requires gamma > 0 (infinity maps
/// to dwell 0).
double depart_rate_to_dwell(double gamma);

/// The monitor's per-tick advisory: the smallest stabilizing fixed-seed
/// rate for the (arrivals, mu, gamma) in `params`, compared against the
/// Us the tuple currently carries.
struct SeedAdvice {
  /// Smallest Us making the system strictly stable (0 when stable
  /// unseeded; the paper's corollary makes it 0 whenever gamma <= mu
  /// and every piece can enter).
  double us_required = 0;
  /// params.seed_rate - us_required: positive = headroom, negative =
  /// deficit.
  double us_margin = 0;
  /// max(0, us_required - params.seed_rate): the capacity to add to
  /// re-enter the stable region (0 when already inside).
  double us_gap = 0;
};

/// Allocation-free (the view may borrow a scratch arrival buffer); the
/// live monitor calls this once per advisory tick.
SeedAdvice seed_advice(const SwarmParamsView& params);
SeedAdvice seed_advice(const SwarmParams& params);

/// Smallest mean dwell 1/gamma* keeping the system stable holding
/// everything else fixed; 0 when stable even with immediate departure.
/// (The dual planning question: given a seed, what lingering must we ask
/// of completed peers?)
double min_stabilizing_dwell(const SwarmParams& params);

/// The capacity-plan table of examples/seed_provisioning.cpp: minimum
/// fixed-seed rate Us* over a load x dwell lattice of empty-arrival
/// swarms (every peer arrives holding nothing).
struct CapacityPlan {
  std::vector<double> loads;   // lambda values (rows)
  std::vector<double> dwells;  // mean-dwell values (columns)
  /// Row-major loads x dwells: us_required[i * dwells.size() + j].
  std::vector<double> us_required;

  double at(std::size_t load, std::size_t dwell) const {
    return us_required[load * dwells.size() + dwell];
  }
};

/// Builds the plan for a K-piece swarm at contact rate mu. Requires
/// positive loads and valid dwells (dwell_to_depart_rate's domain).
CapacityPlan seed_capacity_plan(int num_pieces, double mu,
                                std::vector<double> loads,
                                std::vector<double> dwells);

/// The dual table: minimum mean dwell by load for an empty-arrival
/// K-piece swarm with fixed-seed rate us (0 entries = stable with
/// immediate departure).
std::vector<double> min_dwell_by_load(int num_pieces, double us, double mu,
                                      const std::vector<double>& loads);

}  // namespace p2p::analysis
