// Autocorrelation-aware uncertainty for simulation output.
//
// Samples of N_t along one trajectory are strongly correlated, so the
// naive SEM wildly understates uncertainty. The standard remedies are
// implemented here: the method of batch means for steady-state estimates,
// and a stationary (circular block) bootstrap for general statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "rand/rng.hpp"

namespace p2p {

struct BatchMeansResult {
  double mean = 0;
  /// Standard error of the mean estimated from batch-mean variance.
  double sem = 0;
  int batches = 0;
};

/// Method of batch means over equally sized contiguous batches. Requires
/// at least one sample per batch; trailing remainder is dropped. With
/// num_batches == samples.size() (batch size 1) this is exactly the naive
/// iid mean/SEM — appropriate for independent replicas, not trajectories.
BatchMeansResult batch_means(std::span<const double> samples,
                             int num_batches = 20);

struct BootstrapResult {
  double estimate = 0;
  double lower = 0;   // percentile CI lower bound
  double upper = 0;   // percentile CI upper bound
};

/// Circular block bootstrap percentile CI for a statistic of a
/// (possibly autocorrelated) sample sequence.
BootstrapResult block_bootstrap(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic,
    int block_length, int resamples, double confidence, Rng& rng);

/// Integrated autocorrelation time estimate (sum of autocorrelations up
/// to the first nonpositive lag, the "initial positive sequence" cutoff).
/// 1.0 for iid data; multiply the naive SEM by sqrt(tau) to correct.
double integrated_autocorrelation_time(std::span<const double> samples);

}  // namespace p2p
